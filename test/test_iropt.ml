(* Unit tests for the Paris-IR optimizer (lib/cm/iropt.ml): each pass
   exercised on a hand-written snippet, asserting both that the rewrite
   fires (instruction census) and that the optimized program still
   computes the same thing.  The whole-corpus and fuzzed equivalence
   checks live in test_engine.ml; these pin down the individual
   transformations. *)

open Cm.Paris

let class_count cls prog =
  match List.assoc_opt cls (Cm.Iropt.class_counts prog) with
  | Some n -> n
  | None -> 0

let count_instr p prog =
  Array.fold_left (fun a i -> if p i then a + 1 else a) 0 prog.code

let run_fields ?(seed = 7) prog =
  let m = Cm.Machine.create ~seed ~fuel:1_000_000 prog in
  Cm.Machine.run m;
  m

let check_same_fields name prog opt =
  let m0 = run_fields prog and m1 = run_fields opt in
  Array.iteri
    (fun f (_vp, kind) ->
      match kind with
      | KInt ->
          Alcotest.(check (array int))
            (Printf.sprintf "%s: f%d" name f)
            (Cm.Machine.field_ints m0 f)
            (Cm.Machine.field_ints m1 f)
      | KFloat ->
          Alcotest.(check (array (float 0.0)))
            (Printf.sprintf "%s: f%d" name f)
            (Cm.Machine.field_floats m0 f)
            (Cm.Machine.field_floats m1 f))
    prog.fields;
  Alcotest.(check (list string))
    (name ^ ": output") (Cm.Machine.output m0) (Cm.Machine.output m1);
  let ns m = (Cm.Machine.meter m).Cm.Cost.elapsed_ns in
  if ns m1 > ns m0 then
    Alcotest.failf "%s: simulated time rose %.0f -> %.0f ns" name (ns m0)
      (ns m1)

(* ---- get -> send conversion (paper: remote read to remote write) ---- *)

(* path[i] fetched via an identity address then forwarded with a
   combining send: the classic get-then-forward pair.  The optimizer
   recognizes the identity address (a Pcoord on a rank-1 set), degrades
   the Pget to a local move, copy-propagates the moved field into the
   Psend and deletes the move — one router operation instead of two. *)
let get_forward_prog n =
  let b = Builder.create "get-forward" in
  let vp = Builder.vpset b (Cm.Geometry.create [ n ]) in
  let src = Builder.field b ~vpset:vp KInt in
  let dst = Builder.field b ~vpset:vp KInt in
  let tmp = Builder.field b ~vpset:vp KInt in
  let idaddr = Builder.field b ~vpset:vp KInt in
  let raddr = Builder.field b ~vpset:vp KInt in
  Builder.emit b (Cwith vp);
  Builder.emit b (Pcoord (idaddr, 0));
  Builder.emit b (Prand (src, Imm (SInt 50)));
  Builder.emit b (Prand (raddr, Imm (SInt n)));
  Builder.emit b (Pmov (dst, Imm (SInt 999)));
  Builder.emit b (Pget (tmp, src, idaddr));
  Builder.emit b (Psend (dst, tmp, raddr, Cmin));
  Builder.emit b Halt;
  Builder.finish b

let test_get_to_send () =
  let prog = get_forward_prog 16 in
  let opt, stats = Cm.Iropt.run prog in
  Alcotest.(check int) "router ops before" 2 (class_count "router" prog);
  Alcotest.(check int) "router ops after" 1 (class_count "router" opt);
  let gs =
    List.find (fun p -> p.Cm.Iropt.pass = "getsend") stats.Cm.Iropt.passes
  in
  Alcotest.(check bool) "getsend fired" true (gs.Cm.Iropt.rewritten >= 1);
  (match
     Array.to_list opt.code
     |> List.find_opt (function Psend _ -> true | _ -> false)
   with
  | Some (Psend (_, s, _, Cmin)) ->
      (* [src] is the first field allocated in get_forward_prog *)
      Alcotest.(check int) "send now reads the get's source" 0 s
  | _ -> Alcotest.fail "expected a surviving Psend");
  check_same_fields "get-to-send" prog opt

(* a non-identity address must NOT be rewritten *)
let test_get_not_identity () =
  let b = Builder.create "get-keep" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 8 ]) in
  let src = Builder.field b ~vpset:vp KInt in
  let dst = Builder.field b ~vpset:vp KInt in
  let addr = Builder.field b ~vpset:vp KInt in
  Builder.emit b (Cwith vp);
  Builder.emit b (Prand (src, Imm (SInt 50)));
  Builder.emit b (Prand (addr, Imm (SInt 8)));
  Builder.emit b (Pget (dst, src, addr));
  Builder.emit b Halt;
  let prog = Builder.finish b in
  let opt, _ = Cm.Iropt.run prog in
  Alcotest.(check int) "router op kept" 1 (class_count "router" opt);
  check_same_fields "get-keep" prog opt

(* ---- context push/pop cancellation ---- *)

let test_context_pair_cancel () =
  let b = Builder.create "ctx-cancel" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 8 ]) in
  let f = Builder.field b ~vpset:vp KInt in
  let r = Builder.reg b in
  Builder.emit b (Cwith vp);
  Builder.emit b (Prand (f, Imm (SInt 9)));
  (* only front-end work between the push and the pop: cancels *)
  Builder.emit b Cpush;
  Builder.emit b (Cand f);
  Builder.emit b (Fmov (r, Imm (SInt 3)));
  Builder.emit b Cpop;
  Builder.emit b (Fprint ("r=", Some (Reg r)));
  (* a parallel instruction under the narrowed context: must be kept *)
  Builder.emit b Cpush;
  Builder.emit b (Cand f);
  Builder.emit b (Pbin (Add, f, Fld f, Imm (SInt 1)));
  Builder.emit b Cpop;
  Builder.emit b Halt;
  let prog = Builder.finish b in
  let opt, _ = Cm.Iropt.run prog in
  let pushes = count_instr (function Cpush -> true | _ -> false) in
  Alcotest.(check int) "pushes before" 2 (pushes prog);
  Alcotest.(check int) "pushes after" 1 (pushes opt);
  check_same_fields "ctx-cancel" prog opt

(* ---- dead-field elimination ---- *)

let test_dead_field_elim () =
  let b = Builder.create "dead-field" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 8 ]) in
  let live = Builder.field b ~vpset:vp KInt in
  let dead = Builder.field b ~vpset:vp KInt in
  Builder.emit b (Cwith vp);
  Builder.emit b (Pcoord (live, 0));
  Builder.emit b (Pbin (Mul, dead, Fld live, Fld live));
  Builder.emit b (Pbin (Add, live, Fld live, Imm (SInt 1)));
  Builder.emit b Halt;
  let prog = Builder.finish b in
  (* with every field observable nothing may be deleted *)
  let all, _ = Cm.Iropt.run prog in
  Alcotest.(check int) "all live: pe kept" 3 (class_count "pe" all);
  (* with only [live] observable the Pbin into [dead] disappears *)
  let opt, stats =
    Cm.Iropt.run ~live_out_fields:[ live ] ~live_out_regs:[] prog
  in
  Alcotest.(check int) "dead store gone" 2 (class_count "pe" opt);
  let dce =
    List.find (fun p -> p.Cm.Iropt.pass = "dce") stats.Cm.Iropt.passes
  in
  Alcotest.(check bool) "dce fired" true (dce.Cm.Iropt.removed >= 1);
  let m0 = run_fields prog and m1 = run_fields opt in
  Alcotest.(check (array int))
    "live field agrees"
    (Cm.Machine.field_ints m0 live)
    (Cm.Machine.field_ints m1 live)

(* a store that might fault (division by a data-dependent value) must
   survive even when its destination is dead *)
let test_dead_but_faulting_kept () =
  let b = Builder.create "dead-faulting" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 8 ]) in
  let live = Builder.field b ~vpset:vp KInt in
  let dead = Builder.field b ~vpset:vp KInt in
  let divisor = Builder.field b ~vpset:vp KInt in
  Builder.emit b (Cwith vp);
  Builder.emit b (Pcoord (live, 0));
  Builder.emit b (Prand (divisor, Imm (SInt 3)));
  Builder.emit b (Pbin (Div, dead, Fld live, Fld divisor));
  Builder.emit b Halt;
  let prog = Builder.finish b in
  let opt, _ =
    Cm.Iropt.run ~live_out_fields:[ live ] ~live_out_regs:[] prog
  in
  Alcotest.(check int) "faulting div kept"
    (count_instr (function Pbin (Div, _, _, _) -> true | _ -> false) prog)
    (count_instr (function Pbin (Div, _, _, _) -> true | _ -> false) opt)

(* ---- front-end constant folding and propagation ---- *)

let test_const_fold () =
  let b = Builder.create "fold" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
  let f = Builder.field b ~vpset:vp KInt in
  let r0 = Builder.reg b in
  let r1 = Builder.reg b in
  let r2 = Builder.reg b in
  Builder.emit b (Fmov (r0, Imm (SInt 2)));
  Builder.emit b (Fmov (r1, Imm (SInt 3)));
  Builder.emit b (Fbin (Mul, r2, Reg r0, Reg r1));
  Builder.emit b (Cwith vp);
  (* the folded constant must be pushed into the parallel operand *)
  Builder.emit b (Pmov (f, Reg r2));
  Builder.emit b (Fprint ("r2=", Some (Reg r2)));
  Builder.emit b Halt;
  let prog = Builder.finish b in
  let opt, _ = Cm.Iropt.run prog in
  Alcotest.(check bool) "Pmov got an immediate" true
    (Array.exists
       (function Pmov (_, Imm (SInt 6)) -> true | _ -> false)
       opt.code);
  check_same_fields "fold" prog opt

let test_algebraic_identity () =
  let b = Builder.create "algebra" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
  let f = Builder.field b ~vpset:vp KInt in
  let g = Builder.field b ~vpset:vp KInt in
  Builder.emit b (Cwith vp);
  Builder.emit b (Pcoord (f, 0));
  Builder.emit b (Pbin (Add, g, Fld f, Imm (SInt 0)));
  Builder.emit b (Pbin (Mul, g, Fld g, Imm (SInt 1)));
  Builder.emit b Halt;
  let prog = Builder.finish b in
  let opt, _ = Cm.Iropt.run prog in
  Alcotest.(check int) "x+0 and x*1 reduced to moves/nothing" 0
    (count_instr (function Pbin _ -> true | _ -> false) opt);
  check_same_fields "algebra" prog opt

(* ---- jump threading and unreachable code ---- *)

let test_jump_threading () =
  let b = Builder.create "jumps" in
  let r = Builder.reg b in
  let l1 = Builder.label b in
  let l2 = Builder.label b in
  Builder.emit b (Fmov (r, Imm (SInt 1)));
  Builder.emit b (Jmp l1);
  (* unreachable: *)
  Builder.emit b (Fmov (r, Imm (SInt 99)));
  Builder.place b l1;
  Builder.emit b (Jmp l2);
  Builder.emit b (Fmov (r, Imm (SInt 98)));
  Builder.place b l2;
  Builder.emit b (Fprint ("r=", Some (Reg r)));
  Builder.emit b Halt;
  let prog = Builder.finish b in
  let opt, _ = Cm.Iropt.run prog in
  Alcotest.(check int) "no jumps survive" 0
    (count_instr (function Jmp _ | Jz _ | Jnz _ -> true | _ -> false) opt);
  Alcotest.(check int) "unreachable stores gone" 0
    (count_instr
       (function
         | Fmov (_, Imm (SInt (98 | 99))) -> true | _ -> false)
       opt);
  check_same_fields "jumps" prog opt

(* ---- config parsing ---- *)

let test_config_of_string () =
  let ok s = Result.get_ok (Cm.Iropt.config_of_string s) in
  Alcotest.(check string)
    "on" (Cm.Iropt.config_summary Cm.Iropt.default)
    (Cm.Iropt.config_summary (ok "on"));
  Alcotest.(check string) "off" "off" (Cm.Iropt.config_summary (ok "off"));
  Alcotest.(check string)
    "subset" "dce,peephole"
    (Cm.Iropt.config_summary (ok "peephole,dce"));
  Alcotest.(check bool) "bad pass rejected" true
    (Result.is_error (Cm.Iropt.config_of_string "peephole,bogus"));
  (* summaries round-trip *)
  List.iter
    (fun s ->
      let c = ok s in
      Alcotest.(check string) ("round-trip " ^ s)
        (Cm.Iropt.config_summary c)
        (Cm.Iropt.config_summary (ok (Cm.Iropt.config_summary c))))
    [ "on"; "off"; "constprop"; "dce"; "getsend"; "constprop,getsend" ]

let test_off_is_identity () =
  let prog = get_forward_prog 8 in
  let opt, stats = Cm.Iropt.run ~config:Cm.Iropt.off prog in
  Alcotest.(check bool) "same code" true (prog.code == opt.code);
  Alcotest.(check int) "no rounds" 0 stats.Cm.Iropt.rounds

(* ---- whole-corpus ablation: optimizer on vs off ---- *)

(* The observable contract for a compiled UC program: printed output,
   every named array and scalar, and the simulated clock, which must
   never rise.  Temporaries are private to the compiler and may differ
   (that is the point of dead-code elimination). *)
let corpus_case (name, src) =
  let on = Uc.Compile.compile_source src in
  let off =
    Uc.Compile.compile_source
      ~options:{ Uc.Codegen.default_options with ir_opt = Cm.Iropt.off }
      src
  in
  Alcotest.(check bool)
    (name ^ ": optimizer does not grow the program")
    true
    (Array.length on.Uc.Codegen.prog.code
    <= Array.length off.Uc.Codegen.prog.code);
  let seed = 20260705 in
  let ton = Uc.Compile.run_compiled ~seed ~fuel:50_000_000 on in
  let toff = Uc.Compile.run_compiled ~seed ~fuel:50_000_000 off in
  Alcotest.(check (list string))
    (name ^ ": output") (Uc.Compile.output toff) (Uc.Compile.output ton);
  List.iter
    (fun (aname, meta) ->
      match meta.Uc.Codegen.aty with
      | Uc.Ast.Tint ->
          Alcotest.(check (array int))
            (Printf.sprintf "%s: %s" name aname)
            (Uc.Compile.int_array toff aname)
            (Uc.Compile.int_array ton aname)
      | Uc.Ast.Tfloat ->
          Alcotest.(check (array (float 0.0)))
            (Printf.sprintf "%s: %s" name aname)
            (Uc.Compile.float_array toff aname)
            (Uc.Compile.float_array ton aname))
    on.Uc.Codegen.carrays;
  List.iter
    (fun (sname, _) ->
      let show = function
        | SInt i -> string_of_int i
        | SFloat f -> Printf.sprintf "%h" f
      in
      Alcotest.(check string)
        (Printf.sprintf "%s: %s" name sname)
        (show (Uc.Compile.scalar toff sname))
        (show (Uc.Compile.scalar ton sname)))
    on.Uc.Codegen.cscalars;
  let ns t = (Uc.Compile.meter t).Cm.Cost.elapsed_ns in
  if ns ton > ns toff then
    Alcotest.failf "%s: simulated time rose %.0f -> %.0f ns" name (ns toff)
      (ns ton)

let test_uc_corpus () = List.iter corpus_case Uc_programs.Programs.all_named

(* Regression: constprop must never propagate a staged copy into a
   communication instruction so that it reads the field it writes.
   The codegen emits `pmov f', f; psend f[addr], f'` for a permuted
   parallel assignment precisely because the send updates the
   destination in place; substituting f for f' let it read cells it
   had already overwritten (found by the differential fuzzer). *)
let test_send_copy_not_aliased () =
  corpus_case
    ( "send-alias",
      "#define N 8\n\
       index-set I:i = {0..N-1};\n\
       int a[N];\n\
       void main() {\n\
      \  par (I) a[i] = i;\n\
      \  par (I) st ((i) % 2 == 0) {\n\
      \    int t;\n\
      \    t = i;\n\
      \    a[i] = t + 1;\n\
      \  }\n\
      \  par (I) a[(i + 3) % 8] = a[i];\n\
       }\n" )

let test_cstar_corpus () =
  List.iter
    (fun (name, (prog_on, fld_on), (prog_off, fld_off)) ->
      Alcotest.(check bool)
        (name ^ ": optimizer does not grow the program")
        true
        (Array.length prog_on.code <= Array.length prog_off.code);
      let m_on = run_fields ~seed:11 prog_on in
      let m_off = run_fields ~seed:11 prog_off in
      Alcotest.(check (array int))
        (name ^ ": len field")
        (Cm.Machine.field_ints m_off fld_off)
        (Cm.Machine.field_ints m_on fld_on);
      let ns m = (Cm.Machine.meter m).Cm.Cost.elapsed_ns in
      if ns m_on > ns m_off then
        Alcotest.failf "%s: simulated time rose" name)
    [
      ( "path_n2",
        Cstar.Programs.path_n2 ~n:8 (),
        Cstar.Programs.path_n2 ~ir_opt:Cm.Iropt.off ~n:8 () );
      ( "path_n2-rand",
        Cstar.Programs.path_n2 ~deterministic:false ~n:8 (),
        Cstar.Programs.path_n2 ~deterministic:false ~ir_opt:Cm.Iropt.off
          ~n:8 () );
      ( "path_n3",
        Cstar.Programs.path_n3 ~n:5 (),
        Cstar.Programs.path_n3 ~ir_opt:Cm.Iropt.off ~n:5 () );
    ]

let () =
  Alcotest.run "iropt"
    [
      ( "passes",
        [
          Alcotest.test_case "get->send conversion" `Quick test_get_to_send;
          Alcotest.test_case "non-identity get kept" `Quick
            test_get_not_identity;
          Alcotest.test_case "context pair cancellation" `Quick
            test_context_pair_cancel;
          Alcotest.test_case "dead-field elimination" `Quick
            test_dead_field_elim;
          Alcotest.test_case "possibly-faulting store kept" `Quick
            test_dead_but_faulting_kept;
          Alcotest.test_case "constant folding" `Quick test_const_fold;
          Alcotest.test_case "algebraic identities" `Quick
            test_algebraic_identity;
          Alcotest.test_case "jump threading" `Quick test_jump_threading;
          Alcotest.test_case "config parsing" `Quick test_config_of_string;
          Alcotest.test_case "off is identity" `Quick test_off_is_identity;
          Alcotest.test_case "staged send copy never aliased" `Quick
            test_send_copy_not_aliased;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "uc programs: on == off" `Quick test_uc_corpus;
          Alcotest.test_case "cstar programs: on == off" `Quick
            test_cstar_corpus;
        ] );
    ]
