#!/usr/bin/env bash
# `make ci-serve` gate: boot the daemon, push the whole corpus from two
# concurrent clients, require their rows bit-identical to `ucc batch`,
# shed load through a typed `overloaded` rejection, and drain cleanly.
# Run from the repository root (the Makefile does).
set -euo pipefail
trap 'echo "ci_serve.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

UCC=${UCC:-_build/default/bin/ucc.exe}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/ucc_ci_serve.XXXXXX")
SOCK="$WORK/ucd.sock"
SOCK2="$WORK/ucd2.sock"
SERVE_PID= ; SERVE2_PID=
cleanup() { kill $SERVE_PID $SERVE2_PID 2>/dev/null || true; rm -rf "$WORK"; }
trap cleanup EXIT

# deterministic identity: everything but wall time and cache provenance
strip() { sed 's/,"wall_seconds":[^,]*,"cache":"[a-z]*"}/}/' "$1" | grep '"job":'; }

wait_sock() {
  for _ in $(seq 1 200); do [ -S "$1" ] && return 0; sleep 0.05; done
  return 1
}

$UCC serve --socket "$SOCK" --cache-dir "$WORK/cache" --jobs 2 --max-queue 64 \
  2> "$WORK/serve.log" &
SERVE_PID=$!
wait_sock "$SOCK"

# two concurrent clients, distinct tenants, the whole corpus each; the
# second lands mostly warm, so this covers the cache path too
$UCC submit --socket "$SOCK" --corpus --wait --tenant alpha \
  > "$WORK/alpha.jsonl" 2>/dev/null &
ALPHA=$!
$UCC submit --socket "$SOCK" --corpus --wait --tenant beta \
  > "$WORK/beta.jsonl" 2>/dev/null &
BETA=$!
wait "$ALPHA"
wait "$BETA"

# both clients' rows must be bit-identical to a batch run's
$UCC batch --cache-dir none > "$WORK/batch.jsonl" 2>/dev/null
[ "$(strip "$WORK/batch.jsonl")" = "$(strip "$WORK/alpha.jsonl")" ]
[ "$(strip "$WORK/batch.jsonl")" = "$(strip "$WORK/beta.jsonl")" ]

# SIGTERM drains and exits 0, removing the socket
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=
grep -q "drained cleanly" "$WORK/serve.log"
[ ! -e "$SOCK" ]

# overload: a one-slot queue sheds pipelined corpus load with a typed
# rejection and a non-zero exit, and the daemon stays healthy after
$UCC serve --socket "$SOCK2" --cache-dir none --jobs 1 --max-queue 1 \
  2> "$WORK/serve2.log" &
SERVE2_PID=$!
wait_sock "$SOCK2"
if $UCC submit --socket "$SOCK2" --corpus --wait \
     > "$WORK/overload.jsonl" 2> "$WORK/overload.log"; then
  exit 1
else
  [ "$?" = 2 ]
fi
grep -q "rejected (overloaded)" "$WORK/overload.log"

# a client-requested drain finishes in-flight work and exits 0
$UCC submit --socket "$SOCK2" --drain 2> "$WORK/drain.log"
grep -q "server draining" "$WORK/drain.log"
wait "$SERVE2_PID"
SERVE2_PID=
grep -q "drained cleanly" "$WORK/serve2.log"

echo "serve gate: corpus identical over the wire, overload shed, drains clean"
