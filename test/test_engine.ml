(* Differential testing of the Machine execution engines.

   The contract (machine.mli) is that `Fast, `Reference and `Sharded n —
   at every shard count n — are observably identical bit for bit:
   registers, every field, printed output, meter statistics, simulated
   nanoseconds, region accounting and — on faulting programs — the error
   message and the partial state at the fault.  This file enforces the
   contract several ways:

   - a QCheck harness generating random small Paris programs (including
     deliberately faulting ones: shifts out of range, division by zero,
     conflicting Ccheck sends, bad axes) and comparing full snapshots
     across all engines, with shard counts drawn from {1, 2, 3, 7,
     ncores} so chunk-boundary edge cases (shards > VPs, ragged last
     chunk) are hit;
   - whole-corpus equivalence over every named UC program in
     lib/uc_programs and the C* baselines in lib/cstar;
   - checkpoint-interrupt-resume runs that rotate through all three
     engines at every slice boundary;
   - targeted unit tests: the shift-range check on every engine, the
     shard chunk layout, and a VP set big enough to cross the sharded
     engine's fan-out threshold so the domain team really runs. *)

open Cm.Paris

let hex f = Printf.sprintf "%Lx" (Int64.bits_of_float f)

(* Everything observable, floats rendered as bit patterns so that -0.0,
   NaN payloads and last-ulp differences all count. *)
let snapshot (prog : program) (m : Cm.Machine.t) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for r = 0 to prog.nregs - 1 do
    match Cm.Machine.reg m r with
    | SInt i -> add "r%d = %d\n" r i
    | SFloat f -> add "r%d = %s\n" r (hex f)
  done;
  Array.iteri
    (fun f (_vp, kind) ->
      add "f%d =" f;
      (match kind with
      | KInt -> Array.iter (fun v -> add " %d" v) (Cm.Machine.field_ints m f)
      | KFloat ->
          Array.iter (fun v -> add " %s" (hex v)) (Cm.Machine.field_floats m f));
      add "\n")
    prog.fields;
  List.iter (fun line -> add "| %s\n" line) (Cm.Machine.output m);
  let mt = Cm.Machine.meter m in
  add "elapsed=%s fe=%d pe=%d ctx=%d news=%d rops=%d rmsg=%d red=%d scan=%d xfer=%d\n"
    (hex mt.Cm.Cost.elapsed_ns) mt.Cm.Cost.fe_ops mt.Cm.Cost.pe_ops
    mt.Cm.Cost.context_ops mt.Cm.Cost.news_ops mt.Cm.Cost.router_ops
    mt.Cm.Cost.router_messages mt.Cm.Cost.reductions mt.Cm.Cost.scans
    mt.Cm.Cost.fe_cm_transfers;
  List.iter
    (fun (name, secs) -> add "region %s = %s\n" name (hex secs))
    (Cm.Machine.regions m);
  List.iter (fun line -> add "fault %s\n" line) (Cm.Machine.fault_log m);
  add "icount=%d\n" (Cm.Machine.icount m);
  Buffer.contents b

let run_engine ~seed ~fuel ?faults engine prog =
  let m = Cm.Machine.create ~seed ~fuel ~engine ?faults prog in
  let status =
    match Cm.Machine.run m with
    | () -> "finished"
    | exception Cm.Machine.Fault msg -> "fault: " ^ msg
    | exception Cm.Machine.Error msg -> "error: " ^ msg
    (* the reference interpreter leaks Invalid_argument for a few
       malformed programs (e.g. a non-reducible Preduce operator); the
       fast engine must leak the identical exception *)
    | exception Invalid_argument msg -> "invalid_arg: " ^ msg
    | exception Failure msg -> "failure: " ^ msg
  in
  status ^ "\n" ^ snapshot prog m

let ncores = max 1 (Domain.recommended_domain_count ())

(* 1 = degenerate, 2/3 = ragged chunks on most corpus geometries, 7 >
   the smallest QCheck VP sets (more shards than VPs), ncores = what
   `ucc run --engine sharded` defaults to on this host. *)
let shard_counts = List.sort_uniq compare [ 1; 2; 3; 7; ncores ]

let other_engines : (string * Cm.Machine.engine) list =
  ("reference", `Reference)
  :: List.map
       (fun s -> (Printf.sprintf "sharded:%d" s, `Sharded s))
       shard_counts

(* Compare every engine against `Fast; report the first divergence. *)
let engines_agree ~seed ~fuel ?faults prog =
  let fast = run_engine ~seed ~fuel ?faults `Fast prog in
  let rec check = function
    | [] -> None
    | (name, engine) :: rest ->
        let other = run_engine ~seed ~fuel ?faults engine prog in
        if String.equal fast other then check rest
        else Some (name, fast, other)
  in
  check other_engines

let assert_agree ~seed ~fuel ?faults name prog =
  match engines_agree ~seed ~fuel ?faults prog with
  | None -> ()
  | Some (ename, fast, other) ->
      Alcotest.failf
        "%s: engines disagree@.--- fast ---@.%s--- %s ---@.%s" name fast
        ename other

(* ------------------------------------------------------------------ *)
(* Random Paris programs                                              *)
(* ------------------------------------------------------------------ *)

(* The generator works over a fixed storage layout so operand choices
   can be made before the Builder exists; [build] allocates in the same
   order and asserts the ids line up.  Main VP set with a handful of int
   and float fields, plus a rank-1 outer set whose geometry is a prefix
   of every candidate [dims] (for Preduce_axis). *)

let vp_main = 0
let vp_outer = 1
let int_flds = [ 0; 1; 2; 3 ]
let float_flds = [ 4; 5 ]
let outer_int = 6
let outer_float = 7
let nregs = 4 (* regs 0..2 free for the generator; reg 3 is the loop counter *)

(* Structured recipe: composite nodes keep Cpush/Cpop, Cwith and labels
   balanced by construction, so generated programs are mostly valid and
   faults come from data (shift amounts, zero divisors, send conflicts),
   not from malformed nesting. *)
type node =
  | I of instr list
  | Guard of int * node list (* Cpush; Cand fld; body; Cpop *)
  | Skip of operand * node list (* Jnz cond over body *)
  | Loop2 of node list (* body twice via a backward branch on reg 3 *)
  | OnOuter of node list (* Cwith outer; body; Cwith main *)

let flatten nodes =
  let next_label = ref 0 in
  let fresh () =
    let l = !next_label in
    incr next_label;
    l
  in
  let buf = ref [] in
  let emit i = buf := i :: !buf in
  let rec go = function
    | I is -> List.iter emit is
    | Guard (fld, body) ->
        emit Cpush;
        emit (Cand fld);
        List.iter go body;
        emit Cpop
    | Skip (cond, body) ->
        let l = fresh () in
        emit (Jnz (cond, l));
        List.iter go body;
        emit (Label l)
    | Loop2 body ->
        let l = fresh () in
        emit (Fmov (3, Imm (SInt 2)));
        emit (Label l);
        List.iter go body;
        emit (Fbin (Sub, 3, Reg 3, Imm (SInt 1)));
        emit (Jnz (Reg 3, l))
    | OnOuter body ->
        emit (Cwith vp_outer);
        List.iter go body;
        emit (Cwith vp_main)
  in
  List.iter go nodes;
  (List.rev !buf, !next_label)

let build dims nodes =
  let b = Builder.create "qcheck" in
  let vm = Builder.vpset b (Cm.Geometry.create dims) in
  let vo = Builder.vpset b (Cm.Geometry.create [ List.hd dims ]) in
  assert (vm = vp_main && vo = vp_outer);
  List.iter
    (fun f -> assert (Builder.field b ~vpset:vp_main KInt = f))
    int_flds;
  List.iter
    (fun f -> assert (Builder.field b ~vpset:vp_main KFloat = f))
    float_flds;
  assert (Builder.field b ~vpset:vp_outer KInt = outer_int);
  assert (Builder.field b ~vpset:vp_outer KFloat = outer_float);
  for _ = 1 to nregs do
    ignore (Builder.reg b)
  done;
  let body, nlabels = flatten nodes in
  for _ = 1 to nlabels do
    ignore (Builder.label b)
  done;
  let nv = List.fold_left ( * ) 1 dims in
  let prologue =
    [
      Cwith vp_main;
      Pcoord (0, 0);
      Prand (1, Imm (SInt 7));
      Prand (2, Imm (SInt 5));
      Prand (3, Imm (SInt nv));
      Punop (ToFloat, 4, Fld 1);
      Punop (ToFloat, 5, Fld 2);
      Cwith vp_outer;
      Prand (outer_int, Imm (SInt 9));
      Punop (ToFloat, outer_float, Fld outer_int);
      Cwith vp_main;
    ]
  in
  let epilogue =
    [
      Preduce (Add, 0, 1);
      Preduce (Max, 1, 4);
      Pcount 2;
      Fprint ("sum=", Some (Reg 0));
      Fprint ("max=", Some (Reg 1));
      Fprint ("n=", Some (Reg 2));
    ]
  in
  List.iter (Builder.emit b) (prologue @ body @ epilogue);
  Builder.finish b

open QCheck2

let gen_int_fld = Gen.oneofl int_flds
let gen_float_fld = Gen.oneofl float_flds
let gen_reg = Gen.int_range 0 2

let gen_int_operand =
  Gen.frequency
    [
      (5, Gen.map (fun f -> Fld f) gen_int_fld);
      (3, Gen.map (fun i -> Imm (SInt i)) (Gen.int_range (-9) 20));
      (2, Gen.map (fun r -> Reg r) gen_reg);
    ]

let gen_float_operand =
  Gen.frequency
    [
      (4, Gen.map (fun f -> Fld f) gen_float_fld);
      (2, Gen.map (fun f -> Fld f) gen_int_fld);
      ( 2,
        Gen.map
          (fun i -> Imm (SFloat (0.25 *. float_of_int i)))
          (Gen.int_range (-8) 12) );
      (2, Gen.map (fun r -> Reg r) gen_reg);
    ]

let gen_int_op =
  Gen.frequency
    [
      ( 10,
        Gen.oneofl
          [ Add; Sub; Mul; Min; Max; Band; Bor; Bxor; Land; Lor;
            Eq; Ne; Lt; Le; Gt; Ge ] );
      (2, Gen.oneofl [ Div; Mod ]);
      (1, Gen.oneofl [ Shl; Shr ]);
    ]

let gen_float_op =
  Gen.oneofl [ Add; Sub; Mul; Div; Min; Max; Eq; Ne; Lt; Le; Gt; Ge ]

(* Mostly in-range, sometimes wildly out (the Shl/Shr range check must
   fault identically on both engines). *)
let gen_shift_amount =
  Gen.frequency
    [
      (6, Gen.map (fun i -> Imm (SInt i)) (Gen.int_range 0 8));
      (1, Gen.map (fun i -> Imm (SInt i)) (Gen.oneofl [ -1; -7; 62; 63; 64; 200 ]));
      (1, Gen.map (fun f -> Fld f) gen_int_fld);
    ]

(* Divisors biased nonzero so most programs run to completion; the
   remainder exercise the divide-by-zero fault path. *)
let gen_divisor =
  Gen.frequency
    [
      (6, Gen.map (fun i -> Imm (SInt i)) (Gen.oneofl [ 1; 2; 3; 5; 7; -3 ]));
      (1, gen_int_operand);
    ]

let gen_axis rank =
  Gen.frequency
    [ (9, Gen.int_range 0 (rank - 1)); (1, Gen.return rank) (* faulting *) ]

let gen_combine =
  Gen.frequency
    [
      (8, Gen.oneofl [ Cadd; Cmin; Cmax; Cor; Cand; Cxor; Cover ]);
      (1, Gen.return Ccheck) (* conflicts fault; both engines must agree *);
    ]

let gen_leaf nv rank : instr list Gen.t =
  let open Gen in
  frequency
    [
      (* parallel int ALU *)
      ( 7,
        let* op = gen_int_op in
        let* d = gen_int_fld and* a = gen_int_operand in
        let* b =
          match op with
          | Shl | Shr -> gen_shift_amount
          | Div | Mod -> gen_divisor
          | _ -> gen_int_operand
        in
        return [ Pbin (op, d, a, b) ] );
      (* parallel float ALU *)
      ( 4,
        let* op = gen_float_op and* d = gen_float_fld in
        let* a = gen_float_operand and* b = gen_float_operand in
        return [ Pbin (op, d, a, b) ] );
      (* moves *)
      ( 3,
        let* d = gen_int_fld and* a = gen_int_operand in
        return [ Pmov (d, a) ] );
      ( 2,
        let* d = gen_float_fld and* a = gen_float_operand in
        return [ Pmov (d, a) ] );
      (* unops *)
      ( 2,
        let* op = oneofl [ Neg; Lnot; Bnot; Abs ] in
        let* d = gen_int_fld and* a = gen_int_operand in
        return [ Punop (op, d, a) ] );
      ( 1,
        let* d = gen_int_fld and* a = gen_float_operand in
        return [ Punop (ToInt, d, a) ] );
      ( 1,
        let* d = gen_float_fld and* a = gen_int_operand in
        return [ Punop (ToFloat, d, a) ] );
      ( 1,
        let* op = oneofl [ Neg; Abs ] in
        let* d = gen_float_fld and* a = gen_float_operand in
        return [ Punop (op, d, a) ] );
      (* coordinates, tables, parallel rand *)
      ( 2,
        let* d = gen_int_fld and* axis = gen_axis rank in
        return [ Pcoord (d, axis) ] );
      ( 1,
        let* d = gen_int_fld in
        let* tbl = array_size (return nv) (int_range (-5) 30) in
        return [ Ptable (d, tbl) ] );
      ( 2,
        let* d = gen_int_fld in
        let* m =
          frequency
            [
              (8, map (fun i -> Imm (SInt i)) (int_range 1 12));
              (1, return (Imm (SInt 0))) (* faulting modulus *);
            ]
        in
        return [ Prand (d, m) ] );
      (* select *)
      ( 2,
        let* d = gen_int_fld in
        let* c = oneof [ map (fun f -> Fld f) gen_int_fld;
                         map (fun f -> Fld f) gen_float_fld ] in
        let* a = gen_int_operand and* b = gen_int_operand in
        return [ Psel (d, c, a, b) ] );
      ( 1,
        let* d = gen_float_fld and* c = map (fun f -> Fld f) gen_int_fld in
        let* a = gen_float_operand and* b = gen_float_operand in
        return [ Psel (d, c, a, b) ] );
      (* reductions and scans *)
      ( 2,
        let* op =
          frequency
            [
              ( 9,
                oneofl [ Add; Mul; Min; Max; Band; Bor; Bxor; Land; Lor; Any ] );
              (1, return Eq) (* not reducible: identity fault *);
            ]
        in
        let* r = gen_reg and* f = gen_int_fld in
        return [ Preduce (op, r, f) ] );
      ( 1,
        let* op = oneofl [ Add; Mul; Min; Max; Any ] in
        let* r = gen_reg and* f = gen_float_fld in
        return [ Preduce (op, r, f) ] );
      ( 1,
        let* r = gen_reg in
        return [ Pcount r ] );
      ( 2,
        let* op = oneofl [ Add; Mul; Min; Max; Bor; Band; Bxor; Land; Lor ] in
        let* d = gen_int_fld and* s = gen_int_fld and* axis = gen_axis rank in
        return [ Pscan (op, d, s, axis) ] );
      ( 1,
        let* op = oneofl [ Add; Mul; Min; Max ] in
        let* d = gen_float_fld and* s = gen_float_fld in
        let* axis = gen_axis rank in
        return [ Pscan (op, d, s, axis) ] );
      ( 1,
        let* op = frequency [ (9, oneofl [ Add; Min; Max ]); (1, return Eq) ] in
        let* s = gen_int_fld in
        return [ Preduce_axis (op, outer_int, s) ] );
      ( 1,
        let* op = oneofl [ Add; Min; Max ] in
        let* s = gen_float_fld in
        return [ Preduce_axis (op, outer_float, s) ] );
      (* NEWS shifts, including dst == src aliasing in both directions *)
      ( 3,
        let* d = gen_int_fld and* s = gen_int_fld in
        let* axis = gen_axis rank and* delta = int_range (-3) 3 in
        return [ Pnews (d, s, axis, delta) ] );
      ( 2,
        let* d = gen_float_fld and* s = gen_float_fld in
        let* axis = gen_axis rank and* delta = int_range (-3) 3 in
        return [ Pnews (d, s, axis, delta) ] );
      (* router traffic; the Prand prefix keeps addresses in range most
         of the time, the no-prefix variants exercise the bounds fault *)
      ( 2,
        let* addr = gen_int_fld and* d = gen_int_fld and* s = gen_int_fld in
        let* fresh = frequency [ (3, return true); (1, return false) ] in
        let pre = if fresh then [ Prand (addr, Imm (SInt nv)) ] else [] in
        return (pre @ [ Pget (d, s, addr) ]) );
      ( 1,
        let* addr = gen_int_fld and* d = gen_float_fld and* s = gen_float_fld in
        return [ Prand (addr, Imm (SInt nv)); Pget (d, s, addr) ] );
      ( 2,
        let* addr = gen_int_fld and* d = gen_int_fld and* s = gen_int_fld in
        let* combine = gen_combine in
        return [ Prand (addr, Imm (SInt nv)); Psend (d, s, addr, combine) ] );
      ( 1,
        let* addr = gen_int_fld and* d = gen_float_fld and* s = gen_float_fld in
        let* combine = oneofl [ Cadd; Cmin; Cmax; Cover ] in
        return [ Prand (addr, Imm (SInt nv)); Psend (d, s, addr, combine) ] );
      (* context *)
      ( 1,
        let* d = gen_int_fld in
        return [ Cread d ] );
      (* front end *)
      ( 2,
        let* r = gen_reg and* i = int_range (-20) 20 in
        return [ Fmov (r, Imm (SInt i)) ] );
      ( 2,
        let* op = oneofl [ Add; Sub; Mul; Min; Max ] in
        let* r = gen_reg and* a = gen_reg and* i = int_range (-9) 9 in
        return [ Fbin (op, r, Reg a, Imm (SInt i)) ] );
      ( 1,
        let* op = oneofl [ Neg; Abs; ToFloat; ToInt ] in
        let* r = gen_reg and* a = gen_reg in
        return [ Funop (op, r, Reg a) ] );
      ( 1,
        let* r = gen_reg and* i = int_range 1 50 in
        return [ Frand (r, Imm (SInt i)) ] );
      ( 1,
        let* r = gen_reg and* f = gen_int_fld in
        let* a =
          frequency [ (8, int_range 0 (nv - 1)); (1, return nv) (* fault *) ]
        in
        return [ Fread (r, f, Imm (SInt a)) ] );
      ( 1,
        let* f = gen_int_fld and* a = int_range 0 (nv - 1) in
        let* v = int_range (-9) 9 in
        return [ Fwrite (f, Imm (SInt a), Imm (SInt v)) ] );
      ( 1,
        let* r = gen_reg in
        return [ Fprint ("x=", Some (Reg r)) ] );
      ( 1,
        let* i = int_range 0 2 in
        return [ Region (Printf.sprintf "r%d" i) ] );
    ]

(* Leaves restricted to the outer VP set, for OnOuter bodies. *)
let gen_outer_leaf : instr list Gen.t =
  let open Gen in
  frequency
    [
      (2, let* i = int_range (-5) 9 in return [ Pmov (outer_int, Imm (SInt i)) ]);
      (2, let* i = int_range 1 9 in return [ Prand (outer_int, Imm (SInt i)) ]);
      ( 2,
        let* op = oneofl [ Add; Sub; Mul; Min; Max ] in
        let* i = int_range (-4) 6 in
        return [ Pbin (op, outer_int, Fld outer_int, Imm (SInt i)) ] );
      (1, return [ Punop (ToFloat, outer_float, Fld outer_int) ]);
      (1, return [ Pcoord (outer_int, 0) ]);
      (1, let* r = gen_reg in return [ Preduce (Add, r, outer_int) ]);
      (1, let* r = gen_reg in return [ Pcount r ]);
      (1, return [ Cread outer_int ]);
      (1, return [ Pscan (Add, outer_int, outer_int, 0) ]);
      ( 1,
        let* delta = int_range (-2) 2 in
        return [ Pnews (outer_int, outer_int, 0, delta) ] );
    ]

let rec gen_node nv rank depth : node Gen.t =
  let open Gen in
  let leaf = map (fun is -> I is) (gen_leaf nv rank) in
  if depth = 0 then leaf
  else
    let body n g = list_size (int_range 1 n) g in
    frequency
      ([
         (10, leaf);
         ( 3,
           let* fld =
             oneof [ gen_int_fld; gen_float_fld ]
           in
           let* b = body 5 (gen_node nv rank (depth - 1)) in
           return (Guard (fld, b)) );
         ( 1,
           let* cond =
             oneof
               [
                 map (fun i -> Imm (SInt i)) (int_range 0 1);
                 map (fun r -> Reg r) gen_reg;
               ]
           in
           let* b = body 4 (gen_node nv rank (depth - 1)) in
           return (Skip (cond, b)) );
         ( 2,
           let* b = body 4 (map (fun is -> I is) gen_outer_leaf) in
           return (OnOuter b) );
       ]
      @
      (* Loop2 only at top level: its counter register must not be
         clobbered by a nested loop *)
      if depth >= 2 then
        [
          ( 2,
            let* b = body 4 (gen_node nv rank 1) in
            return (Loop2 b) );
        ]
      else [])

let gen_program : (int list * int * node list) Gen.t =
  let open Gen in
  let* dims = oneofl [ [ 6 ]; [ 8 ]; [ 4; 3 ]; [ 3; 3 ]; [ 2; 2; 3 ]; [ 5; 2 ] ] in
  let nv = List.fold_left ( * ) 1 dims in
  let rank = List.length dims in
  let* seed = int_range 0 9999 in
  let* nodes = list_size (int_range 4 25) (gen_node nv rank 2) in
  return (dims, seed, nodes)

let print_program (dims, seed, nodes) =
  let prog =
    try Format.asprintf "%a" pp_program (build dims nodes)
    with e -> "<build failed: " ^ Printexc.to_string e ^ ">"
  in
  Printf.sprintf "seed=%d dims=[%s]\n%s" seed
    (String.concat ";" (List.map string_of_int dims))
    prog

let differential_test =
  QCheck_alcotest.to_alcotest
    (Test.make ~count:400 ~name:"random programs: all engines agree"
       ~print:print_program gen_program (fun (dims, seed, nodes) ->
         let prog = build dims nodes in
         match engines_agree ~seed ~fuel:500_000 prog with
         | None -> true
         | Some (ename, fast, other) ->
             Test.fail_reportf
               "engines disagree@.--- fast ---@.%s@.--- %s ---@.%s" fast ename
               other))

(* Native rotates through the same differential harness with a smaller
   count: every distinct random program costs one [ocamlopt -shared]
   build (amortized only across this process's memo).  On a host without
   a native toolchain the machine falls back to the fast kernels, so
   these tests stay green (and trivially true) everywhere. *)
let native_differential_test =
  QCheck_alcotest.to_alcotest
    (Test.make ~count:25 ~name:"random programs: native == fast"
       ~print:print_program gen_program (fun (dims, seed, nodes) ->
         let prog = build dims nodes in
         let fast = run_engine ~seed ~fuel:500_000 `Fast prog in
         let native = run_engine ~seed ~fuel:500_000 `Native prog in
         if String.equal fast native then true
         else
           Test.fail_reportf
             "engines disagree@.--- fast ---@.%s@.--- native ---@.%s" fast
             native))

(* ------------------------------------------------------------------ *)
(* IR optimizer: optimized == unoptimized, on both engines            *)
(* ------------------------------------------------------------------ *)

(* What the optimizer must preserve: termination status, printed
   output, and — for finished runs — every register and field
   (everything is a liveness root by default).  Deliberately excluded:
   icount, fuel, meter counters and region times, which legitimately
   shrink.  On faulting runs only status + output are compared: a store
   the fault made unreachable may have been eliminated, which changes
   post-mortem memory but nothing the program ever observed. *)
let observation ~seed ~fuel engine (prog : program) =
  let m = Cm.Machine.create ~seed ~fuel ~engine prog in
  let status =
    match Cm.Machine.run m with
    | () -> "finished"
    | exception Cm.Machine.Fault msg -> "fault: " ^ msg
    | exception Cm.Machine.Error msg -> "error: " ^ msg
    | exception Invalid_argument msg -> "invalid_arg: " ^ msg
    | exception Failure msg -> "failure: " ^ msg
  in
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for r = 0 to prog.nregs - 1 do
    match Cm.Machine.reg m r with
    | SInt i -> add "r%d = %d\n" r i
    | SFloat f -> add "r%d = %s\n" r (hex f)
  done;
  Array.iteri
    (fun f (_vp, kind) ->
      add "f%d =" f;
      (match kind with
      | KInt -> Array.iter (fun v -> add " %d" v) (Cm.Machine.field_ints m f)
      | KFloat ->
          Array.iter (fun v -> add " %s" (hex v)) (Cm.Machine.field_floats m f));
      add "\n")
    prog.fields;
  ( status,
    String.concat "\n" (Cm.Machine.output m),
    Buffer.contents b,
    (Cm.Machine.meter m).Cm.Cost.elapsed_ns )

let iropt_equiv ~seed ~fuel ~name prog =
  let opt, st = Cm.Iropt.run prog in
  ignore st;
  List.iter
    (fun engine ->
      let ename =
        match engine with
        | `Fast -> "fast"
        | `Reference -> "reference"
        | `Sharded s -> Printf.sprintf "sharded:%d" s
        | `Native -> "native"
      in
      let s0, out0, state0, ns0 = observation ~seed ~fuel engine prog in
      (* an unoptimized run that dies of fuel exhaustion proves nothing:
         the optimized stream may legitimately get further *)
      if s0 <> "error: fuel exhausted (non-terminating program?)" then begin
        let s1, out1, state1, ns1 = observation ~seed ~fuel engine opt in
        if s0 <> s1 then
          Alcotest.failf "%s (%s): status %S became %S" name ename s0 s1;
        if out0 <> out1 then
          Alcotest.failf "%s (%s): output changed@.--- before ---@.%s@.--- \
                          after ---@.%s"
            name ename out0 out1;
        if s0 = "finished" && state0 <> state1 then
          Alcotest.failf "%s (%s): final state changed@.--- before ---@.%s@.\
                          --- after ---@.%s"
            name ename state0 state1;
        if ns1 > ns0 then
          Alcotest.failf "%s (%s): simulated time rose %s -> %s ns" name ename
            (hex ns0) (hex ns1)
      end)
    [ `Fast; `Reference; `Sharded 3 ]

let iropt_differential_test =
  QCheck_alcotest.to_alcotest
    (Test.make ~count:400
       ~name:"random programs: Iropt.run preserves observations"
       ~print:print_program gen_program (fun (dims, seed, nodes) ->
         let prog = build dims nodes in
         iropt_equiv ~seed ~fuel:500_000 ~name:"qcheck" prog;
         true))

(* ------------------------------------------------------------------ *)
(* Fault injection: the engines must fault bit-identically            *)
(* ------------------------------------------------------------------ *)

(* Random fault specs assembled through the public grammar, so this also
   fuzzes the parser: random transient counts and bit flips over a short
   horizon, plus a few explicit events. *)
let gen_fault_spec : Cm.Fault.spec Gen.t =
  let open Gen in
  let* seed = int_range 0 999 in
  let* horizon = int_range 1 400 in
  let* nr = int_range 0 2 and* nn = int_range 0 2 in
  let* nc = int_range 0 2 and* nf = int_range 0 2 in
  let* explicit =
    list_size (int_range 0 3)
      (let* serial = int_range 0 300 in
       let* k = int_range 0 3 in
       return
         (match k with
         | 0 -> Printf.sprintf "router@%d" serial
         | 1 -> Printf.sprintf "news@%d" serial
         | 2 -> Printf.sprintf "chip@%d" serial
         | _ ->
             Printf.sprintf "flip@%d:%d.%d.%d" serial (serial mod 8)
               (serial mod 13) (serial mod 70)))
  in
  let s =
    Printf.sprintf "seed=%d;horizon=%d;router=%d;news=%d;chip=%d;flip=%d%s" seed
      horizon nr nn nc nf
      (String.concat "" (List.map (fun e -> ";" ^ e) explicit))
  in
  match Cm.Fault.parse s with
  | Ok spec -> return spec
  | Error msg -> failwith ("generator produced an unparsable spec: " ^ msg)

let gen_faulty_program : (int list * int * node list * Cm.Fault.spec) Gen.t =
  let open Gen in
  let* dims, seed, nodes = gen_program in
  let* spec = gen_fault_spec in
  return (dims, seed, nodes, spec)

let print_faulty_program (dims, seed, nodes, spec) =
  print_program (dims, seed, nodes)
  ^ "\nfaults: " ^ Cm.Fault.spec_string spec

let fault_differential_test =
  QCheck_alcotest.to_alcotest
    (Test.make ~count:300
       ~name:"random programs under fault plans: fast == reference"
       ~print:print_faulty_program gen_faulty_program
       (fun (dims, seed, nodes, spec) ->
         let prog = build dims nodes in
         let faults = Cm.Fault.instantiate spec ~attempt:0 in
         match engines_agree ~seed ~fuel:500_000 ~faults prog with
         | None -> true
         | Some (ename, fast, other) ->
             Test.fail_reportf
               "engines disagree under %s@.--- fast ---@.%s@.--- %s ---@.%s"
               (Cm.Fault.canonical faults) fast ename other))

(* ------------------------------------------------------------------ *)
(* Checkpoint/restore: sliced == straight, bit for bit                *)
(* ------------------------------------------------------------------ *)

(* Run in slices, serializing a checkpoint at every slice boundary and
   restoring into a machine on ANOTHER engine (rotating through all
   three, sharded at two different chunk counts), so the round-trip also
   re-proves engine equivalence — and the shard-count independence of
   the checkpoint blob — at every intermediate state. *)
let engine_cycle : Cm.Machine.engine array =
  [| `Reference; `Sharded 3; `Fast; `Sharded 2 |]

(* the native rotation (used by the smaller-count test below so the
   per-program ocamlopt builds stay cheap) *)
let native_cycle : Cm.Machine.engine array =
  [| `Native; `Fast; `Native; `Reference |]

let run_checkpointed ?(cycle = engine_cycle) ~seed ~fuel ?faults ~slice prog =
  let m = ref (Cm.Machine.create ~seed ~fuel ~engine:`Fast ?faults prog) in
  let next = ref 0 in
  let status =
    try
      let rec go () =
        match Cm.Machine.run_slice !m ~fuel_slice:slice with
        | `Done -> "finished"
        | `More ->
            let data = Cm.Machine.checkpoint !m in
            let engine = cycle.(!next mod Array.length cycle) in
            incr next;
            m := Cm.Machine.restore ~engine ?faults prog data;
            go ()
      in
      go ()
    with
    | Cm.Machine.Fault msg -> "fault: " ^ msg
    | Cm.Machine.Error msg -> "error: " ^ msg
    | Invalid_argument msg -> "invalid_arg: " ^ msg
    | Failure msg -> "failure: " ^ msg
  in
  status ^ "\n" ^ snapshot prog !m

let gen_ckpt_case :
    (int list * int * node list * Cm.Fault.spec option * int) Gen.t =
  let open Gen in
  let* dims, seed, nodes = gen_program in
  let* spec = frequency [ (2, return None); (1, map Option.some gen_fault_spec) ] in
  let* slice = oneofl [ 1; 7; 23; 100; 1000 ] in
  return (dims, seed, nodes, spec, slice)

let print_ckpt_case (dims, seed, nodes, spec, slice) =
  Printf.sprintf "%s\nfaults: %s slice=%d"
    (print_program (dims, seed, nodes))
    (match spec with None -> "none" | Some s -> Cm.Fault.spec_string s)
    slice

let checkpoint_roundtrip_test =
  QCheck_alcotest.to_alcotest
    (Test.make ~count:200
       ~name:"checkpoint-interrupt-resume == straight run"
       ~print:print_ckpt_case gen_ckpt_case
       (fun (dims, seed, nodes, spec, slice) ->
         let prog = build dims nodes in
         let faults = Option.map (Cm.Fault.instantiate ~attempt:0) spec in
         let straight = run_engine ~seed ~fuel:500_000 ?faults `Fast prog in
         let sliced = run_checkpointed ~seed ~fuel:500_000 ?faults ~slice prog in
         if String.equal straight sliced then true
         else
           Test.fail_reportf
             "checkpointed run diverged@.--- straight ---@.%s@.--- sliced \
              (slice=%d) ---@.%s"
             straight slice sliced))

let native_checkpoint_test =
  QCheck_alcotest.to_alcotest
    (Test.make ~count:20
       ~name:"checkpoint slices alternating through native == straight run"
       ~print:print_ckpt_case gen_ckpt_case
       (fun (dims, seed, nodes, spec, slice) ->
         let prog = build dims nodes in
         let faults = Option.map (Cm.Fault.instantiate ~attempt:0) spec in
         let straight = run_engine ~seed ~fuel:500_000 ?faults `Fast prog in
         let sliced =
           run_checkpointed ~cycle:native_cycle ~seed ~fuel:500_000 ?faults
             ~slice prog
         in
         if String.equal straight sliced then true
         else
           Test.fail_reportf
             "native-checkpointed run diverged@.--- straight ---@.%s@.--- \
              sliced (slice=%d) ---@.%s"
             straight slice sliced))

(* ------------------------------------------------------------------ *)
(* Whole-corpus equivalence                                           *)
(* ------------------------------------------------------------------ *)

let test_uc_corpus () =
  List.iter
    (fun (name, src) ->
      let compiled = Uc.Compile.compile_source src in
      assert_agree ~seed:20260705 ~fuel:50_000_000 name
        compiled.Uc.Codegen.prog)
    Uc_programs.Programs.all_named

(* the canned plan used by the CI fault gate: transients and flips over
   the whole corpus, both engines *)
let test_uc_corpus_under_faults () =
  let spec =
    match
      Cm.Fault.parse "seed=33;horizon=30000;router=2;news=2;chip=2;flip=2"
    with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  let faults = Cm.Fault.instantiate spec ~attempt:0 in
  List.iter
    (fun (name, src) ->
      let compiled = Uc.Compile.compile_source src in
      assert_agree ~seed:20260705 ~fuel:50_000_000 ~faults name
        compiled.Uc.Codegen.prog)
    Uc_programs.Programs.all_named

let test_cstar_corpus () =
  List.iter
    (fun (name, prog) -> assert_agree ~seed:11 ~fuel:50_000_000 name prog)
    [
      ("cstar:path_n2", fst (Cstar.Programs.path_n2 ~n:8 ()));
      ( "cstar:path_n2-rand",
        fst (Cstar.Programs.path_n2 ~deterministic:false ~n:8 ()) );
      ("cstar:path_n3", fst (Cstar.Programs.path_n3 ~n:5 ()));
    ]

(* ------------------------------------------------------------------ *)
(* Shift-range checks (satellite bugfix)                              *)
(* ------------------------------------------------------------------ *)

let shift_prog op amount =
  let b = Builder.create "shift" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
  let f = Builder.field b ~vpset:vp KInt in
  Builder.emit b (Cwith vp);
  Builder.emit b (Pmov (f, Imm (SInt 4)));
  Builder.emit b (Pbin (op, f, Fld f, Imm (SInt amount)));
  Builder.finish b

let fe_shift_prog op amount =
  let b = Builder.create "fe-shift" in
  let r = Builder.reg b in
  Builder.emit b (Fbin (op, r, Imm (SInt 1), Imm (SInt amount)));
  Builder.finish b

let expect_shift_error engine prog =
  let m = Cm.Machine.create ~engine prog in
  match Cm.Machine.run m with
  | () -> Alcotest.fail "expected a shift-range Machine.Error"
  | exception Cm.Machine.Error msg ->
      if not (Astring.String.is_infix ~affix:"shift amount" msg) then
        Alcotest.failf "error %S does not mention the shift amount" msg

let test_shift_range () =
  List.iter
    (fun engine ->
      List.iter
        (fun amount ->
          expect_shift_error engine (shift_prog Shl amount);
          expect_shift_error engine (shift_prog Shr amount);
          expect_shift_error engine (fe_shift_prog Shl amount))
        [ -1; -63; Sys.int_size; 64; 1000 ])
    [ `Fast; `Reference; `Sharded 3 ];
  (* in-range shifts compute normally on every engine *)
  List.iter
    (fun engine ->
      let m = Cm.Machine.create ~engine (shift_prog Shl 3) in
      Cm.Machine.run m;
      Alcotest.(check (array int))
        "shl 3" [| 32; 32; 32; 32 |]
        (Cm.Machine.field_ints m 0);
      let m = Cm.Machine.create ~engine (shift_prog Shr 2) in
      Cm.Machine.run m;
      Alcotest.(check (array int))
        "shr 2" [| 1; 1; 1; 1 |]
        (Cm.Machine.field_ints m 0))
    [ `Fast; `Reference; `Sharded 3 ]

(* Pre-compiling is idempotent and does not perturb results. *)
let test_compile_idempotent () =
  let prog = shift_prog Shl 2 in
  let m = Cm.Machine.create ~engine:`Fast prog in
  Alcotest.check Alcotest.bool "engine" true (Cm.Machine.engine m = `Fast);
  Cm.Machine.compile m;
  Cm.Machine.compile m;
  Cm.Machine.run m;
  Alcotest.(check (array int)) "result" [| 16; 16; 16; 16 |]
    (Cm.Machine.field_ints m 0)

(* ------------------------------------------------------------------ *)
(* Sharded engine specifics                                           *)
(* ------------------------------------------------------------------ *)

(* Chunk layouts: full disjoint coverage of [0, n), contiguous and in
   order, never more chunks than elements, ragged chunks differ by at
   most one element. *)
let test_shard_layout () =
  List.iter
    (fun (shards, n) ->
      let chunks = Cm.Shard.layout ~shards n in
      let k = Array.length chunks in
      Alcotest.(check bool)
        (Printf.sprintf "layout %d %d: chunk count" shards n)
        true
        (k = min (max shards 1) (max n 1));
      let pos = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          Alcotest.(check int)
            (Printf.sprintf "layout %d %d: contiguous at %d" shards n lo)
            !pos lo;
          Alcotest.(check bool)
            (Printf.sprintf "layout %d %d: ordered" shards n)
            true (hi >= lo);
          pos := hi)
        chunks;
      Alcotest.(check int) (Printf.sprintf "layout %d %d: covers" shards n) n
        !pos;
      if n > 0 then begin
        let sizes = Array.map (fun (lo, hi) -> hi - lo) chunks in
        let mn = Array.fold_left min max_int sizes in
        let mx = Array.fold_left max 0 sizes in
        Alcotest.(check bool)
          (Printf.sprintf "layout %d %d: balanced" shards n)
          true
          (mx - mn <= 1 && mn >= 1)
      end)
    [ (1, 10); (3, 10); (4, 8); (7, 6); (8, 2560); (100, 7); (2, 0); (5, 1) ]

let test_bad_shard_count () =
  let prog = shift_prog Shl 2 in
  List.iter
    (fun n ->
      match Cm.Machine.create ~engine:(`Sharded n) prog with
      | _ -> Alcotest.failf "`Sharded %d accepted" n
      | exception Invalid_argument _ -> ())
    [ 0; -1 ]

(* A VP set big enough to cross the sharded engine's fan-out threshold,
   so chunks really execute on worker domains: elementwise ops, NEWS on
   both axes, selects, reductions, scans and router traffic over 2560
   VPs, checked against `Fast at several shard counts (including more
   shards than this host has cores). *)
let big_prog () =
  let b = Builder.create "big" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 64; 40 ]) in
  let x = Builder.field b ~vpset:vp KInt in
  let y = Builder.field b ~vpset:vp KInt in
  let addr = Builder.field b ~vpset:vp KInt in
  let f = Builder.field b ~vpset:vp KFloat in
  let g = Builder.field b ~vpset:vp KFloat in
  let r0 = Builder.reg b in
  let r1 = Builder.reg b in
  List.iter (Builder.emit b)
    [
      Cwith vp;
      Pcoord (x, 0);
      Pcoord (y, 1);
      Pbin (Mul, x, Fld x, Imm (SInt 3));
      Pbin (Add, x, Fld x, Fld y);
      Punop (ToFloat, f, Fld x);
      Pbin (Div, g, Fld f, Imm (SFloat 4.0));
      Pnews (y, x, 0, 1);
      Pnews (y, y, 1, -1);
      Psel (x, Fld y, Fld x, Imm (SInt (-7)));
      Prand (addr, Imm (SInt 2560));
      Pget (y, x, addr);
      Psend (y, x, addr, Cadd);
      Pscan (Add, y, y, 0);
      Preduce (Add, r0, x);
      Preduce (Max, r1, y);
      Preduce (Min, r0, y);
      Preduce (Bxor, r1, x);
      Pbin (Shl, x, Fld x, Imm (SInt 2));
      Pbin (Mod, y, Fld y, Imm (SInt 97));
      Punop (Abs, y, Fld y);
      Pcount r0;
      Fprint ("n=", Some (Reg r0));
      Fprint ("r1=", Some (Reg r1));
    ];
  Builder.finish b

(* Force real worker domains even on a single-core host (where the
   default budget of recommended-1 is zero and every borrow is denied):
   correctness never depends on the physical core count, and without
   this the cross-domain path — spawn, job publish, park/wake, barrier,
   failure CAS — would go untested on small CI machines. *)
let with_forced_workers f () =
  Cm.Shard.Pool.set_limit 3;
  Fun.protect
    ~finally:(fun () ->
      (* kill the parked teams too: released teams are reused by later
         borrows regardless of the limit, and these tests should not
         change how the rest of the suite executes *)
      Cm.Shard.Pool.shutdown_idle ();
      Cm.Shard.Pool.set_limit
        (max 0 (Domain.recommended_domain_count () - 1)))
    f

let test_sharded_fanout =
  with_forced_workers (fun () ->
      assert_agree ~seed:4242 ~fuel:1_000_000 "big [64;40]" (big_prog ()))

(* A chunk that faults mid-fan-out must surface the same error as the
   serial engines, with the same partial state. *)
let test_sharded_fault_parity =
  with_forced_workers (fun () ->
      let b = Builder.create "bigfault" in
      let vp = Builder.vpset b (Cm.Geometry.create [ 2560 ]) in
      let x = Builder.field b ~vpset:vp KInt in
      List.iter (Builder.emit b)
        [
          Cwith vp;
          Pcoord (x, 0);
          (* shift amount out of range on every VP: can-fault op *)
          Pbin (Shl, x, Fld x, Imm (SInt 400));
        ];
      assert_agree ~seed:1 ~fuel:1_000_000 "big faulting shl"
        (Builder.finish b))

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [
          differential_test;
          native_differential_test;
          iropt_differential_test;
          fault_differential_test;
          checkpoint_roundtrip_test;
          native_checkpoint_test;
          Alcotest.test_case "shift range faults" `Quick test_shift_range;
          Alcotest.test_case "compile idempotent" `Quick
            test_compile_idempotent;
          Alcotest.test_case "shard chunk layout" `Quick test_shard_layout;
          Alcotest.test_case "invalid shard counts" `Quick
            test_bad_shard_count;
          Alcotest.test_case "sharded fan-out over 2560 VPs" `Quick
            test_sharded_fanout;
          Alcotest.test_case "sharded fault parity over 2560 VPs" `Quick
            test_sharded_fault_parity;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "uc programs" `Quick test_uc_corpus;
          Alcotest.test_case "uc programs under a fault plan" `Quick
            test_uc_corpus_under_faults;
          Alcotest.test_case "cstar programs" `Quick test_cstar_corpus;
        ] );
    ]
