#!/usr/bin/env bash
# `make ci-sharded` gate: the whole built-in corpus must be bit-identical
# between --engine fast and --engine sharded at 1 and 4 shards, with
# tracing on and off.  Rows are compared minus the job digest and engine
# label (different by design: the engine is part of the job identity) and
# minus wall-clock/cache provenance; everything else — status, output,
# simulated seconds, the full deterministic metrics object, seeds — must
# agree byte for byte.  Run from the repository root (the Makefile does).
set -euo pipefail
trap 'echo "ci_sharded.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

UCC=${UCC:-_build/default/bin/ucc.exe}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/ucc_ci_sharded.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# deterministic identity: drop wall time, cache provenance, and the
# fields that name the engine (digest covers engine, so it differs too;
# engine_effective records which engine actually ran)
norm() {
  sed -e 's/,"wall_seconds":[^,]*,"cache":"[a-z]*"}/}/' \
      -e 's/"digest":"[^"]*",//' \
      -e 's/"engine":"[^"]*",//' \
      -e 's/"engine_effective":"[^"]*",//' "$1" | grep '"job":'
}

$UCC batch --cache-dir none --engine fast \
  --report "$WORK/fast.jsonl" 2>/dev/null
$UCC batch --cache-dir none --engine fast --trace="$WORK/fast_trace.jsonl" \
  --report "$WORK/fast_traced.jsonl" 2>/dev/null
diff <(norm "$WORK/fast.jsonl") <(norm "$WORK/fast_traced.jsonl")

for s in 1 4; do
  $UCC batch --cache-dir none --engine sharded --shards "$s" \
    --report "$WORK/sharded$s.jsonl" 2>/dev/null
  diff <(norm "$WORK/fast.jsonl") <(norm "$WORK/sharded$s.jsonl")

  $UCC batch --cache-dir none --engine sharded --shards "$s" \
    --trace="$WORK/trace$s.jsonl" \
    --report "$WORK/sharded${s}_traced.jsonl" 2>/dev/null
  diff <(norm "$WORK/fast.jsonl") <(norm "$WORK/sharded${s}_traced.jsonl")
done

echo "ci-sharded: corpus bit-identical fast vs sharded at 1 and 4 shards, traced and untraced"
