(* Tests for the layout stage: Commpat static prediction vs the real
   machine's meter, Layoutsel search quality, and the tuned-layout
   differential property. *)

let default_opts = Uc.Codegen.default_options

(* programs whose control flow the analyzer counts exactly *)
let static_programs =
  [
    "reductions";
    "abs_sum";
    "matmul";
    "reciprocal";
    "odd_even_flags";
    "wavefront";
    "ranksort";
    "partial_sums_seq";
    "shortest_path_n2";
    "shortest_path_n3";
    "digit_count";
    "digit_count_det";
    "stencil";
    "stencil_mapped";
    "folded_pairs";
    "folded_pairs_mapped";
    "copied_broadcast";
    "copied_broadcast_mapped";
    "heat";
    "quickstart";
  ]

let src_of name = List.assoc name Uc_programs.Programs.all_named

let measure ?layouts ?(options = default_opts) src =
  let prog = Uc.Compile.parse_source src in
  let compiled = Uc.Compile.lower ?layouts ~options prog in
  let t = Uc.Compile.run_compiled ~seed:42 compiled in
  Uc.Compile.meter t

(* the static predictor's router/NEWS counts must match the machine's
   meter exactly on programs with static control flow *)
let test_predict_exact () =
  List.iter
    (fun name ->
      let src = src_of name in
      let summary = Uc.Commpat.analyze_source src in
      let p = Uc.Commpat.predict summary summary.base_layouts in
      let m = measure src in
      Alcotest.(check bool)
        (name ^ " prediction is exact")
        true p.p_exact;
      Alcotest.(check int)
        (name ^ " router ops")
        m.Cm.Cost.router_ops p.p_router_ops;
      Alcotest.(check int)
        (name ^ " news ops")
        m.Cm.Cost.news_ops p.p_news_ops)
    static_programs

(* ---------------- layout search quality ---------------- *)

(* the a1 mapping ablation (bench/main.ml): at n=4096, steps=32 the
   hand-tuned layout is [permute (I) b[i+1] :- a[i]]; the tuner must
   find exactly that table on its own *)
let test_a1_selects_hand_tuned () =
  let src = Uc_programs.Programs.stencil ~n:4096 ~steps:32 () in
  let r = Uc.Layoutsel.search_source src in
  Alcotest.(check bool)
    "b gets permute[+1]" true
    (Uc.Mapping.equal
       (Uc.Mapping.find r.Uc.Layoutsel.table "b")
       (Uc.Mapping.Shifted [| 1 |]));
  Alcotest.(check bool)
    "a stays default" true
    (Uc.Mapping.equal (Uc.Mapping.find r.Uc.Layoutsel.table "a")
       Uc.Mapping.Default);
  Alcotest.(check bool)
    "predicted win" true
    (r.Uc.Layoutsel.chosen_ns < r.Uc.Layoutsel.default_ns)

(* the search must never predict a regression: the default table is
   always a candidate, so chosen cost <= default cost *)
let test_chosen_never_worse () =
  List.iter
    (fun name ->
      let r = Uc.Layoutsel.search_source (src_of name) in
      Alcotest.(check bool)
        (name ^ " chosen <= default")
        true
        (r.Uc.Layoutsel.chosen_ns <= r.Uc.Layoutsel.default_ns +. 1e-6))
    static_programs

(* every synthesized map section must re-parse to the table it came
   from (programs with their own map sections are skipped: the tuner's
   section would be appended next to the original one) *)
let test_emit_roundtrip () =
  List.iter
    (fun name ->
      let src = src_of name in
      let prog = Uc.Compile.parse_source src in
      let r = Uc.Layoutsel.search_source src in
      let canon = Uc.Mapping.canonical r.Uc.Layoutsel.table in
      match Uc.Mapping.emit_map_section prog canon with
      | None ->
          Alcotest.(check string)
            (name ^ " all-default table")
            "" (Uc.Mapping.table_to_string canon)
      | Some section ->
          let reparsed =
            Uc.Mapping.of_program
              (Uc.Compile.parse_source (src ^ "\n" ^ section))
          in
          Alcotest.(check string)
            (name ^ " section round-trips")
            (Uc.Mapping.table_to_string canon)
            (Uc.Mapping.table_to_string (Uc.Mapping.canonical reparsed)))
    (List.filter
       (fun n ->
         (* skip programs that already carry a map section *)
         not (String.length n > 7 && Filename.check_suffix n "_mapped"))
       static_programs)

(* ---------------- job digest plumbing ---------------- *)

(* tuned and untuned jobs must have distinct digests (they emit
   different Paris programs), and an untuned job's digest must not move
   when the [tune] field exists but is off (cache compatibility) *)
let test_tuned_digest () =
  let source = src_of "stencil" in
  let j0 = Ucd.Job.make ~name:"s" ~source () in
  let joff = Ucd.Job.make ~tune:false ~name:"s" ~source () in
  let jon = Ucd.Job.make ~tune:true ~name:"s" ~source () in
  Alcotest.(check string)
    "tune=false leaves the digest alone"
    (Ucd.Job.digest j0) (Ucd.Job.digest joff);
  Alcotest.(check bool)
    "tune=true changes the digest" true
    (Ucd.Job.digest j0 <> Ucd.Job.digest jon)

(* ---------------- tuned-layout differential fuzzing ---------------- *)

(* Random programs x random valid layouts: a layout only moves data
   around the machine, so the observable results must be bit-identical
   to the default layout on every engine.  No rand() in the generated
   programs: the per-processor draw order is layout-dependent by
   design, so random streams are excluded from the bit-identity
   property (like the engine differential tests exclude multi-site
   rand). *)

let qtest ?(count = 60) ?print name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ?print ~name gen prop)

open QCheck2.Gen

let off_gen = oneofl [ 1; 2; 3; 5; 7 ]

let stmt_gen =
  oneof
    [
      (let* k = off_gen and* c = oneofl [ 1; 2; 5 ] in
       return (Printf.sprintf "  par (I) a[i] = b[(i + %d) %% 8] + %d;" k c));
      (let* k = off_gen in
       return
         (Printf.sprintf "  par (I) st (a[i] %% 2 == 0) b[i] = a[(i + %d) %% 8];"
            k));
      (let* k = off_gen in
       return (Printf.sprintf "  par (I) b[(i + %d) %% 8] = a[i] * 2;" k));
      return "  par (I, J) d[i][j] = a[i] + b[j] * 2;";
      (let* k = off_gen in
       return (Printf.sprintf "  par (I) a[i] = d[i][(i + %d) %% 8] + 1;" k));
      (let* k = off_gen in
       return (Printf.sprintf "  s = s + $+(I st (b[i] > %d) a[i]);" k));
      return "  seq (K) par (I) st ((i + k) % 2 == 0) a[i] = a[i] + b[i];";
      (let* c = oneofl [ 1; 2; 3 ] in
       return
         (Printf.sprintf
            "  for (t = 0; t < 2; t = t + 1) par (I) a[i] = a[i] + b[(i + 1) \
             %% 8] * %d;"
            c));
    ]

let program_gen =
  let* stmts = list_size (int_range 2 5) stmt_gen in
  return
    (Printf.sprintf
       {|
#define N 8
index-set I:i = {0..N-1}, J:j = I, K:k = {0..2};
int a[N], b[N], d[N][N], s, t;

void main() {
  par (I) { a[i] = i * 3 + 1; b[i] = 7 - i; }
  par (I, J) d[i][j] = i * 11 + j;
%s
}
|}
       (String.concat "\n" stmts))

let layout_1d =
  oneofl
    Uc.Mapping.
      [
        Default;
        Shifted [| 1 |];
        Shifted [| -1 |];
        Shifted [| 3 |];
        Folded 2;
        Folded 4;
        Copied 2;
        Copied 4;
      ]

let layout_2d =
  oneofl
    Uc.Mapping.
      [ Default; Shifted [| 1; 0 |]; Shifted [| 0; 1 |]; Shifted [| 2; -1 |] ]

let table_gen =
  let* la = layout_1d and* lb = layout_1d and* ld = layout_2d in
  return [ ("a", la); ("b", lb); ("d", ld) ]

let case_gen = pair program_gen table_gen

let print_case (src, table) =
  Printf.sprintf "table: %s\n%s" (Uc.Mapping.table_to_string table) src

let observable ?layouts ?engine src =
  let compiled = Uc.Compile.compile_source ?layouts src in
  let t = Uc.Compile.run_compiled ~seed:7 ?engine compiled in
  ( Uc.Compile.int_array t "a",
    Uc.Compile.int_array t "b",
    Uc.Compile.int_array t "d",
    Uc.Compile.scalar t "s",
    Uc.Compile.output t )

let fuzz_layout_fast =
  qtest ~count:60 ~print:print_case
    "fuzz: any valid layout is observably identical (fast)" case_gen
    (fun (src, table) ->
      observable src = observable ~layouts:table src)

let fuzz_layout_native =
  qtest ~count:12 ~print:print_case
    "fuzz: any valid layout is observably identical (native)" case_gen
    (fun (src, table) ->
      observable src = observable ~layouts:table ~engine:`Native src)

(* the same property through the tuner itself: a tuned lowering of any
   generated program matches the default lowering bit for bit *)
let fuzz_tuned_run =
  qtest ~count:40 ~print:(fun s -> s)
    "fuzz: auto-tuned layout is observably identical" program_gen
    (fun src ->
      let r = Uc.Layoutsel.search_source src in
      observable src = observable ~layouts:r.Uc.Layoutsel.table src)

let () =
  Alcotest.run "tune"
    [
      ( "commpat",
        [ Alcotest.test_case "predict-exact" `Quick test_predict_exact ] );
      ( "layoutsel",
        [
          Alcotest.test_case "a1 selects hand-tuned layout" `Quick
            test_a1_selects_hand_tuned;
          Alcotest.test_case "chosen never worse than default" `Quick
            test_chosen_never_worse;
          Alcotest.test_case "emitted map sections round-trip" `Quick
            test_emit_roundtrip;
        ] );
      ("job", [ Alcotest.test_case "tuned digest" `Quick test_tuned_digest ]);
      ( "differential",
        [ fuzz_layout_fast; fuzz_layout_native; fuzz_tuned_run ] );
    ]
