(* Differential tests: every corpus program is executed both by the
   reference interpreter and compiled through the Paris backend on the
   simulated CM; results must match exactly (both use the same LCG). *)

let check = Alcotest.check
let ints = Alcotest.array Alcotest.int

let interp_run src =
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  Uc.Interp.run prog

let machine_run ?options src = Uc.Compile.run_source ?options src

let float_arrays_equal name a b =
  check Alcotest.int (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      check (Alcotest.float 1e-9) (Printf.sprintf "%s[%d]" name i) x b.(i))
    a

(* compare one program's global arrays across both executions *)
let differential ?options ~arrays ?(float_arrays = []) ?(scalars = [])
    ?(float_scalars = []) src () =
  let ir = interp_run src in
  let mr = machine_run ?options src in
  List.iter
    (fun name ->
      check ints name (Uc.Interp.int_array ir name) (Uc.Compile.int_array mr name))
    arrays;
  List.iter
    (fun name ->
      float_arrays_equal name
        (Uc.Interp.float_array ir name)
        (Uc.Compile.float_array mr name))
    float_arrays;
  List.iter
    (fun name ->
      let iv =
        match Uc.Interp.scalar ir name with
        | Uc.Interp.Vint i -> i
        | Uc.Interp.Vfloat _ -> Alcotest.fail (name ^ " is a float")
      in
      let mv =
        match Uc.Compile.scalar mr name with
        | Cm.Paris.SInt i -> i
        | Cm.Paris.SFloat _ -> Alcotest.fail (name ^ " compiled to a float")
      in
      check Alcotest.int name iv mv)
    scalars;
  List.iter
    (fun name ->
      let iv =
        match Uc.Interp.scalar ir name with
        | Uc.Interp.Vfloat f -> f
        | Uc.Interp.Vint i -> float_of_int i
      in
      let mv =
        match Uc.Compile.scalar mr name with
        | Cm.Paris.SFloat f -> f
        | Cm.Paris.SInt i -> float_of_int i
      in
      check (Alcotest.float 1e-9) name iv mv)
    float_scalars

open Uc_programs.Programs

let case name f = Alcotest.test_case name `Quick f

let corpus_cases =
  [
    case "reductions"
      (differential (reductions ~n:10) ~arrays:[ "a" ]
         ~scalars:[ "s"; "mn"; "first"; "arb"; "last" ]
         ~float_scalars:[ "avg" ]);
    case "abs_sum"
      (differential (abs_sum ~n:8) ~arrays:[ "a" ] ~scalars:[ "abs_sum" ]);
    case "matmul"
      (differential (matmul ~n:6) ~arrays:[ "a"; "b"; "c" ]);
    case "reciprocal"
      (differential (reciprocal ~n:8) ~arrays:[] ~float_arrays:[ "a" ]);
    case "odd_even_flags"
      (differential (odd_even_flags ~n:9) ~arrays:[ "a" ]);
    case "ranksort" (differential (ranksort ~n:16) ~arrays:[ "a" ]);
    case "prefix_sums"
      (differential (prefix_sums ~n:16) ~arrays:[ "a"; "cnt" ]);
    case "partial_sums_seq"
      (differential (partial_sums_seq ~n:16) ~arrays:[ "a" ]);
    case "shortest_path_n2 (deterministic)"
      (differential (shortest_path_n2 ~n:6 ()) ~arrays:[ "d" ]);
    case "shortest_path_n2 (random)"
      (differential (shortest_path_n2 ~deterministic:false ~n:6 ()) ~arrays:[ "d" ]);
    case "shortest_path_n3 (deterministic)"
      (differential (shortest_path_n3 ~n:6 ()) ~arrays:[ "d" ]);
    case "shortest_path_n3 (random)"
      (differential (shortest_path_n3 ~deterministic:false ~n:6 ()) ~arrays:[ "d" ]);
    case "shortest_path_solve"
      (differential (shortest_path_solve ~n:5 ()) ~arrays:[ "d" ]);
    case "wavefront" (differential (wavefront ~n:7) ~arrays:[ "a" ]);
    case "odd_even_sort" (differential (odd_even_sort ~n:12) ~arrays:[ "x" ]);
    case "digit_count"
      (differential (digit_count ~n:24) ~arrays:[ "samples"; "count" ]);
    case "digit_count_det"
      (differential (digit_count_det ~n:24) ~arrays:[ "samples"; "count" ]);
    (* the deterministic histogram against its host oracle: both the
       interpreter and the machine must produce the predicted counts,
       not merely agree with each other *)
    case "digit_count_det oracle" (fun () ->
        let n = 24 in
        let samples, counts = digit_count_oracle ~n in
        let src = digit_count_det ~n in
        let ir = interp_run src in
        check ints "oracle samples (interp)" samples
          (Uc.Interp.int_array ir "samples");
        check ints "oracle counts (interp)" counts
          (Uc.Interp.int_array ir "count");
        let mr = machine_run src in
        check ints "oracle samples (machine)" samples
          (Uc.Compile.int_array mr "samples");
        check ints "oracle counts (machine)" counts
          (Uc.Compile.int_array mr "count"));
    case "obstacle_grid" (differential (obstacle_grid ~n:10) ~arrays:[ "d" ]);
    case "stencil" (differential (stencil ~n:16 ~steps:4 ()) ~arrays:[ "a"; "b" ]);
    case "stencil_mapped"
      (differential (stencil ~mapped:true ~n:16 ~steps:4 ()) ~arrays:[ "a"; "b" ]);
  ]

(* the same corpus with each optimization disabled: results must not move *)
let option_variation name options =
  case name (fun () ->
      List.iter
        (fun (pname, src) ->
          match pname with
          | "quickstart" -> ()  (* exercised separately for output *)
          | _ ->
              let ir = interp_run src in
              let mr = machine_run ~options src in
              (* compare the arrays sema knows about *)
              let prog = Uc.Parser.parse_program src in
              let info = Uc.Sema.check prog in
              List.iter
                (fun (aname, ai) ->
                  match ai.Uc.Sema.aty with
                  | Uc.Ast.Tint ->
                      check ints
                        (pname ^ "." ^ aname)
                        (Uc.Interp.int_array ir aname)
                        (Uc.Compile.int_array mr aname)
                  | Uc.Ast.Tfloat ->
                      float_arrays_equal (pname ^ "." ^ aname)
                        (Uc.Interp.float_array ir aname)
                        (Uc.Compile.float_array mr aname))
                info.Uc.Sema.global_arrays)
        all_named)

let option_cases =
  [
    option_variation "no news optimization"
      { Uc.Codegen.default_options with news_opt = false };
    option_variation "no processor optimization"
      { Uc.Codegen.default_options with procopt = false };
    option_variation "mappings ignored"
      { Uc.Codegen.default_options with use_mappings = false };
    option_variation "no cse"
      { Uc.Codegen.default_options with cse = false };
    option_variation "no ir-opt"
      { Uc.Codegen.default_options with ir_opt = Cm.Iropt.off };
    option_variation "all optimizations off"
      { Uc.Codegen.news_opt = false; procopt = false; use_mappings = false;
        cse = false; ir_opt = Cm.Iropt.off };
  ]

(* ---------------- output and errors ---------------- *)

let test_quickstart_output () =
  let mr = machine_run quickstart in
  check
    (Alcotest.list Alcotest.string)
    "print output"
    [ "sum of squares 0..9 = 285"; "largest square = 81" ]
    (Uc.Compile.output mr)

let test_conflict_detected () =
  let src =
    {|
index-set I:i = {0..3}, J:j = I;
int a[4], b[4];
void main() {
  par (J) b[j] = j;
  par (I, J) a[i] = b[j];
}
|}
  in
  try
    ignore (machine_run src);
    Alcotest.fail "expected a conflict"
  with Cm.Machine.Error msg ->
    check Alcotest.bool "mentions conflict" true
      (String.length msg >= 28 && String.sub msg 0 28 = "parallel assignment conflict")

let test_elapsed_time_positive () =
  let mr = machine_run (matmul ~n:6) in
  check Alcotest.bool "time advanced" true (Uc.Compile.elapsed_seconds mr > 0.0)

(* ---------------- optimization effects on cost ---------------- *)

let router_ops options src =
  let mr = machine_run ~options src in
  (Uc.Compile.meter mr).Cm.Cost.router_ops

let test_mapping_reduces_router_traffic () =
  (* with the permute mapping the stencil's b[i+1] becomes local *)
  let opts = { Uc.Codegen.default_options with news_opt = false } in
  let unmapped = router_ops opts (stencil ~n:64 ~steps:8 ()) in
  let mapped = router_ops opts (stencil ~mapped:true ~n:64 ~steps:8 ()) in
  check Alcotest.bool
    (Printf.sprintf "mapped %d < unmapped %d" mapped unmapped)
    true (mapped < unmapped)

let test_news_cheaper_than_router () =
  let src = stencil ~n:64 ~steps:8 () in
  let with_news =
    machine_run ~options:{ Uc.Codegen.default_options with news_opt = true } src
  in
  let without =
    machine_run ~options:{ Uc.Codegen.default_options with news_opt = false } src
  in
  check Alcotest.bool "news used" true
    ((Uc.Compile.meter with_news).Cm.Cost.news_ops > 0);
  check Alcotest.bool "faster with news" true
    (Uc.Compile.elapsed_seconds with_news < Uc.Compile.elapsed_seconds without)

let test_procopt_speeds_up_histogram () =
  let src = digit_count ~n:512 in
  let fast =
    machine_run ~options:{ Uc.Codegen.default_options with procopt = true } src
  in
  let slow =
    machine_run ~options:{ Uc.Codegen.default_options with procopt = false } src
  in
  check ints "same counts" (Uc.Compile.int_array slow "count")
    (Uc.Compile.int_array fast "count");
  check Alcotest.bool "procopt faster" true
    (Uc.Compile.elapsed_seconds fast < Uc.Compile.elapsed_seconds slow)

let test_solve_slower_than_par () =
  (* paper section 3.6: *par refined by hand beats *solve *)
  let n = 6 in
  let solve = machine_run (shortest_path_solve ~n ()) in
  let par = machine_run (shortest_path_n3 ~n ()) in
  check ints "same distances" (Uc.Compile.int_array par "d")
    (Uc.Compile.int_array solve "d");
  check Alcotest.bool "solve dearer" true
    (Uc.Compile.elapsed_seconds solve > Uc.Compile.elapsed_seconds par)

let test_paris_dump_nonempty () =
  let compiled = Uc.Compile.compile_source (matmul ~n:4) in
  let s = Format.asprintf "%a" Cm.Paris.pp_program compiled.Uc.Codegen.prog in
  check Alcotest.bool "has instructions" true (String.length s > 200)

(* appended: Jacobi heat diffusion (floats + 2-D NEWS stencil) *)

let test_heat_matches_reference () =
  let n = 12 and steps = 10 in
  let mr = machine_run (Uc_programs.Programs.heat ~steps ~n ()) in
  (* reference Jacobi in OCaml, same operation order *)
  let u = Array.init n (fun x -> Array.init n (fun y ->
      if x = 0 || y = 0 || x = n - 1 || y = n - 1 then float_of_int (x + y)
      else 0.0)) in
  let unew = Array.map Array.copy u in
  for _ = 1 to steps do
    for x = 1 to n - 2 do
      for y = 1 to n - 2 do
        unew.(x).(y) <-
          0.25 *. (u.(x - 1).(y) +. (u.(x + 1).(y) +. (u.(x).(y - 1) +. u.(x).(y + 1))))
      done
    done;
    for x = 0 to n - 1 do
      for y = 0 to n - 1 do
        u.(x).(y) <- unew.(x).(y)
      done
    done
  done;
  let got = Uc.Compile.float_array mr "u" in
  Array.iteri
    (fun p v ->
      check (Alcotest.float 1e-9) (Printf.sprintf "u[%d]" p)
        u.(p / n).(p mod n) v)
    got

let test_heat_uses_news () =
  let mr = machine_run (Uc_programs.Programs.heat ~steps:4 ~n:16 ()) in
  (* the four neighbour reads on the interior set are statically safe unit
     shifts: the compiler must use the NEWS grid, not the router *)
  check Alcotest.bool "news used" true ((Uc.Compile.meter mr).Cm.Cost.news_ops > 0)

(* appended: float reductions inside parallel constructs *)

let test_float_reduction_in_par () =
  let src =
    {|
#define N 6
index-set I:i = {0..N-1}, J:j = I;
float m[N][N], rowsum[N], rowmin[N];

void main() {
  par (I, J) m[i][j] = tofloat(i * N + j) / 2.0;
  par (I) {
    rowsum[i] = $+(J; m[i][j]);
    rowmin[i] = $<(J; m[i][j]);
  }
}
|}
  in
  let ir = interp_run src in
  let mr = machine_run src in
  float_arrays_equal "rowsum" (Uc.Interp.float_array ir "rowsum")
    (Uc.Compile.float_array mr "rowsum");
  float_arrays_equal "rowmin" (Uc.Interp.float_array ir "rowmin")
    (Uc.Compile.float_array mr "rowmin");
  (* spot-check against arithmetic: row i sums (iN)...(iN+N-1) over 2 *)
  let n = 6 in
  Array.iteri
    (fun i v ->
      let expect =
        float_of_int ((n * ((i * n * 2) + n - 1)) ) /. 4.0
      in
      check (Alcotest.float 1e-9) (Printf.sprintf "rowsum[%d]" i) expect v)
    (Uc.Compile.float_array mr "rowsum")

let test_mixed_int_float_reduction () =
  (* a reduction whose branches mix int and float promotes to float *)
  let src =
    {|
#define N 8
index-set I:i = {0..N-1};
float out;

void main() {
  out = $+(I st (i % 2 == 0) tofloat(i) others 1);
}
|}
  in
  let ir = interp_run src in
  let mr = machine_run src in
  let iv =
    match Uc.Interp.scalar ir "out" with
    | Uc.Interp.Vfloat f -> f
    | Uc.Interp.Vint n -> float_of_int n
  in
  let mv =
    match Uc.Compile.scalar mr "out" with
    | Cm.Paris.SFloat f -> f
    | Cm.Paris.SInt n -> float_of_int n
  in
  (* evens 0+2+4+6 = 12, odds contribute 1 each = 4 *)
  check (Alcotest.float 1e-9) "interp" 16.0 iv;
  check (Alcotest.float 1e-9) "machine" 16.0 mv

let test_multiset_reduction () =
  (* Cartesian-product reductions, front-end and nested in par *)
  let src =
    {|
#define N 5
index-set I:i = {0..N-1}, J:j = I, K:k = {0..2};
int m[N][N], total, per_k[3];

void main() {
  par (I, J) m[i][j] = i * 10 + j;
  total = $+(I, J st (i <= j) m[i][j]);
  par (K)
    per_k[k] = $>(I, J st ((i + j) % 3 == k) m[i][j]);
}
|}
  in
  let ir = interp_run src in
  let mr = machine_run src in
  (match Uc.Interp.scalar ir "total", Uc.Compile.scalar mr "total" with
  | Uc.Interp.Vint a, Cm.Paris.SInt b ->
      check Alcotest.int "total agrees" a b;
      (* reference: sum over upper triangle of 10i + j *)
      let expect = ref 0 in
      for i = 0 to 4 do
        for j = i to 4 do
          expect := !expect + (10 * i) + j
        done
      done;
      check Alcotest.int "total reference" !expect b
  | _ -> Alcotest.fail "total kinds");
  check ints "per_k" (Uc.Interp.int_array ir "per_k")
    (Uc.Compile.int_array mr "per_k")

let test_profile_regions () =
  let mr = machine_run (Uc_programs.Programs.obstacle_grid ~n:12) in
  let regions = Cm.Machine.regions mr.Uc.Compile.machine in
  check Alcotest.bool "regions recorded" true (List.length regions >= 2);
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 regions in
  check (Alcotest.float 1e-9) "regions partition the elapsed time"
    (Uc.Compile.elapsed_seconds mr) total;
  (* the iterative relaxation dominates the init *)
  (match regions with
  | (top, _) :: _ ->
      check Alcotest.bool "dominant region is a source line" true
        (String.length top > 5 && String.sub top 0 5 = "line ")
  | [] -> Alcotest.fail "no regions")

let () =
  Alcotest.run "codegen"
    [
      ("differential", corpus_cases);
      ("option variations", option_cases);
      ( "behaviour",
        [
          case "quickstart output" test_quickstart_output;
          case "conflict detected" test_conflict_detected;
          case "elapsed positive" test_elapsed_time_positive;
        ] );
      ( "heat",
        [
          case "matches reference" test_heat_matches_reference;
          case "uses NEWS" test_heat_uses_news;
        ] );
      ( "reductions",
        [ case "multi-set Cartesian" test_multiset_reduction ] );
      ( "profile",
        [ case "regions partition time" test_profile_regions ] );
      ( "float reductions",
        [
          case "rows in par" test_float_reduction_in_par;
          case "mixed promotion" test_mixed_int_float_reduction;
        ] );
      ( "optimizations",
        [
          case "mapping cuts router traffic" test_mapping_reduces_router_traffic;
          case "news beats router" test_news_cheaper_than_router;
          case "procopt speeds histogram" test_procopt_speeds_up_histogram;
          case "*solve dearer than *par" test_solve_slower_than_par;
          case "paris dump" test_paris_dump_nonempty;
        ] );
    ]


