#!/usr/bin/env bash
# CLI smoke test: exercises every ucc subcommand on the example programs.
# Any non-zero step aborts the run and names the failing line.
set -euo pipefail
trap 'echo "cli_test.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

UCC=../bin/ucc.exe

out=$($UCC run ../examples/uc/quickstart.uc)
echo "$out" | grep -q "sum of squares 0..9 = 285"
echo "$out" | grep -q "simulated elapsed time"

# capture-then-grep (a bare `| grep -q` would SIGPIPE ucc under pipefail)
$UCC check ../examples/uc/shortest_path.uc > out.txt; grep -q "ok" out.txt
$UCC ast ../examples/uc/quickstart.uc > out.txt; grep -q 'par (I)' out.txt
$UCC paris ../examples/uc/quickstart.uc > out.txt; grep -q "preduce-add" out.txt
$UCC cstar ../examples/uc/shortest_path.uc > out.txt; grep -q "domain SHAPE_6x6" out.txt
$UCC interp ../examples/uc/quickstart.uc > out.txt; grep -q "largest square = 81" out.txt
$UCC examples > out.txt; grep -q "obstacle_grid" out.txt
$UCC show wavefront > out.txt; grep -q "solve (I, J)" out.txt

# optimization flags are accepted and keep results stable
# (sed, not head: head would SIGPIPE the compiler under pipefail)
a=$($UCC run ../examples/uc/stencil_mapped.uc --arrays a | sed -n 1p)
b=$($UCC run ../examples/uc/stencil_mapped.uc --arrays a --no-news --no-cse --no-mappings --no-procopt | sed -n 1p)
[ "$a" = "$b" ]

# the profiler attributes time to source lines
$UCC run ../examples/uc/obstacle_grid.uc --profile > out.txt; grep -q "line 12" out.txt

# errors are reported with a location and a non-zero exit
if $UCC check /dev/null 2>/dev/null; then exit 1; fi
echo "int x" > bad.uc
if $UCC check bad.uc 2>err.txt; then exit 1; fi
grep -q "error" err.txt

# corpus-invalid input to run/interp: one-line error:, non-zero exit,
# never an uncaught exception backtrace
if $UCC run bad.uc 2>err.txt; then exit 1; fi
grep -q "error" err.txt
if grep -q "uncaught exception" err.txt; then exit 1; fi
if $UCC interp bad.uc 2>err.txt; then exit 1; fi
grep -q "error" err.txt
echo "void f() {}" > nomain.uc
if $UCC run nomain.uc 2>err.txt; then exit 1; fi
grep -q "error" err.txt
if grep -q "uncaught exception" err.txt; then exit 1; fi
if $UCC run ../examples/uc/quickstart.uc --arrays nosuch 2>err.txt; then exit 1; fi
grep -q "error" err.txt
if grep -q "uncaught exception" err.txt; then exit 1; fi

# batch service: whole corpus on 2 domains, JSON-lines report; a second
# pass over the same cache is served entirely from it with identical
# simulated seconds
rm -rf batch_cache
$UCC batch --jobs 2 --cache-dir batch_cache > pass1.jsonl 2> batch1.log
$UCC batch --jobs 2 --cache-dir batch_cache > pass2.jsonl 2> batch2.log
jobs_total=$(grep -c '"job":' pass1.jsonl)
[ "$jobs_total" -gt 0 ]
grep -q '"summary":true' pass1.jsonl
[ "$(grep -c '"cache":"hit"' pass2.jsonl)" = "$jobs_total" ]
strip() { sed 's/,"wall_seconds":[^,]*,"cache":"[a-z]*"}/}/' "$1" | grep '"job":'; }
[ "$(strip pass1.jsonl)" = "$(strip pass2.jsonl)" ]

# a manifest mixing corpus names, files and per-job settings
cat > manifest.txt <<'EOF'
# corpus name with default settings
quickstart
# a file path, a reseeded job, and an option-ablated job
../examples/uc/quickstart.uc
reductions seed=777
stencil no-news no-cse
EOF
$UCC batch manifest.txt --cache-dir none > manifest.jsonl 2>/dev/null
[ "$(grep -c '"job":' manifest.jsonl)" = 4 ]

# a manifest job that exhausts its fuel is a failed row, exit code 2
echo "shortest_path_n2 fuel=5" > manifest_fuel.txt
if $UCC batch manifest_fuel.txt --cache-dir none > fuel.jsonl 2>/dev/null; then
  exit 1
else
  [ "$?" = 2 ]
fi
grep -q '"status":"failed"' fuel.jsonl

# ---- execution engines ----

# all three engines print byte-identical results (sharded at two chunk
# counts, including more shards than this host has cores)
out_fast=$($UCC run ../examples/uc/quickstart.uc --engine fast)
out_ref=$($UCC run ../examples/uc/quickstart.uc --engine reference)
out_sh1=$($UCC run ../examples/uc/quickstart.uc --engine sharded --shards 1)
out_sh7=$($UCC run ../examples/uc/quickstart.uc --engine sharded --shards 7)
[ "$out_fast" = "$out_ref" ]
[ "$out_fast" = "$out_sh1" ]
[ "$out_fast" = "$out_sh7" ]

# an unknown engine is a one-line error: naming the valid set, exit 1
if $UCC run ../examples/uc/quickstart.uc --engine warp 2>err.txt; then exit 1; fi
grep -q '^error: unknown engine "warp" (valid: fast, reference, sharded, native)$' err.txt
[ "$(wc -l < err.txt)" = 1 ]
# the same validator backs --shards
if $UCC run ../examples/uc/quickstart.uc --engine sharded --shards 0 2>err.txt; then exit 1; fi
grep -q '^error: shard count must be at least 1' err.txt
# and --help lists the same engines (one source for both)
$UCC run --help=plain > help.txt
grep -q "fast, reference, sharded" help.txt

# manifest rows carry engine= and shards= columns; the engine is part of
# the job digest, so the three rows never share a cache entry ...
cat > manifest_engine.txt <<'EOF'
quickstart engine=fast
quickstart engine=sharded shards=3
quickstart engine=reference
EOF
$UCC batch manifest_engine.txt --cache-dir none > engines.jsonl 2>/dev/null
grep -q '"engine":"fast"' engines.jsonl
grep -q '"engine":"sharded:3"' engines.jsonl
grep -q '"engine":"reference"' engines.jsonl
[ "$(grep '"job":' engines.jsonl | sed 's/.*"digest":"\([^"]*\)".*/\1/' | sort -u | wc -l)" = 3 ]
# ... while everything deterministic about the rows agrees byte for byte
[ "$(strip engines.jsonl | sed 's/"digest":"[^"]*",//;s/"engine":"[^"]*",//;s/"engine_effective":"[^"]*",//' | sort -u | wc -l)" = 1 ]

# an unknown engine name in a manifest is rejected with its line number
echo "quickstart engine=warp" > manifest_bad.txt
if $UCC batch manifest_bad.txt --cache-dir none 2>err.txt; then exit 1; fi
grep -q 'manifest line 1: unknown engine "warp"' err.txt

# ---- fault injection ----

# a hard transient fault aborts the run with a one-line diagnostic
if $UCC run ../examples/uc/quickstart.uc --faults chip@0 2>err.txt; then exit 1; fi
grep -q "transient" err.txt
if grep -q "uncaught exception" err.txt; then exit 1; fi

# an attempt-0-only fault plus a retry recovers and prints the answer
out=$($UCC run ../examples/uc/quickstart.uc --faults 'chip@0#0' --retries 1 2>retry.log)
echo "$out" | grep -q "sum of squares 0..9 = 285"
grep -q "retrying" retry.log

# a bogus plan is a one-line error, exit 1
if $UCC run ../examples/uc/quickstart.uc --faults zorp@1 2>err.txt; then exit 1; fi
grep -q "bad fault plan" err.txt

# manifest rows carry faults= and retries= columns
cat > manifest_faults.txt <<'EOF'
quickstart faults=chip@0#0 retries=1
quickstart faults=chip@0
EOF
if $UCC batch manifest_faults.txt --cache-dir none > faults.jsonl 2>/dev/null; then
  exit 1
else
  [ "$?" = 2 ]
fi
grep -q '"status":"ok"' faults.jsonl
grep -q '"attempts":2' faults.jsonl
grep -q '"status":"faulted"' faults.jsonl
grep -q '"fault_trace"' faults.jsonl

# a bad faults= value is rejected with the offending line number
echo "quickstart faults=zorp@1" > manifest_bad.txt
if $UCC batch manifest_bad.txt --cache-dir none 2>err.txt; then exit 1; fi
grep -q "manifest line 1: bad faults value" err.txt
echo "quickstart retries=x" > manifest_bad.txt
if $UCC batch manifest_bad.txt --cache-dir none 2>err.txt; then exit 1; fi
grep -q "manifest line 1: bad retries value" err.txt

# batch-wide plan: every job either finishes or is quarantined (never a
# crash), and the per-job policy flags are accepted
$UCC batch --cache-dir none --faults 'seed=9;horizon=20000;router=1' \
  --retries 2 --fuel-slice 50000 > faultgate.jsonl 2>/dev/null || [ "$?" = 2 ]
if grep -q '"status":"failed"' faultgate.jsonl; then exit 1; fi
if grep -q '"status":"timeout"' faultgate.jsonl; then exit 1; fi
grep -q '"summary":true' faultgate.jsonl

# ---- telemetry ----

# --metrics prints the aggregate table on stderr; results are unchanged
out=$($UCC run ../examples/uc/quickstart.uc --metrics 2>metrics.txt)
echo "$out" | grep -q "sum of squares 0..9 = 285"
grep -q "cm.pe_ops" metrics.txt
grep -q "compile.parse.ms" metrics.txt

# --trace=FILE writes JSON-lines events; stdout is unchanged
out=$($UCC run ../examples/uc/quickstart.uc --trace=trace.jsonl)
echo "$out" | grep -q "sum of squares 0..9 = 285"
grep -q '"name":"compile.parse"' trace.jsonl
grep -q '"phase":"begin"' trace.jsonl

# --ir-opt-stats now reads from the same spine
$UCC run ../examples/uc/quickstart.uc --ir-opt-stats 2>iropt.txt > /dev/null
grep -q "iropt" iropt.txt

# unknown array/scalar names are one-line errors listing the known ones
if $UCC run ../examples/uc/quickstart.uc --arrays nosuch 2>err.txt; then exit 1; fi
grep -q "known arrays" err.txt

# batch --trace/--metrics: job lifecycle events and cache counters
$UCC batch manifest.txt --cache-dir none --trace=batch_trace.jsonl --metrics \
  > /dev/null 2>batch_metrics.txt
grep -q '"name":"job"' batch_trace.jsonl
grep -q '"name":"job.cache"' batch_trace.jsonl
grep -q "ucd.cache.run_misses" batch_metrics.txt

# a parallel batch publishes pool health counters through the same spine
$UCC batch manifest.txt --cache-dir none --jobs 2 --metrics \
  > /dev/null 2>pool_metrics.txt
grep -q "ucd.pool.completed" pool_metrics.txt
grep -q "ucd.pool.max_depth" pool_metrics.txt

# ---- serve / submit ----

# socket paths must stay short (sun_path limit); the sandbox cwd is deep
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/ucc_cli_XXXXXX.sock")
SOCK2=$(mktemp -u "${TMPDIR:-/tmp}/ucc_cli_XXXXXX.sock")
SERVE_PID= ; SERVE2_PID=
trap 'kill $SERVE_PID $SERVE2_PID 2>/dev/null || true' EXIT

wait_sock() {
  for _ in $(seq 1 200); do [ -S "$1" ] && return 0; sleep 0.05; done
  return 1
}

$UCC serve --socket "$SOCK" --cache-dir none --jobs 2 --max-queue 64 \
  2> serve.log &
SERVE_PID=$!
wait_sock "$SOCK"

# the daemon's corpus rows are byte-identical to batch's once wall time
# and cache provenance are dropped
$UCC batch --cache-dir none > serve_batch.jsonl 2>/dev/null
$UCC submit --socket "$SOCK" --corpus --wait > serve_submit.jsonl 2>submit.log
[ "$(strip serve_batch.jsonl)" = "$(strip serve_submit.jsonl)" ]

# --stats answers with the pool and session tables on stderr
$UCC submit --socket "$SOCK" --stats 2> serve_stats.txt
grep -q '"pool"' serve_stats.txt
grep -q '"sessions"' serve_stats.txt

# ucc status: the read-only operational snapshot on stdout
$UCC status --socket "$SOCK" > status.json
grep -q '"uptime_seconds"' status.json
grep -q '"pool"' status.json
grep -q '"journal"' status.json
# a digest nobody submitted is state "unknown", exit 1
if $UCC status --socket "$SOCK" \
     --digest 00000000000000000000000000000000 > digest.json; then
  exit 1
else
  [ "$?" = 1 ]
fi
grep -q '"state":"unknown"' digest.json

# exit-code contract: a quarantined (faulted) job makes `submit --wait`
# exit 2, exactly like `ucc batch` (see README for the 0/1/2 table)
if $UCC submit --socket "$SOCK" ../examples/uc/quickstart.uc \
     --faults chip@0 --wait > faulted.jsonl 2>/dev/null; then
  exit 1
else
  [ "$?" = 2 ]
fi
grep -q '"status":"faulted"' faulted.jsonl

# SIGTERM drains, logs a clean exit, removes the socket, exits 0
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=
grep -q "drained cleanly" serve.log
[ ! -e "$SOCK" ]

# admission control: a tiny queue sheds pipelined corpus load with a
# typed `overloaded` rejection (exit 2), never a hang or a crash
$UCC serve --socket "$SOCK2" --cache-dir none --jobs 1 --max-queue 1 \
  2> serve2.log &
SERVE2_PID=$!
wait_sock "$SOCK2"
if $UCC submit --socket "$SOCK2" --corpus --wait \
     > overload.jsonl 2> overload.log; then
  exit 1
else
  [ "$?" = 2 ]
fi
grep -q "rejected (overloaded)" overload.log
# the daemon stays healthy afterwards: a follow-up submit still runs
$UCC submit --socket "$SOCK2" ../examples/uc/quickstart.uc --wait \
  > after_overload.jsonl 2>/dev/null
grep -q '"status":"ok"' after_overload.jsonl

# --drain asks the server to finish in-flight work and exit cleanly
$UCC submit --socket "$SOCK2" --drain 2> drain.log
grep -q "server draining" drain.log
wait "$SERVE2_PID"
SERVE2_PID=
grep -q "drained cleanly" serve2.log
trap - EXIT

# ---- bench snapshot comparison ----

COMPARE=../bench/compare.exe
cat > old.json <<'EOF'
{"section":"fig6","n":8,"uc":2.0,"cstar":1.0}
EOF
cat > new.json <<'EOF'
{"section":"fig6","n":8,"uc":1.5,"cstar":1.0,"router_ops":7.0}
EOF
# strict mode: any difference fails
if $COMPARE old.json new.json > /dev/null; then exit 1; fi
# --allow-faster: a drop plus new metrics columns passes, listing both
$COMPARE --allow-faster old.json new.json > cmp.txt
grep -q "+router_ops=7" cmp.txt
grep -q "none regressed" cmp.txt
# a measured quantity that rose still fails
cat > slower.json <<'EOF'
{"section":"fig6","n":8,"uc":2.5,"cstar":1.0,"router_ops":7.0}
EOF
if $COMPARE --allow-faster old.json slower.json > /dev/null; then exit 1; fi
# and so does a column that disappeared
cat > gone.json <<'EOF'
{"section":"fig6","n":8,"uc":1.5}
EOF
if $COMPARE --allow-faster old.json gone.json > cmp.txt; then exit 1; fi
grep -q "disappeared" cmp.txt

echo "cli ok"
