(* The telemetry spine (lib/obs): scope behaviour, the JSON codec, and
   the invariant the whole repo leans on — telemetry on or off NEVER
   changes program results.  The "corpus" suite is the `make ci-obs`
   gate: every named UC program, on both machine engines, produces a
   bit-identical observable snapshot with a null scope and with full
   tracing, and every emitted trace line survives a round trip through
   Ucd.Jsonu. *)

let check = Alcotest.check

(* ---------------- unit: scopes ---------------- *)

let test_counters_and_samples () =
  let obs = Obs.create ~clock:(fun () -> 0.0) () in
  Obs.count obs "ops" 2;
  Obs.count obs "ops" 3;
  Obs.sample obs "secs" 1.5;
  Obs.sample obs "secs" 2.25;
  (match Obs.table obs with
  | [ ("ops", Obs.Json.Int 5); ("secs", Obs.Json.Float s) ] ->
      check (Alcotest.float 1e-9) "sample sum" 3.75 s
  | t ->
      Alcotest.failf "unexpected table: %s"
        (Obs.Json.to_string (Obs.Json.Obj t)));
  check Alcotest.bool "enabled" true (Obs.enabled obs)

let test_null_scope () =
  check Alcotest.bool "disabled" false (Obs.enabled Obs.null);
  Obs.count Obs.null "ops" 1;
  Obs.sample Obs.null "secs" 1.0;
  Obs.point Obs.null "p";
  check Alcotest.int "no events" 0 (List.length (Obs.events Obs.null));
  check Alcotest.int "no table" 0 (List.length (Obs.table Obs.null));
  (* with_span on a disabled scope is exactly f () *)
  let calls = ref 0 in
  let r = Obs.with_span Obs.null "s" (fun () -> incr calls; 42) in
  check Alcotest.int "result" 42 r;
  check Alcotest.int "one call" 1 !calls;
  check Alcotest.int "still no events" 0 (List.length (Obs.events Obs.null))

let test_with_span () =
  let now = ref 1.0 in
  let obs = Obs.create ~clock:(fun () -> !now) () in
  let r =
    Obs.with_span obs "work"
      ~attrs:[ ("k", Obs.Json.Str "v") ]
      (fun () ->
        now := !now +. 0.25;
        "done")
  in
  check Alcotest.string "result" "done" r;
  (match Obs.events obs with
  | [ b; e ] ->
      check Alcotest.string "begin name" "work" b.Obs.name;
      check Alcotest.bool "begin phase" true (b.Obs.phase = Obs.Begin);
      check Alcotest.bool "end phase" true (e.Obs.phase = Obs.End);
      (match List.assoc "ms" e.Obs.attrs with
      | Obs.Json.Float ms -> check (Alcotest.float 1e-6) "ms" 250.0 ms
      | _ -> Alcotest.fail "no ms attr")
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  (* the duration also lands in the "<name>.ms" sample *)
  (match List.assoc "work.ms" (Obs.table obs) with
  | Obs.Json.Float ms -> check (Alcotest.float 1e-6) "sample ms" 250.0 ms
  | _ -> Alcotest.fail "no work.ms sample");
  (* a raising body re-raises and the End event carries "error" *)
  (try
     Obs.with_span obs "boom" (fun () -> ignore (failwith "nope"));
     Alcotest.fail "expected Failure"
   with Failure msg -> check Alcotest.string "re-raised" "nope" msg);
  let last = List.nth (Obs.events obs) 3 in
  check Alcotest.bool "error attr" true (List.mem_assoc "error" last.Obs.attrs)

let test_ring_bound_and_sinks () =
  let obs = Obs.create ~clock:(fun () -> 0.0) ~ring_capacity:4 () in
  let seen = ref 0 in
  Obs.add_sink obs (fun _ -> incr seen);
  for i = 0 to 9 do
    Obs.point obs (Printf.sprintf "p%d" i)
  done;
  (* sinks saw everything; the ring keeps only the newest 4 *)
  check Alcotest.int "sink deliveries" 10 !seen;
  let evs = Obs.events obs in
  check Alcotest.int "ring bound" 4 (List.length evs);
  check (Alcotest.list Alcotest.int) "newest kept" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Obs.seq) evs)

(* ---------------- json codec ---------------- *)

let test_json_roundtrip () =
  List.iter
    (fun s ->
      match Ucd.Jsonu.of_string s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok j -> check Alcotest.string s s (Ucd.Jsonu.to_string j))
    [
      {|{"a":1,"b":-2.5,"c":"x","d":[true,false]}|};
      {|{"seq":0,"t_ms":0.0,"name":"cm.region","phase":"point","attrs":{}}|};
      {|[1,2.5,"three",{"four":4}]|};
      {|{"nested":{"obj":{"deep":[[]]}}}|};
    ]

let test_event_json_roundtrip () =
  let obs = Obs.create ~clock:(fun () -> 0.0) () in
  Obs.point obs "cm.fault.flip"
    ~attrs:[ ("bit", Obs.Json.Int 3); ("where", Obs.Json.Str "chip") ];
  Obs.with_span obs "job" ~attrs:[ ("name", Obs.Json.Str "q") ] (fun () -> ());
  List.iter
    (fun ev ->
      let line = Obs.Json.to_string (Obs.event_json ev) in
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "parse %s: %s" line e
      | Ok j -> (
          check Alcotest.string "render" line (Obs.Json.to_string j);
          match Obs.event_of_json j with
          | Error e -> Alcotest.failf "event_of_json %s: %s" line e
          | Ok ev' ->
              check Alcotest.string "event render" line
                (Obs.Json.to_string (Obs.event_json ev'))))
    (Obs.events obs)

(* ---------------- corpus: telemetry never changes results ----------- *)

let seed = 42

let hex f = Printf.sprintf "%Lx" (Int64.bits_of_float f)

(* Everything observable about a finished run, floats as bit patterns
   so last-ulp drift counts (same discipline as test_engine). *)
let snapshot (t : Uc.Compile.t) =
  let m = t.Uc.Compile.machine in
  let prog = t.Uc.Compile.compiled.Uc.Codegen.prog in
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for r = 0 to prog.Cm.Paris.nregs - 1 do
    match Cm.Machine.reg m r with
    | Cm.Paris.SInt i -> add "r%d = %d\n" r i
    | Cm.Paris.SFloat f -> add "r%d = %s\n" r (hex f)
  done;
  Array.iteri
    (fun f (_vp, kind) ->
      add "f%d =" f;
      (match kind with
      | Cm.Paris.KInt ->
          Array.iter (fun v -> add " %d" v) (Cm.Machine.field_ints m f)
      | Cm.Paris.KFloat ->
          Array.iter (fun v -> add " %s" (hex v)) (Cm.Machine.field_floats m f));
      add "\n")
    prog.Cm.Paris.fields;
  List.iter (fun line -> add "| %s\n" line) (Cm.Machine.output m);
  List.iter
    (fun (k, v) -> add "%s = %s\n" k (hex v))
    (Cm.Cost.metrics (Cm.Machine.meter m));
  List.iter
    (fun (name, secs) -> add "region %s = %s\n" name (hex secs))
    (Cm.Machine.regions m);
  List.iter (fun line -> add "fault %s\n" line) (Cm.Machine.fault_log m);
  add "icount=%d\n" (Cm.Machine.icount m);
  Buffer.contents b

(* One corpus run; [traced] turns on the full --trace configuration:
   live scope, JSON-lines sink, and the publish mirror. *)
let run_case ~engine ~traced src =
  let trace = Buffer.create 4096 in
  let obs =
    if not traced then Obs.null
    else begin
      let o = Obs.create ~clock:(fun () -> 0.0) () in
      Obs.add_sink o
        (Obs.jsonl_sink (fun line ->
             Buffer.add_string trace line;
             Buffer.add_char trace '\n'));
      o
    end
  in
  let t = Uc.Compile.run_source ~engine ~seed ~obs src in
  Cm.Machine.publish t.Uc.Compile.machine;
  (snapshot t, Buffer.contents trace)

let engines = [ ("fast", `Fast); ("reference", `Reference) ]

let test_corpus_invariant () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (ename, engine) ->
          let off, _ = run_case ~engine ~traced:false src in
          let on, trace = run_case ~engine ~traced:true src in
          if not (String.equal off on) then
            Alcotest.failf "%s (%s engine): tracing changed the results" name
              ename;
          check Alcotest.bool
            (Printf.sprintf "%s (%s): trace nonempty" name ename)
            true
            (String.length trace > 0))
        engines)
    Uc_programs.Programs.all_named

(* Every line of a real trace parses with Ucd.Jsonu, re-renders byte
   for byte, and decodes back into an event that re-renders the same
   line (the Jsonu round-trip half of the ci-obs gate). *)
let test_corpus_trace_roundtrip () =
  let src = List.assoc "quickstart" Uc_programs.Programs.all_named in
  let _, trace = run_case ~engine:`Fast ~traced:true src in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' trace)
  in
  check Alcotest.bool "has lines" true (lines <> []);
  List.iter
    (fun line ->
      match Ucd.Jsonu.of_string line with
      | Error e -> Alcotest.failf "unparseable trace line %s: %s" line e
      | Ok j -> (
          check Alcotest.string "jsonu render" line (Ucd.Jsonu.to_string j);
          match Obs.event_of_json j with
          | Error e -> Alcotest.failf "not an event %s: %s" line e
          | Ok ev ->
              check Alcotest.string "event render" line
                (Ucd.Jsonu.to_string (Obs.event_json ev))))
    lines

let () =
  Alcotest.run "obs"
    [
      ( "unit",
        [
          Alcotest.test_case "counters and samples" `Quick
            test_counters_and_samples;
          Alcotest.test_case "null scope" `Quick test_null_scope;
          Alcotest.test_case "with_span" `Quick test_with_span;
          Alcotest.test_case "ring bound and sinks" `Quick
            test_ring_bound_and_sinks;
        ] );
      ( "json",
        [
          Alcotest.test_case "document round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "event round trip" `Quick
            test_event_json_roundtrip;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "tracing never changes results" `Quick
            test_corpus_invariant;
          Alcotest.test_case "trace round-trips through Jsonu" `Quick
            test_corpus_trace_roundtrip;
        ] );
    ]
