(* Unit tests for the native compilation backend (Cm.Codegen +
   `--engine native`).

   Everything here must pass on a host WITHOUT a native toolchain: the
   emitter and key tests are pure, and every execution test compares
   native against fast — on a degraded host native silently runs the
   fast kernels, so the comparisons hold trivially.  Only the warm-hit
   assertions in test/ci_native.sh require a real toolchain, and that
   script probes for one first. *)

open Cm.Paris

let hex (f : float) = Printf.sprintf "%h" f

(* A little program exercising both kinds, activity contexts, the LCG,
   output, front-end reads and a kernel-fallback op (preduce-axis,
   which needs an outer VP set to reduce into). *)
let sample_prog ?(dims = [ 4; 4 ]) () =
  let b = Builder.create "native-sample" in
  let vp = Builder.vpset b (Cm.Geometry.create dims) in
  let rows = Builder.vpset b (Cm.Geometry.create [ List.hd dims ]) in
  let x = Builder.field b ~vpset:vp KInt in
  let y = Builder.field b ~vpset:vp KFloat in
  let rowmax = Builder.field b ~vpset:rows KInt in
  let r0 = Builder.reg b in
  let r1 = Builder.reg b in
  Builder.emit b (Cwith vp);
  Builder.emit b (Region "init");
  Builder.emit b (Pcoord (x, 0));
  Builder.emit b (Pbin (Mul, x, Fld x, Imm (SInt 3)));
  Builder.emit b (Punop (ToFloat, y, Fld x));
  Builder.emit b (Pbin (Add, y, Fld y, Imm (SFloat 0.5)));
  Builder.emit b (Prand (x, Imm (SInt 100)));
  Builder.emit b (Region "mask");
  Builder.emit b Cpush;
  Builder.emit b (Pbin (Lt, x, Fld x, Imm (SInt 50)));
  Builder.emit b (Cand x);
  Builder.emit b (Pmov (x, Imm (SInt 7)));
  Builder.emit b Cpop;
  Builder.emit b (Region "reduce");
  Builder.emit b (Preduce (Add, r0, x));
  Builder.emit b (Preduce_axis (Max, rowmax, x));
  Builder.emit b (Fread (r1, rowmax, Imm (SInt 0)));
  Builder.emit b (Fprint ("sum=", Some (Reg r0)));
  Builder.emit b (Fprint ("rowmax0=", Some (Reg r1)));
  Builder.emit b Halt;
  Builder.finish b

(* Full observable snapshot of an already-run machine: status, every
   register, every field element, output log, region profile and
   simulated time, floats in %h so the comparison is bit-exact. *)
let snapshot (prog : program) status m =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "%s\n" status;
  for r = 0 to prog.nregs - 1 do
    match Cm.Machine.reg m r with
    | SInt i -> add "r%d=%d\n" r i
    | SFloat f -> add "r%d=%s\n" r (hex f)
  done;
  Array.iteri
    (fun f (_, kind) ->
      match kind with
      | KInt ->
          Array.iter (fun v -> add " %d" v) (Cm.Machine.field_ints m f);
          add "\n"
      | KFloat ->
          Array.iter (fun v -> add " %s" (hex v)) (Cm.Machine.field_floats m f);
          add "\n")
    prog.fields;
  List.iter (fun l -> add "out %s\n" l) (Cm.Machine.output m);
  List.iter
    (fun (n, s) -> add "region %s=%s\n" n (hex s))
    (Cm.Machine.regions m);
  add "ns=%s\n" (hex (Cm.Machine.meter m).Cm.Cost.elapsed_ns);
  Buffer.contents b

let run_status m =
  match Cm.Machine.run m with
  | () -> "finished"
  | exception Cm.Machine.Error msg -> "error: " ^ msg
  | exception Invalid_argument msg -> "invalid_arg: " ^ msg

let observation ?obs engine prog =
  let m = Cm.Machine.create ~seed:7 ~fuel:1_000_000 ~engine ?obs prog in
  snapshot prog (run_status m) m

(* ---- emitter ---- *)

let test_source_deterministic () =
  let p1 = sample_prog () in
  let p2 = sample_prog () in
  let s1 = Cm.Codegen.source p1 and s1' = Cm.Codegen.source p1 in
  Alcotest.(check string) "same value, same source" s1 s1';
  (* structurally equal programs built independently: byte-identical
     source and therefore the same content address *)
  Alcotest.(check string) "equal IR, same source" s1 (Cm.Codegen.source p2);
  Alcotest.(check string) "equal IR, same key" (Cm.Codegen.key p1)
    (Cm.Codegen.key p2)

let test_distinct_keys () =
  let p1 = sample_prog () in
  let p2 = sample_prog ~dims:[ 8; 2 ] () in
  if Cm.Codegen.key p1 = Cm.Codegen.key p2 then
    Alcotest.fail "distinct programs share a cache key";
  if Cm.Codegen.source p1 = Cm.Codegen.source p2 then
    Alcotest.fail "distinct programs share generated source"

let test_coverage () =
  let native, fallback = Cm.Codegen.coverage (sample_prog ()) in
  let has mn l = List.mem_assoc mn l in
  Alcotest.(check bool) "pbin is native" true (has "pbin" native);
  Alcotest.(check bool) "pcoord is native" true (has "pcoord" native);
  Alcotest.(check bool)
    "preduce-axis falls back" true
    (has "preduce-axis" fallback);
  Alcotest.(check bool)
    "preduce-axis not native" false
    (has "preduce-axis" native)

(* ---- execution ---- *)

let test_native_matches_fast () =
  let prog = sample_prog () in
  Alcotest.(check string)
    "native == fast" (observation `Fast prog)
    (observation `Native prog)

let test_uc_corpus () =
  List.iter
    (fun (name, src) ->
      let compiled = Uc.Compile.compile_source src in
      let prog = compiled.Uc.Codegen.prog in
      let fast = observation `Fast prog and native = observation `Native prog in
      if fast <> native then
        Alcotest.failf "%s: native diverges@.--- fast ---@.%s--- native ---@.%s"
          name fast native)
    Uc_programs.Programs.all_named

(* traced-vs-untraced: attaching a telemetry scope must not change one
   observable bit of a native run (same contract the other engines
   honor, test_obs.ml) *)
let test_traced_untraced () =
  let prog = sample_prog () in
  let untraced = observation `Native prog in
  let obs = Obs.create ~clock:(fun () -> 0.0) () in
  Alcotest.(check string) "traced == untraced" untraced
    (observation ~obs `Native prog)

let test_checkpoint_alternation () =
  let prog = sample_prog () in
  let straight = observation `Fast prog in
  let engines = [| `Fast; `Native; `Native |] in
  let m = ref (Cm.Machine.create ~seed:7 ~fuel:1_000_000 ~engine:`Native prog) in
  let i = ref 0 in
  let status =
    try
      while Cm.Machine.run_slice !m ~fuel_slice:3 = `More do
        let data = Cm.Machine.checkpoint !m in
        m := Cm.Machine.restore ~engine:engines.(!i mod 3) prog data;
        incr i
      done;
      "finished"
    with Cm.Machine.Error msg -> "error: " ^ msg
  in
  Alcotest.(check string) "sliced native == straight fast" straight
    (snapshot prog status !m)

(* ---- degradation ---- *)

let test_forced_unavailable () =
  let prog = sample_prog () in
  let fast = observation `Fast prog in
  Cm.Codegen.force_unavailable (Some "simulated toolchain-less host");
  Fun.protect ~finally:(fun () -> Cm.Codegen.force_unavailable None)
  @@ fun () ->
  (match Cm.Codegen.available () with
  | Ok () -> Alcotest.fail "available despite force_unavailable"
  | Error msg ->
      Alcotest.(check bool)
        "reason surfaces" true
        (Astring.String.is_infix ~affix:"simulated toolchain-less host" msg));
  let m = Cm.Machine.create ~seed:7 ~fuel:1_000_000 ~engine:`Native prog in
  (match Cm.Machine.compile_native m with
  | Ok () -> Alcotest.fail "compile_native succeeded despite force_unavailable"
  | Error why ->
      Alcotest.(check bool)
        "typed reason" true
        (Astring.String.is_infix ~affix:"disabled" why));
  Alcotest.(check bool)
    "degrades to fast" true
    (Cm.Machine.effective_engine m = `Fast);
  (* and the run still produces bit-identical results *)
  Alcotest.(check string) "degraded native == fast" fast
    (observation `Native prog)

let test_fault_injection_policy () =
  (* fault plans hook the fast dispatch loop: native machines carrying a
     plan must degrade (quietly) rather than diverge *)
  let prog = sample_prog () in
  let spec =
    match Cm.Fault.parse "seed=1;horizon=40;router=1" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let faults = Cm.Fault.instantiate spec ~attempt:0 in
  let m = Cm.Machine.create ~seed:7 ~engine:`Native ~faults prog in
  Alcotest.(check bool)
    "fault plans run on fast" true
    (Cm.Machine.effective_engine m = `Fast)

let () =
  Alcotest.run "native"
    [
      ( "emitter",
        [
          Alcotest.test_case "source is deterministic" `Quick
            test_source_deterministic;
          Alcotest.test_case "distinct IR, distinct keys" `Quick
            test_distinct_keys;
          Alcotest.test_case "coverage census" `Quick test_coverage;
        ] );
      ( "execution",
        [
          Alcotest.test_case "native == fast (sample)" `Quick
            test_native_matches_fast;
          Alcotest.test_case "native == fast (uc corpus)" `Quick
            test_uc_corpus;
          Alcotest.test_case "traced == untraced" `Quick test_traced_untraced;
          Alcotest.test_case "checkpoint alternation" `Quick
            test_checkpoint_alternation;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "force_unavailable degrades to fast" `Quick
            test_forced_unavailable;
          Alcotest.test_case "fault plans stay on fast" `Quick
            test_fault_injection_policy;
        ] );
    ]
