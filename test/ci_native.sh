#!/usr/bin/env bash
# `make ci-native` gate: the whole built-in corpus must be bit-identical
# between --engine fast and --engine native, on a cold .cmxs cache
# (every program freshly compiled through ocamlopt + Dynlink) and on a
# warm one (a fresh process over the same cache dir, different seed so
# run results miss — the seed is in the job digest — but compiled code
# hits — the IR digest doesn't see seeds).  With a native toolchain the
# warm sweep must be served 100% from the code cache; without one every
# row must degrade to the fast kernels with a one-line warning, still
# bit-identical, still exit 0.  Run from the repository root (the
# Makefile does).
set -euo pipefail
trap 'echo "ci_native.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

UCC=${UCC:-_build/default/bin/ucc.exe}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/ucc_ci_native.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# deterministic identity: drop wall time, cache provenance and the
# engine labels (the job digest covers the engine, so it differs too)
norm() {
  sed -e 's/,"wall_seconds":[^,]*,"cache":"[a-z]*"}/}/' \
      -e 's/"digest":"[^"]*",//' \
      -e 's/"engine":"[^"]*",//' \
      -e 's/"engine_effective":"[^"]*",//' "$1" | grep '"job":'
}

# fast baselines at both seeds, no disk cache
$UCC batch --cache-dir none --engine fast \
  --report "$WORK/fast_a.jsonl" 2>/dev/null
$UCC batch --cache-dir none --engine fast --seed 777 \
  --report "$WORK/fast_b.jsonl" 2>/dev/null

# cold sweep: fresh cache dir, every program's .cmxs built from source
$UCC batch --cache-dir "$WORK/cache" --engine native --stats \
  --report "$WORK/native_cold.jsonl" 2>"$WORK/cold.err"
diff <(norm "$WORK/fast_a.jsonl") <(norm "$WORK/native_cold.jsonl")

# warm sweep: fresh process, same cache dir, different seed
$UCC batch --cache-dir "$WORK/cache" --engine native --seed 777 --stats \
  --report "$WORK/native_warm.jsonl" 2>"$WORK/warm.err"
diff <(norm "$WORK/fast_b.jsonl") <(norm "$WORK/native_warm.jsonl")

if grep -q '"engine_effective":"native"' "$WORK/native_cold.jsonl"; then
  # toolchain present: no row may have fallen back, no warning printed
  ! grep '"job":' "$WORK/native_cold.jsonl" | grep -q '"engine_effective":"fast"'
  ! grep '"job":' "$WORK/native_warm.jsonl" | grep -q '"engine_effective":"fast"'
  ! grep -q 'native engine unavailable' "$WORK/cold.err"
  # the cold sweep compiled everything (0 code-cache hits) ...
  grep -q 'native 0/' "$WORK/cold.err"
  # ... and the warm sweep must be 100% code-cache hits
  read -r h t <<<"$(sed -n 's/.*native \([0-9]*\)\/\([0-9]*\) hit.*/\1 \2/p' "$WORK/warm.err")"
  test -n "${h:-}" && test "$h" -gt 0 && test "$h" -eq "$t"
  echo "ci-native: corpus bit-identical fast vs native, cold ($t programs compiled) and warm ($h/$t code-cache hits)"
else
  # no usable toolchain: every row degraded to fast, warned once
  ! grep '"job":' "$WORK/native_cold.jsonl" | grep -qv '"engine_effective":"fast"'
  grep -q 'native engine unavailable' "$WORK/cold.err"
  echo "ci-native: no native toolchain; corpus degraded to fast kernels bit-identically"
fi
