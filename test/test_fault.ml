(* The fault-injection layer: spec grammar, plan instantiation, the
   machine-level observation points, and checkpoint error paths. *)

open Cm.Paris

let parse_ok s =
  match Cm.Fault.parse s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "%S should parse: %s" s msg

let parse_err s =
  match Cm.Fault.parse s with
  | Ok _ -> Alcotest.failf "%S should be rejected" s
  | Error msg -> msg

(* ---- grammar ---- *)

let test_parse_roundtrip () =
  (* spec_string is canonical: parsing it back yields the same string *)
  List.iter
    (fun s ->
      let c = Cm.Fault.spec_string (parse_ok s) in
      Alcotest.(check string) ("canonical form of " ^ s) c
        (Cm.Fault.spec_string (parse_ok c)))
    [
      "seed=7;horizon=500;router=2";
      "chip@5";
      "router@10#1;news@3";
      "flip@100:1.2.3";
      "seed=1;horizon=10;router=1,news=1,chip=1,flip=1";
      "flip@7:0.0.63;flip@7:1.0.0";
      "  chip@5 ; news@9  ";
    ]

let test_canonical_shape () =
  (* random counts pull in seed and horizon; explicit-only specs don't *)
  Alcotest.(check string) "explicit only" "chip@5;router@9"
    (Cm.Fault.spec_string (parse_ok "router@9;chip@5"));
  Alcotest.(check string) "random counts carry seed+horizon"
    "seed=3;horizon=100;router=2"
    (Cm.Fault.spec_string (parse_ok "horizon=100;router=2;seed=3"));
  Alcotest.(check bool) "empty spec is empty" true
    (Cm.Fault.is_empty (parse_ok ""))

let test_parse_errors () =
  List.iter
    (fun s ->
      let msg = parse_err s in
      Alcotest.(check bool)
        (Printf.sprintf "%S error mentions the token (%s)" s msg)
        true (String.length msg > 0))
    [
      "bogus=3";
      "zorp@5";
      "chip@-1";
      "chip@x";
      "flip@5";
      "flip@5:1.2";
      "flip@5:a.b.c";
      "seed=x";
      "horizon=0";
      "router=-1";
      "seed=3#1";
    ]

(* ---- instantiation ---- *)

let test_instantiate_deterministic () =
  let spec = parse_ok "seed=42;horizon=200;router=2;news=1;chip=2;flip=1" in
  let p1 = Cm.Fault.instantiate spec ~attempt:0 in
  let p2 = Cm.Fault.instantiate spec ~attempt:0 in
  Alcotest.(check string) "same attempt, same plan" (Cm.Fault.canonical p1)
    (Cm.Fault.canonical p2);
  Alcotest.(check int) "all events drawn" 6
    (Array.length (Cm.Fault.events p1));
  let p3 = Cm.Fault.instantiate spec ~attempt:1 in
  Alcotest.(check bool) "different attempt, different draw" false
    (Cm.Fault.events p1 = Cm.Fault.events p3)

let test_attempt_filtering () =
  let spec = parse_ok "chip@5#0;router@9" in
  let ev_kinds plan =
    Array.to_list (Cm.Fault.events plan)
    |> List.map (fun (s, e) ->
           match e with
           | Cm.Fault.Transient k -> (s, Cm.Fault.kind_name k)
           | Cm.Fault.Flip _ -> (s, "flip"))
  in
  Alcotest.(check (list (pair int string)))
    "attempt 0 sees both"
    [ (5, "chip"); (9, "router") ]
    (ev_kinds (Cm.Fault.instantiate spec ~attempt:0));
  Alcotest.(check (list (pair int string)))
    "attempt 1 sees only the unqualified event"
    [ (9, "router") ]
    (ev_kinds (Cm.Fault.instantiate spec ~attempt:1))

(* ---- machine-level observation points ---- *)

(* f0 holds 4 copies of 1; flipping bit 3 of element 2 yields 9 there *)
let flip_prog () =
  let b = Builder.create "flip" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
  let f = Builder.field b ~vpset:vp KInt in
  Builder.emit b (Cwith vp);
  Builder.emit b (Pmov (f, Imm (SInt 1)));
  Builder.emit b (Pbin (Add, f, Fld f, Imm (SInt 0)));
  Builder.finish b

let test_bit_flip_applies () =
  let prog = flip_prog () in
  let faults = Cm.Fault.instantiate (parse_ok "flip@2:0.2.3") ~attempt:0 in
  let m = Cm.Machine.create ~faults prog in
  Cm.Machine.run m;
  Alcotest.(check (array int))
    "bit 3 of element 2 flipped before the add" [| 1; 1; 9; 1 |]
    (Cm.Machine.field_ints m 0);
  (match Cm.Machine.fault_log m with
  | [ line ] ->
      Alcotest.(check bool) ("logged: " ^ line) true
        (Astring.String.is_infix ~affix:"bit flip at instruction 2" line)
  | l -> Alcotest.failf "expected one fault-log line, got %d" (List.length l))

let test_transient_raises () =
  let prog = flip_prog () in
  let faults = Cm.Fault.instantiate (parse_ok "chip@1") ~attempt:0 in
  let m = Cm.Machine.create ~faults prog in
  (match Cm.Machine.run m with
  | () -> Alcotest.fail "expected a transient fault"
  | exception Cm.Machine.Fault msg ->
      Alcotest.(check bool) ("fault message: " ^ msg) true
        (Astring.String.is_infix ~affix:"transient chip fault" msg));
  (* the fault left the machine before the victim instruction *)
  Alcotest.(check int) "stopped at the victim" 1 (Cm.Machine.icount m);
  Alcotest.(check bool) "not finished" false (Cm.Machine.finished m)

let router_prog () =
  let b = Builder.create "router" in
  let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
  let addr = Builder.field b ~vpset:vp KInt in
  let src = Builder.field b ~vpset:vp KInt in
  let dst = Builder.field b ~vpset:vp KInt in
  Builder.emit b (Cwith vp);
  Builder.emit b (Pcoord (addr, 0));
  Builder.emit b (Pmov (src, Imm (SInt 3)));
  Builder.emit b (Pget (dst, src, addr));
  Builder.finish b

let test_router_fault_needs_router_traffic () =
  (* an armed router fault only fires on router traffic: a program that
     never uses the router survives it untouched ... *)
  let faults = Cm.Fault.instantiate (parse_ok "router@0") ~attempt:0 in
  let m = Cm.Machine.create ~faults (flip_prog ()) in
  Cm.Machine.run m;
  Alcotest.(check bool) "router-free program survives" true
    (Cm.Machine.finished m);
  (* ... while the first Pget in a routing program dies *)
  let faults = Cm.Fault.instantiate (parse_ok "router@0") ~attempt:0 in
  let m = Cm.Machine.create ~faults (router_prog ()) in
  match Cm.Machine.run m with
  | () -> Alcotest.fail "expected the router fault to fire on Pget"
  | exception Cm.Machine.Fault msg ->
      Alcotest.(check bool) ("fault message: " ^ msg) true
        (Astring.String.is_infix ~affix:"transient router fault" msg
        && Astring.String.is_infix ~affix:"pget" msg)

(* ---- checkpoint error paths ---- *)

let expect_machine_error ~affix f =
  match f () with
  | _ -> Alcotest.failf "expected Machine.Error mentioning %S" affix
  | exception Cm.Machine.Error msg ->
      Alcotest.(check bool) ("error: " ^ msg) true
        (Astring.String.is_infix ~affix msg)

let test_checkpoint_errors () =
  let prog = flip_prog () in
  let m = Cm.Machine.create prog in
  ignore (Cm.Machine.run_slice m ~fuel_slice:1);
  let data = Cm.Machine.checkpoint m in
  (* bad magic *)
  expect_machine_error ~affix:"bad magic" (fun () ->
      Cm.Machine.restore prog "not a checkpoint");
  (* truncated *)
  expect_machine_error ~affix:"truncated or corrupt" (fun () ->
      Cm.Machine.restore prog (String.sub data 0 (String.length data / 2)));
  (* a checkpoint from a different program *)
  let other =
    let b = Builder.create "other" in
    let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
    let f = Builder.field b ~vpset:vp KInt in
    Builder.emit b (Cwith vp);
    Builder.emit b (Pmov (f, Imm (SInt 2)));
    Builder.finish b
  in
  expect_machine_error ~affix:"different program" (fun () ->
      Cm.Machine.restore other data);
  (* and the good path still works *)
  let m2 = Cm.Machine.restore prog data in
  Cm.Machine.run m2;
  Alcotest.(check bool) "restored machine finishes" true
    (Cm.Machine.finished m2)

let test_run_slice_validates () =
  let m = Cm.Machine.create (flip_prog ()) in
  match Cm.Machine.run_slice m ~fuel_slice:0 with
  | _ -> Alcotest.fail "fuel_slice 0 should be rejected"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "fault"
    [
      ( "grammar",
        [
          Alcotest.test_case "parse/canonical round-trip" `Quick
            test_parse_roundtrip;
          Alcotest.test_case "canonical shape" `Quick test_canonical_shape;
          Alcotest.test_case "bad tokens rejected" `Quick test_parse_errors;
        ] );
      ( "instantiate",
        [
          Alcotest.test_case "deterministic per attempt" `Quick
            test_instantiate_deterministic;
          Alcotest.test_case "#attempt filtering" `Quick test_attempt_filtering;
        ] );
      ( "machine",
        [
          Alcotest.test_case "bit flip applies and logs" `Quick
            test_bit_flip_applies;
          Alcotest.test_case "transient raises Fault" `Quick
            test_transient_raises;
          Alcotest.test_case "router fault needs router traffic" `Quick
            test_router_fault_needs_router_traffic;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "error paths" `Quick test_checkpoint_errors;
          Alcotest.test_case "run_slice validates" `Quick
            test_run_slice_validates;
        ] );
    ]
