#!/usr/bin/env bash
# `make ci-crash` gate: start the daemon on the corpus, SIGKILL it
# mid-run, restart it over the same cache dir, and require that every
# accepted job still finishes — zero lost, zero duplicated, report rows
# byte-identical to `ucc batch`.  The client side rides out the crash
# with `--reconnect` (resubmit-by-digest after the daemon comes back).
# Run from the repository root (the Makefile does).
set -euo pipefail
trap 'echo "ci_crash.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

UCC=${UCC:-_build/default/bin/ucc.exe}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/ucc_ci_crash.XXXXXX")
SOCK="$WORK/ucd.sock"
CACHE="$WORK/cache"
SERVE_PID=
cleanup() { kill $SERVE_PID 2>/dev/null || true; rm -rf "$WORK"; }
trap cleanup EXIT

# deterministic identity: everything but wall time and cache provenance
strip() { sed 's/,"wall_seconds":[^,]*,"cache":"[a-z]*"}/}/' "$1" | grep '"job":'; }

wait_sock() {
  for _ in $(seq 1 200); do [ -S "$1" ] && return 0; sleep 0.05; done
  return 1
}

$UCC serve --socket "$SOCK" --cache-dir "$CACHE" --jobs 2 --max-queue 64 \
  2> "$WORK/serve1.log" &
SERVE_PID=$!
wait_sock "$SOCK"

# push the whole corpus; the client must survive the daemon dying under it
$UCC submit --socket "$SOCK" --corpus --wait --reconnect --tenant crash \
  > "$WORK/crash.jsonl" 2> "$WORK/crash.log" &
CLIENT=$!

# let some jobs land, then kill the daemon without ceremony
sleep 0.4
kill -KILL "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=

# the write-ahead journal is the only thing that survived
[ -s "$CACHE/journal.jsonl" ]

# restart over the same cache dir: replay, requeue, resume
$UCC serve --socket "$SOCK" --cache-dir "$CACHE" --jobs 2 --max-queue 64 \
  2> "$WORK/serve2.log" &
SERVE_PID=$!
wait_sock "$SOCK"

# the reconnecting client finishes every job and exits 0
wait "$CLIENT"
[ "$(grep -c '"job":' "$WORK/crash.jsonl")" -eq \
  "$("$UCC" examples | wc -l)" ]

# zero duplicated: every job name appears exactly once
[ -z "$(grep -o '"job":"[^"]*"' "$WORK/crash.jsonl" | sort | uniq -d)" ]

# zero lost, rows byte-identical to an uninterrupted batch run
$UCC batch --cache-dir none > "$WORK/batch.jsonl" 2>/dev/null
[ "$(strip "$WORK/batch.jsonl")" = "$(strip "$WORK/crash.jsonl")" ]

# the operational snapshot over the same socket confirms the recovery
$UCC status --socket "$SOCK" > "$WORK/status.json"
grep -q '"journal":{"enabled":true' "$WORK/status.json"
grep -qv '"replayed":0' "$WORK/status.json"

# and the restarted daemon still drains cleanly
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=
grep -q "drained cleanly" "$WORK/serve2.log"
[ ! -e "$SOCK" ]

echo "crash gate: SIGKILL mid-corpus, restart recovered every job, rows identical"
