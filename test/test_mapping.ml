(* Data mappings (paper section 4): permute, fold and copy must never
   change results, only communication behaviour, and reading data back
   must invert the layouts. *)

let check = Alcotest.check
let ints = Alcotest.array Alcotest.int

let interp_run src =
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  Uc.Interp.run prog

let differential name src =
  let ir = interp_run src in
  let mr = Uc.Compile.run_source src in
  List.iter
    (fun arr ->
      check ints (name ^ "." ^ arr) (Uc.Interp.int_array ir arr)
        (Uc.Compile.int_array mr arr))
    [ "a"; "b" ]

(* ---------------- layout arithmetic ---------------- *)

let test_layout_shifted () =
  let l = Uc.Mapping.Shifted [| 1 |] in
  check (Alcotest.list Alcotest.int) "dims unchanged" [ 8 ]
    (Uc.Mapping.physical_dims l [ 8 ]);
  (* element x lives in slot (x - 1) mod 8 *)
  check Alcotest.int "x=1 at slot 0" 0 (Uc.Mapping.physical_index l [ 8 ] [ 1 ]);
  check Alcotest.int "x=0 wraps to slot 7" 7 (Uc.Mapping.physical_index l [ 8 ] [ 0 ]);
  check Alcotest.int "offset" 1 (Uc.Mapping.axis_offset l 0)

let test_layout_folded () =
  let l = Uc.Mapping.Folded 2 in
  check (Alcotest.list Alcotest.int) "dims" [ 4; 2 ]
    (Uc.Mapping.physical_dims l [ 8 ]);
  (* x -> (x mod 4, x / 4) *)
  check Alcotest.int "x=0" 0 (Uc.Mapping.physical_index l [ 8 ] [ 0 ]);
  check Alcotest.int "x=4 shares VP row with x=0" 1
    (Uc.Mapping.physical_index l [ 8 ] [ 4 ]);
  check Alcotest.int "x=1" 2 (Uc.Mapping.physical_index l [ 8 ] [ 1 ]);
  check Alcotest.int "x=7" 7 (Uc.Mapping.physical_index l [ 8 ] [ 7 ])

let test_layout_copied () =
  let l = Uc.Mapping.Copied 3 in
  check (Alcotest.list Alcotest.int) "dims" [ 3; 8 ]
    (Uc.Mapping.physical_dims l [ 8 ]);
  check Alcotest.int "copy 0" 5 (Uc.Mapping.physical_index l [ 8 ] [ 5 ])

let test_of_program () =
  let src =
    {|
index-set I:i = {0..7};
int a[8], b[8], c[8];
map (I) { permute (I) b[i+1] :- a[i]; fold a by 2; copy c along 3; }
void main() { ; }
|}
  in
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  let layouts = Uc.Mapping.of_program prog in
  check Alcotest.bool "b shifted" true
    (List.assoc "b" layouts = Uc.Mapping.Shifted [| 1 |]);
  check Alcotest.bool "a folded" true
    (List.assoc "a" layouts = Uc.Mapping.Folded 2);
  check Alcotest.bool "c copied" true
    (List.assoc "c" layouts = Uc.Mapping.Copied 3)

(* bad fold/copy declarations must be rejected at the map-section site
   with a source location, not as an Invalid_argument from address
   arithmetic deep inside codegen.  Sema rejects these earlier with its
   own (stricter) rules; of_program is the backstop for callers that
   skip Sema, so these tests parse but deliberately do not check. *)
let expect_mapping_error name src fragment =
  let prog = Uc.Parser.parse_program src in
  try
    ignore (Uc.Mapping.of_program prog);
    Alcotest.fail (name ^ ": expected Loc.Error")
  with Uc.Loc.Error (_, msg) ->
    check Alcotest.bool
      (Printf.sprintf "%s: %S mentions %S" name msg fragment)
      true
      (Astring.String.is_infix ~affix:fragment msg)

let test_fold_factor_rejected () =
  expect_mapping_error "non-dividing factor"
    {|
index-set I:i = {0..7};
int a[8];
map (I) { fold a by 3; }
void main() { ; }
|}
    "does not divide";
  expect_mapping_error "zero factor"
    {|
index-set I:i = {0..7};
int a[8];
map (I) { fold a by 0; }
void main() { ; }
|}
    "must be positive"

let test_fold_of_scalar_rejected () =
  expect_mapping_error "fold of scalar"
    {|
index-set I:i = {0..7};
int s;
int a[8];
map (I) { fold s by 2; }
void main() { ; }
|}
    "cannot fold scalar"

let test_copy_rejected () =
  expect_mapping_error "copy of scalar"
    {|
index-set I:i = {0..7};
int s;
int a[8];
map (I) { copy s along 3; }
void main() { ; }
|}
    "cannot copy scalar";
  expect_mapping_error "copy count 0"
    {|
index-set I:i = {0..7};
int a[8];
map (I) { copy a along 0; }
void main() { ; }
|}
    "at least 1"

(* ---------------- layout bijection property ---------------- *)

(* Every layout is a bijection from the logical domain onto its image in
   the physical array given by physical_dims: indices stay in range,
   never collide, and (for Copied, whose image is copy 0) exactly fill
   [0, total).  This is what makes result unscrambling well-defined. *)
let layout_gen =
  let open QCheck.Gen in
  let* rank = int_range 1 3 in
  let* dims = list_repeat rank (int_range 1 6) in
  let* layout =
    oneof
      [
        return Uc.Mapping.Default;
        (let* offs = list_repeat rank (int_range (-5) 5) in
         return (Uc.Mapping.Shifted (Array.of_list offs)));
        (let d0 = List.hd dims in
         let divisors =
           List.filter (fun f -> d0 mod f = 0) (List.init d0 (fun i -> i + 1))
         in
         let* f = oneofl divisors in
         return (Uc.Mapping.Folded f));
        (let* m = int_range 1 4 in
         return (Uc.Mapping.Copied m));
      ]
  in
  return (layout, dims)

let layout_print (layout, dims) =
  let l =
    match layout with
    | Uc.Mapping.Default -> "default"
    | Uc.Mapping.Shifted o ->
        Printf.sprintf "shifted [%s]"
          (String.concat ";" (Array.to_list (Array.map string_of_int o)))
    | Uc.Mapping.Folded f -> Printf.sprintf "folded %d" f
    | Uc.Mapping.Copied m -> Printf.sprintf "copied %d" m
  in
  Printf.sprintf "%s of [%s]" l
    (String.concat ";" (List.map string_of_int dims))

let prop_layout_bijection =
  QCheck.Test.make ~count:500 ~name:"layout is a bijection"
    (QCheck.make ~print:layout_print layout_gen)
    (fun (layout, dims) ->
      let total = List.fold_left ( * ) 1 dims in
      let pdims = Uc.Mapping.physical_dims layout dims in
      let ptotal = List.fold_left ( * ) 1 pdims in
      (match layout with
      | Uc.Mapping.Copied m ->
          if ptotal <> m * total then
            QCheck.Test.fail_reportf "copied physical size %d <> %d" ptotal
              (m * total)
      | _ ->
          if ptotal <> total then
            QCheck.Test.fail_reportf "physical size %d <> logical %d" ptotal
              total);
      (* the image is exactly [0, total): in range, no collisions *)
      let g = Cm.Geometry.create dims in
      let hit = Array.make total false in
      for logical = 0 to total - 1 do
        let coords = Array.to_list (Cm.Geometry.coords g logical) in
        let phys = Uc.Mapping.physical_index layout dims coords in
        if phys < 0 || phys >= total then
          QCheck.Test.fail_reportf "index %d out of range for logical %d" phys
            logical;
        if hit.(phys) then
          QCheck.Test.fail_reportf "collision at physical %d" phys;
        hit.(phys) <- true
      done;
      true)

let test_conflicting_mappings () =
  (* two arrays, each mapped twice: one scan must report both arrays,
     every site, and the competing layouts *)
  let src =
    {|
index-set I:i = {0..7};
int a[8], b[8];
map (I) { fold a by 2; copy a along 3; }
map (I) { permute (I) b[i+1] :- a[i]; fold b by 4; }
void main() { ; }
|}
  in
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  let contains hay needle =
    Astring.String.is_infix ~affix:needle hay
  in
  try
    ignore (Uc.Mapping.of_program prog);
    Alcotest.fail "expected conflict"
  with Uc.Loc.Error (_, msg) ->
    List.iter
      (fun needle ->
        check Alcotest.bool (Printf.sprintf "message mentions %S" needle) true
          (contains msg needle))
      [
        "2 arrays";
        "a <- ";
        "b <- ";
        "fold by 2";
        "copy along 3";
        "permute[+1]";
        "fold by 4";
      ]

(* ---------------- end-to-end: fold ---------------- *)

let test_fold_differential () =
  differential "folded" (Uc_programs.Programs.folded_pairs ~folded:true ~n:16 ());
  differential "unfolded" (Uc_programs.Programs.folded_pairs ~n:16 ())

let test_fold_same_results_as_unfolded () =
  let m1 = Uc.Compile.run_source (Uc_programs.Programs.folded_pairs ~n:16 ()) in
  let m2 =
    Uc.Compile.run_source (Uc_programs.Programs.folded_pairs ~folded:true ~n:16 ())
  in
  check ints "a" (Uc.Compile.int_array m1 "a") (Uc.Compile.int_array m2 "a");
  check ints "b" (Uc.Compile.int_array m1 "b") (Uc.Compile.int_array m2 "b")

(* ---------------- end-to-end: copy ---------------- *)

let test_copy_differential () =
  differential "copied"
    (Uc_programs.Programs.copied_broadcast ~copied:true ~n:16 ~copies:4 ());
  differential "uncopied" (Uc_programs.Programs.copied_broadcast ~n:16 ~copies:4 ())

let test_copy_reduces_congestion () =
  (* reading a[i % 4] concentrates fan-in on four elements; replication
     spreads it across the copies *)
  let n = 4096 in
  let time src =
    let t = Uc.Compile.run_source src in
    Uc.Compile.elapsed_seconds t
  in
  let plain =
    time (Uc_programs.Programs.copied_broadcast ~steps:16 ~n ~copies:8 ())
  in
  let copied =
    time
      (Uc_programs.Programs.copied_broadcast ~copied:true ~steps:16 ~n ~copies:8 ())
  in
  check Alcotest.bool
    (Printf.sprintf "copied %.4f < plain %.4f" copied plain)
    true (copied < plain)

let test_copy_write_updates_all_copies () =
  (* after a[2] = 55 on the front end, a later parallel read of a[2] must
     see 55 whichever copy serves it; the second par in the program reads
     after the write, so the differential above already covers it; here we
     additionally check the unscrambled array *)
  let m =
    Uc.Compile.run_source
      (Uc_programs.Programs.copied_broadcast ~copied:true ~n:16 ~copies:4 ())
  in
  check Alcotest.int "a[2] updated" 55 (Uc.Compile.int_array m "a").(2)

let () =
  Alcotest.run "mapping"
    [
      ( "layout arithmetic",
        [
          Alcotest.test_case "shifted" `Quick test_layout_shifted;
          Alcotest.test_case "folded" `Quick test_layout_folded;
          Alcotest.test_case "copied" `Quick test_layout_copied;
          Alcotest.test_case "of_program" `Quick test_of_program;
          Alcotest.test_case "conflicts" `Quick test_conflicting_mappings;
          Alcotest.test_case "bad fold factor" `Quick test_fold_factor_rejected;
          Alcotest.test_case "fold of scalar" `Quick test_fold_of_scalar_rejected;
          Alcotest.test_case "bad copy" `Quick test_copy_rejected;
          QCheck_alcotest.to_alcotest prop_layout_bijection;
        ] );
      ( "fold",
        [
          Alcotest.test_case "differential" `Quick test_fold_differential;
          Alcotest.test_case "same as unfolded" `Quick test_fold_same_results_as_unfolded;
        ] );
      ( "copy",
        [
          Alcotest.test_case "differential" `Quick test_copy_differential;
          Alcotest.test_case "less congestion" `Quick test_copy_reduces_congestion;
          Alcotest.test_case "writes update all copies" `Quick
            test_copy_write_updates_all_copies;
        ] );
    ]
