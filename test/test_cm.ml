(* Tests for the Connection Machine simulator substrate. *)

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------- Geometry ---------------- *)

let test_geometry_basic () =
  let g = Cm.Geometry.create [ 3; 4; 5 ] in
  check Alcotest.int "size" 60 (Cm.Geometry.size g);
  check Alcotest.int "rank" 3 (Cm.Geometry.rank g);
  check (Alcotest.list Alcotest.int) "dims" [ 3; 4; 5 ] (Cm.Geometry.dims g);
  check Alcotest.int "dim 1" 4 (Cm.Geometry.dim g 1);
  check (Alcotest.array Alcotest.int) "strides" [| 20; 5; 1 |]
    (Cm.Geometry.strides g)

let test_geometry_linearize () =
  let g = Cm.Geometry.create [ 3; 4 ] in
  check Alcotest.int "origin" 0 (Cm.Geometry.linearize g [| 0; 0 |]);
  check Alcotest.int "last" 11 (Cm.Geometry.linearize g [| 2; 3 |]);
  check Alcotest.int "row-major" 5 (Cm.Geometry.linearize g [| 1; 1 |])

let test_geometry_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Geometry.create: empty dimension list")
    (fun () -> ignore (Cm.Geometry.create []));
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Geometry.create: non-positive extent") (fun () ->
      ignore (Cm.Geometry.create [ 2; 0 ]));
  let g = Cm.Geometry.create [ 2; 2 ] in
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Geometry.linearize: rank mismatch") (fun () ->
      ignore (Cm.Geometry.linearize g [| 1 |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Geometry.linearize: coordinate out of range") (fun () ->
      ignore (Cm.Geometry.linearize g [| 0; 2 |]))

let test_geometry_prefix () =
  let outer = Cm.Geometry.create [ 3; 4 ] in
  let whole = Cm.Geometry.create [ 3; 4; 7 ] in
  check Alcotest.bool "prefix" true (Cm.Geometry.is_prefix_of outer whole);
  check Alcotest.bool "not prefix" false
    (Cm.Geometry.is_prefix_of (Cm.Geometry.create [ 4; 3 ]) whole);
  check Alcotest.bool "concat" true
    (Cm.Geometry.equal whole
       (Cm.Geometry.concat outer (Cm.Geometry.create [ 7 ])))

let geometry_roundtrip =
  qtest "geometry: coords/linearize round-trip"
    QCheck2.Gen.(
      let* dims = list_size (int_range 1 4) (int_range 1 6) in
      let g = Cm.Geometry.create dims in
      let* addr = int_range 0 (Cm.Geometry.size g - 1) in
      return (dims, addr))
    (fun (dims, addr) ->
      let g = Cm.Geometry.create dims in
      Cm.Geometry.linearize g (Cm.Geometry.coords g addr) = addr)

(* ---------------- Scan ---------------- *)

let test_scan_inclusive () =
  check (Alcotest.array Alcotest.int) "sum" [| 1; 3; 6; 10 |]
    (Cm.Scan.inclusive ( + ) [| 1; 2; 3; 4 |]);
  check (Alcotest.array Alcotest.int) "empty" [||] (Cm.Scan.inclusive ( + ) [||])

let test_scan_exclusive () =
  check (Alcotest.array Alcotest.int) "sum" [| 0; 1; 3; 6 |]
    (Cm.Scan.exclusive ( + ) 0 [| 1; 2; 3; 4 |]);
  check (Alcotest.array Alcotest.int) "max" [| min_int; 5; 5; 9 |]
    (Cm.Scan.exclusive max min_int [| 5; 2; 9; 1 |])

let test_masked_reduce () =
  let a = [| 3; 1; 4; 1; 5 |] in
  check Alcotest.int "all" 14
    (Cm.Scan.masked_reduce ( + ) 0 [| true; true; true; true; true |] a);
  check Alcotest.int "some" 7
    (Cm.Scan.masked_reduce ( + ) 0 [| true; false; true; false; false |] a);
  check Alcotest.int "none is identity" 0
    (Cm.Scan.masked_reduce ( + ) 0 (Array.make 5 false) a)

let test_reduce_trailing_axes () =
  (* 2x3 field: rows [1 2 3] [4 5 6]; reduce the trailing axis. *)
  let g = Cm.Geometry.create [ 2; 3 ] in
  let mask = Array.make 6 true in
  let sums =
    Cm.Scan.reduce_trailing_axes g ~outer_size:2 ( + ) 0 mask
      [| 1; 2; 3; 4; 5; 6 |]
  in
  check (Alcotest.array Alcotest.int) "row sums" [| 6; 15 |] sums;
  mask.(4) <- false;
  let sums =
    Cm.Scan.reduce_trailing_axes g ~outer_size:2 ( + ) 0 mask
      [| 1; 2; 3; 4; 5; 6 |]
  in
  check (Alcotest.array Alcotest.int) "masked row sums" [| 6; 10 |] sums

let test_scan_axis () =
  let g = Cm.Geometry.create [ 2; 3 ] in
  let a = [| 1; 2; 3; 4; 5; 6 |] in
  check (Alcotest.array Alcotest.int) "axis 1 (rows)" [| 1; 3; 6; 4; 9; 15 |]
    (Cm.Scan.scan_axis g 1 ( + ) a);
  check (Alcotest.array Alcotest.int) "axis 0 (cols)" [| 1; 2; 3; 5; 7; 9 |]
    (Cm.Scan.scan_axis g 0 ( + ) a)

let scan_matches_fold =
  qtest "scan: inclusive last element equals fold"
    QCheck2.Gen.(array_size (int_range 1 50) (int_range (-100) 100))
    (fun a ->
      let s = Cm.Scan.inclusive ( + ) a in
      s.(Array.length a - 1) = Array.fold_left ( + ) 0 a)

let scan_axis_independent_lanes =
  qtest "scan: axis scan of a 1-row geometry equals flat scan"
    QCheck2.Gen.(array_size (int_range 1 30) (int_range (-50) 50))
    (fun a ->
      let g = Cm.Geometry.create [ 1; Array.length a ] in
      Cm.Scan.scan_axis g 1 ( + ) a = Cm.Scan.inclusive ( + ) a)

(* ---------------- News ---------------- *)

let test_news_shift () =
  let g = Cm.Geometry.create [ 4 ] in
  let src = [| 10; 20; 30; 40 |] in
  let dst = [| 0; 0; 0; 0 |] in
  let n = Cm.News.shift g ~axis:0 ~delta:1 src dst in
  check Alcotest.int "updated" 3 n;
  (* element 3 has no +1 neighbour: keeps its old value *)
  check (Alcotest.array Alcotest.int) "shift +1" [| 20; 30; 40; 0 |] dst

let test_news_shift_negative () =
  let g = Cm.Geometry.create [ 4 ] in
  let src = [| 10; 20; 30; 40 |] in
  let dst = [| -1; -1; -1; -1 |] in
  ignore (Cm.News.shift g ~axis:0 ~delta:(-1) src dst);
  check (Alcotest.array Alcotest.int) "shift -1" [| -1; 10; 20; 30 |] dst

let test_news_2d_axis () =
  let g = Cm.Geometry.create [ 2; 3 ] in
  let src = [| 1; 2; 3; 4; 5; 6 |] in
  let dst = Array.make 6 0 in
  ignore (Cm.News.shift g ~axis:0 ~delta:1 src dst);
  (* row 0 receives row 1; row 1 keeps old *)
  check (Alcotest.array Alcotest.int) "axis 0" [| 4; 5; 6; 0; 0; 0 |] dst

let test_news_masked () =
  let g = Cm.Geometry.create [ 4 ] in
  let src = [| 10; 20; 30; 40 |] in
  let dst = [| 0; 0; 0; 0 |] in
  let mask = [| true; false; true; false |] in
  let n = Cm.News.shift_masked g ~axis:0 ~delta:1 ~mask src dst in
  check Alcotest.int "updated" 2 n;
  check (Alcotest.array Alcotest.int) "masked" [| 20; 0; 40; 0 |] dst

(* ---------------- Router ---------------- *)

let test_router_get () =
  let src = [| 10; 20; 30 |] in
  let dst = [| 0; 0; 0 |] in
  let addr = [| 2; 0; 1 |] in
  let stats =
    Cm.Router.get ~mask:[| true; true; true |] ~addr ~src ~dst ()
  in
  check (Alcotest.array Alcotest.int) "permuted" [| 30; 10; 20 |] dst;
  check Alcotest.int "messages" 3 stats.Cm.Router.messages;
  check Alcotest.int "fanin" 1 stats.Cm.Router.max_fanin

let test_router_get_fanin () =
  let src = [| 7; 8 |] in
  let dst = [| 0; 0; 0; 0 |] in
  let addr = [| 0; 0; 0; 1 |] in
  let stats = Cm.Router.get ~mask:(Array.make 4 true) ~addr ~src ~dst () in
  check Alcotest.int "fanin" 3 stats.Cm.Router.max_fanin;
  check (Alcotest.array Alcotest.int) "broadcast" [| 7; 7; 7; 8 |] dst

let test_router_send_check_ok () =
  let dst = [| 0; 0; 0 |] in
  let stats =
    Cm.Router.send
      ~mask:[| true; true; true |]
      ~addr:[| 1; 1; 0 |]
      ~src:[| 5; 5; 9 |]
      ~dst
      ~combine:(Cm.Router.Overwrite_check ( = ))
      ()
  in
  check (Alcotest.array Alcotest.int) "identical values ok" [| 9; 5; 0 |] dst;
  check Alcotest.int "fanin" 2 stats.Cm.Router.max_fanin

let test_router_send_conflict () =
  let dst = [| 0 |] in
  Alcotest.check_raises "conflict" (Cm.Router.Conflict 0) (fun () ->
      ignore
        (Cm.Router.send
           ~mask:[| true; true |]
           ~addr:[| 0; 0 |]
           ~src:[| 1; 2 |]
           ~dst
           ~combine:(Cm.Router.Overwrite_check ( = ))
           ()))

let test_router_send_combining () =
  let dst = [| 0; 0 |] in
  ignore
    (Cm.Router.send
       ~mask:(Array.make 4 true)
       ~addr:[| 0; 0; 1; 0 |]
       ~src:[| 1; 2; 5; 4 |]
       ~dst
       ~combine:(Cm.Router.Combine ( + ))
       ());
  (* combining send replaces dst with the combined arrivals *)
  check (Alcotest.array Alcotest.int) "sums" [| 7; 5 |] dst

let test_router_send_min () =
  let dst = [| 100 |] in
  ignore
    (Cm.Router.send
       ~mask:(Array.make 3 true)
       ~addr:[| 0; 0; 0 |]
       ~src:[| 9; 3; 7 |]
       ~dst
       ~combine:(Cm.Router.Combine min)
       ());
  check (Alcotest.array Alcotest.int) "min of arrivals" [| 3 |] dst

let test_router_mask () =
  let dst = [| 0; 0 |] in
  let stats =
    Cm.Router.send
      ~mask:[| false; true |]
      ~addr:[| 0; 1 |]
      ~src:[| 8; 9 |]
      ~dst
      ~combine:(Cm.Router.Combine ( + ))
      ()
  in
  check (Alcotest.array Alcotest.int) "inactive skipped" [| 0; 9 |] dst;
  check Alcotest.int "messages" 1 stats.Cm.Router.messages

let router_get_is_permutation =
  qtest "router: get with identity addresses copies src"
    QCheck2.Gen.(array_size (int_range 1 40) (int_range 0 1000))
    (fun src ->
      let n = Array.length src in
      let dst = Array.make n (-1) in
      let addr = Array.init n (fun i -> i) in
      ignore (Cm.Router.get ~mask:(Array.make n true) ~addr ~src ~dst ());
      dst = src)

(* a reused epoch-tagged scratch must behave exactly like a fresh one,
   across calls of different sizes *)
let router_scratch_reuse =
  qtest "router: reused scratch matches fresh scratch"
    QCheck2.Gen.(
      list_size (int_range 1 6)
        (array_size (int_range 1 30) (int_range 0 1000)))
    (fun srcs ->
      let scratch = Cm.Router.scratch () in
      List.for_all
        (fun src ->
          let n = Array.length src in
          let addr = Array.map (fun v -> v mod n) src in
          let mask = Array.map (fun v -> v mod 3 <> 0) src in
          let run ?scratch () =
            let dst = Array.make n 0 in
            let stats =
              Cm.Router.send ?scratch ~mask ~addr ~src ~dst
                ~combine:(Cm.Router.Combine ( + )) ()
            in
            let dst2 = Array.make n (-1) in
            let stats2 = Cm.Router.get ?scratch ~mask ~addr ~src ~dst:dst2 () in
            (dst, stats, dst2, stats2)
          in
          run ~scratch () = run ())
        srcs)

(* ---------------- Context ---------------- *)

let test_context_stack () =
  let c = Cm.Context.create 4 in
  check Alcotest.int "all active" 4 (Cm.Context.count_active c);
  Cm.Context.push c;
  Cm.Context.land_mask c [| true; false; true; false |];
  check Alcotest.int "two active" 2 (Cm.Context.count_active c);
  Cm.Context.push c;
  Cm.Context.land_mask c [| true; true; false; false |];
  check Alcotest.int "nested" 1 (Cm.Context.count_active c);
  check Alcotest.bool "vp0 active" true (Cm.Context.is_active c 0);
  check Alcotest.bool "vp2 masked" false (Cm.Context.is_active c 2);
  Cm.Context.pop c;
  check Alcotest.int "restored" 2 (Cm.Context.count_active c);
  Cm.Context.pop c;
  check Alcotest.int "base" 4 (Cm.Context.count_active c)

let test_context_pop_base () =
  let c = Cm.Context.create 2 in
  Alcotest.check_raises "base pop" (Failure "Context.pop: base context")
    (fun () -> Cm.Context.pop c)

let test_context_reset () =
  let c = Cm.Context.create 3 in
  Cm.Context.push c;
  Cm.Context.land_mask c [| false; false; false |];
  Cm.Context.reset c;
  check Alcotest.int "depth" 1 (Cm.Context.depth c);
  check Alcotest.int "active" 3 (Cm.Context.count_active c)

(* depth, count_active and all_active are cached (O(1)); cross-check the
   cache against a recount of the flags through every transition *)
let test_context_cached_counts () =
  let c = Cm.Context.create 5 in
  let recount () =
    Array.fold_left (fun n f -> if f then n + 1 else n) 0 (Cm.Context.active c)
  in
  let agree what =
    check Alcotest.int what (recount ()) (Cm.Context.count_active c);
    check Alcotest.bool (what ^ " all_active")
      (recount () = 5)
      (Cm.Context.all_active c)
  in
  agree "fresh";
  check Alcotest.int "depth 1" 1 (Cm.Context.depth c);
  Cm.Context.push c;
  Cm.Context.land_ints c [| 1; 0; 3; 0; -2 |];
  agree "after land_ints";
  check Alcotest.int "depth 2" 2 (Cm.Context.depth c);
  Cm.Context.push c;
  Cm.Context.land_floats c [| 0.5; 1.0; 0.0; 2.0; 0.0 |];
  agree "after land_floats";
  check Alcotest.int "depth 3" 3 (Cm.Context.depth c);
  Cm.Context.land_mask c [| true; true; true; false; true |];
  agree "after land_mask";
  Cm.Context.pop c;
  agree "after pop";
  check Alcotest.int "depth back to 2" 2 (Cm.Context.depth c);
  Cm.Context.pop c;
  agree "back to base";
  check Alcotest.bool "base all_active" true (Cm.Context.all_active c);
  Cm.Context.push c;
  Cm.Context.land_ints c [| 1; 1; 1; 1; 1 |];
  check Alcotest.bool "still all_active" true (Cm.Context.all_active c);
  Cm.Context.reset c;
  agree "after reset";
  check Alcotest.int "depth after reset" 1 (Cm.Context.depth c)

let test_context_land_size_mismatch () =
  let c = Cm.Context.create 3 in
  Alcotest.check_raises "land_mask"
    (Invalid_argument "Context.land_mask: size mismatch") (fun () ->
      Cm.Context.land_mask c [| true |]);
  Alcotest.check_raises "land_ints"
    (Invalid_argument "Context.land_ints: size mismatch") (fun () ->
      Cm.Context.land_ints c [| 1 |]);
  Alcotest.check_raises "land_floats"
    (Invalid_argument "Context.land_floats: size mismatch") (fun () ->
      Cm.Context.land_floats c [| 1.0 |])

(* ---------------- Cost ---------------- *)

let test_vp_ratio () =
  let p = Cm.Cost.cm2_16k in
  check Alcotest.int "small" 1 (Cm.Cost.vp_ratio p 100);
  check Alcotest.int "exact" 1 (Cm.Cost.vp_ratio p 16384);
  check Alcotest.int "one more" 2 (Cm.Cost.vp_ratio p 16385);
  check Alcotest.int "4x" 4 (Cm.Cost.vp_ratio p (16384 * 4))

let test_cost_accumulates () =
  let m = Cm.Cost.meter Cm.Cost.cm2_16k in
  check (Alcotest.float 0.0) "zero" 0.0 (Cm.Cost.elapsed_seconds m);
  Cm.Cost.charge_pe m ~size:100;
  let t1 = Cm.Cost.elapsed_seconds m in
  check Alcotest.bool "positive" true (t1 > 0.0);
  Cm.Cost.charge_router m ~size:100 ~messages:100 ~max_fanin:1;
  let t2 = Cm.Cost.elapsed_seconds m in
  check Alcotest.bool "monotone" true (t2 > t1);
  check Alcotest.int "pe counted" 1 m.Cm.Cost.pe_ops;
  check Alcotest.int "router counted" 1 m.Cm.Cost.router_ops;
  check Alcotest.int "messages counted" 100 m.Cm.Cost.router_messages

let test_cost_router_dearer_than_news () =
  let a = Cm.Cost.meter Cm.Cost.cm2_16k in
  let b = Cm.Cost.meter Cm.Cost.cm2_16k in
  Cm.Cost.charge_router a ~size:1000 ~messages:1000 ~max_fanin:1;
  Cm.Cost.charge_news b ~size:1000;
  check Alcotest.bool "router > news" true
    (Cm.Cost.elapsed_seconds a > Cm.Cost.elapsed_seconds b)

let test_cost_congestion () =
  let a = Cm.Cost.meter Cm.Cost.cm2_16k in
  let b = Cm.Cost.meter Cm.Cost.cm2_16k in
  Cm.Cost.charge_router a ~size:1000 ~messages:1000 ~max_fanin:1;
  Cm.Cost.charge_router b ~size:1000 ~messages:1000 ~max_fanin:64;
  check Alcotest.bool "congested dearer" true
    (Cm.Cost.elapsed_seconds b > Cm.Cost.elapsed_seconds a)

let test_cost_vp_ratio_scales () =
  let a = Cm.Cost.meter Cm.Cost.cm2_16k in
  let b = Cm.Cost.meter Cm.Cost.cm2_16k in
  Cm.Cost.charge_pe a ~size:16384;
  Cm.Cost.charge_pe b ~size:(16384 * 8);
  check Alcotest.bool "8x vps dearer" true
    (Cm.Cost.elapsed_seconds b > Cm.Cost.elapsed_seconds a)

(* ---------------- Machine ---------------- *)

open Cm.Paris

let build f =
  let b = Builder.create "test" in
  let r = f b in
  (Builder.finish b, r)

let run_prog prog =
  let m = Cm.Machine.create prog in
  Cm.Machine.run m;
  m

let test_machine_sum_of_coords () =
  (* sum over a 1-D set of its own coordinates: 0+1+...+9 = 45 *)
  let prog, (reg, _) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 10 ]) in
        let f = Builder.field b ~vpset:vp KInt in
        let r = Builder.reg b in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pcoord (f, 0));
        Builder.emit b (Preduce (Add, r, f));
        (r, f))
  in
  let m = run_prog prog in
  check Alcotest.int "sum" 45 (Cm.Machine.reg_int m reg)

let test_machine_masked_ops () =
  (* set odd elements to 0 and others to 1 (paper example, section 3.4) *)
  let prog, f =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 6 ]) in
        let coord = Builder.field b ~vpset:vp KInt in
        let pred = Builder.field b ~vpset:vp KInt in
        let a = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pcoord (coord, 0));
        Builder.emit b (Pbin (Mod, pred, Fld coord, Imm (SInt 2)));
        Builder.emit b Cpush;
        Builder.emit b (Cand pred);
        Builder.emit b (Pmov (a, Imm (SInt 0)));
        Builder.emit b Cpop;
        Builder.emit b (Punop (Lnot, pred, Fld pred));
        Builder.emit b Cpush;
        Builder.emit b (Cand pred);
        Builder.emit b (Pmov (a, Imm (SInt 1)));
        Builder.emit b Cpop;
        a)
  in
  let m = run_prog prog in
  check (Alcotest.array Alcotest.int) "odd zeroed" [| 1; 0; 1; 0; 1; 0 |]
    (Cm.Machine.field_ints m f)

let test_machine_get_send () =
  (* reverse an array with a router get *)
  let prog, (a, rev) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 5 ]) in
        let a = Builder.field b ~vpset:vp KInt in
        let addr = Builder.field b ~vpset:vp KInt in
        let rev = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pcoord (addr, 0));
        Builder.emit b (Pbin (Sub, addr, Imm (SInt 4), Fld addr));
        Builder.emit b (Pget (rev, a, addr));
        (a, rev))
  in
  let m = Cm.Machine.create prog in
  Cm.Machine.set_field_ints m a [| 1; 2; 3; 4; 5 |];
  Cm.Machine.run m;
  check (Alcotest.array Alcotest.int) "reversed" [| 5; 4; 3; 2; 1 |]
    (Cm.Machine.field_ints m rev)

let test_machine_send_conflict () =
  (* all elements write distinct values to address 0: must fail *)
  let prog, _ =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
        let src = Builder.field b ~vpset:vp KInt in
        let addr = Builder.field b ~vpset:vp KInt in
        let dst = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pcoord (src, 0));
        Builder.emit b (Pmov (addr, Imm (SInt 0)));
        Builder.emit b (Psend (dst, src, addr, Ccheck));
        ())
  in
  let m = Cm.Machine.create prog in
  (try
     Cm.Machine.run m;
     Alcotest.fail "expected a conflict"
   with Cm.Machine.Error msg ->
     check Alcotest.bool "mentions conflict" true
       (String.length msg > 0
       && String.sub msg 0 28 = "parallel assignment conflict"))

let test_machine_loop () =
  (* front-end loop: r := 2^10 by repeated doubling *)
  let prog, r =
    build (fun b ->
        let r = Builder.reg b in
        let i = Builder.reg b in
        let t = Builder.reg b in
        let top = Builder.label b in
        let done_ = Builder.label b in
        Builder.emit b (Fmov (r, Imm (SInt 1)));
        Builder.emit b (Fmov (i, Imm (SInt 0)));
        Builder.place b top;
        Builder.emit b (Fbin (Ge, t, Reg i, Imm (SInt 10)));
        Builder.emit b (Jnz (Reg t, done_));
        Builder.emit b (Fbin (Mul, r, Reg r, Imm (SInt 2)));
        Builder.emit b (Fbin (Add, i, Reg i, Imm (SInt 1)));
        Builder.emit b (Jmp top);
        Builder.place b done_;
        r)
  in
  let m = run_prog prog in
  check Alcotest.int "2^10" 1024 (Cm.Machine.reg_int m r)

let test_machine_fuel () =
  let prog, _ =
    build (fun b ->
        let top = Builder.label b in
        Builder.place b top;
        Builder.emit b (Jmp top);
        ())
  in
  let m = Cm.Machine.create ~fuel:1000 prog in
  (try
     Cm.Machine.run m;
     Alcotest.fail "expected fuel exhaustion"
   with Cm.Machine.Error msg ->
     check Alcotest.bool "mentions fuel" true
       (String.length msg >= 4 && String.sub msg 0 4 = "fuel"))

let test_machine_reduce_axis () =
  (* 3x4 products: row minima *)
  let prog, (src, dst) =
    build (fun b ->
        let outer = Builder.vpset b (Cm.Geometry.create [ 3 ]) in
        let whole = Builder.vpset b (Cm.Geometry.create [ 3; 4 ]) in
        let src = Builder.field b ~vpset:whole KInt in
        let dst = Builder.field b ~vpset:outer KInt in
        Builder.emit b (Cwith whole);
        Builder.emit b (Preduce_axis (Min, dst, src));
        (src, dst))
  in
  let m = Cm.Machine.create prog in
  Cm.Machine.set_field_ints m src [| 5; 2; 8; 4; 1; 9; 3; 7; 6; 6; 6; 0 |];
  Cm.Machine.run m;
  check (Alcotest.array Alcotest.int) "row minima" [| 2; 1; 0 |]
    (Cm.Machine.field_ints m dst)

let test_machine_reduce_axis_identity () =
  (* with a fully masked context, the reduction returns identities *)
  let prog, (zero_field, dst) =
    build (fun b ->
        let outer = Builder.vpset b (Cm.Geometry.create [ 2 ]) in
        let whole = Builder.vpset b (Cm.Geometry.create [ 2; 3 ]) in
        let src = Builder.field b ~vpset:whole KInt in
        let zero = Builder.field b ~vpset:whole KInt in
        let dst = Builder.field b ~vpset:outer KInt in
        Builder.emit b (Cwith whole);
        Builder.emit b (Pmov (zero, Imm (SInt 0)));
        Builder.emit b Cpush;
        Builder.emit b (Cand zero);
        Builder.emit b (Preduce_axis (Min, dst, src));
        Builder.emit b Cpop;
        (zero, dst))
  in
  let m = run_prog prog in
  check (Alcotest.array Alcotest.int) "identity INF"
    [| inf_int; inf_int |]
    (Cm.Machine.field_ints m dst)

let test_machine_any_reduce () =
  let prog, (pred, vals, r) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 5 ]) in
        let pred = Builder.field b ~vpset:vp KInt in
        let vals = Builder.field b ~vpset:vp KInt in
        let r = Builder.reg b in
        Builder.emit b (Cwith vp);
        Builder.emit b Cpush;
        Builder.emit b (Cand pred);
        Builder.emit b (Preduce (Any, r, vals));
        Builder.emit b Cpop;
        (pred, vals, r))
  in
  let m = Cm.Machine.create prog in
  Cm.Machine.set_field_ints m pred [| 0; 0; 1; 0; 1 |];
  Cm.Machine.set_field_ints m vals [| 9; 8; 7; 6; 5 |];
  Cm.Machine.run m;
  let v = Cm.Machine.reg_int m r in
  check Alcotest.bool "one of the enabled" true (v = 7 || v = 5)

let test_machine_any_reduce_empty () =
  let prog, (pred, vals, r) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 3 ]) in
        let pred = Builder.field b ~vpset:vp KInt in
        let vals = Builder.field b ~vpset:vp KInt in
        let r = Builder.reg b in
        Builder.emit b (Cwith vp);
        Builder.emit b Cpush;
        Builder.emit b (Cand pred);
        Builder.emit b (Preduce (Any, r, vals));
        Builder.emit b Cpop;
        (pred, vals, r))
  in
  let m = run_prog prog in
  check Alcotest.int "identity INF" inf_int (Cm.Machine.reg_int m r)

let test_machine_float_ops () =
  let prog, (f, r) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
        let c = Builder.field b ~vpset:vp KInt in
        let f = Builder.field b ~vpset:vp KFloat in
        let r = Builder.reg b in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pcoord (c, 0));
        Builder.emit b (Punop (ToFloat, f, Fld c));
        Builder.emit b (Pbin (Add, f, Fld f, Imm (SFloat 0.5)));
        Builder.emit b (Preduce (Add, r, f));
        (f, r))
  in
  let m = run_prog prog in
  check (Alcotest.float 1e-9) "0.5+1.5+2.5+3.5" 8.0 (Cm.Machine.reg_float m r);
  check (Alcotest.float 1e-9) "element" 2.5 (Cm.Machine.field_floats m f).(2)

let test_machine_news () =
  let prog, (a, sh) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 5 ]) in
        let a = Builder.field b ~vpset:vp KInt in
        let sh = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pmov (sh, Imm (SInt (-1))));
        Builder.emit b (Pnews (sh, a, 0, 1));
        (a, sh))
  in
  let m = Cm.Machine.create prog in
  Cm.Machine.set_field_ints m a [| 1; 2; 3; 4; 5 |];
  Cm.Machine.run m;
  check (Alcotest.array Alcotest.int) "border keeps old" [| 2; 3; 4; 5; -1 |]
    (Cm.Machine.field_ints m sh)

let test_machine_requires_with () =
  let prog, _ =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 2 ]) in
        let f = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Pmov (f, Imm (SInt 1)));
        ())
  in
  let m = Cm.Machine.create prog in
  (try
     Cm.Machine.run m;
     Alcotest.fail "expected missing-Cwith error"
   with Cm.Machine.Error _ -> ())

let test_machine_div_by_zero () =
  let prog, _ =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 2 ]) in
        let f = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pbin (Div, f, Imm (SInt 1), Fld f));
        ())
  in
  (try
     ignore (run_prog prog);
     Alcotest.fail "expected division by zero"
   with Cm.Machine.Error msg ->
     check Alcotest.string "msg" "division by zero" msg)

let test_machine_deterministic_rand () =
  let mk () =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 8 ]) in
        let f = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Prand (f, Imm (SInt 100)));
        f)
  in
  let p1, f1 = mk () and p2, f2 = mk () in
  let m1 = Cm.Machine.create ~seed:7 p1 and m2 = Cm.Machine.create ~seed:7 p2 in
  Cm.Machine.run m1;
  Cm.Machine.run m2;
  check (Alcotest.array Alcotest.int) "same seed same values"
    (Cm.Machine.field_ints m1 f1) (Cm.Machine.field_ints m2 f2);
  let m3 = Cm.Machine.create ~seed:8 p1 in
  Cm.Machine.run m3;
  check Alcotest.bool "different seed differs" true
    (Cm.Machine.field_ints m3 f1 <> Cm.Machine.field_ints m1 f1);
  Array.iter
    (fun v -> check Alcotest.bool "in range" true (v >= 0 && v < 100))
    (Cm.Machine.field_ints m1 f1)

let test_machine_fe_read_write () =
  let prog, (f, r) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
        let f = Builder.field b ~vpset:vp KInt in
        let r = Builder.reg b in
        Builder.emit b (Fwrite (f, Imm (SInt 2), Imm (SInt 42)));
        Builder.emit b (Fread (r, f, Imm (SInt 2)));
        (f, r))
  in
  let m = run_prog prog in
  check Alcotest.int "round trip" 42 (Cm.Machine.reg_int m r);
  check (Alcotest.array Alcotest.int) "only one written" [| 0; 0; 42; 0 |]
    (Cm.Machine.field_ints m f)

let test_machine_psel () =
  let prog, d =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
        let c = Builder.field b ~vpset:vp KInt in
        let d = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pcoord (c, 0));
        Builder.emit b (Pbin (Ge, c, Fld c, Imm (SInt 2)));
        Builder.emit b (Psel (d, Fld c, Imm (SInt 100), Imm (SInt 200)));
        d)
  in
  let m = run_prog prog in
  check (Alcotest.array Alcotest.int) "select" [| 200; 200; 100; 100 |]
    (Cm.Machine.field_ints m d)

let test_machine_scan_instr () =
  let prog, (src, dst) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 5 ]) in
        let src = Builder.field b ~vpset:vp KInt in
        let dst = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pscan (Add, dst, src, 0));
        (src, dst))
  in
  let m = Cm.Machine.create prog in
  Cm.Machine.set_field_ints m src [| 1; 2; 3; 4; 5 |];
  Cm.Machine.run m;
  check (Alcotest.array Alcotest.int) "prefix sums" [| 1; 3; 6; 10; 15 |]
    (Cm.Machine.field_ints m dst)

let test_machine_elapsed_monotone () =
  let prog, _ =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 100 ]) in
        let f = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        for _ = 1 to 10 do
          Builder.emit b (Pbin (Add, f, Fld f, Imm (SInt 1)))
        done;
        ())
  in
  let m = run_prog prog in
  check Alcotest.bool "time advanced" true (Cm.Machine.elapsed_seconds m > 0.0);
  check Alcotest.int "10 pe ops" 10 (Cm.Machine.meter m).Cm.Cost.pe_ops

let test_paris_identity () =
  check Alcotest.bool "add int" true (identity Add KInt = SInt 0);
  check Alcotest.bool "min int" true (identity Min KInt = SInt inf_int);
  check Alcotest.bool "max int" true (identity Max KInt = SInt (-inf_int));
  check Alcotest.bool "mul int" true (identity Mul KInt = SInt 1);
  check Alcotest.bool "land" true (identity Land KInt = SInt 1);
  check Alcotest.bool "lor" true (identity Lor KInt = SInt 0);
  check Alcotest.bool "min float" true (identity Min KFloat = SFloat infinity);
  Alcotest.check_raises "sub not reducible"
    (Invalid_argument "Paris.identity: operator is not reducible at this kind")
    (fun () -> ignore (identity Sub KInt))

let test_paris_pp () =
  let prog, _ =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 2 ]) in
        let f = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pmov (f, Imm (SInt 3)));
        ())
  in
  let s = Format.asprintf "%a" pp_program prog in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions vpset" true (contains s "vp0");
  check Alcotest.bool "mentions pmov" true (contains s "pmov")

let () =
  Alcotest.run "cm"
    [
      ( "geometry",
        [
          Alcotest.test_case "basic" `Quick test_geometry_basic;
          Alcotest.test_case "linearize" `Quick test_geometry_linearize;
          Alcotest.test_case "errors" `Quick test_geometry_errors;
          Alcotest.test_case "prefix/concat" `Quick test_geometry_prefix;
          geometry_roundtrip;
        ] );
      ( "scan",
        [
          Alcotest.test_case "inclusive" `Quick test_scan_inclusive;
          Alcotest.test_case "exclusive" `Quick test_scan_exclusive;
          Alcotest.test_case "masked reduce" `Quick test_masked_reduce;
          Alcotest.test_case "reduce trailing axes" `Quick test_reduce_trailing_axes;
          Alcotest.test_case "scan axis" `Quick test_scan_axis;
          scan_matches_fold;
          scan_axis_independent_lanes;
        ] );
      ( "news",
        [
          Alcotest.test_case "shift +1" `Quick test_news_shift;
          Alcotest.test_case "shift -1" `Quick test_news_shift_negative;
          Alcotest.test_case "2d axis" `Quick test_news_2d_axis;
          Alcotest.test_case "masked" `Quick test_news_masked;
        ] );
      ( "router",
        [
          Alcotest.test_case "get" `Quick test_router_get;
          Alcotest.test_case "get fanin" `Quick test_router_get_fanin;
          Alcotest.test_case "send check ok" `Quick test_router_send_check_ok;
          Alcotest.test_case "send conflict" `Quick test_router_send_conflict;
          Alcotest.test_case "send combining" `Quick test_router_send_combining;
          Alcotest.test_case "send min" `Quick test_router_send_min;
          Alcotest.test_case "mask" `Quick test_router_mask;
          router_get_is_permutation;
          router_scratch_reuse;
        ] );
      ( "context",
        [
          Alcotest.test_case "stack" `Quick test_context_stack;
          Alcotest.test_case "pop base" `Quick test_context_pop_base;
          Alcotest.test_case "reset" `Quick test_context_reset;
          Alcotest.test_case "cached counts" `Quick test_context_cached_counts;
          Alcotest.test_case "land size mismatch" `Quick
            test_context_land_size_mismatch;
        ] );
      ( "cost",
        [
          Alcotest.test_case "vp ratio" `Quick test_vp_ratio;
          Alcotest.test_case "accumulates" `Quick test_cost_accumulates;
          Alcotest.test_case "router vs news" `Quick test_cost_router_dearer_than_news;
          Alcotest.test_case "congestion" `Quick test_cost_congestion;
          Alcotest.test_case "vp ratio scales" `Quick test_cost_vp_ratio_scales;
        ] );
      ( "machine",
        [
          Alcotest.test_case "sum of coords" `Quick test_machine_sum_of_coords;
          Alcotest.test_case "masked ops" `Quick test_machine_masked_ops;
          Alcotest.test_case "get/send" `Quick test_machine_get_send;
          Alcotest.test_case "send conflict" `Quick test_machine_send_conflict;
          Alcotest.test_case "fe loop" `Quick test_machine_loop;
          Alcotest.test_case "fuel" `Quick test_machine_fuel;
          Alcotest.test_case "reduce axis" `Quick test_machine_reduce_axis;
          Alcotest.test_case "reduce axis identity" `Quick test_machine_reduce_axis_identity;
          Alcotest.test_case "any reduce" `Quick test_machine_any_reduce;
          Alcotest.test_case "any reduce empty" `Quick test_machine_any_reduce_empty;
          Alcotest.test_case "float ops" `Quick test_machine_float_ops;
          Alcotest.test_case "news" `Quick test_machine_news;
          Alcotest.test_case "requires with" `Quick test_machine_requires_with;
          Alcotest.test_case "div by zero" `Quick test_machine_div_by_zero;
          Alcotest.test_case "deterministic rand" `Quick test_machine_deterministic_rand;
          Alcotest.test_case "fe read/write" `Quick test_machine_fe_read_write;
          Alcotest.test_case "psel" `Quick test_machine_psel;
          Alcotest.test_case "scan instr" `Quick test_machine_scan_instr;
          Alcotest.test_case "elapsed monotone" `Quick test_machine_elapsed_monotone;
          Alcotest.test_case "identity table" `Quick test_paris_identity;
        ] );
    ]
