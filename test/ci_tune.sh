#!/usr/bin/env bash
# `make ci-tune` gate for the layout auto-tuner.  Over the whole
# built-in corpus:
#   1. `ucc tune --json` must succeed on every program (the command
#      itself verifies the emitted map section re-parses to the chosen
#      table before printing anything) and must never predict a
#      regression: chosen cost <= default cost.
#   2. `ucc tune --apply` must rewrite each program into a source that
#      still compiles, and a second --apply must be a no-op
#      (idempotence: the synthesized section round-trips through the
#      parser and the layout stage).
#   3. A tuned batch sweep (`tune` manifest flag) must be observably
#      bit-identical to the untuned sweep: same status and same printed
#      output per job, with every tuned row stamped "tuned":true and
#      every untuned row left untouched.
# Run from the repository root (the Makefile does).
set -euo pipefail
trap 'echo "ci_tune.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

UCC=${UCC:-_build/default/bin/ucc.exe}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/ucc_ci_tune.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

mapfile -t NAMES < <($UCC examples)
test "${#NAMES[@]}" -gt 0

# ---- 1 + 2: per-program tune, cost sanity, apply idempotence ----
for name in "${NAMES[@]}"; do
  src="$WORK/$name.uc"
  $UCC show "$name" >"$src"

  $UCC tune --json "$src" >"$WORK/$name.json"
  default_ns=$(sed -n 's/.*"default_ns":\([0-9.e+-]*\).*/\1/p' "$WORK/$name.json")
  chosen_ns=$(sed -n 's/.*"chosen_ns":\([0-9.e+-]*\).*/\1/p' "$WORK/$name.json")
  test -n "$default_ns" && test -n "$chosen_ns"
  awk -v c="$chosen_ns" -v d="$default_ns" \
    'BEGIN { exit !(c <= d + 1e-6) }' \
    || { echo "ci-tune: $name: chosen $chosen_ns > default $default_ns" >&2; exit 1; }

  $UCC tune --apply "$src" >/dev/null
  # the rewritten source must still compile and run
  $UCC run "$src" >/dev/null
  # and a second apply must change nothing
  $UCC tune --apply "$src" | grep -q 'already up to date' \
    || { echo "ci-tune: $name: --apply is not idempotent" >&2; exit 1; }
done

# ---- 3: tuned batch sweep, observably identical to untuned ----
for name in "${NAMES[@]}"; do
  echo "$name" >>"$WORK/m_plain"
  echo "$name tune" >>"$WORK/m_tuned"
done
$UCC batch "$WORK/m_plain" --cache-dir none --report "$WORK/plain.jsonl" 2>/dev/null
$UCC batch "$WORK/m_tuned" --cache-dir none --report "$WORK/tuned.jsonl" 2>/dev/null

# observable identity: job name, status and printed output; layouts may
# (and do) move the communication metrics, never the results
observable() {
  grep '"job":' "$1" \
    | sed -e 's/.*"job":"\([^"]*\)".*"status":"\([^"]*\)".*"output":\(\[[^]]*\]\).*/\1 \2 \3/'
}
diff <(observable "$WORK/plain.jsonl") <(observable "$WORK/tuned.jsonl")

# provenance: every tuned row stamped, no untuned row touched
n_jobs=$(grep -c '"job":' "$WORK/tuned.jsonl")
n_stamped=$(grep '"job":' "$WORK/tuned.jsonl" | grep -c '"tuned":true')
test "$n_jobs" -eq "$n_stamped"
! grep '"job":' "$WORK/plain.jsonl" | grep -q '"tuned"'

echo "ci-tune: ${#NAMES[@]} programs tuned; sections round-trip, --apply idempotent, tuned sweep observably identical ($n_stamped/$n_jobs rows stamped)"
