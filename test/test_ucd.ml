(* The Ucd batch service: digest stability, cache determinism, pool
   stress with fault isolation. *)

let corpus name = List.assoc name Uc_programs.Programs.all_named

let mk ?options ?seed ?fuel ?deadline ?faults ?retries name =
  Ucd.Job.make ?options ?seed ?fuel ?deadline ?faults ?retries ~name
    ~source:(corpus name) ()

let fault_spec s =
  match Cm.Fault.parse s with
  | Ok spec -> spec
  | Error msg -> Alcotest.fail ("bad fault spec in test: " ^ msg)

(* a retry policy that never sleeps, so the suite stays fast *)
let fast_policy = { Ucd.Runner.default_policy with backoff_base = 0. }

(* ---- job digests ---- *)

let test_digest_identity () =
  let j = mk "quickstart" in
  Alcotest.(check string) "digest is stable" (Ucd.Job.digest j) (Ucd.Job.digest j);
  let j2 = mk ~seed:999 "quickstart" in
  Alcotest.(check bool) "seed changes digest" false
    (Ucd.Job.digest j = Ucd.Job.digest j2);
  let j3 = mk ~fuel:1000 "quickstart" in
  Alcotest.(check bool) "fuel changes digest" false
    (Ucd.Job.digest j = Ucd.Job.digest j3);
  let j4 =
    mk ~options:{ Uc.Codegen.default_options with cse = false } "quickstart"
  in
  Alcotest.(check bool) "options change digest" false
    (Ucd.Job.digest j = Ucd.Job.digest j4);
  (* the display name is not content *)
  let j5 = { j with Ucd.Job.name = "renamed" } in
  Alcotest.(check string) "name does not change digest" (Ucd.Job.digest j)
    (Ucd.Job.digest j5);
  (* deadline is execution policy, not content *)
  let j6 = { j with Ucd.Job.deadline = Some 60. } in
  Alcotest.(check string) "deadline does not change digest" (Ucd.Job.digest j)
    (Ucd.Job.digest j6);
  (* the ir-opt pass subset must be visible to BOTH the job digest and
     options_summary: the latter keys the lowered-IR memo, so an
     on/off-only summary would hand a dce-only job the fully optimized
     program of an earlier full-pipeline job *)
  let with_iropt cfg =
    mk ~options:{ Uc.Codegen.default_options with ir_opt = cfg } "quickstart"
  in
  let subset =
    match Cm.Iropt.config_of_string "dce,peephole" with
    | Ok c -> c
    | Error msg -> Alcotest.fail ("bad ir-opt spec in test: " ^ msg)
  in
  let j7 = with_iropt subset and j8 = with_iropt Cm.Iropt.off in
  Alcotest.(check bool) "ir-opt subset changes digest" false
    (Ucd.Job.digest j = Ucd.Job.digest j7);
  Alcotest.(check bool) "ir-opt off changes digest" false
    (Ucd.Job.digest j = Ucd.Job.digest j8);
  let summaries =
    List.map (fun j -> Ucd.Job.options_summary j.Ucd.Job.options) [ j; j7; j8 ]
  in
  Alcotest.(check int) "options_summary distinguishes ir-opt configs" 3
    (List.length (List.sort_uniq compare summaries))

(* QCheck: digest_of_fields is invariant under reordering of the field
   list (the option record can be assembled in any order). *)
let qcheck_digest_permutation =
  let open QCheck in
  let field = pair (string_of_size Gen.(1 -- 8)) small_printable_string in
  let gen = list_of_size Gen.(1 -- 10) field in
  Test.make ~count:200 ~name:"digest stable under field reordering" gen
    (fun fields ->
      let shuffled =
        (* deterministic permutation: reverse + sort by value *)
        List.sort (fun (_, a) (_, b) -> compare a b) (List.rev fields)
      in
      Ucd.Job.digest_of_fields fields = Ucd.Job.digest_of_fields shuffled)

(* ---- cache determinism ---- *)

let run_one cache job = Ucd.Runner.run_job ~cache job

let test_memory_cache_determinism () =
  let cache = Ucd.Cache.create () in
  let job = mk "quickstart" in
  let r1 = run_one cache job in
  let r2 = run_one cache job in
  Alcotest.(check bool) "first is a miss" false r1.Ucd.Report.from_cache;
  Alcotest.(check bool) "second is a hit" true r2.Ucd.Report.from_cache;
  Alcotest.(check string) "byte-identical canonical report"
    (Ucd.Report.canonical_json r1)
    (Ucd.Report.canonical_json r2);
  Alcotest.(check bool) "quickstart printed something" true
    (r1.Ucd.Report.output <> [])

let test_disk_cache_determinism () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucd_test_%d" (Unix.getpid ()))
  in
  let job = mk "reductions" in
  (* two independent cache instances: the second can only hit via disk *)
  let r1 = run_one (Ucd.Cache.create ~dir ()) job in
  let fresh = Ucd.Cache.create ~dir () in
  let r2 = run_one fresh job in
  Alcotest.(check bool) "cold run is a miss" false r1.Ucd.Report.from_cache;
  Alcotest.(check bool) "second process-equivalent run hits disk" true
    r2.Ucd.Report.from_cache;
  Alcotest.(check string) "byte-identical canonical report across processes"
    (Ucd.Report.canonical_json r1)
    (Ucd.Report.canonical_json r2);
  let stats = Ucd.Cache.stats fresh in
  Alcotest.(check int) "fresh cache recorded the hit" 1 stats.Ucd.Cache.run_hits

let test_timeout_not_cached () =
  let cache = Ucd.Cache.create () in
  let job = mk ~deadline:0. "matmul" in
  let r1 = run_one cache job in
  (match r1.Ucd.Report.status with
  | Ucd.Report.Timeout _ -> ()
  | _ -> Alcotest.fail "expected a timeout with a 0-second deadline");
  let r2 = run_one cache job in
  Alcotest.(check bool) "timed-out result was not served from cache" false
    r2.Ucd.Report.from_cache

(* ---- pool ---- *)

let test_pool_map_order () =
  let results =
    Ucd.Pool.map ~domains:3 ~queue_bound:2 (fun x -> x * x)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  Alcotest.(check (list int)) "order preserved, all computed"
    [ 1; 4; 9; 16; 25; 36; 49; 64; 81; 100 ]
    (List.map (function Ok n -> n | Error _ -> -1) results)

let test_pool_isolates_exceptions () =
  let boom = Failure "boom" in
  let results =
    Ucd.Pool.map ~domains:2
      (fun i -> if i = 3 then raise boom else i + 1)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "all slots reported" 4 (List.length results);
  (match List.nth results 2 with
  | Error (Failure "boom") -> ()
  | _ -> Alcotest.fail "job 3 should have failed with its own exception");
  Alcotest.(check (list int)) "other jobs unaffected" [ 2; 3; 5 ]
    (List.filter_map (function Ok n -> Some n | Error _ -> None) results)

let test_pool_stress () =
  (* more jobs than domains, including one that exhausts its fuel and
     one whose source does not parse: both must come back as Failed
     results without disturbing their neighbours *)
  let good =
    [ "quickstart"; "reductions"; "abs_sum"; "matmul"; "prefix_sums";
      "ranksort"; "stencil"; "wavefront"; "odd_even_sort"; "heat" ]
  in
  let jobs =
    List.map mk good
    @ [
        mk ~fuel:5 "shortest_path_n2";
        Ucd.Job.make ~name:"unparsable" ~source:"int x" ();
      ]
  in
  let cache = Ucd.Cache.create () in
  let results =
    Ucd.Runner.run_jobs ~domains:3 ~queue_bound:2 ~cache jobs
  in
  Alcotest.(check int) "one result per job" (List.length jobs)
    (List.length results);
  List.iteri
    (fun i (r : Ucd.Report.result) ->
      Alcotest.(check string)
        (Printf.sprintf "result %d in submission order" i)
        (List.nth jobs i).Ucd.Job.name r.Ucd.Report.job_name)
    results;
  List.iteri
    (fun i (r : Ucd.Report.result) ->
      if i < List.length good then
        match r.Ucd.Report.status with
        | Ucd.Report.Done -> ()
        | Ucd.Report.Failed m ->
            Alcotest.fail (Printf.sprintf "%s failed: %s" r.Ucd.Report.job_name m)
        | Ucd.Report.Timeout _ ->
            Alcotest.fail (r.Ucd.Report.job_name ^ " timed out")
        | Ucd.Report.Faulted m ->
            Alcotest.fail
              (Printf.sprintf "%s faulted: %s" r.Ucd.Report.job_name m))
    results;
  (match (List.nth results (List.length good)).Ucd.Report.status with
  | Ucd.Report.Failed msg ->
      Alcotest.(check bool)
        ("fuel failure mentions fuel: " ^ msg)
        true
        (Astring.String.is_infix ~affix:"fuel" msg)
  | _ -> Alcotest.fail "fuel-starved job should fail");
  (match (List.nth results (List.length good + 1)).Ucd.Report.status with
  | Ucd.Report.Failed _ -> ()
  | _ -> Alcotest.fail "unparsable job should fail");
  (* and the batch as a whole still summarizes *)
  let s = Ucd.Report.summarize ~elapsed:1. results in
  Alcotest.(check int) "ok count" (List.length good) s.Ucd.Report.ok;
  Alcotest.(check int) "failed count" 2 s.Ucd.Report.failed

(* ---- robustness: retries, quarantine, resume, deadlines ---- *)

let test_retry_recovers () =
  (* a transient chip fault armed only for attempt 0: the retry runs a
     clean plan and must finish *)
  let cache = Ucd.Cache.create () in
  let job = mk ~faults:(fault_spec "chip@5#0") ~retries:1 "reductions" in
  let r =
    Ucd.Runner.run_job ~policy:fast_policy ~cache job
  in
  (match r.Ucd.Report.status with
  | Ucd.Report.Done -> ()
  | _ -> Alcotest.fail "retry should recover from an attempt-0 fault");
  Alcotest.(check int) "two attempts" 2 r.Ucd.Report.attempts;
  Alcotest.(check int) "one fault in the trace" 1
    (List.length r.Ucd.Report.fault_trace);
  Alcotest.(check bool) "trace names the chip" true
    (Astring.String.is_infix ~affix:"chip"
       (List.hd r.Ucd.Report.fault_trace));
  (* fault-bearing jobs are policy-dependent, so they are never cached *)
  let r2 = Ucd.Runner.run_job ~policy:fast_policy ~cache job in
  Alcotest.(check bool) "faulty job recomputed, not cached" false
    r2.Ucd.Report.from_cache

let test_quarantine_after_retries () =
  (* a hard transient fault (no attempt qualifier) re-fires on every
     attempt: the job must be quarantined, not loop or kill the pool *)
  let cache = Ucd.Cache.create () in
  let policy = { fast_policy with Ucd.Runner.retries = 2 } in
  let jobs =
    [ mk ~faults:(fault_spec "chip@5") "reductions"; mk "quickstart" ]
  in
  let results = Ucd.Runner.run_jobs ~domains:2 ~policy ~cache jobs in
  let faulty = List.nth results 0 and clean = List.nth results 1 in
  (match faulty.Ucd.Report.status with
  | Ucd.Report.Faulted msg ->
      Alcotest.(check bool) "quarantine message mentions the fault" true
        (Astring.String.is_infix ~affix:"transient chip fault" msg)
  | _ -> Alcotest.fail "hard fault should quarantine the job");
  Alcotest.(check int) "all three attempts were made" 3
    faulty.Ucd.Report.attempts;
  Alcotest.(check int) "every attempt left a trace entry" 3
    (List.length faulty.Ucd.Report.fault_trace);
  (match clean.Ucd.Report.status with
  | Ucd.Report.Done -> ()
  | _ -> Alcotest.fail "neighbour job must survive the quarantined one");
  let s = Ucd.Report.summarize ~elapsed:1. results in
  Alcotest.(check int) "summary counts the quarantine" 1 s.Ucd.Report.faulted

let test_resume_is_deterministic () =
  (* fault an attempt-0 run in its Nth slice; the retry resumes from the
     last checkpoint and must produce the bit-identical result of a
     fault-free run *)
  let name = "reductions" in
  let t = Uc.Compile.run_source ~seed:12345 (corpus name) in
  let icount = Cm.Machine.icount t.Uc.Compile.machine in
  Alcotest.(check bool) "program is long enough to slice" true (icount > 20);
  let slice = max 1 (icount / 5) in
  let spec =
    fault_spec (Printf.sprintf "chip@%d#0" (max 1 (icount / 2)))
  in
  let run ~resume =
    let policy =
      { fast_policy with Ucd.Runner.retries = 1; fuel_slice = slice; resume }
    in
    Ucd.Runner.run_job ~policy
      ~cache:(Ucd.Cache.create ())
      (mk ~faults:spec ~retries:1 name)
  in
  let clean =
    Ucd.Runner.run_job ~cache:(Ucd.Cache.create ()) (mk name)
  in
  List.iter
    (fun (label, r) ->
      (match r.Ucd.Report.status with
      | Ucd.Report.Done -> ()
      | _ -> Alcotest.fail (label ^ ": retry should finish"));
      Alcotest.(check int) (label ^ ": two attempts") 2 r.Ucd.Report.attempts;
      Alcotest.(check (float 0.)) (label ^ ": simulated time matches clean run")
        clean.Ucd.Report.simulated_seconds r.Ucd.Report.simulated_seconds;
      Alcotest.(check (list string)) (label ^ ": output matches clean run")
        clean.Ucd.Report.output r.Ucd.Report.output)
    [ ("resume", run ~resume:true); ("replay", run ~resume:false) ]

let test_deadline_enforced_in_flight () =
  (* regression: the deadline used to be checked only after the run
     finished, so a long job held its worker for the full run.  Now a
     0-second deadline must abort before any slice completes. *)
  let cache = Ucd.Cache.create () in
  let r = Ucd.Runner.run_job ~cache (mk ~deadline:0. "matmul") in
  (match r.Ucd.Report.status with
  | Ucd.Report.Timeout limit -> Alcotest.(check (float 0.)) "limit" 0. limit
  | _ -> Alcotest.fail "0-second deadline must time out");
  let full = Ucd.Runner.run_job ~cache:(Ucd.Cache.create ()) (mk "matmul") in
  Alcotest.(check bool) "aborted before finishing (partial simulated time)" true
    (r.Ucd.Report.simulated_seconds < full.Ucd.Report.simulated_seconds);
  Alcotest.(check (list string)) "no output from the aborted run" []
    r.Ucd.Report.output

(* ---- robustness: disk-cache corruption ---- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucd_corrupt_%d_%f" (Unix.getpid ()) (Unix.gettimeofday ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with _ -> ()
      end)
    (fun () -> f dir)

let test_corrupt_artifact_recovery () =
  with_temp_dir (fun dir ->
      let job = mk "quickstart" in
      let r1 = run_one (Ucd.Cache.create ~dir ()) job in
      (match r1.Ucd.Report.status with
      | Ucd.Report.Done -> ()
      | _ -> Alcotest.fail "seed run should succeed");
      let artifact =
        Filename.concat dir (Ucd.Job.digest job ^ ".ucd")
      in
      Alcotest.(check bool) "artifact persisted" true (Sys.file_exists artifact);
      (* truncate it mid-payload, as a crash during write-out would *)
      let n = (Unix.stat artifact).Unix.st_size in
      let fd = Unix.openfile artifact [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (n / 2);
      Unix.close fd;
      (* a fresh sweep must recover: quarantine, recompute, re-persist *)
      let cache = Ucd.Cache.create ~dir () in
      let r2 = run_one cache job in
      (match r2.Ucd.Report.status with
      | Ucd.Report.Done -> ()
      | _ -> Alcotest.fail "sweep over a corrupt cache should recompute");
      Alcotest.(check bool) "corrupt artifact is not served" false
        r2.Ucd.Report.from_cache;
      Alcotest.(check string) "recomputed result is canonical-identical"
        (Ucd.Report.canonical_json r1)
        (Ucd.Report.canonical_json r2);
      let stats = Ucd.Cache.stats cache in
      Alcotest.(check int) "corruption counted" 1 stats.Ucd.Cache.corruptions;
      Alcotest.(check bool) "evidence quarantined to .corrupt" true
        (Sys.file_exists
           (Filename.concat dir (Ucd.Job.digest job ^ ".corrupt")));
      Alcotest.(check bool) "slot rewritten with a good artifact" true
        (Sys.file_exists artifact);
      (* and the rewritten artifact round-trips for a third instance *)
      let r3 = run_one (Ucd.Cache.create ~dir ()) job in
      Alcotest.(check bool) "rewritten artifact hits" true
        r3.Ucd.Report.from_cache)

let test_write_failure_degrades () =
  (* point the cache at a "directory" that is actually a file: every
     artifact write fails, the run must still succeed and be counted *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucd_notadir_%d" (Unix.getpid ()))
  in
  let oc = open_out path in
  output_string oc "not a directory";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      let cache = Ucd.Cache.create ~dir:path () in
      let r = run_one cache (mk "quickstart") in
      (match r.Ucd.Report.status with
      | Ucd.Report.Done -> ()
      | _ -> Alcotest.fail "run must succeed even when persistence fails");
      let stats = Ucd.Cache.stats cache in
      Alcotest.(check bool) "write failure counted" true
        (stats.Ucd.Cache.write_failures >= 1);
      (* the memory layer still serves it *)
      let r2 = run_one cache (mk "quickstart") in
      Alcotest.(check bool) "memory cache still works" true
        r2.Ucd.Report.from_cache)

(* ---- report JSON ---- *)

let test_json_shapes () =
  let cache = Ucd.Cache.create () in
  let r = run_one cache (mk "quickstart") in
  let line = Ucd.Report.json_line r in
  Alcotest.(check bool) "json line has cache provenance" true
    (Astring.String.is_infix ~affix:"\"cache\":\"miss\"" line);
  Alcotest.(check bool) "canonical json omits wall time" false
    (Astring.String.is_infix ~affix:"wall_seconds"
       (Ucd.Report.canonical_json r));
  let s = Ucd.Report.summarize ~elapsed:0.5 [ r ] in
  Alcotest.(check bool) "summary json marks itself" true
    (Astring.String.is_infix ~affix:"\"summary\":true"
       (Ucd.Report.json_of_summary s))

let () =
  Alcotest.run "ucd"
    [
      ( "job",
        [
          Alcotest.test_case "digest identity" `Quick test_digest_identity;
          QCheck_alcotest.to_alcotest qcheck_digest_permutation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memory determinism" `Quick
            test_memory_cache_determinism;
          Alcotest.test_case "disk determinism" `Quick
            test_disk_cache_determinism;
          Alcotest.test_case "timeouts are not cached" `Quick
            test_timeout_not_cached;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "exception isolation" `Quick
            test_pool_isolates_exceptions;
          Alcotest.test_case "stress with faults" `Quick test_pool_stress;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
          Alcotest.test_case "quarantine after retries" `Quick
            test_quarantine_after_retries;
          Alcotest.test_case "resume is deterministic" `Quick
            test_resume_is_deterministic;
          Alcotest.test_case "deadline enforced in flight" `Quick
            test_deadline_enforced_in_flight;
          Alcotest.test_case "corrupt artifact recovery" `Quick
            test_corrupt_artifact_recovery;
          Alcotest.test_case "write failure degrades gracefully" `Quick
            test_write_failure_degrades;
        ] );
      ( "report",
        [ Alcotest.test_case "json shapes" `Quick test_json_shapes ] );
    ]
