(* The Ucd batch service: digest stability, cache determinism, pool
   stress with fault isolation. *)

let corpus name = List.assoc name Uc_programs.Programs.all_named

let mk ?options ?seed ?fuel ?deadline name =
  Ucd.Job.make ?options ?seed ?fuel ?deadline ~name ~source:(corpus name) ()

(* ---- job digests ---- *)

let test_digest_identity () =
  let j = mk "quickstart" in
  Alcotest.(check string) "digest is stable" (Ucd.Job.digest j) (Ucd.Job.digest j);
  let j2 = mk ~seed:999 "quickstart" in
  Alcotest.(check bool) "seed changes digest" false
    (Ucd.Job.digest j = Ucd.Job.digest j2);
  let j3 = mk ~fuel:1000 "quickstart" in
  Alcotest.(check bool) "fuel changes digest" false
    (Ucd.Job.digest j = Ucd.Job.digest j3);
  let j4 =
    mk ~options:{ Uc.Codegen.default_options with cse = false } "quickstart"
  in
  Alcotest.(check bool) "options change digest" false
    (Ucd.Job.digest j = Ucd.Job.digest j4);
  (* the display name is not content *)
  let j5 = { j with Ucd.Job.name = "renamed" } in
  Alcotest.(check string) "name does not change digest" (Ucd.Job.digest j)
    (Ucd.Job.digest j5);
  (* deadline is execution policy, not content *)
  let j6 = { j with Ucd.Job.deadline = Some 60. } in
  Alcotest.(check string) "deadline does not change digest" (Ucd.Job.digest j)
    (Ucd.Job.digest j6)

(* QCheck: digest_of_fields is invariant under reordering of the field
   list (the option record can be assembled in any order). *)
let qcheck_digest_permutation =
  let open QCheck in
  let field = pair (string_of_size Gen.(1 -- 8)) small_printable_string in
  let gen = list_of_size Gen.(1 -- 10) field in
  Test.make ~count:200 ~name:"digest stable under field reordering" gen
    (fun fields ->
      let shuffled =
        (* deterministic permutation: reverse + sort by value *)
        List.sort (fun (_, a) (_, b) -> compare a b) (List.rev fields)
      in
      Ucd.Job.digest_of_fields fields = Ucd.Job.digest_of_fields shuffled)

(* ---- cache determinism ---- *)

let run_one cache job = Ucd.Runner.run_job ~cache job

let test_memory_cache_determinism () =
  let cache = Ucd.Cache.create () in
  let job = mk "quickstart" in
  let r1 = run_one cache job in
  let r2 = run_one cache job in
  Alcotest.(check bool) "first is a miss" false r1.Ucd.Report.from_cache;
  Alcotest.(check bool) "second is a hit" true r2.Ucd.Report.from_cache;
  Alcotest.(check string) "byte-identical canonical report"
    (Ucd.Report.canonical_json r1)
    (Ucd.Report.canonical_json r2);
  Alcotest.(check bool) "quickstart printed something" true
    (r1.Ucd.Report.output <> [])

let test_disk_cache_determinism () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucd_test_%d" (Unix.getpid ()))
  in
  let job = mk "reductions" in
  (* two independent cache instances: the second can only hit via disk *)
  let r1 = run_one (Ucd.Cache.create ~dir ()) job in
  let fresh = Ucd.Cache.create ~dir () in
  let r2 = run_one fresh job in
  Alcotest.(check bool) "cold run is a miss" false r1.Ucd.Report.from_cache;
  Alcotest.(check bool) "second process-equivalent run hits disk" true
    r2.Ucd.Report.from_cache;
  Alcotest.(check string) "byte-identical canonical report across processes"
    (Ucd.Report.canonical_json r1)
    (Ucd.Report.canonical_json r2);
  let stats = Ucd.Cache.stats fresh in
  Alcotest.(check int) "fresh cache recorded the hit" 1 stats.Ucd.Cache.run_hits

let test_timeout_not_cached () =
  let cache = Ucd.Cache.create () in
  let job = mk ~deadline:0. "matmul" in
  let r1 = run_one cache job in
  (match r1.Ucd.Report.status with
  | Ucd.Report.Timeout _ -> ()
  | _ -> Alcotest.fail "expected a timeout with a 0-second deadline");
  let r2 = run_one cache job in
  Alcotest.(check bool) "timed-out result was not served from cache" false
    r2.Ucd.Report.from_cache

(* ---- pool ---- *)

let test_pool_map_order () =
  let results =
    Ucd.Pool.map ~domains:3 ~queue_bound:2 (fun x -> x * x)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  Alcotest.(check (list int)) "order preserved, all computed"
    [ 1; 4; 9; 16; 25; 36; 49; 64; 81; 100 ]
    (List.map (function Ok n -> n | Error _ -> -1) results)

let test_pool_isolates_exceptions () =
  let boom = Failure "boom" in
  let results =
    Ucd.Pool.map ~domains:2
      (fun i -> if i = 3 then raise boom else i + 1)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "all slots reported" 4 (List.length results);
  (match List.nth results 2 with
  | Error (Failure "boom") -> ()
  | _ -> Alcotest.fail "job 3 should have failed with its own exception");
  Alcotest.(check (list int)) "other jobs unaffected" [ 2; 3; 5 ]
    (List.filter_map (function Ok n -> Some n | Error _ -> None) results)

let test_pool_stress () =
  (* more jobs than domains, including one that exhausts its fuel and
     one whose source does not parse: both must come back as Failed
     results without disturbing their neighbours *)
  let good =
    [ "quickstart"; "reductions"; "abs_sum"; "matmul"; "prefix_sums";
      "ranksort"; "stencil"; "wavefront"; "odd_even_sort"; "heat" ]
  in
  let jobs =
    List.map mk good
    @ [
        mk ~fuel:5 "shortest_path_n2";
        Ucd.Job.make ~name:"unparsable" ~source:"int x" ();
      ]
  in
  let cache = Ucd.Cache.create () in
  let results =
    Ucd.Runner.run_jobs ~domains:3 ~queue_bound:2 ~cache jobs
  in
  Alcotest.(check int) "one result per job" (List.length jobs)
    (List.length results);
  List.iteri
    (fun i (r : Ucd.Report.result) ->
      Alcotest.(check string)
        (Printf.sprintf "result %d in submission order" i)
        (List.nth jobs i).Ucd.Job.name r.Ucd.Report.job_name)
    results;
  List.iteri
    (fun i (r : Ucd.Report.result) ->
      if i < List.length good then
        match r.Ucd.Report.status with
        | Ucd.Report.Done -> ()
        | Ucd.Report.Failed m ->
            Alcotest.fail (Printf.sprintf "%s failed: %s" r.Ucd.Report.job_name m)
        | Ucd.Report.Timeout _ ->
            Alcotest.fail (r.Ucd.Report.job_name ^ " timed out"))
    results;
  (match (List.nth results (List.length good)).Ucd.Report.status with
  | Ucd.Report.Failed msg ->
      Alcotest.(check bool)
        ("fuel failure mentions fuel: " ^ msg)
        true
        (Astring.String.is_infix ~affix:"fuel" msg)
  | _ -> Alcotest.fail "fuel-starved job should fail");
  (match (List.nth results (List.length good + 1)).Ucd.Report.status with
  | Ucd.Report.Failed _ -> ()
  | _ -> Alcotest.fail "unparsable job should fail");
  (* and the batch as a whole still summarizes *)
  let s = Ucd.Report.summarize ~elapsed:1. results in
  Alcotest.(check int) "ok count" (List.length good) s.Ucd.Report.ok;
  Alcotest.(check int) "failed count" 2 s.Ucd.Report.failed

(* ---- report JSON ---- *)

let test_json_shapes () =
  let cache = Ucd.Cache.create () in
  let r = run_one cache (mk "quickstart") in
  let line = Ucd.Report.json_line r in
  Alcotest.(check bool) "json line has cache provenance" true
    (Astring.String.is_infix ~affix:"\"cache\":\"miss\"" line);
  Alcotest.(check bool) "canonical json omits wall time" false
    (Astring.String.is_infix ~affix:"wall_seconds"
       (Ucd.Report.canonical_json r));
  let s = Ucd.Report.summarize ~elapsed:0.5 [ r ] in
  Alcotest.(check bool) "summary json marks itself" true
    (Astring.String.is_infix ~affix:"\"summary\":true"
       (Ucd.Report.json_of_summary s))

let () =
  Alcotest.run "ucd"
    [
      ( "job",
        [
          Alcotest.test_case "digest identity" `Quick test_digest_identity;
          QCheck_alcotest.to_alcotest qcheck_digest_permutation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memory determinism" `Quick
            test_memory_cache_determinism;
          Alcotest.test_case "disk determinism" `Quick
            test_disk_cache_determinism;
          Alcotest.test_case "timeouts are not cached" `Quick
            test_timeout_not_cached;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "exception isolation" `Quick
            test_pool_isolates_exceptions;
          Alcotest.test_case "stress with faults" `Quick test_pool_stress;
        ] );
      ( "report",
        [ Alcotest.test_case "json shapes" `Quick test_json_shapes ] );
    ]
