(* The serve subsystem: wire protocol codec (round trips, typed errors,
   oversized-frame rejection), the Jsonu byte-transparency property the
   protocol depends on, pool admission, tenant quotas, and loopback
   servers exercised over real sockets — including the acceptance
   criterion that a corpus submitted through a socket yields reports
   canonically identical to the Runner-based batch path, cold and
   warm. *)

let check = Alcotest.check

let proto_err = function
  | Ok _ -> Alcotest.fail "frame should have been rejected"
  | Error (code, _) -> Ucd.Proto.code_string code

(* ---------------- proto: encode/decode ---------------- *)

let test_client_round_trip () =
  let samples =
    [
      Ucd.Proto.Hello
        { version = 1; tenant = "alice"; priority = Ucd.Proto.High };
      Ucd.Proto.Submit
        {
          (Ucd.Proto.submit_defaults ~name:"j1"
             ~source:(Ucd.Proto.Inline "void main() {}"))
          with
          Ucd.Proto.client_ref = Some "r-1";
          seed = Some 7;
          fuel = Some 1000;
          deadline = Some 0.25;
          faults = Some "seed=7;horizon=100;router=2";
          retries = Some 3;
          no_news = true;
          no_cse = true;
          ir_opt = Some "constprop,dce";
        };
      Ucd.Proto.Submit
        (Ucd.Proto.submit_defaults ~name:"matmul"
           ~source:(Ucd.Proto.Corpus "matmul"));
      Ucd.Proto.Status 3;
      Ucd.Proto.Status_digest "0123456789abcdef0123456789abcdef";
      Ucd.Proto.Server_status;
      Ucd.Proto.Cancel 4;
      Ucd.Proto.Trace true;
      Ucd.Proto.Trace false;
      Ucd.Proto.Stats;
      Ucd.Proto.Drain;
      Ucd.Proto.Bye;
    ]
  in
  List.iter
    (fun msg ->
      let line = Ucd.Proto.client_line msg in
      match Ucd.Proto.client_of_line line with
      | Error (_, e) -> Alcotest.failf "decode of %s failed: %s" line e
      | Ok back ->
          check Alcotest.string "client frame round trip" line
            (Ucd.Proto.client_line back))
    samples

let test_server_round_trip () =
  let row =
    Ucd.Jsonu.Obj [ ("job", Ucd.Jsonu.Str "x"); ("seed", Ucd.Jsonu.Int 1) ]
  in
  let samples =
    [
      Ucd.Proto.Welcome { version = 1; session = 9; server = "ucd/1" };
      Ucd.Proto.Accepted { client_ref = Some "r"; job = 2; digest = "abcd" };
      Ucd.Proto.Rejected
        {
          client_ref = None;
          code = Ucd.Proto.Overloaded;
          msg = "queue full";
        };
      Ucd.Proto.Report { job = 2; row };
      Ucd.Proto.Resumed { client_ref = Some "r"; job = 2; digest = "abcd" };
      Ucd.Proto.Status_reply { job = 2; state = "running"; row = None };
      Ucd.Proto.Status_reply { job = 2; state = "done"; row = Some row };
      Ucd.Proto.Digest_reply { digest = "abcd"; state = "unknown"; row = None };
      Ucd.Proto.Digest_reply { digest = "abcd"; state = "done"; row = Some row };
      Ucd.Proto.Server_status_reply row;
      Ucd.Proto.Cancel_reply { job = 2; ok = false };
      Ucd.Proto.Trace_reply true;
      Ucd.Proto.Trace_event { job = 2; event = row };
      Ucd.Proto.Stats_reply row;
      Ucd.Proto.Draining { in_flight = 5 };
      Ucd.Proto.Shutdown { msg = "bye" };
      Ucd.Proto.Error { code = Ucd.Proto.Version_mismatch; msg = "v9" };
    ]
  in
  List.iter
    (fun msg ->
      let line = Ucd.Proto.server_line msg in
      match Ucd.Proto.server_of_line line with
      | Error e -> Alcotest.failf "decode of %s failed: %s" line e
      | Ok back ->
          check Alcotest.string "server frame round trip" line
            (Ucd.Proto.server_line back))
    samples

let test_malformed_frames () =
  check Alcotest.string "not json" "protocol"
    (proto_err (Ucd.Proto.client_of_line "this is not json"));
  check Alcotest.string "trailing garbage" "protocol"
    (proto_err (Ucd.Proto.client_of_line "{\"type\":\"stats\"} tail"));
  check Alcotest.string "not an object" "protocol"
    (proto_err (Ucd.Proto.client_of_line "[1,2,3]"));
  check Alcotest.string "no type field" "protocol"
    (proto_err (Ucd.Proto.client_of_line "{\"job\":1}"));
  check Alcotest.string "unknown type" "protocol"
    (proto_err (Ucd.Proto.client_of_line "{\"type\":\"zap\"}"));
  check Alcotest.string "submit without name" "bad_request"
    (proto_err
       (Ucd.Proto.client_of_line "{\"type\":\"submit\",\"source\":\"x\"}"));
  check Alcotest.string "submit without source" "bad_request"
    (proto_err (Ucd.Proto.client_of_line "{\"type\":\"submit\",\"name\":\"x\"}"));
  check Alcotest.string "submit with source AND corpus" "bad_request"
    (proto_err
       (Ucd.Proto.client_of_line
          "{\"type\":\"submit\",\"name\":\"x\",\"source\":\"s\",\"corpus\":\"c\"}"));
  check Alcotest.string "hello without version" "bad_request"
    (proto_err (Ucd.Proto.client_of_line "{\"type\":\"hello\"}"));
  check Alcotest.string "hello with bad priority" "bad_request"
    (proto_err
       (Ucd.Proto.client_of_line
          "{\"type\":\"hello\",\"version\":1,\"priority\":\"urgent\"}"));
  (* unknown fields are ignored: additive protocol evolution *)
  (match
     Ucd.Proto.client_of_line
       "{\"type\":\"status\",\"job\":7,\"future_field\":true}"
   with
  | Ok (Ucd.Proto.Status 7) -> ()
  | _ -> Alcotest.fail "unknown fields must be ignored")

let test_oversized_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
  @@ fun () ->
  let r = Ucd.Proto.reader ~max_frame:64 a in
  let send s = ignore (Unix.write b (Bytes.of_string s) 0 (String.length s)) in
  (* an oversized line, delivered in pieces, then a healthy frame: the
     reader must report Oversized exactly once, stay in sync, and parse
     the next frame *)
  send (String.make 100 'x');
  send (String.make 100 'y');
  send "\n";
  send "{\"type\":\"stats\"}\n";
  (match Ucd.Proto.read_frame r with
  | `Oversized -> ()
  | `Frame f -> Alcotest.failf "expected oversized, got frame %s" f
  | `Eof -> Alcotest.fail "expected oversized, got eof");
  (match Ucd.Proto.read_frame r with
  | `Frame "{\"type\":\"stats\"}" -> ()
  | `Frame f -> Alcotest.failf "wrong frame after oversized: %s" f
  | _ -> Alcotest.fail "expected a frame after the oversized one");
  Unix.close b;
  match Ucd.Proto.read_frame r with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected eof"

(* ---------------- jsonu: byte transparency (satellite) ------------- *)

let test_jsonu_hostile_strings () =
  List.iter
    (fun s ->
      let rendered = Ucd.Jsonu.to_string (Ucd.Jsonu.Str s) in
      match Ucd.Jsonu.of_string rendered with
      | Ok (Ucd.Jsonu.Str back) ->
          check Alcotest.string ("round trip of " ^ String.escaped s) s back
      | Ok _ -> Alcotest.fail "parsed to a non-string"
      | Error e -> Alcotest.failf "%s did not parse: %s" rendered e)
    [
      "";
      "\x00\x01\x02\x1f";
      "tab\there\nand newline";
      "quote\"and\\backslash";
      "\x7f";
      "\x80\xff\xfe";
      "h\xc3\xa9llo utf-8";
      String.init 256 Char.chr;
    ]

let qcheck_jsonu_string_round_trip =
  QCheck.Test.make ~count:500 ~name:"jsonu string round trip (all bytes)"
    (QCheck.make
       ~print:String.escaped
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (0 -- 80)))
    (fun s ->
      match Ucd.Jsonu.of_string (Ucd.Jsonu.to_string (Ucd.Jsonu.Str s)) with
      | Ok (Ucd.Jsonu.Str back) -> String.equal s back
      | _ -> false)

let qcheck_report_round_trip =
  (* the report wire codec: to_json → of_json preserves the canonical
     identity for arbitrary output lines and metrics *)
  QCheck.Test.make ~count:200 ~name:"report row wire round trip"
    QCheck.(
      triple (small_list string)
        (small_list (pair string (map float_of_int small_nat)))
        small_nat)
    (fun (output, metrics, attempts) ->
      let r =
        {
          Ucd.Report.job_name = "t";
          digest = "d";
          options = "o";
          engine = "fast";
          engine_effective = "fast";
          seed = 42;
          tuned = false;
          status = Ucd.Report.Done;
          simulated_seconds = 0.125;
          metrics;
          output;
          wall_seconds = 1.5;
          from_cache = false;
          attempts;
          fault_trace = [];
        }
      in
      match Ucd.Report.of_json (Ucd.Report.to_json r) with
      | Ok back ->
          String.equal (Ucd.Report.canonical_json r)
            (Ucd.Report.canonical_json back)
      | Error _ -> false)

(* ---------------- pool + sessions ---------------- *)

let test_pool_try_submit_overload () =
  let svc = Ucd.Pool.service ~domains:1 ~queue_bound:1 () in
  let gate = Mutex.create () and go = Condition.create () in
  let release = ref false in
  let blocker () =
    Mutex.lock gate;
    while not !release do
      Condition.wait go gate
    done;
    Mutex.unlock gate
  in
  (* first task occupies the only domain... *)
  (match Ucd.Pool.try_submit svc blocker with
  | `Accepted -> ()
  | _ -> Alcotest.fail "first submit must be accepted");
  (* wait until the worker actually picked it up *)
  let rec until_busy n =
    if n = 0 then Alcotest.fail "worker never started the blocker";
    let st = Ucd.Pool.service_stats svc in
    if st.Ucd.Pool.busy = 0 then begin
      Thread.delay 0.01;
      until_busy (n - 1)
    end
  in
  until_busy 500;
  (* ...second fills the queue... *)
  (match Ucd.Pool.try_submit svc (fun () -> ()) with
  | `Accepted -> ()
  | _ -> Alcotest.fail "second submit must be accepted (queued)");
  (* ...third must be rejected, not block *)
  (match Ucd.Pool.try_submit svc (fun () -> ()) with
  | `Overloaded -> ()
  | `Accepted -> Alcotest.fail "third submit must be rejected"
  | `Closed -> Alcotest.fail "pool is not closed");
  Mutex.lock gate;
  release := true;
  Condition.broadcast go;
  Mutex.unlock gate;
  Ucd.Pool.close svc;
  check Alcotest.bool "drained" true (Ucd.Pool.drain ~timeout:5. svc);
  Ucd.Pool.shutdown svc;
  let st = Ucd.Pool.service_stats svc in
  check Alcotest.int "rejected count" 1 st.Ucd.Pool.rejected_pushes;
  check Alcotest.int "completed" 2 st.Ucd.Pool.completed;
  match Ucd.Pool.try_submit svc (fun () -> ()) with
  | `Closed -> ()
  | _ -> Alcotest.fail "submit after close must report closed"

let test_session_quota () =
  let reg = Ucd.Session.registry ~quotas:[ ("small", 1) ] () in
  let s =
    Ucd.Session.attach reg ~tenant:"small" ~priority:Ucd.Proto.Normal
      ~outbox_capacity:8
  in
  (match Ucd.Session.admit reg s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "first admit refused: %s" e);
  (match Ucd.Session.admit reg s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "second admit must exceed the quota");
  (* the quota spans every session of the tenant *)
  let s2 =
    Ucd.Session.attach reg ~tenant:"small" ~priority:Ucd.Proto.Normal
      ~outbox_capacity:8
  in
  (match Ucd.Session.admit reg s2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "quota must span sessions of one tenant");
  Ucd.Session.finished reg s ~completed:true;
  (match Ucd.Session.admit reg s2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "slot freed but admit refused: %s" e);
  (* unlisted tenants are unlimited by default *)
  let other =
    Ucd.Session.attach reg ~tenant:"other" ~priority:Ucd.Proto.Low
      ~outbox_capacity:8
  in
  for _ = 1 to 50 do
    match Ucd.Session.admit reg other with
    | Ok () -> ()
    | Error e -> Alcotest.failf "unlimited tenant refused: %s" e
  done

let test_stream_two_lanes () =
  let s = Obs.Stream.create ~capacity:2 () in
  check Alcotest.bool "push 1" true (Obs.Stream.push s "a");
  check Alcotest.bool "offer fills" true (Obs.Stream.offer s "b");
  (* full: offer drops and counts, never blocks *)
  check Alcotest.bool "offer drops" false (Obs.Stream.offer s "c");
  check Alcotest.int "dropped counted" 1 (Obs.Stream.dropped s);
  check (Alcotest.option Alcotest.string) "fifo" (Some "a") (Obs.Stream.pop s);
  Obs.Stream.close s;
  check Alcotest.bool "push after close" false (Obs.Stream.push s "d");
  check (Alcotest.option Alcotest.string) "drains after close" (Some "b")
    (Obs.Stream.pop s);
  check (Alcotest.option Alcotest.string) "then none" None (Obs.Stream.pop s)

(* ---------------- loopback servers ---------------- *)

let next_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/ucd_test_%d_%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !n

let base_cfg socket =
  {
    Ucd.Server.default_config with
    Ucd.Server.socket_path = Some socket;
    domains = 2;
    queue_bound = 64;
    drain_timeout = 30.;
  }

let slow_source =
  "int i, acc;\nvoid main() { for (i = 0; i < 100000000; i = i + 1) acc = acc \
   + 1; }\n"

let slow_submit ?(deadline = 0.5) name =
  (* distinct names must be distinct jobs: the content digest ignores
     the display name, so without a per-name seed every slow job would
     dedup onto the first one in flight *)
  {
    (Ucd.Proto.submit_defaults ~name ~source:(Ucd.Proto.Inline slow_source))
    with
    Ucd.Proto.deadline = Some deadline;
    Ucd.Proto.seed = Some (Hashtbl.hash name);
  }

let connect_exn ?tenant ?priority socket =
  match Ucd.Client.connect ?tenant ?priority (Ucd.Client.Unix_path socket) with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

(* submit the whole corpus by name over [c]; returns rows in submission
   order as parsed results *)
let submit_corpus_wait c =
  let names = List.map fst Uc_programs.Programs.all_named in
  List.iteri
    (fun i n ->
      match
        Ucd.Client.send c
          (Ucd.Proto.Submit
             {
               (Ucd.Proto.submit_defaults ~name:n
                  ~source:(Ucd.Proto.Corpus n))
               with
               Ucd.Proto.client_ref = Some (string_of_int i);
             })
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" e)
    names;
  let n = List.length names in
  let rows = Array.make n None in
  let job_index = Hashtbl.create 16 in
  let orphans = ref [] in
  let acks = ref 0 and reports = ref 0 in
  while !acks < n || !reports < !acks do
    match Ucd.Client.recv c with
    | Error e -> Alcotest.failf "recv: %s" e
    | Ok (Ucd.Proto.Accepted { client_ref = Some r; job; _ }) ->
        incr acks;
        Hashtbl.replace job_index job (int_of_string r)
    | Ok (Ucd.Proto.Rejected { msg; _ }) -> Alcotest.failf "rejected: %s" msg
    | Ok (Ucd.Proto.Report { job; row }) -> (
        incr reports;
        match Hashtbl.find_opt job_index job with
        | Some i -> rows.(i) <- Some row
        | None -> orphans := (job, row) :: !orphans)
    | Ok _ -> ()
  done;
  List.iter
    (fun (job, row) ->
      match Hashtbl.find_opt job_index job with
      | Some i -> rows.(i) <- Some row
      | None -> Alcotest.fail "report for an unknown job")
    !orphans;
  Array.to_list rows
  |> List.map (function
       | None -> Alcotest.fail "missing report row"
       | Some row -> (
           match Ucd.Report.of_json row with
           | Ok r -> r
           | Error e -> Alcotest.failf "bad report row: %s" e))

let test_loopback_corpus_identical () =
  (* the acceptance criterion: a corpus submitted over the socket
     yields reports canonically identical to the Runner-based batch
     path — cold, then warm from the server's cache *)
  let reference =
    let cache = Ucd.Cache.create () in
    Ucd.Runner.run_jobs ~domains:2 ~cache (Ucd.Runner.corpus_jobs ())
  in
  let socket = next_sock () in
  let srv = Ucd.Server.start (base_cfg socket) in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let compare_run tag expect_warm =
    let c = connect_exn ~tenant:"ci" socket in
    Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
    let served = submit_corpus_wait c in
    check Alcotest.int (tag ^ ": row count") (List.length reference)
      (List.length served);
    List.iter2
      (fun (a : Ucd.Report.result) (b : Ucd.Report.result) ->
        check Alcotest.string
          (Printf.sprintf "%s: canonical row for %s" tag a.Ucd.Report.job_name)
          (Ucd.Report.canonical_json a)
          (Ucd.Report.canonical_json b))
      reference served;
    if expect_warm then
      check Alcotest.bool (tag ^ ": served from cache") true
        (List.for_all (fun (r : Ucd.Report.result) -> r.Ucd.Report.from_cache)
           served)
  in
  compare_run "cold" false;
  compare_run "warm" true

let test_version_mismatch () =
  let socket = next_sock () in
  let srv = Ucd.Server.start (base_cfg socket) in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let line = "{\"type\":\"hello\",\"version\":99}\n" in
  ignore (Unix.write fd (Bytes.of_string line) 0 (String.length line));
  let r = Ucd.Proto.reader fd in
  (match Ucd.Proto.read_frame r with
  | `Frame l -> (
      match Ucd.Proto.server_of_line l with
      | Ok (Ucd.Proto.Error { code = Ucd.Proto.Version_mismatch; _ }) -> ()
      | Ok m ->
          Alcotest.failf "expected version_mismatch, got %s"
            (Ucd.Proto.server_line m)
      | Error e -> Alcotest.failf "bad reply: %s" e)
  | _ -> Alcotest.fail "expected an error frame");
  (* and the server hangs up on us *)
  match Ucd.Proto.read_frame r with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected eof after version mismatch"

let test_hello_required_first () =
  let socket = next_sock () in
  let srv = Ucd.Server.start (base_cfg socket) in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let line = "{\"type\":\"stats\"}\n" in
  ignore (Unix.write fd (Bytes.of_string line) 0 (String.length line));
  let r = Ucd.Proto.reader fd in
  match Ucd.Proto.read_frame r with
  | `Frame l -> (
      match Ucd.Proto.server_of_line l with
      | Ok (Ucd.Proto.Error { code = Ucd.Proto.Protocol; _ }) -> ()
      | _ -> Alcotest.failf "expected a protocol error, got %s" l)
  | _ -> Alcotest.fail "expected an error frame"

let recv_replies c ~n =
  (* collect exactly [n] accepted/rejected replies, ignoring reports *)
  let replies = ref [] in
  while List.length !replies < n do
    match Ucd.Client.recv c with
    | Error e -> Alcotest.failf "recv: %s" e
    | Ok (Ucd.Proto.Accepted _ as m) | Ok (Ucd.Proto.Rejected _ as m) ->
        replies := m :: !replies
    | Ok _ -> ()
  done;
  List.rev !replies

let test_overload_rejection () =
  let socket = next_sock () in
  let cfg =
    { (base_cfg socket) with Ucd.Server.domains = 1; queue_bound = 1 }
  in
  let srv = Ucd.Server.start cfg in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let c = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  let submit name =
    match Ucd.Client.send c (Ucd.Proto.Submit (slow_submit name)) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "send: %s" e
  in
  (* first job occupies the single domain; wait until it is running *)
  submit "s1";
  (match recv_replies c ~n:1 with
  | [ Ucd.Proto.Accepted _ ] -> ()
  | _ -> Alcotest.fail "s1 must be accepted");
  let rec until_busy n =
    if n = 0 then Alcotest.fail "s1 never started";
    match Ucd.Client.stats c with
    | Error e -> Alcotest.failf "stats: %s" e
    | Ok (Ucd.Jsonu.Obj fields) -> (
        match List.assoc_opt "pool" fields with
        | Some (Ucd.Jsonu.Obj pool)
          when List.assoc_opt "busy" pool = Some (Ucd.Jsonu.Int 1) ->
            ()
        | _ ->
            Thread.delay 0.01;
            until_busy (n - 1))
    | Ok _ -> Alcotest.fail "stats reply is not an object"
  in
  until_busy 500;
  (* second fills the queue, third must get a typed overloaded reply *)
  submit "s2";
  submit "s3";
  (match recv_replies c ~n:2 with
  | [ Ucd.Proto.Accepted _;
      Ucd.Proto.Rejected { code = Ucd.Proto.Overloaded; _ } ] ->
      ()
  | [ a; b ] ->
      Alcotest.failf "expected accept then overloaded, got %s / %s"
        (Ucd.Proto.server_line a) (Ucd.Proto.server_line b)
  | _ -> Alcotest.fail "expected two replies")

let test_quota_rejection () =
  let socket = next_sock () in
  let cfg = { (base_cfg socket) with Ucd.Server.quotas = [ ("small", 1) ] } in
  let srv = Ucd.Server.start cfg in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let c = connect_exn ~tenant:"small" socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  (match Ucd.Client.send c (Ucd.Proto.Submit (slow_submit "q1")) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  (match Ucd.Client.send c (Ucd.Proto.Submit (slow_submit "q2")) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  match recv_replies c ~n:2 with
  | [ Ucd.Proto.Accepted _; Ucd.Proto.Rejected { code = Ucd.Proto.Quota; _ } ]
    ->
      ()
  | [ a; b ] ->
      Alcotest.failf "expected accept then quota, got %s / %s"
        (Ucd.Proto.server_line a) (Ucd.Proto.server_line b)
  | _ -> Alcotest.fail "expected two replies"

let test_trace_streaming () =
  let socket = next_sock () in
  let srv = Ucd.Server.start (base_cfg socket) in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let c = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  (match Ucd.Client.set_trace c true with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "trace not enabled"
  | Error e -> Alcotest.failf "set_trace: %s" e);
  (match
     Ucd.Client.send c
       (Ucd.Proto.Submit
          (Ucd.Proto.submit_defaults ~name:"matmul"
             ~source:(Ucd.Proto.Corpus "matmul")))
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  (* a fast job can finish — trace events and report row enqueued by
     the worker — before the reader thread enqueues the [accepted]
     frame, so pump until both the ack and the report have arrived and
     compare ids at the end *)
  let trace_jobs = ref [] and my_job = ref (-1) and report = ref None in
  while !report = None || !my_job < 0 do
    match Ucd.Client.recv c with
    | Error e -> Alcotest.failf "recv: %s" e
    | Ok (Ucd.Proto.Accepted { job; _ }) -> my_job := job
    | Ok (Ucd.Proto.Trace_event { job; event }) ->
        trace_jobs := job :: !trace_jobs;
        (* events round-trip through the generic event codec *)
        (match Obs.event_of_json event with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "bad trace event: %s" e)
    | Ok (Ucd.Proto.Report { row; _ }) -> report := Some row
    | Ok (Ucd.Proto.Rejected { msg; _ }) -> Alcotest.failf "rejected: %s" msg
    | Ok _ -> ()
  done;
  check Alcotest.bool "submit was acked" true (!my_job >= 0);
  check Alcotest.bool "saw live trace events" true (!trace_jobs <> []);
  List.iter
    (fun job -> check Alcotest.int "trace events carry the job id" !my_job job)
    !trace_jobs

let test_drain_flushes_reports () =
  (* a drain request with a job still running: the report must still be
     delivered, then a shutdown notice, then EOF; the server exits 0 *)
  let socket = next_sock () in
  let srv =
    Ucd.Server.start
      { (base_cfg socket) with Ucd.Server.domains = 1; drain_timeout = 30. }
  in
  let c = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  (match Ucd.Client.send c (Ucd.Proto.Submit (slow_submit ~deadline:0.3 "d1"))
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  (match recv_replies c ~n:1 with
  | [ Ucd.Proto.Accepted _ ] -> ()
  | _ -> Alcotest.fail "d1 must be accepted");
  (match Ucd.Client.drain c with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "drain: %s" e);
  let got_report = ref false and got_shutdown = ref false in
  let rec pump () =
    match Ucd.Client.recv c with
    | Error _ -> ()  (* eof after shutdown *)
    | Ok (Ucd.Proto.Report _) ->
        got_report := true;
        pump ()
    | Ok (Ucd.Proto.Shutdown _) ->
        got_shutdown := true;
        pump ()
    | Ok _ -> pump ()
  in
  pump ();
  check Alcotest.bool "report flushed during drain" true !got_report;
  check Alcotest.bool "shutdown notice delivered" true !got_shutdown;
  check Alcotest.int "clean drain exits 0" 0 (Ucd.Server.stop srv)

(* ---------------- hardening: crash, eviction, privilege, flush ----- *)

let test_crash_result_row () =
  (* the row a crashing job (escaped Out_of_memory/Stack_overflow)
     turns into — both run_jobs and the serve daemon rely on it *)
  let job = Ucd.Job.make ~name:"boom" ~source:"void main() {}" () in
  let r = Ucd.Runner.crash_result job Stack_overflow in
  check Alcotest.string "name" "boom" r.Ucd.Report.job_name;
  (match r.Ucd.Report.status with
  | Ucd.Report.Failed _ -> ()
  | _ -> Alcotest.fail "crash must render as Failed");
  check Alcotest.bool "not cached" false r.Ucd.Report.from_cache;
  check Alcotest.int "one attempt" 1 r.Ucd.Report.attempts;
  match Ucd.Report.of_json (Ucd.Report.to_json r) with
  | Ok back ->
      check Alcotest.string "wire round trip"
        (Ucd.Report.canonical_json r)
        (Ucd.Report.canonical_json back)
  | Error e -> Alcotest.failf "bad row: %s" e

let submit_inline c ~name source =
  match
    Ucd.Client.send c
      (Ucd.Proto.Submit
         (Ucd.Proto.submit_defaults ~name ~source:(Ucd.Proto.Inline source)))
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e

let test_failed_job_releases_quota () =
  (* a job that fails must still deliver a report and release the
     tenant's in-flight slot — a failure path that skipped
     Session.finished would wedge the tenant at its quota forever *)
  let socket = next_sock () in
  let cfg = { (base_cfg socket) with Ucd.Server.quotas = [ ("small", 1) ] } in
  let srv = Ucd.Server.start cfg in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let c = connect_exn ~tenant:"small" socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  submit_inline c ~name:"broken" "this is not a uc program";
  let got_report = ref false in
  while not !got_report do
    match Ucd.Client.recv c with
    | Error e -> Alcotest.failf "recv: %s" e
    | Ok (Ucd.Proto.Report { row; _ }) -> (
        got_report := true;
        match Ucd.Report.of_json row with
        | Ok { Ucd.Report.status = Ucd.Report.Failed _; _ } -> ()
        | Ok _ -> Alcotest.fail "broken job must report failed"
        | Error e -> Alcotest.failf "bad row: %s" e)
    | Ok (Ucd.Proto.Rejected { msg; _ }) -> Alcotest.failf "rejected: %s" msg
    | Ok _ -> ()
  done;
  submit_inline c ~name:"after-failure" "void main() {}";
  match recv_replies c ~n:1 with
  | [ Ucd.Proto.Accepted _ ] -> ()
  | [ m ] -> Alcotest.failf "quota slot leaked: %s" (Ucd.Proto.server_line m)
  | _ -> Alcotest.fail "expected one reply"

let test_status_eviction () =
  (* finished jobs leave the live table; only the most recent
     [recent_results] outcomes stay queryable (bounded memory) *)
  let socket = next_sock () in
  let cfg =
    { (base_cfg socket) with Ucd.Server.domains = 1; recent_results = 2 }
  in
  let srv = Ucd.Server.start cfg in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let c = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  (* one at a time, so completion (= retirement) order is submission
     order *)
  let run_one name =
    submit_inline c ~name "void main() {}";
    let id = ref (-1) and got_report = ref false in
    while not (!got_report && !id >= 0) do
      match Ucd.Client.recv c with
      | Error e -> Alcotest.failf "recv: %s" e
      | Ok (Ucd.Proto.Accepted { job; _ }) -> id := job
      | Ok (Ucd.Proto.Report _) -> got_report := true
      | Ok (Ucd.Proto.Rejected { msg; _ }) -> Alcotest.failf "rejected: %s" msg
      | Ok _ -> ()
    done;
    !id
  in
  let j1 = run_one "e1" in
  let _ = run_one "e2" in
  let j3 = run_one "e3" in
  let status job =
    (match Ucd.Client.send c (Ucd.Proto.Status job) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "send: %s" e);
    match Ucd.Client.recv c with
    | Ok m -> m
    | Error e -> Alcotest.failf "recv: %s" e
  in
  (match status j1 with
  | Ucd.Proto.Error { code = Ucd.Proto.Unknown_job; _ } -> ()
  | m ->
      Alcotest.failf "evicted job must be unknown, got %s"
        (Ucd.Proto.server_line m));
  match status j3 with
  | Ucd.Proto.Status_reply { state = "done"; row = Some _; _ } -> ()
  | m ->
      Alcotest.failf "recent job must still be done-with-row, got %s"
        (Ucd.Proto.server_line m)

let test_drain_denied_over_tcp () =
  (* drain terminates the daemon for everyone: only unix-socket
     (operator) connections may request it *)
  let socket = next_sock () in
  let rec start_with_port tries port =
    match
      Ucd.Server.start
        { (base_cfg socket) with Ucd.Server.tcp_port = Some port }
    with
    | srv -> (srv, port)
    | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) when tries > 0 ->
        start_with_port (tries - 1) (port + 1)
  in
  let srv, port = start_with_port 20 (20000 + (Unix.getpid () mod 20000)) in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let c =
    match Ucd.Client.connect (Ucd.Client.Tcp ("127.0.0.1", port)) with
    | Ok c -> c
    | Error e -> Alcotest.failf "tcp connect: %s" e
  in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  (match Ucd.Client.drain c with
  | Error msg ->
      check Alcotest.bool
        (Printf.sprintf "typed denied error (got %S)" msg)
        true
        (String.length msg >= 6 && String.sub msg 0 6 = "denied")
  | Ok _ -> Alcotest.fail "drain over TCP must be denied");
  (* and the daemon is still serving *)
  submit_inline c ~name:"after-denied-drain" "void main() {}";
  match recv_replies c ~n:1 with
  | [ Ucd.Proto.Accepted _ ] -> ()
  | _ -> Alcotest.fail "server must keep serving after a denied drain"

let chatty_source =
  (* ~660 KB of print output: the report frame dwarfs any socket
     buffer, so a client that stops reading leaves the server's writer
     blocked mid-frame *)
  "int i;\n\
   void main() { for (i = 0; i < 30000; i = i + 1) \
   print(\"xxxxxxxxxxxxxxxx \", i); }\n"

let test_stalled_client_cannot_wedge_shutdown () =
  let socket = next_sock () in
  let cfg =
    {
      (base_cfg socket) with
      Ucd.Server.domains = 1;
      drain_timeout = 10.;
      flush_timeout = 1.;
    }
  in
  let srv = Ucd.Server.start cfg in
  let c = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  submit_inline c ~name:"chatty" chatty_source;
  (* ...and never read again.  Wait until the job is done server-side
     (its huge report now sits in our unread socket), then shut down:
     the bounded flush must force-disconnect us, not hang forever *)
  let rec until_done n =
    if n = 0 then Alcotest.fail "chatty job never finished";
    let done_ =
      match Ucd.Server.stats srv with
      | Ucd.Jsonu.Obj fields -> (
          match List.assoc_opt "server" fields with
          | Some (Ucd.Jsonu.Obj server) ->
              List.assoc_opt "jobs_done" server = Some (Ucd.Jsonu.Int 1)
          | _ -> false)
      | _ -> false
    in
    if not done_ then begin
      Thread.delay 0.05;
      until_done (n - 1)
    end
  in
  until_done 600;
  let t0 = Unix.gettimeofday () in
  let code = Ucd.Server.stop srv in
  check Alcotest.int "clean exit despite stalled client" 0 code;
  check Alcotest.bool "shutdown bounded by the flush timeout" true
    (Unix.gettimeofday () -. t0 < 8.)

(* ---------------- durability: journal, chaos, recovery ------------- *)

let tmpdir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Printf.sprintf "%s/ucd_jtest_%d_%d"
        (Filename.get_temp_dir_name ())
        (Unix.getpid ()) !n
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let recover_exn ?keep dir =
  match Ucd.Journal.recover ?keep ~dir () with
  | Ok (j, rp) -> (j, rp)
  | Error e -> Alcotest.failf "journal recover: %s" e

let corpus_source name =
  match List.assoc_opt name Uc_programs.Programs.all_named with
  | Some src -> src
  | None -> Alcotest.failf "no corpus program %s" name

let corpus_digest name =
  Ucd.Job.digest (Ucd.Job.make ~name ~source:(corpus_source name) ())

let accepted_entry ?digest name =
  let digest = match digest with Some d -> d | None -> corpus_digest name in
  Ucd.Journal.Accepted
    {
      digest;
      name;
      tenant = "t";
      submit =
        Ucd.Proto.submit_obj
          (Ucd.Proto.submit_defaults ~name ~source:(Ucd.Proto.Corpus name));
    }

let test_journal_entry_round_trip () =
  let submit =
    Ucd.Proto.submit_obj
      (Ucd.Proto.submit_defaults ~name:"matmul"
         ~source:(Ucd.Proto.Corpus "matmul"))
  in
  List.iter
    (fun e ->
      match Ucd.Journal.entry_of_json (Ucd.Journal.entry_json e) with
      | Ok back ->
          check Alcotest.string "entry round trip"
            (Ucd.Jsonu.to_string (Ucd.Journal.entry_json e))
            (Ucd.Jsonu.to_string (Ucd.Journal.entry_json back))
      | Error msg -> Alcotest.failf "entry did not round trip: %s" msg)
    [
      Ucd.Journal.Accepted
        { digest = "d1"; name = "matmul"; tenant = "t"; submit };
      Ucd.Journal.Started { digest = "d1" };
      (* checkpoint blobs are binary: every byte must survive *)
      Ucd.Journal.Checkpointed
        { digest = "d1"; ckpt = String.init 256 Char.chr };
      Ucd.Journal.Done_ { digest = "d1"; status = "ok" };
      Ucd.Journal.Faulted { digest = "d1" };
    ]

let test_journal_replay_and_compaction () =
  let dir = tmpdir () in
  let j, rp0 = recover_exn dir in
  check Alcotest.int "fresh journal replays nothing" 0 rp0.Ucd.Journal.replayed;
  List.iter (Ucd.Journal.append j)
    [
      accepted_entry ~digest:"da" "a";
      accepted_entry ~digest:"db" "b";
      accepted_entry ~digest:"dc" "c";
      Ucd.Journal.Started { digest = "db" };
      Ucd.Journal.Checkpointed { digest = "db"; ckpt = "BLOB\x00\x01\xff" };
      Ucd.Journal.Done_ { digest = "da"; status = "ok" };
    ];
  Ucd.Journal.close j;
  let j2, rp = recover_exn dir in
  Ucd.Journal.close j2;
  check Alcotest.int "six records replayed" 6 rp.Ucd.Journal.replayed;
  check Alcotest.int "no corruption" 0 rp.Ucd.Journal.corrupt;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "finished"
    [ ("da", "ok") ]
    rp.Ucd.Journal.finished;
  (match rp.Ucd.Journal.pending with
  | [ b; c ] ->
      check Alcotest.string "pending keeps accept order" "db"
        b.Ucd.Journal.p_digest;
      check Alcotest.bool "b was started" true b.Ucd.Journal.p_started;
      check
        (Alcotest.option Alcotest.string)
        "b's checkpoint blob survives verbatim"
        (Some "BLOB\x00\x01\xff") b.Ucd.Journal.p_ckpt;
      check Alcotest.string "c pending too" "dc" c.Ucd.Journal.p_digest;
      check Alcotest.bool "c never started" false c.Ucd.Journal.p_started
  | l -> Alcotest.failf "expected 2 pending, got %d" (List.length l));
  (* recovery compacted the file down to the pending entries: b keeps
     accepted+started+checkpointed, c keeps accepted, da is gone *)
  let j3, rp3 = recover_exn dir in
  Ucd.Journal.close j3;
  check Alcotest.int "compacted to 4 records" 4 rp3.Ucd.Journal.replayed;
  check Alcotest.int "still 2 pending" 2 (List.length rp3.Ucd.Journal.pending);
  check Alcotest.int "finished entries are not kept" 0
    (List.length rp3.Ucd.Journal.finished)

let test_journal_corrupt_quarantine () =
  let dir = tmpdir () in
  let j, _ = recover_exn dir in
  List.iter (Ucd.Journal.append j)
    [
      accepted_entry ~digest:"da" "a";
      accepted_entry ~digest:"db" "b";
      Ucd.Journal.Done_ { digest = "da"; status = "ok" };
    ];
  Ucd.Journal.close j;
  let file = Ucd.Journal.path ~dir in
  (* append a checksum-divergent record and a torn tail (no newline) —
     exactly what a SIGKILL mid-write leaves behind *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 file in
  output_string oc
    "{\"sum\":\"00000000000000000000000000000000\",\"rec\":{\"t\":\"done\",\"digest\":\"db\",\"status\":\"ok\"}}\n";
  output_string oc "{\"sum\":\"torn mid-wri";
  close_out oc;
  let j2, rp = recover_exn dir in
  Ucd.Journal.close j2;
  check Alcotest.int "good records replayed" 3 rp.Ucd.Journal.replayed;
  check Alcotest.int "both damaged lines quarantined" 2 rp.Ucd.Journal.corrupt;
  (* the forged done(db) was rejected, so db is still pending *)
  (match rp.Ucd.Journal.pending with
  | [ p ] -> check Alcotest.string "db still pending" "db" p.Ucd.Journal.p_digest
  | l -> Alcotest.failf "expected 1 pending, got %d" (List.length l));
  check Alcotest.bool "evidence preserved in .corrupt" true
    (Sys.file_exists (file ^ ".corrupt"))

let test_journal_keep_resurrects_done () =
  (* recovery compacts the journal in place, so each recover reads a
     fresh copy of the same crashed-daemon state *)
  let write_state dir =
    let j, _ = recover_exn dir in
    List.iter (Ucd.Journal.append j)
      [
        accepted_entry ~digest:"da" "a";
        Ucd.Journal.Done_ { digest = "da"; status = "ok" };
      ];
    Ucd.Journal.close j
  in
  (* default: a done job stays done *)
  let d1 = tmpdir () in
  write_state d1;
  let j2, rp = recover_exn d1 in
  Ucd.Journal.close j2;
  check Alcotest.int "not resurrected by default" 0
    (List.length rp.Ucd.Journal.pending);
  (* but the daemon resurrects a done job whose cached report vanished *)
  let d2 = tmpdir () in
  write_state d2;
  let j3, rp3 =
    recover_exn ~keep:(fun ~digest:_ ~status -> status = "ok") d2
  in
  Ucd.Journal.close j3;
  (match rp3.Ucd.Journal.pending with
  | [ p ] ->
      check Alcotest.string "resurrected into pending" "da"
        p.Ucd.Journal.p_digest
  | l -> Alcotest.failf "expected 1 resurrected, got %d" (List.length l));
  check Alcotest.int "and out of finished" 0
    (List.length rp3.Ucd.Journal.finished)

let test_chaos_parse_and_determinism () =
  let plan = "seed=9;horizon=50;resets=3;frames=1;slow=2;disk=1;crash=2" in
  let spec =
    match Ucd.Chaos.parse plan with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse: %s" e
  in
  (* parse >> spec_string is a fixpoint *)
  (match Ucd.Chaos.parse (Ucd.Chaos.spec_string spec) with
  | Ok s2 ->
      check Alcotest.string "canonical fixpoint" (Ucd.Chaos.spec_string spec)
        (Ucd.Chaos.spec_string s2)
  | Error e -> Alcotest.failf "reparse: %s" e);
  (match Ucd.Chaos.parse "resets=oops" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad value must be rejected");
  (match Ucd.Chaos.parse "zaps=3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key must be rejected");
  (* same spec, two instantiations: identical fire serials *)
  let trace () =
    let c = Ucd.Chaos.instantiate spec in
    let fires = ref [] in
    for i = 1 to 50 do
      if Ucd.Chaos.fires_reset c ~obs:Obs.null then fires := i :: !fires
    done;
    for i = 1 to 50 do
      if Ucd.Chaos.fires_crash c ~obs:Obs.null then fires := (100 + i) :: !fires
    done;
    (List.rev !fires, Ucd.Chaos.fired c)
  in
  let f1, hits1 = trace () in
  let f2, hits2 = trace () in
  check (Alcotest.list Alcotest.int) "deterministic fire serials" f1 f2;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "deterministic hit counts" hits1 hits2;
  check Alcotest.int "all scheduled resets fired within the horizon" 3
    (List.assoc "resets" hits1);
  check Alcotest.int "all scheduled crashes fired within the horizon" 2
    (List.assoc "crash" hits1)

(* write a journal by hand under [dir], as a crashed daemon would have
   left it, then start a server over it *)
let with_recovered_server ~dir entries f =
  let j, _ = recover_exn dir in
  List.iter (Ucd.Journal.append j) entries;
  Ucd.Journal.close j;
  let socket = next_sock () in
  let srv =
    Ucd.Server.start ~cache_dir:dir
      { (base_cfg socket) with Ucd.Server.domains = 1 }
  in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  f socket

let await_digest_done c digest =
  let rec go n =
    if n = 0 then Alcotest.failf "digest %s never reached done" digest
    else
      match Ucd.Client.status_digest c digest with
      | Error e -> Alcotest.failf "status_digest: %s" e
      | Ok ("done", Some row) -> row
      | Ok _ ->
          Thread.delay 0.05;
          go (n - 1)
  in
  go 200

let reference_row name =
  let cache = Ucd.Cache.create () in
  Ucd.Runner.run_job ~cache
    (Ucd.Job.make ~name ~source:(corpus_source name) ())

let test_recovery_requeues_accepted_job () =
  (* an accepted-but-unfinished journal entry: the restarted daemon
     requeues it and the recomputed row equals the batch path's *)
  let dir = tmpdir () in
  let digest = corpus_digest "matmul" in
  with_recovered_server ~dir
    [ accepted_entry "matmul"; Ucd.Journal.Started { digest } ]
  @@ fun socket ->
  let c = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  let row = await_digest_done c digest in
  match Ucd.Report.of_json row with
  | Error e -> Alcotest.failf "bad recovered row: %s" e
  | Ok r ->
      check Alcotest.string "recovered row ≡ batch row"
        (Ucd.Report.canonical_json (reference_row "matmul"))
        (Ucd.Report.canonical_json { r with Ucd.Report.from_cache = false })

let test_recovery_survives_stale_checkpoint () =
  (* the journaled checkpoint blob belongs to a different program (the
     source changed across the restart): the digest guard must reject
     it and the job must restart from scratch, not crash or resume into
     the wrong machine *)
  let stale_blob =
    let compiled = Uc.Compile.lower (Uc.Compile.parse_source (corpus_source "reciprocal")) in
    let t = Uc.Compile.start_compiled compiled in
    ignore (Uc.Compile.step t ~fuel_slice:50);
    Uc.Compile.checkpoint t
  in
  let dir = tmpdir () in
  let digest = corpus_digest "matmul" in
  with_recovered_server ~dir
    [
      accepted_entry "matmul";
      Ucd.Journal.Started { digest };
      Ucd.Journal.Checkpointed { digest; ckpt = stale_blob };
    ]
  @@ fun socket ->
  let c = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  let row = await_digest_done c digest in
  match Ucd.Report.of_json row with
  | Error e -> Alcotest.failf "bad recovered row: %s" e
  | Ok r ->
      check Alcotest.string "fresh-start row ≡ batch row"
        (Ucd.Report.canonical_json (reference_row "matmul"))
        (Ucd.Report.canonical_json { r with Ucd.Report.from_cache = false })

let test_recovery_recomputes_missing_report () =
  (* a done record whose cached report artifact is gone: replay must
     resurrect and recompute it, not answer "done" with nothing *)
  let dir = tmpdir () in
  let digest = corpus_digest "matmul" in
  with_recovered_server ~dir
    [ accepted_entry "matmul"; Ucd.Journal.Done_ { digest; status = "ok" } ]
  @@ fun socket ->
  let c = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  let row = await_digest_done c digest in
  match Ucd.Report.of_json row with
  | Error e -> Alcotest.failf "bad recovered row: %s" e
  | Ok r ->
      check Alcotest.string "recomputed row ≡ batch row"
        (Ucd.Report.canonical_json (reference_row "matmul"))
        (Ucd.Report.canonical_json { r with Ucd.Report.from_cache = false })

let test_resubmit_in_flight_digest_joins () =
  (* resubmitting an in-flight digest must not run the job twice: both
     resubmissions get a [resumed] frame naming the same job id, and
     each watcher ack yields exactly one report frame *)
  let socket = next_sock () in
  let srv =
    Ucd.Server.start { (base_cfg socket) with Ucd.Server.domains = 1 }
  in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let c1 = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c1) @@ fun () ->
  let sub = slow_submit ~deadline:5. "dup" in
  (match Ucd.Client.send c1 (Ucd.Proto.Submit sub) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  let owner_id =
    match recv_replies c1 ~n:1 with
    | [ Ucd.Proto.Accepted { job; _ } ] -> job
    | _ -> Alcotest.fail "owner submit must be accepted"
  in
  let c2 = connect_exn socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c2) @@ fun () ->
  (match Ucd.Client.send c2 (Ucd.Proto.Submit sub) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  (match Ucd.Client.send c2 (Ucd.Proto.Submit sub) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  let resumed = ref [] and reports = ref 0 in
  while List.length !resumed < 2 || !reports < 2 do
    match Ucd.Client.recv c2 with
    | Error e -> Alcotest.failf "recv: %s" e
    | Ok (Ucd.Proto.Resumed { job; _ }) -> resumed := job :: !resumed
    | Ok (Ucd.Proto.Accepted _) ->
        Alcotest.fail "in-flight resubmit must resume, not accept"
    | Ok (Ucd.Proto.Report _) -> incr reports
    | Ok (Ucd.Proto.Rejected { msg; _ }) -> Alcotest.failf "rejected: %s" msg
    | Ok _ -> ()
  done;
  (match !resumed with
  | [ a; b ] ->
      check Alcotest.int "both resubmits name the owner's job id" owner_id a;
      check Alcotest.int "and the same id twice" a b
  | _ -> Alcotest.fail "expected two resumed frames");
  check Alcotest.int "one report frame per watcher ack" 2 !reports;
  (* the owner still gets exactly one *)
  let owner_reports = ref 0 in
  (try
     while !owner_reports < 1 do
       match Ucd.Client.recv c1 with
       | Error e -> Alcotest.failf "owner recv: %s" e
       | Ok (Ucd.Proto.Report _) -> incr owner_reports
       | Ok _ -> ()
     done
   with _ -> ());
  check Alcotest.int "owner got its report" 1 !owner_reports

let test_server_status_over_socket () =
  let dir = tmpdir () in
  let socket = next_sock () in
  let srv = Ucd.Server.start ~cache_dir:dir (base_cfg socket) in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let c = connect_exn ~tenant:"ops" socket in
  Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
  submit_inline c ~name:"s1" "void main() {}";
  (match recv_replies c ~n:1 with
  | [ Ucd.Proto.Accepted _ ] -> ()
  | _ -> Alcotest.fail "submit must be accepted");
  match Ucd.Client.server_status c with
  | Error e -> Alcotest.failf "server_status: %s" e
  | Ok (Ucd.Jsonu.Obj fields) ->
      let has k = List.mem_assoc k fields in
      List.iter
        (fun k ->
          check Alcotest.bool (Printf.sprintf "status has %S" k) true (has k))
        [ "version"; "uptime_seconds"; "jobs"; "pool"; "journal"; "chaos"; "tenants" ];
      (match List.assoc "journal" fields with
      | Ucd.Jsonu.Obj j ->
          check Alcotest.bool "journal enabled with a cache dir" true
            (List.assoc_opt "enabled" j = Some (Ucd.Jsonu.Bool true))
      | _ -> Alcotest.fail "journal field is not an object");
      (match List.assoc "tenants" fields with
      | Ucd.Jsonu.List (_ :: _) -> ()
      | Ucd.Jsonu.List [] ->
          Alcotest.fail "tenant usage must list the in-flight tenant"
      | _ -> Alcotest.fail "tenants field is not a list")
  | Ok _ -> Alcotest.fail "server_status reply is not an object"

let test_chaos_soak_no_lost_jobs () =
  (* a chaotic server: resets, torn frames, stalls, disk failures and
     worker crashes — a persistent client that reconnects and resubmits
     by digest still lands every job, with rows identical to the
     batch path *)
  let spec =
    match
      Ucd.Chaos.parse "seed=5;horizon=120;resets=4;frames=3;slow=3;disk=2;crash=3"
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "chaos parse: %s" e
  in
  let dir = tmpdir () in
  let socket = next_sock () in
  let srv =
    Ucd.Server.start ~cache_dir:dir
      { (base_cfg socket) with Ucd.Server.chaos = Some spec }
  in
  Fun.protect ~finally:(fun () -> ignore (Ucd.Server.stop srv)) @@ fun () ->
  let names =
    List.filteri (fun i _ -> i < 10)
      (List.map fst Uc_programs.Programs.all_named)
  in
  let run_one name =
    let rec attempt tries =
      if tries = 0 then Alcotest.failf "%s never completed under chaos" name
      else
        match
          Ucd.Client.connect_retry ~attempts:8 (Ucd.Client.Unix_path socket)
        with
        | Error e -> Alcotest.failf "connect under chaos: %s" e
        | Ok c -> (
            let outcome =
              match
                Ucd.Client.send c
                  (Ucd.Proto.Submit
                     (Ucd.Proto.submit_defaults ~name
                        ~source:(Ucd.Proto.Corpus name)))
              with
              | Error _ -> None
              | Ok () ->
                  let rec pump () =
                    match Ucd.Client.recv c with
                    | Error _ -> None  (* reset or torn frame: resubmit *)
                    | Ok (Ucd.Proto.Report { row; _ }) -> Some row
                    | Ok (Ucd.Proto.Rejected { msg; _ }) ->
                        Alcotest.failf "rejected under chaos: %s" msg
                    | Ok _ -> pump ()
                  in
                  pump ()
            in
            Ucd.Client.close c;
            match outcome with
            | Some row -> row
            | None -> attempt (tries - 1))
    in
    attempt 30
  in
  List.iter
    (fun name ->
      let row = run_one name in
      match Ucd.Report.of_json row with
      | Error e -> Alcotest.failf "bad row under chaos: %s" e
      | Ok r ->
          check Alcotest.string
            (Printf.sprintf "chaos row for %s ≡ batch row" name)
            (Ucd.Report.canonical_json (reference_row name))
            (Ucd.Report.canonical_json { r with Ucd.Report.from_cache = false }))
    names

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "client frames round trip" `Quick
            test_client_round_trip;
          Alcotest.test_case "server frames round trip" `Quick
            test_server_round_trip;
          Alcotest.test_case "malformed frames → typed errors" `Quick
            test_malformed_frames;
          Alcotest.test_case "oversized frame rejection" `Quick
            test_oversized_framing;
        ] );
      ( "jsonu",
        [
          Alcotest.test_case "hostile strings round trip" `Quick
            test_jsonu_hostile_strings;
          QCheck_alcotest.to_alcotest qcheck_jsonu_string_round_trip;
          QCheck_alcotest.to_alcotest qcheck_report_round_trip;
        ] );
      ( "admission",
        [
          Alcotest.test_case "pool try_submit overload" `Quick
            test_pool_try_submit_overload;
          Alcotest.test_case "tenant quotas" `Quick test_session_quota;
          Alcotest.test_case "stream lanes" `Quick test_stream_two_lanes;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "corpus over socket ≡ batch (cold+warm)" `Quick
            test_loopback_corpus_identical;
          Alcotest.test_case "version mismatch in hello" `Quick
            test_version_mismatch;
          Alcotest.test_case "hello required first" `Quick
            test_hello_required_first;
          Alcotest.test_case "overloaded rejection" `Quick
            test_overload_rejection;
          Alcotest.test_case "quota rejection" `Quick test_quota_rejection;
          Alcotest.test_case "live trace streaming" `Quick
            test_trace_streaming;
          Alcotest.test_case "drain flushes reports" `Quick
            test_drain_flushes_reports;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "crash renders as a failed row" `Quick
            test_crash_result_row;
          Alcotest.test_case "failed job releases its quota slot" `Quick
            test_failed_job_releases_quota;
          Alcotest.test_case "finished jobs are evicted, window queryable"
            `Quick test_status_eviction;
          Alcotest.test_case "drain denied over TCP" `Quick
            test_drain_denied_over_tcp;
          Alcotest.test_case "stalled client cannot wedge shutdown" `Quick
            test_stalled_client_cannot_wedge_shutdown;
        ] );
      ( "durability",
        [
          Alcotest.test_case "journal entries round trip" `Quick
            test_journal_entry_round_trip;
          Alcotest.test_case "replay + compaction" `Quick
            test_journal_replay_and_compaction;
          Alcotest.test_case "corrupt lines quarantined, never a crash" `Quick
            test_journal_corrupt_quarantine;
          Alcotest.test_case "keep resurrects done-without-artifact" `Quick
            test_journal_keep_resurrects_done;
          Alcotest.test_case "chaos plans parse + fire deterministically"
            `Quick test_chaos_parse_and_determinism;
          Alcotest.test_case "restart requeues accepted job" `Quick
            test_recovery_requeues_accepted_job;
          Alcotest.test_case "stale checkpoint falls back to fresh start"
            `Quick test_recovery_survives_stale_checkpoint;
          Alcotest.test_case "done record with missing report recomputes"
            `Quick test_recovery_recomputes_missing_report;
          Alcotest.test_case "in-flight resubmit joins the same job" `Quick
            test_resubmit_in_flight_digest_joins;
          Alcotest.test_case "ucc status snapshot over socket" `Quick
            test_server_status_over_socket;
          Alcotest.test_case "chaos soak: zero lost, rows ≡ batch" `Slow
            test_chaos_soak_no_lost_jobs;
        ] );
    ]
