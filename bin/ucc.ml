(* ucc: the UC compiler driver.

   Subcommands:
     ucc check FILE        parse and type-check
     ucc ast FILE          parse and pretty-print the AST
     ucc paris FILE        dump the generated Paris IR
     ucc run FILE          compile and execute on the simulated CM
     ucc interp FILE       execute with the reference interpreter
     ucc examples          list the built-in corpus programs
     ucc show NAME         print a built-in corpus program *)

open Cmdliner

let read_source path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error msg -> Error msg

let with_source path f =
  match read_source path with
  | Error msg ->
      Printf.eprintf "ucc: %s\n" msg;
      1
  | Ok src -> (
      try f src with
      | Uc.Loc.Error (loc, msg) ->
          Printf.eprintf "%s:%s: error: %s\n" path
            (Format.asprintf "%a" Uc.Loc.pp loc)
            msg;
          1
      | Uc.Interp.Runtime_error msg ->
          Printf.eprintf "%s: runtime error: %s\n" path msg;
          1
      | Cm.Machine.Fault msg ->
          Printf.eprintf "%s: transient fault: %s\n" path msg;
          1
      | Cm.Machine.Error msg ->
          Printf.eprintf "%s: machine error: %s\n" path msg;
          1
      | Failure msg ->
          Printf.eprintf "%s: error: %s\n" path msg;
          1
      | Not_found ->
          Printf.eprintf "%s: error: no such array or scalar\n" path;
          1)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"UC source file")

let seed_arg =
  Arg.(value & opt int 12345 & info [ "seed" ] ~docv:"N" ~doc:"Seed for rand()")

let options_args =
  let no_news =
    Arg.(value & flag & info [ "no-news" ] ~doc:"Disable the NEWS-grid optimization")
  in
  let no_procopt =
    Arg.(value & flag & info [ "no-procopt" ] ~doc:"Disable the processor optimization")
  in
  let no_maps =
    Arg.(value & flag & info [ "no-mappings" ] ~doc:"Ignore map sections")
  in
  let no_cse =
    Arg.(value & flag & info [ "no-cse" ] ~doc:"Disable common sub-expression elimination")
  in
  let iropt_conv =
    let parse s =
      match Cm.Iropt.config_of_string s with
      | Ok c -> Ok c
      | Error msg -> Error (`Msg msg)
    in
    let print fmt c = Format.pp_print_string fmt (Cm.Iropt.config_summary c) in
    Arg.conv (parse, print)
  in
  let ir_opt =
    Arg.(
      value
      & opt iropt_conv Cm.Iropt.default
      & info [ "ir-opt" ] ~docv:"PASSES"
          ~doc:
            "Paris-IR optimizer passes: $(b,on)/$(b,off) or a \
             comma-separated subset of \
             $(b,constprop),$(b,dce),$(b,peephole),$(b,getsend)")
  in
  let no_ir_opt =
    Arg.(
      value & flag
      & info [ "no-ir-opt" ]
          ~doc:"Disable the Paris-IR optimizer (same as --ir-opt off)")
  in
  let combine no_news no_procopt no_maps no_cse ir_opt no_ir_opt =
    {
      Uc.Codegen.news_opt = not no_news;
      procopt = not no_procopt;
      use_mappings = not no_maps;
      cse = not no_cse;
      ir_opt = (if no_ir_opt then Cm.Iropt.off else ir_opt);
    }
  in
  Term.(
    const combine $ no_news $ no_procopt $ no_maps $ no_cse $ ir_opt
    $ no_ir_opt)

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print machine statistics")

let tune_flag =
  Arg.(
    value & flag
    & info [ "tune" ]
        ~doc:
          "Auto-tune the data layout before lowering (see $(b,ucc tune)); \
           the synthesized map section replaces any in the source")

let ir_opt_stats_arg =
  Arg.(
    value & flag
    & info [ "ir-opt-stats" ]
        ~doc:"Print per-pass Paris-IR optimizer statistics (to stderr)")

(* ---- telemetry ---- *)

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSON-lines telemetry trace (compile phases, machine \
           events, job lifecycle).  $(docv) '-' or no value: stderr.  \
           Tracing never changes program results.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the aggregate telemetry table (counters and timings) to \
              stderr after the run")

(* One scope per invocation, created only when some surface wants it
   (--trace, --metrics, --ir-opt-stats); everything else runs against
   Obs.null and pays one branch per telemetry call site.  Returns the
   scope and a finisher that prints the requested tables and closes the
   trace file. *)
let make_obs ~trace ~metrics ~ir_opt_stats =
  if trace = None && (not metrics) && not ir_opt_stats then
    (Obs.null, fun () -> ())
  else begin
    let obs = Obs.create ~clock:Unix.gettimeofday () in
    let close_trace =
      match trace with
      | None -> fun () -> ()
      | Some "-" ->
          Obs.add_sink obs
            (Obs.jsonl_sink (fun line ->
                 output_string stderr (line ^ "\n")));
          fun () -> flush stderr
      | Some path ->
          let oc = open_out path in
          Obs.add_sink obs
            (Obs.jsonl_sink (fun line -> output_string oc (line ^ "\n")));
          fun () -> close_out oc
    in
    let finish () =
      if ir_opt_stats then begin
        let rows =
          List.filter
            (fun (k, _) -> String.length k >= 6 && String.sub k 0 6 = "iropt.")
            (Obs.table obs)
        in
        if rows = [] then Format.eprintf "ir-opt: disabled@."
        else
          List.iter
            (fun (k, v) ->
              Format.eprintf "%-32s %s@." k (Obs.Json.to_string v))
            rows
      end;
      if metrics then Format.eprintf "%a" Obs.pp_table obs;
      close_trace ()
    in
    (obs, finish)
  end

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print simulated time per region (the compiler emits one region \
           marker per source line)")

(* The engine name list lives in Ucd.Job (it also keys digests and
   reports), so the help text, the validator and the error message can
   never drift apart. *)
let engine_doc =
  Printf.sprintf
    "Execution engine: %s.  $(b,fast) (the default) runs pre-decoded \
     instruction kernels; $(b,sharded) fans the kernels out across \
     $(b,--shards) worker domains; $(b,native) compiles the Paris IR to \
     machine code via $(b,ocamlopt) (content-addressed-cached; falls back \
     to $(b,fast) with a one-line warning when no native toolchain is \
     available); $(b,reference) is the tree-walking interpreter.  All \
     engines produce bit-identical results, statistics and simulated \
     time; only wall-clock speed differs."
    (String.concat ", "
       (List.map (Printf.sprintf "$(b,%s)") Ucd.Job.engine_names))

let engine_name_arg =
  Arg.(value & opt string "fast" & info [ "engine" ] ~docv:"ENGINE" ~doc:engine_doc)

let default_shards = max 1 (Domain.recommended_domain_count ())

let shards_arg =
  Arg.(
    value & opt int default_shards
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Chunk count for $(b,--engine sharded) (default: this host's \
           recommended domain count).  Results depend only on N, never on \
           how many worker domains are actually available.")

(* one-line rejection, exit 1, naming the valid engines *)
let resolve_engine ~shards name k =
  match Ucd.Job.engine_of_name ~shards name with
  | Ok engine -> k engine
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Fault-injection plan, e.g. \
           $(b,seed=7;horizon=20000;router=2;flip@100:0.3.5).  Transient \
           router/NEWS/chip faults abort the run (retryable); bit flips \
           silently corrupt memory.  See the README for the grammar.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:"Extra attempts after a transient fault")

let fuel_slice_arg =
  Arg.(
    value
    & opt int 100_000
    & info [ "fuel-slice" ] ~docv:"K"
        ~doc:
          "Instructions per execution slice (granularity of deadline \
           checks and checkpoints)")

let parse_faults_opt = function
  | None -> None
  | Some s -> (
      match Cm.Fault.parse s with
      | Ok spec -> Some spec
      | Error msg -> failwith (Printf.sprintf "bad fault plan %S: %s" s msg))

let arrays_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "arrays" ] ~docv:"NAMES" ~doc:"Global arrays to print after the run")

let scalars_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "scalars" ] ~docv:"NAMES" ~doc:"Global scalars to print after the run")

(* ---- check ---- *)

let check_cmd =
  let run path =
    with_source path (fun src ->
        let prog = Uc.Parser.parse_program src in
        let info = Uc.Sema.check prog in
        if not info.Uc.Sema.has_main then begin
          Printf.eprintf "%s: error: program has no main function\n" path;
          1
        end
        else begin
          Printf.printf
            "%s: ok (%d global arrays, %d index sets, %d functions)\n" path
            (List.length info.Uc.Sema.global_arrays)
            (List.length info.Uc.Sema.global_sets)
            (List.length info.Uc.Sema.funcs);
          0
        end)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and type-check a UC program")
    Term.(const run $ file_arg)

(* ---- ast ---- *)

let ast_cmd =
  let run path =
    with_source path (fun src ->
        let prog = Uc.Parser.parse_program src in
        ignore (Uc.Sema.check prog);
        print_string (Uc.Pretty.program_to_string prog);
        0)
  in
  Cmd.v (Cmd.info "ast" ~doc:"Pretty-print the parsed program")
    Term.(const run $ file_arg)

(* ---- paris ---- *)

let paris_cmd =
  let run path options ir_opt_stats =
    with_source path (fun src ->
        let obs, finish = make_obs ~trace:None ~metrics:false ~ir_opt_stats in
        let compiled = Uc.Compile.compile_source ~options ~obs src in
        Format.printf "%a@." Cm.Paris.pp_program compiled.Uc.Codegen.prog;
        (* static footer: instruction census by hardware class and a
           straight-line cost estimate, so two dumps (say, --ir-opt on
           vs off) can be compared without running anything *)
        Format.printf "%a@." (Cm.Iropt.pp_static_summary ?params:None)
          compiled.Uc.Codegen.prog;
        (* codegen coverage: which instruction classes `--engine native`
           open-codes vs routes back through the fast kernels — static,
           so codegen tuning is observable without running anything *)
        let pp_census ppf classes =
          Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
            (fun ppf (mn, n) -> Format.fprintf ppf "%s:%d" mn n)
            ppf classes
        in
        let native, fallback = Cm.Codegen.coverage compiled.Uc.Codegen.prog in
        Format.printf "@[<v>native codegen: @[%a@]@,"
          (fun ppf -> function
            | [] -> Format.pp_print_string ppf "(nothing)"
            | cs -> pp_census ppf cs)
          native;
        Format.printf "kernel fallback: @[%a@]@]@."
          (fun ppf -> function
            | [] -> Format.pp_print_string ppf "(nothing)"
            | cs -> pp_census ppf cs)
          fallback;
        finish ();
        0)
  in
  Cmd.v (Cmd.info "paris" ~doc:"Dump the generated Paris IR")
    Term.(const run $ file_arg $ options_args $ ir_opt_stats_arg)

(* ---- cstar ---- *)

let cstar_cmd =
  let run path =
    with_source path (fun src ->
        print_string (Uc.Cstar_emit.emit_source src);
        0)
  in
  Cmd.v
    (Cmd.info "cstar"
       ~doc:"Translate to C* source (the 1990 compiler's target language)")
    Term.(const run $ file_arg)

(* ---- run ---- *)

let print_int_array name dims a =
  Printf.printf "%s =" name;
  (match dims with
  | [ _; cols ] ->
      Array.iteri
        (fun k v ->
          if k mod cols = 0 then Printf.printf "\n  ";
          Printf.printf "%6d" v)
        a;
      print_newline ()
  | _ ->
      Array.iter (Printf.printf " %d") a;
      print_newline ())

let run_cmd =
  let run path options seed stats profile engine_name shards arrays scalars
      faults retries fuel_slice ir_opt_stats trace metrics =
    resolve_engine ~shards engine_name @@ fun engine ->
    with_source path (fun src ->
        let fspec = parse_faults_opt faults in
        let obs, finish_obs = make_obs ~trace ~metrics ~ir_opt_stats in
        Fun.protect ~finally:finish_obs (fun () ->
        let compiled = Uc.Compile.compile_source ~options ~obs src in
        (* run in fuel slices so a transient fault can be retried with a
           freshly instantiated plan for the next attempt *)
        let rec attempt k =
          let plan = Option.map (Cm.Fault.instantiate ~attempt:k) fspec in
          let t =
            Uc.Compile.start_compiled ~seed ~engine ?faults:plan ~obs compiled
          in
          let rec slices () =
            match Uc.Compile.step t ~fuel_slice with
            | `Done -> t
            | `More -> slices ()
          in
          try slices ()
          with Cm.Machine.Fault msg when k < retries ->
            Printf.eprintf "%s: transient fault (attempt %d/%d): %s; retrying\n"
              path (k + 1) (retries + 1) msg;
            attempt (k + 1)
        in
        let t = attempt 0 in
        Cm.Machine.publish t.Uc.Compile.machine;
        List.iter print_endline (Uc.Compile.output t);
        List.iter
          (fun name ->
            let meta = Uc.Compile.meta t name in
            match meta.Uc.Codegen.aty with
            | Uc.Ast.Tint ->
                print_int_array name meta.Uc.Codegen.adims
                  (Uc.Compile.int_array t name)
            | Uc.Ast.Tfloat ->
                Printf.printf "%s =" name;
                Array.iter (Printf.printf " %g") (Uc.Compile.float_array t name);
                print_newline ())
          arrays;
        List.iter
          (fun name ->
            match Uc.Compile.scalar t name with
            | Cm.Paris.SInt i -> Printf.printf "%s = %d\n" name i
            | Cm.Paris.SFloat f -> Printf.printf "%s = %g\n" name f)
          scalars;
        Printf.printf "simulated elapsed time: %.6f s\n"
          (Uc.Compile.elapsed_seconds t);
        if stats then
          Format.printf "%a@." Cm.Cost.pp_meter (Uc.Compile.meter t);
        if profile then begin
          let total = Uc.Compile.elapsed_seconds t in
          print_endline "profile (simulated seconds by region; one per source line):";
          List.iter
            (fun (region, secs) ->
              Printf.printf "  %-16s %10.6f s  %5.1f%%\n" region secs
                (100.0 *. secs /. total))
            (Cm.Machine.regions t.Uc.Compile.machine)
        end;
        0))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute on the simulated Connection Machine")
    Term.(
      const run $ file_arg $ options_args $ seed_arg $ stats_arg $ profile_arg
      $ engine_name_arg $ shards_arg $ arrays_arg $ scalars_arg $ faults_arg
      $ retries_arg $ fuel_slice_arg $ ir_opt_stats_arg $ trace_arg
      $ metrics_arg)

(* ---- interp ---- *)

let interp_cmd =
  let run path seed arrays scalars =
    with_source path (fun src ->
        let prog = Uc.Parser.parse_program src in
        ignore (Uc.Sema.check prog);
        let r = Uc.Interp.run ~seed prog in
        List.iter print_endline (Uc.Interp.output r);
        List.iter
          (fun name ->
            print_int_array name [] (Uc.Interp.int_array r name))
          arrays;
        List.iter
          (fun name ->
            match Uc.Interp.scalar r name with
            | Uc.Interp.Vint i -> Printf.printf "%s = %d\n" name i
            | Uc.Interp.Vfloat f -> Printf.printf "%s = %g\n" name f)
          scalars;
        0)
  in
  Cmd.v
    (Cmd.info "interp" ~doc:"Execute with the reference interpreter")
    Term.(const run $ file_arg $ seed_arg $ arrays_arg $ scalars_arg)

(* ---- corpus ---- *)

let examples_cmd =
  let run () =
    List.iter
      (fun (name, _) -> print_endline name)
      Uc_programs.Programs.all_named;
    0
  in
  Cmd.v
    (Cmd.info "examples" ~doc:"List the built-in corpus programs from the paper")
    Term.(const run $ const ())

let show_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let run name =
    match List.assoc_opt name Uc_programs.Programs.all_named with
    | Some src ->
        print_string src;
        0
    | None ->
        Printf.eprintf "ucc: unknown example %s (try 'ucc examples')\n" name;
        1
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a built-in corpus program")
    Term.(const run $ name_arg)

(* ---- batch ---- *)

(* Manifest format, one job per line (# starts a comment):

     <corpus-name-or-path.uc> [seed=N] [fuel=N] [deadline=SECS]
                              [retries=N] [faults=PLAN] [ir-opt=PASSES]
                              [engine=fast|reference|sharded] [shards=N]
                              [no-news] [no-procopt] [no-mappings] [no-cse]
                              [no-ir-opt] [tune | tune=BOOL]

   A bare name is looked up in the built-in corpus; anything containing
   a '/' or ending in .uc is read as a file.  The engine participates in
   the job digest, so rows that differ only in engine= never share a
   cache entry. *)

let parse_manifest_line ~defaults lineno line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> None
  | target :: opts ->
      if String.length target > 0 && target.[0] = '#' then None
      else
        let ( seed,
              fuel,
              deadline,
              faults,
              retries,
              options,
              engine_name,
              shards,
              tune ) =
          defaults
        in
        let seed = ref seed
        and fuel = ref fuel
        and deadline = ref deadline
        and faults = ref faults
        and retries = ref retries
        and options = ref options
        and engine_name = ref engine_name
        and shards = ref shards
        and tune = ref tune in
        List.iter
          (fun tok ->
            let intval key v =
              match int_of_string_opt v with
              | Some n -> n
              | None ->
                  failwith
                    (Printf.sprintf "manifest line %d: bad %s value %S" lineno
                       key v)
            in
            match String.index_opt tok '=' with
            | Some i -> (
                let key = String.sub tok 0 i
                and v = String.sub tok (i + 1) (String.length tok - i - 1) in
                match key with
                | "seed" -> seed := intval "seed" v
                | "fuel" -> fuel := Some (intval "fuel" v)
                | "engine" -> engine_name := v
                | "tune" -> (
                    match v with
                    | "true" | "1" | "on" -> tune := true
                    | "false" | "0" | "off" -> tune := false
                    | _ ->
                        failwith
                          (Printf.sprintf
                             "manifest line %d: bad tune value %S (use \
                              true/false)"
                             lineno v))
                | "shards" -> shards := intval "shards" v
                | "deadline" -> (
                    match float_of_string_opt v with
                    | Some f -> deadline := Some f
                    | None ->
                        failwith
                          (Printf.sprintf
                             "manifest line %d: bad deadline value %S" lineno v))
                | "retries" -> retries := Some (intval "retries" v)
                | "faults" -> (
                    match Cm.Fault.parse v with
                    | Ok spec -> faults := Some spec
                    | Error msg ->
                        failwith
                          (Printf.sprintf
                             "manifest line %d: bad faults value %S (%s)" lineno
                             v msg))
                | "ir-opt" -> (
                    match Cm.Iropt.config_of_string v with
                    | Ok c ->
                        options := { !options with Uc.Codegen.ir_opt = c }
                    | Error msg ->
                        failwith
                          (Printf.sprintf
                             "manifest line %d: bad ir-opt value %S (%s)"
                             lineno v msg))
                | _ ->
                    failwith
                      (Printf.sprintf "manifest line %d: unknown key %S" lineno
                         key))
            | None -> (
                match tok with
                | "no-news" -> options := { !options with Uc.Codegen.news_opt = false }
                | "no-procopt" -> options := { !options with Uc.Codegen.procopt = false }
                | "no-mappings" ->
                    options := { !options with Uc.Codegen.use_mappings = false }
                | "no-cse" -> options := { !options with Uc.Codegen.cse = false }
                | "no-ir-opt" ->
                    options :=
                      { !options with Uc.Codegen.ir_opt = Cm.Iropt.off }
                | "tune" -> tune := true
                | _ ->
                    failwith
                      (Printf.sprintf "manifest line %d: unknown flag %S" lineno
                         tok)))
          opts;
        let source =
          match List.assoc_opt target Uc_programs.Programs.all_named with
          | Some src -> src
          | None -> (
              match read_source target with
              | Ok src -> src
              | Error msg ->
                  failwith
                    (Printf.sprintf
                       "manifest line %d: %s is neither a corpus program nor a \
                        readable file (%s)"
                       lineno target msg))
        in
        let engine =
          match Ucd.Job.engine_of_name ~shards:!shards !engine_name with
          | Ok e -> e
          | Error msg ->
              failwith (Printf.sprintf "manifest line %d: %s" lineno msg)
        in
        Some
          (Ucd.Job.make ~options:!options ~seed:!seed ?fuel:!fuel
             ?deadline:!deadline ?faults:!faults ?retries:!retries ~engine
             ~tune:!tune ~name:target ~source ())

let batch_cmd =
  let manifest_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST"
          ~doc:"Job manifest (one job per line); the whole built-in corpus \
                when omitted")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Number of worker domains")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string "_ucd_cache"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"On-disk artifact cache ('none' disables persistence)")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N" ~doc:"Default instruction bound per job")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Default wall-clock deadline per job")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the JSON-lines report here instead of stdout")
  in
  let run manifest jobs cache_dir options seed fuel deadline report stats faults
      retries fuel_slice engine_name shards trace metrics tune =
    resolve_engine ~shards engine_name @@ fun engine ->
    try
      let obs, finish_obs =
        make_obs ~trace ~metrics ~ir_opt_stats:false
      in
      Fun.protect ~finally:finish_obs @@ fun () ->
      let fspec = parse_faults_opt faults in
      let defaults =
        (seed, fuel, deadline, fspec, (if retries = 0 then None else Some retries),
         options, engine_name, shards, tune)
      in
      let job_list =
        match manifest with
        | None ->
            Ucd.Runner.corpus_jobs ~options ~seed ?fuel ?deadline ?faults:fspec
              ?retries:(if retries = 0 then None else Some retries) ~engine
              ~tune ()
        | Some path -> (
            match read_source path with
            | Error msg -> failwith msg
            | Ok text ->
                String.split_on_char '\n' text
                |> List.mapi (fun i l -> (i + 1, String.trim l))
                |> List.filter_map (fun (i, l) ->
                       parse_manifest_line ~defaults i l))
      in
      let cache =
        if cache_dir = "none" then Ucd.Cache.create ()
        else Ucd.Cache.create ~dir:cache_dir ()
      in
      let policy =
        { Ucd.Runner.default_policy with retries; fuel_slice }
      in
      let t0 = Unix.gettimeofday () in
      let results =
        Ucd.Runner.run_jobs ~domains:jobs ~policy ~obs ~cache job_list
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Ucd.Cache.publish cache obs;
      let emit oc =
        List.iter
          (fun r -> output_string oc (Ucd.Report.json_line r ^ "\n"))
          results;
        output_string oc (Ucd.Report.json_of_summary
                            (Ucd.Report.summarize ~elapsed results) ^ "\n")
      in
      (match report with
      | None -> emit stdout
      | Some path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit oc));
      let summary = Ucd.Report.summarize ~elapsed results in
      Format.eprintf "batch: %a@." Ucd.Report.pp_summary summary;
      if stats then
        Format.eprintf "batch: %a@." Ucd.Cache.pp_stats (Ucd.Cache.stats cache);
      if
        summary.Ucd.Report.failed > 0
        || summary.Ucd.Report.timeout > 0
        || summary.Ucd.Report.faulted > 0
      then 2
      else 0
    with Failure msg ->
      Printf.eprintf "ucc batch: error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run many compile/run jobs concurrently with a content-addressed \
          artifact cache")
    Term.(
      const run $ manifest_arg $ jobs_arg $ cache_dir_arg $ options_args
      $ seed_arg $ fuel_arg $ deadline_arg $ report_arg $ stats_arg
      $ faults_arg $ retries_arg $ fuel_slice_arg $ engine_name_arg
      $ shards_arg $ trace_arg $ metrics_arg $ tune_flag)

(* ---- serve / submit ---- *)

let socket_arg =
  Arg.(
    value
    & opt string "ucd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let tcp_port_arg ~doc =
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Number of worker domains")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 16
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Job queue capacity; submissions beyond it get a typed \
             $(b,overloaded) rejection instead of blocking")
  in
  let quota_arg =
    let quota_conv =
      let parse s =
        match String.index_opt s '=' with
        | Some i -> (
            let t = String.sub s 0 i in
            let n = String.sub s (i + 1) (String.length s - i - 1) in
            match int_of_string_opt n with
            | Some n when n >= 0 && t <> "" -> Ok (t, n)
            | _ -> Error (`Msg (Printf.sprintf "bad quota %S (want TENANT=N)" s)))
        | None -> Error (`Msg (Printf.sprintf "bad quota %S (want TENANT=N)" s))
      in
      let print fmt (t, n) = Format.fprintf fmt "%s=%d" t n in
      Arg.conv (parse, print)
    in
    Arg.(
      value & opt_all quota_conv []
      & info [ "quota" ] ~docv:"TENANT=N"
          ~doc:
            "Bound $(b,TENANT) to N in-flight jobs (repeatable; tenant \
             $(b,*) sets the default for unlisted tenants)")
  in
  let drain_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "drain-timeout" ] ~docv:"SECS"
          ~doc:
            "How long a graceful shutdown waits for in-flight jobs before \
             giving up (exit 1)")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string "_ucd_cache"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"On-disk artifact cache ('none' disables persistence)")
  in
  let no_journal_arg =
    Arg.(
      value & flag
      & info [ "no-journal" ]
          ~doc:
            "Disable the write-ahead job journal (accepted jobs no longer \
             survive a daemon crash)")
  in
  let journal_fsync_arg =
    Arg.(
      value & flag
      & info [ "journal-fsync" ]
          ~doc:
            "fsync the journal after every record (survives kernel crashes, \
             at a latency cost)")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"PLAN"
          ~doc:
            "Seeded service-level fault injection, e.g. \
             $(b,seed=7;resets=3;frames=2;slow=5;disk=2;crash=3) — socket \
             resets, torn frames, slow-reader stalls, cache-disk write \
             failures and simulated worker crashes")
  in
  let run socket tcp jobs max_queue quotas drain_timeout cache_dir no_journal
      journal_fsync chaos_plan retries fuel_slice trace metrics =
    (* block INT/TERM before any thread exists so every thread inherits
       the mask and the signals can only be consumed by the dedicated
       sigwait thread below — a handler would never run while all
       threads sit in condition waits *)
    let masked =
      try
        ignore
          (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint; Sys.sigterm ]);
        true
      with _ -> false
    in
    let obs, finish_obs = make_obs ~trace ~metrics ~ir_opt_stats:false in
    Fun.protect ~finally:finish_obs @@ fun () ->
    let default_quota = List.assoc_opt "*" quotas in
    let quotas = List.filter (fun (t, _) -> t <> "*") quotas in
    let socket_path = if socket = "none" then None else Some socket in
    let chaos =
      match chaos_plan with
      | None -> Ok None
      | Some plan -> (
          match Ucd.Chaos.parse plan with
          | Ok spec -> Ok (Some spec)
          | Error msg ->
              Error (Printf.sprintf "bad --chaos plan %S: %s" plan msg))
    in
    match chaos with
    | Error msg ->
        Printf.eprintf "ucc serve: %s\n" msg;
        1
    | Ok chaos -> (
    let cfg =
      {
        Ucd.Server.socket_path;
        tcp_port = tcp;
        domains = jobs;
        queue_bound = max_queue;
        quotas;
        default_quota;
        drain_timeout;
        flush_timeout = Ucd.Server.default_config.Ucd.Server.flush_timeout;
        policy = { Ucd.Runner.default_policy with retries; fuel_slice };
        max_frame = Ucd.Proto.default_max_frame;
        outbox_capacity = 4096;
        recent_results =
          Ucd.Server.default_config.Ucd.Server.recent_results;
        journal = not no_journal;
        journal_fsync;
        chaos;
        verbose = true;
      }
    in
    let cache_dir = if cache_dir = "none" then None else Some cache_dir in
    match Ucd.Server.start ~obs ?cache_dir cfg with
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "ucc serve: cannot listen (%s): %s\n" arg
          (Unix.error_message e);
        1
    | exception Invalid_argument msg ->
        Printf.eprintf "ucc serve: %s\n" msg;
        1
    | srv ->
        Printf.eprintf "ucc serve: listening on%s%s (%d domains, queue %d)\n%!"
          (match socket_path with Some p -> " " ^ p | None -> "")
          (match tcp with
          | Some p -> Printf.sprintf " tcp:127.0.0.1:%d" p
          | None -> "")
          jobs max_queue;
        (* first signal: graceful drain; second: force exit nonzero *)
        if masked then
          ignore
            (Thread.create
               (fun () ->
                 let sigs = [ Sys.sigint; Sys.sigterm ] in
                 ignore (Thread.wait_signal sigs);
                 prerr_endline "ucc serve: signal: draining";
                 ignore (Ucd.Server.request_shutdown ~reason:"signal" srv);
                 ignore (Thread.wait_signal sigs);
                 prerr_endline "ucc serve: forced exit";
                 Stdlib.exit 130)
               ())
        else begin
          let signals = ref 0 in
          let on_signal _ =
            incr signals;
            if !signals = 1 then
              ignore (Ucd.Server.request_shutdown ~reason:"signal" srv)
            else Stdlib.exit 130
          in
          try
            Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
            Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
          with _ -> ()
        end;
        let code = Ucd.Server.wait srv in
        Printf.eprintf "ucc serve: %s\n%!"
          (if code = 0 then "drained cleanly"
           else "drain timeout expired with jobs in flight");
        code)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the compile-and-run daemon: sessions, per-tenant admission \
          control, a write-ahead job journal with crash recovery, and live \
          trace streaming over a Unix-domain (or loopback TCP) socket")
    Term.(
      const run $ socket_arg
      $ tcp_port_arg ~doc:"Also listen on loopback TCP port $(docv)"
      $ jobs_arg $ max_queue_arg $ quota_arg $ drain_timeout_arg
      $ cache_dir_arg $ no_journal_arg $ journal_fsync_arg $ chaos_arg
      $ retries_arg $ fuel_slice_arg $ trace_arg $ metrics_arg)

let fuel_arg_submit =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N" ~doc:"Instruction bound per job")

let deadline_arg_submit =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS" ~doc:"Wall-clock deadline per job")

let submit_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"UC source file to submit inline")
  in
  let corpus_arg =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:"Submit every built-in corpus program (like $(b,ucc batch))")
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME"
          ~doc:"Job name for $(i,FILE) (default: its basename)")
  in
  let wait_arg =
    Arg.(
      value & flag
      & info [ "wait" ]
          ~doc:
            "Wait for results and print report rows (JSON lines, submission \
             order) to stdout")
  in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Subscribe to the live trace stream; events for this session's \
             jobs print to stderr as JSON lines")
  in
  let tenant_arg =
    Arg.(
      value
      & opt string "anonymous"
      & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant identity for admission")
  in
  let priority_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("low", Ucd.Proto.Low);
               ("normal", Ucd.Proto.Normal);
               ("high", Ucd.Proto.High);
             ])
          Ucd.Proto.Normal
      & info [ "priority" ] ~docv:"CLASS"
          ~doc:
            "$(b,low), $(b,normal) or $(b,high); low-priority jobs shed \
             first under queue pressure")
  in
  let server_stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print server statistics (JSON) to stderr")
  in
  let drain_flag =
    Arg.(
      value & flag
      & info [ "drain" ]
          ~doc:"Ask the server to drain and shut down gracefully")
  in
  let reconnect_flag =
    Arg.(
      value & flag
      & info [ "reconnect" ]
          ~doc:
            "Survive daemon restarts and dropped connections: dial again \
             with capped backoff and resubmit unfinished jobs by content \
             digest (the server deduplicates in-flight digests, so nothing \
             runs twice)")
  in
  let run file socket tcp corpus name wait_for_reports trace tenant priority
      want_stats want_drain reconnect options seed fuel deadline faults retries
      tune =
    let addr =
      match tcp with
      | Some port -> Ucd.Client.Tcp ("127.0.0.1", port)
      | None -> Ucd.Client.Unix_path socket
    in
    let fail msg =
      Printf.eprintf "ucc submit: error: %s\n" msg;
      1
    in
    (* job option surface → wire fields (ir_opt travels as its summary
       string, which config_of_string round-trips) *)
    let submit_of ~name ~source =
      let base = Ucd.Proto.submit_defaults ~name ~source in
      {
        base with
        Ucd.Proto.seed = Some seed;
        fuel;
        deadline;
        faults;
        retries = (if retries = 0 then None else Some retries);
        no_news = not options.Uc.Codegen.news_opt;
        no_procopt = not options.Uc.Codegen.procopt;
        no_mappings = not options.Uc.Codegen.use_mappings;
        no_cse = not options.Uc.Codegen.cse;
        ir_opt =
          (if options.Uc.Codegen.ir_opt = Cm.Iropt.default then None
           else Some (Cm.Iropt.config_summary options.Uc.Codegen.ir_opt));
        tune;
      }
    in
    let submits =
      match (file, corpus) with
      | Some _, true -> Error "pass either FILE or --corpus, not both"
      | Some path, false -> (
          match read_source path with
          | Error msg -> Error msg
          | Ok source ->
              let name =
                match name with
                | Some n -> n
                | None ->
                    Filename.remove_extension (Filename.basename path)
              in
              Ok [ submit_of ~name ~source:(Ucd.Proto.Inline source) ])
      | None, true ->
          Ok
            (List.map
               (fun (n, _) -> submit_of ~name:n ~source:(Ucd.Proto.Corpus n))
               Uc_programs.Programs.all_named)
      | None, false ->
          if want_stats || want_drain then Ok []
          else Error "nothing to do: pass FILE, --corpus, --stats or --drain"
    in
    match submits with
    | Error msg -> fail msg
    | Ok submits -> (
        let dial () =
          if reconnect then
            Ucd.Client.connect_retry ~attempts:12 ~tenant ~priority addr
          else Ucd.Client.connect ~tenant ~priority addr
        in
        match dial () with
        | Error msg -> fail msg
        | Ok c0 -> (
            let conn = ref c0 in
            let finally () = Ucd.Client.close !conn in
            Fun.protect ~finally @@ fun () ->
            let t0 = Unix.gettimeofday () in
            let n = List.length submits in
            let rows = Array.make (max n 1) None in
            let rejections = Array.make (max n 1) None in
            let acked = Array.make (max n 1) false in
            let job_index = Hashtbl.create 16 in
            (* a fast job's report frame can overtake its accepted frame
               (worker thread vs reader thread); park it and re-match
               once the ack arrives *)
            let orphans = ref [] in
            let protocol_error = ref None in
            let place job row =
              match Hashtbl.find_opt job_index job with
              | Some i when i < Array.length rows -> rows.(i) <- Some row
              | _ -> orphans := (job, row) :: !orphans
            in
            let ack client_ref job =
              Option.iter
                (fun r ->
                  match int_of_string_opt r with
                  | Some i when i < Array.length acked ->
                      acked.(i) <- true;
                      Hashtbl.replace job_index job i;
                      let mine, rest =
                        List.partition (fun (j, _) -> j = job) !orphans
                      in
                      orphans := rest;
                      List.iter (fun (j, row) -> place j row) mine
                  | _ -> ())
                client_ref
            in
            (* any frame not awaited by an rpc helper lands here *)
            let on_frame = function
              | Ucd.Proto.Accepted { client_ref; job; digest = _ }
              | Ucd.Proto.Resumed { client_ref; job; digest = _ } ->
                  ack client_ref job
              | Ucd.Proto.Rejected { client_ref; code; msg } ->
                  let tag = Ucd.Proto.code_string code in
                  Printf.eprintf "ucc submit: rejected (%s): %s\n%!" tag msg;
                  Option.iter
                    (fun r ->
                      match int_of_string_opt r with
                      | Some i when i < Array.length rejections ->
                          acked.(i) <- true;
                          rejections.(i) <- Some (tag, msg)
                      | _ -> ())
                    client_ref
              | Ucd.Proto.Report { job; row } -> place job row
              | Ucd.Proto.Trace_event { job; event } ->
                  Printf.eprintf "%s\n%!"
                    (Ucd.Jsonu.to_string
                       (Ucd.Jsonu.Obj
                          [ ("job", Ucd.Jsonu.Int job); ("trace", event) ]))
              | Ucd.Proto.Error { code; msg } ->
                  protocol_error :=
                    Some (Printf.sprintf "%s: %s" (Ucd.Proto.code_string code) msg)
              | Ucd.Proto.Shutdown { msg } ->
                  if reconnect then
                    (* the EOF that follows triggers the reattach *)
                    Printf.eprintf "ucc submit: server restarting: %s\n%!" msg
                  else protocol_error := Some ("server shut down: " ^ msg)
              | _ -> ()
            in
            let ( let* ) r f =
              match r with Error e -> Error e | Ok v -> f v
            in
            let unfinished i = rows.(i) = None && rejections.(i) = None in
            let send_submits which =
              List.fold_left
                (fun acc (i, s) ->
                  let* () = acc in
                  if which i then
                    Ucd.Client.send !conn
                      (Ucd.Proto.Submit
                         {
                           s with
                           Ucd.Proto.client_ref = Some (string_of_int i);
                         })
                  else Ok ())
                (Ok ())
                (List.mapi (fun i s -> (i, s)) submits)
            in
            let set_trace_on () =
              if trace then
                Result.map ignore
                  (Ucd.Client.set_trace ~other:on_frame !conn true)
              else Ok ()
            in
            (* the connection died: dial again with backoff and resubmit
               everything unfinished — the server's digest dedup turns
               each resubmission into an attach to the still-running job
               (or a cache hit), never a second run *)
            let reattach () =
              Ucd.Client.close !conn;
              let* c =
                Ucd.Client.connect_retry ~attempts:12 ~tenant ~priority addr
              in
              conn := c;
              (* job ids do not survive a restart; digests do *)
              Hashtbl.reset job_index;
              orphans := [];
              for i = 0 to n - 1 do
                if unfinished i then acked.(i) <- false
              done;
              let* () = set_trace_on () in
              send_submits unfinished
            in
            let pump_until done_ =
              let rec go () =
                if done_ () || !protocol_error <> None then Ok ()
                else
                  match Ucd.Client.recv !conn with
                  | Ok msg ->
                      on_frame msg;
                      go ()
                  | Error e ->
                      if reconnect then
                        let* () = reattach () in
                        go ()
                      else Error e
              in
              go ()
            in
            let all_acked () =
              let ok = ref true in
              for i = 0 to n - 1 do
                if not acked.(i) then ok := false
              done;
              !ok
            in
            let all_finished () =
              let ok = ref true in
              for i = 0 to n - 1 do
                if unfinished i then ok := false
              done;
              !ok
            in
            let outcome =
              let* _ = set_trace_on () in
              let* _ = send_submits (fun _ -> true) in
              let* () = pump_until all_acked in
              let* () =
                if wait_for_reports then
                  pump_until (fun () -> all_acked () && all_finished ())
                else Ok ()
              in
              let* () =
                if want_stats then
                  let* stats = Ucd.Client.stats ~other:on_frame !conn in
                  Printf.eprintf "%s\n%!" (Ucd.Jsonu.to_string stats);
                  Ok ()
                else Ok ()
              in
              let* () =
                if want_drain then
                  let* in_flight = Ucd.Client.drain ~other:on_frame !conn in
                  Printf.eprintf
                    "ucc submit: server draining (%d job(s) in flight)\n%!"
                    in_flight;
                  Ok ()
                else Ok ()
              in
              Ok ()
            in
            match outcome with
            | Error msg -> fail msg
            | Ok () -> (
                match !protocol_error with
                | Some msg -> fail msg
                | None ->
                    let results = ref [] in
                    Array.iteri
                      (fun i row ->
                        if i < n then
                          match row with
                          | Some row -> (
                              print_endline (Ucd.Jsonu.to_string row);
                              match Ucd.Report.of_json row with
                              | Ok r -> results := r :: !results
                              | Error _ -> ())
                          | None -> ())
                      rows;
                    let results = List.rev !results in
                    let rejected =
                      Array.fold_left
                        (fun k r -> if r = None then k else k + 1)
                        0 rejections
                    in
                    if wait_for_reports && results <> [] then begin
                      let elapsed = Unix.gettimeofday () -. t0 in
                      Format.eprintf "submit: %a@." Ucd.Report.pp_summary
                        (Ucd.Report.summarize ~elapsed results)
                    end;
                    let summary =
                      Ucd.Report.summarize ~elapsed:0. results
                    in
                    if
                      rejected > 0
                      || summary.Ucd.Report.failed > 0
                      || summary.Ucd.Report.timeout > 0
                      || summary.Ucd.Report.faulted > 0
                    then 2
                    else 0)))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit jobs to a running $(b,ucc serve) daemon and stream back \
          reports and traces")
    Term.(
      const run $ file_arg $ socket_arg
      $ tcp_port_arg ~doc:"Connect to loopback TCP port $(docv) instead"
      $ corpus_arg $ name_arg $ wait_arg $ trace_flag $ tenant_arg
      $ priority_arg $ server_stats_flag $ drain_flag $ reconnect_flag
      $ options_args $ seed_arg $ fuel_arg_submit $ deadline_arg_submit
      $ faults_arg $ retries_arg $ tune_flag)

(* ---- tune ---- *)

(* Blank every map section out of [src] (spaces, newlines preserved so
   line numbers stay stable), using the token stream so comments and
   strings can't fool the scan. *)
let strip_map_sections src =
  let toks = Uc.Lexer.tokenize src in
  (* byte offset of each (line, col) *)
  let line_starts =
    let starts = ref [ 0 ] in
    String.iteri (fun i c -> if c = '\n' then starts := (i + 1) :: !starts) src;
    Array.of_list (List.rev !starts)
  in
  let offset_of (loc : Uc.Loc.t) =
    let line = min (max loc.Uc.Loc.line 1) (Array.length line_starts) in
    min (String.length src - 1) (line_starts.(line - 1) + loc.Uc.Loc.col - 1)
  in
  let buf = Bytes.of_string src in
  let n = Array.length toks in
  let stripped = ref false in
  let i = ref 0 in
  while !i < n do
    (match toks.(!i) with
    | Uc.Token.KW_MAP, start ->
        let j = ref (!i + 1) in
        while !j < n && fst toks.(!j) <> Uc.Token.LBRACE do incr j done;
        let depth = ref 0 and stop = ref None in
        while !j < n && !stop = None do
          (match fst toks.(!j) with
          | Uc.Token.LBRACE -> incr depth
          | Uc.Token.RBRACE ->
              decr depth;
              if !depth = 0 then stop := Some (snd toks.(!j))
          | _ -> ());
          incr j
        done;
        (match !stop with
        | Some close ->
            stripped := true;
            for k = offset_of start to offset_of close do
              if Bytes.get buf k <> '\n' then Bytes.set buf k ' '
            done
        | None -> ());
        i := !j
    | _ -> incr i)
  done;
  (Bytes.to_string buf, !stripped)

let layout_json = function
  | Uc.Mapping.Default -> Ucd.Jsonu.Str "default"
  | l -> Ucd.Jsonu.Str (Uc.Mapping.to_string l)

let tune_cmd =
  let apply_arg =
    Arg.(
      value & flag
      & info [ "apply" ]
          ~doc:
            "Rewrite $(docv) in place: existing map sections are removed \
             and the inferred one is appended")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output")
  in
  let run path options apply json =
    with_source path (fun src ->
        let r = Uc.Layoutsel.search_source ~options src in
        let raw_prog = Uc.Compile.parse_source src in
        let section = Uc.Mapping.emit_map_section raw_prog r.Uc.Layoutsel.table in
        (* the emitted section must re-parse to the same table before we
           print it, let alone write it back *)
        (match section with
        | Some text ->
            let stripped, _ = strip_map_sections src in
            let reparsed =
              Uc.Mapping.of_program
                (Uc.Parser.parse_program (stripped ^ "\n" ^ text))
            in
            if
              Uc.Mapping.table_to_string (Uc.Mapping.canonical reparsed)
              <> Uc.Mapping.table_to_string r.Uc.Layoutsel.table
            then
              failwith
                "internal error: emitted map section does not round-trip"
        | None -> ());
        if json then begin
          let open Ucd.Jsonu in
          let dp = r.Uc.Layoutsel.default_prediction in
          let cp = r.Uc.Layoutsel.chosen_prediction in
          print_endline
            (to_string
               (Obj
                  [
                    ("file", Str path);
                    ("digest", Str (Uc.Mapping.digest r.Uc.Layoutsel.table));
                    ("default_ns", Float r.Uc.Layoutsel.default_ns);
                    ("chosen_ns", Float r.Uc.Layoutsel.chosen_ns);
                    ( "default_ops",
                      Obj
                        [
                          ("router", Int dp.Uc.Commpat.p_router_ops);
                          ("news", Int dp.Uc.Commpat.p_news_ops);
                          ("exact", Bool dp.Uc.Commpat.p_exact);
                        ] );
                    ( "chosen_ops",
                      Obj
                        [
                          ("router", Int cp.Uc.Commpat.p_router_ops);
                          ("news", Int cp.Uc.Commpat.p_news_ops);
                          ("exact", Bool cp.Uc.Commpat.p_exact);
                        ] );
                    ( "arrays",
                      List
                        (List.map
                           (fun c ->
                             Obj
                               [
                                 ("name", Str c.Uc.Layoutsel.cname);
                                 ("layout", layout_json c.Uc.Layoutsel.clayout);
                                 ( "default_ns",
                                   Float c.Uc.Layoutsel.cdefault_ns );
                                 ("chosen_ns", Float c.Uc.Layoutsel.cchosen_ns);
                                 ("rationale", Str c.Uc.Layoutsel.crationale);
                               ])
                           r.Uc.Layoutsel.choices) );
                    ( "map_section",
                      match section with Some s -> Str s | None -> Str "" );
                  ]))
        end
        else begin
          let dp = r.Uc.Layoutsel.default_prediction in
          let cp = r.Uc.Layoutsel.chosen_prediction in
          Printf.printf "%s: predicted communication cost\n" path;
          Printf.printf "  default: %10.3f ms  (router %d, news %d%s)\n"
            (r.Uc.Layoutsel.default_ns /. 1e6)
            dp.Uc.Commpat.p_router_ops dp.Uc.Commpat.p_news_ops
            (if dp.Uc.Commpat.p_exact then "" else ", estimated");
          Printf.printf "  tuned:   %10.3f ms  (router %d, news %d%s)"
            (r.Uc.Layoutsel.chosen_ns /. 1e6)
            cp.Uc.Commpat.p_router_ops cp.Uc.Commpat.p_news_ops
            (if cp.Uc.Commpat.p_exact then "" else ", estimated");
          if r.Uc.Layoutsel.default_ns > 0. then
            Printf.printf "  [%.2fx]"
              (r.Uc.Layoutsel.default_ns
              /. Float.max r.Uc.Layoutsel.chosen_ns 1.);
          print_newline ();
          print_newline ();
          let w =
            List.fold_left
              (fun w c -> max w (String.length c.Uc.Layoutsel.cname))
              5 r.Uc.Layoutsel.choices
          in
          Printf.printf "  %-*s %-16s %s\n" w "array" "layout" "rationale";
          List.iter
            (fun c ->
              Printf.printf "  %-*s %-16s %s\n" w c.Uc.Layoutsel.cname
                (Uc.Mapping.to_string c.Uc.Layoutsel.clayout)
                c.Uc.Layoutsel.crationale)
            r.Uc.Layoutsel.choices;
          print_newline ();
          match section with
          | Some text -> print_string text
          | None ->
              print_endline
                "every array keeps the default layout; no map section needed"
        end;
        if apply then begin
          let stripped, had = strip_map_sections src in
          let new_src =
            match section with
            | Some text ->
                (* drop trailing blanks, keep one blank line before the
                   appended section *)
                String.concat ""
                  [ String.trim stripped; "\n\n"; text ]
            | None -> String.trim stripped ^ "\n"
          in
          if new_src <> src then begin
            let oc = open_out_bin path in
            output_string oc new_src;
            close_out oc;
            if not json then
              Printf.printf "%s: rewritten (%s%s)\n" path
                (match section with
                | Some _ -> "map section applied"
                | None -> "no map section")
                (if had then ", previous map sections removed" else "")
          end
          else if not json then Printf.printf "%s: already up to date\n" path
        end;
        0)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Infer a data layout: analyze every parallel access statically, \
          search candidate layouts per array against the calibrated cost \
          model, and print the best map section with a predicted-cost table")
    Term.(const run $ file_arg $ options_args $ apply_arg $ json_arg)

let status_cmd =
  let digest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "digest" ] ~docv:"MD5"
          ~doc:
            "Instead of the server snapshot, look up one job by its content \
             digest (prints state, and the report row when available)")
  in
  let run socket tcp digest =
    let addr =
      match tcp with
      | Some port -> Ucd.Client.Tcp ("127.0.0.1", port)
      | None -> Ucd.Client.Unix_path socket
    in
    match Ucd.Client.connect addr with
    | Error msg ->
        Printf.eprintf "ucc status: error: %s\n" msg;
        1
    | Ok c -> (
        Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
        match digest with
        | Some d -> (
            match Ucd.Client.status_digest c d with
            | Error msg ->
                Printf.eprintf "ucc status: error: %s\n" msg;
                1
            | Ok (state, row) ->
                print_endline
                  (Ucd.Jsonu.to_string
                     (Ucd.Jsonu.Obj
                        ([
                           ("digest", Ucd.Jsonu.Str d);
                           ("state", Ucd.Jsonu.Str state);
                         ]
                        @
                        match row with
                        | Some r -> [ ("row", r) ]
                        | None -> [])));
                if state = "unknown" then 1 else 0)
        | None -> (
            match Ucd.Client.server_status c with
            | Error msg ->
                Printf.eprintf "ucc status: error: %s\n" msg;
                1
            | Ok j ->
                print_endline (Ucd.Jsonu.to_string j);
                0))
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Query a running $(b,ucc serve) daemon: uptime, pool and queue \
          depth, journal lag and per-tenant quota usage (JSON to stdout); \
          or one job's state by content digest")
    Term.(
      const run $ socket_arg
      $ tcp_port_arg ~doc:"Connect to loopback TCP port $(docv) instead"
      $ digest_arg)

let () =
  let doc = "UC compiler for the simulated Connection Machine" in
  let info = Cmd.info "ucc" ~version:"1.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
    [ check_cmd; ast_cmd; paris_cmd; cstar_cmd; run_cmd; interp_cmd;
      examples_cmd; show_cmd; tune_cmd; batch_cmd; serve_cmd; submit_cmd;
      status_cmd ]))
