(** Sequential C implementation of the grid-shortest-path-with-obstacle
    benchmark (paper figures 8 and 11), with the SUN-4 cost model.

    The algorithm is the one the paper describes: every non-wall,
    non-goal cell repeatedly replaces its distance by 1 + the minimum of
    its four neighbours' distances until nothing changes.  The wall is
    the V-shaped obstacle of figure 11: the cells on the anti-diagonal
    within N/4 of the column centre. *)

type result = {
  dist : int array;        (** row-major; -1 marks wall cells *)
  iterations : int;
  ops : int;
  elapsed_seconds : float;
}

(** [run ~n ()] executes the plain-C variant; [optimized:true] models the
    [-O] build (fewer operations per cell visit, same result). *)
val run : ?optimized:bool -> n:int -> unit -> result

(** True when the cell is part of the obstacle. *)
val is_wall : n:int -> int -> int -> bool
