type t = { op_ns : float; mutable count : int }

let create ?(op_ns = 380.0) () = { op_ns; count = 0 }
let charge t n = t.count <- t.count + n
let ops t = t.count
let elapsed_seconds t = float_of_int t.count *. t.op_ns /. 1.0e9
