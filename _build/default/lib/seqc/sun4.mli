(** Operation-level cost model for the SUN-4 front end.

    The paper's figure 8 runs the sequential C program on the SUN-4
    workstation that also serves as the CM front end, once compiled
    plainly and once with [-O].  We count abstract C operations
    (arithmetic, comparisons, loads/stores, branches) and charge a fixed
    time per operation; the [-O] variant charges fewer operations per
    step (registers instead of reloads, strength-reduced indexing), the
    classic constant-factor effect of the optimizer. *)

type t

(** [create ()] makes a meter.  [op_ns] defaults to 380ns/operation,
    roughly a late-80s SUN-4 executing compiled C. *)
val create : ?op_ns:float -> unit -> t

(** [charge t n] records [n] abstract operations. *)
val charge : t -> int -> unit

val ops : t -> int
val elapsed_seconds : t -> float
