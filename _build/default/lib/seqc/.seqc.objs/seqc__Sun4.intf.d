lib/seqc/sun4.mli:
