lib/seqc/sun4.ml:
