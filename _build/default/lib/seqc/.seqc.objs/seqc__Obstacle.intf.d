lib/seqc/obstacle.mli:
