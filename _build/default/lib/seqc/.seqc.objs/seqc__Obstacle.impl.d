lib/seqc/obstacle.ml: Array Cm Sun4
