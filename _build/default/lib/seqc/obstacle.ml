let inf = Cm.Paris.inf_int

type result = {
  dist : int array;
  iterations : int;
  ops : int;
  elapsed_seconds : float;
}

let is_wall ~n i j = i + j = n - 1 && abs (i - (n / 2)) <= n / 4

(* Abstract C operations charged per cell visit each sweep.  The plain
   build reloads array elements and recomputes i*N+j index arithmetic on
   every access; -O keeps them in registers and strength-reduces the
   indexing.  Both figures include the loop bookkeeping. *)
let ops_per_cell ~optimized = if optimized then 16 else 45
let ops_per_row ~optimized = if optimized then 2 else 4

let run ?(optimized = false) ~n () =
  let meter = Sun4.create () in
  let wall = Array.init (n * n) (fun p -> is_wall ~n (p / n) (p mod n)) in
  let d = Array.make (n * n) 0 in
  let d' = Array.make (n * n) 0 in
  Array.iteri (fun p w -> if w then d.(p) <- -1) wall;
  let iterations = ref 0 in
  let changed = ref true in
  let cell_cost = ops_per_cell ~optimized in
  let row_cost = ops_per_row ~optimized in
  while !changed do
    changed := false;
    incr iterations;
    for i = 0 to n - 1 do
      Sun4.charge meter row_cost;
      for j = 0 to n - 1 do
        Sun4.charge meter cell_cost;
        let p = (i * n) + j in
        if wall.(p) then d'.(p) <- -1
        else if i = 0 && j = 0 then d'.(p) <- 0
        else begin
          let best = ref inf in
          let look i' j' =
            if i' >= 0 && i' < n && j' >= 0 && j' < n then begin
              let q = (i' * n) + j' in
              if (not wall.(q)) && d.(q) < !best then best := d.(q)
            end
          in
          look (i - 1) j;
          look (i + 1) j;
          look i (j - 1);
          look i (j + 1);
          let v = !best + 1 in
          if v <> d.(p) then changed := true;
          d'.(p) <- v
        end
      done
    done;
    Array.blit d' 0 d 0 (n * n)
  done;
  {
    dist = Array.copy d;
    iterations = !iterations;
    ops = Sun4.ops meter;
    elapsed_seconds = Sun4.elapsed_seconds meter;
  }
