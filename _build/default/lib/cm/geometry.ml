type t = { dims : int array; size : int }

let create dims =
  if dims = [] then invalid_arg "Geometry.create: empty dimension list";
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Geometry.create: non-positive extent")
    dims;
  let dims = Array.of_list dims in
  { dims; size = Array.fold_left ( * ) 1 dims }

let dims g = Array.to_list g.dims

let dim g axis =
  if axis < 0 || axis >= Array.length g.dims then
    invalid_arg "Geometry.dim: axis out of range";
  g.dims.(axis)

let rank g = Array.length g.dims
let size g = g.size

let linearize g coords =
  let n = Array.length g.dims in
  if Array.length coords <> n then invalid_arg "Geometry.linearize: rank mismatch";
  let rec go i acc =
    if i >= n then acc
    else begin
      let c = coords.(i) in
      if c < 0 || c >= g.dims.(i) then
        invalid_arg "Geometry.linearize: coordinate out of range";
      go (i + 1) ((acc * g.dims.(i)) + c)
    end
  in
  go 0 0

let coords g addr =
  if addr < 0 || addr >= g.size then invalid_arg "Geometry.coords: address out of range";
  let n = Array.length g.dims in
  let out = Array.make n 0 in
  let rec go i rem =
    if i < 0 then ()
    else begin
      out.(i) <- rem mod g.dims.(i);
      go (i - 1) (rem / g.dims.(i))
    end
  in
  go (n - 1) addr;
  out

let strides g =
  let n = Array.length g.dims in
  let out = Array.make n 1 in
  for i = n - 2 downto 0 do
    out.(i) <- out.(i + 1) * g.dims.(i + 1)
  done;
  out

let concat outer inner = create (dims outer @ dims inner)

let is_prefix_of outer whole =
  let od = outer.dims and wd = whole.dims in
  Array.length od <= Array.length wd
  && (let ok = ref true in
      Array.iteri (fun i d -> if wd.(i) <> d then ok := false) od;
      !ok)

let equal a b = a.dims = b.dims

let pp fmt g =
  Format.fprintf fmt "[%s]"
    (String.concat "x" (List.map string_of_int (dims g)))
