let inclusive op a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n a.(0) in
    for i = 1 to n - 1 do
      out.(i) <- op out.(i - 1) a.(i)
    done;
    out
  end

let exclusive op identity a =
  let n = Array.length a in
  let out = Array.make n identity in
  let acc = ref identity in
  for i = 0 to n - 1 do
    out.(i) <- !acc;
    acc := op !acc a.(i)
  done;
  out

let reduce op identity a = Array.fold_left op identity a

let masked_reduce op identity mask a =
  if Array.length mask <> Array.length a then
    invalid_arg "Scan.masked_reduce: length mismatch";
  let acc = ref identity in
  Array.iteri (fun i x -> if mask.(i) then acc := op !acc x) a;
  !acc

let reduce_trailing_axes g ~outer_size op identity mask a =
  let total = Geometry.size g in
  if Array.length a <> total then
    invalid_arg "Scan.reduce_trailing_axes: field size mismatch";
  if outer_size <= 0 || total mod outer_size <> 0 then
    invalid_arg "Scan.reduce_trailing_axes: outer size does not divide";
  let inner = total / outer_size in
  Array.init outer_size (fun o ->
      let acc = ref identity in
      for k = 0 to inner - 1 do
        let idx = (o * inner) + k in
        if mask.(idx) then acc := op !acc a.(idx)
      done;
      !acc)

let scan_axis g axis op a =
  let total = Geometry.size g in
  if Array.length a <> total then invalid_arg "Scan.scan_axis: field size mismatch";
  if axis < 0 || axis >= Geometry.rank g then
    invalid_arg "Scan.scan_axis: axis out of range";
  let strides = Geometry.strides g in
  let stride = strides.(axis) in
  let extent = Geometry.dim g axis in
  let out = Array.copy a in
  (* Walk every 1-D lane along [axis]: a lane is identified by a base
     address whose coordinate on [axis] is zero. *)
  for base = 0 to total - 1 do
    let coord = base / stride mod extent in
    if coord = 0 then
      for k = 1 to extent - 1 do
        let idx = base + (k * stride) in
        out.(idx) <- op out.(idx - stride) a.(idx)
      done
  done;
  out
