type params = {
  physical_procs : int;
  issue_ns : float;
  fe_op_ns : float;
  pe_op_ns : float;
  context_ns : float;
  news_ns : float;
  router_ns : float;
  scan_ns : float;
  fe_cm_ns : float;
}

let cm2_16k =
  {
    physical_procs = 16384;
    issue_ns = 1.0e5;     (* 0.1 ms front-end dispatch per macro-instruction *)
    fe_op_ns = 1.0e3;     (* 1 us scalar op on the SUN-4 front end *)
    pe_op_ns = 5.0e4;     (* 50 us bit-serial 32-bit ALU sweep *)
    context_ns = 2.0e4;
    news_ns = 1.5e5;      (* 0.15 ms NEWS shift *)
    router_ns = 1.2e6;    (* 1.2 ms general-router collective op *)
    scan_ns = 8.0e5;      (* 0.8 ms scan / global reduce *)
    fe_cm_ns = 1.0e5;     (* 0.1 ms single-element transfer *)
  }

type meter = {
  params : params;
  mutable elapsed_ns : float;
  mutable fe_ops : int;
  mutable pe_ops : int;
  mutable context_ops : int;
  mutable news_ops : int;
  mutable router_ops : int;
  mutable router_messages : int;
  mutable reductions : int;
  mutable scans : int;
  mutable fe_cm_transfers : int;
}

let meter params =
  {
    params;
    elapsed_ns = 0.0;
    fe_ops = 0;
    pe_ops = 0;
    context_ops = 0;
    news_ops = 0;
    router_ops = 0;
    router_messages = 0;
    reductions = 0;
    scans = 0;
    fe_cm_transfers = 0;
  }

let vp_ratio p n =
  if n <= 0 then 1 else max 1 ((n + p.physical_procs - 1) / p.physical_procs)

let ratio m size = float_of_int (vp_ratio m.params size)

let charge_fe m =
  m.fe_ops <- m.fe_ops + 1;
  m.elapsed_ns <- m.elapsed_ns +. m.params.fe_op_ns

let charge_pe m ~size =
  m.pe_ops <- m.pe_ops + 1;
  m.elapsed_ns <-
    m.elapsed_ns +. m.params.issue_ns +. (m.params.pe_op_ns *. ratio m size)

let charge_context m ~size =
  m.context_ops <- m.context_ops + 1;
  m.elapsed_ns <-
    m.elapsed_ns +. m.params.issue_ns +. (m.params.context_ns *. ratio m size)

let charge_news m ~size =
  m.news_ops <- m.news_ops + 1;
  m.elapsed_ns <-
    m.elapsed_ns +. m.params.issue_ns +. (m.params.news_ns *. ratio m size)

let log2f x = if x <= 1 then 0.0 else log (float_of_int x) /. log 2.0

let charge_router m ~size ~messages ~max_fanin =
  m.router_ops <- m.router_ops + 1;
  m.router_messages <- m.router_messages + messages;
  let congestion = 1.0 +. log2f max_fanin in
  m.elapsed_ns <-
    m.elapsed_ns
    +. m.params.issue_ns
    +. (m.params.router_ns *. ratio m size *. congestion)

let charge_reduce m ~size =
  m.reductions <- m.reductions + 1;
  m.elapsed_ns <-
    m.elapsed_ns +. m.params.issue_ns +. (m.params.scan_ns *. ratio m size)

let charge_scan m ~size =
  m.scans <- m.scans + 1;
  m.elapsed_ns <-
    m.elapsed_ns +. m.params.issue_ns +. (m.params.scan_ns *. ratio m size)

let charge_fe_cm m =
  m.fe_cm_transfers <- m.fe_cm_transfers + 1;
  m.elapsed_ns <- m.elapsed_ns +. m.params.fe_cm_ns

let elapsed_seconds m = m.elapsed_ns /. 1.0e9

let pp_meter fmt m =
  Format.fprintf fmt
    "@[<v>elapsed: %.6f s@ fe ops: %d@ pe ops: %d@ context ops: %d@ news \
     ops: %d@ router ops: %d (messages: %d)@ reductions: %d@ scans: %d@ \
     fe<->cm transfers: %d@]"
    (elapsed_seconds m) m.fe_ops m.pe_ops m.context_ops m.news_ops
    m.router_ops m.router_messages m.reductions m.scans m.fe_cm_transfers
