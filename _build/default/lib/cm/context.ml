type t = { n : int; mutable stack : bool array list }

let create n =
  if n < 0 then invalid_arg "Context.create: negative size";
  { n; stack = [ Array.make n true ] }

let size c = c.n

let top c =
  match c.stack with
  | [] -> assert false
  | flags :: _ -> flags

let active c = top c
let is_active c p = (top c).(p)

let count_active c =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (top c)

let push c = c.stack <- Array.copy (top c) :: c.stack

let land_mask c m =
  if Array.length m <> c.n then invalid_arg "Context.land_mask: size mismatch";
  let flags = top c in
  for i = 0 to c.n - 1 do
    flags.(i) <- flags.(i) && m.(i)
  done

let pop c =
  match c.stack with
  | [] | [ _ ] -> failwith "Context.pop: base context"
  | _ :: rest -> c.stack <- rest

let depth c = List.length c.stack
let reset c = c.stack <- [ Array.make c.n true ]
