(** Execution engine for {!Paris} programs.

    A machine instance owns the storage for one program: front-end
    registers, per-VP fields, per-VP-set activity contexts, a deterministic
    random-number generator and a {!Cost.meter}.  Inputs may be loaded into
    fields before {!run}; results are read back from fields or registers
    afterwards. *)

(** Raised on any dynamic error: kind mismatch, address out of range,
    conflicting parallel assignment, missing [Cwith], division by zero,
    or fuel exhaustion. *)
exception Error of string

type t

(** [create ?cost ?seed ?fuel program] allocates storage for [program].
    [fuel] bounds the number of executed instructions (default 50M);
    [seed] initializes the deterministic LCG used by [rand]. *)
val create :
  ?cost:Cost.params -> ?seed:int -> ?fuel:int -> Paris.program -> t

val program : t -> Paris.program

(** Execute from the first instruction to [Halt] (or the end of code).
    @raise Error on any dynamic fault. *)
val run : t -> unit

val reg : t -> int -> Paris.scalar
val reg_int : t -> int -> int
val reg_float : t -> int -> float

(** Copy a field's contents out of the machine. *)
val field_ints : t -> int -> int array
val field_floats : t -> int -> float array

(** Load data into a field (length must match the VP-set size). *)
val set_field_ints : t -> int -> int array -> unit
val set_field_floats : t -> int -> float array -> unit

val meter : t -> Cost.meter

(** Lines appended by [Fprint] instructions, in program order. *)
val output : t -> string list

(** Simulated seconds attributed to each [Region] marker, largest first.
    Cost incurred before the first marker lands in ["(startup)"]. *)
val regions : t -> (string * float) list

(** Simulated elapsed seconds so far. *)
val elapsed_seconds : t -> float
