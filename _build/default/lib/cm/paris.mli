(** Paris-like intermediate representation.

    This is the "assembly language" of the simulated Connection Machine,
    loosely modelled on Thinking Machines' Paris instruction set.  A program
    runs on the front end (scalar registers, labels, branches) and issues
    parallel macro-instructions that operate elementwise on {e fields}
    (per-VP memory) of the currently selected VP set, under that set's
    activity context.

    Both the UC compiler and the C* baseline generate this IR; the
    {!Machine} module executes it and charges simulated time. *)

(** Element kind of a field or scalar. *)
type kind = KInt | KFloat

type binop =
  | Add | Sub | Mul | Div | Mod
  | Min | Max
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor            (** logical, 0/1-valued *)
  | Band | Bor | Bxor | Shl | Shr
  | Any                   (** reduction/combine only: an arbitrary operand *)

type unop = Neg | Lnot | Bnot | ToFloat | ToInt | Abs

type scalar = SInt of int | SFloat of float

(** Instruction operand: a front-end register, an immediate, or (for
    parallel instructions only) a field of the current VP set. *)
type operand = Reg of int | Imm of scalar | Fld of int

(** Combining rule for router sends. *)
type combine =
  | Ccheck  (** overwrite; distinct values to one destination are an error
                (UC single-assignment rule) *)
  | Cover   (** overwrite, arbitrary winner (the [$,] operator) *)
  | Cadd | Cmin | Cmax | Cor | Cand | Cxor

type instr =
  (* ---- front end ---- *)
  | Fmov of int * operand                  (** reg := scalar *)
  | Fbin of binop * int * operand * operand
  | Funop of unop * int * operand
  | Frand of int * operand                 (** reg := lcg () mod operand *)
  | Fread of int * int * operand           (** reg := field.(addr) *)
  | Fwrite of int * operand * operand      (** field.(addr) := value *)
  | Jmp of int
  | Jz of operand * int                    (** branch if operand = 0 *)
  | Jnz of operand * int
  | Label of int
  | Halt
  | Comment of string                      (** no-op; free *)
  | Region of string                       (** no-op; subsequent cost is
                                               attributed to this region in
                                               the machine's profile *)
  | Fprint of string * operand option     (** append to the output log; free *)
  (* ---- parallel (current VP set, under context) ---- *)
  | Pmov of int * operand                  (** field := broadcast/copy *)
  | Pbin of binop * int * operand * operand
  | Punop of unop * int * operand
  | Pcoord of int * int                    (** field := own coordinate on axis *)
  | Ptable of int * int array              (** field := compile-time table
                                               (loaded with the program) *)
  | Prand of int * operand                 (** field := lcg () mod operand *)
  | Psel of int * operand * operand * operand  (** dst := cond ? a : b *)
  | Pget of int * int * int                (** dst := src.(addr); router *)
  | Psend of int * int * int * combine     (** dst.(addr) ⊕= src; router *)
  | Pnews of int * int * int * int         (** dst, src, axis, delta: grid shift *)
  | Preduce of binop * int * int           (** reg := reduce over active of field *)
  | Pcount of int                          (** reg := number of active VPs *)
  | Preduce_axis of binop * int * int      (** dst field (outer set) := reduce
                                               src field over trailing axes *)
  | Pscan of binop * int * int * int       (** dst := scan src along axis *)
  (* ---- VP set / context ---- *)
  | Cwith of int                           (** select current VP set *)
  | Cpush
  | Cand of int                            (** context &= (field <> 0) *)
  | Cpop
  | Creset                                 (** reset context of current set *)
  | Cread of int                           (** field := context flag as 0/1
                                               (written for all VPs) *)

(** A complete program.  VP set [i] has geometry [geoms.(i)]; field [i]
    lives on VP set [fst fields.(i)] with kind [snd fields.(i)]. *)
type program = {
  name : string;
  geoms : Geometry.t array;
  fields : (int * kind) array;
  nregs : int;
  nlabels : int;
  code : instr array;
}

(** Identity element of a reduction operator (paper table in section 3.2).
    @raise Invalid_argument for non-reducible operators. *)
val identity : binop -> kind -> scalar

(** The UC predefined constant INF, as an int (floats use [infinity]). *)
val inf_int : int

val binop_name : binop -> string
val pp_binop : Format.formatter -> binop -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit

(** Incremental program construction, used by both code generators. *)
module Builder : sig
  type t

  val create : string -> t

  (** Allocate a VP set; returns its id. *)
  val vpset : t -> Geometry.t -> int

  (** Allocate a field on a VP set; returns its id. *)
  val field : t -> vpset:int -> kind -> int

  (** Allocate a fresh front-end register. *)
  val reg : t -> int

  (** Allocate a fresh label id (place it later with {!place}). *)
  val label : t -> int

  val emit : t -> instr -> unit
  val place : t -> int -> unit

  (** Geometry of a VP set already allocated in this builder. *)
  val geom_of : t -> int -> Geometry.t

  (** VP set and kind of a field already allocated in this builder. *)
  val field_info : t -> int -> int * kind

  val finish : t -> program
end
