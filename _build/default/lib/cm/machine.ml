open Paris

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type fdata = FInt of int array | FFloat of float array

type t = {
  prog : program;
  meter : Cost.meter;
  regs : scalar array;
  fields : fdata array;
  contexts : Context.t array;
  labels : int array;  (* label id -> code index *)
  mutable cur : int;   (* current VP set, -1 before the first Cwith *)
  mutable rand_state : int;
  mutable fuel : int;
  mutable output : string list;  (* reversed *)
  mutable region : string;
  regions : (string, float) Hashtbl.t;  (* region -> elapsed ns *)
}

let resolve_labels prog =
  let labels = Array.make (max prog.nlabels 1) (-1) in
  Array.iteri
    (fun i instr ->
      match instr with
      | Label l ->
          if l < 0 || l >= prog.nlabels then error "undeclared label L%d" l;
          labels.(l) <- i
      | _ -> ())
    prog.code;
  labels

let create ?(cost = Cost.cm2_16k) ?(seed = 12345) ?(fuel = 50_000_000) prog =
  let fields =
    Array.map
      (fun (vp, kind) ->
        let n = Geometry.size prog.geoms.(vp) in
        match kind with
        | KInt -> FInt (Array.make n 0)
        | KFloat -> FFloat (Array.make n 0.0))
      prog.fields
  in
  let contexts =
    Array.map (fun g -> Context.create (Geometry.size g)) prog.geoms
  in
  {
    prog;
    meter = Cost.meter cost;
    regs = Array.make (max prog.nregs 1) (SInt 0);
    fields;
    contexts;
    labels = resolve_labels prog;
    cur = -1;
    rand_state = seed land 0x3FFFFFFF;
    fuel;
    output = [];
    region = "(startup)";
    regions = Hashtbl.create 16;
  }

let output m = List.rev m.output

let regions m =
  Hashtbl.fold (fun name ns acc -> (name, ns /. 1.0e9) :: acc) m.regions []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let program m = m.prog
let meter m = m.meter
let elapsed_seconds m = Cost.elapsed_seconds m.meter

(* ---- scalar helpers ---- *)

let to_int = function
  | SInt i -> i
  | SFloat _ -> error "expected an int scalar, got a float"

let to_float = function SInt i -> float_of_int i | SFloat f -> f
let truthy = function SInt i -> i <> 0 | SFloat f -> f <> 0.0

let lcg m =
  m.rand_state <- ((m.rand_state * 1103515245) + 12345) land 0x3FFFFFFF;
  m.rand_state

let rand_mod m modulus =
  if modulus <= 0 then error "rand: non-positive modulus %d" modulus;
  lcg m mod modulus

(* ---- operator tables ---- *)

let int_binop = function
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Div -> fun a b -> if b = 0 then error "division by zero" else a / b
  | Mod -> fun a b -> if b = 0 then error "modulo by zero" else a mod b
  | Min -> min
  | Max -> max
  | Land -> fun a b -> if a <> 0 && b <> 0 then 1 else 0
  | Lor -> fun a b -> if a <> 0 || b <> 0 then 1 else 0
  | Band -> ( land )
  | Bor -> ( lor )
  | Bxor -> ( lxor )
  | Shl -> ( lsl )
  | Shr -> ( asr )
  | Eq -> fun a b -> if a = b then 1 else 0
  | Ne -> fun a b -> if a <> b then 1 else 0
  | Lt -> fun a b -> if a < b then 1 else 0
  | Le -> fun a b -> if a <= b then 1 else 0
  | Gt -> fun a b -> if a > b then 1 else 0
  | Ge -> fun a b -> if a >= b then 1 else 0
  | Any -> error "'any' is only valid in reductions"

let float_binop = function
  | Add -> ( +. )
  | Sub -> ( -. )
  | Mul -> ( *. )
  | Div -> ( /. )
  | Mod -> Float.rem
  | Min -> Float.min
  | Max -> Float.max
  | op -> error "operator %s is not valid on floats" (Paris.binop_name op)

let is_cmp = function Eq | Ne | Lt | Le | Gt | Ge -> true | _ -> false

let float_cmp = function
  | Eq -> ( = )
  | Ne -> ( <> )
  | Lt -> ( < )
  | Le -> ( <= )
  | Gt -> ( > )
  | Ge -> ( >= )
  | _ -> assert false

(* ---- front-end evaluation ---- *)

let fe_val m = function
  | Reg r -> m.regs.(r)
  | Imm s -> s
  | Fld f -> error "field f%d used as a front-end operand" f

let fe_bin op a b =
  if is_cmp op then SInt (if float_cmp op (to_float a) (to_float b) then 1 else 0)
  else
    match op with
    | Land -> SInt (if truthy a && truthy b then 1 else 0)
    | Lor -> SInt (if truthy a || truthy b then 1 else 0)
    | Band | Bor | Bxor | Shl | Shr -> SInt (int_binop op (to_int a) (to_int b))
    | Add | Sub | Mul | Div | Mod | Min | Max -> (
        match a, b with
        | SInt x, SInt y -> SInt (int_binop op x y)
        | _ -> SFloat (float_binop op (to_float a) (to_float b)))
    | Any -> error "'any' is only valid in reductions"
    | Eq | Ne | Lt | Le | Gt | Ge -> assert false

let fe_unop op a =
  match op with
  | Neg -> (match a with SInt i -> SInt (-i) | SFloat f -> SFloat (-.f))
  | Lnot -> SInt (if truthy a then 0 else 1)
  | Bnot -> SInt (lnot (to_int a))
  | ToFloat -> SFloat (to_float a)
  | ToInt -> (match a with SInt i -> SInt i | SFloat f -> SInt (int_of_float f))
  | Abs -> (
      match a with SInt i -> SInt (abs i) | SFloat f -> SFloat (Float.abs f))

(* ---- field access ---- *)

let field_data m f =
  if f < 0 || f >= Array.length m.fields then error "unknown field f%d" f;
  m.fields.(f)

let field_vpset m f = fst m.prog.fields.(f)

let field_ints m f =
  match field_data m f with
  | FInt a -> Array.copy a
  | FFloat _ -> error "field f%d is a float field" f

let field_floats m f =
  match field_data m f with
  | FFloat a -> Array.copy a
  | FInt _ -> error "field f%d is an int field" f

let set_field_ints m f data =
  match field_data m f with
  | FInt a ->
      if Array.length data <> Array.length a then
        error "set_field_ints: length mismatch on f%d" f;
      Array.blit data 0 a 0 (Array.length a)
  | FFloat _ -> error "field f%d is a float field" f

let set_field_floats m f data =
  match field_data m f with
  | FFloat a ->
      if Array.length data <> Array.length a then
        error "set_field_floats: length mismatch on f%d" f;
      Array.blit data 0 a 0 (Array.length a)
  | FInt _ -> error "field f%d is an int field" f

let reg m r = m.regs.(r)
let reg_int m r = to_int m.regs.(r)
let reg_float m r = to_float m.regs.(r)

(* ---- parallel evaluation helpers ---- *)

let cur_vp m = if m.cur < 0 then error "no VP set selected (missing Cwith)" else m.cur
let cur_geom m = m.prog.geoms.(cur_vp m)
let cur_size m = Geometry.size (cur_geom m)
let cur_ctx m = m.contexts.(cur_vp m)

let check_on_current m f what =
  if field_vpset m f <> cur_vp m then
    error "%s: field f%d is not on the current VP set vp%d" what f (cur_vp m)

(* Elementwise int getter for a parallel operand on the current VP set. *)
let geti m op : int -> int =
  match op with
  | Reg r ->
      let v = to_int m.regs.(r) in
      fun _ -> v
  | Imm (SInt v) -> fun _ -> v
  | Imm (SFloat _) -> error "float immediate in int parallel context"
  | Fld f -> (
      check_on_current m f "operand";
      match field_data m f with
      | FInt a -> Array.get a
      | FFloat _ -> error "float field f%d in int parallel context" f)

(* Elementwise float getter (ints are coerced). *)
let getf m op : int -> float =
  match op with
  | Reg r ->
      let v = to_float m.regs.(r) in
      fun _ -> v
  | Imm s ->
      let v = to_float s in
      fun _ -> v
  | Fld f -> (
      check_on_current m f "operand";
      match field_data m f with
      | FInt a -> fun p -> float_of_int a.(p)
      | FFloat a -> Array.get a)

(* Whether an operand is float-kinded (fields by declaration, scalars by
   their runtime value). *)
let operand_is_float m = function
  | Reg r -> ( match m.regs.(r) with SFloat _ -> true | SInt _ -> false)
  | Imm (SFloat _) -> true
  | Imm (SInt _) -> false
  | Fld f -> ( match field_data m f with FFloat _ -> true | FInt _ -> false)

let exec_pmov m dst a =
  check_on_current m dst "pmov";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out ->
      let g = geti m a in
      Array.iteri (fun p act -> if act then out.(p) <- g p) mask
  | FFloat out ->
      let g = getf m a in
      Array.iteri (fun p act -> if act then out.(p) <- g p) mask

let exec_pbin m op dst a b =
  check_on_current m dst "pbin";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out ->
      if is_cmp op && (operand_is_float m a || operand_is_float m b) then begin
        let fa = getf m a and fb = getf m b in
        let cmp = float_cmp op in
        Array.iteri
          (fun p act -> if act then out.(p) <- (if cmp (fa p) (fb p) then 1 else 0))
          mask
      end
      else begin
        let f = int_binop op in
        let ia = geti m a and ib = geti m b in
        Array.iteri (fun p act -> if act then out.(p) <- f (ia p) (ib p)) mask
      end
  | FFloat out ->
      let f = float_binop op in
      let fa = getf m a and fb = getf m b in
      Array.iteri (fun p act -> if act then out.(p) <- f (fa p) (fb p)) mask

let exec_punop m op dst a =
  check_on_current m dst "punop";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst, op with
  | FInt out, ToInt ->
      let fa = getf m a in
      Array.iteri
        (fun p act -> if act then out.(p) <- int_of_float (fa p))
        mask
  | FInt out, _ ->
      let ia = geti m a in
      let f =
        match op with
        | Neg -> fun x -> -x
        | Lnot -> fun x -> if x = 0 then 1 else 0
        | Bnot -> lnot
        | Abs -> abs
        | ToInt -> assert false
        | ToFloat -> error "tofloat into an int field"
      in
      Array.iteri (fun p act -> if act then out.(p) <- f (ia p)) mask
  | FFloat out, _ ->
      let fa = getf m a in
      let f =
        match op with
        | Neg -> ( ~-. )
        | Abs -> Float.abs
        | ToFloat -> fun x -> x
        | Lnot | Bnot | ToInt -> error "integer unop into a float field"
      in
      Array.iteri (fun p act -> if act then out.(p) <- f (fa p)) mask

let exec_pcoord m dst axis =
  check_on_current m dst "pcoord";
  let g = cur_geom m in
  if axis < 0 || axis >= Geometry.rank g then error "pcoord: bad axis %d" axis;
  let stride = (Geometry.strides g).(axis) in
  let extent = Geometry.dim g axis in
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out ->
      Array.iteri
        (fun p act -> if act then out.(p) <- p / stride mod extent)
        mask
  | FFloat _ -> error "pcoord into a float field"

let exec_ptable m dst table =
  (* compile-time constant data: loaded with the program, charged as one
     elementwise move; written regardless of context *)
  check_on_current m dst "ptable";
  if Array.length table <> cur_size m then
    error "ptable: table length does not match the VP set";
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out -> Array.blit table 0 out 0 (Array.length out)
  | FFloat _ -> error "ptable into a float field"

let exec_prand m dst modulus =
  check_on_current m dst "prand";
  let modv = to_int (fe_val m modulus) in
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out ->
      Array.iteri (fun p act -> if act then out.(p) <- rand_mod m modv) mask
  | FFloat _ -> error "prand into a float field"

let exec_psel m dst c a b =
  check_on_current m dst "psel";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  let fc = getf m c in
  match field_data m dst with
  | FInt out ->
      let ia = geti m a and ib = geti m b in
      Array.iteri
        (fun p act -> if act then out.(p) <- (if fc p <> 0.0 then ia p else ib p))
        mask
  | FFloat out ->
      let fa = getf m a and fb = getf m b in
      Array.iteri
        (fun p act -> if act then out.(p) <- (if fc p <> 0.0 then fa p else fb p))
        mask

let addr_array m f =
  check_on_current m f "address";
  match field_data m f with
  | FInt a -> a
  | FFloat _ -> error "address field f%d must be an int field" f

let exec_pget m dst src addr =
  check_on_current m dst "pget";
  let mask = Context.active (cur_ctx m) in
  let addr = addr_array m addr in
  let stats =
    try
      match field_data m dst, field_data m src with
      | FInt d, FInt s -> Router.get ~mask ~addr ~src:s ~dst:d
      | FFloat d, FFloat s -> Router.get ~mask ~addr ~src:s ~dst:d
      | _ -> error "pget: kind mismatch between f%d and f%d" dst src
    with Invalid_argument msg -> error "pget: %s" msg
  in
  Cost.charge_router m.meter ~size:(cur_size m) ~messages:stats.messages
    ~max_fanin:stats.max_fanin

let int_combine = function
  | Ccheck -> Router.Overwrite_check ( = )
  | Cover -> Router.Combine (fun a _ -> a)
  | Cadd -> Router.Combine ( + )
  | Cmin -> Router.Combine min
  | Cmax -> Router.Combine max
  | Cor -> Router.Combine ( lor )
  | Cand -> Router.Combine ( land )
  | Cxor -> Router.Combine ( lxor )

let float_combine = function
  | Ccheck -> Router.Overwrite_check ( = )
  | Cover -> Router.Combine (fun a _ -> a)
  | Cadd -> Router.Combine ( +. )
  | Cmin -> Router.Combine Float.min
  | Cmax -> Router.Combine Float.max
  | Cor | Cand | Cxor -> error "bitwise combine on a float field"

let exec_psend m dst src addr combine =
  check_on_current m src "psend";
  let mask = Context.active (cur_ctx m) in
  let addr = addr_array m addr in
  let stats =
    try
      match field_data m dst, field_data m src with
      | FInt d, FInt s ->
          Router.send ~mask ~addr ~src:s ~dst:d ~combine:(int_combine combine)
      | FFloat d, FFloat s ->
          Router.send ~mask ~addr ~src:s ~dst:d ~combine:(float_combine combine)
      | _ -> error "psend: kind mismatch between f%d and f%d" dst src
    with
    | Invalid_argument msg -> error "psend: %s" msg
    | Router.Conflict a ->
        error
          "parallel assignment conflict: multiple distinct values sent to \
           element %d of field f%d"
          a dst
  in
  (* combining sends merge in the network, so they do not pay the
     destination fan-in serialisation that plain sends do *)
  let fanin = match combine with Ccheck -> stats.max_fanin | _ -> 1 in
  Cost.charge_router m.meter ~size:(cur_size m) ~messages:stats.messages
    ~max_fanin:fanin

let exec_pnews m dst src axis delta =
  check_on_current m dst "pnews";
  check_on_current m src "pnews";
  let g = cur_geom m in
  let mask = Context.active (cur_ctx m) in
  (try
     match field_data m dst, field_data m src with
     | FInt d, FInt s -> ignore (News.shift_masked g ~axis ~delta ~mask s d)
     | FFloat d, FFloat s -> ignore (News.shift_masked g ~axis ~delta ~mask s d)
     | _ -> error "pnews: kind mismatch between f%d and f%d" dst src
   with Invalid_argument msg -> error "pnews: %s" msg);
  Cost.charge_news m.meter ~size:(cur_size m)

let reduce_any mask get_first n identity =
  let rec go p = if p >= n then identity else if mask.(p) then get_first p else go (p + 1) in
  go 0

let exec_preduce m op r fld =
  check_on_current m fld "preduce";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_reduce m.meter ~size:(cur_size m);
  let result =
    match field_data m fld with
    | FInt a ->
        if op = Any then
          SInt (reduce_any mask (Array.get a) (Array.length a) Paris.inf_int)
        else
          SInt
            (Scan.masked_reduce (int_binop op)
               (to_int (identity op KInt))
               mask a)
    | FFloat a ->
        if op = Any then
          SFloat (reduce_any mask (Array.get a) (Array.length a) infinity)
        else
          SFloat
            (Scan.masked_reduce (float_binop op)
               (to_float (identity op KFloat))
               mask a)
  in
  m.regs.(r) <- result

let exec_pcount m r =
  Cost.charge_reduce m.meter ~size:(cur_size m);
  m.regs.(r) <- SInt (Context.count_active (cur_ctx m))

let exec_preduce_axis m op dst src =
  check_on_current m src "preduce-axis";
  let dst_vp = field_vpset m dst in
  let outer = m.prog.geoms.(dst_vp) in
  let whole = cur_geom m in
  if not (Geometry.is_prefix_of outer whole) then
    error "preduce-axis: geometry of f%d is not a prefix of the current set" dst;
  let mask = Context.active (cur_ctx m) in
  Cost.charge_reduce m.meter ~size:(cur_size m);
  let outer_size = Geometry.size outer in
  (try
     match field_data m dst, field_data m src with
     | FInt d, FInt s ->
         let r =
           Scan.reduce_trailing_axes whole ~outer_size (int_binop op)
             (to_int (identity op KInt))
             mask s
         in
         Array.blit r 0 d 0 outer_size
     | FFloat d, FFloat s ->
         let r =
           Scan.reduce_trailing_axes whole ~outer_size (float_binop op)
             (to_float (identity op KFloat))
             mask s
         in
         Array.blit r 0 d 0 outer_size
     | _ -> error "preduce-axis: kind mismatch between f%d and f%d" dst src
   with Invalid_argument msg -> error "preduce-axis: %s" msg)

let exec_pscan m op dst src axis =
  check_on_current m dst "pscan";
  check_on_current m src "pscan";
  let g = cur_geom m in
  Cost.charge_scan m.meter ~size:(cur_size m);
  try
    match field_data m dst, field_data m src with
    | FInt d, FInt s ->
        let r = Scan.scan_axis g axis (int_binop op) s in
        Array.blit r 0 d 0 (Array.length d)
    | FFloat d, FFloat s ->
        let r = Scan.scan_axis g axis (float_binop op) s in
        Array.blit r 0 d 0 (Array.length d)
    | _ -> error "pscan: kind mismatch between f%d and f%d" dst src
  with Invalid_argument msg -> error "pscan: %s" msg

let exec_cand m fld =
  check_on_current m fld "cand";
  Cost.charge_context m.meter ~size:(cur_size m);
  let mask =
    match field_data m fld with
    | FInt a -> Array.map (fun v -> v <> 0) a
    | FFloat a -> Array.map (fun v -> v <> 0.0) a
  in
  Context.land_mask (cur_ctx m) mask

(* ---- main loop ---- *)

let run m =
  let code = m.prog.code in
  let n = Array.length code in
  let pc = ref 0 in
  let jump l =
    let target = m.labels.(l) in
    if target < 0 then error "jump to unplaced label L%d" l;
    pc := target
  in
  while !pc < n do
    if m.fuel <= 0 then error "fuel exhausted (non-terminating program?)";
    m.fuel <- m.fuel - 1;
    let i = !pc in
    incr pc;
    let t0 = m.meter.Cost.elapsed_ns in
    (match code.(i) with
    | Label _ | Comment _ -> ()
    | Region r -> m.region <- r
    | Fprint (s, a) ->
        let line =
          match a with
          | None -> s
          | Some op -> (
              match fe_val m op with
              | SInt i -> Printf.sprintf "%s%d" s i
              | SFloat f -> Printf.sprintf "%s%g" s f)
        in
        m.output <- line :: m.output
    | Halt -> pc := n
    | Fmov (r, a) ->
        Cost.charge_fe m.meter;
        m.regs.(r) <- fe_val m a
    | Fbin (op, r, a, b) ->
        Cost.charge_fe m.meter;
        m.regs.(r) <- fe_bin op (fe_val m a) (fe_val m b)
    | Funop (op, r, a) ->
        Cost.charge_fe m.meter;
        m.regs.(r) <- fe_unop op (fe_val m a)
    | Frand (r, a) ->
        Cost.charge_fe m.meter;
        m.regs.(r) <- SInt (rand_mod m (to_int (fe_val m a)))
    | Fread (r, fld, a) ->
        Cost.charge_fe_cm m.meter;
        let addr = to_int (fe_val m a) in
        (match field_data m fld with
        | FInt arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fread: address %d out of range on f%d" addr fld;
            m.regs.(r) <- SInt arr.(addr)
        | FFloat arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fread: address %d out of range on f%d" addr fld;
            m.regs.(r) <- SFloat arr.(addr))
    | Fwrite (fld, a, v) ->
        Cost.charge_fe_cm m.meter;
        let addr = to_int (fe_val m a) in
        let value = fe_val m v in
        (match field_data m fld with
        | FInt arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fwrite: address %d out of range on f%d" addr fld;
            arr.(addr) <- to_int value
        | FFloat arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fwrite: address %d out of range on f%d" addr fld;
            arr.(addr) <- to_float value)
    | Jmp l ->
        Cost.charge_fe m.meter;
        jump l
    | Jz (a, l) ->
        Cost.charge_fe m.meter;
        if not (truthy (fe_val m a)) then jump l
    | Jnz (a, l) ->
        Cost.charge_fe m.meter;
        if truthy (fe_val m a) then jump l
    | Pmov (dst, a) -> exec_pmov m dst a
    | Pbin (op, dst, a, b) -> exec_pbin m op dst a b
    | Punop (op, dst, a) -> exec_punop m op dst a
    | Pcoord (dst, axis) -> exec_pcoord m dst axis
    | Ptable (dst, table) -> exec_ptable m dst table
    | Prand (dst, modulus) -> exec_prand m dst modulus
    | Psel (dst, c, a, b) -> exec_psel m dst c a b
    | Pget (dst, src, addr) -> exec_pget m dst src addr
    | Psend (dst, src, addr, combine) -> exec_psend m dst src addr combine
    | Pnews (dst, src, axis, delta) -> exec_pnews m dst src axis delta
    | Preduce (op, r, fld) -> exec_preduce m op r fld
    | Pcount r -> exec_pcount m r
    | Preduce_axis (op, dst, src) -> exec_preduce_axis m op dst src
    | Pscan (op, dst, src, axis) -> exec_pscan m op dst src axis
    | Cwith vp ->
        if vp < 0 || vp >= Array.length m.prog.geoms then
          error "cwith: unknown VP set vp%d" vp;
        Cost.charge_fe m.meter;
        m.cur <- vp
    | Cpush ->
        Cost.charge_context m.meter ~size:(cur_size m);
        Context.push (cur_ctx m)
    | Cand fld -> exec_cand m fld
    | Cpop ->
        Cost.charge_context m.meter ~size:(cur_size m);
        (try Context.pop (cur_ctx m)
         with Failure _ -> error "cpop: context stack underflow")
    | Creset ->
        Cost.charge_context m.meter ~size:(cur_size m);
        Context.reset (cur_ctx m)
    | Cread fld ->
        check_on_current m fld "cread";
        Cost.charge_context m.meter ~size:(cur_size m);
        (match field_data m fld with
        | FInt out ->
            let mask = Context.active (cur_ctx m) in
            Array.iteri (fun p act -> out.(p) <- (if act then 1 else 0)) mask
        | FFloat _ -> error "cread into a float field"));
    let dt = m.meter.Cost.elapsed_ns -. t0 in
    if dt > 0.0 then
      Hashtbl.replace m.regions m.region
        (dt +. (try Hashtbl.find m.regions m.region with Not_found -> 0.0))
  done
