let check g ~axis src dst =
  let total = Geometry.size g in
  if Array.length src <> total || Array.length dst <> total then
    invalid_arg "News.shift: field size mismatch";
  if axis < 0 || axis >= Geometry.rank g then
    invalid_arg "News.shift: axis out of range"

let shift_gen g ~axis ~delta ~accept src dst =
  check g ~axis src dst;
  let strides = Geometry.strides g in
  let stride = strides.(axis) in
  let extent = Geometry.dim g axis in
  let total = Geometry.size g in
  let updated = ref 0 in
  for p = 0 to total - 1 do
    if accept p then begin
      let c = p / stride mod extent in
      let c' = c + delta in
      if c' >= 0 && c' < extent then begin
        dst.(p) <- src.(p + (delta * stride));
        incr updated
      end
    end
  done;
  !updated

let shift g ~axis ~delta src dst =
  shift_gen g ~axis ~delta ~accept:(fun _ -> true) src dst

let shift_masked g ~axis ~delta ~mask src dst =
  if Array.length mask <> Geometry.size g then
    invalid_arg "News.shift_masked: mask size mismatch";
  shift_gen g ~axis ~delta ~accept:(fun p -> mask.(p)) src dst
