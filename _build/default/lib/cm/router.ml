type stats = { messages : int; max_fanin : int }

exception Conflict of int

type 'a combine =
  | Overwrite_check of ('a -> 'a -> bool)
  | Combine of ('a -> 'a -> 'a)

let check_lengths name mask addr src_or_dst_len =
  ignore src_or_dst_len;
  if Array.length mask <> Array.length addr then
    invalid_arg (name ^ ": mask/addr length mismatch")

let get ~mask ~addr ~src ~dst =
  check_lengths "Router.get" mask addr (Array.length src);
  if Array.length dst <> Array.length addr then
    invalid_arg "Router.get: dst/addr length mismatch";
  let messages = ref 0 in
  let fanin = Hashtbl.create 64 in
  let max_fanin = ref 0 in
  Array.iteri
    (fun p m ->
      if m then begin
        let a = addr.(p) in
        if a < 0 || a >= Array.length src then
          invalid_arg "Router.get: address out of range";
        dst.(p) <- src.(a);
        incr messages;
        let f = (try Hashtbl.find fanin a with Not_found -> 0) + 1 in
        Hashtbl.replace fanin a f;
        if f > !max_fanin then max_fanin := f
      end)
    mask;
  { messages = !messages; max_fanin = max !max_fanin 1 }

let send ~mask ~addr ~src ~dst ~combine =
  check_lengths "Router.send" mask addr (Array.length dst);
  if Array.length src <> Array.length addr then
    invalid_arg "Router.send: src/addr length mismatch";
  let messages = ref 0 in
  let seen = Hashtbl.create 64 in
  let max_fanin = ref 0 in
  Array.iteri
    (fun p m ->
      if m then begin
        let a = addr.(p) in
        if a < 0 || a >= Array.length dst then
          invalid_arg "Router.send: address out of range";
        let v = src.(p) in
        incr messages;
        let f = (try Hashtbl.find seen a with Not_found -> 0) + 1 in
        Hashtbl.replace seen a f;
        if f > !max_fanin then max_fanin := f;
        (match combine with
        | Overwrite_check eq ->
            if f = 1 then dst.(a) <- v
            else if not (eq dst.(a) v) then raise (Conflict a)
        | Combine merge -> if f = 1 then dst.(a) <- v else dst.(a) <- merge dst.(a) v)
      end)
    mask;
  { messages = !messages; max_fanin = max !max_fanin 1 }
