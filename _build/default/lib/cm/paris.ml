type kind = KInt | KFloat

type binop =
  | Add | Sub | Mul | Div | Mod
  | Min | Max
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr
  | Any

type unop = Neg | Lnot | Bnot | ToFloat | ToInt | Abs

type scalar = SInt of int | SFloat of float

type operand = Reg of int | Imm of scalar | Fld of int

type combine = Ccheck | Cover | Cadd | Cmin | Cmax | Cor | Cand | Cxor

type instr =
  | Fmov of int * operand
  | Fbin of binop * int * operand * operand
  | Funop of unop * int * operand
  | Frand of int * operand
  | Fread of int * int * operand
  | Fwrite of int * operand * operand
  | Jmp of int
  | Jz of operand * int
  | Jnz of operand * int
  | Label of int
  | Halt
  | Comment of string
  | Region of string
  | Fprint of string * operand option
  | Pmov of int * operand
  | Pbin of binop * int * operand * operand
  | Punop of unop * int * operand
  | Pcoord of int * int
  | Ptable of int * int array
  | Prand of int * operand
  | Psel of int * operand * operand * operand
  | Pget of int * int * int
  | Psend of int * int * int * combine
  | Pnews of int * int * int * int
  | Preduce of binop * int * int
  | Pcount of int
  | Preduce_axis of binop * int * int
  | Pscan of binop * int * int * int
  | Cwith of int
  | Cpush
  | Cand of int
  | Cpop
  | Creset
  | Cread of int

type program = {
  name : string;
  geoms : Geometry.t array;
  fields : (int * kind) array;
  nregs : int;
  nlabels : int;
  code : instr array;
}

let inf_int = 1073741823 (* 2^30 - 1: safe to add two of these in 63-bit ints *)

let identity op kind =
  match op, kind with
  | Add, KInt -> SInt 0
  | Add, KFloat -> SFloat 0.0
  | Mul, KInt -> SInt 1
  | Mul, KFloat -> SFloat 1.0
  | Min, KInt -> SInt inf_int
  | Min, KFloat -> SFloat infinity
  | Max, KInt -> SInt (-inf_int)
  | Max, KFloat -> SFloat neg_infinity
  | Land, KInt -> SInt 1
  | Lor, KInt -> SInt 0
  | Band, KInt -> SInt (-1)
  | Bor, KInt -> SInt 0
  | Bxor, KInt -> SInt 0
  | Any, KInt -> SInt inf_int
  | Any, KFloat -> SFloat infinity
  | _ -> invalid_arg "Paris.identity: operator is not reducible at this kind"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Min -> "min" | Max -> "max"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | Land -> "land" | Lor -> "lor"
  | Band -> "band" | Bor -> "bor" | Bxor -> "bxor" | Shl -> "shl" | Shr -> "shr"
  | Any -> "any"

let unop_name = function
  | Neg -> "neg" | Lnot -> "lnot" | Bnot -> "bnot"
  | ToFloat -> "tofloat" | ToInt -> "toint" | Abs -> "abs"

let combine_name = function
  | Ccheck -> "check" | Cover -> "over" | Cadd -> "add" | Cmin -> "min"
  | Cmax -> "max" | Cor -> "or" | Cand -> "and" | Cxor -> "xor"

let pp_binop fmt op = Format.pp_print_string fmt (binop_name op)

let pp_scalar fmt = function
  | SInt i -> Format.fprintf fmt "%d" i
  | SFloat f -> Format.fprintf fmt "%g" f

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm s -> Format.fprintf fmt "#%a" pp_scalar s
  | Fld f -> Format.fprintf fmt "f%d" f

let pp_instr fmt instr =
  let f = Format.fprintf in
  let o = pp_operand in
  match instr with
  | Fmov (r, a) -> f fmt "fmov r%d, %a" r o a
  | Fbin (op, r, a, b) -> f fmt "f%s r%d, %a, %a" (binop_name op) r o a o b
  | Funop (op, r, a) -> f fmt "f%s r%d, %a" (unop_name op) r o a
  | Frand (r, a) -> f fmt "frand r%d, %a" r o a
  | Fread (r, fld, a) -> f fmt "fread r%d, f%d[%a]" r fld o a
  | Fwrite (fld, a, v) -> f fmt "fwrite f%d[%a], %a" fld o a o v
  | Jmp l -> f fmt "jmp L%d" l
  | Jz (a, l) -> f fmt "jz %a, L%d" o a l
  | Jnz (a, l) -> f fmt "jnz %a, L%d" o a l
  | Label l -> f fmt "L%d:" l
  | Halt -> f fmt "halt"
  | Comment s -> f fmt "; %s" s
  | Region s -> f fmt "; --- %s ---" s
  | Fprint (s, None) -> f fmt "fprint %S" s
  | Fprint (s, Some a) -> f fmt "fprint %S, %a" s o a
  | Pmov (d, a) -> f fmt "pmov f%d, %a" d o a
  | Pbin (op, d, a, b) -> f fmt "p%s f%d, %a, %a" (binop_name op) d o a o b
  | Punop (op, d, a) -> f fmt "p%s f%d, %a" (unop_name op) d o a
  | Pcoord (d, ax) -> f fmt "pcoord f%d, axis %d" d ax
  | Ptable (d, t) -> f fmt "ptable f%d, [%d entries]" d (Array.length t)
  | Prand (d, a) -> f fmt "prand f%d, %a" d o a
  | Psel (d, c, a, b) -> f fmt "psel f%d, %a ? %a : %a" d o c o a o b
  | Pget (d, s, a) -> f fmt "pget f%d, f%d[f%d]" d s a
  | Psend (d, s, a, c) -> f fmt "psend f%d[f%d], f%d (%s)" d a s (combine_name c)
  | Pnews (d, s, ax, delta) -> f fmt "pnews f%d, f%d, axis %d, delta %d" d s ax delta
  | Preduce (op, r, fld) -> f fmt "preduce-%s r%d, f%d" (binop_name op) r fld
  | Pcount r -> f fmt "pcount r%d" r
  | Preduce_axis (op, d, s) -> f fmt "preduce-axis-%s f%d, f%d" (binop_name op) d s
  | Pscan (op, d, s, ax) -> f fmt "pscan-%s f%d, f%d, axis %d" (binop_name op) d s ax
  | Cwith v -> f fmt "with vp%d" v
  | Cpush -> f fmt "cpush"
  | Cand fld -> f fmt "cand f%d" fld
  | Cpop -> f fmt "cpop"
  | Creset -> f fmt "creset"
  | Cread fld -> f fmt "cread f%d" fld

let pp_program fmt p =
  Format.fprintf fmt "@[<v>; program %s@ " p.name;
  Array.iteri
    (fun i g -> Format.fprintf fmt "; vp%d : %a@ " i Geometry.pp g)
    p.geoms;
  Array.iteri
    (fun i (vp, kind) ->
      Format.fprintf fmt "; f%d : vp%d %s@ " i vp
        (match kind with KInt -> "int" | KFloat -> "float"))
    p.fields;
  Array.iter
    (fun instr ->
      match instr with
      | Label _ -> Format.fprintf fmt "%a@ " pp_instr instr
      | _ -> Format.fprintf fmt "  %a@ " pp_instr instr)
    p.code;
  Format.fprintf fmt "@]"

module Builder = struct
  type t = {
    name : string;
    mutable geoms : Geometry.t list;  (* reversed *)
    mutable ngeoms : int;
    mutable fields : (int * kind) list;  (* reversed *)
    mutable nfields : int;
    mutable nregs : int;
    mutable nlabels : int;
    mutable code : instr list;  (* reversed *)
  }

  let create name =
    { name; geoms = []; ngeoms = 0; fields = []; nfields = 0; nregs = 0;
      nlabels = 0; code = [] }

  let vpset b g =
    let id = b.ngeoms in
    b.geoms <- g :: b.geoms;
    b.ngeoms <- id + 1;
    id

  let field b ~vpset kind =
    if vpset < 0 || vpset >= b.ngeoms then
      invalid_arg "Paris.Builder.field: unknown vpset";
    let id = b.nfields in
    b.fields <- (vpset, kind) :: b.fields;
    b.nfields <- id + 1;
    id

  let reg b =
    let id = b.nregs in
    b.nregs <- id + 1;
    id

  let label b =
    let id = b.nlabels in
    b.nlabels <- id + 1;
    id

  let emit b instr = b.code <- instr :: b.code

  let place b l = emit b (Label l)

  let geom_of b vp =
    if vp < 0 || vp >= b.ngeoms then invalid_arg "Paris.Builder.geom_of";
    List.nth b.geoms (b.ngeoms - 1 - vp)

  let field_info b fld =
    if fld < 0 || fld >= b.nfields then invalid_arg "Paris.Builder.field_info";
    List.nth b.fields (b.nfields - 1 - fld)

  let finish b =
    {
      name = b.name;
      geoms = Array.of_list (List.rev b.geoms);
      fields = Array.of_list (List.rev b.fields);
      nregs = b.nregs;
      nlabels = b.nlabels;
      code = Array.of_list (List.rev b.code);
    }
end
