(** Scan (parallel prefix) and reduction primitives.

    These model the CM-2 scan network: log-depth combining trees over the
    elements of a VP set.  The combining operator must be associative; all
    operators used by UC reductions (add, min, max, and, or, xor, mul)
    qualify. *)

(** [inclusive op identity a] returns [b] with
    [b.(i) = a.(0) op ... op a.(i)]. *)
val inclusive : ('a -> 'a -> 'a) -> 'a array -> 'a array

(** [exclusive op identity a] returns [b] with [b.(0) = identity] and
    [b.(i) = a.(0) op ... op a.(i-1)]. *)
val exclusive : ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a array

(** [reduce op identity a] folds the whole array. *)
val reduce : ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a

(** [masked_reduce op identity mask a] folds only the elements where
    [mask] is true; returns [identity] when none are. *)
val masked_reduce : ('a -> 'a -> 'a) -> 'a -> bool array -> 'a array -> 'a

(** [reduce_trailing_axes g ~outer_size op identity mask a] reduces a field
    laid out on geometry [g] over its trailing axes, producing one value per
    leading position.  [outer_size] must divide [Geometry.size g]; positions
    where [mask] is false contribute [identity]. *)
val reduce_trailing_axes :
  Geometry.t ->
  outer_size:int ->
  ('a -> 'a -> 'a) ->
  'a ->
  bool array ->
  'a array ->
  'a array

(** [scan_axis g axis op a] computes an inclusive scan independently along
    [axis] of a field laid out on [g]. *)
val scan_axis : Geometry.t -> int -> ('a -> 'a -> 'a) -> 'a array -> 'a array
