(** Rectangular virtual-processor geometries.

    A geometry describes the shape of a virtual-processor (VP) set on the
    simulated Connection Machine: a non-empty list of positive extents, one
    per axis.  Elements are addressed either by a coordinate vector or by a
    row-major linear address. *)

type t

(** [create dims] builds a geometry with the given axis extents.
    @raise Invalid_argument if [dims] is empty or contains a non-positive
    extent. *)
val create : int list -> t

(** [dims g] returns the axis extents, outermost first. *)
val dims : t -> int list

(** [dim g axis] returns the extent of [axis] (0-based, outermost first).
    @raise Invalid_argument if [axis] is out of range. *)
val dim : t -> int -> int

(** [rank g] is the number of axes. *)
val rank : t -> int

(** [size g] is the total number of VPs, i.e. the product of the extents. *)
val size : t -> int

(** [linearize g coords] converts a coordinate vector to its row-major
    linear address.
    @raise Invalid_argument on rank mismatch or out-of-range coordinate. *)
val linearize : t -> int array -> int

(** [coords g addr] is the inverse of {!linearize}.
    @raise Invalid_argument if [addr] is out of range. *)
val coords : t -> int -> int array

(** [strides g] returns the row-major stride of each axis, so that
    [linearize g c = sum_i c.(i) * (strides g).(i)]. *)
val strides : t -> int array

(** [concat outer inner] is the geometry whose axes are those of [outer]
    followed by those of [inner].  Used for nested-reduction VP sets. *)
val concat : t -> t -> t

(** [is_prefix_of outer whole] is true when the axes of [outer] are exactly
    the leading axes of [whole]. *)
val is_prefix_of : t -> t -> bool

(** Structural equality of shapes. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
