lib/cm/cost.ml: Format
