lib/cm/router.mli:
