lib/cm/geometry.ml: Array Format List String
