lib/cm/machine.mli: Cost Paris
