lib/cm/scan.ml: Array Geometry
