lib/cm/router.ml: Array Hashtbl
