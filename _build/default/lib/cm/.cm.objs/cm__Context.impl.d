lib/cm/context.ml: Array List
