lib/cm/scan.mli: Geometry
