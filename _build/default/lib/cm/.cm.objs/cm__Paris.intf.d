lib/cm/paris.mli: Format Geometry
