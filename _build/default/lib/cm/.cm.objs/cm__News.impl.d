lib/cm/news.ml: Array Geometry
