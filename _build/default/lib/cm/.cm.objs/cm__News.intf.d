lib/cm/news.mli: Geometry
