lib/cm/cost.mli: Format
