lib/cm/paris.ml: Array Format Geometry List
