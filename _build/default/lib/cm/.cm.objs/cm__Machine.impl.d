lib/cm/machine.ml: Array Context Cost Float Format Geometry Hashtbl List News Paris Printf Router Scan
