lib/cm/context.mli:
