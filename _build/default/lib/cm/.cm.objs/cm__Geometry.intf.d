lib/cm/geometry.mli: Format
