(** General-router communication with combining.

    Models the CM-2 hypercube router: every active VP may read from
    ([get]) or write to ([send]) an arbitrary linear address of a target
    field.  Sends to a common destination are combined; UC's parallel
    assignment uses the checking combiner, which requires all values
    delivered to one destination to be identical (paper section 3.4:
    "each variable in a par statement may be assigned at most one value;
    if multiple values are assigned, they must be identical"). *)

(** Delivery statistics, used by the cost model for congestion. *)
type stats = { messages : int; max_fanin : int }

(** Raised by a checking send when two distinct values reach the same
    destination address. *)
exception Conflict of int

(** How concurrent writes to one destination are merged. *)
type 'a combine =
  | Overwrite_check of ('a -> 'a -> bool)
      (** all values must satisfy the given equality; raises {!Conflict} *)
  | Combine of ('a -> 'a -> 'a)  (** associative-commutative combining *)

(** [get ~mask ~addr ~src ~dst] performs [dst.(p) <- src.(addr.(p))] for
    every [p] with [mask.(p)].
    @raise Invalid_argument if an address is outside [src]. *)
val get : mask:bool array -> addr:int array -> src:'a array -> dst:'a array -> stats

(** [send ~mask ~addr ~src ~dst ~combine] delivers [src.(p)] to
    [dst.(addr.(p))] for every active [p], merging per-destination values
    with [combine].
    @raise Invalid_argument if an address is outside [dst]. *)
val send :
  mask:bool array ->
  addr:int array ->
  src:'a array ->
  dst:'a array ->
  combine:'a combine ->
  stats
