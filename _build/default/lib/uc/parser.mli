(** Recursive-descent parser for UC.

    The grammar is the C statement/expression subset the paper retains
    (no [goto]; pointers only as array parameters) extended with index-set
    declarations, [$op] reductions, the [par]/[seq]/[solve]/[oneof]
    constructs and the [map] section.  See {!Ast} for the shapes
    produced. *)

(** [parse_program src] parses a whole compilation unit.
    @raise Loc.Error with a source position on any syntax error. *)
val parse_program : string -> Ast.program

(** [parse_expr src] parses a single expression (used by tests and the
    expression-level property tests).
    @raise Loc.Error on syntax errors or trailing input. *)
val parse_expr : string -> Ast.expr
