open Ast

type value = Vint of int | Vfloat of float

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let inf_int = Cm.Paris.inf_int

(* ---------------- values ---------------- *)

let to_int = function
  | Vint i -> i
  | Vfloat f -> int_of_float f  (* C truncation toward zero *)

let to_float = function Vint i -> float_of_int i | Vfloat f -> f
let truthy = function Vint i -> i <> 0 | Vfloat f -> f <> 0.0
let of_bool b = Vint (if b then 1 else 0)

let coerce ty v =
  match ty, v with
  | Tint, Vint _ -> v
  | Tint, Vfloat f -> Vint (int_of_float f)
  | Tfloat, Vint i -> Vfloat (float_of_int i)
  | Tfloat, Vfloat _ -> v

let arith op a b =
  match a, b with
  | Vint x, Vint y -> (
      match op with
      | Add -> Vint (x + y)
      | Sub -> Vint (x - y)
      | Mul -> Vint (x * y)
      | Div -> if y = 0 then error "division by zero" else Vint (x / y)
      | Mod -> if y = 0 then error "modulo by zero" else Vint (x mod y)
      | _ -> assert false)
  | _ ->
      let x = to_float a and y = to_float b in
      (match op with
      | Add -> Vfloat (x +. y)
      | Sub -> Vfloat (x -. y)
      | Mul -> Vfloat (x *. y)
      | Div -> Vfloat (x /. y)
      | Mod -> Vfloat (Float.rem x y)
      | _ -> assert false)

let compare_vals op a b =
  let c =
    match a, b with
    | Vint x, Vint y -> compare x y
    | _ -> compare (to_float a) (to_float b)
  in
  of_bool
    (match op with
    | Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0
    | _ -> assert false)

let min_val a b = if to_float a <= to_float b then a else b
let max_val a b = if to_float a >= to_float b then a else b

(* ---------------- storage ---------------- *)

type arr = {
  aid : int;                       (* identity for conflict detection *)
  aty : base_ty;
  adims : int array;
  data : value array;
}

type parlocal = {
  pl_ty : base_ty;
  pl_key : string list;            (* ambient elements forming the key *)
  pl_tbl : (int list, value ref) Hashtbl.t;
}

type entry =
  | Escalar of base_ty * value ref
  | Earray of arr
  | Eset of string * int array     (* element name, values *)
  | Eelem of int                   (* bound index element *)
  | Eparlocal of parlocal

type scopes = (string * entry) list

type ctx = {
  funcs : (string * func) list;
  mutable globals : scopes;        (* the outermost scope, seen by functions *)
  mutable rand : int;
  mutable out : string list;       (* reversed *)
  mutable fuel : int;
  choice : [ `First | `Rotate ];
  mutable choice_counter : int;
  mutable next_arr_id : int;
}

let burn ctx =
  if ctx.fuel <= 0 then
    error "iteration limit exceeded (non-terminating UC construct?)";
  ctx.fuel <- ctx.fuel - 1

let lcg ctx =
  ctx.rand <- ((ctx.rand * 1103515245) + 12345) land 0x3FFFFFFF;
  ctx.rand

let lookup scopes name =
  match List.assoc_opt name scopes with
  | Some e -> e
  | None -> error "unknown identifier %s" name

let lookup_set scopes name =
  match lookup scopes name with
  | Eset (elem, values) -> (elem, values)
  | _ -> error "%s is not an index set" name

(* value of a bound index element or parlocal read *)
let parlocal_key scopes pl =
  List.map
    (fun name ->
      match lookup scopes name with
      | Eelem v -> v
      | _ -> error "internal: parlocal key %s is not an index element" name)
    pl.pl_key

let parlocal_ref scopes pl =
  let key = parlocal_key scopes pl in
  match Hashtbl.find_opt pl.pl_tbl key with
  | Some r -> r
  | None ->
      let r = ref (coerce pl.pl_ty (Vint 0)) in
      Hashtbl.replace pl.pl_tbl key r;
      r

(* ---------------- array indexing ---------------- *)

let flat_index a subs =
  let n = Array.length a.adims in
  if List.length subs <> n then error "wrong number of subscripts";
  let idx = ref 0 in
  List.iteri
    (fun k s ->
      if s < 0 || s >= a.adims.(k) then
        error "subscript %d out of range [0, %d) on axis %d" s a.adims.(k) k;
      idx := (!idx * a.adims.(k)) + s)
    subs;
  !idx

(* ---------------- ambient tuples ---------------- *)

(* an activity tuple is an ordered list of element bindings; executing a
   statement for a tuple pushes those bindings onto the scopes *)
type tuple = (string * int) list

let push_tuple scopes (t : tuple) =
  List.fold_left (fun sc (name, v) -> (name, Eelem v) :: sc) scopes t

let cartesian (sets : (string * int array) list) : tuple list =
  List.fold_left
    (fun acc (elem, values) ->
      List.concat_map
        (fun t -> Array.to_list (Array.map (fun v -> t @ [ (elem, v) ]) values))
        acc)
    [ [] ] sets

(* ---------------- expression evaluation ---------------- *)

let rec eval ctx scopes e =
  match e.e with
  | Eint i -> Vint i
  | Efloat f -> Vfloat f
  | Einf -> Vint inf_int
  | Estr _ -> error "string literal outside print"
  | Evar name -> (
      match lookup scopes name with
      | Escalar (_, r) -> !r
      | Eelem v -> Vint v
      | Eparlocal pl -> !(parlocal_ref scopes pl)
      | Earray _ -> error "array %s used as a value" name
      | Eset _ -> error "index set %s used as a value" name)
  | Eindex (base, subs) ->
      let a = eval_array ctx scopes base in
      let subs = List.map (fun s -> to_int (eval ctx scopes s)) subs in
      a.data.(flat_index a subs)
  | Ebin (Land, a, b) ->
      if truthy (eval ctx scopes a) then of_bool (truthy (eval ctx scopes b))
      else Vint 0
  | Ebin (Lor, a, b) ->
      if truthy (eval ctx scopes a) then Vint 1
      else of_bool (truthy (eval ctx scopes b))
  | Ebin (op, a, b) -> (
      let va = eval ctx scopes a in
      let vb = eval ctx scopes b in
      match op with
      | Add | Sub | Mul | Div | Mod -> arith op va vb
      | Eq | Ne | Lt | Le | Gt | Ge -> compare_vals op va vb
      | Band -> Vint (to_int va land to_int vb)
      | Bor -> Vint (to_int va lor to_int vb)
      | Bxor -> Vint (to_int va lxor to_int vb)
      | Shl -> Vint (to_int va lsl to_int vb)
      | Shr -> Vint (to_int va asr to_int vb)
      | Land | Lor -> assert false)
  | Eun (Neg, a) -> (
      match eval ctx scopes a with
      | Vint i -> Vint (-i)
      | Vfloat f -> Vfloat (-.f))
  | Eun (Lnot, a) -> of_bool (not (truthy (eval ctx scopes a)))
  | Eun (Bnot, a) -> Vint (lnot (to_int (eval ctx scopes a)))
  | Econd (c, a, b) ->
      if truthy (eval ctx scopes c) then eval ctx scopes a else eval ctx scopes b
  | Ecall (name, args) -> eval_call ctx scopes name args
  | Ereduce r -> eval_reduction ctx scopes r

and eval_array ctx scopes base =
  match base.e with
  | Evar name -> (
      match lookup scopes name with
      | Earray a -> a
      | _ -> error "%s is not an array" name)
  | _ -> error "only named arrays can be indexed"

and eval_call ctx scopes name args =
  match name, args with
  | "power2", [ a ] -> Vint (1 lsl to_int (eval ctx scopes a))
  | "abs", [ a ] -> (
      match eval ctx scopes a with
      | Vint i -> Vint (abs i)
      | Vfloat f -> Vfloat (Float.abs f))
  | "min", [ a; b ] -> min_val (eval ctx scopes a) (eval ctx scopes b)
  | "max", [ a; b ] -> max_val (eval ctx scopes a) (eval ctx scopes b)
  | "tofloat", [ a ] -> Vfloat (to_float (eval ctx scopes a))
  | "toint", [ a ] -> Vint (to_int (eval ctx scopes a))
  | "rand", [] -> Vint (lcg ctx)
  | _ -> (
      match List.assoc_opt name ctx.funcs with
      | Some f -> call_function ctx scopes f args
      | None -> error "unknown function %s" name)

and call_function ctx scopes f args =
  let frame =
    List.map2
      (fun p a ->
        if p.prank > 0 then
          match a.e with
          | Evar n -> (
              match lookup scopes n with
              | Earray arr -> (p.pname, Earray arr)  (* by reference *)
              | _ -> error "%s is not an array" n)
          | _ -> error "array argument must be an array name"
        else
          let v = coerce p.pty (eval ctx scopes a) in
          (p.pname, Escalar (p.pty, ref v)))
      f.fparams args
  in
  (* functions see the globals plus their own frame (static scoping) *)
  let fscopes = frame @ ctx.globals in
  match exec_block ctx fscopes f.fbody with
  | `Return (Some v) -> (
      match f.fret with Some ty -> coerce ty v | None -> v)
  | `Return None | `Normal -> (
      match f.fret with
      | None -> Vint 0
      | Some _ -> error "function %s did not return a value" f.fname)
  | `Break | `Continue -> error "break/continue escaped function %s" f.fname

and eval_reduction ctx scopes r =
  let sets = List.map (fun s -> lookup_set scopes s) r.rsets in
  let tuples = cartesian sets in
  let operands = ref [] in
  let enabled_somewhere = Hashtbl.create 16 in
  let has_preds = List.exists (fun (p, _) -> p <> None) r.rbranches in
  List.iter
    (fun (pred, expr) ->
      List.iteri
        (fun ti t ->
          let sc = push_tuple scopes t in
          let on =
            match pred with
            | None -> true
            | Some p -> truthy (eval ctx sc p)
          in
          if on then begin
            Hashtbl.replace enabled_somewhere ti ();
            operands := eval ctx sc expr :: !operands
          end)
        tuples)
    r.rbranches;
  (match r.rothers with
  | Some expr when has_preds ->
      List.iteri
        (fun ti t ->
          if not (Hashtbl.mem enabled_somewhere ti) then begin
            let sc = push_tuple scopes t in
            operands := eval ctx sc expr :: !operands
          end)
        tuples
  | _ -> ());
  let operands = List.rev !operands in
  reduce_operands r.rop operands

and reduce_operands rop operands =
  let is_float = List.exists (function Vfloat _ -> true | _ -> false) operands in
  let identity =
    match rop, is_float with
    | Rsum, false -> Vint 0
    | Rsum, true -> Vfloat 0.0
    | Rprod, false -> Vint 1
    | Rprod, true -> Vfloat 1.0
    | Rmin, false -> Vint inf_int
    | Rmin, true -> Vfloat infinity
    | Rmax, false -> Vint (-inf_int)
    | Rmax, true -> Vfloat neg_infinity
    | Rland, _ -> Vint 1
    | Rlor, _ -> Vint 0
    | Rxor, _ -> Vint 0
    | Rarb, false -> Vint inf_int
    | Rarb, true -> Vfloat infinity
  in
  match operands with
  | [] -> identity
  | first :: _ -> (
      match rop with
      | Rarb -> first
      | _ ->
          let combine acc v =
            match rop with
            | Rsum -> arith Add acc v
            | Rprod -> arith Mul acc v
            | Rmin -> min_val acc v
            | Rmax -> max_val acc v
            | Rland -> of_bool (truthy acc && truthy v)
            | Rlor -> of_bool (truthy acc || truthy v)
            | Rxor -> Vint (to_int acc lxor to_int v)
            | Rarb -> assert false
          in
          List.fold_left combine identity operands)

(* ---------------- assignment targets ---------------- *)

(* Identity of an assigned cell: array cells by (array id, flat index);
   scalar refs by physical identity (compared with ==). *)
and target_loc ctx scopes lv :
    [ `Cell of int * int | `Ref of value ref ] * (unit -> value) * (value -> unit)
    =
  match lv.e with
  | Evar name -> (
      match lookup scopes name with
      | Escalar (ty, r) -> (`Ref r, (fun () -> !r), fun v -> r := coerce ty v)
      | Eparlocal pl ->
          let r = parlocal_ref scopes pl in
          (`Ref r, (fun () -> !r), fun v -> r := coerce pl.pl_ty v)
      | _ -> error "%s is not assignable" name)
  | Eindex (base, subs) ->
      let a = eval_array ctx scopes base in
      let subs = List.map (fun s -> to_int (eval ctx scopes s)) subs in
      let idx = flat_index a subs in
      ( `Cell (a.aid, idx),
        (fun () -> a.data.(idx)),
        fun v -> a.data.(idx) <- coerce a.aty v )
  | _ -> error "invalid assignment target"

and apply_assign_op op old rhs =
  match op with
  | Aset -> rhs
  | Aadd -> arith Add old rhs
  | Asub -> arith Sub old rhs
  | Amul -> arith Mul old rhs
  | Adiv -> arith Div old rhs
  | Amod -> arith Mod old rhs
  | Amin -> min_val old rhs
  | Amax -> max_val old rhs

(* ---------------- synchronous (parallel) execution ---------------- *)

(* Execute one statement synchronously for all active tuples.  Returns
   true when any committed write changed a stored value (used by solve). *)
and exec_sync ctx scopes (tuples : tuple list) st : bool =
  match st.s with
  | Sempty -> false
  | Sassign (op, lhs, rhs) ->
      let writes =
        List.map
          (fun t ->
            let sc = push_tuple scopes t in
            let loc, read, write = target_loc ctx sc lhs in
            let v = eval ctx sc rhs in
            (loc, read, write, apply_assign_op op (read ()) v))
          tuples
      in
      commit ctx writes
  | Sexpr { e = Ecall ("swap", [ la; lb ]); _ } ->
      let writes =
        List.concat_map
          (fun t ->
            let sc = push_tuple scopes t in
            let loca, reada, writea = target_loc ctx sc la in
            let locb, readb, writeb = target_loc ctx sc lb in
            let va = reada () and vb = readb () in
            [ (loca, reada, writea, vb); (locb, readb, writeb, va) ])
          tuples
      in
      commit ctx writes
  | Sexpr e ->
      List.iter
        (fun t ->
          let sc = push_tuple scopes t in
          ignore (eval ctx sc e))
        tuples;
      false
  | Sblock b -> exec_sync_block ctx scopes tuples b
  | Sif (c, then_, else_) ->
      let on, off =
        List.partition
          (fun t -> truthy (eval ctx (push_tuple scopes t) c))
          tuples
      in
      let ch1 = if on <> [] then exec_sync ctx scopes on then_ else false in
      let ch2 =
        match else_ with
        | Some s when off <> [] -> exec_sync ctx scopes off s
        | _ -> false
      in
      ch1 || ch2
  | Swhile (c, body) ->
      let changed = ref false in
      let rec loop tuples =
        burn ctx;
        let active =
          List.filter (fun t -> truthy (eval ctx (push_tuple scopes t) c)) tuples
        in
        if active <> [] then begin
          if exec_sync ctx scopes active body then changed := true;
          loop active
        end
      in
      loop tuples;
      !changed
  | Spar ps | Soneof ps | Sseq ps | Ssolve ps ->
      exec_construct ctx scopes tuples st.sloc (kind_of st) ps
  | Sfor _ -> error "for loops are not supported inside parallel constructs"
  | Sreturn _ -> error "return inside a parallel construct"
  | Sbreak | Scontinue -> error "break/continue inside a parallel construct"

and kind_of st =
  match st.s with
  | Spar _ -> `Par
  | Sseq _ -> `Seq
  | Ssolve _ -> `Solve
  | Soneof _ -> `Oneof
  | _ -> assert false

and exec_sync_block ctx scopes tuples b =
  (* declarations create par-local scalars (one slot per ambient tuple) or
     block-local index sets *)
  let key_names =
    (* names of the elements bound by the ambient tuples, in order *)
    match tuples with [] -> [] | t :: _ -> List.map fst t
  in
  let scopes =
    List.fold_left
      (fun sc d ->
        match d with
        | Dvar (ty, ds) ->
            List.fold_left
              (fun sc dd ->
                if dd.ddims <> [] then
                  error "arrays may not be declared inside parallel constructs";
                let pl =
                  { pl_ty = ty; pl_key = key_names; pl_tbl = Hashtbl.create 64 }
                in
                (dd.dname, Eparlocal pl) :: sc)
              sc ds
        | Dindexset defs ->
            List.fold_left
              (fun sc def ->
                let values =
                  match def.ispec with
                  | Irange (lo, hi) ->
                      let lo = Sema.const_eval lo and hi = Sema.const_eval hi in
                      Array.init (hi - lo + 1) (fun k -> lo + k)
                  | Ilist es -> Array.of_list (List.map Sema.const_eval es)
                  | Ialias other ->
                      let _, values = lookup_set sc other in
                      values
                in
                (def.set_name, Eset (def.elem_name, values)) :: sc)
              sc defs)
      scopes b.bdecls
  in
  (* initializers for par-locals execute synchronously *)
  let changed = ref false in
  List.iter
    (fun d ->
      match d with
      | Dvar (_, ds) ->
          List.iter
            (fun dd ->
              match dd.dinit with
              | Some init ->
                  let lhs = { e = Evar dd.dname; eloc = dd.dloc } in
                  let st =
                    { s = Sassign (Aset, lhs, init); sloc = dd.dloc }
                  in
                  if exec_sync ctx scopes tuples st then changed := true
              | None -> ())
            ds
      | Dindexset _ -> ())
    b.bdecls;
  List.iter
    (fun st -> if exec_sync ctx scopes tuples st then changed := true)
    b.bstmts;
  !changed

and commit ctx writes =
  (* enforce the single-value rule within one synchronous statement and
     report whether anything changed *)
  let seen_cells : (int * int, value) Hashtbl.t = Hashtbl.create 64 in
  let seen_refs : (value ref * value) list ref = ref [] in
  let conflict () =
    error
      "parallel assignment conflict: multiple distinct values assigned to \
       one variable (paper section 3.4)"
  in
  let changed = ref false in
  List.iter
    (fun (loc, read, write, v) ->
      (match loc with
      | `Cell key -> (
          match Hashtbl.find_opt seen_cells key with
          | Some prev -> if prev <> v then conflict ()
          | None -> Hashtbl.replace seen_cells key v)
      | `Ref r -> (
          match List.find_opt (fun (r', _) -> r' == r) !seen_refs with
          | Some (_, prev) -> if prev <> v then conflict ()
          | None -> seen_refs := (r, v) :: !seen_refs));
      let old = read () in
      write v;
      if read () <> old then changed := true)
    writes;
  !changed

(* ---------------- par / seq / solve / oneof ---------------- *)

and exec_construct ctx scopes (ambient : tuple list) loc kind ps : bool =
  let sets = List.map (fun s -> lookup_set scopes s) ps.psets in
  let inner = cartesian sets in
  let all_tuples =
    if ambient = [] then inner
    else
      List.concat_map
        (fun amb ->
          List.map
            (fun t ->
              (* inner bindings shadow outer ones with the same name *)
              let amb' = List.filter (fun (n, _) -> not (List.mem_assoc n t)) amb in
              amb' @ t)
            inner)
        ambient
  in
  ignore loc;
  match kind with
  | `Par -> exec_par_like ctx scopes ps all_tuples
  | `Solve -> exec_solve ctx scopes ps all_tuples
  | `Oneof -> exec_oneof ctx scopes ps all_tuples
  | `Seq -> exec_seq ctx scopes ps ambient sets

and exec_par_like ctx scopes ps all_tuples : bool =
  let changed = ref false in
  let round () =
    let any_enabled = ref false in
    let enabled_somewhere = Hashtbl.create 64 in
    List.iter
      (fun (pred, st) ->
        let enabled =
          match pred with
          | None -> all_tuples
          | Some p ->
              List.filter
                (fun t -> truthy (eval ctx (push_tuple scopes t) p))
                all_tuples
        in
        List.iter (fun t -> Hashtbl.replace enabled_somewhere t ()) enabled;
        if enabled <> [] then begin
          any_enabled := true;
          if exec_sync ctx scopes enabled st then changed := true
        end)
      ps.pbranches;
    (match ps.pothers with
    | Some st ->
        let rest =
          List.filter (fun t -> not (Hashtbl.mem enabled_somewhere t)) all_tuples
        in
        if rest <> [] then if exec_sync ctx scopes rest st then changed := true
    | None -> ());
    !any_enabled
  in
  if ps.iterate then begin
    let rec loop () =
      burn ctx;
      if round () then loop ()
    in
    loop ()
  end
  else ignore (round ());
  !changed

and exec_oneof ctx scopes ps all_tuples : bool =
  let changed = ref false in
  let branches = Array.of_list ps.pbranches in
  let n = Array.length branches in
  let enabled_of (pred, _) =
    match pred with
    | None -> all_tuples
    | Some p ->
        List.filter (fun t -> truthy (eval ctx (push_tuple scopes t) p)) all_tuples
  in
  let round () =
    let start =
      match ctx.choice with
      | `First -> 0
      | `Rotate ->
          let s = ctx.choice_counter in
          ctx.choice_counter <- ctx.choice_counter + 1;
          s
    in
    let rec pick k =
      if k >= n then None
      else
        let idx = (start + k) mod n in
        let enabled = enabled_of branches.(idx) in
        if enabled <> [] then Some (idx, enabled) else pick (k + 1)
    in
    match pick 0 with
    | None -> false
    | Some (idx, enabled) ->
        let _, st = branches.(idx) in
        if exec_sync ctx scopes enabled st then changed := true;
        true
  in
  if ps.iterate then begin
    let rec loop () =
      burn ctx;
      if round () then loop ()
    in
    loop ()
  end
  else ignore (round ());
  !changed

and exec_solve ctx scopes ps all_tuples : bool =
  (* iterate the (guarded) simultaneous assignments to a fixed point; for a
     proper set this reaches the unique solution *)
  let changed_overall = ref false in
  let rec loop () =
    burn ctx;
    let changed = ref false in
    let enabled_somewhere = Hashtbl.create 64 in
    List.iter
      (fun (pred, st) ->
        let enabled =
          match pred with
          | None -> all_tuples
          | Some p ->
              List.filter
                (fun t -> truthy (eval ctx (push_tuple scopes t) p))
                all_tuples
        in
        List.iter (fun t -> Hashtbl.replace enabled_somewhere t ()) enabled;
        if enabled <> [] then
          if exec_sync ctx scopes enabled st then changed := true)
      ps.pbranches;
    (match ps.pothers with
    | Some st ->
        let rest =
          List.filter (fun t -> not (Hashtbl.mem enabled_somewhere t)) all_tuples
        in
        if rest <> [] then if exec_sync ctx scopes rest st then changed := true
    | None -> ());
    if !changed then begin
      changed_overall := true;
      loop ()
    end
  in
  loop ();
  !changed_overall

and exec_seq ctx scopes ps ambient sets : bool =
  let inner = cartesian sets in
  let changed = ref false in
  let pass () =
    let any = ref false in
    List.iter
      (fun t ->
        List.iter
          (fun (pred, st) ->
            if ambient = [] then begin
              (* front-end iteration *)
              let sc = push_tuple scopes t in
              let on =
                match pred with None -> true | Some p -> truthy (eval ctx sc p)
              in
              if on then begin
                any := true;
                match exec_stmt ctx sc st with
                | `Normal -> ()
                | `Break | `Continue | `Return _ ->
                    error "break/continue/return may not escape a seq statement"
              end
            end
            else begin
              (* inside a parallel construct: each element step runs
                 synchronously for the enabled ambient tuples *)
              let extended =
                List.map
                  (fun amb ->
                    let amb' =
                      List.filter (fun (n, _) -> not (List.mem_assoc n t)) amb
                    in
                    amb' @ t)
                  ambient
              in
              let enabled =
                match pred with
                | None -> extended
                | Some p ->
                    List.filter
                      (fun tp -> truthy (eval ctx (push_tuple scopes tp) p))
                      extended
              in
              if enabled <> [] then begin
                any := true;
                if exec_sync ctx scopes enabled st then changed := true
              end
            end)
          ps.pbranches;
        match ps.pothers with
        | Some _ -> error "others is not meaningful on seq statements"
        | None -> ())
      inner;
    !any
  in
  if ps.iterate then begin
    let rec loop () =
      burn ctx;
      if pass () then loop ()
    in
    loop ()
  end
  else ignore (pass ());
  !changed

(* ---------------- front-end statement execution ---------------- *)

and exec_stmt ctx scopes st :
    [ `Normal | `Break | `Continue | `Return of value option ] =
  match st.s with
  | Sempty -> `Normal
  | Sassign (op, lhs, rhs) ->
      let _, read, write = target_loc ctx scopes lhs in
      let v = eval ctx scopes rhs in
      write (apply_assign_op op (read ()) v);
      `Normal
  | Sexpr { e = Ecall ("print", args); _ } ->
      let b = Buffer.create 32 in
      List.iter
        (fun a ->
          match a.e with
          | Estr s -> Buffer.add_string b s
          | _ -> (
              match eval ctx scopes a with
              | Vint i -> Buffer.add_string b (string_of_int i)
              | Vfloat f -> Buffer.add_string b (Printf.sprintf "%g" f)))
        args;
      ctx.out <- Buffer.contents b :: ctx.out;
      `Normal
  | Sexpr { e = Ecall ("swap", [ la; lb ]); _ } ->
      let _, reada, writea = target_loc ctx scopes la in
      let _, readb, writeb = target_loc ctx scopes lb in
      let va = reada () and vb = readb () in
      writea vb;
      writeb va;
      `Normal
  | Sexpr e ->
      ignore (eval ctx scopes e);
      `Normal
  | Sif (c, then_, else_) ->
      if truthy (eval ctx scopes c) then exec_stmt ctx scopes then_
      else (
        match else_ with Some s -> exec_stmt ctx scopes s | None -> `Normal)
  | Swhile (c, body) ->
      let rec loop () =
        burn ctx;
        if truthy (eval ctx scopes c) then
          match exec_stmt ctx scopes body with
          | `Normal | `Continue -> loop ()
          | `Break -> `Normal
          | `Return _ as r -> r
        else `Normal
      in
      loop ()
  | Sfor (init, cond, step, body) ->
      (match init with
      | Some s -> ignore (exec_stmt ctx scopes s)
      | None -> ());
      let rec loop () =
        burn ctx;
        let go =
          match cond with None -> true | Some c -> truthy (eval ctx scopes c)
        in
        if go then
          match exec_stmt ctx scopes body with
          | `Normal | `Continue ->
              (match step with
              | Some s -> ignore (exec_stmt ctx scopes s)
              | None -> ());
              loop ()
          | `Break -> `Normal
          | `Return _ as r -> r
        else `Normal
      in
      loop ()
  | Sblock b -> exec_block ctx scopes b
  | Sreturn e ->
      `Return (match e with Some ex -> Some (eval ctx scopes ex) | None -> None)
  | Sbreak -> `Break
  | Scontinue -> `Continue
  | Spar _ | Sseq _ | Ssolve _ | Soneof _ ->
      ignore (exec_construct ctx scopes [] st.sloc (kind_of st) (par_of st));
      `Normal

and par_of st =
  match st.s with
  | Spar ps | Sseq ps | Ssolve ps | Soneof ps -> ps
  | _ -> assert false

and exec_block ctx scopes b :
    [ `Normal | `Break | `Continue | `Return of value option ] =
  let scopes = List.fold_left (declare ctx) scopes b.bdecls in
  let rec go = function
    | [] -> `Normal
    | st :: rest -> (
        match exec_stmt ctx scopes st with
        | `Normal -> go rest
        | other -> other)
  in
  go b.bstmts

and declare ctx scopes d =
  match d with
  | Dvar (ty, ds) ->
      List.fold_left
        (fun sc dd ->
          if dd.ddims = [] then begin
            let init =
              match dd.dinit with
              | Some e -> coerce ty (eval ctx sc e)
              | None -> coerce ty (Vint 0)
            in
            (dd.dname, Escalar (ty, ref init)) :: sc
          end
          else begin
            let dims = Array.of_list (List.map Sema.const_eval dd.ddims) in
            let total = Array.fold_left ( * ) 1 dims in
            let a =
              {
                aid = (ctx.next_arr_id <- ctx.next_arr_id + 1; ctx.next_arr_id);
                aty = ty;
                adims = dims;
                data = Array.make total (coerce ty (Vint 0));
              }
            in
            (dd.dname, Earray a) :: sc
          end)
        scopes ds
  | Dindexset defs ->
      List.fold_left
        (fun sc def ->
          let values =
            match def.ispec with
            | Irange (lo, hi) ->
                let lo = Sema.const_eval lo and hi = Sema.const_eval hi in
                Array.init (hi - lo + 1) (fun k -> lo + k)
            | Ilist es -> Array.of_list (List.map Sema.const_eval es)
            | Ialias other ->
                let _, values = lookup_set sc other in
                values
          in
          (def.set_name, Eset (def.elem_name, values)) :: sc)
        scopes defs

(* ---------------- program entry ---------------- *)

type result = { r_out : string list; r_globals : scopes }

let run ?(seed = 12345) ?(fuel = 2_000_000) ?(choice = `First) prog =
  let funcs =
    List.filter_map (function Tfunc f -> Some (f.fname, f) | _ -> None) prog
  in
  let ctx =
    {
      funcs;
      globals = [];
      rand = seed land 0x3FFFFFFF;
      out = [];
      fuel;
      choice;
      choice_counter = 0;
      next_arr_id = 0;
    }
  in
  let globals =
    List.fold_left
      (fun sc top ->
        match top with
        | Tdecl d -> declare ctx sc d
        | Tfunc _ | Tmap _ -> sc)
      [] prog
  in
  ctx.globals <- globals;
  (match List.assoc_opt "main" funcs with
  | Some f -> (
      match exec_block ctx globals f.fbody with
      | `Return _ | `Normal -> ()
      | `Break | `Continue -> error "break/continue escaped main")
  | None -> error "program has no main function");
  { r_out = List.rev ctx.out; r_globals = globals }

let output r = r.r_out

let find_array r name =
  match List.assoc_opt name r.r_globals with
  | Some (Earray a) -> a
  | _ -> error "no global array named %s" name

let int_array r name =
  let a = find_array r name in
  Array.map to_int a.data

let float_array r name =
  let a = find_array r name in
  Array.map to_float a.data

let scalar r name =
  match List.assoc_opt name r.r_globals with
  | Some (Escalar (_, v)) -> !v
  | _ -> error "no global scalar named %s" name
