(** Source locations and located errors for the UC front end. *)

type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let make ~line ~col = { line; col }

let pp fmt { line; col } = Format.fprintf fmt "%d:%d" line col

(** Raised by every front-end phase (lexer, parser, sema, mapping,
    codegen) on a user-program error. *)
exception Error of t * string

let error loc fmt = Format.kasprintf (fun s -> raise (Error (loc, s))) fmt

let error_to_string = function
  | Error (loc, msg) -> Format.asprintf "%a: %s" pp loc msg
  | e -> Printexc.to_string e
