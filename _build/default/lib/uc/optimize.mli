(** Code optimizations (paper section 4, "code optimizations").

    This module performs the source-level 'peep-hole' optimizations the
    paper lists: constant folding and algebraic simplification.  Common
    sub-expression elimination is performed during code generation (see
    {!Codegen}), where context masks make validity explicit, and the
    processor optimization lives there too. *)

(** [fold_program p] folds constant sub-expressions ([2 * 8 - 1] becomes
    [15]) and applies safe algebraic identities ([x + 0], [x * 1],
    [x * 0] when [x] is pure, [!!x] on predicates, constant selections of
    [?:] and short-circuit operators with constant left sides). *)
val fold_program : Ast.program -> Ast.program

(** [fold_expr e] folds one expression. *)
val fold_expr : Ast.expr -> Ast.expr
