open Token

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }
let loc st = Loc.make ~line:st.line ~col:(st.pos - st.bol + 1)
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_ws_and_comments st
  | '/' when peek2 st = '/' ->
      while (not (eof st)) && peek st <> '\n' do
        advance st
      done;
      skip_ws_and_comments st
  | '/' when peek2 st = '*' ->
      let start = loc st in
      advance st;
      advance st;
      let rec close () =
        if eof st then Loc.error start "unterminated comment"
        else if peek st = '*' && peek2 st = '/' then begin
          advance st;
          advance st
        end
        else begin
          advance st;
          close ()
        end
      in
      close ();
      skip_ws_and_comments st
  | _ -> ()

let lex_number st =
  let start = loc st in
  let b = Buffer.create 8 in
  while is_digit (peek st) do
    Buffer.add_char b (peek st);
    advance st
  done;
  (* "0..9" must lex as INT 0, DOTDOT, INT 9 *)
  if peek st = '.' && peek2 st <> '.' then begin
    Buffer.add_char b '.';
    advance st;
    while is_digit (peek st) do
      Buffer.add_char b (peek st);
      advance st
    done;
    if peek st = 'e' || peek st = 'E' then begin
      Buffer.add_char b 'e';
      advance st;
      if peek st = '-' || peek st = '+' then begin
        Buffer.add_char b (peek st);
        advance st
      end;
      while is_digit (peek st) do
        Buffer.add_char b (peek st);
        advance st
      done
    end;
    match float_of_string_opt (Buffer.contents b) with
    | Some f -> (FLOAT f, start)
    | None -> Loc.error start "invalid float literal %s" (Buffer.contents b)
  end
  else
    match int_of_string_opt (Buffer.contents b) with
    | Some i -> (INT i, start)
    | None -> Loc.error start "invalid integer literal %s" (Buffer.contents b)

let lex_ident st =
  let start = loc st in
  let b = Buffer.create 8 in
  while is_alnum (peek st) do
    Buffer.add_char b (peek st);
    advance st
  done;
  let name = Buffer.contents b in
  (* "index-set" is a single keyword containing a hyphen *)
  if
    name = "index"
    && peek st = '-'
    && st.pos + 4 <= String.length st.src
    && String.sub st.src (st.pos + 1) 3 = "set"
    && not (st.pos + 4 < String.length st.src && is_alnum st.src.[st.pos + 4])
  then begin
    advance st;
    advance st;
    advance st;
    advance st;
    (KW_INDEXSET, start)
  end
  else
    match List.assoc_opt name Token.keyword_table with
    | Some kw -> (kw, start)
    | None -> (IDENT name, start)

let lex_string st =
  let start = loc st in
  advance st;
  let b = Buffer.create 16 in
  let rec go () =
    if eof st then Loc.error start "unterminated string literal"
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          advance st;
          (match peek st with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | c -> Buffer.add_char b c);
          advance st;
          go ()
      | c ->
          Buffer.add_char b c;
          advance st;
          go ()
  in
  go ();
  (STRING (Buffer.contents b), start)

(* One raw token (no macro expansion, '#' returned as a directive marker). *)
type raw = Tok of Token.t * Loc.t | Hash of Loc.t | Reof of Loc.t

let next_raw st =
  skip_ws_and_comments st;
  let l = loc st in
  if eof st then Reof l
  else
    let c = peek st in
    if is_digit c then
      let t, l = lex_number st in
      Tok (t, l)
    else if is_alpha c then
      let t, l = lex_ident st in
      Tok (t, l)
    else if c = '"' then
      let t, l = lex_string st in
      Tok (t, l)
    else begin
      let two target tok_two tok_one =
        advance st;
        if peek st = target then begin
          advance st;
          tok_two
        end
        else tok_one
      in
      match c with
      | '#' ->
          advance st;
          Hash l
      | '$' ->
          advance st;
          let r =
            match peek st with
            | '+' -> Ast.Rsum
            | '&' -> Ast.Rland
            | '>' -> Ast.Rmax
            | '<' -> Ast.Rmin
            | '*' -> Ast.Rprod
            | '|' -> Ast.Rlor
            | '^' -> Ast.Rxor
            | ',' -> Ast.Rarb
            | c -> Loc.error l "invalid reduction operator $%c" c
          in
          advance st;
          Tok (RED r, l)
      | '+' -> Tok (two '=' PLUSEQ PLUS, l)
      | '-' -> Tok (two '=' MINUSEQ MINUS, l)
      | '*' -> Tok (two '=' STAREQ STAR, l)
      | '/' -> Tok (two '=' SLASHEQ SLASH, l)
      | '%' -> Tok (two '=' PERCENTEQ PERCENT, l)
      | '=' -> Tok (two '=' EQ ASSIGN, l)
      | '!' -> Tok (two '=' NE NOT, l)
      | '<' ->
          advance st;
          (match peek st with
          | '=' ->
              advance st;
              Tok (LE, l)
          | '<' ->
              advance st;
              Tok (SHL, l)
          | '?' when peek2 st = '=' ->
              advance st;
              advance st;
              Tok (MINASSIGN, l)
          | _ -> Tok (LT, l))
      | '>' ->
          advance st;
          (match peek st with
          | '=' ->
              advance st;
              Tok (GE, l)
          | '>' ->
              advance st;
              Tok (SHR, l)
          | '?' when peek2 st = '=' ->
              advance st;
              advance st;
              Tok (MAXASSIGN, l)
          | _ -> Tok (GT, l))
      | '&' -> Tok (two '&' ANDAND AMP, l)
      | '|' -> Tok (two '|' OROR PIPE, l)
      | '^' ->
          advance st;
          Tok (CARET, l)
      | '~' ->
          advance st;
          Tok (TILDE, l)
      | '?' ->
          advance st;
          Tok (QUESTION, l)
      | ':' ->
          advance st;
          Tok (COLON, l)
      | ';' ->
          advance st;
          Tok (SEMI, l)
      | ',' ->
          advance st;
          Tok (COMMA, l)
      | '(' ->
          advance st;
          Tok (LPAREN, l)
      | ')' ->
          advance st;
          Tok (RPAREN, l)
      | '{' ->
          advance st;
          Tok (LBRACE, l)
      | '}' ->
          advance st;
          Tok (RBRACE, l)
      | '[' ->
          advance st;
          Tok (LBRACKET, l)
      | ']' ->
          advance st;
          Tok (RBRACKET, l)
      | '.' ->
          advance st;
          if peek st = '.' then begin
            advance st;
            Tok (DOTDOT, l)
          end
          else Loc.error l "unexpected '.'"
      | c -> Loc.error l "unexpected character %C" c
    end

let max_macro_depth = 32

let tokenize src =
  let st = make src in
  let macros : (string, Token.t list) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  let rec expand depth tok l =
    match tok with
    | IDENT name when Hashtbl.mem macros name ->
        if depth > max_macro_depth then
          Loc.error l "macro expansion too deep for %s (cyclic #define?)" name;
        List.iter (fun t -> expand (depth + 1) t l) (Hashtbl.find macros name)
    | t -> out := (t, l) :: !out
  in
  let read_directive l =
    (* only "#define NAME tokens-to-eol" is supported *)
    let dline = st.line in
    (match next_raw st with
    | Tok (IDENT "define", _) when st.line = dline -> ()
    | Tok (t, dl) -> Loc.error dl "unsupported directive #%s" (Token.to_string t)
    | Hash dl | Reof dl -> Loc.error dl "malformed preprocessor directive");
    let name =
      match next_raw st with
      | Tok (IDENT n, nl) when st.line = dline -> n
      | _ -> Loc.error l "#define expects a macro name on the same line"
    in
    (* gather replacement tokens up to the end of the directive line *)
    let body = ref [] in
    let rec gather () =
      skip_ws_and_comments_until_newline ()
    and skip_ws_and_comments_until_newline () =
      (* stop before consuming tokens on the next line *)
      let save_pos = st.pos and save_line = st.line and save_bol = st.bol in
      match next_raw st with
      | Tok (t, _) when st.line = dline ->
          body := t :: !body;
          gather ()
      | Reof _ -> ()
      | _ ->
          (* token starts on a later line (or a '#'): rewind *)
          st.pos <- save_pos;
          st.line <- save_line;
          st.bol <- save_bol
    in
    gather ();
    Hashtbl.replace macros name (List.rev !body)
  in
  let rec loop () =
    match next_raw st with
    | Reof l ->
        out := (EOF, l) :: !out;
        Array.of_list (List.rev !out)
    | Hash l ->
        read_directive l;
        loop ()
    | Tok (t, l) ->
        expand 0 t l;
        loop ()
  in
  loop ()
