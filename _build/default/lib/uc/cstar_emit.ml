open Ast

(* The emitter renders the compilation strategy in the appendix's C*
   dialect (Rose & Steele 1987): one domain per array shape, coordinate
   recovery from `this', `where' for predicates, combining assignments
   for reductions and remote min-updates. *)

type st = {
  buf : Buffer.t;
  mutable indent : int;
  mutable shapes : (int list * string) list;      (* dims -> domain name *)
  mutable arrays : (string * (base_ty * int list)) list;
  mutable sets : (string * (string * int array)) list;  (* set -> elem, values *)
  mutable elem_env : (string * string) list;      (* index elem -> C* expr *)
  mutable tmp : int;
}

let line st fmt =
  Format.kasprintf
    (fun s ->
      Buffer.add_string st.buf (String.make (2 * st.indent) ' ');
      Buffer.add_string st.buf s;
      Buffer.add_char st.buf '\n')
    fmt

let blank st = Buffer.add_char st.buf '\n'

let with_indent st f =
  st.indent <- st.indent + 1;
  f ();
  st.indent <- st.indent - 1

let shape_name st dims =
  match List.assoc_opt dims st.shapes with
  | Some n -> n
  | None ->
      let n =
        "SHAPE_" ^ String.concat "x" (List.map string_of_int dims)
      in
      st.shapes <- st.shapes @ [ (dims, n) ];
      n

let domain_var name = String.lowercase_ascii name ^ "_d"

let fresh st base =
  st.tmp <- st.tmp + 1;
  Printf.sprintf "%s_%d" base st.tmp

let ty_name = function Tint -> "int" | Tfloat -> "float"

(* ---------------- expressions ---------------- *)

let rec expr st e =
  match e.e with
  | Eint i -> string_of_int i
  | Efloat f -> Printf.sprintf "%g" f
  | Estr s -> Printf.sprintf "%S" s
  | Einf -> "INF"
  | Evar v -> (
      match List.assoc_opt v st.elem_env with Some c -> c | None -> v)
  | Eindex ({ e = Evar name; _ }, subs) -> (
      match List.assoc_opt name st.arrays with
      | Some (_, dims) ->
          let dn = domain_var (shape_name st dims) in
          (* identity accesses read the local member; everything else is a
             left-indexed (router) access *)
          let idx =
            List.map (fun s -> Printf.sprintf "[%s]" (expr st s)) subs
          in
          if is_identity st subs dims then name
          else Printf.sprintf "%s%s.%s" dn (String.concat "" idx) name
      | None -> Pretty.expr_to_string e)
  | Eindex _ -> Pretty.expr_to_string e
  | Ebin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr st a) (binop_name op) (expr st b)
  | Eun (op, a) -> Printf.sprintf "(%s%s)" (unop_name op) (expr st a)
  | Econd (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (expr st c) (expr st a) (expr st b)
  | Ecall (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (expr st) args))
  | Ereduce r -> reduction st r

and is_identity st subs dims =
  List.length subs = List.length dims
  && List.for_all
       (fun s ->
         match s.e with
         | Evar v -> List.mem_assoc v st.elem_env
         | _ -> false)
       subs

and red_cstar_op = function
  | Rsum -> "+="
  | Rprod -> "*="
  | Rmin -> "<?="
  | Rmax -> ">?="
  | Rland -> "&="
  | Rlor -> "|="
  | Rxor -> "^="
  | Rarb -> "=,"

and reduction st r =
  (* C* writes a reduction as a combining assignment from all active
     instances; the index sets become an activation of the product
     domain *)
  let sets = String.concat ", " r.rsets in
  let body =
    String.concat " "
      (List.map
         (fun (p, ex) ->
           match p with
           | Some p -> Printf.sprintf "where (%s) %s" (expr st p) (expr st ex)
           | None -> expr st ex)
         r.rbranches)
  in
  let others =
    match r.rothers with
    | Some ex -> Printf.sprintf " else %s" (expr st ex)
    | None -> ""
  in
  Printf.sprintf "(%s [with %s] %s%s)" (red_cstar_op r.rop) sets body others

let resolve_set_values st def =
  match def.ispec with
  | Irange (lo, hi) ->
      let lo = Sema.const_eval lo and hi = Sema.const_eval hi in
      Array.init (hi - lo + 1) (fun k -> lo + k)
  | Ilist es -> Array.of_list (List.map Sema.const_eval es)
  | Ialias other -> (
      match List.assoc_opt other st.sets with
      | Some (_, values) -> values
      | None -> [||])

(* ---------------- statements ---------------- *)

let rec stmt_fe st s =
  match s.s with
  | Sempty -> line st ";"
  | Sexpr e -> line st "%s;" (expr st e)
  | Sassign (op, l, r) ->
      line st "%s %s %s;" (expr st l) (assign_op_name op) (expr st r)
  | Sif (c, t, e) ->
      line st "if (%s) {" (expr st c);
      with_indent st (fun () -> stmt_fe st t);
      (match e with
      | Some e ->
          line st "} else {";
          with_indent st (fun () -> stmt_fe st e)
      | None -> ());
      line st "}"
  | Swhile (c, b) ->
      line st "while (%s) {" (expr st c);
      with_indent st (fun () -> stmt_fe st b);
      line st "}"
  | Sfor (i, c, s', b) ->
      let part f = function Some x -> f x | None -> "" in
      line st "for (%s; %s; %s) {"
        (part (simple st) i)
        (part (expr st) c)
        (part (simple st) s');
      with_indent st (fun () -> stmt_fe st b);
      line st "}"
  | Sblock b ->
      line st "{";
      with_indent st (fun () -> block st b ~parallel:false);
      line st "}"
  | Sreturn None -> line st "return;"
  | Sreturn (Some e) -> line st "return %s;" (expr st e)
  | Sbreak -> line st "break;"
  | Scontinue -> line st "continue;"
  | Spar ps -> par_block st ps ~kind:`Par
  | Sseq ps -> seq_block st ps ~parallel:false
  | Soneof ps -> par_block st ps ~kind:`Oneof
  | Ssolve ps -> par_block st ps ~kind:`Par

and simple st s =
  match s.s with
  | Sassign (op, l, r) ->
      Printf.sprintf "%s %s %s" (expr st l) (assign_op_name op) (expr st r)
  | Sexpr e -> expr st e
  | _ -> "/* ? */"

and stmt_par st s =
  match s.s with
  | Sempty -> line st ";"
  | Sexpr e -> line st "%s;" (expr st e)
  | Sassign (op, l, r) -> (
      (* remote targets become combining / checked sends in C* *)
      match l.e with
      | Eindex ({ e = Evar name; _ }, subs)
        when not
               (match List.assoc_opt name st.arrays with
               | Some (_, dims) -> is_identity st subs dims
               | None -> true) ->
          line st "%s %s %s;  /* router */" (expr st l) (assign_op_name op)
            (expr st r)
      | _ ->
          line st "%s %s %s;" (expr st l) (assign_op_name op) (expr st r))
  | Sif (c, t, e) ->
      line st "where (%s) {" (expr st c);
      with_indent st (fun () -> stmt_par st t);
      (match e with
      | Some e ->
          line st "} elsewhere {";
          with_indent st (fun () -> stmt_par st e)
      | None -> ());
      line st "}"
  | Swhile (c, b) ->
      line st "while (|= (%s)) {  /* SIMD while */" (expr st c);
      with_indent st (fun () ->
          line st "where (%s) {" (expr st c);
          with_indent st (fun () -> stmt_par st b);
          line st "}");
      line st "}"
  | Sblock b ->
      line st "{";
      with_indent st (fun () -> block st b ~parallel:true);
      line st "}"
  | Spar ps -> par_block st ps ~kind:`Par
  | Sseq ps -> seq_block st ps ~parallel:true
  | Soneof ps -> par_block st ps ~kind:`Oneof
  | Ssolve ps -> par_block st ps ~kind:`Par
  | Sfor _ | Sreturn _ | Sbreak | Scontinue ->
      line st "/* unsupported in parallel context */"

and bind_elems st sets_used dims =
  (* recover coordinates from `this', appendix style *)
  let dn = domain_var (shape_name st dims) in
  let off = fresh st "offset" in
  line st "int %s = this - &%s%s;" off dn
    (String.concat ""
       (List.map (fun _ -> "[0]") dims));
  let rank = List.length dims in
  List.iteri
    (fun k set ->
      match List.assoc_opt set st.sets with
      | Some (elem, _) ->
          let divisor =
            List.fold_left ( * ) 1
              (List.filteri (fun k' _ -> k' > k) dims)
          in
          let extent = List.nth dims k in
          let coord =
            if k = rank - 1 then Printf.sprintf "(%s %% %d)" off extent
            else if k = 0 then Printf.sprintf "(%s / %d)" off divisor
            else Printf.sprintf "((%s / %d) %% %d)" off divisor extent
          in
          line st "int %s = %s;" elem coord;
          st.elem_env <- (elem, elem) :: st.elem_env
      | None -> ())
    sets_used

and activation_dims st ps =
  List.map
    (fun set ->
      match List.assoc_opt set st.sets with
      | Some (_, values) -> 1 + Array.fold_left max 0 values
      | None -> 1)
    ps.psets

and par_block st ps ~kind =
  let dims = activation_dims st ps in
  let dname = shape_name st dims in
  let saved = st.elem_env in
  let star = if ps.iterate then "|= re-test; iterate: " else "" in
  (match kind with
  | `Par -> line st "[domain %s].{  /* %spar (%s) */" dname star
              (String.concat ", " ps.psets)
  | `Oneof ->
      line st "[domain %s].{  /* %soneof: first enabled branch only */" dname
        star);
  with_indent st (fun () ->
      bind_elems st ps.psets dims;
      List.iter
        (fun (pred, body) ->
          match pred with
          | Some p ->
              line st "where (%s) {" (expr st p);
              with_indent st (fun () -> stmt_par st body);
              line st "}"
          | None -> stmt_par st body)
        ps.pbranches;
      match ps.pothers with
      | Some body ->
          let preds = List.filter_map fst ps.pbranches in
          let negated =
            String.concat " || " (List.map (fun p -> expr st p) preds)
          in
          line st "where (!(%s)) {  /* others */" negated;
          with_indent st (fun () -> stmt_par st body);
          line st "}"
      | None -> ());
  line st "}";
  st.elem_env <- saved

and seq_block st ps ~parallel =
  List.iter
    (fun set ->
      match List.assoc_opt set st.sets with
      | Some (elem, values) ->
          let n = Array.length values in
          let contiguous =
            Array.for_all
              (fun k -> values.(k) = values.(0) + k)
              (Array.init n Fun.id)
          in
          if contiguous then
            line st "for (int %s = %d; %s <= %d; %s++) {" elem values.(0) elem
              values.(n - 1) elem
          else
            line st "for (int %s in {%s}) {" elem
              (String.concat ", "
                 (List.map string_of_int (Array.to_list values)));
          st.elem_env <- (elem, elem) :: st.elem_env;
          st.indent <- st.indent + 1
      | None -> ())
    ps.psets;
  List.iter
    (fun (pred, body) ->
      match pred with
      | Some p when parallel ->
          line st "where (%s) {" (expr st p);
          with_indent st (fun () -> stmt_par st body);
          line st "}"
      | Some p ->
          line st "if (%s) {" (expr st p);
          with_indent st (fun () -> stmt_fe st body);
          line st "}"
      | None -> if parallel then stmt_par st body else stmt_fe st body)
    ps.pbranches;
  List.iter
    (fun set ->
      if List.mem_assoc set st.sets then begin
        st.indent <- st.indent - 1;
        line st "}"
      end)
    ps.psets

and block st b ~parallel =
  List.iter
    (fun d ->
      match d with
      | Dvar (ty, ds) ->
          List.iter
            (fun dd ->
              if dd.ddims = [] then
                match dd.dinit with
                | Some init ->
                    line st "%s %s = %s;" (ty_name ty) dd.dname (expr st init)
                | None -> line st "%s %s;" (ty_name ty) dd.dname
              else
                line st "%s %s%s;" (ty_name ty) dd.dname
                  (String.concat ""
                     (List.map
                        (fun e -> Printf.sprintf "[%s]" (expr st e))
                        dd.ddims)))
            ds
      | Dindexset defs ->
          List.iter
            (fun def ->
              line st "/* index-set %s:%s */" def.set_name def.elem_name;
              st.sets <-
                (def.set_name, (def.elem_name, resolve_set_values st def))
                :: st.sets)
            defs)
    b.bdecls;
  List.iter (if parallel then stmt_par st else stmt_fe st) b.bstmts

(* ---------------- program ---------------- *)

let emit_program prog =
  let st =
    {
      buf = Buffer.create 4096;
      indent = 0;
      shapes = [];
      arrays = [];
      sets = [];
      elem_env = [];
      tmp = 0;
    }
  in
  line st "/* C* translation produced by ucc (cf. paper section 5: the";
  line st "   prototype UC compiler generated C* for the CM-2). */";
  blank st;
  (* first pass: collect shapes, arrays, sets, scalars *)
  let scalars = ref [] in
  List.iter
    (function
      | Tdecl (Dvar (ty, ds)) ->
          List.iter
            (fun dd ->
              if dd.ddims = [] then scalars := (dd.dname, ty) :: !scalars
              else begin
                let dims = List.map Sema.const_eval dd.ddims in
                ignore (shape_name st dims);
                st.arrays <- (dd.dname, (ty, dims)) :: st.arrays
              end)
            ds
      | Tdecl (Dindexset defs) ->
          List.iter
            (fun def ->
              st.sets <-
                (def.set_name, (def.elem_name, resolve_set_values st def))
                :: st.sets)
            defs
      | Tfunc _ | Tmap _ -> ())
    prog;
  (* domain declarations: conforming arrays share one domain (the default
     mapping) *)
  List.iter
    (fun (dims, dname) ->
      line st "domain %s {" dname;
      with_indent st (fun () ->
          List.iter
            (fun (aname, (ty, adims)) ->
              if adims = dims then line st "%s %s;" (ty_name ty) aname)
            (List.rev st.arrays));
      line st "} %s%s;" (domain_var dname)
        (String.concat ""
           (List.map (fun d -> Printf.sprintf "[%d]" d) dims)))
    st.shapes;
  blank st;
  List.iter
    (fun (name, ty) -> line st "%s %s;  /* front end */" (ty_name ty) name)
    (List.rev !scalars);
  blank st;
  (* map sections survive as comments: C* has no equivalent *)
  List.iter
    (function
      | Tmap m ->
          List.iter
            (fun mp ->
              line st "/* map: %s */"
                (Format.asprintf "%a"
                   (fun fmt () ->
                     match mp with
                     | Mpermute pm ->
                         Format.fprintf fmt "permute %s relative to %s"
                           pm.ptarget pm.psource
                     | Mfold (a, f, _) -> Format.fprintf fmt "fold %s by %d" a f
                     | Mcopy (a, _, _) -> Format.fprintf fmt "copy %s" a)
                   ()))
            m.mmappings
      | _ -> ())
    prog;
  (* main *)
  List.iter
    (function
      | Tfunc f when f.fname = "main" ->
          line st "void main() {";
          with_indent st (fun () -> block st f.fbody ~parallel:false);
          line st "}"
      | _ -> ())
    prog;
  Buffer.contents st.buf

let emit_source src =
  let prog = Parser.parse_program src in
  ignore (Sema.check prog);
  let prog = Transform.apply prog in
  emit_program prog
