(** Pretty-printer for UC abstract syntax.

    The output is valid UC: [print_program] followed by
    {!Parser.parse_program} round-trips (the printed form of the reparse
    equals the original printed form), which the test suite checks with
    property tests. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string
