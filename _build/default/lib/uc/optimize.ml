open Ast

(* purity: safe to delete if its value is unused (no rand, no calls that
   could be impure once inlining has run; user calls are conservatively
   impure) *)
let rec pure e =
  match e.e with
  | Eint _ | Efloat _ | Einf | Evar _ -> true
  | Estr _ -> false
  | Eindex (b, subs) -> pure b && List.for_all pure subs
  | Ebin (_, a, b) -> pure a && pure b
  | Eun (_, a) -> pure a
  | Econd (c, a, b) -> pure c && pure a && pure b
  | Ecall (("power2" | "abs" | "min" | "max" | "tofloat" | "toint"), args) ->
      List.for_all pure args
  | Ecall _ -> false
  | Ereduce _ -> false

let int_of e = match e.e with Eint i -> Some i | _ -> None

let is_int k e = match e.e with Eint i -> i = k | _ -> false

let mk d loc = { e = d; eloc = loc }

let rec fold_expr e =
  let loc = e.eloc in
  match e.e with
  | Eint _ | Efloat _ | Estr _ | Einf | Evar _ -> e
  | Eindex (b, subs) -> { e with e = Eindex (b, List.map fold_expr subs) }
  | Eun (op, a) -> (
      let a = fold_expr a in
      match op, a.e with
      | Neg, Eint i -> mk (Eint (-i)) loc
      | Neg, Efloat f -> mk (Efloat (-.f)) loc
      | Lnot, Eint i -> mk (Eint (if i = 0 then 1 else 0)) loc
      | Bnot, Eint i -> mk (Eint (lnot i)) loc
      (* !!x is not simply x (0/1 normalisation), but !!!x = !x *)
      | Lnot, Eun (Lnot, { e = Eun (Lnot, inner); _ }) ->
          mk (Eun (Lnot, inner)) loc
      | _ -> mk (Eun (op, a)) loc)
  | Econd (c, a, b) -> (
      let c = fold_expr c in
      let a = fold_expr a in
      let b = fold_expr b in
      match int_of c with
      | Some 0 -> b
      | Some _ -> a
      | None -> mk (Econd (c, a, b)) loc)
  | Ecall (f, args) -> (
      let args = List.map fold_expr args in
      let ints = List.map int_of args in
      match f, ints with
      | "power2", [ Some n ] when n >= 0 && n < 30 -> mk (Eint (1 lsl n)) loc
      | "abs", [ Some n ] -> mk (Eint (abs n)) loc
      | "min", [ Some x; Some y ] -> mk (Eint (min x y)) loc
      | "max", [ Some x; Some y ] -> mk (Eint (max x y)) loc
      | "toint", [ Some x ] -> mk (Eint x) loc
      | _ -> mk (Ecall (f, args)) loc)
  | Ereduce r ->
      mk
        (Ereduce
           {
             r with
             rbranches =
               List.map
                 (fun (p, ex) -> (Option.map fold_expr p, fold_expr ex))
                 r.rbranches;
             rothers = Option.map fold_expr r.rothers;
           })
        loc
  | Ebin (op, a, b) -> (
      let a = fold_expr a in
      let b = fold_expr b in
      let redo d = mk d loc in
      match op, int_of a, int_of b with
      | Add, Some x, Some y -> redo (Eint (x + y))
      | Sub, Some x, Some y -> redo (Eint (x - y))
      | Mul, Some x, Some y -> redo (Eint (x * y))
      | Div, Some x, Some y when y <> 0 -> redo (Eint (x / y))
      | Mod, Some x, Some y when y <> 0 -> redo (Eint (x mod y))
      | Shl, Some x, Some y when y >= 0 && y < 62 -> redo (Eint (x lsl y))
      | Shr, Some x, Some y when y >= 0 && y < 62 -> redo (Eint (x asr y))
      | Band, Some x, Some y -> redo (Eint (x land y))
      | Bor, Some x, Some y -> redo (Eint (x lor y))
      | Bxor, Some x, Some y -> redo (Eint (x lxor y))
      | Eq, Some x, Some y -> redo (Eint (if x = y then 1 else 0))
      | Ne, Some x, Some y -> redo (Eint (if x <> y then 1 else 0))
      | Lt, Some x, Some y -> redo (Eint (if x < y then 1 else 0))
      | Le, Some x, Some y -> redo (Eint (if x <= y then 1 else 0))
      | Gt, Some x, Some y -> redo (Eint (if x > y then 1 else 0))
      | Ge, Some x, Some y -> redo (Eint (if x >= y then 1 else 0))
      | Land, Some 0, _ -> redo (Eint 0)
      | Land, Some _, _ -> redo (Ebin (Ne, b, mk (Eint 0) loc))
      | Lor, Some 0, _ -> redo (Ebin (Ne, b, mk (Eint 0) loc))
      | Lor, Some _, _ -> redo (Eint 1)
      (* algebraic identities; dropping x needs purity *)
      | Add, Some 0, _ -> b
      | Add, _, Some 0 -> a
      | Sub, _, Some 0 -> a
      | Mul, Some 1, _ -> b
      | Mul, _, Some 1 -> a
      | Mul, Some 0, _ when pure b -> redo (Eint 0)
      | Mul, _, Some 0 when pure a -> redo (Eint 0)
      | Div, _, Some 1 -> a
      | Shl, _, Some 0 -> a
      | Shr, _, Some 0 -> a
      | _ -> redo (Ebin (op, a, b)))

let rec fold_stmt st =
  let d =
    match st.s with
    | Sexpr e -> Sexpr (fold_expr e)
    | Sassign (op, l, r) -> Sassign (op, fold_expr l, fold_expr r)
    | Sif (c, t, e) -> (
        let c = fold_expr c in
        match int_of c, e with
        | Some 0, Some e -> (fold_stmt e).s
        | Some 0, None -> Sempty
        | Some _, _ -> (fold_stmt t).s
        | None, _ -> Sif (c, fold_stmt t, Option.map fold_stmt e))
    | Swhile (c, b) -> Swhile (fold_expr c, fold_stmt b)
    | Sfor (i, c, s, b) ->
        Sfor
          ( Option.map fold_stmt i,
            Option.map fold_expr c,
            Option.map fold_stmt s,
            fold_stmt b )
    | Sblock b -> Sblock (fold_block b)
    | Sreturn e -> Sreturn (Option.map fold_expr e)
    | Spar ps -> Spar (fold_par ps)
    | Sseq ps -> Sseq (fold_par ps)
    | Ssolve ps -> Ssolve (fold_par ps)
    | Soneof ps -> Soneof (fold_par ps)
    | (Sempty | Sbreak | Scontinue) as d -> d
  in
  { st with s = d }

and fold_par ps =
  {
    ps with
    pbranches =
      List.map (fun (p, st) -> (Option.map fold_expr p, fold_stmt st)) ps.pbranches;
    pothers = Option.map fold_stmt ps.pothers;
  }

and fold_block b =
  {
    bdecls =
      List.map
        (function
          | Dvar (ty, ds) ->
              Dvar
                ( ty,
                  List.map (fun d -> { d with dinit = Option.map fold_expr d.dinit }) ds
                )
          | Dindexset _ as d -> d)
        b.bdecls;
    bstmts = List.map fold_stmt b.bstmts;
  }

let fold_program prog =
  List.map
    (function
      | Tfunc f -> Tfunc { f with fbody = fold_block f.fbody }
      | (Tdecl _ | Tmap _) as t -> t)
    prog
