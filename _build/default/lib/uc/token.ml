(** Lexical tokens of UC. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string                 (* only valid as a print argument *)
  | RED of Ast.redop                 (* $+ $& $> $< $* $| $^ $, *)
  (* keywords *)
  | KW_INT | KW_FLOAT | KW_VOID | KW_INDEXSET
  | KW_ST | KW_OTHERS
  | KW_PAR | KW_SEQ | KW_SOLVE | KW_ONEOF
  | KW_MAP | KW_PERMUTE | KW_FOLD | KW_COPY | KW_BY | KW_ALONG
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_INF
  | KW_GOTO                          (* recognized only to be rejected *)
  (* operators and punctuation *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | MINASSIGN | MAXASSIGN            (* <?= and >?= *)
  | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | NOT
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | QUESTION | COLON | SEMI | COMMA
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | DOTDOT
  | EOF

let to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | RED r -> Ast.redop_name r
  | KW_INT -> "int" | KW_FLOAT -> "float" | KW_VOID -> "void"
  | KW_INDEXSET -> "index-set"
  | KW_ST -> "st" | KW_OTHERS -> "others"
  | KW_PAR -> "par" | KW_SEQ -> "seq" | KW_SOLVE -> "solve" | KW_ONEOF -> "oneof"
  | KW_MAP -> "map" | KW_PERMUTE -> "permute" | KW_FOLD -> "fold"
  | KW_COPY -> "copy" | KW_BY -> "by" | KW_ALONG -> "along"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_INF -> "INF" | KW_GOTO -> "goto"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | ASSIGN -> "=" | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*="
  | SLASHEQ -> "/=" | PERCENTEQ -> "%="
  | MINASSIGN -> "<?=" | MAXASSIGN -> ">?="
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | ANDAND -> "&&" | OROR -> "||" | NOT -> "!"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | SHL -> "<<" | SHR -> ">>"
  | QUESTION -> "?" | COLON -> ":" | SEMI -> ";" | COMMA -> ","
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | DOTDOT -> ".."
  | EOF -> "<eof>"

let keyword_table : (string * t) list =
  [
    ("int", KW_INT); ("float", KW_FLOAT); ("void", KW_VOID);
    ("st", KW_ST); ("others", KW_OTHERS);
    ("par", KW_PAR); ("seq", KW_SEQ); ("solve", KW_SOLVE); ("oneof", KW_ONEOF);
    ("map", KW_MAP); ("permute", KW_PERMUTE); ("fold", KW_FOLD);
    ("copy", KW_COPY); ("by", KW_BY); ("along", KW_ALONG);
    ("if", KW_IF); ("else", KW_ELSE); ("while", KW_WHILE); ("for", KW_FOR);
    ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE);
    ("INF", KW_INF); ("goto", KW_GOTO);
  ]
