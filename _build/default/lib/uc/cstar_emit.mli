(** C* source emission.

    The paper's prototype compiler translated UC to C* and handed the
    result to Thinking Machines' compiler (section 5).  This module
    reproduces that surface: it renders a checked, transformed UC program
    as C*-style source — domains derived from the program's array shapes,
    [\[domain D\].{...}] activation blocks with [where] statements for the
    [st] predicates, combining assignments for remote updates, and
    front-end C for the sequential parts.

    The output documents the compilation strategy (it is what the 1990
    tool chain would have consumed); it is not fed back into the
    simulator, which consumes {!Cm.Paris} directly. *)

(** [emit_program program] renders C* text for a program that has already
    passed {!Sema.check} and {!Transform.apply}. *)
val emit_program : Ast.program -> string

(** Convenience: parse, check, transform, emit. *)
val emit_source : string -> string
