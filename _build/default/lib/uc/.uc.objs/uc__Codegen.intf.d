lib/uc/codegen.mli: Ast Cm Mapping
