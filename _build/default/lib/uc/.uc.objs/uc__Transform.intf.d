lib/uc/transform.mli: Ast
