lib/uc/optimize.ml: Ast List Option
