lib/uc/sema.ml: Array Ast Builtins Cm List Loc
