lib/uc/mapping.ml: Array Ast List Loc Sema
