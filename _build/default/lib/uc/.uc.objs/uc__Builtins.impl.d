lib/uc/builtins.ml: List
