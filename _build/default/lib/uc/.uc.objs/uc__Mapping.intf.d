lib/uc/mapping.mli: Ast
