lib/uc/pretty.mli: Ast Format
