lib/uc/parser.mli: Ast
