lib/uc/pretty.ml: Ast Format List String
