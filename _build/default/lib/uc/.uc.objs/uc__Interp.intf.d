lib/uc/interp.mli: Ast
