lib/uc/optimize.mli: Ast
