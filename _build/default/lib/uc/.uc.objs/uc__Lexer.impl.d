lib/uc/lexer.ml: Array Ast Buffer Hashtbl List Loc String Token
