lib/uc/ast.ml: Loc
