lib/uc/compile.ml: Array Cm Codegen List Mapping Optimize Parser Sema Transform
