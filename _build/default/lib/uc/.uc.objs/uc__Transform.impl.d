lib/uc/transform.ml: Array Ast List Loc Option Printf Sema
