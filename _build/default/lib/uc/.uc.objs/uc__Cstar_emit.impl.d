lib/uc/cstar_emit.ml: Array Ast Buffer Format Fun List Parser Pretty Printf Sema String Transform
