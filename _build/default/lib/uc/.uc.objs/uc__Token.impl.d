lib/uc/token.ml: Ast Printf
