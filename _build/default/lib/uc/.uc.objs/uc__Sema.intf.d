lib/uc/sema.mli: Ast
