lib/uc/lexer.mli: Loc Token
