lib/uc/codegen.ml: Array Ast Cm Fun Hashtbl List Loc Mapping Option Printf Sema
