lib/uc/parser.ml: Array Ast Lexer List Loc Token
