lib/uc/cstar_emit.mli: Ast
