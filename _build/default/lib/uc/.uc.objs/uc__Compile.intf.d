lib/uc/compile.mli: Cm Codegen
