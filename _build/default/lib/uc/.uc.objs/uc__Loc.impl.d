lib/uc/loc.ml: Format Printexc
