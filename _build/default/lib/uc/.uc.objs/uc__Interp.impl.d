lib/uc/interp.ml: Array Ast Buffer Cm Float Format Hashtbl List Printf Sema
