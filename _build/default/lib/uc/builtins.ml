(** Builtin functions of the UC implementation.

    [power2], [abs], [min], [max] and [rand] appear in the paper's
    programs; [tofloat]/[toint] stand in for C casts; [swap] is the
    exchange procedure used by the odd-even transposition sort example;
    [print] is a front-end output facility for examples and the CLI. *)

type kind =
  | Pure of int            (* arity; usable in any context *)
  | Rand                   (* rand(): no args, impure but deterministic LCG *)
  | Swap                   (* statement-level, two lvalue arguments *)
  | Print                  (* front-end only, variadic *)

let table : (string * kind) list =
  [
    ("power2", Pure 1);
    ("abs", Pure 1);
    ("min", Pure 2);
    ("max", Pure 2);
    ("tofloat", Pure 1);
    ("toint", Pure 1);
    ("rand", Rand);
    ("swap", Swap);
    ("print", Print);
  ]

let lookup name = List.assoc_opt name table
let is_builtin name = lookup name <> None
