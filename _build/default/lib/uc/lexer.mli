(** Hand-written lexer for UC.

    Handles C-style comments ([/* */] and [//]) and a minimal
    object-like-macro preprocessor: lines of the form
    [#define NAME token...] define a macro that is substituted (with
    recursive expansion up to a fixed depth) wherever [NAME] later
    appears.  The paper's programs use this for the conventional
    [#define N 32] array-size constants. *)

(** [tokenize src] lexes a whole compilation unit.  The result always ends
    with [EOF].
    @raise Loc.Error on invalid input. *)
val tokenize : string -> (Token.t * Loc.t) array
