open Ast

type array_info = { aty : base_ty; adims : int list }

type info = {
  global_arrays : (string * array_info) list;
  global_scalars : (string * base_ty) list;
  global_sets : (string * int array) list;
  funcs : (string * func) list;
  has_main : bool;
}

(* ---------------- constant expressions ---------------- *)

let rec const_eval e =
  match e.e with
  | Eint i -> i
  | Einf -> Cm.Paris.inf_int
  | Eun (Neg, a) -> -const_eval a
  | Eun (Bnot, a) -> lnot (const_eval a)
  | Eun (Lnot, a) -> if const_eval a = 0 then 1 else 0
  | Ebin (op, a, b) -> (
      let x = const_eval a and y = const_eval b in
      match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div ->
          if y = 0 then Loc.error e.eloc "division by zero in constant expression"
          else x / y
      | Mod ->
          if y = 0 then Loc.error e.eloc "modulo by zero in constant expression"
          else x mod y
      | Shl -> x lsl y
      | Shr -> x asr y
      | Band -> x land y
      | Bor -> x lor y
      | Bxor -> x lxor y
      | Eq -> if x = y then 1 else 0
      | Ne -> if x <> y then 1 else 0
      | Lt -> if x < y then 1 else 0
      | Le -> if x <= y then 1 else 0
      | Gt -> if x > y then 1 else 0
      | Ge -> if x >= y then 1 else 0
      | Land -> if x <> 0 && y <> 0 then 1 else 0
      | Lor -> if x <> 0 || y <> 0 then 1 else 0)
  | Econd (c, a, b) -> if const_eval c <> 0 then const_eval a else const_eval b
  | Ecall ("power2", [ a ]) -> 1 lsl const_eval a
  | Ecall ("abs", [ a ]) -> abs (const_eval a)
  | Ecall ("min", [ a; b ]) -> min (const_eval a) (const_eval b)
  | Ecall ("max", [ a; b ]) -> max (const_eval a) (const_eval b)
  | _ ->
      Loc.error e.eloc
        "expression is not a compile-time constant (index-set bounds and \
         array dimensions must be constant)"

(* ---------------- environment ---------------- *)

type binding =
  | Bscalar of base_ty * bool       (* bool: declared inside a parallel body *)
  | Barray of base_ty * int list
  | Barray_param of base_ty * int   (* rank *)
  | Bset of string * int array      (* element name, values *)
  | Belem                           (* a bound index element: an int *)

type env = {
  mutable scopes : (string * binding) list list;
  mutable funcs : (string * func) list;
  mutable in_par : bool;            (* inside a parallel construct *)
  mutable in_solve : bool;
  mutable loop_depth : int;
  mutable ret : base_ty option option;  (* None: not in a function *)
}

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let bind env loc name b =
  match env.scopes with
  | scope :: rest ->
      if List.mem_assoc name scope then
        Loc.error loc "redeclaration of %s in the same scope" name;
      env.scopes <- ((name, b) :: scope) :: rest
  | [] -> assert false

let rec lookup_scopes name = function
  | [] -> None
  | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some b -> Some b
      | None -> lookup_scopes name rest)

let lookup env name = lookup_scopes name env.scopes

let lookup_set env loc name =
  match lookup env name with
  | Some (Bset (elem, values)) -> (elem, values)
  | Some _ -> Loc.error loc "%s is not an index set" name
  | None -> Loc.error loc "unknown index set %s" name

(* ---------------- types ---------------- *)

let lub a b = if a = Tfloat || b = Tfloat then Tfloat else Tint

let rec type_of env e =
  match e.e with
  | Eint _ -> Tint
  | Efloat _ -> Tfloat
  | Einf -> Tint
  | Estr _ ->
      Loc.error e.eloc "string literals are only allowed as print() arguments"
  | Evar name -> (
      match lookup env name with
      | Some (Bscalar (ty, _)) -> ty
      | Some Belem -> Tint
      | Some (Barray _ | Barray_param _) ->
          Loc.error e.eloc
            "array %s used as a value (arrays may only be indexed or passed \
             to functions)"
            name
      | Some (Bset _) -> Loc.error e.eloc "index set %s used as a value" name
      | None -> Loc.error e.eloc "unknown identifier %s" name)
  | Eindex (base, subs) -> (
      let name =
        match base.e with
        | Evar n -> n
        | _ -> Loc.error base.eloc "only named arrays can be indexed"
      in
      List.iter
        (fun s ->
          if type_of env s <> Tint then
            Loc.error s.eloc "array subscript must be an int")
        subs;
      match lookup env name with
      | Some (Barray (ty, dims)) ->
          if List.length subs <> List.length dims then
            Loc.error e.eloc "%s expects %d subscripts, got %d" name
              (List.length dims) (List.length subs);
          ty
      | Some (Barray_param (ty, rank)) ->
          if List.length subs <> rank then
            Loc.error e.eloc "%s expects %d subscripts, got %d" name rank
              (List.length subs);
          ty
      | Some _ -> Loc.error e.eloc "%s is not an array" name
      | None -> Loc.error e.eloc "unknown array %s" name)
  | Ebin (op, a, b) -> (
      let ta = type_of env a and tb = type_of env b in
      match op with
      | Add | Sub | Mul | Div -> lub ta tb
      | Mod | Band | Bor | Bxor | Shl | Shr ->
          if ta <> Tint || tb <> Tint then
            Loc.error e.eloc "operator %s requires int operands" (binop_name op);
          Tint
      | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> Tint)
  | Eun (op, a) -> (
      let ta = type_of env a in
      match op with
      | Neg -> ta
      | Lnot -> Tint
      | Bnot ->
          if ta <> Tint then Loc.error e.eloc "operator ~ requires an int operand";
          Tint)
  | Econd (c, a, b) ->
      ignore (type_of env c);
      lub (type_of env a) (type_of env b)
  | Ecall (name, args) -> type_of_call env e.eloc name args
  | Ereduce r -> type_of_reduction env e.eloc r

and type_of_call env loc name args =
  match Builtins.lookup name with
  | Some (Builtins.Pure arity) ->
      if List.length args <> arity then
        Loc.error loc "%s expects %d arguments, got %d" name arity
          (List.length args);
      let tys = List.map (type_of env) args in
      (match name, tys with
      | "power2", [ t ] ->
          if t <> Tint then Loc.error loc "power2 requires an int argument";
          Tint
      | "abs", [ t ] -> t
      | ("min" | "max"), [ a; b ] -> lub a b
      | "tofloat", [ _ ] -> Tfloat
      | "toint", [ _ ] -> Tint
      | _ -> assert false)
  | Some Builtins.Rand ->
      if args <> [] then Loc.error loc "rand takes no arguments";
      Tint
  | Some Builtins.Swap -> Loc.error loc "swap is a statement, not an expression"
  | Some Builtins.Print -> Loc.error loc "print is a statement, not an expression"
  | None -> (
      match List.assoc_opt name env.funcs with
      | None ->
          Loc.error loc
            "unknown function %s (functions must be defined before use)" name
      | Some f ->
          check_call_args env loc f args;
          if env.in_par then check_inlinable env loc f;
          (match f.fret with
          | Some ty -> ty
          | None ->
              Loc.error loc "void function %s used in an expression" f.fname))

and check_call_args env loc f args =
  if List.length args <> List.length f.fparams then
    Loc.error loc "%s expects %d arguments, got %d" f.fname
      (List.length f.fparams) (List.length args);
  List.iter2
    (fun p a ->
      if p.prank > 0 then begin
        (* array parameter: the argument must be a bare array of that rank *)
        match a.e with
        | Evar n -> (
            match lookup env n with
            | Some (Barray (ty, dims)) ->
                if List.length dims <> p.prank then
                  Loc.error a.eloc "array argument %s has rank %d, expected %d"
                    n (List.length dims) p.prank;
                if ty <> p.pty then
                  Loc.error a.eloc "array argument %s has the wrong element type" n
            | Some (Barray_param (ty, rank)) ->
                if rank <> p.prank || ty <> p.pty then
                  Loc.error a.eloc "array argument %s does not match parameter" n
            | _ -> Loc.error a.eloc "%s is not an array" n)
        | _ ->
            Loc.error a.eloc
              "argument for array parameter %s must be an array name" p.pname
      end
      else ignore (type_of env a))
    f.fparams args

and check_inlinable env loc f =
  (* a function called inside a parallel construct must be straight-line:
     declarations, assignments, and a final return expression *)
  let fail () =
    Loc.error loc
      "function %s cannot be used inside a parallel construct: only \
       straight-line functions (assignments and a final return) can be \
       inlined onto the processors"
      f.fname
  in
  let rec check_stmts = function
    | [] -> ()
    | [ { s = Sreturn (Some _); _ } ] -> ()
    | { s = Sassign _; _ } :: rest -> check_stmts rest
    | _ -> fail ()
  in
  check_stmts f.fbody.bstmts

and type_of_reduction env loc r =
  if r.rsets = [] then Loc.error loc "reduction needs at least one index set";
  push_scope env;
  List.iter
    (fun sname ->
      let elem, values = lookup_set env loc sname in
      bind env loc elem Belem;
      ignore values)
    r.rsets;
  let branch_ty =
    List.fold_left
      (fun acc (pred, e) ->
        (match pred with Some p -> ignore (type_of env p) | None -> ());
        lub acc (type_of env e))
      Tint r.rbranches
  in
  let branch_ty =
    match r.rothers with
    | Some e -> lub branch_ty (type_of env e)
    | None -> branch_ty
  in
  (match r.rop with
  | Rland | Rlor | Rxor ->
      if branch_ty <> Tint then
        Loc.error loc "reduction %s requires int operands" (redop_name r.rop)
  | Rsum | Rprod | Rmin | Rmax | Rarb -> ());
  (match r.rbranches, r.rothers with
  | [ (None, _) ], Some _ ->
      Loc.error loc "others requires at least one st branch"
  | _ -> ());
  pop_scope env;
  branch_ty

(* ---------------- lvalues and statements ---------------- *)

let check_lvalue env loc lv ~solve =
  match lv.e with
  | Eindex _ -> ignore (type_of env lv)
  | Evar name -> (
      if solve then
        Loc.error loc "solve assignments must target array elements";
      match lookup env name with
      | Some (Bscalar (_, par_local)) ->
          if env.in_par && not par_local then
            Loc.error loc
              "%s: only array elements and par-local scalars may be assigned \
               inside a parallel construct"
              name
      | Some Belem -> Loc.error loc "index element %s cannot be assigned" name
      | Some _ -> Loc.error loc "%s is not assignable" name
      | None -> Loc.error loc "unknown identifier %s" name)
  | _ -> Loc.error loc "invalid assignment target"

let rec check_stmt env st =
  match st.s with
  | Sempty -> ()
  | Sexpr e -> check_expr_stmt env st.sloc e
  | Sassign (op, lhs, rhs) ->
      check_lvalue env st.sloc lhs ~solve:false;
      let tr = type_of env rhs in
      (match op with
      | Amod ->
          let tl = type_of env lhs in
          if tl <> Tint || tr <> Tint then
            Loc.error st.sloc "%%= requires int operands"
      | _ -> ignore tr)
  | Sif (c, then_, else_) ->
      ignore (type_of env c);
      check_stmt env then_;
      (match else_ with Some s -> check_stmt env s | None -> ())
  | Swhile (c, body) ->
      ignore (type_of env c);
      env.loop_depth <- env.loop_depth + 1;
      check_stmt env body;
      env.loop_depth <- env.loop_depth - 1
  | Sfor (init, cond, step, body) ->
      (match init with Some s -> check_stmt env s | None -> ());
      (match cond with Some c -> ignore (type_of env c) | None -> ());
      (match step with Some s -> check_stmt env s | None -> ());
      env.loop_depth <- env.loop_depth + 1;
      check_stmt env body;
      env.loop_depth <- env.loop_depth - 1
  | Sblock b -> check_block env b
  | Sreturn e -> (
      if env.in_par then
        Loc.error st.sloc "return is not allowed inside a parallel construct";
      match env.ret with
      | None -> Loc.error st.sloc "return outside a function"
      | Some None -> (
          match e with
          | Some _ -> Loc.error st.sloc "void function returns a value"
          | None -> ())
      | Some (Some _) -> (
          match e with
          | Some ex -> ignore (type_of env ex)
          | None -> Loc.error st.sloc "non-void function returns no value"))
  | Sbreak | Scontinue ->
      if env.loop_depth = 0 then
        Loc.error st.sloc "break/continue outside a loop"
  | Spar ps -> check_par env st.sloc ps ~solve:false ~seq:false
  | Soneof ps ->
      if ps.pothers <> None then
        Loc.error st.sloc
          "others is not supported on oneof (only one enabled branch runs)";
      check_par env st.sloc ps ~solve:false ~seq:false
  | Sseq ps ->
      if ps.pothers <> None then
        Loc.error st.sloc "others is not meaningful on seq statements";
      check_par env st.sloc ps ~solve:false ~seq:true
  | Ssolve ps -> check_par env st.sloc ps ~solve:true ~seq:false

and check_expr_stmt env loc e =
  match e.e with
  | Ecall ("print", args) ->
      if env.in_par then
        Loc.error loc "print is only available on the front end (outside \
                       parallel constructs)";
      List.iter
        (fun a -> match a.e with Estr _ -> () | _ -> ignore (type_of env a))
        args
  | Ecall ("swap", args) -> (
      match args with
      | [ a; b ] ->
          check_lvalue env loc a ~solve:false;
          check_lvalue env loc b ~solve:false;
          let ta = type_of env a and tb = type_of env b in
          if ta <> tb then Loc.error loc "swap arguments must have the same type"
      | _ -> Loc.error loc "swap expects exactly two lvalue arguments")
  | Ecall (name, args) -> (
      match Builtins.lookup name with
      | Some (Builtins.Pure _ | Builtins.Rand) -> ignore (type_of env e)
      | Some _ -> assert false
      | None -> (
          match List.assoc_opt name env.funcs with
          | Some f ->
              check_call_args env loc f args;
              if env.in_par then check_inlinable env loc f
          | None ->
              Loc.error loc
                "unknown function %s (functions must be defined before use)"
                name))
  | _ -> Loc.error loc "expression statements must be calls"

and check_par env loc ps ~solve ~seq =
  if ps.psets = [] then Loc.error loc "parallel construct needs an index set";
  if solve then begin
    if env.in_solve then Loc.error loc "solve may not be nested inside solve";
    env.in_solve <- true
  end;
  push_scope env;
  List.iter
    (fun sname ->
      let elem, _ = lookup_set env loc sname in
      (* an inner use of a set hides any outer binding of its element *)
      (match env.scopes with
      | scope :: rest when List.mem_assoc elem scope ->
          (* two sets in one header sharing an element name *)
          env.scopes <- List.remove_assoc elem scope :: rest
      | _ -> ());
      bind env loc elem Belem)
    ps.psets;
  let was_par = env.in_par in
  let was_loop = env.loop_depth in
  (* a seq statement runs its body once per element; outside a parallel
     context it is ordinary front-end iteration *)
  if not seq then env.in_par <- true;
  env.loop_depth <- 0;
  List.iter
    (fun (pred, st) ->
      (match pred with Some p -> ignore (type_of env p) | None -> ());
      if solve then check_solve_body env st else check_stmt env st)
    ps.pbranches;
  (match ps.pothers with
  | Some st -> if solve then check_solve_body env st else check_stmt env st
  | None -> ());
  (match ps.pbranches, ps.pothers with
  | [ (None, _) ], Some _ ->
      Loc.error loc "others requires at least one st branch"
  | _ -> ());
  env.in_par <- was_par;
  env.loop_depth <- was_loop;
  if solve then env.in_solve <- false;
  pop_scope env

and check_solve_body env st =
  (* a proper set of assignments: only assignment statements (possibly in a
     block), each targeting an array element *)
  match st.s with
  | Sassign (Aset, lhs, rhs) ->
      check_lvalue env st.sloc lhs ~solve:true;
      ignore (type_of env rhs)
  | Sassign _ ->
      Loc.error st.sloc "solve bodies must use plain '=' assignments"
  | Sblock { bdecls = []; bstmts } -> List.iter (check_solve_body env) bstmts
  | _ ->
      Loc.error st.sloc
        "solve bodies must consist of assignment statements (a proper set of \
         equations, paper section 3.6)"

and check_block env b =
  push_scope env;
  List.iter (check_decl env) b.bdecls;
  List.iter (check_stmt env) b.bstmts;
  pop_scope env

and check_decl env d =
  match d with
  | Dvar (ty, ds) ->
      List.iter
        (fun dd ->
          let dims = List.map const_eval dd.ddims in
          List.iter
            (fun n ->
              if n <= 0 then
                Loc.error dd.dloc "array dimension must be positive")
            dims;
          (match dd.dinit with
          | Some e ->
              if dims <> [] then
                Loc.error dd.dloc "array initializers are not supported";
              ignore (type_of env e)
          | None -> ());
          if dims = [] then bind env dd.dloc dd.dname (Bscalar (ty, env.in_par))
          else begin
            if env.in_par then
              Loc.error dd.dloc
                "arrays may not be declared inside parallel constructs";
            bind env dd.dloc dd.dname (Barray (ty, dims))
          end)
        ds
  | Dindexset defs ->
      List.iter
        (fun def ->
          let values =
            match def.ispec with
            | Irange (lo, hi) ->
                let lo = const_eval lo and hi = const_eval hi in
                if hi < lo then
                  Loc.error def.iloc "empty index-set range {%d .. %d}" lo hi;
                Array.init (hi - lo + 1) (fun k -> lo + k)
            | Ilist es -> Array.of_list (List.map const_eval es)
            | Ialias other ->
                let _, values = lookup_set env def.iloc other in
                values
          in
          bind env def.iloc def.set_name (Bset (def.elem_name, values)))
        defs

(* ---------------- map sections ---------------- *)

(* a permute target subscript must be affine in a single index element:
   i, i + c, or i - c *)
let check_affine_sub env loc e =
  match e.e with
  | Evar v -> (v, 0)
  | Ebin (Add, { e = Evar v; _ }, c) -> (v, const_eval c)
  | Ebin (Sub, { e = Evar v; _ }, c) -> (v, -const_eval c)
  | _ ->
      Loc.error loc
        "permute subscripts must be affine in an index element (i, i + c or \
         i - c)"

let check_mapping env m =
  match m with
  | Mpermute pm ->
      let elems =
        List.map
          (fun sname ->
            let elem, _ = lookup_set env pm.mloc sname in
            elem)
          pm.pmsets
      in
      let check_array name rank =
        match lookup env name with
        | Some (Barray (_, dims)) ->
            if List.length dims <> rank then
              Loc.error pm.mloc "%s has rank %d but the mapping uses %d \
                                 subscripts" name (List.length dims) rank
        | Some _ | None -> Loc.error pm.mloc "unknown array %s in map section" name
      in
      check_array pm.ptarget (List.length pm.ptsubs);
      check_array pm.psource (List.length pm.pssubs);
      List.iter
        (fun s ->
          if not (List.mem s elems) then
            Loc.error pm.mloc
              "subscript %s of the source array is not an element of the \
               mapping's index sets" s)
        pm.pssubs;
      List.iter
        (fun e ->
          let v, _ = check_affine_sub env pm.mloc e in
          if not (List.mem v elems) then
            Loc.error pm.mloc
              "subscript %s of the target array is not an element of the \
               mapping's index sets" v)
        pm.ptsubs
  | Mfold (name, factor, loc) -> (
      if factor < 2 then Loc.error loc "fold factor must be at least 2";
      match lookup env name with
      | Some (Barray (_, dim0 :: _)) ->
          if dim0 mod factor <> 0 then
            Loc.error loc "fold factor %d does not divide the extent %d of %s"
              factor dim0 name
      | Some _ | None -> Loc.error loc "unknown array %s in map section" name)
  | Mcopy (name, n, loc) -> (
      let copies = const_eval n in
      if copies < 2 then Loc.error loc "copy count must be at least 2";
      match lookup env name with
      | Some (Barray _) -> ()
      | Some _ | None -> Loc.error loc "unknown array %s in map section" name)

(* ---------------- program ---------------- *)

let check prog =
  let env =
    { scopes = [ [] ]; funcs = []; in_par = false; in_solve = false;
      loop_depth = 0; ret = None }
  in
  List.iter
    (fun top ->
      match top with
      | Tdecl d -> check_decl env d
      | Tfunc f ->
          if List.mem_assoc f.fname env.funcs then
            Loc.error f.floc "redefinition of function %s" f.fname;
          if Builtins.is_builtin f.fname then
            Loc.error f.floc "%s is a builtin and cannot be redefined" f.fname;
          push_scope env;
          List.iter
            (fun p ->
              if p.prank = 0 then bind env p.ploc p.pname (Bscalar (p.pty, false))
              else bind env p.ploc p.pname (Barray_param (p.pty, p.prank)))
            f.fparams;
          env.ret <- Some f.fret;
          check_block env f.fbody;
          env.ret <- None;
          pop_scope env;
          env.funcs <- env.funcs @ [ (f.fname, f) ]
      | Tmap m ->
          List.iter
            (fun sname -> ignore (lookup_set env Loc.dummy sname))
            m.msets;
          List.iter (check_mapping env) m.mmappings)
    prog;
  (* collect global info from the outermost scope *)
  let top_scope = List.nth env.scopes (List.length env.scopes - 1) in
  let global_arrays =
    List.filter_map
      (function
        | name, Barray (aty, adims) -> Some (name, { aty; adims })
        | _ -> None)
      (List.rev top_scope)
  in
  let global_scalars =
    List.filter_map
      (function name, Bscalar (ty, _) -> Some (name, ty) | _ -> None)
      (List.rev top_scope)
  in
  let global_sets =
    List.filter_map
      (function name, Bset (_, values) -> Some (name, values) | _ -> None)
      (List.rev top_scope)
  in
  {
    global_arrays;
    global_scalars;
    global_sets;
    funcs = env.funcs;
    has_main = List.mem_assoc "main" env.funcs;
  }
