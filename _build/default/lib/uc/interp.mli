(** Reference interpreter for UC.

    Implements the paper's synchronous semantics directly:
    - a [par] statement executes each constituent statement in two phases
      (all enabled elements evaluate their right-hand sides, then all
      assignments commit), detecting the "at most one value per variable"
      rule dynamically;
    - [seq] iterates elements in index-set order;
    - [oneof] executes one enabled branch (deterministically the first, or
      round-robin under [`Rotate]);
    - [solve] (and [*solve]) iterates its assignments to a fixed point,
      which computes the solution of any proper set of equations;
    - [*]-prefixed constructs repeat while any predicate holds.

    The interpreter is the oracle for differential tests against the
    compiled Paris code: both use the same deterministic LCG for [rand],
    so results must match exactly. *)

type value = Vint of int | Vfloat of float

(** Raised on dynamic errors: assignment conflicts, subscripts out of
    range, division by zero, non-termination (fuel), etc. *)
exception Runtime_error of string

type result

(** [run program] type-checks nothing (callers should run {!Sema.check}
    first) and executes [main].  [fuel] bounds loop iterations of
    iterative constructs; [choice] selects the [oneof] strategy. *)
val run :
  ?seed:int -> ?fuel:int -> ?choice:[ `First | `Rotate ] -> Ast.program -> result

(** Lines produced by [print], in order. *)
val output : result -> string list

(** Final contents of a global array, flattened row-major. *)
val int_array : result -> string -> int array

val float_array : result -> string -> float array

(** Final value of a global scalar. *)
val scalar : result -> string -> value
