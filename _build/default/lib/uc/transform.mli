(** Source-to-source transformations run before code generation.

    - {b Function inlining}: the simulated CM front end has no call
      mechanism, and functions used inside parallel constructs must run
      on the data processors, so every user-function call is inlined
      (the paper's compiler achieved the same through C* code cloning).
      Function bodies must keep [return] in tail position.
    - {b solve lowering}: [solve] and [*solve] are translated to an
      iterative [*par] whose branch predicates add a change-detection
      guard [lhs != rhs], the paper's "general method" (section 3.6):
      execution stops at the fixed point of the proper set of
      assignments. *)

(** [apply program] returns an equivalent program containing no user
    function other than [main], and no [solve] construct.  Plain [solve]
    statements of the restricted wavefront form (a single assignment whose
    self-dependencies strictly decrease the diagonal sum) are scheduled
    statically as a [seq] over diagonals ([14], section 3.6) unless
    [schedule_solve:false]; everything else uses the general guarded-[*par]
    fixed point.
    @raise Loc.Error on constructs that cannot be inlined (e.g. an early
    return). *)
val apply : ?schedule_solve:bool -> Ast.program -> Ast.program
