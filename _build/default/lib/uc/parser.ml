open Ast
open Token

type p = { toks : (Token.t * Loc.t) array; mutable pos : int }

let cur p = fst p.toks.(p.pos)
let cur_loc p = snd p.toks.(p.pos)

let peek_tok p k =
  let i = p.pos + k in
  if i < Array.length p.toks then fst p.toks.(i) else EOF

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let err p fmt = Loc.error (cur_loc p) fmt

let expect p tok =
  if cur p = tok then advance p
  else
    err p "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (cur p))

let expect_ident p =
  match cur p with
  | IDENT name ->
      advance p;
      name
  | t -> err p "expected an identifier but found '%s'" (Token.to_string t)

let accept p tok =
  if cur p = tok then begin
    advance p;
    true
  end
  else false

(* ---------------- expressions ---------------- *)

let mk l e = { e; eloc = l }

let assign_of_token = function
  | ASSIGN -> Some Aset
  | PLUSEQ -> Some Aadd
  | MINUSEQ -> Some Asub
  | STAREQ -> Some Amul
  | SLASHEQ -> Some Adiv
  | PERCENTEQ -> Some Amod
  | MINASSIGN -> Some Amin
  | MAXASSIGN -> Some Amax
  | _ -> None

let rec parse_expr_p p = parse_cond p

and parse_cond p =
  let l = cur_loc p in
  let c = parse_lor p in
  if accept p QUESTION then begin
    let a = parse_expr_p p in
    expect p COLON;
    let b = parse_cond p in
    mk l (Econd (c, a, b))
  end
  else c

and parse_binlevel p next table =
  let l = cur_loc p in
  let rec go acc =
    match List.assoc_opt (cur p) table with
    | Some op ->
        advance p;
        let rhs = next p in
        go (mk l (Ebin (op, acc, rhs)))
    | None -> acc
  in
  go (next p)

and parse_lor p = parse_binlevel p parse_land [ (OROR, Lor) ]
and parse_land p = parse_binlevel p parse_bor [ (ANDAND, Land) ]
and parse_bor p = parse_binlevel p parse_bxor [ (PIPE, Bor) ]
and parse_bxor p = parse_binlevel p parse_band [ (CARET, Bxor) ]
and parse_band p = parse_binlevel p parse_equality [ (AMP, Band) ]

and parse_equality p = parse_binlevel p parse_rel [ (EQ, Eq); (NE, Ne) ]

and parse_rel p =
  parse_binlevel p parse_shift [ (LT, Lt); (LE, Le); (GT, Gt); (GE, Ge) ]

and parse_shift p = parse_binlevel p parse_add [ (SHL, Shl); (SHR, Shr) ]

and parse_add p = parse_binlevel p parse_mul [ (PLUS, Add); (MINUS, Sub) ]

and parse_mul p =
  parse_binlevel p parse_unary [ (STAR, Mul); (SLASH, Div); (PERCENT, Mod) ]

and parse_unary p =
  let l = cur_loc p in
  match cur p with
  | MINUS ->
      advance p;
      mk l (Eun (Neg, parse_unary p))
  | NOT ->
      advance p;
      mk l (Eun (Lnot, parse_unary p))
  | TILDE ->
      advance p;
      mk l (Eun (Bnot, parse_unary p))
  | PLUS ->
      advance p;
      parse_unary p
  | _ -> parse_postfix p

and parse_postfix p =
  let l = cur_loc p in
  let rec subs acc =
    if accept p LBRACKET then begin
      let i = parse_expr_p p in
      expect p RBRACKET;
      subs (i :: acc)
    end
    else List.rev acc
  in
  let base = parse_primary p in
  match cur p with
  | LBRACKET ->
      let indices = subs [] in
      mk l (Eindex (base, indices))
  | _ -> base

and parse_primary p =
  let l = cur_loc p in
  match cur p with
  | INT i ->
      advance p;
      mk l (Eint i)
  | FLOAT f ->
      advance p;
      mk l (Efloat f)
  | KW_INF ->
      advance p;
      mk l Einf
  | LPAREN ->
      advance p;
      let e = parse_expr_p p in
      expect p RPAREN;
      e
  | RED rop ->
      advance p;
      mk l (Ereduce (parse_reduction p rop))
  | IDENT name ->
      advance p;
      if accept p LPAREN then begin
        let args =
          if cur p = RPAREN then []
          else begin
            let rec go acc =
              let a = parse_call_arg p in
              if accept p COMMA then go (a :: acc) else List.rev (a :: acc)
            in
            go []
          end
        in
        expect p RPAREN;
        mk l (Ecall (name, args))
      end
      else mk l (Evar name)
  | t -> err p "unexpected '%s' in expression" (Token.to_string t)

and parse_call_arg p =
  (* string literals are only allowed as arguments of print() *)
  let l = cur_loc p in
  match cur p with
  | STRING s ->
      advance p;
      mk l (Estr s)
  | _ -> parse_expr_p p

and parse_reduction p rop =
  expect p LPAREN;
  let rec sets acc =
    let s = expect_ident p in
    if accept p COMMA then sets (s :: acc) else List.rev (s :: acc)
  in
  let rsets = sets [] in
  let red =
    if accept p SEMI then begin
      (* "$op (I; exp)": a single unpredicated branch *)
      let e = parse_expr_p p in
      { rop; rsets; rbranches = [ (None, e) ]; rothers = None }
    end
    else if cur p = KW_ST then begin
      let rec branches acc =
        if accept p KW_ST then begin
          expect p LPAREN;
          let pred = parse_expr_p p in
          expect p RPAREN;
          let e = parse_expr_p p in
          branches ((Some pred, e) :: acc)
        end
        else List.rev acc
      in
      let rbranches = branches [] in
      let rothers = if accept p KW_OTHERS then Some (parse_expr_p p) else None in
      { rop; rsets; rbranches; rothers }
    end
    else
      let e = parse_expr_p p in
      { rop; rsets; rbranches = [ (None, e) ]; rothers = None }
  in
  expect p RPAREN;
  red

(* ---------------- statements ---------------- *)

let rec parse_stmt p =
  let l = cur_loc p in
  match cur p with
  | SEMI ->
      advance p;
      { s = Sempty; sloc = l }
  | LBRACE ->
      let b = parse_block p in
      { s = Sblock b; sloc = l }
  | KW_IF ->
      advance p;
      expect p LPAREN;
      let c = parse_expr_p p in
      expect p RPAREN;
      let then_ = parse_stmt p in
      let else_ = if accept p KW_ELSE then Some (parse_stmt p) else None in
      { s = Sif (c, then_, else_); sloc = l }
  | KW_WHILE ->
      advance p;
      expect p LPAREN;
      let c = parse_expr_p p in
      expect p RPAREN;
      let body = parse_stmt p in
      { s = Swhile (c, body); sloc = l }
  | KW_FOR ->
      advance p;
      expect p LPAREN;
      let init = if cur p = SEMI then None else Some (parse_simple_stmt p) in
      expect p SEMI;
      let cond = if cur p = SEMI then None else Some (parse_expr_p p) in
      expect p SEMI;
      let step = if cur p = RPAREN then None else Some (parse_simple_stmt p) in
      expect p RPAREN;
      let body = parse_stmt p in
      { s = Sfor (init, cond, step, body); sloc = l }
  | KW_RETURN ->
      advance p;
      let e = if cur p = SEMI then None else Some (parse_expr_p p) in
      expect p SEMI;
      { s = Sreturn e; sloc = l }
  | KW_BREAK ->
      advance p;
      expect p SEMI;
      { s = Sbreak; sloc = l }
  | KW_CONTINUE ->
      advance p;
      expect p SEMI;
      { s = Scontinue; sloc = l }
  | KW_GOTO -> err p "goto is not allowed in UC (paper section 3)"
  | STAR -> (
      (* '*' prefixes an iterative par/seq/solve/oneof *)
      match peek_tok p 1 with
      | KW_PAR | KW_SEQ | KW_SOLVE | KW_ONEOF ->
          advance p;
          parse_par_like p ~iterate:true l
      | _ -> err p "'*' must be followed by par, seq, solve or oneof")
  | KW_PAR | KW_SEQ | KW_SOLVE | KW_ONEOF -> parse_par_like p ~iterate:false l
  | _ ->
      let st = parse_simple_stmt p in
      expect p SEMI;
      st

and parse_par_like p ~iterate l =
  let kind = cur p in
  advance p;
  expect p LPAREN;
  let rec sets acc =
    let s = expect_ident p in
    if accept p COMMA then sets (s :: acc) else List.rev (s :: acc)
  in
  let psets = sets [] in
  expect p RPAREN;
  let pbranches, pothers =
    if cur p = KW_ST then begin
      let rec branches acc =
        if accept p KW_ST then begin
          expect p LPAREN;
          let pred = parse_expr_p p in
          expect p RPAREN;
          let st = parse_stmt p in
          branches ((Some pred, st) :: acc)
        end
        else List.rev acc
      in
      let bs = branches [] in
      let others = if accept p KW_OTHERS then Some (parse_stmt p) else None in
      (bs, others)
    end
    else begin
      let st = parse_stmt p in
      let others = if accept p KW_OTHERS then Some (parse_stmt p) else None in
      ([ (None, st) ], others)
    end
  in
  let ps = { iterate; psets; pbranches; pothers } in
  let s =
    match kind with
    | KW_PAR -> Spar ps
    | KW_SEQ -> Sseq ps
    | KW_SOLVE -> Ssolve ps
    | KW_ONEOF -> Soneof ps
    | _ -> assert false
  in
  { s; sloc = l }

and parse_simple_stmt p =
  (* assignment or expression (call) statement, without the semicolon *)
  let l = cur_loc p in
  let lhs = parse_expr_with_strings p in
  match assign_of_token (cur p) with
  | Some op ->
      advance p;
      let rhs = parse_expr_p p in
      (match lhs.e with
      | Evar _ | Eindex _ -> ()
      | _ -> Loc.error lhs.eloc "left-hand side of assignment is not an lvalue");
      { s = Sassign (op, lhs, rhs); sloc = l }
  | None -> (
      match lhs.e with
      | Ecall _ -> { s = Sexpr lhs; sloc = l }
      | _ -> err p "expected an assignment or a call statement")

and parse_expr_with_strings p = parse_expr_p p

and parse_block p =
  expect p LBRACE;
  let rec decls acc =
    match cur p with
    | KW_INT | KW_FLOAT | KW_INDEXSET -> decls (parse_decl p :: acc)
    | _ -> List.rev acc
  in
  let bdecls = decls [] in
  let rec stmts acc =
    if cur p = RBRACE then List.rev acc else stmts (parse_stmt p :: acc)
  in
  let bstmts = stmts [] in
  expect p RBRACE;
  { bdecls; bstmts }

and parse_decl p =
  match cur p with
  | KW_INT | KW_FLOAT ->
      let ty = if cur p = KW_INT then Tint else Tfloat in
      advance p;
      let rec declarators acc =
        let dloc = cur_loc p in
        let dname = expect_ident p in
        let rec dims acc =
          if accept p LBRACKET then begin
            let d = parse_expr_p p in
            expect p RBRACKET;
            dims (d :: acc)
          end
          else List.rev acc
        in
        let ddims = dims [] in
        let dinit = if accept p ASSIGN then Some (parse_expr_p p) else None in
        let d = { dname; ddims; dinit; dloc } in
        if accept p COMMA then declarators (d :: acc)
        else begin
          expect p SEMI;
          List.rev (d :: acc)
        end
      in
      Dvar (ty, declarators [])
  | KW_INDEXSET ->
      advance p;
      let rec defs acc =
        let iloc = cur_loc p in
        let set_name = expect_ident p in
        expect p COLON;
        let elem_name = expect_ident p in
        expect p ASSIGN;
        let ispec =
          if accept p LBRACE then begin
            let first = parse_expr_p p in
            if accept p DOTDOT then begin
              let hi = parse_expr_p p in
              expect p RBRACE;
              Irange (first, hi)
            end
            else begin
              let rec more acc =
                if accept p COMMA then more (parse_expr_p p :: acc)
                else List.rev acc
              in
              let rest = more [] in
              expect p RBRACE;
              Ilist (first :: rest)
            end
          end
          else Ialias (expect_ident p)
        in
        let def = { set_name; elem_name; ispec; iloc } in
        if accept p COMMA then defs (def :: acc)
        else begin
          expect p SEMI;
          List.rev (def :: acc)
        end
      in
      Dindexset (defs [])
  | t -> err p "expected a declaration, found '%s'" (Token.to_string t)

(* ---------------- top level ---------------- *)

let parse_params p =
  expect p LPAREN;
  if accept p RPAREN then []
  else begin
    let rec go acc =
      let ploc = cur_loc p in
      let pty =
        match cur p with
        | KW_INT ->
            advance p;
            Tint
        | KW_FLOAT ->
            advance p;
            Tfloat
        | t -> err p "expected a parameter type, found '%s'" (Token.to_string t)
      in
      let pname = expect_ident p in
      let rec rank acc =
        if accept p LBRACKET then begin
          (* both  a[]  and  a[N]  are accepted for array parameters *)
          if cur p <> RBRACKET then ignore (parse_expr_p p);
          expect p RBRACKET;
          rank (acc + 1)
        end
        else acc
      in
      let prank = rank 0 in
      let param = { pname; pty; prank; ploc } in
      if accept p COMMA then go (param :: acc)
      else begin
        expect p RPAREN;
        List.rev (param :: acc)
      end
    in
    go []
  end

let parse_map_section p =
  expect p KW_MAP;
  expect p LPAREN;
  let rec sets acc =
    let s = expect_ident p in
    if accept p COMMA then sets (s :: acc) else List.rev (s :: acc)
  in
  let msets = sets [] in
  expect p RPAREN;
  expect p LBRACE;
  let rec mappings acc =
    match cur p with
    | RBRACE -> List.rev acc
    | KW_PERMUTE ->
        let mloc = cur_loc p in
        advance p;
        expect p LPAREN;
        let rec psets acc =
          let s = expect_ident p in
          if accept p COMMA then psets (s :: acc) else List.rev (s :: acc)
        in
        let pmsets = psets [] in
        expect p RPAREN;
        let ptarget = expect_ident p in
        let rec tsubs acc =
          if accept p LBRACKET then begin
            let e = parse_expr_p p in
            expect p RBRACKET;
            tsubs (e :: acc)
          end
          else List.rev acc
        in
        let ptsubs = tsubs [] in
        expect p COLON;
        expect p MINUS;
        let psource = expect_ident p in
        let rec ssubs acc =
          if accept p LBRACKET then begin
            let s = expect_ident p in
            expect p RBRACKET;
            ssubs (s :: acc)
          end
          else List.rev acc
        in
        let pssubs = ssubs [] in
        expect p SEMI;
        mappings
          (Mpermute { pmsets; ptarget; ptsubs; psource; pssubs; mloc } :: acc)
    | KW_FOLD ->
        let mloc = cur_loc p in
        advance p;
        let arr = expect_ident p in
        expect p KW_BY;
        let factor =
          match cur p with
          | INT i ->
              advance p;
              i
          | t -> err p "fold factor must be an integer literal, found '%s'"
                   (Token.to_string t)
        in
        expect p SEMI;
        mappings (Mfold (arr, factor, mloc) :: acc)
    | KW_COPY ->
        let mloc = cur_loc p in
        advance p;
        let arr = expect_ident p in
        expect p KW_ALONG;
        let n = parse_expr_p p in
        expect p SEMI;
        mappings (Mcopy (arr, n, mloc) :: acc)
    | t -> err p "expected permute, fold or copy, found '%s'" (Token.to_string t)
  in
  let mmappings = mappings [] in
  expect p RBRACE;
  { msets; mmappings }

let parse_top p =
  match cur p with
  | KW_MAP -> Tmap (parse_map_section p)
  | KW_INDEXSET -> Tdecl (parse_decl p)
  | KW_VOID | KW_INT | KW_FLOAT -> (
      let floc = cur_loc p in
      let ret =
        match cur p with
        | KW_VOID ->
            advance p;
            None
        | KW_INT ->
            advance p;
            Some Tint
        | KW_FLOAT ->
            advance p;
            Some Tfloat
        | _ -> assert false
      in
      (* function definition iff an identifier followed by '(' *)
      match cur p, peek_tok p 1 with
      | IDENT fname, LPAREN ->
          advance p;
          let fparams = parse_params p in
          let fbody = parse_block p in
          Tfunc { fname; fret = ret; fparams; fbody; floc }
      | IDENT _, _ -> (
          match ret with
          | None -> err p "void is only valid as a function return type"
          | Some ty ->
              (* re-parse as a variable declaration: rewind is not needed
                 because parse_decl consumed nothing yet; inline it *)
              let rec declarators acc =
                let dloc = cur_loc p in
                let dname = expect_ident p in
                let rec dims acc =
                  if accept p LBRACKET then begin
                    let d = parse_expr_p p in
                    expect p RBRACKET;
                    dims (d :: acc)
                  end
                  else List.rev acc
                in
                let ddims = dims [] in
                let dinit =
                  if accept p ASSIGN then Some (parse_expr_p p) else None
                in
                let d = { dname; ddims; dinit; dloc } in
                if accept p COMMA then declarators (d :: acc)
                else begin
                  expect p SEMI;
                  List.rev (d :: acc)
                end
              in
              Tdecl (Dvar (ty, declarators [])))
      | t, _ ->
          err p "expected an identifier after type, found '%s'"
            (Token.to_string t))
  | t -> err p "expected a declaration, function or map section, found '%s'"
           (Token.to_string t)

let parse_program src =
  let p = { toks = Lexer.tokenize src; pos = 0 } in
  let rec go acc = if cur p = EOF then List.rev acc else go (parse_top p :: acc) in
  go []

let parse_expr src =
  let p = { toks = Lexer.tokenize src; pos = 0 } in
  let e = parse_expr_p p in
  if cur p <> EOF then err p "trailing input after expression";
  e
