(** Abstract syntax of UC programs.

    UC is C restricted (no [goto], pointers only as array parameters)
    plus: the [index-set] type, the [$op] reduction expression, the
    [par]/[seq]/[solve]/[oneof] constructs with [st]/[others] blocks and
    the iterative [*] prefix, and the [map] section (paper section 3). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type unop = Neg | Lnot | Bnot

(** Reduction operators with their identity values (paper table 3.2):
    [$+] 0, [$&] 1, [$>] -INF, [$<] INF, [$*] 1, [$|] 0, [$^] 0,
    [$,] (arbitrary operand) INF. *)
type redop = Rsum | Rland | Rmax | Rmin | Rprod | Rlor | Rxor | Rarb

type base_ty = Tint | Tfloat

type expr = { e : expr_desc; eloc : Loc.t }

and expr_desc =
  | Eint of int
  | Efloat of float
  | Estr of string                           (* only as a print() argument *)
  | Einf                                     (* the predefined constant INF *)
  | Evar of string                           (* variable or index element *)
  | Eindex of expr * expr list               (* a[i][j] *)
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Econd of expr * expr * expr              (* c ? a : b *)
  | Ecall of string * expr list
  | Ereduce of reduction

and reduction = {
  rop : redop;
  rsets : string list;             (* index sets; multiple = Cartesian product *)
  rbranches : (expr option * expr) list;  (* [st (pred)] exp *)
  rothers : expr option;
}

(** Assignment operators: [=], [+=], [-=], [*=], [/=], [%=], and the
    C* -inspired min/max assignments [<?=] and [>?=] used by the optimizer. *)
type assign_op = Aset | Aadd | Asub | Amul | Adiv | Amod | Amin | Amax

type stmt = { s : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Sexpr of expr
  | Sassign of assign_op * expr * expr       (* lvalue op= rhs *)
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sfor of stmt option * expr option * stmt option * stmt
  | Sblock of block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Spar of par_stmt        (* par / seq / solve / oneof share a shape *)
  | Sseq of par_stmt
  | Ssolve of par_stmt
  | Soneof of par_stmt
  | Sempty

and par_stmt = {
  iterate : bool;                            (* '*' prefix *)
  psets : string list;
  pbranches : (expr option * stmt) list;     (* [st (pred)] stmt *)
  pothers : stmt option;
}

and block = { bdecls : decl list; bstmts : stmt list }

and decl =
  | Dvar of base_ty * declarator list
  | Dindexset of iset_def list

and declarator = {
  dname : string;
  ddims : expr list;                         (* [] for scalars *)
  dinit : expr option;
  dloc : Loc.t;
}

and iset_def = {
  set_name : string;
  elem_name : string;
  ispec : iset_spec;
  iloc : Loc.t;
}

and iset_spec =
  | Irange of expr * expr                    (* {lo .. hi} *)
  | Ilist of expr list                       (* {4, 2, 9} *)
  | Ialias of string                         (* J:j = I *)

type param = { pname : string; pty : base_ty; prank : int; ploc : Loc.t }
(** [prank] > 0 means an array parameter of that rank, passed by
    reference (the only pointer use UC allows). *)

type func = {
  fname : string;
  fret : base_ty option;                     (* None = void *)
  fparams : param list;
  fbody : block;
  floc : Loc.t;
}

(** Data-mapping declarations (paper section 4).  [permute] reorders an
    array relative to its default layout by an affine offset per axis;
    [fold] folds an axis by a factor; [copy] replicates along a new axis. *)
type mapping =
  | Mpermute of permute                      (* "permute (I) b[i+1] :- a[i];" *)
  | Mfold of string * int * Loc.t            (* "fold a by 2;" *)
  | Mcopy of string * expr * Loc.t           (* "copy a along N;" *)

and permute = {
  pmsets : string list;      (* the index sets the mapping ranges over *)
  ptarget : string;          (* the array being re-laid-out *)
  ptsubs : expr list;        (* its subscripts, in terms of the index elems *)
  psource : string;          (* the reference array *)
  pssubs : string list;      (* its subscripts: plain index elements *)
  mloc : Loc.t;
}

type map_section = { msets : string list; mmappings : mapping list }

type top =
  | Tdecl of decl
  | Tfunc of func
  | Tmap of map_section

type program = top list

(* ---- small accessors used across phases ---- *)

let redop_name = function
  | Rsum -> "$+" | Rland -> "$&" | Rmax -> "$>" | Rmin -> "$<"
  | Rprod -> "$*" | Rlor -> "$|" | Rxor -> "$^" | Rarb -> "$,"

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let unop_name = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

let assign_op_name = function
  | Aset -> "=" | Aadd -> "+=" | Asub -> "-=" | Amul -> "*=" | Adiv -> "/="
  | Amod -> "%=" | Amin -> "<?=" | Amax -> ">?="

let base_ty_name = function Tint -> "int" | Tfloat -> "float"
