(** Semantic analysis for UC.

    Checks performed (paper section 3):
    - name resolution with C-style block scoping; index elements are in
      scope only inside constructs that iterate their set, and inner uses
      of a set hide outer ones;
    - index-set bounds must be compile-time constants;
    - type checking of expressions, assignments, predicates and
      reductions ([$&], [$|], [$^] require int operands);
    - parallel-context legality: assignments target array elements or
      par-local scalars; [print] and [return] are front-end only;
    - [solve] bodies must be assignment statements (proper sets);
    - function calls: arity/kinds, no recursion, array parameters by
      reference with matching rank; functions called inside parallel
      constructs must be inlinable (straight-line, single return);
    - map sections: arrays exist, permute subscripts are affine in the
      index elements, fold factors divide the folded extent. *)

type array_info = { aty : Ast.base_ty; adims : int list }

(** Resolved compile-time information handed to later phases. *)
type info = {
  global_arrays : (string * array_info) list;
  global_scalars : (string * Ast.base_ty) list;
  global_sets : (string * int array) list;  (* set name -> element values *)
  funcs : (string * Ast.func) list;
  has_main : bool;
}

(** [check program] validates a parsed program.
    @raise Loc.Error with a source location on the first violation. *)
val check : Ast.program -> info

(** [const_eval e] evaluates a compile-time constant integer expression.
    @raise Loc.Error if the expression is not constant. *)
val const_eval : Ast.expr -> int
