open Ast

(* Precedence levels, higher binds tighter.  Mirrors the parser. *)
let binop_prec = function
  | Lor -> 1
  | Land -> 2
  | Bor -> 3
  | Bxor -> 4
  | Band -> 5
  | Eq | Ne -> 6
  | Lt | Le | Gt | Ge -> 7
  | Shl | Shr -> 8
  | Add | Sub -> 9
  | Mul | Div | Mod -> 10

let rec pp_expr_prec prec fmt e =
  match e.e with
  | Eint i -> if i < 0 then Format.fprintf fmt "(%d)" i else Format.fprintf fmt "%d" i
  | Efloat f ->
      let s = Format.asprintf "%.17g" f in
      (* make sure it reparses as a float, not an int *)
      let s =
        if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
        then s
        else s ^ ".0"
      in
      if f < 0.0 then Format.fprintf fmt "(%s)" s else Format.pp_print_string fmt s
  | Estr s -> Format.fprintf fmt "%S" s
  | Einf -> Format.pp_print_string fmt "INF"
  | Evar v -> Format.pp_print_string fmt v
  | Eindex (base, subs) ->
      pp_expr_prec 100 fmt base;
      List.iter (fun s -> Format.fprintf fmt "[%a]" (pp_expr_prec 0) s) subs
  | Ebin (op, a, b) ->
      let p = binop_prec op in
      if p < prec then Format.fprintf fmt "(";
      (* left-associative: the right operand needs one level more *)
      Format.fprintf fmt "%a %s %a" (pp_expr_prec p) a (binop_name op)
        (pp_expr_prec (p + 1)) b;
      if p < prec then Format.fprintf fmt ")"
  | Eun (op, a) ->
      if prec > 11 then Format.fprintf fmt "(";
      Format.fprintf fmt "%s%a" (unop_name op) (pp_expr_prec 11) a;
      if prec > 11 then Format.fprintf fmt ")"
  | Econd (c, a, b) ->
      if prec > 0 then Format.fprintf fmt "(";
      Format.fprintf fmt "%a ? %a : %a" (pp_expr_prec 1) c (pp_expr_prec 0) a
        (pp_expr_prec 0) b;
      if prec > 0 then Format.fprintf fmt ")"
  | Ecall (f, args) ->
      Format.fprintf fmt "%s(" f;
      List.iteri
        (fun i a ->
          if i > 0 then Format.fprintf fmt ", ";
          pp_expr_prec 0 fmt a)
        args;
      Format.fprintf fmt ")"
  | Ereduce r -> pp_reduction fmt r

and pp_reduction fmt r =
  Format.fprintf fmt "%s(%s" (redop_name r.rop) (String.concat ", " r.rsets);
  (match r.rbranches with
  | [ (None, e) ] -> Format.fprintf fmt "; %a" (pp_expr_prec 0) e
  | branches ->
      List.iter
        (fun (pred, e) ->
          match pred with
          | Some pr ->
              Format.fprintf fmt " st (%a) %a" (pp_expr_prec 0) pr
                (pp_expr_prec 0) e
          | None -> Format.fprintf fmt "; %a" (pp_expr_prec 0) e)
        branches);
  (match r.rothers with
  | Some e -> Format.fprintf fmt " others %a" (pp_expr_prec 0) e
  | None -> ());
  Format.fprintf fmt ")"

let pp_expr fmt e = pp_expr_prec 0 fmt e

let rec pp_stmt fmt st =
  match st.s with
  | Sempty -> Format.fprintf fmt ";"
  | Sexpr e -> Format.fprintf fmt "%a;" pp_expr e
  | Sassign (op, lhs, rhs) ->
      Format.fprintf fmt "%a %s %a;" pp_expr lhs (assign_op_name op) pp_expr rhs
  | Sif (c, then_, None) ->
      Format.fprintf fmt "@[<v 2>if (%a)@ %a@]" pp_expr c pp_stmt then_
  | Sif (c, then_, Some else_) ->
      Format.fprintf fmt "@[<v 2>if (%a)@ %a@]@ @[<v 2>else@ %a@]" pp_expr c
        pp_stmt then_ pp_stmt else_
  | Swhile (c, body) ->
      Format.fprintf fmt "@[<v 2>while (%a)@ %a@]" pp_expr c pp_stmt body
  | Sfor (init, cond, step, body) ->
      let pp_opt_stmt fmt = function
        | None -> ()
        | Some s -> pp_simple fmt s
      in
      let pp_opt_expr fmt = function
        | None -> ()
        | Some e -> pp_expr fmt e
      in
      Format.fprintf fmt "@[<v 2>for (%a; %a; %a)@ %a@]" pp_opt_stmt init
        pp_opt_expr cond pp_opt_stmt step pp_stmt body
  | Sblock b -> pp_block fmt b
  | Sreturn None -> Format.fprintf fmt "return;"
  | Sreturn (Some e) -> Format.fprintf fmt "return %a;" pp_expr e
  | Sbreak -> Format.fprintf fmt "break;"
  | Scontinue -> Format.fprintf fmt "continue;"
  | Spar ps -> pp_par fmt "par" ps
  | Sseq ps -> pp_par fmt "seq" ps
  | Ssolve ps -> pp_par fmt "solve" ps
  | Soneof ps -> pp_par fmt "oneof" ps

and pp_simple fmt st =
  (* statement without trailing ';' (for-loop headers) *)
  match st.s with
  | Sexpr e -> pp_expr fmt e
  | Sassign (op, lhs, rhs) ->
      Format.fprintf fmt "%a %s %a" pp_expr lhs (assign_op_name op) pp_expr rhs
  | _ -> pp_stmt fmt st

and pp_par fmt kw ps =
  Format.fprintf fmt "@[<v 2>%s%s (%s)"
    (if ps.iterate then "*" else "")
    kw
    (String.concat ", " ps.psets);
  (match ps.pbranches with
  | [ (None, st) ] -> Format.fprintf fmt "@ %a" pp_stmt st
  | branches ->
      List.iter
        (fun (pred, st) ->
          match pred with
          | Some pr -> Format.fprintf fmt "@ st (%a) %a" pp_expr pr pp_stmt st
          | None -> Format.fprintf fmt "@ %a" pp_stmt st)
        branches);
  (match ps.pothers with
  | Some st -> Format.fprintf fmt "@ others %a" pp_stmt st
  | None -> ());
  Format.fprintf fmt "@]"

and pp_block fmt b =
  Format.fprintf fmt "@[<v 2>{";
  List.iter (fun d -> Format.fprintf fmt "@ %a" pp_decl d) b.bdecls;
  List.iter (fun s -> Format.fprintf fmt "@ %a" pp_stmt s) b.bstmts;
  Format.fprintf fmt "@]@ }"

and pp_decl fmt = function
  | Dvar (ty, ds) ->
      Format.fprintf fmt "%s " (base_ty_name ty);
      List.iteri
        (fun i d ->
          if i > 0 then Format.fprintf fmt ", ";
          Format.pp_print_string fmt d.dname;
          List.iter (fun e -> Format.fprintf fmt "[%a]" pp_expr e) d.ddims;
          match d.dinit with
          | Some e -> Format.fprintf fmt " = %a" pp_expr e
          | None -> ())
        ds;
      Format.fprintf fmt ";"
  | Dindexset defs ->
      Format.fprintf fmt "index-set ";
      List.iteri
        (fun i def ->
          if i > 0 then Format.fprintf fmt ", ";
          Format.fprintf fmt "%s:%s = " def.set_name def.elem_name;
          match def.ispec with
          | Irange (lo, hi) ->
              Format.fprintf fmt "{%a .. %a}" pp_expr lo pp_expr hi
          | Ilist es ->
              Format.fprintf fmt "{";
              List.iteri
                (fun j e ->
                  if j > 0 then Format.fprintf fmt ", ";
                  pp_expr fmt e)
                es;
              Format.fprintf fmt "}"
          | Ialias s -> Format.pp_print_string fmt s)
        defs;
      Format.fprintf fmt ";"

let pp_mapping fmt = function
  | Mpermute pm ->
      Format.fprintf fmt "permute (%s) %s" (String.concat ", " pm.pmsets)
        pm.ptarget;
      List.iter (fun e -> Format.fprintf fmt "[%a]" pp_expr e) pm.ptsubs;
      Format.fprintf fmt " : - %s" pm.psource;
      List.iter (fun s -> Format.fprintf fmt "[%s]" s) pm.pssubs;
      Format.fprintf fmt ";"
  | Mfold (arr, factor, _) -> Format.fprintf fmt "fold %s by %d;" arr factor
  | Mcopy (arr, n, _) -> Format.fprintf fmt "copy %s along %a;" arr pp_expr n

let pp_top fmt = function
  | Tdecl d -> pp_decl fmt d
  | Tfunc f ->
      Format.fprintf fmt "@[<v>%s %s("
        (match f.fret with None -> "void" | Some t -> base_ty_name t)
        f.fname;
      List.iteri
        (fun i p ->
          if i > 0 then Format.fprintf fmt ", ";
          Format.fprintf fmt "%s %s" (base_ty_name p.pty) p.pname;
          for _ = 1 to p.prank do
            Format.fprintf fmt "[]"
          done)
        f.fparams;
      Format.fprintf fmt ") %a@]" pp_block f.fbody
  | Tmap m ->
      Format.fprintf fmt "@[<v 2>map (%s) {" (String.concat ", " m.msets);
      List.iter (fun mp -> Format.fprintf fmt "@ %a" pp_mapping mp) m.mmappings;
      Format.fprintf fmt "@]@ }"

let pp_program fmt prog =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i t ->
      if i > 0 then Format.fprintf fmt "@ @ ";
      pp_top fmt t)
    prog;
  Format.fprintf fmt "@]@."

let expr_to_string e = Format.asprintf "%a" pp_expr e
let program_to_string p = Format.asprintf "%a" pp_program p
