lib/cstar/programs.ml: Cm Edsl
