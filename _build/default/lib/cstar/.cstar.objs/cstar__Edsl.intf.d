lib/cstar/edsl.mli: Cm
