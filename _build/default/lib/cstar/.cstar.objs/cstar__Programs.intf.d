lib/cstar/programs.mli: Cm
