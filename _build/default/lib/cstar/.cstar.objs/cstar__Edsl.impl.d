lib/cstar/edsl.ml: Cm List
