lib/uc_programs/programs.ml: Printf
