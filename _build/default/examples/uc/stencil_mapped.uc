
#define N 16
#define STEPS 4
index-set I:i = {0..N-2}, IB:ib = {0..N-1};
int a[N], b[N];
map (I) { permute (I) b[i+1] :- a[i]; }
void main() {
  int t;
  par (IB) {
    a[ib] = ib;
    b[ib] = 2 * ib + 1;
  }
  for (t = 0; t < STEPS; t = t + 1)
    par (I) a[i] = a[i] + b[i+1];
}
