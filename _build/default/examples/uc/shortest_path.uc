
#define N 6
#define LOGN 3
index-set I:i = {0..N-1}, J:j = I, K:k = I;
index-set L:l = {0..LOGN-1};
int d[N][N];

void main() {
  par (I, J)
    st (i == j) d[i][j] = 0;
    others d[i][j] = (i * 7 + j * 13) % N + 1;
  seq (L)
    par (I, J)
      d[i][j] = $<(K; d[i][k] + d[k][j]);
}
