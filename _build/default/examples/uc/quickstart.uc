
#define N 10
index-set I:i = {0..N-1};
int a[N], total, biggest;

void main() {
  par (I) a[i] = i * i;
  total = $+(I; a[i]);
  biggest = $>(I; a[i]);
  print("sum of squares 0..9 = ", total);
  print("largest square = ", biggest);
}
