
#define N 10
#define WALL (0 - 1)
#define MIN4 min(min((i > 0 && d[i-1][j] != WALL) ? d[i-1][j] : INF, (i < N-1 && d[i+1][j] != WALL) ? d[i+1][j] : INF), min((j > 0 && d[i][j-1] != WALL) ? d[i][j-1] : INF, (j < N-1 && d[i][j+1] != WALL) ? d[i][j+1] : INF))
index-set I:i = {0..N-1}, J:j = I;
int d[N][N];

void main() {
  par (I, J)
    st (i + j == N - 1 && abs(i - N/2) <= N/4) d[i][j] = WALL;
    others d[i][j] = 0;
  *par (I, J)
    st (d[i][j] != WALL && !(i == 0 && j == 0) && d[i][j] != MIN4 + 1)
      d[i][j] = MIN4 + 1;
}
