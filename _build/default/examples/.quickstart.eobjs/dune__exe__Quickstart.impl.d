examples/quickstart.ml: List Printf Uc
