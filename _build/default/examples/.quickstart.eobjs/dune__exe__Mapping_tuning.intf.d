examples/mapping_tuning.mli:
