examples/shortest_path.mli:
