examples/robot_navigation.mli:
