examples/shortest_path.ml: Array Cm Cstar Printf Uc Uc_programs
