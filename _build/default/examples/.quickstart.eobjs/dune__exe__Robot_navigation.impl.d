examples/robot_navigation.ml: Array List Printf Queue Uc
