examples/mapping_tuning.ml: Cm Printf Uc Uc_programs
