examples/quickstart.mli:
