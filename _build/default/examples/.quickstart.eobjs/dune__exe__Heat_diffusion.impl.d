examples/heat_diffusion.ml: Array Cm Printf Uc Uc_programs
