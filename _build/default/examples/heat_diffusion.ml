(* Jacobi heat diffusion on the simulated CM: the numerical-workload
   family the paper reports as "experiments in progress" (section 5).
   Float fields, a 2-D five-point stencil, and the NEWS grid: the
   interior index set {1..N-2} is statically in range after a unit
   shift, so the compiler uses grid shifts instead of the router.

     dune exec examples/heat_diffusion.exe *)

let n = 16
let steps = 60

let () =
  let src = Uc_programs.Programs.heat ~steps ~n () in
  let t = Uc.Compile.run_source src in
  let u = Uc.Compile.float_array t "u" in
  Printf.printf
    "heat diffusion, %dx%d grid, %d Jacobi sweeps (boundary held at x+y)\n\n" n n
    steps;
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  let maxv = Array.fold_left max 0.0 u in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      let v = u.((x * n) + y) in
      let k =
        min (Array.length shades - 1)
          (int_of_float (v /. maxv *. float_of_int (Array.length shades - 1)))
      in
      print_char shades.(k);
      print_char shades.(k)
    done;
    print_newline ()
  done;
  let m = Uc.Compile.meter t in
  Printf.printf
    "\nsimulated elapsed time: %.4f s  (NEWS shifts: %d, router ops: %d)\n"
    (Uc.Compile.elapsed_seconds t)
    m.Cm.Cost.news_ops m.Cm.Cost.router_ops;
  assert (m.Cm.Cost.news_ops > 0);
  print_endline "the five-point stencil ran on the NEWS grid"
