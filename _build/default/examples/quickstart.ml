(* Quickstart: compile and run a small UC program on the simulated
   Connection Machine, and cross-check it against the reference
   interpreter.

     dune exec examples/quickstart.exe *)

let source =
  {|
#define N 10
index-set I:i = {0..N-1};
int a[N], total, biggest;

void main() {
  par (I) a[i] = i * i;
  total = $+(I; a[i]);
  biggest = $>(I; a[i]);
  print("sum of squares 0..9 = ", total);
  print("largest square = ", biggest);
}
|}

let () =
  print_endline "== compiled on the simulated CM ==";
  let t = Uc.Compile.run_source source in
  List.iter print_endline (Uc.Compile.output t);
  Printf.printf "simulated elapsed time: %.6f s\n\n" (Uc.Compile.elapsed_seconds t);

  print_endline "== reference interpreter agrees ==";
  let prog = Uc.Parser.parse_program source in
  ignore (Uc.Sema.check prog);
  let r = Uc.Interp.run prog in
  List.iter print_endline (Uc.Interp.output r);

  let machine_a = Uc.Compile.int_array t "a" in
  let interp_a = Uc.Interp.int_array r "a" in
  assert (machine_a = interp_a);
  print_endline "\narray 'a' matches between machine and interpreter"
