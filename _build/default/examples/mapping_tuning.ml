(* The paper's central pitch (sections 1 and 4): first write the program,
   then tune the data mapping separately.  A stencil a[i] += b[i+1] is run
   three ways:

     1. default mapping, router communication;
     2. default mapping with the compiler's NEWS optimization;
     3. a one-line map section  permute (I) b[i+1] :- a[i];
        which makes the access local.

   The results are identical each time; only the simulated time moves.

     dune exec examples/mapping_tuning.exe *)

let n = 4096
let steps = 32

let run ~mapped ~news =
  let src = Uc_programs.Programs.stencil ~mapped ~n ~steps () in
  let options = { Uc.Codegen.default_options with news_opt = news } in
  let t = Uc.Compile.run_source ~options src in
  (Uc.Compile.int_array t "a", Uc.Compile.elapsed_seconds t, Uc.Compile.meter t)

let () =
  Printf.printf "stencil a[i] = a[i] + b[i+1], N = %d, %d steps\n\n" n steps;
  let a1, t1, m1 = run ~mapped:false ~news:false in
  let a2, t2, m2 = run ~mapped:false ~news:true in
  let a3, t3, m3 = run ~mapped:true ~news:false in
  assert (a1 = a2);
  assert (a1 = a3);
  print_endline "all three runs produced identical results\n";
  let line label t (m : Cm.Cost.meter) =
    Printf.printf "%-38s %9.4f s   router ops %4d   news ops %4d\n" label t
      m.Cm.Cost.router_ops m.Cm.Cost.news_ops
  in
  line "default mapping, router" t1 m1;
  line "default mapping + NEWS optimization" t2 m2;
  line "permute (I) b[i+1] :- a[i]  (local)" t3 m3;
  Printf.printf "\nspeedup from the map section: %.2fx\n" (t1 /. t3)
