(* All-pairs shortest path, the paper's headline workload (figures 4-7):
   the O(N^2)-parallelism UC program, the O(N^3) one, and the hand-written
   C* baselines from the appendix, all on one simulated CM.

     dune exec examples/shortest_path.exe *)

let n = 16
let seed = 2026

let run_uc src =
  let t = Uc.Compile.run_source ~seed src in
  (Uc.Compile.int_array t "d", Uc.Compile.elapsed_seconds t)

let run_cstar (prog, len_field) =
  let m = Cm.Machine.create ~seed prog in
  Cm.Machine.run m;
  (Cm.Machine.field_ints m len_field, Cm.Machine.elapsed_seconds m)

let () =
  Printf.printf "all-pairs shortest path, %dx%d random weight matrix\n\n" n n;
  let d_n2, t_n2 =
    run_uc (Uc_programs.Programs.shortest_path_n2 ~deterministic:false ~n ())
  in
  let d_n3, t_n3 =
    run_uc (Uc_programs.Programs.shortest_path_n3 ~deterministic:false ~n ())
  in
  let d_solve, t_solve =
    run_uc (Uc_programs.Programs.shortest_path_solve ~deterministic:false ~n ())
  in
  let d_c2, t_c2 =
    run_cstar (Cstar.Programs.path_n2 ~deterministic:false ~n ())
  in
  let d_c3, t_c3 =
    run_cstar (Cstar.Programs.path_n3 ~deterministic:false ~n ())
  in
  assert (d_n2 = d_n3);
  assert (d_n2 = d_solve);
  assert (d_n2 = d_c2);
  assert (d_n2 = d_c3);
  print_endline "all five programs computed identical distance matrices\n";
  Printf.printf "%-34s %12s\n" "program" "simulated s";
  Printf.printf "%-34s %12.4f\n" "UC  O(N^2) par      (figure 4)" t_n2;
  Printf.printf "%-34s %12.4f\n" "UC  O(N^3) par      (figure 5)" t_n3;
  Printf.printf "%-34s %12.4f\n" "UC  *solve          (section 3.6)" t_solve;
  Printf.printf "%-34s %12.4f\n" "C*  O(N^2)          (figure 9)" t_c2;
  Printf.printf "%-34s %12.4f\n" "C*  O(N^3)          (figure 10)" t_c3;
  print_newline ();
  Printf.printf "sample distances from node 0: ";
  for j = 0 to min 7 (n - 1) do
    Printf.printf "%d " d_n2.(j)
  done;
  print_newline ()
