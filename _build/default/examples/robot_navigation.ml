(* Grid navigation around a moving obstacle (the paper's section 5
   benchmark, figure 11, including the "obstacles may be moved
   dynamically" variant): every cell iteratively learns its shortest
   distance to the goal at (0,0); when the wall moves, the *par
   relaxation reconverges from the stale distances.

     dune exec examples/robot_navigation.exe *)

let n = 14

(* Phase 1: the V-shaped wall of figure 11.  Phase 2: the wall moves to a
   vertical segment in the middle of the grid and the distances are
   recomputed in place (no re-initialisation). *)
let source =
  Printf.sprintf
    {|
#define N %d
#define WALL (0 - 1)
#define MIN4 min(min((i > 0 && d[i-1][j] != WALL) ? d[i-1][j] : INF, (i < N-1 && d[i+1][j] != WALL) ? d[i+1][j] : INF), min((j > 0 && d[i][j-1] != WALL) ? d[i][j-1] : INF, (j < N-1 && d[i][j+1] != WALL) ? d[i][j+1] : INF))
index-set I:i = {0..N-1}, J:j = I;
int d[N][N];

void main() {
  /* phase 1: the figure-11 wall on the anti-diagonal */
  par (I, J)
    st (i + j == N - 1 && abs(i - N/2) <= N/4) d[i][j] = WALL;
    others d[i][j] = 0;
  *par (I, J)
    st (d[i][j] != WALL && !(i == 0 && j == 0) && d[i][j] != MIN4 + 1)
      d[i][j] = MIN4 + 1;
  print("phase 1 converged; far corner at ", d[N-1][N-1]);

  /* the obstacle moves: old wall cells become free, a new vertical wall
     appears in column N/2 */
  par (I, J)
    st (d[i][j] == WALL) d[i][j] = 0;
  par (I, J)
    st (j == N/2 && i >= 2 && i <= N - 2) d[i][j] = WALL;

  /* phase 2: reconverge from the stale distances */
  *par (I, J)
    st (d[i][j] != WALL && !(i == 0 && j == 0) && d[i][j] != MIN4 + 1)
      d[i][j] = MIN4 + 1;
  print("phase 2 converged; far corner at ", d[N-1][N-1]);
}
|}
    n

let render dist =
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = dist.((i * n) + j) in
      if v < 0 then print_string "  ##"
      else Printf.printf "%4d" v
    done;
    print_newline ()
  done

(* BFS reference for the final (phase 2) obstacle *)
let reference () =
  let wall i j = j = n / 2 && i >= 2 && i <= n - 2 in
  let dist = Array.make (n * n) max_int in
  let q = Queue.create () in
  dist.(0) <- 0;
  Queue.add (0, 0) q;
  while not (Queue.is_empty q) do
    let i, j = Queue.pop q in
    List.iter
      (fun (i', j') ->
        if
          i' >= 0 && i' < n && j' >= 0 && j' < n
          && (not (wall i' j'))
          && dist.((i' * n) + j') > dist.((i * n) + j) + 1
        then begin
          dist.((i' * n) + j') <- dist.((i * n) + j) + 1;
          Queue.add (i', j') q
        end)
      [ (i - 1, j); (i + 1, j); (i, j - 1); (i, j + 1) ]
  done;
  dist

let () =
  let t = Uc.Compile.run_source source in
  List.iter print_endline (Uc.Compile.output t);
  Printf.printf "simulated elapsed time: %.4f s\n\n" (Uc.Compile.elapsed_seconds t);
  let d = Uc.Compile.int_array t "d" in
  print_endline "distance field after the obstacle moved (## = wall):";
  render d;
  (* verify phase 2 against BFS *)
  let ref_d = reference () in
  Array.iteri
    (fun p v -> if v >= 0 then assert (v = ref_d.(p)))
    d;
  print_endline "\nreconverged distances match a BFS reference"
