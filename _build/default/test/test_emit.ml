(* The C* emitter: the textual target the 1990 compiler generated.  We
   check structural properties of the output, not byte equality. *)

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let emit name = Uc.Cstar_emit.emit_source (List.assoc name Uc_programs.Programs.all_named)

let test_domains_from_shapes () =
  let out = emit "matmul" in
  check Alcotest.bool "declares a 6x6 domain" true (contains out "domain SHAPE_6x6");
  check Alcotest.bool "members share the domain" true
    (contains out "int a;" && contains out "int b;" && contains out "int c;");
  check Alcotest.bool "activation block" true (contains out "[domain SHAPE_6x6].{")

let test_coordinates_from_this () =
  let out = emit "matmul" in
  check Alcotest.bool "offset from this" true (contains out "this - &shape_6x6_d[0][0]");
  check Alcotest.bool "row coordinate" true (contains out "/ 6");
  check Alcotest.bool "column coordinate" true (contains out "% 6")

let test_where_for_predicates () =
  let out = emit "odd_even_flags" in
  check Alcotest.bool "where" true (contains out "where (((i % 2) == 1))");
  check Alcotest.bool "others negated" true (contains out "/* others */")

let test_reduction_combining () =
  let out = emit "shortest_path_n3" in
  check Alcotest.bool "min-combining" true (contains out "<?=");
  check Alcotest.bool "remote left-indexing" true
    (contains out "shape_6x6_d[i][k].d")

let test_solve_lowered_before_emission () =
  let out = emit "wavefront" in
  (* the wavefront solve reaches the emitter as its diagonal schedule *)
  check Alcotest.bool "no solve in output" false (contains out "solve");
  check Alcotest.bool "diagonal loop" true (contains out "for (int __d");
  (* *solve still reaches it as a fixed-point iteration *)
  let out = emit "shortest_path_solve" in
  check Alcotest.bool "no solve in output" false (contains out "solve");
  check Alcotest.bool "iterates" true (contains out "iterate")

let test_seq_becomes_for () =
  let out = emit "shortest_path_n2" in
  check Alcotest.bool "front-end for loop" true (contains out "for (int k = 0; k <= 5; k++)")

let test_map_section_comment () =
  let out = emit "stencil_mapped" in
  check Alcotest.bool "mapping recorded" true
    (contains out "/* map: permute b relative to a */")

let test_all_corpus_emits () =
  List.iter
    (fun (name, src) ->
      let out = Uc.Cstar_emit.emit_source src in
      if not (contains out "void main()") then
        Alcotest.failf "%s: no main in emitted C*" name)
    Uc_programs.Programs.all_named

let () =
  Alcotest.run "cstar-emit"
    [
      ( "structure",
        [
          Alcotest.test_case "domains from shapes" `Quick test_domains_from_shapes;
          Alcotest.test_case "coordinates from this" `Quick test_coordinates_from_this;
          Alcotest.test_case "where for predicates" `Quick test_where_for_predicates;
          Alcotest.test_case "combining reductions" `Quick test_reduction_combining;
          Alcotest.test_case "solve lowered first" `Quick test_solve_lowered_before_emission;
          Alcotest.test_case "seq becomes for" `Quick test_seq_becomes_for;
          Alcotest.test_case "map section comment" `Quick test_map_section_comment;
          Alcotest.test_case "whole corpus emits" `Quick test_all_corpus_emits;
        ] );
    ]
