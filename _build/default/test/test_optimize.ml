(* The constant folder and the transformation pipeline: folding must be a
   semantic no-op, and transformed programs must behave like the originals. *)

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fold_str s = Uc.Pretty.expr_to_string (Uc.Optimize.fold_expr (Uc.Parser.parse_expr s))

let test_fold_constants () =
  check Alcotest.string "arith" "15" (fold_str "2 * 8 - 1");
  check Alcotest.string "nested" "31" (fold_str "(3 + 1) * 8 - 1 % 4");
  check Alcotest.string "power2" "32" (fold_str "power2(5)");
  check Alcotest.string "minmax" "7" (fold_str "max(min(9, 7), 3)");
  check Alcotest.string "compare" "1" (fold_str "3 < 4");
  check Alcotest.string "cond" "10" (fold_str "1 ? 10 : 20");
  check Alcotest.string "cond false" "20" (fold_str "2 > 3 ? 10 : 20");
  check Alcotest.string "shift" "12" (fold_str "3 << 2")

let test_fold_identities () =
  check Alcotest.string "x + 0" "x" (fold_str "x + 0");
  check Alcotest.string "0 + x" "x" (fold_str "0 + x");
  check Alcotest.string "x * 1" "x" (fold_str "x * 1");
  check Alcotest.string "x - 0" "x" (fold_str "x - 0");
  check Alcotest.string "x / 1" "x" (fold_str "x / 1");
  check Alcotest.string "pure x * 0" "0" (fold_str "x * 0");
  (* impure operands must not be dropped: the rand stream is observable *)
  check Alcotest.string "impure * 0 kept" "rand() * 0" (fold_str "rand() * 0")

let test_fold_short_circuit () =
  (* constant left sides fold the way C's short-circuit evaluation would *)
  check Alcotest.string "0 && rand" "0" (fold_str "0 && rand()");
  check Alcotest.string "1 || rand" "1" (fold_str "1 || rand()");
  check Alcotest.string "1 && x" "x != 0" (fold_str "1 && x");
  check Alcotest.string "0 || x" "x != 0" (fold_str "0 || x")

let test_fold_preserves_div_by_zero () =
  check Alcotest.string "div kept" "1 / 0" (fold_str "1 / 0");
  check Alcotest.string "mod kept" "1 % 0" (fold_str "1 % 0")

(* random constant expressions: folding must agree with evaluation *)
let const_expr_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then map string_of_int (int_range 0 9)
        else
          let sub = self (n / 2) in
          oneof
            [
              map string_of_int (int_range 0 20);
              map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s < %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "min(%s, %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "max(%s, %s)" a b) sub sub;
              map (fun a -> Printf.sprintf "(-%s)" a) sub;
              map3
                (fun c a b -> Printf.sprintf "(%s ? %s : %s)" c a b)
                sub sub sub;
            ]))

let fold_evaluates_constants =
  qtest "fold: random constant expressions become literals" const_expr_gen
    (fun s ->
      let e = Uc.Parser.parse_expr s in
      let folded = Uc.Optimize.fold_expr e in
      match folded.Uc.Ast.e with
      | Uc.Ast.Eint v -> v = Uc.Sema.const_eval e
      | _ -> false)

(* random expressions over a variable: folding must not change results *)
let var_expr_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then oneofl [ "x"; "0"; "1"; "2"; "7" ]
        else
          let sub = self (n / 2) in
          oneof
            [
              oneofl [ "x"; "3"; "0" ];
              map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s && %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s || %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s << (%s %% 4))" a b) sub sub;
              map (fun a -> Printf.sprintf "(!%s)" a) sub;
              map (fun a -> Printf.sprintf "abs(%s)" a) sub;
            ]))

let eval_with_x expr_src x =
  let src =
    Printf.sprintf "int r;\nvoid main() { int x; x = %d; r = %s; }" x expr_src
  in
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  match Uc.Interp.scalar (Uc.Interp.run prog) "r" with
  | Uc.Interp.Vint v -> v
  | Uc.Interp.Vfloat f -> int_of_float f

let fold_preserves_semantics =
  qtest ~count:200 "fold: random expressions keep their value"
    QCheck2.Gen.(pair var_expr_gen (int_range (-5) 5))
    (fun (s, x) ->
      let folded =
        Uc.Pretty.expr_to_string (Uc.Optimize.fold_expr (Uc.Parser.parse_expr s))
      in
      eval_with_x s x = eval_with_x folded x)

(* compiled-vs-interpreted equality on random straight-line par programs *)
let par_expr_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then oneofl [ "i"; "a[i]"; "b[i]"; "1"; "3" ]
        else
          let sub = self (n / 2) in
          oneof
            [
              oneofl [ "i"; "a[i]"; "b[i]"; "2" ];
              map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "min(%s, %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s < %s)" a b) sub sub;
              map3
                (fun c a b -> Printf.sprintf "(%s ? %s : %s)" c a b)
                sub sub sub;
            ]))

let random_par_program expr pred =
  Printf.sprintf
    {|
index-set I:i = {0..7};
int a[8], b[8], c[8];
void main() {
  par (I) { a[i] = (i * 5 + 2) %% 11; b[i] = (i * 3 + 7) %% 13; }
  par (I) st (%s) c[i] = %s;
}
|}
    pred expr

let differential_random_par =
  qtest ~count:150 "codegen: random par programs match the interpreter"
    QCheck2.Gen.(pair par_expr_gen par_expr_gen)
    (fun (expr, pred) ->
      let src = random_par_program expr pred in
      let prog = Uc.Parser.parse_program src in
      ignore (Uc.Sema.check prog);
      let ir = Uc.Interp.run prog in
      let mr = Uc.Compile.run_source src in
      Uc.Interp.int_array ir "c" = Uc.Compile.int_array mr "c")

let test_transform_removes_solve_and_calls () =
  let src =
    {|
index-set I:i = {0..3}, J:j = I;
int a[4][4];
int half(int x) { return x / 2; }
void main() {
  int y;
  y = half(10);
  solve (I, J)
    a[i][j] = (i == 0 || j == 0) ? y : a[i-1][j] + a[i][j-1];
}
|}
  in
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  let prog' = Uc.Transform.apply prog in
  let printed = Uc.Pretty.program_to_string prog' in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "solve gone" false (contains printed "solve");
  (* this solve is a wavefront: it is scheduled over diagonals *)
  check Alcotest.bool "diagonal schedule" true (contains printed "__diag");
  check Alcotest.bool "half() call gone" false (contains printed "half(");
  check Alcotest.bool "only main survives" false (contains printed "int half")

let test_unschedulable_solve_uses_fixpoint () =
  (* a self-dependency with non-negative diagonal sum cannot be scheduled *)
  let src =
    {|
index-set I:i = {0..3}, J:j = I;
int a[4][4];
void main() {
  solve (I, J)
    a[i][j] = (j == 0) ? i : a[i][j-1] + ((i < 3) ? a[i+1][j-1] : 0);
}
|}
  in
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  let printed = Uc.Pretty.program_to_string (Uc.Transform.apply prog) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (* deps (0,-1) and (+1,-1): the second sums to 0, so the general
     guarded-*par method must be used *)
  check Alcotest.bool "fixpoint form" true (contains printed "*par");
  check Alcotest.bool "no diagonal schedule" false (contains printed "__diag")

let test_transform_early_return_rejected () =
  let src =
    {|
int f(int x) {
  if (x > 0) return 1;
  return 2;
}
int r;
void main() { r = f(3); }
|}
  in
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  try
    ignore (Uc.Transform.apply prog);
    Alcotest.fail "expected early-return rejection"
  with Uc.Loc.Error (_, msg) ->
    check Alcotest.bool "mentions return" true
      (String.length msg > 0 &&
       (let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        contains msg "return"))

let test_scheduled_solve_equals_fixpoint () =
  (* both translations of the wavefront reach the unique solution *)
  let src = Uc_programs.Programs.wavefront ~n:9 in
  let run ~schedule =
    let prog = Uc.Parser.parse_program src in
    ignore (Uc.Sema.check prog);
    let prog = Uc.Transform.apply ~schedule_solve:schedule prog in
    let prog = Uc.Optimize.fold_program prog in
    let compiled = Uc.Codegen.compile prog in
    let m = Cm.Machine.create compiled.Uc.Codegen.prog in
    Cm.Machine.run m;
    let meta = List.assoc "a" compiled.Uc.Codegen.carrays in
    Cm.Machine.field_ints m meta.Uc.Codegen.afield
  in
  check
    (Alcotest.array Alcotest.int)
    "identical solutions" (run ~schedule:false) (run ~schedule:true)

let test_cse_reduces_router_gets () =
  (* the O(N^2) shortest path evaluates d[i][k]+d[k][j] in both the
     predicate and the body; CSE must fetch each operand once *)
  let src = Uc_programs.Programs.shortest_path_n2 ~n:8 () in
  let with_cse = Uc.Compile.run_source src in
  let without =
    Uc.Compile.run_source
      ~options:{ Uc.Codegen.default_options with cse = false }
      src
  in
  check ( Alcotest.array Alcotest.int) "same distances"
    (Uc.Compile.int_array without "d")
    (Uc.Compile.int_array with_cse "d");
  let ops t = (Uc.Compile.meter t).Cm.Cost.router_ops in
  check Alcotest.bool
    (Printf.sprintf "router ops %d < %d" (ops with_cse) (ops without))
    true
    (ops with_cse < ops without);
  check Alcotest.bool "faster" true
    (Uc.Compile.elapsed_seconds with_cse < Uc.Compile.elapsed_seconds without)

let () =
  Alcotest.run "optimize"
    [
      ( "constant folding",
        [
          Alcotest.test_case "constants" `Quick test_fold_constants;
          Alcotest.test_case "identities" `Quick test_fold_identities;
          Alcotest.test_case "short circuit" `Quick test_fold_short_circuit;
          Alcotest.test_case "div by zero kept" `Quick test_fold_preserves_div_by_zero;
          fold_evaluates_constants;
          fold_preserves_semantics;
        ] );
      ( "transform",
        [
          Alcotest.test_case "solve and calls eliminated" `Quick
            test_transform_removes_solve_and_calls;
          Alcotest.test_case "unschedulable solve" `Quick
            test_unschedulable_solve_uses_fixpoint;
          Alcotest.test_case "schedule = fixpoint" `Quick
            test_scheduled_solve_equals_fixpoint;
          Alcotest.test_case "early return rejected" `Quick
            test_transform_early_return_rejected;
        ] );
      ( "cse",
        [ Alcotest.test_case "fewer router gets" `Quick test_cse_reduces_router_gets ] );
      ( "random programs",
        [ differential_random_par ] );
    ]
