(* The sequential SUN-4 baseline used by figure 8. *)

let check = Alcotest.check
let ints = Alcotest.array Alcotest.int

let test_matches_uc_program () =
  (* the sequential C program computes the same distances as the UC one *)
  let n = 10 in
  let seq = Seqc.Obstacle.run ~n () in
  let uc = Uc.Compile.run_source (Uc_programs.Programs.obstacle_grid ~n) in
  check ints "distances" (Uc.Compile.int_array uc "d") seq.Seqc.Obstacle.dist

let test_optimized_same_result () =
  let n = 14 in
  let plain = Seqc.Obstacle.run ~n () in
  let opt = Seqc.Obstacle.run ~optimized:true ~n () in
  check ints "same distances" plain.Seqc.Obstacle.dist opt.Seqc.Obstacle.dist;
  check Alcotest.int "same iterations" plain.Seqc.Obstacle.iterations
    opt.Seqc.Obstacle.iterations;
  check Alcotest.bool "-O is faster" true
    (opt.Seqc.Obstacle.elapsed_seconds < plain.Seqc.Obstacle.elapsed_seconds);
  let ratio =
    plain.Seqc.Obstacle.elapsed_seconds /. opt.Seqc.Obstacle.elapsed_seconds
  in
  check Alcotest.bool
    (Printf.sprintf "speedup %.2f in [1.5, 5]" ratio)
    true
    (ratio > 1.5 && ratio < 5.0)

let test_goal_and_wall () =
  let n = 12 in
  let r = Seqc.Obstacle.run ~n () in
  check Alcotest.int "goal at zero" 0 r.Seqc.Obstacle.dist.(0);
  let wall_count = ref 0 in
  Array.iteri
    (fun p v ->
      if Seqc.Obstacle.is_wall ~n (p / n) (p mod n) then begin
        incr wall_count;
        check Alcotest.int "wall marked" (-1) v
      end
      else check Alcotest.bool "reachable" true (v >= 0))
    r.Seqc.Obstacle.dist;
  check Alcotest.bool "wall exists" true (!wall_count > 0)

let test_detour_around_wall () =
  (* a cell just behind the wall centre must pay a detour: its distance
     exceeds the Manhattan distance *)
  let n = 16 in
  let r = Seqc.Obstacle.run ~n () in
  let i = n / 2 and j = n / 2 in
  (* (n/2, n/2-1) sits on the anti-diagonal: i + j = n - 1; take the cell
     one step past it *)
  let behind = ((i + 1) * n) + j in
  let manhattan = i + 1 + j in
  check Alcotest.bool "detour" true (r.Seqc.Obstacle.dist.(behind) > manhattan)

let test_cost_grows_cubically () =
  (* sweeps ~ O(n), cells ~ O(n^2): ops should grow roughly as n^3 *)
  let ops n = float_of_int (Seqc.Obstacle.run ~n ()).Seqc.Obstacle.ops in
  let r = ops 40 /. ops 20 in
  check Alcotest.bool (Printf.sprintf "ops(40)/ops(20) = %.1f in [6, 10]" r)
    true
    (r > 6.0 && r < 10.0)

let test_parallel_beats_sequential_at_scale () =
  (* figure 8's crossover: by ~60 rows the CM wins over the SUN-4 *)
  let n = 60 in
  let seq = Seqc.Obstacle.run ~n () in
  let uc = Uc.Compile.run_source (Uc_programs.Programs.obstacle_grid ~n) in
  check Alcotest.bool
    (Printf.sprintf "uc %.3fs < seq %.3fs" (Uc.Compile.elapsed_seconds uc)
       seq.Seqc.Obstacle.elapsed_seconds)
    true
    (Uc.Compile.elapsed_seconds uc < seq.Seqc.Obstacle.elapsed_seconds)

let () =
  Alcotest.run "seqc"
    [
      ( "obstacle",
        [
          Alcotest.test_case "matches UC program" `Quick test_matches_uc_program;
          Alcotest.test_case "-O same result" `Quick test_optimized_same_result;
          Alcotest.test_case "goal and wall" `Quick test_goal_and_wall;
          Alcotest.test_case "detour around wall" `Quick test_detour_around_wall;
          Alcotest.test_case "cubic cost growth" `Quick test_cost_grows_cubically;
          Alcotest.test_case "parallel wins at scale" `Quick
            test_parallel_beats_sequential_at_scale;
        ] );
    ]
