#!/usr/bin/env bash
# CLI smoke test: exercises every ucc subcommand on the example programs.
set -eu

UCC=../bin/ucc.exe

out=$($UCC run ../examples/uc/quickstart.uc)
echo "$out" | grep -q "sum of squares 0..9 = 285"
echo "$out" | grep -q "simulated elapsed time"

$UCC check ../examples/uc/shortest_path.uc | grep -q "ok"
$UCC ast ../examples/uc/quickstart.uc | grep -q 'par (I)'
$UCC paris ../examples/uc/quickstart.uc | grep -q "preduce-add"
$UCC cstar ../examples/uc/shortest_path.uc | grep -q "domain SHAPE_6x6"
$UCC interp ../examples/uc/quickstart.uc | grep -q "largest square = 81"
$UCC examples | grep -q "obstacle_grid"
$UCC show wavefront | grep -q "solve (I, J)"

# optimization flags are accepted and keep results stable
a=$($UCC run ../examples/uc/stencil_mapped.uc --arrays a | head -1)
b=$($UCC run ../examples/uc/stencil_mapped.uc --arrays a --no-news --no-cse --no-mappings --no-procopt | head -1)
[ "$a" = "$b" ]

# the profiler attributes time to source lines
$UCC run ../examples/uc/obstacle_grid.uc --profile | grep -q "line 12"

# errors are reported with a location and a non-zero exit
if $UCC check /dev/null 2>/dev/null; then exit 1; fi
echo "int x" > bad.uc
if $UCC check bad.uc 2>err.txt; then exit 1; fi
grep -q "error" err.txt

echo "cli ok"
