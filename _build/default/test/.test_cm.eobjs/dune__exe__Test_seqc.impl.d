test/test_seqc.ml: Alcotest Array Printf Seqc Uc Uc_programs
