test/test_cstar.ml: Alcotest Array Cm Cstar Printf Uc Uc_programs
