test/test_optimize.ml: Alcotest Cm List Printf QCheck2 QCheck_alcotest String Uc Uc_programs
