test/test_codegen.ml: Alcotest Array Cm Format List Printf String Uc Uc_programs
