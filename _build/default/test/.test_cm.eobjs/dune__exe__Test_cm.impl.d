test/test_cm.ml: Alcotest Array Builder Cm Format QCheck2 QCheck_alcotest String
