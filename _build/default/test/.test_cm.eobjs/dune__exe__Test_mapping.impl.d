test/test_mapping.ml: Alcotest Array List Printf String Uc Uc_programs
