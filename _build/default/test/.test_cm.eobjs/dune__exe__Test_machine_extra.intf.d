test/test_machine_extra.mli:
