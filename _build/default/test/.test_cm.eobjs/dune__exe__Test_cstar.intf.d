test/test_cstar.mli:
