test/test_frontend.ml: Alcotest Array List String Uc Uc_programs
