test/test_seqc.mli:
