test/test_fuzz.ml: Alcotest Buffer Cm Printf QCheck2 QCheck_alcotest String Uc
