test/test_interp.ml: Alcotest Array Cm List Printf Queue String Uc Uc_programs
