test/test_machine_extra.ml: Alcotest Array Builder Cm Format String
