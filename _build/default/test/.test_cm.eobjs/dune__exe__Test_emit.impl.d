test/test_emit.ml: Alcotest List String Uc Uc_programs
