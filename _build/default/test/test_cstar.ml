(* The C* baseline: correctness against the UC implementations and the
   reference Floyd-Warshall, plus the efficiency relationships the paper's
   figures rely on. *)

let check = Alcotest.check
let ints = Alcotest.array Alcotest.int

let run_cstar ?seed (prog, len_field) =
  let m = Cm.Machine.create ?seed prog in
  Cm.Machine.run m;
  (Cm.Machine.field_ints m len_field, Cm.Machine.elapsed_seconds m, Cm.Machine.meter m)

let floyd_warshall n init =
  let d = Array.init n (fun i -> Array.init n (fun j -> init i j)) in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then
          d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  Array.init (n * n) (fun p -> d.(p / n).(p mod n))

let det_init n i j = if i = j then 0 else (((i * 7) + (j * 13)) mod n) + 1

let test_n2_matches_reference () =
  let n = 8 in
  let d, _, _ = run_cstar (Cstar.Programs.path_n2 ~n ()) in
  check ints "Floyd-Warshall" (floyd_warshall n (det_init n)) d

let test_n3_matches_reference () =
  let n = 8 in
  let d, _, _ = run_cstar (Cstar.Programs.path_n3 ~n ()) in
  check ints "Floyd-Warshall" (floyd_warshall n (det_init n)) d

let test_n3_log_iterations_suffice () =
  let n = 8 in
  let d, _, _ = run_cstar (Cstar.Programs.path_n3 ~iters:3 ~n ()) in
  check ints "3 squarings reach the fixpoint at n=8"
    (floyd_warshall n (det_init n)) d

let test_cstar_matches_uc_random_init () =
  (* same machine seed => same weight matrix => same distances *)
  let n = 8 in
  let seed = 99 in
  let d_cstar, _, _ =
    run_cstar ~seed (Cstar.Programs.path_n2 ~deterministic:false ~n ())
  in
  let uc =
    Uc.Compile.run_source ~seed
      (Uc_programs.Programs.shortest_path_n2 ~deterministic:false ~n ())
  in
  check ints "identical distance matrices" (Uc.Compile.int_array uc "d") d_cstar

let test_cstar_n3_matches_uc_random_init () =
  let n = 6 in
  let seed = 7 in
  let d_cstar, _, _ =
    run_cstar ~seed (Cstar.Programs.path_n3 ~deterministic:false ~n ())
  in
  let uc =
    Uc.Compile.run_source ~seed
      (Uc_programs.Programs.shortest_path_n3 ~deterministic:false ~n ())
  in
  check ints "identical distance matrices" (Uc.Compile.int_array uc "d") d_cstar

let test_hand_cstar_leaner_than_uc_n2 () =
  (* figure 6's comparison: hand C* carries less bookkeeping, so per-N it
     should not be slower than compiled UC by more than a small factor,
     and both should grow with N *)
  let time_uc n =
    Uc.Compile.elapsed_seconds
      (Uc.Compile.run_source (Uc_programs.Programs.shortest_path_n2 ~n ()))
  in
  let time_cstar n =
    let _, t, _ = run_cstar (Cstar.Programs.path_n2 ~n ()) in
    t
  in
  let n = 16 in
  let tu = time_uc n and tc = time_cstar n in
  check Alcotest.bool
    (Printf.sprintf "same ballpark (uc %.4f vs cstar %.4f)" tu tc)
    true
    (tu /. tc < 3.0 && tc /. tu < 3.0);
  check Alcotest.bool "uc grows with N" true (time_uc 24 > tu);
  check Alcotest.bool "cstar grows with N" true (time_cstar 24 > tc)

let test_n3_uses_more_processors_than_n2 () =
  let n = 8 in
  let _, _, m2 = run_cstar (Cstar.Programs.path_n2 ~n ()) in
  let _, _, m3 = run_cstar (Cstar.Programs.path_n3 ~n ()) in
  (* the N^3 version moves far more messages *)
  check Alcotest.bool "more router messages" true
    (m3.Cm.Cost.router_messages > m2.Cm.Cost.router_messages)

let test_where_masks () =
  let open Cstar.Edsl in
  let t = create "where-test" in
  let d = domain t ~name:"D" ~dims:[ 8 ] in
  let f = member t d "v" Cm.Paris.KInt in
  activate t d (fun () ->
      let i = coord t d 0 in
      assign t f (int_ 5);
      where t (i <% int_ 3) (fun () -> assign t f (int_ 1)));
  let prog = finish t in
  let m = Cm.Machine.create prog in
  Cm.Machine.run m;
  check ints "first three masked" [| 1; 1; 1; 5; 5; 5; 5; 5 |]
    (Cm.Machine.field_ints m (field_id f))

let test_for_loop () =
  let open Cstar.Edsl in
  let t = create "for-test" in
  let d = domain t ~name:"D" ~dims:[ 4 ] in
  let f = member t d "v" Cm.Paris.KInt in
  activate t d (fun () ->
      for_ t 0 5 (fun k -> assign t f (fld t f +% k)))
  ;
  let prog = finish t in
  let m = Cm.Machine.create prog in
  Cm.Machine.run m;
  (* 0+1+2+3+4 = 10 *)
  check ints "sum of counters" [| 10; 10; 10; 10 |]
    (Cm.Machine.field_ints m (field_id f))

let () =
  Alcotest.run "cstar"
    [
      ( "appendix programs",
        [
          Alcotest.test_case "n2 reference" `Quick test_n2_matches_reference;
          Alcotest.test_case "n3 reference" `Quick test_n3_matches_reference;
          Alcotest.test_case "n3 log iters" `Quick test_n3_log_iterations_suffice;
          Alcotest.test_case "n2 matches UC" `Quick test_cstar_matches_uc_random_init;
          Alcotest.test_case "n3 matches UC" `Quick test_cstar_n3_matches_uc_random_init;
        ] );
      ( "performance relations",
        [
          Alcotest.test_case "hand C* vs UC ballpark" `Quick test_hand_cstar_leaner_than_uc_n2;
          Alcotest.test_case "n3 moves more data" `Quick test_n3_uses_more_processors_than_n2;
        ] );
      ( "edsl",
        [
          Alcotest.test_case "where masks" `Quick test_where_masks;
          Alcotest.test_case "front-end loop" `Quick test_for_loop;
        ] );
    ]
