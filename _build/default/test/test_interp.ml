(* Semantic tests: the UC reference interpreter against independently
   computed results for every paper program. *)

let check = Alcotest.check

let run ?choice src =
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  Uc.Interp.run ?choice prog

let ints = Alcotest.array Alcotest.int

(* ---------------- reductions (figure 1) ---------------- *)

let test_reductions () =
  let r = run (Uc_programs.Programs.reductions ~n:10) in
  (* a[i] = (3i + 7) mod 10 = [7;0;3;6;9;2;5;8;1;4] *)
  check ints "a" [| 7; 0; 3; 6; 9; 2; 5; 8; 1; 4 |] (Uc.Interp.int_array r "a");
  check Alcotest.bool "s = 45" true (Uc.Interp.scalar r "s" = Uc.Interp.Vint 45);
  check Alcotest.bool "avg = 4.5" true
    (Uc.Interp.scalar r "avg" = Uc.Interp.Vfloat 4.5);
  check Alcotest.bool "mn = 0" true (Uc.Interp.scalar r "mn" = Uc.Interp.Vint 0);
  check Alcotest.bool "first = 1" true
    (Uc.Interp.scalar r "first" = Uc.Interp.Vint 1);
  check Alcotest.bool "arb = 1" true
    (Uc.Interp.scalar r "arb" = Uc.Interp.Vint 1);
  (* the maximum 9 occurs only at i = 4 *)
  check Alcotest.bool "last = 4" true
    (Uc.Interp.scalar r "last" = Uc.Interp.Vint 4)

let test_abs_sum () =
  let r = run (Uc_programs.Programs.abs_sum ~n:8) in
  (* a = [0;1;2;-3;4;5;-6;7]: positives 1+2+4+5+7=19, others -(0)-(−3)-(−6)=9 *)
  check Alcotest.bool "abs_sum = 28" true
    (Uc.Interp.scalar r "abs_sum" = Uc.Interp.Vint 28)

(* ---------------- par (section 3.4) ---------------- *)

let test_matmul_identity () =
  let n = 6 in
  let r = run (Uc_programs.Programs.matmul ~n) in
  let c = Uc.Interp.int_array r "c" in
  let expected =
    Array.init (n * n) (fun p ->
        let i = p / n and j = p mod n in
        i + (2 * j))
  in
  check ints "c = a (b is the identity)" expected c

let test_reciprocal () =
  let r = run (Uc_programs.Programs.reciprocal ~n:8) in
  let a = Uc.Interp.float_array r "a" in
  let expected = [| -0.25; -1.0 /. 3.0; -0.5; -1.0; 0.0; 1.0; 0.5; 1.0 /. 3.0 |] in
  Array.iteri
    (fun i v -> check (Alcotest.float 1e-12) (Printf.sprintf "a[%d]" i) expected.(i) v)
    a

let test_odd_even_flags () =
  let r = run (Uc_programs.Programs.odd_even_flags ~n:9) in
  check ints "flags" [| 1; 0; 1; 0; 1; 0; 1; 0; 1 |] (Uc.Interp.int_array r "a")

let test_ranksort () =
  let n = 16 in
  let r = run (Uc_programs.Programs.ranksort ~n) in
  let keys = List.init n (fun i -> ((i * 7) + 3) mod 61) in
  let expected = Array.of_list (List.sort compare keys) in
  check ints "sorted" expected (Uc.Interp.int_array r "a")

let test_multiple_assignment_conflict () =
  (* the paper's illegal example: par (I, J) a[i] = b[j] *)
  let src =
    {|
index-set I:i = {0..3}, J:j = I;
int a[4], b[4];
void main() {
  par (J) b[j] = j;
  par (I, J) a[i] = b[j];
}
|}
  in
  try
    ignore (run src);
    Alcotest.fail "expected a conflict"
  with Uc.Interp.Runtime_error msg ->
    check Alcotest.bool "mentions conflict" true
      (String.length msg >= 28 && String.sub msg 0 28 = "parallel assignment conflict")

let test_identical_values_no_conflict () =
  (* assigning the same value from many elements is legal *)
  let src =
    {|
index-set I:i = {0..3}, J:j = I;
int a[4];
void main() {
  par (I, J) a[i] = 7;
}
|}
  in
  let r = run src in
  check ints "broadcast" [| 7; 7; 7; 7 |] (Uc.Interp.int_array r "a")

let test_two_phase_semantics () =
  (* a[i] = a[N-1-i]: reversal must read all values before writing *)
  let src =
    {|
index-set I:i = {0..5};
int a[6];
void main() {
  par (I) a[i] = i * 10;
  par (I) a[i] = a[5 - i];
}
|}
  in
  let r = run src in
  check ints "reversed" [| 50; 40; 30; 20; 10; 0 |] (Uc.Interp.int_array r "a")

(* ---------------- iterative constructs ---------------- *)

let test_prefix_sums () =
  let n = 16 in
  let r = run (Uc_programs.Programs.prefix_sums ~n) in
  let expected = Array.init n (fun i -> i * (i + 1) / 2) in
  check ints "prefix sums" expected (Uc.Interp.int_array r "a")

let test_partial_sums_seq () =
  let n = 16 in
  let r = run (Uc_programs.Programs.partial_sums_seq ~n) in
  let expected = Array.init n (fun i -> i * (i + 1) / 2) in
  check ints "partial sums" expected (Uc.Interp.int_array r "a")

(* ---------------- shortest paths ---------------- *)

let floyd_warshall n init =
  let d = Array.init n (fun i -> Array.init n (fun j -> init i j)) in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then
          d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  Array.init (n * n) (fun p -> d.(p / n).(p mod n))

let det_init n i j = if i = j then 0 else (((i * 7) + (j * 13)) mod n) + 1

let test_shortest_path_n2 () =
  let n = 6 in
  let r = run (Uc_programs.Programs.shortest_path_n2 ~n ()) in
  check ints "matches Floyd-Warshall" (floyd_warshall n (det_init n))
    (Uc.Interp.int_array r "d")

let test_shortest_path_n3 () =
  let n = 6 in
  let r = run (Uc_programs.Programs.shortest_path_n3 ~n ()) in
  check ints "matches Floyd-Warshall" (floyd_warshall n (det_init n))
    (Uc.Interp.int_array r "d")

let test_shortest_path_solve () =
  let n = 5 in
  let r = run (Uc_programs.Programs.shortest_path_solve ~n ()) in
  check ints "matches Floyd-Warshall" (floyd_warshall n (det_init n))
    (Uc.Interp.int_array r "d")

(* ---------------- solve: wavefront ---------------- *)

let test_wavefront () =
  let n = 7 in
  let r = run (Uc_programs.Programs.wavefront ~n) in
  let a = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      a.(i).(j) <-
        (if i = 0 || j = 0 then 1
         else a.(i - 1).(j) + a.(i - 1).(j - 1) + a.(i).(j - 1))
    done
  done;
  let expected = Array.init (n * n) (fun p -> a.(p / n).(p mod n)) in
  check ints "wavefront recurrence" expected (Uc.Interp.int_array r "a")

(* ---------------- oneof: odd-even transposition sort ---------------- *)

let test_odd_even_sort () =
  let n = 12 in
  let expected =
    Array.of_list (List.sort compare (List.init n (fun i -> ((i * 11) + 5) mod 31)))
  in
  let r = run (Uc_programs.Programs.odd_even_sort ~n) in
  check ints "sorted (first)" expected (Uc.Interp.int_array r "x");
  let r = run ~choice:`Rotate (Uc_programs.Programs.odd_even_sort ~n) in
  check ints "sorted (rotate)" expected (Uc.Interp.int_array r "x")

(* ---------------- digit count ---------------- *)

let test_digit_count () =
  let r = run (Uc_programs.Programs.digit_count ~n:24) in
  let samples = Uc.Interp.int_array r "samples" in
  let expected = Array.make 10 0 in
  Array.iter (fun s -> expected.(s) <- expected.(s) + 1) samples;
  check ints "histogram" expected (Uc.Interp.int_array r "count");
  check Alcotest.int "counts sum to N" 24
    (Array.fold_left ( + ) 0 (Uc.Interp.int_array r "count"))

(* ---------------- obstacle grid (figures 8 and 11) ---------------- *)

let obstacle_reference n =
  (* BFS from (0,0) on the grid minus the V-shaped wall *)
  let wall i j = i + j = n - 1 && abs (i - (n / 2)) <= n / 4 in
  let dist = Array.make_matrix n n Cm.Paris.inf_int in
  let q = Queue.create () in
  dist.(0).(0) <- 0;
  Queue.add (0, 0) q;
  while not (Queue.is_empty q) do
    let i, j = Queue.pop q in
    List.iter
      (fun (i', j') ->
        if
          i' >= 0 && i' < n && j' >= 0 && j' < n
          && (not (wall i' j'))
          && dist.(i').(j') > dist.(i).(j) + 1
        then begin
          dist.(i').(j') <- dist.(i).(j) + 1;
          Queue.add (i', j') q
        end)
      [ (i - 1, j); (i + 1, j); (i, j - 1); (i, j + 1) ]
  done;
  Array.init (n * n) (fun p ->
      let i = p / n and j = p mod n in
      if wall i j then -1 else dist.(i).(j))

let test_obstacle_grid () =
  let n = 10 in
  let r = run (Uc_programs.Programs.obstacle_grid ~n) in
  check ints "distances route around the wall" (obstacle_reference n)
    (Uc.Interp.int_array r "d")

(* ---------------- stencil (mapping ablation workload) ---------------- *)

let test_stencil () =
  let n = 16 and steps = 4 in
  let expected =
    Array.init n (fun i ->
        if i < n - 1 then i + (steps * ((2 * (i + 1)) + 1)) else i)
  in
  let r = run (Uc_programs.Programs.stencil ~n ~steps ()) in
  check ints "unmapped" expected (Uc.Interp.int_array r "a");
  (* the map section must not change results *)
  let r = run (Uc_programs.Programs.stencil ~mapped:true ~n ~steps ()) in
  check ints "mapped" expected (Uc.Interp.int_array r "a")

(* ---------------- front-end features ---------------- *)

let test_quickstart_output () =
  let r = run Uc_programs.Programs.quickstart in
  check
    (Alcotest.list Alcotest.string)
    "print output"
    [ "sum of squares 0..9 = 285"; "largest square = 81" ]
    (Uc.Interp.output r)

let test_functions_and_loops () =
  let src =
    {|
int square(int x) { return x * x; }
int sum_to(int n) {
  int s; int k;
  s = 0;
  for (k = 1; k <= n; k = k + 1) {
    if (k == 3) continue;
    if (k > 5) break;
    s = s + k;
  }
  return s;
}
int a, b;
void main() {
  a = square(7);
  b = sum_to(100);
}
|}
  in
  let r = run src in
  check Alcotest.bool "square" true (Uc.Interp.scalar r "a" = Uc.Interp.Vint 49);
  (* 1 + 2 + 4 + 5 = 12 *)
  check Alcotest.bool "loop with break/continue" true
    (Uc.Interp.scalar r "b" = Uc.Interp.Vint 12)

let test_array_params_by_reference () =
  let src =
    {|
void fill(int v[], int n) {
  int k;
  for (k = 0; k < n; k = k + 1) v[k] = k * 3;
}
int a[5];
void main() { fill(a, 5); }
|}
  in
  let r = run src in
  check ints "filled through the parameter" [| 0; 3; 6; 9; 12 |]
    (Uc.Interp.int_array r "a")

let test_inlined_function_in_par () =
  let src =
    {|
index-set I:i = {0..5};
int a[6];
int step(int x) { int t; t = x * 2; return t + 1; }
void main() { par (I) a[i] = step(i); }
|}
  in
  let r = run src in
  check ints "per-element call" [| 1; 3; 5; 7; 9; 11 |] (Uc.Interp.int_array r "a")

let test_explicit_index_set () =
  let src =
    {|
index-set S:s = {4, 2, 9};
int a[10], order[10];
int c;
void main() {
  c = 0;
  par (S) a[s] = 1;
  seq (S) { order[c] = s; c = c + 1; }
}
|}
  in
  let r = run src in
  check ints "explicit membership" [| 0; 0; 1; 0; 1; 0; 0; 0; 0; 1 |]
    (Uc.Interp.int_array r "a");
  let order = Uc.Interp.int_array r "order" in
  check ints "seq follows declaration order" [| 4; 2; 9 |]
    (Array.sub order 0 3)

let test_reduction_empty_identities () =
  let src =
    {|
index-set I:i = {0..3};
int s, p, mx, mn, la, lo, xo, ar;
void main() {
  s = $+(I st (i > 99) i);
  p = $*(I st (i > 99) i);
  mx = $>(I st (i > 99) i);
  mn = $<(I st (i > 99) i);
  la = $&(I st (i > 99) i);
  lo = $|(I st (i > 99) i);
  xo = $^(I st (i > 99) i);
  ar = $,(I st (i > 99) i);
}
|}
  in
  let r = run src in
  let v name = Uc.Interp.scalar r name in
  check Alcotest.bool "sum 0" true (v "s" = Uc.Interp.Vint 0);
  check Alcotest.bool "prod 1" true (v "p" = Uc.Interp.Vint 1);
  check Alcotest.bool "max -INF" true (v "mx" = Uc.Interp.Vint (-Cm.Paris.inf_int));
  check Alcotest.bool "min INF" true (v "mn" = Uc.Interp.Vint Cm.Paris.inf_int);
  check Alcotest.bool "and 1" true (v "la" = Uc.Interp.Vint 1);
  check Alcotest.bool "or 0" true (v "lo" = Uc.Interp.Vint 0);
  check Alcotest.bool "xor 0" true (v "xo" = Uc.Interp.Vint 0);
  check Alcotest.bool "arb INF" true (v "ar" = Uc.Interp.Vint Cm.Paris.inf_int)

let test_multi_branch_reduction_overlap () =
  (* an element enabled for several st branches contributes once per branch *)
  let src =
    {|
index-set I:i = {0..3};
int s;
void main() {
  s = $+(I st (i >= 0) 1 st (i >= 2) 10);
}
|}
  in
  let r = run src in
  check Alcotest.bool "4*1 + 2*10" true (Uc.Interp.scalar r "s" = Uc.Interp.Vint 24)

let test_index_set_shadowing () =
  (* the outer predicate does not restrict the inner reduction *)
  let src =
    {|
index-set I:i = {0..9};
int a[10];
void main() {
  par (I)
    st (i % 2 == 0) a[i] = $+(I; i);
}
|}
  in
  let r = run src in
  let a = Uc.Interp.int_array r "a" in
  check Alcotest.int "even gets full sum" 45 a.(0);
  check Alcotest.int "odd untouched" 0 a.(1);
  check Alcotest.int "even gets full sum" 45 a.(8)

let test_while_in_par () =
  (* per-element iteration counts differ; SIMD-style masked while *)
  let src =
    {|
index-set I:i = {0..5};
int a[6];
void main() {
  par (I) {
    int v;
    v = i;
    while (v > 0) {
      a[i] = a[i] + 1;
      v = v - 1;
    }
  }
}
|}
  in
  let r = run src in
  check ints "a[i] = i" [| 0; 1; 2; 3; 4; 5 |] (Uc.Interp.int_array r "a")

let test_nonterminating_fuel () =
  let src =
    {|
index-set I:i = {0..3};
int a[4];
void main() {
  *par (I) st (1) a[i] = a[i] + 1;
}
|}
  in
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  try
    ignore (Uc.Interp.run ~fuel:1000 prog);
    Alcotest.fail "expected fuel exhaustion"
  with Uc.Interp.Runtime_error msg ->
    check Alcotest.bool "mentions iteration limit" true
      (String.length msg >= 9 && String.sub msg 0 9 = "iteration")

let test_subscript_bounds () =
  let src =
    {|
index-set I:i = {0..3};
int a[4];
void main() { par (I) a[i + 1] = 0; }
|}
  in
  try
    ignore (run src);
    Alcotest.fail "expected bounds error"
  with Uc.Interp.Runtime_error msg ->
    check Alcotest.bool "mentions subscript" true
      (String.length msg >= 9 && String.sub msg 0 9 = "subscript")

let test_deterministic_seeds () =
  let src = Uc_programs.Programs.digit_count ~n:16 in
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  let r1 = Uc.Interp.run ~seed:5 prog in
  let r2 = Uc.Interp.run ~seed:5 prog in
  let r3 = Uc.Interp.run ~seed:6 prog in
  check ints "same seed" (Uc.Interp.int_array r1 "samples")
    (Uc.Interp.int_array r2 "samples");
  check Alcotest.bool "different seed" true
    (Uc.Interp.int_array r1 "samples" <> Uc.Interp.int_array r3 "samples")

let () =
  Alcotest.run "interp"
    [
      ( "reductions",
        [
          Alcotest.test_case "figure 1" `Quick test_reductions;
          Alcotest.test_case "abs_sum with others" `Quick test_abs_sum;
          Alcotest.test_case "empty identities" `Quick test_reduction_empty_identities;
          Alcotest.test_case "multi-branch overlap" `Quick test_multi_branch_reduction_overlap;
          Alcotest.test_case "index-set shadowing" `Quick test_index_set_shadowing;
        ] );
      ( "par",
        [
          Alcotest.test_case "matmul" `Quick test_matmul_identity;
          Alcotest.test_case "reciprocal" `Quick test_reciprocal;
          Alcotest.test_case "odd/even flags" `Quick test_odd_even_flags;
          Alcotest.test_case "ranksort" `Quick test_ranksort;
          Alcotest.test_case "conflict detected" `Quick test_multiple_assignment_conflict;
          Alcotest.test_case "identical ok" `Quick test_identical_values_no_conflict;
          Alcotest.test_case "two-phase" `Quick test_two_phase_semantics;
          Alcotest.test_case "while in par" `Quick test_while_in_par;
        ] );
      ( "iterative",
        [
          Alcotest.test_case "prefix sums (*par)" `Quick test_prefix_sums;
          Alcotest.test_case "partial sums (seq in par)" `Quick test_partial_sums_seq;
          Alcotest.test_case "fuel" `Quick test_nonterminating_fuel;
        ] );
      ( "shortest-path",
        [
          Alcotest.test_case "O(N^2)" `Quick test_shortest_path_n2;
          Alcotest.test_case "O(N^3)" `Quick test_shortest_path_n3;
          Alcotest.test_case "*solve" `Quick test_shortest_path_solve;
          Alcotest.test_case "obstacle grid" `Quick test_obstacle_grid;
        ] );
      ( "solve",
        [ Alcotest.test_case "wavefront" `Quick test_wavefront ] );
      ( "oneof",
        [ Alcotest.test_case "odd-even sort" `Quick test_odd_even_sort ] );
      ( "histogram",
        [ Alcotest.test_case "digit count" `Quick test_digit_count ] );
      ( "stencil",
        [ Alcotest.test_case "mapping preserves results" `Quick test_stencil ] );
      ( "front-end",
        [
          Alcotest.test_case "quickstart output" `Quick test_quickstart_output;
          Alcotest.test_case "functions and loops" `Quick test_functions_and_loops;
          Alcotest.test_case "array params by reference" `Quick test_array_params_by_reference;
          Alcotest.test_case "inlined function in par" `Quick test_inlined_function_in_par;
          Alcotest.test_case "explicit index set" `Quick test_explicit_index_set;
          Alcotest.test_case "subscript bounds" `Quick test_subscript_bounds;
          Alcotest.test_case "deterministic seeds" `Quick test_deterministic_seeds;
        ] );
    ]
