(* Further machine coverage: combining sends, Ptable/Cread, float router
   traffic, and dynamic error paths. *)

let check = Alcotest.check
let ints = Alcotest.array Alcotest.int

open Cm.Paris

let build f =
  let b = Builder.create "extra" in
  let r = f b in
  (Builder.finish b, r)

let run_prog ?seed prog =
  let m = Cm.Machine.create ?seed prog in
  Cm.Machine.run m;
  m

let expect_error prog frag =
  let m = Cm.Machine.create prog in
  try
    Cm.Machine.run m;
    Alcotest.failf "expected error mentioning %S" frag
  with Cm.Machine.Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    if not (contains msg frag) then
      Alcotest.failf "error %S does not mention %S" msg frag

(* all elements send their coordinate to cell 0 with a combining rule *)
let combine_prog combine =
  build (fun b ->
      let vp = Builder.vpset b (Cm.Geometry.create [ 6 ]) in
      let src = Builder.field b ~vpset:vp KInt in
      let addr = Builder.field b ~vpset:vp KInt in
      let dst = Builder.field b ~vpset:vp KInt in
      Builder.emit b (Cwith vp);
      Builder.emit b (Pcoord (src, 0));
      Builder.emit b (Pbin (Add, src, Fld src, Imm (SInt 1)));
      Builder.emit b (Pmov (addr, Imm (SInt 0)));
      Builder.emit b (Psend (dst, src, addr, combine));
      dst)

let test_send_combines () =
  let value combine =
    let prog, dst = combine_prog combine in
    (Cm.Machine.field_ints (run_prog prog) dst).(0)
  in
  (* sources are 1..6 *)
  check Alcotest.int "add" 21 (value Cadd);
  check Alcotest.int "min" 1 (value Cmin);
  check Alcotest.int "max" 6 (value Cmax);
  check Alcotest.int "or" 7 (value Cor);
  check Alcotest.int "and" 0 (value Cand);
  check Alcotest.int "xor" 7 (value Cxor);
  (* Cover: an arbitrary winner, but deterministically one of the values *)
  let v = value Cover in
  check Alcotest.bool "over picks a value" true (v >= 1 && v <= 6)

let test_float_send_combine () =
  let prog, (src, dst) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
        let c = Builder.field b ~vpset:vp KInt in
        let src = Builder.field b ~vpset:vp KFloat in
        let addr = Builder.field b ~vpset:vp KInt in
        let dst = Builder.field b ~vpset:vp KFloat in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pcoord (c, 0));
        Builder.emit b (Punop (ToFloat, src, Fld c));
        Builder.emit b (Pbin (Add, src, Fld src, Imm (SFloat 0.5)));
        Builder.emit b (Pmov (addr, Imm (SInt 2)));
        Builder.emit b (Psend (dst, src, addr, Cadd));
        (src, dst))
  in
  ignore src;
  let m = run_prog prog in
  (* 0.5 + 1.5 + 2.5 + 3.5 = 8 delivered to cell 2 *)
  check (Alcotest.float 1e-9) "sum" 8.0 (Cm.Machine.field_floats m dst).(2)

let test_ptable_and_cread () =
  let prog, (tbl, flags) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 5 ]) in
        let tbl = Builder.field b ~vpset:vp KInt in
        let flags = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Ptable (tbl, [| 9; 0; 7; 0; 5 |]));
        Builder.emit b Cpush;
        Builder.emit b (Cand tbl);
        Builder.emit b (Cread flags);
        Builder.emit b Cpop;
        (tbl, flags))
  in
  let m = run_prog prog in
  check ints "table loaded" [| 9; 0; 7; 0; 5 |] (Cm.Machine.field_ints m tbl);
  check ints "context read back" [| 1; 0; 1; 0; 1 |]
    (Cm.Machine.field_ints m flags)

let test_ptable_length_checked () =
  let prog, _ =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
        let f = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Ptable (f, [| 1; 2 |]));
        ())
  in
  expect_error prog "ptable"

let test_pget_out_of_range () =
  let prog, _ =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 3 ]) in
        let src = Builder.field b ~vpset:vp KInt in
        let addr = Builder.field b ~vpset:vp KInt in
        let dst = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pmov (addr, Imm (SInt 7)));
        Builder.emit b (Pget (dst, src, addr));
        ())
  in
  expect_error prog "address out of range"

let test_kind_mismatch_errors () =
  let prog, _ =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 2 ]) in
        let i = Builder.field b ~vpset:vp KInt in
        let f = Builder.field b ~vpset:vp KFloat in
        let addr = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pget (i, f, addr));
        ())
  in
  expect_error prog "kind mismatch"

let test_reduce_axis_geometry_checked () =
  let prog, _ =
    build (fun b ->
        let outer = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
        let whole = Builder.vpset b (Cm.Geometry.create [ 3; 4 ]) in
        let src = Builder.field b ~vpset:whole KInt in
        let dst = Builder.field b ~vpset:outer KInt in
        Builder.emit b (Cwith whole);
        Builder.emit b (Preduce_axis (Add, dst, src));
        ())
  in
  (* [4] is not a prefix of [3; 4] *)
  expect_error prog "prefix"

let test_operand_wrong_vpset () =
  let prog, _ =
    build (fun b ->
        let vp1 = Builder.vpset b (Cm.Geometry.create [ 4 ]) in
        let vp2 = Builder.vpset b (Cm.Geometry.create [ 8 ]) in
        let a = Builder.field b ~vpset:vp1 KInt in
        let c = Builder.field b ~vpset:vp2 KInt in
        Builder.emit b (Cwith vp1);
        Builder.emit b (Pbin (Add, a, Fld c, Imm (SInt 1)));
        ())
  in
  expect_error prog "not on the current VP set"

let test_cross_vpset_send () =
  (* histogram shape: a large set sends into a small one *)
  let prog, count =
    build (fun b ->
        let big = Builder.vpset b (Cm.Geometry.create [ 12 ]) in
        let small = Builder.vpset b (Cm.Geometry.create [ 3 ]) in
        let key = Builder.field b ~vpset:big KInt in
        let one = Builder.field b ~vpset:big KInt in
        let count = Builder.field b ~vpset:small KInt in
        Builder.emit b (Cwith big);
        Builder.emit b (Pcoord (key, 0));
        Builder.emit b (Pbin (Mod, key, Fld key, Imm (SInt 3)));
        Builder.emit b (Pmov (one, Imm (SInt 1)));
        Builder.emit b (Psend (count, one, key, Cadd));
        count)
  in
  let m = run_prog prog in
  check ints "4 each" [| 4; 4; 4 |] (Cm.Machine.field_ints m count)

let test_pscan_2d () =
  let prog, (src, dst) =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 2; 4 ]) in
        let src = Builder.field b ~vpset:vp KInt in
        let dst = Builder.field b ~vpset:vp KInt in
        Builder.emit b (Cwith vp);
        Builder.emit b (Pcoord (src, 1));
        Builder.emit b (Pscan (Add, dst, src, 1));
        (src, dst))
  in
  ignore src;
  let m = run_prog prog in
  check ints "row scans" [| 0; 1; 3; 6; 0; 1; 3; 6 |]
    (Cm.Machine.field_ints m dst)

let test_unplaced_label () =
  let prog, _ =
    build (fun b ->
        let l = Builder.label b in
        Builder.emit b (Jmp l);
        ())
  in
  expect_error prog "unplaced label"

let test_pp_every_instruction () =
  (* the printer must render every instruction form without raising *)
  let prog, _ =
    build (fun b ->
        let vp = Builder.vpset b (Cm.Geometry.create [ 2; 2 ]) in
        let f = Builder.field b ~vpset:vp KInt in
        let g = Builder.field b ~vpset:vp KFloat in
        let r = Builder.reg b in
        let l = Builder.label b in
        Builder.emit b (Cwith vp);
        Builder.emit b (Fmov (r, Imm (SInt 1)));
        Builder.emit b (Fbin (Add, r, Reg r, Imm (SInt 2)));
        Builder.emit b (Funop (Neg, r, Reg r));
        Builder.emit b (Frand (r, Imm (SInt 10)));
        Builder.emit b (Fread (r, f, Imm (SInt 0)));
        Builder.emit b (Fwrite (f, Imm (SInt 0), Reg r));
        Builder.emit b (Fprint ("x = ", Some (Reg r)));
        Builder.emit b (Pmov (f, Imm (SInt 0)));
        Builder.emit b (Pbin (Mul, f, Fld f, Imm (SInt 3)));
        Builder.emit b (Punop (Abs, f, Fld f));
        Builder.emit b (Pcoord (f, 0));
        Builder.emit b (Ptable (f, [| 1; 2; 3; 4 |]));
        Builder.emit b (Prand (f, Imm (SInt 9)));
        Builder.emit b (Psel (f, Fld f, Imm (SInt 1), Imm (SInt 2)));
        Builder.emit b (Pget (f, f, f));
        Builder.emit b (Psend (f, f, f, Ccheck));
        Builder.emit b (Pnews (f, f, 0, 1));
        Builder.emit b (Preduce (Add, r, f));
        Builder.emit b (Pcount r);
        Builder.emit b (Pscan (Add, f, f, 0));
        Builder.emit b (Punop (ToFloat, g, Fld f));
        Builder.emit b Cpush;
        Builder.emit b (Cand f);
        Builder.emit b (Cread f);
        Builder.emit b Cpop;
        Builder.emit b Creset;
        Builder.emit b (Comment "done");
        Builder.place b l;
        Builder.emit b (Jz (Reg r, l));
        Builder.emit b Halt;
        ())
  in
  let s = Format.asprintf "%a" Cm.Paris.pp_program prog in
  check Alcotest.bool "prints" true (String.length s > 400)

let () =
  Alcotest.run "machine-extra"
    [
      ( "combining",
        [
          Alcotest.test_case "send combines" `Quick test_send_combines;
          Alcotest.test_case "float combine" `Quick test_float_send_combine;
          Alcotest.test_case "cross-vpset histogram" `Quick test_cross_vpset_send;
        ] );
      ( "instructions",
        [
          Alcotest.test_case "ptable + cread" `Quick test_ptable_and_cread;
          Alcotest.test_case "2d scan" `Quick test_pscan_2d;
          Alcotest.test_case "pp all forms" `Quick test_pp_every_instruction;
        ] );
      ( "errors",
        [
          Alcotest.test_case "ptable length" `Quick test_ptable_length_checked;
          Alcotest.test_case "pget range" `Quick test_pget_out_of_range;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_errors;
          Alcotest.test_case "reduce-axis geometry" `Quick test_reduce_axis_geometry_checked;
          Alcotest.test_case "wrong vpset" `Quick test_operand_wrong_vpset;
          Alcotest.test_case "unplaced label" `Quick test_unplaced_label;
        ] );
    ]
