(* Construct-level fuzzing: random UC programs built from the language's
   parallel constructs, executed by both the interpreter and the compiled
   Paris code.  Generated programs are guaranteed to terminate (iterative
   constructs count down a fuel array) and to respect the one-value rule
   (assignment targets are permutations of the index space). *)

let qtest ?(count = 120) ?print name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ?print ~name gen prop)

let n = 8 (* index space size; arrays are a[N], b[N], d[N][N] *)

open QCheck2.Gen

(* ---------------- expressions ---------------- *)

(* a reduction-free int expression over element i and arrays a, b; sizes
   are capped because statements use several of these *)
let base_expr =
  sized_size (int_bound 5)
  @@ fix (fun self depth ->
         if depth <= 0 then
           oneofl [ "i"; "a[i]"; "b[i]"; "1"; "2"; "5"; "rand() % 9" ]
         else
           let sub = self (depth / 2) in
           oneof
             [
               oneofl [ "i"; "a[i]"; "b[i]"; "3" ];
               (let* x = sub and* y = sub in
                let* op = oneofl [ "+"; "-"; "*" ] in
                return (Printf.sprintf "(%s %s %s)" x op y));
               (let* x = sub and* y = sub in
                let* op = oneofl [ "<"; "=="; "<=" ] in
                return (Printf.sprintf "(%s %s %s)" x op y));
               (let* x = sub in
                (* C's %% is negative for negative operands: keep it safe *)
                return (Printf.sprintf "a[abs(%s + 1) %% %d]" x n));
               (let* x = sub and* y = sub in
                return (Printf.sprintf "min(%s, %s)" x y));
               (let* x = sub and* y = sub in
                return (Printf.sprintf "(%s ? %s : %s)" x x y));
               (let* x = sub in
                return (Printf.sprintf "abs(%s)" x));
             ])

(* expressions may contain one level of reduction: nesting reductions
   multiplies the activity space by |J| per level, which is not a codegen
   bug but an exponential workload *)
let expr1 =
  frequency
    [
      (4, base_expr);
      ( 1,
        let* p = base_expr and* e = base_expr in
        return
          (Printf.sprintf "($+(J st ((j %% 3 == 0) && (%s > 0)) (j + %s)) + %s)"
             p e e) );
    ]

let pred1 =
  oneof
    [
      (let* e = expr1 in
       return (Printf.sprintf "(%s) %% 2 == 0" e));
      oneofl
        [
          "i % 2 == 0"; "i > 2"; "a[i] > b[i]"; "a[i] % 3 != 1";
          "i + 1 < 8 && a[i+1] > a[i]";
        ];
    ]

(* ---------------- statements ---------------- *)

(* assignment target: a permutation of the index space (no conflicts) *)
let target1 =
  oneofl [ "a[i]"; "b[i]"; Printf.sprintf "a[(i + 3) %% %d]" n;
           Printf.sprintf "b[(i + 5) %% %d]" n ]

let par_stmt =
  let* t = target1 and* e = expr1 in
  let* guarded = bool in
  if guarded then
    let* p = pred1 in
    let* with_others = bool in
    if with_others then
      let* t2 = oneofl [ "a[i]"; "b[i]" ] and* e2 = expr1 in
      return
        (Printf.sprintf "  par (I)\n    st (%s) %s = %s;\n    others %s = %s;" p t
           e t2 e2)
    else return (Printf.sprintf "  par (I) st (%s) %s = %s;" p t e)
  else return (Printf.sprintf "  par (I) %s = %s;" t e)

let par_block_stmt =
  let* e1 = expr1 and* e2 = expr1 and* p = pred1 in
  return
    (Printf.sprintf
       "  par (I) st (%s) {\n    int t_;\n    t_ = %s;\n    a[i] = t_ + 1;\n    b[i] = %s;\n  }"
       p e1 e2)

let starpar_stmt =
  (* terminates: each element runs at most `lim' rounds *)
  let* e = expr1 and* lim = int_range 1 3 in
  return
    (Printf.sprintf
       "  par (I) fuel[i] = %d;\n  *par (I) st (fuel[i] > 0) {\n    a[i] = a[i] + (%s) %% 5;\n    fuel[i] = fuel[i] - 1;\n  }"
       lim e)

let seq_par_stmt =
  let* p = pred1 and* e = expr1 in
  return
    (Printf.sprintf "  seq (K)\n    par (I) st ((i + k) %% 2 == 0 && (%s)) a[i] = %s;"
       p e)

let reduce_stmt =
  let* op = oneofl [ "$+"; "$<"; "$>"; "$|"; "$&" ] and* p = pred1 and* e = expr1 in
  return (Printf.sprintf "  s = %s(I st (%s) %s);" op p e)

let two_d_stmt =
  let* e = expr1 in
  (* i/j both in scope; reuse e with i only plus j terms *)
  return
    (Printf.sprintf
       "  par (I, J)\n    st (i != j) d[i][j] = (%s) + j;\n    others d[i][j] = 0;" e)

let fe_wrap stmt =
  let* k = int_range 1 3 in
  return
    (Printf.sprintf "  for (t = 0; t < %d; t = t + 1) {\n  %s\n  }" k
       (String.concat "\n  " (String.split_on_char '\n' stmt)))

(* A statement may contain at most one textual rand() site: with several
   sites the per-element interleaving of the LCG differs between the
   sequential interpreter and the vectorized machine (each site is one
   Prand over all enabled elements).  UC leaves rand order unspecified;
   the differential tests therefore stay within one site per statement,
   where the streams provably coincide. *)
let limit_rand s =
  let needle = "rand() % 9" in
  let nn = String.length needle in
  let buf = Buffer.create (String.length s) in
  let seen = ref false in
  let i = ref 0 in
  while !i < String.length s do
    if
      !i + nn <= String.length s
      && String.sub s !i nn = needle
    then begin
      Buffer.add_string buf (if !seen then "4" else needle);
      seen := true;
      i := !i + nn
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let statement =
  let* base =
    frequency
      [
        (4, par_stmt);
        (2, par_block_stmt);
        (2, starpar_stmt);
        (2, seq_par_stmt);
        (2, reduce_stmt);
        (1, two_d_stmt);
      ]
  in
  let* wrapped = frequency [ (3, return base); (1, fe_wrap base) ] in
  return (limit_rand wrapped)

let program =
  let* stmts = list_size (int_range 2 6) statement in
  return
    (Printf.sprintf
       {|
#define N %d
index-set I:i = {0..N-1}, J:j = I, K:k = {0..2};
int a[N], b[N], fuel[N], d[N][N], s, t;

void main() {
%s
}
|}
       n
       (String.concat "\n" stmts))

(* ---------------- the property ---------------- *)

let agree src =
  let prog = Uc.Parser.parse_program src in
  ignore (Uc.Sema.check prog);
  let ir = Uc.Interp.run prog in
  let mr = Uc.Compile.run_source src in
  Uc.Interp.int_array ir "a" = Uc.Compile.int_array mr "a"
  && Uc.Interp.int_array ir "b" = Uc.Compile.int_array mr "b"
  && Uc.Interp.int_array ir "d" = Uc.Compile.int_array mr "d"
  && Uc.Interp.scalar ir "s"
     = (match Uc.Compile.scalar mr "s" with
       | Cm.Paris.SInt v -> Uc.Interp.Vint v
       | Cm.Paris.SFloat f -> Uc.Interp.Vfloat f)

let fuzz_differential =
  qtest ~print:(fun s -> s)
    "fuzz: random construct programs, interpreter = machine" program agree

let fuzz_options =
  qtest ~count:60 ~print:fst "fuzz: optimizations never change results"
    (QCheck2.Gen.pair program
       (QCheck2.Gen.oneofl
          [
            { Uc.Codegen.default_options with news_opt = false };
            { Uc.Codegen.default_options with cse = false };
            { Uc.Codegen.default_options with procopt = false };
          ]))
    (fun (src, options) ->
      let prog = Uc.Parser.parse_program src in
      ignore (Uc.Sema.check prog);
      let m1 = Uc.Compile.run_source src in
      let m2 = Uc.Compile.run_source ~options src in
      Uc.Compile.int_array m1 "a" = Uc.Compile.int_array m2 "a"
      && Uc.Compile.int_array m1 "b" = Uc.Compile.int_array m2 "b"
      && Uc.Compile.int_array m1 "d" = Uc.Compile.int_array m2 "d")

let fuzz_pretty_roundtrip =
  qtest ~count:120 ~print:(fun s -> s)
    "fuzz: pretty-print/reparse is a fixpoint" program
    (fun src ->
      let p1 = Uc.Parser.parse_program src in
      let s1 = Uc.Pretty.program_to_string p1 in
      let s2 = Uc.Pretty.program_to_string (Uc.Parser.parse_program s1) in
      s1 = s2)

let () =
  Alcotest.run "fuzz"
    [
      ("differential", [ fuzz_differential ]);
      ("options", [ fuzz_options ]);
      ("pretty", [ fuzz_pretty_roundtrip ]);
    ]
