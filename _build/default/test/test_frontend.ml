(* Tests for the UC front end: lexer, parser, pretty-printer, sema. *)

let check = Alcotest.check

let tokens src = Array.to_list (Array.map fst (Uc.Lexer.tokenize src))

open Uc.Token

(* ---------------- lexer ---------------- *)

let test_lex_basic () =
  check Alcotest.int "count" 6 (List.length (tokens "int a = 3;"));
  match tokens "int a = 3;" with
  | [ KW_INT; IDENT "a"; ASSIGN; INT 3; SEMI; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_range () =
  (* "0..9" must not lex 0. as a float *)
  match tokens "{0..9}" with
  | [ LBRACE; INT 0; DOTDOT; INT 9; RBRACE; EOF ] -> ()
  | _ -> Alcotest.fail "range tokens wrong"

let test_lex_index_set () =
  (match tokens "index-set I" with
  | [ KW_INDEXSET; IDENT "I"; EOF ] -> ()
  | _ -> Alcotest.fail "index-set keyword");
  (* "index - set" with spaces is not the keyword *)
  match tokens "index - set" with
  | [ IDENT "index"; MINUS; IDENT "set"; EOF ] -> ()
  | _ -> Alcotest.fail "spaced index - set"

let test_lex_reductions () =
  match tokens "$+ $& $> $< $* $| $^ $," with
  | [ RED Uc.Ast.Rsum; RED Uc.Ast.Rland; RED Uc.Ast.Rmax; RED Uc.Ast.Rmin;
      RED Uc.Ast.Rprod; RED Uc.Ast.Rlor; RED Uc.Ast.Rxor; RED Uc.Ast.Rarb; EOF ] ->
      ()
  | _ -> Alcotest.fail "reduction operators"

let test_lex_floats () =
  (match tokens "1.5 2.0e3 7" with
  | [ FLOAT 1.5; FLOAT 2000.0; INT 7; EOF ] -> ()
  | _ -> Alcotest.fail "float tokens");
  match tokens "1.0/a" with
  | [ FLOAT 1.0; SLASH; IDENT "a"; EOF ] -> ()
  | _ -> Alcotest.fail "float then slash"

let test_lex_minmax_assign () =
  match tokens "a <?= b; c >?= d; x <= y" with
  | [ IDENT "a"; MINASSIGN; IDENT "b"; SEMI; IDENT "c"; MAXASSIGN; IDENT "d";
      SEMI; IDENT "x"; LE; IDENT "y"; EOF ] ->
      ()
  | _ -> Alcotest.fail "min/max assign"

let test_lex_comments () =
  match tokens "a /* multi\nline */ b // end\nc" with
  | [ IDENT "a"; IDENT "b"; IDENT "c"; EOF ] -> ()
  | _ -> Alcotest.fail "comments"

let test_lex_define () =
  (match tokens "#define N 32\nint a[N];" with
  | [ KW_INT; IDENT "a"; LBRACKET; INT 32; RBRACKET; SEMI; EOF ] -> ()
  | _ -> Alcotest.fail "simple define");
  (* macros referencing earlier macros *)
  match tokens "#define N 4\n#define M N + 1\nM" with
  | [ INT 4; PLUS; INT 1; EOF ] -> ()
  | _ -> Alcotest.fail "nested define"

let test_lex_define_cyclic () =
  try
    ignore (tokens "#define A B\n#define B A\nA");
    Alcotest.fail "expected cyclic macro error"
  with Uc.Loc.Error (_, msg) ->
    check Alcotest.bool "mentions macro" true
      (String.length msg > 0 && String.sub msg 0 5 = "macro")

let test_lex_errors () =
  (try
     ignore (tokens "a @ b");
     Alcotest.fail "expected error"
   with Uc.Loc.Error _ -> ());
  (try
     ignore (tokens "/* unterminated");
     Alcotest.fail "expected error"
   with Uc.Loc.Error _ -> ());
  try
    ignore (tokens "$?");
    Alcotest.fail "expected error"
  with Uc.Loc.Error _ -> ()

let test_lex_locations () =
  let toks = Uc.Lexer.tokenize "int\n  a;" in
  let _, l0 = toks.(0) and _, l1 = toks.(1) in
  check Alcotest.int "line 1" 1 l0.Uc.Loc.line;
  check Alcotest.int "line 2" 2 l1.Uc.Loc.line;
  check Alcotest.int "col 3" 3 l1.Uc.Loc.col

(* ---------------- parser ---------------- *)

let parse = Uc.Parser.parse_program
let pexpr = Uc.Parser.parse_expr

let expr_str s = Uc.Pretty.expr_to_string (pexpr s)

let test_parse_precedence () =
  check Alcotest.string "mul binds" "1 + 2 * 3" (expr_str "1 + 2 * 3");
  check Alcotest.string "parens kept" "(1 + 2) * 3" (expr_str "(1 + 2) * 3");
  check Alcotest.string "cmp" "a < b + 1 && c" (expr_str "a < b+1 && c");
  check Alcotest.string "assoc" "a - b - c" (expr_str "(a - b) - c");
  check Alcotest.string "right sub" "a - (b - c)" (expr_str "a - (b - c)");
  check Alcotest.string "cond" "a ? b : c ? d : e" (expr_str "a ? b : (c ? d : e)");
  check Alcotest.string "unary" "-a[i] + !b" (expr_str "-a[i] + !b")

let test_parse_reduction_forms () =
  check Alcotest.string "simple" "$+(I; i)" (expr_str "$+(I; i)");
  check Alcotest.string "multi-set" "$<(I, J; a[i][j])" (expr_str "$<(I,J; a[i][j])");
  check Alcotest.string "predicated" "$+(I st (a[i] > 0) a[i] others -a[i])"
    (expr_str "$+ (I st (a[i]>0) a[i] others -a[i])");
  check Alcotest.string "nested" "$>(I st (a[i] == $>(J; a[j])) i)"
    (expr_str "$>(I st (a[i] == $>(J; a[j])) i)")

let roundtrip src =
  let p1 = parse src in
  let s1 = Uc.Pretty.program_to_string p1 in
  let p2 = parse s1 in
  let s2 = Uc.Pretty.program_to_string p2 in
  check Alcotest.string "pretty/reparse fixpoint" s1 s2

let test_roundtrip_corpus () =
  List.iter (fun (_name, src) -> roundtrip src) Uc_programs.Programs.all_named

let test_parse_goto_rejected () =
  try
    ignore (parse "void main() { goto l; }");
    Alcotest.fail "expected goto rejection"
  with Uc.Loc.Error (_, msg) ->
    check Alcotest.bool "mentions goto" true
      (String.length msg >= 4 && String.sub msg 0 4 = "goto")

let test_parse_star_requires_par () =
  try
    ignore (parse "void main() { * 3; }");
    Alcotest.fail "expected error"
  with Uc.Loc.Error _ -> ()

let test_parse_map_section () =
  let src =
    {|
index-set I:i = {0..7};
int a[8], b[8];
map (I) { permute (I) b[i+1] :- a[i]; fold a by 2; copy b along 4; }
void main() { ; }
|}
  in
  match parse src with
  | [ _; _; Uc.Ast.Tmap m; _ ] ->
      check Alcotest.int "three mappings" 3 (List.length m.Uc.Ast.mmappings)
  | _ -> Alcotest.fail "map section shape"

let test_parse_errors_have_locations () =
  try
    ignore (parse "void main() {\n  int x\n}");
    Alcotest.fail "expected error"
  with Uc.Loc.Error (loc, _) -> check Alcotest.int "line" 3 loc.Uc.Loc.line

let test_parse_dangling_others () =
  (* others binds to the innermost par *)
  let src =
    {|
index-set I:i = {0..3}, J:j = I;
int a[4], b[4];
void main() {
  par (I) st (i > 0)
    par (J) st (j > 0) a[j] = 1;
    others b[j] = 2;
}
|}
  in
  match parse src with
  | [ _; _; Uc.Ast.Tfunc f ] -> (
      match (List.hd f.Uc.Ast.fbody.Uc.Ast.bstmts).Uc.Ast.s with
      | Uc.Ast.Spar outer -> (
          check Alcotest.bool "outer has no others" true
            (outer.Uc.Ast.pothers = None);
          match outer.Uc.Ast.pbranches with
          | [ (_, { s = Uc.Ast.Spar inner; _ }) ] ->
              check Alcotest.bool "inner has others" true
                (inner.Uc.Ast.pothers <> None)
          | _ -> Alcotest.fail "inner shape")
      | _ -> Alcotest.fail "outer shape")
  | _ -> Alcotest.fail "program shape"

(* ---------------- sema ---------------- *)

let check_ok src = ignore (Uc.Sema.check (parse src))

let check_fails ?frag src =
  try
    ignore (Uc.Sema.check (parse src));
    Alcotest.fail "expected a semantic error"
  with Uc.Loc.Error (_, msg) -> (
    match frag with
    | None -> ()
    | Some f ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        if not (contains msg f) then
          Alcotest.failf "error %S does not mention %S" msg f)

let test_sema_corpus () =
  List.iter
    (fun (name, src) ->
      try ignore (Uc.Sema.check (parse src))
      with Uc.Loc.Error (loc, msg) ->
        Alcotest.failf "%s: %a: %s" name Uc.Loc.pp loc msg)
    Uc_programs.Programs.all_named

let test_sema_unknown_set () =
  check_fails ~frag:"unknown index set"
    "void main() { par (I) ; }"

let test_sema_nonconst_bounds () =
  check_fails ~frag:"constant"
    "void main() { int n; index-set I:i = {0..n}; }"

let test_sema_elem_out_of_scope () =
  check_fails ~frag:"unknown identifier"
    {|
index-set I:i = {0..3};
int a[4];
void main() { a[i] = 1; }
|}

let test_sema_elem_not_assignable () =
  check_fails ~frag:"cannot be assigned"
    {|
index-set I:i = {0..3};
void main() { par (I) i = 2; }
|}

let test_sema_global_scalar_in_par () =
  check_fails ~frag:"par-local"
    {|
index-set I:i = {0..3};
int s;
void main() { par (I) s = i; }
|}

let test_sema_parlocal_ok () =
  check_ok
    {|
index-set I:i = {0..3};
int a[4];
void main() { par (I) { int t; t = i * 2; a[i] = t; } }
|}

let test_sema_solve_shape () =
  check_fails ~frag:"solve"
    {|
index-set I:i = {0..3};
int a[4];
void main() { solve (I) { a[i] = 1; print("no"); } }
|};
  check_fails ~frag:"'='"
    {|
index-set I:i = {0..3};
int a[4];
void main() { solve (I) a[i] += 1; }
|}

let test_sema_print_fe_only () =
  check_fails ~frag:"front end"
    {|
index-set I:i = {0..3};
void main() { par (I) print("x"); }
|}

let test_sema_string_outside_print () =
  check_fails ~frag:"print"
    {|
int x;
void main() { x = abs("nope"); }
|}

let test_sema_builtin_arity () =
  check_fails ~frag:"expects"
    "int x; void main() { x = power2(1, 2); }"

let test_sema_void_in_expr () =
  check_fails ~frag:"void"
    {|
void f() { ; }
int x;
void main() { x = f(); }
|}

let test_sema_define_before_use () =
  check_fails ~frag:"defined before use"
    {|
int x;
void main() { x = g(); }
int g() { return 1; }
|}

let test_sema_recursion_rejected () =
  (* self-recursion is impossible because a function is not in scope in its
     own body (define-before-use) *)
  check_fails ~frag:"defined before use"
    "int f(int n) { return f(n - 1); }"

let test_sema_break_outside_loop () =
  check_fails ~frag:"loop" "void main() { break; }"

let test_sema_mod_floats () =
  check_fails ~frag:"int" "float x; void main() { x %= 2.0; }"

let test_sema_array_rank () =
  check_fails ~frag:"subscripts"
    "int a[4][4]; void main() { a[1] = 2; }"

let test_sema_redeclaration () =
  check_fails ~frag:"redeclaration"
    "void main() { int x; int x; }"

let test_sema_shadowing_ok () =
  (* paper section 3.4: reuse of an index set hides the outer element *)
  check_ok
    {|
index-set I:i = {0..9};
int a[10];
void main() {
  par (I)
    st (i % 2 == 0) a[i] = $+(I; i);
}
|}

let test_sema_inline_restriction () =
  check_fails ~frag:"straight-line"
    {|
index-set I:i = {0..3};
int a[4];
int slow(int n) { int r; r = 0; while (n > 0) { r = r + n; n = n - 1; } return r; }
void main() { par (I) a[i] = slow(i); }
|}

let test_sema_inlinable_ok () =
  check_ok
    {|
index-set I:i = {0..3};
int a[4];
int double_plus(int n) { int r; r = n * 2; return r + 1; }
void main() { par (I) a[i] = double_plus(i); }
|}

let test_sema_array_param () =
  check_ok
    {|
int total(int v[], int n) {
  int s; int k;
  s = 0;
  for (k = 0; k < n; k = k + 1) s = s + v[k];
  return s;
}
int a[5], out;
void main() {
  int k;
  for (k = 0; k < 5; k = k + 1) a[k] = k;
  out = total(a, 5);
}
|};
  check_fails ~frag:"rank"
    {|
int f(int v[][], int n) { return v[0][0]; }
int a[5], x;
void main() { x = f(a, 5); }
|}

let test_sema_swap_checks () =
  check_fails ~frag:"assignment target"
    "int x; void main() { swap(x, 3); }";
  check_fails ~frag:"same type"
    "int x; float y; void main() { swap(x, y); }"

let test_sema_map_checks () =
  check_fails ~frag:"unknown array"
    {|
index-set I:i = {0..7};
map (I) { permute (I) nope[i+1] :- also_nope[i]; }
void main() { ; }
|};
  check_fails ~frag:"affine"
    {|
index-set I:i = {0..7};
int a[8], b[8];
map (I) { permute (I) b[i*i] :- a[i]; }
void main() { ; }
|};
  check_fails ~frag:"divide"
    {|
index-set I:i = {0..8};
int a[9];
map (I) { fold a by 2; }
void main() { ; }
|}

let test_sema_reduction_int_ops () =
  check_fails ~frag:"int"
    {|
index-set I:i = {0..3};
float a[4];
int x;
void main() { x = $^(I; a[i]); }
|}

let test_sema_oneof_others () =
  check_fails ~frag:"oneof"
    {|
index-set I:i = {0..3};
int a[4];
void main() {
  oneof (I)
    st (i > 1) a[i] = 1;
    others a[i] = 2;
}
|};
  check_fails ~frag:"seq"
    {|
index-set I:i = {0..3};
int a[4];
void main() {
  seq (I)
    st (i > 1) a[i] = 1;
    others a[i] = 2;
}
|}

let test_sema_info () =
  let info =
    Uc.Sema.check
      (parse
         {|
#define N 6
index-set I:i = {0..N-1};
int a[N][2], s;
float f;
void main() { ; }
|})
  in
  check Alcotest.bool "has main" true info.Uc.Sema.has_main;
  check
    (Alcotest.list Alcotest.int)
    "dims" [ 6; 2 ]
    (List.assoc "a" info.Uc.Sema.global_arrays).Uc.Sema.adims;
  check Alcotest.int "set size" 6
    (Array.length (List.assoc "I" info.Uc.Sema.global_sets))

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "range dots" `Quick test_lex_range;
          Alcotest.test_case "index-set keyword" `Quick test_lex_index_set;
          Alcotest.test_case "reduction ops" `Quick test_lex_reductions;
          Alcotest.test_case "floats" `Quick test_lex_floats;
          Alcotest.test_case "min/max assign" `Quick test_lex_minmax_assign;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "define" `Quick test_lex_define;
          Alcotest.test_case "cyclic define" `Quick test_lex_define_cyclic;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "locations" `Quick test_lex_locations;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "reduction forms" `Quick test_parse_reduction_forms;
          Alcotest.test_case "corpus round-trip" `Quick test_roundtrip_corpus;
          Alcotest.test_case "goto rejected" `Quick test_parse_goto_rejected;
          Alcotest.test_case "star needs par" `Quick test_parse_star_requires_par;
          Alcotest.test_case "map section" `Quick test_parse_map_section;
          Alcotest.test_case "error locations" `Quick test_parse_errors_have_locations;
          Alcotest.test_case "dangling others" `Quick test_parse_dangling_others;
        ] );
      ( "sema",
        [
          Alcotest.test_case "corpus accepted" `Quick test_sema_corpus;
          Alcotest.test_case "unknown set" `Quick test_sema_unknown_set;
          Alcotest.test_case "non-const bounds" `Quick test_sema_nonconst_bounds;
          Alcotest.test_case "elem out of scope" `Quick test_sema_elem_out_of_scope;
          Alcotest.test_case "elem not assignable" `Quick test_sema_elem_not_assignable;
          Alcotest.test_case "global scalar in par" `Quick test_sema_global_scalar_in_par;
          Alcotest.test_case "par-local ok" `Quick test_sema_parlocal_ok;
          Alcotest.test_case "solve shape" `Quick test_sema_solve_shape;
          Alcotest.test_case "print fe only" `Quick test_sema_print_fe_only;
          Alcotest.test_case "string outside print" `Quick test_sema_string_outside_print;
          Alcotest.test_case "builtin arity" `Quick test_sema_builtin_arity;
          Alcotest.test_case "void in expr" `Quick test_sema_void_in_expr;
          Alcotest.test_case "define before use" `Quick test_sema_define_before_use;
          Alcotest.test_case "recursion rejected" `Quick test_sema_recursion_rejected;
          Alcotest.test_case "break outside loop" `Quick test_sema_break_outside_loop;
          Alcotest.test_case "%= floats" `Quick test_sema_mod_floats;
          Alcotest.test_case "array rank" `Quick test_sema_array_rank;
          Alcotest.test_case "redeclaration" `Quick test_sema_redeclaration;
          Alcotest.test_case "shadowing ok" `Quick test_sema_shadowing_ok;
          Alcotest.test_case "inline restriction" `Quick test_sema_inline_restriction;
          Alcotest.test_case "inlinable ok" `Quick test_sema_inlinable_ok;
          Alcotest.test_case "array params" `Quick test_sema_array_param;
          Alcotest.test_case "swap checks" `Quick test_sema_swap_checks;
          Alcotest.test_case "map checks" `Quick test_sema_map_checks;
          Alcotest.test_case "reduction int ops" `Quick test_sema_reduction_int_ops;
          Alcotest.test_case "oneof/seq others rejected" `Quick test_sema_oneof_others;
          Alcotest.test_case "info" `Quick test_sema_info;
        ] );
    ]
