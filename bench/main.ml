(* Benchmark harness: regenerates every table and figure in the paper's
   evaluation (section 5), plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe                    -- everything
     dune exec bench/main.exe -- fig6 a1         -- selected sections
     dune exec bench/main.exe -- -j 4            -- warm the figure sweeps
                                                    on a 4-domain Ucd pool
     dune exec bench/main.exe -- --json out.json -- also write per-figure
                                                    rows as JSON

   Times are simulated Connection Machine seconds from the cost model in
   Cm.Cost (a 16K-PE CM-2 driven by a SUN-4); the sequential baselines use
   the SUN-4 operation model in Seqc.Sun4.  The shapes - who wins, how the
   curves grow, where the crossover falls - are the reproduction targets;
   absolute times depend on the cost constants.

   With [-j N], every UC execution a figure needs is first submitted to a
   Ucd domain pool sharing one content-addressed cache; the sections then
   print their tables from cache hits, so the sweep is parallel while the
   output stays in order. *)

let seed = 20260705

let section id title =
  Printf.printf "\n=== %s: %s ===\n\n" id title

(* ---------------- Ucd-backed execution ---------------- *)

let cache = Ucd.Cache.create ()

let job_of ?options src =
  Ucd.Job.make ?options ~seed ~name:"bench" ~source:src ()

(* cached: identical (options, source, seed) pairs are simulated once *)
let run_uc_report ?options src =
  let r = Ucd.Runner.run_job ~cache (job_of ?options src) in
  match r.Ucd.Report.status with
  | Ucd.Report.Done -> r
  | Ucd.Report.Failed msg -> failwith ("bench job failed: " ^ msg)
  | Ucd.Report.Timeout _ -> failwith "bench job timed out"
  | Ucd.Report.Faulted msg -> failwith ("bench job faulted: " ^ msg)

let run_uc ?options src =
  (run_uc_report ?options src).Ucd.Report.simulated_seconds

let metric r name =
  match List.assoc_opt name r.Ucd.Report.metrics with
  | Some v -> v
  | None -> 0.0

(* the machine counters a figure row carries, from the report's metrics
   column; kept flat so compare.ml's row parser still applies *)
let metric_cols r =
  List.map
    (fun k -> (k, Ucd.Jsonu.Float (metric r k)))
    [ "pe_ops"; "news_ops"; "router_ops"; "router_messages" ]

(* uncached: for meter readings and for bechamel, which measures the
   simulator's own wall-clock and must not be served memoized results *)
let run_uc_direct ?options ?engine src =
  let t = Uc.Compile.run_source ?options ?engine ~seed src in
  Uc.Compile.elapsed_seconds t

let run_cstar (prog, _field) =
  let m = Cm.Machine.create ~seed prog in
  Cm.Machine.run m;
  Cm.Machine.elapsed_seconds m

(* ---------------- JSON row collection ---------------- *)

let json_rows : Ucd.Jsonu.t list ref = ref []

let emit_row sec fields =
  json_rows :=
    Ucd.Jsonu.Obj (("section", Ucd.Jsonu.Str sec) :: fields) :: !json_rows

let collected_rows () = List.rev !json_rows

(* ---------------- figure 6 ---------------- *)

let fig6_ns = [ 8; 16; 24; 32; 48; 64 ]

let fig6 () =
  section "F6" "Shortest path, O(N^2) parallelism: UC vs C* (elapsed seconds)";
  Printf.printf "%6s %12s %12s %8s\n" "rows" "UC" "C*" "UC/C*";
  List.iter
    (fun n ->
      let r =
        run_uc_report
          (Uc_programs.Programs.shortest_path_n2 ~deterministic:false ~n ())
      in
      let uc = r.Ucd.Report.simulated_seconds in
      let cs = run_cstar (Cstar.Programs.path_n2 ~deterministic:false ~n ()) in
      Printf.printf "%6d %12.4f %12.4f %8.2f\n" n uc cs (uc /. cs);
      emit_row "fig6"
        ([
           ("n", Ucd.Jsonu.Int n);
           ("uc", Ucd.Jsonu.Float uc);
           ("cstar", Ucd.Jsonu.Float cs);
         ]
        @ metric_cols r))
    fig6_ns

(* ---------------- figure 7 ---------------- *)

let fig7_ns = [ 5; 10; 15; 20; 25 ]

let fig7 () =
  section "F7"
    "Shortest path, O(N^3) parallelism: UC vs C* (elapsed seconds)";
  Printf.printf
    "%6s %12s %14s %16s\n" "rows" "UC" "C* (log iters)" "C* (appendix, N)";
  List.iter
    (fun n ->
      let log_iters =
        let rec go k p = if p >= n then max k 1 else go (k + 1) (p * 2) in
        go 0 1
      in
      let r =
        run_uc_report
          (Uc_programs.Programs.shortest_path_n3 ~deterministic:false ~n ())
      in
      let uc = r.Ucd.Report.simulated_seconds in
      let cs_log =
        run_cstar
          (Cstar.Programs.path_n3 ~deterministic:false ~iters:log_iters ~n ())
      in
      let cs_full =
        run_cstar (Cstar.Programs.path_n3 ~deterministic:false ~n ())
      in
      Printf.printf "%6d %12.4f %14.4f %16.4f\n" n uc cs_log cs_full;
      emit_row "fig7"
        ([
           ("n", Ucd.Jsonu.Int n);
           ("uc", Ucd.Jsonu.Float uc);
           ("cstar_log", Ucd.Jsonu.Float cs_log);
           ("cstar_full", Ucd.Jsonu.Float cs_full);
         ]
        @ metric_cols r))
    fig7_ns

(* ---------------- figure 8 ---------------- *)

let fig8_ns = [ 20; 40; 60; 80; 100; 120 ]

let fig8 () =
  section "F8"
    "Shortest path with obstacle: sequential C vs optimized C vs UC on the CM";
  Printf.printf "%6s %12s %12s %12s %8s\n" "rows" "seq C" "seq C -O" "UC (CM)"
    "sweeps";
  List.iter
    (fun n ->
      let plain = Seqc.Obstacle.run ~n () in
      let opt = Seqc.Obstacle.run ~optimized:true ~n () in
      let r = run_uc_report (Uc_programs.Programs.obstacle_grid ~n) in
      let uc = r.Ucd.Report.simulated_seconds in
      Printf.printf "%6d %12.3f %12.3f %12.3f %8d\n" n
        plain.Seqc.Obstacle.elapsed_seconds opt.Seqc.Obstacle.elapsed_seconds
        uc plain.Seqc.Obstacle.iterations;
      emit_row "fig8"
        ([
           ("n", Ucd.Jsonu.Int n);
           ("seqc", Ucd.Jsonu.Float plain.Seqc.Obstacle.elapsed_seconds);
           ("seqc_opt", Ucd.Jsonu.Float opt.Seqc.Obstacle.elapsed_seconds);
           ("uc", Ucd.Jsonu.Float uc);
           ("sweeps", Ucd.Jsonu.Int plain.Seqc.Obstacle.iterations);
         ]
        @ metric_cols r))
    fig8_ns

(* ---------------- table: conciseness ---------------- *)

let count_lines src =
  String.split_on_char '\n' src
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let table_conciseness () =
  section "T1" "Program conciseness: UC vs C* source lines (section 5)";
  (* the C* line counts are those of the paper's appendix listings
     (figures 9 and 10), counted from the published text *)
  let uc_n2 = count_lines (Uc_programs.Programs.shortest_path_n2 ~n:32 ()) in
  let uc_n3 = count_lines (Uc_programs.Programs.shortest_path_n3 ~n:32 ()) in
  Printf.printf "%-28s %6s %14s\n" "program" "UC" "C* (appendix)";
  Printf.printf "%-28s %6d %14d\n" "shortest path O(N^2)" uc_n2 21;
  Printf.printf "%-28s %6d %14d\n" "shortest path O(N^3)" uc_n3 30;
  emit_row "conciseness"
    [
      ("program", Ucd.Jsonu.Str "shortest_path_n2");
      ("uc_lines", Ucd.Jsonu.Int uc_n2);
      ("cstar_lines", Ucd.Jsonu.Int 21);
    ];
  emit_row "conciseness"
    [
      ("program", Ucd.Jsonu.Str "shortest_path_n3");
      ("uc_lines", Ucd.Jsonu.Int uc_n3);
      ("cstar_lines", Ucd.Jsonu.Int 30);
    ];
  print_newline ();
  print_endline
    "The two UC programs differ only in the inner statement; the two C*";
  print_endline
    "programs differ structurally (the O(N^3) version must declare and";
  print_endline "initialise a separate three-dimensional XMED domain)."

(* ---------------- ablation A1: data mappings ---------------- *)

let a1_mapping () =
  section "A1"
    "Mapping ablation: stencil a[i] = a[i] + b[i+1] (section 4, ref [2])";
  let n = 4096 and steps = 32 in
  let run ~mapped ~news =
    let options = { Uc.Codegen.default_options with news_opt = news } in
    let t =
      Uc.Compile.run_source ~options ~seed
        (Uc_programs.Programs.stencil ~mapped ~n ~steps ())
    in
    (Uc.Compile.elapsed_seconds t, Uc.Compile.meter t)
  in
  let t_router, m_router = run ~mapped:false ~news:false in
  let t_news, m_news = run ~mapped:false ~news:true in
  let t_mapped, m_mapped = run ~mapped:true ~news:false in
  Printf.printf "%-42s %10s %8s %8s\n" "configuration" "seconds" "router" "news";
  let line label t (m : Cm.Cost.meter) =
    Printf.printf "%-42s %10.4f %8d %8d\n" label t m.Cm.Cost.router_ops
      m.Cm.Cost.news_ops;
    emit_row "a1"
      [
        ("configuration", Ucd.Jsonu.Str label);
        ("seconds", Ucd.Jsonu.Float t);
        ("router_ops", Ucd.Jsonu.Int m.Cm.Cost.router_ops);
        ("news_ops", Ucd.Jsonu.Int m.Cm.Cost.news_ops);
      ]
  in
  line "default mapping (router)" t_router m_router;
  line "default mapping + NEWS optimization" t_news m_news;
  line "permute (I) b[i+1] :- a[i]  (map section)" t_mapped m_mapped;
  Printf.printf "\nmap-section speedup over the default: %.2fx\n"
    (t_router /. t_mapped)

(* ---------------- T2: auto-tuned layouts (ucc tune) ---------------- *)

let t2_autotune () =
  section "T2"
    "Auto-layout search: `ucc tune` vs hand-tuned vs default (a1 stencil)";
  let n = 4096 and steps = 32 in
  let src = Uc_programs.Programs.stencil ~n ~steps () in
  let run ?layouts ~news () =
    let options = { Uc.Codegen.default_options with news_opt = news } in
    let prog = Uc.Compile.parse_source src in
    let t =
      Uc.Compile.run_compiled ~seed (Uc.Compile.lower ?layouts ~options prog)
    in
    (Uc.Compile.elapsed_seconds t, Uc.Compile.meter t)
  in
  let r = Uc.Layoutsel.search_source src in
  let auto = r.Uc.Layoutsel.table in
  let hand = [ ("b", Uc.Mapping.Shifted [| 1 |]) ] in
  let t_default, m_default = run ~news:true () in
  let t_hand, m_hand = run ~layouts:hand ~news:false () in
  let t_auto, m_auto = run ~layouts:auto ~news:false () in
  Printf.printf "%-42s %10s %8s %8s\n" "configuration" "seconds" "router" "news";
  let line label t (m : Cm.Cost.meter) =
    Printf.printf "%-42s %10.4f %8d %8d\n" label t m.Cm.Cost.router_ops
      m.Cm.Cost.news_ops;
    emit_row "t2"
      [
        ("configuration", Ucd.Jsonu.Str label);
        ("seconds", Ucd.Jsonu.Float t);
        ("router_ops", Ucd.Jsonu.Int m.Cm.Cost.router_ops);
        ("news_ops", Ucd.Jsonu.Int m.Cm.Cost.news_ops);
      ]
  in
  line "default layout (best options)" t_default m_default;
  line "hand-tuned map section" t_hand m_hand;
  line (Printf.sprintf "auto-tuned: %s" (Uc.Mapping.table_to_string auto))
    t_auto m_auto;
  Printf.printf
    "\npredicted: default %.3f ms, tuned %.3f ms; measured auto/hand gap: \
     %+.1f%%\n"
    (r.Uc.Layoutsel.default_ns /. 1e6)
    (r.Uc.Layoutsel.chosen_ns /. 1e6)
    (100. *. ((t_auto /. t_hand) -. 1.))

(* ---------------- ablation A2: processor optimization ---------------- *)

let a2_n = 2048
let no_procopt = { Uc.Codegen.default_options with procopt = false }

let a2_procopt () =
  section "A2" "Processor optimization: digit-count histogram (section 4)";
  let src = Uc_programs.Programs.digit_count ~n:a2_n in
  let on = run_uc src in
  let off = run_uc ~options:no_procopt src in
  Printf.printf "%-44s %10s\n" "configuration" "seconds";
  Printf.printf "%-44s %10.4f\n" "naive: 10 x N virtual processors" off;
  Printf.printf "%-44s %10.4f\n" "optimized: N processors, combining send" on;
  Printf.printf "\nspeedup: %.2fx\n" (off /. on);
  emit_row "a2"
    [
      ("off", Ucd.Jsonu.Float off);
      ("on", Ucd.Jsonu.Float on);
      ("speedup", Ucd.Jsonu.Float (off /. on));
    ]

(* ---------------- ablation A3: *solve vs *par ---------------- *)

let a3_n = 16

let a3_solve () =
  section "A3" "*solve convenience vs hand-refined *par (section 3.6)";
  let t_solve =
    run_uc
      (Uc_programs.Programs.shortest_path_solve ~deterministic:false ~n:a3_n ())
  in
  let t_par =
    run_uc
      (Uc_programs.Programs.shortest_path_n3 ~deterministic:false ~n:a3_n ())
  in
  Printf.printf "%-44s %10s\n" "program" "seconds";
  Printf.printf "%-44s %10.4f\n" "*solve (fixed point detected by compiler)"
    t_solve;
  Printf.printf "%-44s %10.4f\n" "seq/par refinement (figure 5)" t_par;
  Printf.printf "\noverhead of *solve: %.2fx\n" (t_solve /. t_par);
  emit_row "a3"
    [
      ("solve", Ucd.Jsonu.Float t_solve);
      ("par", Ucd.Jsonu.Float t_par);
      ("overhead", Ucd.Jsonu.Float (t_solve /. t_par));
    ]

(* ---------------- ablation A4: common sub-expressions ---------------- *)

let a4_n = 32
let no_cse = { Uc.Codegen.default_options with cse = false }

let a4_cse () =
  section "A4" "Code optimizations: common sub-expression detection (section 4)";
  let src =
    Uc_programs.Programs.shortest_path_n2 ~deterministic:false ~n:a4_n ()
  in
  let on = run_uc src in
  let off = run_uc ~options:no_cse src in
  Printf.printf "%-44s %10s\n" "configuration" "seconds";
  Printf.printf "%-44s %10.4f\n" "without CSE" off;
  Printf.printf "%-44s %10.4f\n" "with CSE" on;
  Printf.printf "\nspeedup: %.2fx\n" (off /. on);
  emit_row "a4"
    [
      ("off", Ucd.Jsonu.Float off);
      ("on", Ucd.Jsonu.Float on);
      ("speedup", Ucd.Jsonu.Float (off /. on));
    ]

(* ---------------- ablation A5: guarded stencils on the NEWS grid ------- *)

let a5_n = 60
let no_news = { Uc.Codegen.default_options with news_opt = false }

let a5_news () =
  section "A5"
    "Communication optimization: guarded neighbour access via NEWS (section 4)";
  let src = Uc_programs.Programs.obstacle_grid ~n:a5_n in
  let on = run_uc src in
  let off = run_uc ~options:no_news src in
  Printf.printf "%-52s %10s\n" "configuration" "seconds";
  Printf.printf "%-52s %10.4f\n" "router + masked evaluation of the guards" off;
  Printf.printf "%-52s %10.4f\n"
    "prefilled NEWS shifts, guards as flat selects" on;
  Printf.printf "\nspeedup: %.2fx\n" (off /. on);
  emit_row "a5"
    [
      ("off", Ucd.Jsonu.Float off);
      ("on", Ucd.Jsonu.Float on);
      ("speedup", Ucd.Jsonu.Float (off /. on));
    ]

(* ---------------- ablation A6: static solve scheduling ([14]) ---------- *)

let a6_schedule () =
  section "A6" "solve: static diagonal schedule vs fixed-point iteration ([14])";
  let n = 24 in
  let src = Uc_programs.Programs.wavefront ~n in
  let run ~schedule =
    let prog = Uc.Parser.parse_program src in
    ignore (Uc.Sema.check prog);
    let prog = Uc.Transform.apply ~schedule_solve:schedule prog in
    let prog = Uc.Optimize.fold_program prog in
    let compiled = Uc.Codegen.compile prog in
    let m = Cm.Machine.create ~seed compiled.Uc.Codegen.prog in
    Cm.Machine.run m;
    Cm.Machine.elapsed_seconds m
  in
  let scheduled = run ~schedule:true in
  let fixpoint = run ~schedule:false in
  Printf.printf "%-52s %10s\n" "translation" "seconds";
  Printf.printf "%-52s %10.4f\n"
    "general method: guarded *par to a fixed point" fixpoint;
  Printf.printf "%-52s %10.4f\n" "dependency order: seq over diagonals" scheduled;
  Printf.printf "\nspeedup: %.2fx\n" (fixpoint /. scheduled);
  emit_row "a6"
    [
      ("fixpoint", Ucd.Jsonu.Float fixpoint);
      ("scheduled", Ucd.Jsonu.Float scheduled);
      ("speedup", Ucd.Jsonu.Float (fixpoint /. scheduled));
    ]

(* ---------------- R1: recovery-machinery overhead ---------------- *)

(* What does robustness cost when nothing goes wrong?  The same program
   is executed (a) in one straight [run], (b) sliced into small fuel
   slices (deadline-enforcement granularity), and (c) sliced with a full
   checkpoint serialized after every slice (the resume-on-retry mode).
   The spread between the rows is the price of in-flight enforcement. *)
let r1_recovery () =
  section "R1" "Recovery machinery: wall-clock overhead on a fault-free run";
  let src = Uc_programs.Programs.obstacle_grid ~n:40 in
  let compiled = Uc.Compile.compile_source src in
  (* pick the slice so the run spans ~16 slices: enough checkpoints to
     measure, whatever the program's instruction count is *)
  let slice =
    let t = Uc.Compile.run_compiled ~seed compiled in
    max 1 (Cm.Machine.icount t.Uc.Compile.machine / 16)
  in
  let time f =
    (* best of 3: slicing overhead is small, so noise dominates a mean *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let straight =
    time (fun () ->
        ignore (Uc.Compile.run_compiled ~seed compiled))
  in
  let sliced =
    time (fun () ->
        let t = Uc.Compile.start_compiled ~seed compiled in
        let rec go () =
          match Uc.Compile.step t ~fuel_slice:slice with
          | `Done -> ()
          | `More -> go ()
        in
        go ())
  in
  let ckpt_bytes = ref 0 in
  let checkpointed =
    time (fun () ->
        let t = Uc.Compile.start_compiled ~seed compiled in
        let rec go () =
          match Uc.Compile.step t ~fuel_slice:slice with
          | `Done -> ()
          | `More ->
              let data = Uc.Compile.checkpoint t in
              ckpt_bytes := String.length data;
              go ()
        in
        go ())
  in
  let restore_time =
    let t = Uc.Compile.start_compiled ~seed compiled in
    ignore (Uc.Compile.step t ~fuel_slice:slice);
    let data = Uc.Compile.checkpoint t in
    time (fun () ->
        ignore (Uc.Compile.restore_compiled compiled data))
  in
  Printf.printf "%-52s %12s\n" "configuration" "seconds";
  Printf.printf "%-52s %12.4f\n" "straight run (no slicing)" straight;
  Printf.printf "%-52s %12.4f\n"
    (Printf.sprintf "sliced, %d instructions per slice" slice)
    sliced;
  Printf.printf "%-52s %12.4f\n" "sliced + checkpoint after every slice"
    checkpointed;
  Printf.printf "%-52s %12.6f\n" "single restore from checkpoint" restore_time;
  Printf.printf "\nslicing overhead: %.1f%%; checkpointing overhead: %.1f%%; \
                 checkpoint size: %d bytes\n"
    (100. *. ((sliced /. straight) -. 1.))
    (100. *. ((checkpointed /. straight) -. 1.))
    !ckpt_bytes;
  emit_row "r1"
    [
      ("straight", Ucd.Jsonu.Float straight);
      ("sliced", Ucd.Jsonu.Float sliced);
      ("checkpointed", Ucd.Jsonu.Float checkpointed);
      ("restore", Ucd.Jsonu.Float restore_time);
      ("ckpt_bytes", Ucd.Jsonu.Int !ckpt_bytes);
    ]

(* ---------------- O2: telemetry overhead ---------------- *)

(* What does full tracing cost?  The fig8 obstacle program is run once
   with a null scope and once with a live scope feeding a JSON-lines
   sink (the --trace configuration); the wall-clock spread is the price
   of telemetry.  The simulated results are identical by construction
   (test_obs enforces it); this section measures the only thing that is
   allowed to change. *)
let o1_obs_overhead () =
  section "O2" "Telemetry: wall-clock cost of full tracing (fig8 program)";
  let n = 80 in
  let src = Uc_programs.Programs.obstacle_grid ~n in
  let time f =
    (* best of 5 (cf. R1): the overhead is small, so noise dominates *)
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  (* the whole `ucc run --trace` configuration, compile included, so the
     compile/iropt spans and the machine's hot paths are all in play *)
  let off = time (fun () -> ignore (Uc.Compile.run_source ~seed src)) in
  let events = ref 0 and trace_bytes = ref 0 in
  let on =
    time (fun () ->
        let buf = Buffer.create 65536 in
        let obs = Obs.create ~clock:Unix.gettimeofday () in
        Obs.add_sink obs
          (Obs.jsonl_sink (fun line ->
               Buffer.add_string buf line;
               Buffer.add_char buf '\n'));
        let t = Uc.Compile.run_source ~seed ~obs src in
        Cm.Machine.publish t.Uc.Compile.machine;
        events := List.length (Obs.events obs);
        trace_bytes := Buffer.length buf)
  in
  let overhead = on /. off in
  Printf.printf "%-52s %10s\n" "configuration" "seconds";
  Printf.printf "%-52s %10.4f\n" "telemetry off (Obs.null)" off;
  Printf.printf "%-52s %10.4f\n" "full tracing (counters + spans + JSONL sink)"
    on;
  Printf.printf "\ntracing overhead: %.1f%% (%d events, %d trace bytes)\n"
    (100. *. (overhead -. 1.))
    !events !trace_bytes;
  emit_row "obs"
    [
      ("off", Ucd.Jsonu.Float off);
      ("on", Ucd.Jsonu.Float on);
      ("overhead", Ucd.Jsonu.Float overhead);
      ("events", Ucd.Jsonu.Int !events);
    ]

(* ---------------- bechamel: simulator wall-clock ---------------- *)

let bechamel_bench () =
  section "B0" "Bechamel: wall-clock cost of the simulator itself (per run)";
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"fig6:uc-n2 N=16"
        (Staged.stage (fun () ->
             ignore
               (run_uc_direct
                  (Uc_programs.Programs.shortest_path_n2 ~deterministic:false
                     ~n:16 ()))));
      Test.make ~name:"fig6:cstar-n2 N=16"
        (Staged.stage (fun () ->
             ignore
               (run_cstar (Cstar.Programs.path_n2 ~deterministic:false ~n:16 ()))));
      Test.make ~name:"fig7:uc-n3 N=10"
        (Staged.stage (fun () ->
             ignore
               (run_uc_direct
                  (Uc_programs.Programs.shortest_path_n3 ~deterministic:false
                     ~n:10 ()))));
      Test.make ~name:"fig7:cstar-n3 N=10"
        (Staged.stage (fun () ->
             ignore
               (run_cstar (Cstar.Programs.path_n3 ~deterministic:false ~n:10 ()))));
      Test.make ~name:"fig8:uc-obstacle N=20"
        (Staged.stage (fun () ->
             ignore (run_uc_direct (Uc_programs.Programs.obstacle_grid ~n:20))));
      (* same program through the reference interpreter: the gap between
         this row and the previous one is the pre-decoded engine's win *)
      Test.make ~name:"fig8:uc-obstacle-refengine N=20"
        (Staged.stage (fun () ->
             ignore
               (run_uc_direct ~engine:`Reference
                  (Uc_programs.Programs.obstacle_grid ~n:20))));
      Test.make ~name:"fig8:seqc N=20"
        (Staged.stage (fun () -> ignore (Seqc.Obstacle.run ~n:20 ())));
      Test.make ~name:"a1:stencil-mapped"
        (Staged.stage (fun () ->
             ignore
               (run_uc_direct
                  (Uc_programs.Programs.stencil ~mapped:true ~n:1024 ~steps:8 ()))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"sim" ~fmt:"%s %s" tests)
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (t :: _) ->
          Printf.printf "%-32s %12.3f ms/run\n" name (t /. 1e6);
          emit_row "bechamel"
            [
              ("test", Ucd.Jsonu.Str name);
              ("ms_per_run", Ucd.Jsonu.Float (t /. 1e6));
            ]
      | _ -> Printf.printf "%-32s %12s\n" name "n/a")
    (List.sort compare rows)

(* ---------------- S2: sharded-engine scaling ---------------- *)

(* The multicore engine measured as wall-clock: the three figure
   programs at their largest sweep size, executed once per engine
   configuration on a pre-compiled program (compile time excluded — the
   engine only changes execution).  Rows are wall-clock, so they carry
   section "scaling" and compare.ml reports them like bechamel/serve
   rows instead of requiring identity; the simulated results themselves
   are engine-identical (ci-sharded enforces that bit for bit). *)
let scaling_shards = [ 1; 2; 4; 8 ]

let s2_scaling () =
  section "S2"
    "Scaling: sharded engine wall-clock at 1/2/4/8 shards (per run)";
  let ncores = Domain.recommended_domain_count () in
  (* the row compare.ml ignores (no ms_per_run) but readers need: the
     shard sweep only shows parallel speedup when the host has cores to
     run the worker team on.  On a 1-core host every borrow is denied
     and the chunks run inline — the sweep then measures the engine's
     overhead and its pre-decoded stream, not parallelism. *)
  emit_row "scaling" [ ("host_cores", Ucd.Jsonu.Int ncores) ];
  Printf.printf "host cores: %d%s\n\n" ncores
    (if ncores < 2 then
       "  (single core: worker borrows are denied, chunks run inline;\n\
       \   expect engine overhead, not parallel speedup)"
     else "");
  let time f =
    (* best of 3: scheduling noise dominates a mean at these run times *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let progs =
    [
      ( "fig6:uc-n2 N=64",
        Uc_programs.Programs.shortest_path_n2 ~deterministic:false ~n:64 () );
      ( "fig7:uc-n3 N=25",
        Uc_programs.Programs.shortest_path_n3 ~deterministic:false ~n:25 () );
      ("fig8:uc-obstacle N=120", Uc_programs.Programs.obstacle_grid ~n:120);
    ]
  in
  Printf.printf "%-26s %-12s %12s %9s\n" "program" "engine" "ms/run"
    "vs fast";
  List.iter
    (fun (name, src) ->
      let compiled = Uc.Compile.compile_source src in
      let run engine =
        time (fun () ->
            ignore (Uc.Compile.run_compiled ~seed ~engine compiled))
      in
      let fast = run `Fast in
      let line engine t =
        let label = Ucd.Job.engine_string engine in
        Printf.printf "%-26s %-12s %12.3f %8.2fx\n" name label (1000. *. t)
          (fast /. t);
        emit_row "scaling"
          [
            ("test", Ucd.Jsonu.Str (name ^ " " ^ label));
            ("ms_per_run", Ucd.Jsonu.Float (1000. *. t));
            ("speedup_vs_fast", Ucd.Jsonu.Float (fast /. t));
          ]
      in
      (* the reference→fast→sharded ladder, then the shard-count sweep *)
      line `Reference (run `Reference);
      line `Fast fast;
      List.iter (fun s -> line (`Sharded s) (run (`Sharded s))) scaling_shards;
      print_newline ())
    progs

(* ---------------- N1: native-engine wall-clock ---------------- *)

(* The native backend measured as wall-clock: the three figure programs
   at their largest sweep size on the reference → fast → native ladder,
   per-run times with a warm in-process code cache (a Dynlink'd module
   cannot be unloaded, so steady state is what any long-lived process
   sees), plus each program's one-time codegen/build cost and the
   code-cache hit rate of a second sweep over it.  Rows are wall-clock,
   so they carry section "native" and compare.ml reports them like
   bechamel/scaling rows; the simulated results are engine-identical
   (make ci-native enforces that bit for bit, cold and warm). *)
let n1_native () =
  section "N1"
    "Native codegen: wall-clock on the reference/fast/native ladder (per run)";
  match Cm.Codegen.available () with
  | Error why ->
      (* a toolchain-less host degrades, it doesn't fail: record the
         fact and keep the snapshot comparable *)
      Printf.printf "native compilation unavailable here (%s); ladder skipped\n"
        why;
      emit_row "native" [ ("available", Ucd.Jsonu.Bool false) ]
  | Ok () ->
      emit_row "native" [ ("available", Ucd.Jsonu.Bool true) ];
      let time f =
        (* best of 3, like the shard sweep: scheduling noise dominates a
           mean at these run times *)
        let best = ref infinity in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          f ();
          best := Float.min !best (Unix.gettimeofday () -. t0)
        done;
        !best
      in
      let progs =
        [
          ( "fig6:uc-n2 N=64",
            Uc_programs.Programs.shortest_path_n2 ~deterministic:false ~n:64 ()
          );
          ( "fig7:uc-n3 N=25",
            Uc_programs.Programs.shortest_path_n3 ~deterministic:false ~n:25 ()
          );
          ("fig8:uc-obstacle N=120", Uc_programs.Programs.obstacle_grid ~n:120);
        ]
      in
      Printf.printf "%-26s %-12s %12s %9s\n" "program" "engine" "ms/run"
        "vs fast";
      List.iter
        (fun (name, src) ->
          let compiled = Uc.Compile.compile_source src in
          (* pay the one-shot codegen+build outside the timed region and
             price it from the process-wide counter deltas *)
          let s0 = Cm.Codegen.stats () in
          let pre = Uc.Compile.start_compiled ~seed ~engine:`Native compiled in
          (match Cm.Machine.compile_native pre.Uc.Compile.machine with
          | Ok () -> ()
          | Error why -> Printf.printf "  (%s: fell back: %s)\n" name why);
          let s1 = Cm.Codegen.stats () in
          let run engine =
            time (fun () ->
                ignore (Uc.Compile.run_compiled ~seed ~engine compiled))
          in
          let fast = run `Fast in
          let line engine t =
            let label = Ucd.Job.engine_string engine in
            Printf.printf "%-26s %-12s %12.3f %8.2fx\n" name label
              (1000. *. t) (fast /. t);
            emit_row "native"
              [
                ("test", Ucd.Jsonu.Str (name ^ " " ^ label));
                ("ms_per_run", Ucd.Jsonu.Float (1000. *. t));
                ("speedup_vs_fast", Ucd.Jsonu.Float (fast /. t));
              ]
          in
          line `Reference (run `Reference);
          line `Fast fast;
          line `Native (run `Native);
          (* a second sweep over the same program must be all cache
             hits: every machine after the first resolves its entry
             from the per-process memo (or the disk store, in a
             cache-dir'd batch) without emitting a line of source *)
          let s2 = Cm.Codegen.stats () in
          let h2 =
            (s2.Cm.Codegen.mem_hits - s1.Cm.Codegen.mem_hits)
            + (s2.Cm.Codegen.disk_hits - s1.Cm.Codegen.disk_hits)
          in
          let b2 = s2.Cm.Codegen.builds - s1.Cm.Codegen.builds in
          let hit_rate =
            if h2 + b2 = 0 then 1.0 else float_of_int h2 /. float_of_int (h2 + b2)
          in
          let codegen_ms = s1.Cm.Codegen.codegen_ms -. s0.Cm.Codegen.codegen_ms
          and build_ms = s1.Cm.Codegen.build_ms -. s0.Cm.Codegen.build_ms in
          Printf.printf
            "%-26s %-12s codegen %.1f ms, build %.1f ms, warm sweep %.0f%% \
             cache hit\n"
            name "native" codegen_ms build_ms (100. *. hit_rate);
          emit_row "native"
            [
              ("test", Ucd.Jsonu.Str (name ^ " codegen"));
              ("codegen_ms", Ucd.Jsonu.Float codegen_ms);
              ("build_ms", Ucd.Jsonu.Float build_ms);
              ("warm_hit_rate", Ucd.Jsonu.Float hit_rate);
            ];
          print_newline ())
        progs

(* ---------------- parallel prefetch ---------------- *)

(* ---------------- S1: the serve daemon under load ---------------- *)

(* The daemon measured from the outside: an in-process server on a temp
   socket, N concurrent closed-loop clients submitting corpus jobs with
   distinct seeds (every job a cache miss), p50/p99 submit→report
   latency and sustained jobs/sec; then a deliberately small queue
   pipelined far past capacity to measure overload shedding.  All
   figures are wall-clock, so the rows carry section "serve" — compare
   reports them like bechamel rows instead of requiring identity. *)
let s1_serve () =
  section "S1" "Serve daemon: sustained load, latency, overload shedding";
  let tmpsock tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucd_bench_%s_%d.sock" tag (Unix.getpid ()))
  in
  (* phase 1: sustained closed-loop load *)
  let clients = 4 and per_client = 25 and domains = 4 in
  let socket = tmpsock "load" in
  let srv =
    Ucd.Server.start
      {
        Ucd.Server.default_config with
        Ucd.Server.socket_path = Some socket;
        domains;
        queue_bound = 128;
      }
  in
  let latencies = Array.make (clients * per_client) nan in
  let failures = Atomic.make 0 in
  let worker ci () =
    match
      Ucd.Client.connect
        ~tenant:(Printf.sprintf "bench%d" ci)
        (Ucd.Client.Unix_path socket)
    with
    | Error _ -> Atomic.incr failures
    | Ok c ->
        Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
        for k = 0 to per_client - 1 do
          let t0 = Unix.gettimeofday () in
          let sub =
            {
              (Ucd.Proto.submit_defaults ~name:"matmul"
                 ~source:(Ucd.Proto.Corpus "matmul"))
              with
              Ucd.Proto.seed = Some ((1_000 * ci) + k);
            }
          in
          match Ucd.Client.send c (Ucd.Proto.Submit sub) with
          | Error _ -> Atomic.incr failures
          | Ok () ->
              let rec await () =
                match Ucd.Client.recv c with
                | Ok (Ucd.Proto.Report _) ->
                    latencies.((ci * per_client) + k) <-
                      Unix.gettimeofday () -. t0
                | Ok (Ucd.Proto.Rejected _) | Error _ ->
                    Atomic.incr failures
                | Ok _ -> await ()
              in
              await ()
        done
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun ci -> Thread.create (worker ci) ()) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  ignore (Ucd.Server.stop srv);
  let sorted =
    Array.to_list latencies
    |> List.filter (fun l -> not (Float.is_nan l))
    |> List.sort compare
  in
  let completed = List.length sorted in
  let pct p =
    if sorted = [] then nan
    else List.nth sorted (min (completed - 1) (int_of_float (p *. float_of_int completed)))
  in
  let p50 = 1000. *. pct 0.50 and p99 = 1000. *. pct 0.99 in
  let jobs_per_sec = float_of_int completed /. elapsed in
  Printf.printf "%d clients x %d jobs (distinct seeds: every job a cache \
                 miss), %d domains:\n"
    clients per_client domains;
  Printf.printf "  completed %d/%d (%d failure(s)), %.1f jobs/s sustained\n"
    completed (clients * per_client) (Atomic.get failures) jobs_per_sec;
  Printf.printf "  submit->report latency: p50 %.2f ms, p99 %.2f ms\n" p50 p99;
  (* phase 2: overload shedding on a tiny queue *)
  let slow_source =
    "int i, acc;\nvoid main() { for (i = 0; i < 100000000; i = i + 1) acc = \
     acc + 1; }\n"
  in
  let socket2 = tmpsock "over" in
  let srv2 =
    Ucd.Server.start
      {
        Ucd.Server.default_config with
        Ucd.Server.socket_path = Some socket2;
        domains = 2;
        queue_bound = 4;
        drain_timeout = 60.;
      }
  in
  let offered = 24 in
  let accepted = ref 0 and rejected = ref 0 in
  (match Ucd.Client.connect (Ucd.Client.Unix_path socket2) with
  | Error e -> Printf.printf "  overload phase failed to connect: %s\n" e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
      for k = 1 to offered do
        ignore
          (Ucd.Client.send c
             (Ucd.Proto.Submit
                {
                  (Ucd.Proto.submit_defaults
                     ~name:(Printf.sprintf "slow%d" k)
                     ~source:(Ucd.Proto.Inline slow_source))
                  with
                  Ucd.Proto.deadline = Some 0.25;
                  (* distinct digests: identical content would dedup
                     onto the first job in flight instead of queueing *)
                  Ucd.Proto.seed = Some k;
                }))
      done;
      let replies = ref 0 in
      while !replies < offered do
        match Ucd.Client.recv c with
        | Ok (Ucd.Proto.Accepted _) ->
            incr replies;
            incr accepted
        | Ok (Ucd.Proto.Rejected { code = Ucd.Proto.Overloaded; _ }) ->
            incr replies;
            incr rejected
        | Ok (Ucd.Proto.Rejected _) -> incr replies
        | Ok _ -> ()
        | Error _ -> replies := offered
      done);
  ignore (Ucd.Server.stop srv2);
  let rate = 100. *. float_of_int !rejected /. float_of_int offered in
  Printf.printf "  overload (queue 4, %d pipelined slow jobs): %d accepted, \
                 %d rejected (%.0f%% shed), none blocked\n"
    offered !accepted !rejected rate;
  emit_row "serve"
    [
      ("test", Ucd.Jsonu.Str "serve: submit->report p50 ms");
      ("ms_per_run", Ucd.Jsonu.Float p50);
    ];
  emit_row "serve"
    [
      ("test", Ucd.Jsonu.Str "serve: submit->report p99 ms");
      ("ms_per_run", Ucd.Jsonu.Float p99);
    ];
  emit_row "serve"
    [
      ("test", Ucd.Jsonu.Str "serve: sustained ms/job (4 clients)");
      ("ms_per_run", Ucd.Jsonu.Float (1000. /. jobs_per_sec));
    ];
  emit_row "serve"
    [
      ("test", Ucd.Jsonu.Str "serve: overload rejection rate % (queue 4)");
      ("ms_per_run", Ucd.Jsonu.Float rate);
    ]

(* ---------------- S3: durability machinery ---------------- *)

(* What does the write-ahead journal cost on the chaos-free path, and
   how fast is recovery?  Phase 1 runs the same closed-loop load three
   times — journal off, journal on (the default), journal on with
   per-record fsync — against a daemon with a temp cache dir; every job
   is a distinct-seed cache miss, so the spread is pure journal
   overhead.  Phase 2 replays a large synthetic journal and times
   Journal.recover (replay + compaction), the startup cost a crashed
   daemon pays before accepting work again. *)
let s3_durable () =
  section "S3" "Durable serve: journal overhead (chaos-free) and recovery speed";
  let tmpd tag =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ucd_bench_dur_%s_%d" tag (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let names = List.map fst Uc_programs.Programs.all_named in
  let jobs = List.length names in
  (* context: what one corpus job costs through the daemon (journal on,
     the default), so the per-record figures below have a denominator *)
  let corpus_ms_per_job =
    let socket =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ucd_bench_dur_load_%d.sock" (Unix.getpid ()))
    in
    let srv =
      Ucd.Server.start ~cache_dir:(tmpd "load")
        {
          Ucd.Server.default_config with
          Ucd.Server.socket_path = Some socket;
          domains = 2;
          queue_bound = 128;
        }
    in
    let t0 = Unix.gettimeofday () in
    (match Ucd.Client.connect (Ucd.Client.Unix_path socket) with
    | Error e -> Printf.printf "  load phase failed to connect: %s\n" e
    | Ok c ->
        Fun.protect ~finally:(fun () -> Ucd.Client.close c) @@ fun () ->
        List.iter
          (fun name ->
            ignore
              (Ucd.Client.send c
                 (Ucd.Proto.Submit
                    (Ucd.Proto.submit_defaults ~name
                       ~source:(Ucd.Proto.Corpus name)))))
          names;
        let reports = ref 0 in
        while !reports < jobs do
          match Ucd.Client.recv c with
          | Ok (Ucd.Proto.Report _) -> incr reports
          | Ok (Ucd.Proto.Rejected _) | Error _ -> reports := jobs
          | Ok _ -> ()
        done);
    let elapsed = Unix.gettimeofday () -. t0 in
    ignore (Ucd.Server.stop srv);
    1000. *. elapsed /. float_of_int jobs
  in
  (* the journal's own cost, measured directly: append the exact
     accepted/started/done record pattern a job writes.  End-to-end
     daemon A/B runs drown a ~10 µs/job effect in scheduler noise;
     timing the appends is stable and is the number that matters *)
  let appends_per_job = 3 in
  let append_us ~fsync tag =
    let dir = tmpd ("app_" ^ tag) in
    (try Sys.remove (Ucd.Journal.path ~dir) with Sys_error _ -> ());
    match Ucd.Journal.recover ~fsync ~dir () with
    | Error e ->
        Printf.printf "  append phase failed: %s\n" e;
        nan
    | Ok (j, _) ->
        let submit =
          Ucd.Proto.submit_obj
            (Ucd.Proto.submit_defaults ~name:"matmul"
               ~source:(Ucd.Proto.Corpus "matmul"))
        in
        let rounds = if fsync then 200 else 2_000 in
        let t0 = Unix.gettimeofday () in
        for k = 0 to rounds - 1 do
          let digest = Printf.sprintf "%032d" k in
          Ucd.Journal.append j
            (Ucd.Journal.Accepted
               { digest; name = "matmul"; tenant = "bench"; submit });
          Ucd.Journal.append j (Ucd.Journal.Started { digest });
          Ucd.Journal.append j
            (Ucd.Journal.Done_ { digest; status = "ok" })
        done;
        let elapsed = Unix.gettimeofday () -. t0 in
        Ucd.Journal.close j;
        1e6 *. elapsed /. float_of_int (rounds * appends_per_job)
  in
  let app = append_us ~fsync:false "plain" in
  let app_fsync = append_us ~fsync:true "fsync" in
  let job_us = app *. float_of_int appends_per_job in
  let job_us_fsync = app_fsync *. float_of_int appends_per_job in
  Printf.printf "%-52s %12s\n" "quantity" "value";
  Printf.printf "%-52s %9.2f ms\n" "corpus job through the daemon (journal on)"
    corpus_ms_per_job;
  Printf.printf "%-52s %9.2f us\n" "journal append (write-ahead, no fsync)" app;
  Printf.printf "%-52s %9.2f us\n" "journal append + fsync every record"
    app_fsync;
  Printf.printf "\njournal overhead on the chaos-free path (%d records/job): \
                 %.2f%%; with fsync: %.1f%%\n"
    appends_per_job
    (100. *. job_us /. (1000. *. corpus_ms_per_job))
    (100. *. job_us_fsync /. (1000. *. corpus_ms_per_job));
  (* phase 2: replay speed on a large crashed-daemon journal *)
  let dir = tmpd "replay" in
  let records = 6_000 in
  (match Ucd.Journal.recover ~dir () with
  | Error e -> Printf.printf "  replay phase failed: %s\n" e
  | Ok (j, _) ->
      let submit =
        Ucd.Proto.submit_obj
          (Ucd.Proto.submit_defaults ~name:"matmul"
             ~source:(Ucd.Proto.Corpus "matmul"))
      in
      for k = 0 to (records / 3) - 1 do
        let digest = Printf.sprintf "%032d" k in
        Ucd.Journal.append j
          (Ucd.Journal.Accepted
             { digest; name = "matmul"; tenant = "bench"; submit });
        Ucd.Journal.append j (Ucd.Journal.Started { digest });
        (* half the jobs finished before the crash, half are pending *)
        if k mod 2 = 0 then
          Ucd.Journal.append j
            (Ucd.Journal.Done_ { digest; status = "ok" })
        else
          Ucd.Journal.append j
            (Ucd.Journal.Checkpointed
               { digest; ckpt = String.make 512 '\xab' })
      done;
      Ucd.Journal.close j;
      let t0 = Unix.gettimeofday () in
      (match Ucd.Journal.recover ~dir () with
      | Error e -> Printf.printf "  recover failed: %s\n" e
      | Ok (j2, rp) ->
          let recover_s = Unix.gettimeofday () -. t0 in
          Ucd.Journal.close j2;
          Printf.printf
            "recovery: %d records replayed in %.3f s (%.0f records/s), %d \
             job(s) requeued\n"
            rp.Ucd.Journal.replayed recover_s
            (float_of_int rp.Ucd.Journal.replayed /. recover_s)
            (List.length rp.Ucd.Journal.pending);
          emit_row "durable"
            [
              ("test", Ucd.Jsonu.Str "durable: recovery ms (6k records)");
              ("ms_per_run", Ucd.Jsonu.Float (1000. *. recover_s));
            ]));
  emit_row "durable"
    [
      ("test", Ucd.Jsonu.Str "durable: ms/job through daemon (journal on)");
      ("ms_per_run", Ucd.Jsonu.Float corpus_ms_per_job);
    ];
  emit_row "durable"
    [
      ("test", Ucd.Jsonu.Str "durable: journal append us/record");
      ("ms_per_run", Ucd.Jsonu.Float (app /. 1000.));
    ];
  emit_row "durable"
    [
      ("test", Ucd.Jsonu.Str "durable: journal append us/record + fsync");
      ("ms_per_run", Ucd.Jsonu.Float (app_fsync /. 1000.));
    ]

(* Every UC execution the cached sections will request, as Ucd jobs with
   the exact same (options, source, seed), so the pool populates the
   cache the tables are then printed from. *)
let uc_jobs_of_section name =
  let open Uc_programs.Programs in
  let j ?options src = job_of ?options src in
  match name with
  | "fig6" ->
      List.map (fun n -> j (shortest_path_n2 ~deterministic:false ~n ())) fig6_ns
  | "fig7" ->
      List.map (fun n -> j (shortest_path_n3 ~deterministic:false ~n ())) fig7_ns
  | "fig8" -> List.map (fun n -> j (obstacle_grid ~n)) fig8_ns
  | "a2" ->
      let src = digit_count ~n:a2_n in
      [ j src; j ~options:no_procopt src ]
  | "a3" ->
      [
        j (shortest_path_solve ~deterministic:false ~n:a3_n ());
        j (shortest_path_n3 ~deterministic:false ~n:a3_n ());
      ]
  | "a4" ->
      let src = shortest_path_n2 ~deterministic:false ~n:a4_n () in
      [ j src; j ~options:no_cse src ]
  | "a5" ->
      let src = obstacle_grid ~n:a5_n in
      [ j src; j ~options:no_news src ]
  | _ -> []

let prefetch ~domains names =
  let jobs = List.concat_map uc_jobs_of_section names in
  if jobs <> [] then begin
    let t0 = Unix.gettimeofday () in
    let results = Ucd.Runner.run_jobs ~domains ~cache jobs in
    let s =
      Ucd.Report.summarize ~elapsed:(Unix.gettimeofday () -. t0) results
    in
    Format.printf "prefetch (%d domains): %a@." domains Ucd.Report.pp_summary s
  end

(* ---------------- driver ---------------- *)

let sections =
  [
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("table-conciseness", table_conciseness);
    ("a1", a1_mapping);
    ("t2", t2_autotune);
    ("a2", a2_procopt);
    ("a3", a3_solve);
    ("a4", a4_cse);
    ("a5", a5_news);
    ("a6", a6_schedule);
    ("recovery", r1_recovery);
    ("obs", o1_obs_overhead);
    ("serve", s1_serve);
    ("durable", s3_durable);
    ("scaling", s2_scaling);
    ("native", n1_native);
    ("bechamel", bechamel_bench);
  ]

let () =
  let argv = Array.to_list Sys.argv in
  let rec parse (jobs, json_file, names) = function
    | [] -> (jobs, json_file, List.rev names)
    | ("-j" | "--jobs") :: v :: rest -> (
        match int_of_string_opt v with
        | Some n -> parse (n, json_file, names) rest
        | None ->
            Printf.eprintf "bad -j value %s\n" v;
            exit 2)
    | "--json" :: path :: rest -> parse (jobs, Some path, names) rest
    | name :: rest -> parse (jobs, json_file, name :: names) rest
  in
  let jobs, json_file, requested = parse (1, None, []) (List.tl argv) in
  let requested =
    if requested = [] then List.map fst sections else requested
  in
  print_endline "UC on the (simulated) Connection Machine: evaluation harness";
  print_endline "(cf. Bagrodia, Chandy, Kwan, Supercomputing '90, section 5)";
  if jobs > 1 then prefetch ~domains:jobs requested;
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %s (available: %s)\n" name
            (String.concat ", " (List.map fst sections)))
    requested;
  let rows = collected_rows () in
  if rows <> [] then begin
    print_newline ();
    print_endline "=== JSON summary (per-figure rows) ===";
    List.iter (fun r -> print_endline (Ucd.Jsonu.to_string r)) rows
  end;
  match json_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun r -> output_string oc (Ucd.Jsonu.to_string r ^ "\n"))
            rows);
      Printf.printf "wrote %d JSON rows to %s\n" (List.length rows) path
