(* Compare two `bench --json` snapshots.

   Usage: compare [--allow-faster] OLD.json NEW.json

   The snapshot is a file of JSON lines in two flavours:

   - simulated-time rows (fig6/fig7/fig8/appendix sections): these are
     produced by the cost model and must be deterministic — by default
     the tool asserts they are byte-for-byte identical between the two
     files and exits nonzero otherwise.  This is how BENCH_PR*.json
     files prove that a performance change did not perturb simulated
     results.

     With --allow-faster the contract loosens to what an optimizer PR
     can promise: per row, string fields and parameters (n, sweeps,
     line counts) must still match exactly, but measured quantities
     (seconds, operation counts) may DECREASE; any increase fails.
     Derived ratios (speedup, overhead) are reported, not judged — a
     ratio of two changed times moves in either direction legitimately.
     Rows present only in the NEW file (a section added since the old
     snapshot was recorded) are listed but do not fail; a row that
     disappeared still does.  Likewise columns present only in the NEW
     row (metrics counters added to a figure) are listed as "+name=v"
     without being judged, while a column that disappeared fails.  The
     tool prints a per-row simulated-speedup table either way.

   - bechamel rows (wall-clock ms per run): these move with the host
     and the implementation; the tool prints an old/new/speedup table.
     Rows present in only one file (e.g. a benchmark added alongside an
     optimization) are listed but do not fail the comparison. *)

let usage () =
  prerr_endline "usage: compare [--allow-faster] OLD.json NEW.json";
  exit 2

let read_lines path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "compare: %s\n" msg;
      exit 2
  in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let is_bechamel line =
  (* section is always the first key the bench writer emits;
     wall-clock sections (bechamel, and the serve load generator) move
     with the host, so they are reported rather than required to be
     identical *)
  let has_prefix prefix =
    String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  in
  has_prefix {|{"section":"bechamel"|}
  || has_prefix {|{"section":"serve"|}
  || has_prefix {|{"section":"scaling"|}
  || has_prefix {|{"section":"native"|}
  || has_prefix {|{"section":"durable"|}
  (* r1 (recovery overhead) and obs (tracing cost) time the host too:
     their seconds move with the machine, not the cost model *)
  || has_prefix {|{"section":"r1"|}
  || has_prefix {|{"section":"obs"|}

(* minimal extraction: the bench writer emits flat objects with string
   keys, no escapes inside the values we care about *)
let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let field_string line key =
  match find_sub line (Printf.sprintf {|"%s":"|} key) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let field_float line key =
  match find_sub line (Printf.sprintf {|"%s":|} key) with
  | None -> None
  | Some start ->
      let stop = ref start in
      let n = String.length line in
      while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

(* ---- flat-row parsing for --allow-faster ---- *)

type jval = Str of string | Num of float

(* the bench writer emits flat one-line objects: string values contain
   no escapes, numeric values no exponents' commas; good enough here *)
let parse_row line =
  let n = String.length line in
  let fields = ref [] in
  let i = ref 0 in
  (try
     while !i < n do
       match String.index_from line !i '"' with
       | exception Not_found -> raise Exit
       | kstart ->
           let kend = String.index_from line (kstart + 1) '"' in
           let key = String.sub line (kstart + 1) (kend - kstart - 1) in
           if kend + 1 >= n || line.[kend + 1] <> ':' then raise Exit;
           let vstart = kend + 2 in
           if vstart < n && line.[vstart] = '"' then begin
             let vend = String.index_from line (vstart + 1) '"' in
             fields :=
               (key, Str (String.sub line (vstart + 1) (vend - vstart - 1)))
               :: !fields;
             i := vend + 1
           end
           else begin
             let stop = ref vstart in
             while
               !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}'
             do
               incr stop
             done;
             (match
                float_of_string_opt (String.sub line vstart (!stop - vstart))
              with
             | Some f -> fields := (key, Num f) :: !fields
             | None -> raise Exit);
             i := !stop
           end
     done
   with Exit | Not_found -> ());
  List.rev !fields

(* Derived ratios: reported, never judged. *)
let is_ratio = function "speedup" | "overhead" -> true | _ -> false

(* Parameters of the measurement, not results: must match exactly. *)
let is_param = function
  | "n" | "sweeps" | "uc_lines" | "cstar_lines" -> true
  | _ -> false

let row_label fields =
  String.concat " "
    (List.filter_map
       (fun (k, v) ->
         match v with
         | Str s -> Some (Printf.sprintf "%s=%s" k s)
         | Num f when is_param k -> Some (Printf.sprintf "%s=%g" k f)
         | Num _ -> None)
       fields)

(* one old/new row pair under --allow-faster: returns the per-field
   speedup cells, or reports and counts a failure *)
let compare_faster diffs i old_line new_line =
  let o = parse_row old_line and nw = parse_row new_line in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        incr diffs;
        Printf.printf "simulated row %d (%s): %s\n" i (row_label o) msg)
      fmt
  in
  (* a newer bench may add columns to a row (e.g. the telemetry metrics
     counters); those are listed, not judged — there is no old value to
     hold them to.  A column that disappeared still fails. *)
  let missing = List.filter (fun (k, _) -> not (List.mem_assoc k nw)) o in
  if missing <> [] then
    fail "field(s) %s disappeared:\n  - %s\n  + %s"
      (String.concat ", " (List.map fst missing))
      old_line new_line
  else begin
    let cells = ref [] in
    List.iter
      (fun (k, vo) ->
        let vn = List.assoc k nw in
        match (vo, vn) with
        | Str a, Str b -> if a <> b then fail "%s changed %S -> %S" k a b
        | Num a, Num b when is_param k ->
            if a <> b then fail "parameter %s changed %g -> %g" k a b
        | Num _, Num _ when is_ratio k -> ()
        | Num a, Num b ->
            if b > a then fail "%s rose %g -> %g" k a b
            else if a > 0.0 && b > 0.0 && a <> b then
              cells := Printf.sprintf "%s %.2fx" k (a /. b) :: !cells
        | _ -> fail "field %s changed type" k)
      o;
    List.iter
      (fun (k, vn) ->
        if not (List.mem_assoc k o) then
          cells :=
            (match vn with
            | Num f -> Printf.sprintf "+%s=%g" k f
            | Str s -> Printf.sprintf "+%s=%s" k s)
            :: !cells)
      nw;
    if !cells <> [] then
      Printf.printf "  %-34s %s\n" (row_label o)
        (String.concat "  " (List.rev !cells))
  end

let () =
  let allow_faster, old_path, new_path =
    match Sys.argv with
    | [| _; a; b |] -> (false, a, b)
    | [| _; "--allow-faster"; a; b |] -> (true, a, b)
    | _ -> usage ()
  in
  let old_lines = read_lines old_path and new_lines = read_lines new_path in
  let split lines = List.partition (fun l -> not (is_bechamel l)) lines in
  let old_sim, old_bch = split old_lines in
  let new_sim, new_bch = split new_lines in

  (* ---- simulated rows: identical, or improved under --allow-faster ---- *)
  let diffs = ref 0 in
  if allow_faster then
    Printf.printf "simulated speedups (old/new per row):\n";
  let rec walk i a b =
    match (a, b) with
    | [], [] -> ()
    | x :: a', y :: b' ->
        (if allow_faster then compare_faster diffs i x y
         else if not (String.equal x y) then begin
           incr diffs;
           Printf.printf "simulated row %d differs:\n  - %s\n  + %s\n" i x y
         end);
        walk (i + 1) a' b'
    | x :: a', [] ->
        incr diffs;
        Printf.printf "simulated row %d only in %s:\n  - %s\n" i old_path x;
        walk (i + 1) a' []
    | [], y :: b' ->
        if allow_faster then
          Printf.printf "simulated row %d added since %s:\n  + %s\n" i
            old_path y
        else begin
          incr diffs;
          Printf.printf "simulated row %d only in %s:\n  + %s\n" i new_path y
        end;
        walk (i + 1) [] b'
  in
  walk 0 old_sim new_sim;
  if !diffs = 0 then
    Printf.printf "simulated results: %d rows %s\n" (List.length old_sim)
      (if allow_faster then "equal or faster, none regressed"
       else "identical")
  else Printf.printf "simulated results: %d row(s) DIFFER\n" !diffs;

  (* ---- bechamel rows: report speedups ---- *)
  let table lines =
    List.filter_map
      (fun l ->
        match (field_string l "test", field_float l "ms_per_run") with
        | Some t, Some ms -> Some (t, ms)
        | _ -> None)
      lines
  in
  let old_t = table old_bch and new_t = table new_bch in
  if old_t <> [] || new_t <> [] then begin
    Printf.printf "\n%-40s %12s %12s %9s\n" "wall-clock benchmark" "old ms/run"
      "new ms/run" "speedup";
    List.iter
      (fun (name, old_ms) ->
        match List.assoc_opt name new_t with
        | Some new_ms ->
            Printf.printf "%-40s %12.4f %12.4f %8.2fx\n" name old_ms new_ms
              (old_ms /. new_ms)
        | None -> Printf.printf "%-40s %12.4f %12s\n" name old_ms "(removed)")
      old_t;
    List.iter
      (fun (name, new_ms) ->
        if not (List.mem_assoc name old_t) then
          Printf.printf "%-40s %12s %12.4f\n" name "(new)" new_ms)
      new_t
  end;
  exit (if !diffs = 0 then 0 else 1)
