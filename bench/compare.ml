(* Compare two `bench --json` snapshots.

   Usage: compare OLD.json NEW.json

   The snapshot is a file of JSON lines in two flavours:

   - simulated-time rows (fig6/fig7/fig8/appendix sections): these are
     produced by the cost model and must be deterministic — the tool
     asserts they are byte-for-byte identical between the two files and
     exits nonzero otherwise.  This is how BENCH_PR*.json files prove
     that a performance change did not perturb simulated results.

   - bechamel rows (wall-clock ms per run): these move with the host
     and the implementation; the tool prints an old/new/speedup table.
     Rows present in only one file (e.g. a benchmark added alongside an
     optimization) are listed but do not fail the comparison. *)

let usage () =
  prerr_endline "usage: compare OLD.json NEW.json";
  exit 2

let read_lines path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "compare: %s\n" msg;
      exit 2
  in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let is_bechamel line =
  (* section is always the first key the bench writer emits *)
  let prefix = {|{"section":"bechamel"|} in
  String.length line >= String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

(* minimal extraction: the bench writer emits flat objects with string
   keys, no escapes inside the values we care about *)
let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let field_string line key =
  match find_sub line (Printf.sprintf {|"%s":"|} key) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let field_float line key =
  match find_sub line (Printf.sprintf {|"%s":|} key) with
  | None -> None
  | Some start ->
      let stop = ref start in
      let n = String.length line in
      while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

let () =
  let old_path, new_path =
    match Sys.argv with [| _; a; b |] -> (a, b) | _ -> usage ()
  in
  let old_lines = read_lines old_path and new_lines = read_lines new_path in
  let split lines = List.partition (fun l -> not (is_bechamel l)) lines in
  let old_sim, old_bch = split old_lines in
  let new_sim, new_bch = split new_lines in

  (* ---- simulated rows: must be identical ---- *)
  let diffs = ref 0 in
  let rec walk i a b =
    match (a, b) with
    | [], [] -> ()
    | x :: a', y :: b' ->
        if not (String.equal x y) then begin
          incr diffs;
          Printf.printf "simulated row %d differs:\n  - %s\n  + %s\n" i x y
        end;
        walk (i + 1) a' b'
    | x :: a', [] ->
        incr diffs;
        Printf.printf "simulated row %d only in %s:\n  - %s\n" i old_path x;
        walk (i + 1) a' []
    | [], y :: b' ->
        incr diffs;
        Printf.printf "simulated row %d only in %s:\n  + %s\n" i new_path y;
        walk (i + 1) [] b'
  in
  walk 0 old_sim new_sim;
  if !diffs = 0 then
    Printf.printf "simulated results: %d rows identical\n" (List.length old_sim)
  else Printf.printf "simulated results: %d row(s) DIFFER\n" !diffs;

  (* ---- bechamel rows: report speedups ---- *)
  let table lines =
    List.filter_map
      (fun l ->
        match (field_string l "test", field_float l "ms_per_run") with
        | Some t, Some ms -> Some (t, ms)
        | _ -> None)
      lines
  in
  let old_t = table old_bch and new_t = table new_bch in
  if old_t <> [] || new_t <> [] then begin
    Printf.printf "\n%-40s %12s %12s %9s\n" "wall-clock benchmark" "old ms/run"
      "new ms/run" "speedup";
    List.iter
      (fun (name, old_ms) ->
        match List.assoc_opt name new_t with
        | Some new_ms ->
            Printf.printf "%-40s %12.4f %12.4f %8.2fx\n" name old_ms new_ms
              (old_ms /. new_ms)
        | None -> Printf.printf "%-40s %12.4f %12s\n" name old_ms "(removed)")
      old_t;
    List.iter
      (fun (name, new_ms) ->
        if not (List.mem_assoc name old_t) then
          Printf.printf "%-40s %12s %12.4f\n" name "(new)" new_ms)
      new_t
  end;
  exit (if !diffs = 0 then 0 else 1)
