(** Minimal JSON values shared by every telemetry surface (batch
    reports, bench rows, trace events).  Emission is deterministic in
    the field order given; {!of_string} parses the same dialect back, so
    an emitted line survives print -> parse -> print byte for byte. *)

type t =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | List of t list
  | Obj of (string * t) list

val escape : string -> string

(** Integral floats render as ["x.0"]; everything else as [%.17g], which
    survives a round trip (a shorter format would truncate simulated
    seconds and break byte-identical cache determinism). *)
val float_repr : float -> string

val to_string : t -> string

(** Parse a complete JSON document.  Numbers without [./e/E] parse as
    [Int], others as [Float]; object key order is preserved, so
    [to_string] of the result reproduces the input byte for byte for
    anything {!to_string} emitted. *)
val of_string : string -> (t, string) result

(** Structural equality; floats compare by bit pattern (NaN = NaN, and
    [-0.] <> [0.]), matching what a print/parse round trip preserves. *)
val equal : t -> t -> bool
