(* The telemetry spine.  One [t] ("scope") collects everything a run
   wants to report: monotonic counters and accumulated float samples
   (the aggregate table), and a stream of timestamped events — points
   and span begin/end pairs — kept in a bounded ring buffer and pushed
   to any attached sinks (e.g. a JSON-lines writer).

   Design constraints, in priority order:

   - Telemetry must never change program results.  Producers only ever
     *read* simulator state and write into the scope; the deterministic
     numbers (instruction counts, simulated ns) live in Cost.meter and
     are merely mirrored here.  test/test_obs.ml runs the whole corpus
     traced vs untraced and asserts bit-identical machine state.
   - A disabled scope ({!null}) must cost one branch per call site, so
     the spine can stay compiled into every hot path.
   - One scope may be shared by many domains (the Ucd pool): all
     mutation happens under a mutex, and sink callbacks run under it
     too, so trace lines from concurrent jobs never interleave. *)

module Json = Json

type phase = Begin | End | Point

type event = {
  seq : int;
  t_ms : float;  (* milliseconds since the scope was created *)
  name : string;
  phase : phase;
  attrs : (string * Json.t) list;
}

type t = {
  enabled : bool;
  clock : unit -> float;  (* seconds; absolute origin irrelevant *)
  t0 : float;
  lock : Mutex.t;
  mutable seq : int;
  counts : (string, int ref) Hashtbl.t;
  samples : (string, float ref) Hashtbl.t;
  ring : event option array;  (* circular; seq mod capacity *)
  mutable ring_len : int;
  mutable sinks : (event -> unit) list;
}

let default_ring = 4096

let make ~enabled ~clock ~ring_capacity =
  {
    enabled;
    clock;
    t0 = (if enabled then clock () else 0.);
    lock = Mutex.create ();
    seq = 0;
    counts = Hashtbl.create (if enabled then 64 else 1);
    samples = Hashtbl.create (if enabled then 64 else 1);
    ring = Array.make (if enabled then max 1 ring_capacity else 1) None;
    ring_len = 0;
    sinks = [];
  }

let null = make ~enabled:false ~clock:(fun () -> 0.) ~ring_capacity:1

let create ?(clock = Sys.time) ?(ring_capacity = default_ring) () =
  make ~enabled:true ~clock ~ring_capacity

let enabled t = t.enabled

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let add_sink t sink = if t.enabled then locked t (fun () -> t.sinks <- sink :: t.sinks)

(* ---- aggregate table ---- *)

let count t name by =
  if t.enabled then
    locked t (fun () ->
        match Hashtbl.find_opt t.counts name with
        | Some r -> r := !r + by
        | None -> Hashtbl.add t.counts name (ref by))

let sample t name v =
  if t.enabled then
    locked t (fun () ->
        match Hashtbl.find_opt t.samples name with
        | Some r -> r := !r +. v
        | None -> Hashtbl.add t.samples name (ref v))

let table t =
  if not t.enabled then []
  else
    locked t (fun () ->
        let rows =
          Hashtbl.fold (fun k r acc -> (k, Json.Int !r) :: acc) t.counts []
        in
        let rows =
          Hashtbl.fold (fun k r acc -> (k, Json.Float !r) :: acc) t.samples rows
        in
        List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let pp_table ppf t =
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf "%-40s %s@." k
        (match v with Json.Int i -> string_of_int i | v -> Json.to_string v))
    (table t)

(* ---- events ---- *)

let emit_locked t ~phase ~name ~attrs =
  let ev =
    {
      seq = t.seq;
      t_ms = (t.clock () -. t.t0) *. 1e3;
      name;
      phase;
      attrs;
    }
  in
  t.seq <- t.seq + 1;
  t.ring.(ev.seq mod Array.length t.ring) <- Some ev;
  if t.ring_len < Array.length t.ring then t.ring_len <- t.ring_len + 1;
  List.iter (fun sink -> sink ev) t.sinks

let emit t ~phase ~name ~attrs =
  if t.enabled then locked t (fun () -> emit_locked t ~phase ~name ~attrs)

let point t ?(attrs = []) name = emit t ~phase:Point ~name ~attrs

let span_begin t ?(attrs = []) name = emit t ~phase:Begin ~name ~attrs
let span_end t ?(attrs = []) name = emit t ~phase:End ~name ~attrs

(* A span both traces (Begin/End events) and aggregates (its duration
   accumulates into the sample ["<name>.ms"]), so `--metrics` shows
   phase timings without anyone replaying the event stream. *)
let with_span t ?(attrs = []) name f =
  if not t.enabled then f ()
  else begin
    span_begin t ~attrs name;
    let s0 = t.clock () in
    let finish err =
      let ms = (t.clock () -. s0) *. 1e3 in
      sample t (name ^ ".ms") ms;
      let attrs = [ ("ms", Json.Float ms) ] in
      let attrs =
        match err with None -> attrs | Some e -> ("error", Json.Str e) :: attrs
      in
      span_end t ~attrs name
    in
    match f () with
    | v ->
        finish None;
        v
    | exception e ->
        finish (Some (Printexc.to_string e));
        raise e
  end

(* oldest first; only the last [ring_capacity] events are retained *)
let events t =
  if not t.enabled then []
  else
    locked t (fun () ->
        let cap = Array.length t.ring in
        let first = t.seq - t.ring_len in
        List.init t.ring_len (fun i ->
            match t.ring.((first + i) mod cap) with
            | Some ev -> ev
            | None -> assert false))

(* ---- event (de)serialization ---- *)

let phase_string = function Begin -> "begin" | End -> "end" | Point -> "point"

let phase_of_string = function
  | "begin" -> Ok Begin
  | "end" -> Ok End
  | "point" -> Ok Point
  | s -> Error (Printf.sprintf "bad phase %S" s)

let event_json (ev : event) =
  Json.Obj
    [
      ("seq", Json.Int ev.seq);
      ("t_ms", Json.Float ev.t_ms);
      ("name", Json.Str ev.name);
      ("phase", Json.Str (phase_string ev.phase));
      ("attrs", Json.Obj ev.attrs);
    ]

let event_of_json = function
  | Json.Obj
      [
        ("seq", Json.Int seq);
        ("t_ms", t_ms);
        ("name", Json.Str name);
        ("phase", Json.Str phase);
        ("attrs", Json.Obj attrs);
      ] -> (
      let t_ms =
        match t_ms with
        | Json.Float f -> Ok f
        | Json.Int i -> Ok (float_of_int i)
        | _ -> Error "bad t_ms"
      in
      match (t_ms, phase_of_string phase) with
      | Ok t_ms, Ok phase -> Ok { seq; t_ms; name; phase; attrs }
      | Error m, _ | _, Error m -> Error m)
  | _ -> Error "not an event object"

let jsonl_sink write ev = write (Json.to_string (event_json ev))

(* ---- bounded streaming queue ---- *)

(* A drop-on-overflow line stream between a producer (telemetry sinks,
   a server enqueueing replies) and one consumer (a socket writer
   thread).  Two lanes of service:

   - [push] blocks until there is room: for must-deliver lines (protocol
     replies, report rows) where backpressure on the producer is the
     right answer;
   - [offer] never blocks: for trace events, which are droppable — a
     slow consumer costs events (counted), never simulator progress.

   No unix dependency: plain stdlib Mutex/Condition, usable from both
   threads and domains. *)
module Stream = struct
  type t = {
    lock : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
    buf : string Queue.t;
    capacity : int;
    mutable closed : bool;
    mutable pushed : int;
    mutable dropped : int;
  }

  let create ?(capacity = 1024) () =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      buf = Queue.create ();
      capacity = max 1 capacity;
      closed = false;
      pushed = 0;
      dropped = 0;
    }

  let locked s f =
    Mutex.lock s.lock;
    match f () with
    | v ->
        Mutex.unlock s.lock;
        v
    | exception e ->
        Mutex.unlock s.lock;
        raise e

  (* blocking lane; false once the stream is closed *)
  let push s line =
    locked s (fun () ->
        let rec wait () =
          if s.closed then false
          else if Queue.length s.buf >= s.capacity then begin
            Condition.wait s.not_full s.lock;
            wait ()
          end
          else begin
            Queue.push line s.buf;
            s.pushed <- s.pushed + 1;
            Condition.signal s.not_empty;
            true
          end
        in
        wait ())

  (* non-blocking lane; false = dropped (full) or closed *)
  let offer s line =
    locked s (fun () ->
        if s.closed then false
        else if Queue.length s.buf >= s.capacity then begin
          s.dropped <- s.dropped + 1;
          false
        end
        else begin
          Queue.push line s.buf;
          s.pushed <- s.pushed + 1;
          Condition.signal s.not_empty;
          true
        end)

  (* consumer: next line, or None once closed and drained *)
  let pop s =
    locked s (fun () ->
        let rec wait () =
          match Queue.take_opt s.buf with
          | Some line ->
              Condition.signal s.not_full;
              Some line
          | None ->
              if s.closed then None
              else begin
                Condition.wait s.not_empty s.lock;
                wait ()
              end
        in
        wait ())

  let close s =
    locked s (fun () ->
        s.closed <- true;
        Condition.broadcast s.not_empty;
        Condition.broadcast s.not_full)

  let closed s = locked s (fun () -> s.closed)
  let length s = locked s (fun () -> Queue.length s.buf)
  let dropped s = locked s (fun () -> s.dropped)
  let pushed s = locked s (fun () -> s.pushed)

  let event_sink s ev = ignore (offer s (Json.to_string (event_json ev)))
end
