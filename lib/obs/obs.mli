(** Telemetry spine: one scope collects counters, float samples and a
    bounded stream of timestamped events from every subsystem.

    The invariant the whole repo leans on: telemetry on or off NEVER
    changes program results.  Producers only read simulator state;
    deterministic numbers (instruction counts, simulated ns) live in
    [Cm.Cost.meter] and are mirrored into the scope for display.
    [test/test_obs.ml] enforces this by running the whole corpus traced
    vs untraced on both engines.

    A scope is safe to share across domains: all mutation (and sink
    callbacks) run under an internal mutex.  The {!null} scope is
    disabled and costs one branch per call. *)

module Json : module type of Json

type phase = Begin | End | Point

type event = {
  seq : int;  (** creation order within the scope, from 0 *)
  t_ms : float;  (** wall milliseconds since the scope was created *)
  name : string;  (** dotted vocabulary, e.g. ["cm.fault.transient"] *)
  phase : phase;
  attrs : (string * Json.t) list;
}

type t

(** The disabled scope: every operation is a no-op, {!enabled} is
    [false].  Default for every [?obs] parameter in the repo. *)
val null : t

(** [create ()] makes an enabled scope.  [clock] supplies wall time in
    seconds (default [Sys.time]; pass [Unix.gettimeofday] for real wall
    clock — this library deliberately has no unix dependency).
    [ring_capacity] bounds the retained event history (default 4096);
    older events are still delivered to sinks, only {!events} forgets
    them. *)
val create : ?clock:(unit -> float) -> ?ring_capacity:int -> unit -> t

val enabled : t -> bool

(** Sinks receive every event as it is emitted, under the scope lock
    (so concurrent emitters never interleave mid-line). *)
val add_sink : t -> (event -> unit) -> unit

(** [count t name by] adds [by] to the monotonic counter [name]. *)
val count : t -> string -> int -> unit

(** [sample t name v] accumulates [v] into the float sample [name]. *)
val sample : t -> string -> float -> unit

(** The aggregate table: every counter ([Int]) and sample ([Float]),
    sorted by name. *)
val table : t -> (string * Json.t) list

val pp_table : Format.formatter -> t -> unit

(** A point event (no duration). *)
val point : t -> ?attrs:(string * Json.t) list -> string -> unit

val span_begin : t -> ?attrs:(string * Json.t) list -> string -> unit
val span_end : t -> ?attrs:(string * Json.t) list -> string -> unit

(** [with_span t name f] brackets [f ()] in Begin/End events; the End
    event carries an ["ms"] attribute (and ["error"] if [f] raised — the
    exception is re-raised), and the duration also accumulates into the
    sample ["<name>.ms"].  On a disabled scope this is exactly [f ()]. *)
val with_span : t -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Retained events, oldest first (at most [ring_capacity]). *)
val events : t -> event list

(** Canonical JSON rendering of one event:
    [{"seq":_,"t_ms":_,"name":_,"phase":"begin|end|point","attrs":{...}}].
    {!event_of_json} inverts it; a rendered line re-parses and re-renders
    byte-identically. *)
val event_json : event -> Json.t

val event_of_json : Json.t -> (event, string) result

(** [jsonl_sink write] is a sink rendering each event with
    {!event_json} and passing the line (no newline) to [write]. *)
val jsonl_sink : (string -> unit) -> event -> unit

(** A bounded line stream between a producer (telemetry sinks, a server
    enqueueing protocol replies) and one consumer (a socket writer
    thread), with two lanes of service: {!Stream.push} blocks for room
    (must-deliver lines), {!Stream.offer} never blocks and drops on
    overflow (trace events — a slow consumer costs events, counted in
    {!Stream.dropped}, never simulator progress).  Safe across threads
    and domains; no unix dependency. *)
module Stream : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Bounded at [capacity] lines (default 1024, min 1). *)

  val push : t -> string -> bool
  (** Blocking lane; [false] once the stream is closed. *)

  val offer : t -> string -> bool
  (** Non-blocking lane; [false] = dropped (stream full) or closed. *)

  val pop : t -> string option
  (** Consumer side: next line, blocking; [None] once closed and
      drained. *)

  val close : t -> unit
  (** Wakes every waiter; {!pop} drains what remains, then [None]. *)

  val closed : t -> bool
  val length : t -> int

  val dropped : t -> int
  (** Offers refused because the stream was full. *)

  val pushed : t -> int
  (** Lines accepted over the stream's lifetime. *)

  val event_sink : t -> event -> unit
  (** An {!add_sink}-compatible sink rendering each event with
      {!event_json} and offering it to the stream (droppable lane). *)
end
