(* Minimal JSON values (no external dependency), shared by every
   telemetry surface: batch reports, bench rows and trace events.
   Emission is deterministic in the field order given; [of_string]
   parses the same dialect back, so a trace line survives a
   print/parse/print round trip byte for byte. *)

type t =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g survives a round-trip; %g would truncate simulated seconds and
   break byte-identical cache determinism for long runs *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec to_string = function
  | Str s -> "\"" ^ escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> float_repr f
  | Bool b -> string_of_bool b
  | List xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
      ^ "}"

(* ---- parsing ---- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail p fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Parse_error (Printf.sprintf "at offset %d: %s" p.pos msg)))
    fmt

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let skip_ws p =
  while
    p.pos < String.length p.src
    && match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some d when d = c -> p.pos <- p.pos + 1
  | Some d -> fail p "expected %c, found %c" c d
  | None -> fail p "expected %c, found end of input" c

let parse_hex4 p =
  if p.pos + 4 > String.length p.src then fail p "truncated \\u escape";
  let s = String.sub p.src p.pos 4 in
  p.pos <- p.pos + 4;
  (* exactly four hex digits: int_of_string would also accept OCaml
     literal syntax ("_", a leading sign …), which is not JSON *)
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail p "bad \\u escape %S" s
  in
  String.fold_left (fun acc c -> (acc * 16) + digit c) 0 s

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if p.pos >= String.length p.src then fail p "unterminated string";
    let c = p.src.[p.pos] in
    p.pos <- p.pos + 1;
    if c = '"' then Buffer.contents buf
    else if c = '\\' then begin
      (if p.pos >= String.length p.src then fail p "unterminated escape";
       let e = p.src.[p.pos] in
       p.pos <- p.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
           (* the emitter only escapes control bytes this way; decode the
              low code points we produce and refuse the rest *)
           let n = parse_hex4 p in
           if n < 0x100 then Buffer.add_char buf (Char.chr n)
           else fail p "unsupported \\u%04x (emitter never produces it)" n
       | e -> fail p "bad escape \\%c" e);
      go ()
    end
    else begin
      Buffer.add_char buf c;
      go ()
    end
  in
  go ()

let is_num_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number p =
  let start = p.pos in
  while p.pos < String.length p.src && is_num_char p.src.[p.pos] do
    p.pos <- p.pos + 1
  done;
  let s = String.sub p.src start (p.pos - start) in
  let is_floatish =
    String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s
  in
  if is_floatish then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail p "bad number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail p "bad number %S" s)

let parse_literal p lit v =
  let n = String.length lit in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = lit then begin
    p.pos <- p.pos + n;
    v
  end
  else fail p "bad literal (expected %s)" lit

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some '"' -> Str (parse_string p)
  | Some '{' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              p.pos <- p.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail p "expected , or } in object"
        in
        Obj (members [])
      end
  | Some '[' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              p.pos <- p.pos + 1;
              List.rev (v :: acc)
          | _ -> fail p "expected , or ] in array"
        in
        List (elems [])
      end
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some c when is_num_char c -> parse_number p
  | Some c -> fail p "unexpected character %c" c

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let rec equal a b =
  match (a, b) with
  | Str a, Str b -> String.equal a b
  | Int a, Int b -> a = b
  | Float a, Float b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | Bool a, Bool b -> a = b
  | List a, List b -> List.equal equal a b
  | Obj a, Obj b ->
      List.equal (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | _ -> false
