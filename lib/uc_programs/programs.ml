(** The paper's UC programs, as a single source of truth for tests,
    examples and benchmarks.

    Each program is a complete compilation unit (the paper shows most of
    them as fragments; we wrap them in [main]).  Programs that the paper
    seeds with [rand()] take a [~deterministic] flag so tests can compute
    reference results; benchmarks use the random variant, which is still
    reproducible because [rand] is a fixed LCG. *)

let log2_ceil n =
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

(* ---- section 3.2: reductions (figure 1, reconstructed) ---- *)

let reductions ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1}, J:j = I;
int s, mn, first, arb, last, a[N];
float avg;

void main() {
  par (I) a[i] = (i * 3 + 7) %% N;
  s = $+(I; i);
  avg = tofloat($+(I; a[i])) / tofloat(N);
  mn = $<(I; a[i]);
  first = $<(I st (a[i] == mn) i);
  arb = $,(I st (a[i] == mn) i);
  last = $>(I st (a[i] == $>(J; a[j])) i);
}
|}
    n

(* ---- section 3.2: sum of absolute values with others ---- *)

let abs_sum ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1};
int a[N], abs_sum;

void main() {
  par (I) a[i] = (i %% 3 == 0) ? -i : i;
  abs_sum = $+(I st (a[i] > 0) a[i] others -a[i]);
}
|}
    n

(* ---- section 3.4: matrix product via nested reduction ---- *)

let matmul ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1}, J:j = I, K:k = I;
int a[N][N], b[N][N], c[N][N];

void main() {
  par (I, J) {
    a[i][j] = i + 2 * j;
    b[i][j] = (i == j) ? 1 : 0;
  }
  par (I, J)
    c[i][j] = $+(K; a[i][k] * b[k][j]);
}
|}
    n

(* ---- section 3.4: reciprocal of non-zero elements ---- *)

let reciprocal ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1};
float a[N];

void main() {
  par (I) a[i] = tofloat(i - N / 2);
  par (I) st (a[i] != 0) a[i] = 1.0 / a[i];
}
|}
    n

(* ---- section 3.4: set odd elements to 0 and others to 1 ---- *)

let odd_even_flags ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1};
int a[N];

void main() {
  par (I)
    st (i %% 2 == 1) a[i] = 0;
    others a[i] = 1;
}
|}
    n

(* ---- section 3.4: ranksort (all values distinct) ---- *)

let ranksort ~n =
  if n >= 61 then invalid_arg "ranksort: n must be < 61 for distinct keys";
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1}, J:j = I;
int a[N];

void main() {
  par (I) a[i] = (i * 7 + 3) %% 61;
  par (I) {
    int rank;
    rank = $+(J st (a[j] < a[i]) 1);
    a[rank] = a[i];
  }
}
|}
    n

(* ---- figure 2: prefix sums with *par ---- *)

let prefix_sums ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1};
int a[N], cnt[N];

void main() {
  par (I) {
    a[i] = i;
    cnt[i] = 0;
  }
  *par (I) st (i >= power2(cnt[i]))
  {
    a[i] = a[i] + a[i - power2(cnt[i])];
    cnt[i] = cnt[i] + 1;
  }
}
|}
    n

(* ---- figure 3: partial sums with seq nested in par ---- *)

let partial_sums_seq ~n =
  Printf.sprintf
    {|
#define N %d
#define LOGN %d
index-set I:i = {0..N-1}, J:j = {0..LOGN-1};
int a[N];

void main() {
  par (I) {
    a[i] = i;
    seq (J) st (i - power2(j) >= 0)
      a[i] = a[i] + a[i - power2(j)];
  }
}
|}
    n (log2_ceil n)

(* ---- shortest-path initialisation shared by figures 4, 5 and *solve ---- *)

let sp_init ~deterministic =
  if deterministic then "(i * 7 + j * 13) % N + 1" else "rand() % N + 1"

(* ---- figure 4: all-pairs shortest path, O(N^2) parallelism ---- *)

let shortest_path_n2 ?(deterministic = true) ~n () =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1}, J:j = I, K:k = I;
int d[N][N];

void main() {
  par (I, J)
    st (i == j) d[i][j] = 0;
    others d[i][j] = %s;
  seq (K)
    par (I, J)
      st (d[i][k] + d[k][j] < d[i][j])
        d[i][j] = d[i][k] + d[k][j];
}
|}
    n (sp_init ~deterministic)

(* ---- figure 5: all-pairs shortest path, O(N^3) parallelism ---- *)

let shortest_path_n3 ?(deterministic = true) ~n () =
  Printf.sprintf
    {|
#define N %d
#define LOGN %d
index-set I:i = {0..N-1}, J:j = I, K:k = I;
index-set L:l = {0..LOGN-1};
int d[N][N];

void main() {
  par (I, J)
    st (i == j) d[i][j] = 0;
    others d[i][j] = %s;
  seq (L)
    par (I, J)
      d[i][j] = $<(K; d[i][k] + d[k][j]);
}
|}
    n
    (max 1 (log2_ceil n))
    (sp_init ~deterministic)

(* ---- section 3.6: all-pairs shortest path with *solve ---- *)

let shortest_path_solve ?(deterministic = true) ~n () =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1}, J:j = I, K:k = I;
int d[N][N];

void main() {
  par (I, J)
    st (i == j) d[i][j] = 0;
    others d[i][j] = %s;
  *solve (I, J)
    d[i][j] = $<(K; d[i][k] + d[k][j]);
}
|}
    n (sp_init ~deterministic)

(* ---- section 3.6: the wavefront problem with solve ---- *)

let wavefront ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1}, J:j = I;
int a[N][N];

void main() {
  solve (I, J)
    a[i][j] = (i == 0 || j == 0) ? 1
            : a[i-1][j] + a[i-1][j-1] + a[i][j-1];
}
|}
    n

(* ---- section 3.7: odd-even transposition sort with *oneof ---- *)

let odd_even_sort ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1};
int x[N];

void main() {
  par (I) x[i] = (i * 11 + 5) %% 31;
  *oneof (I)
    st (i %% 2 == 0 && i + 1 < N && x[i] > x[i+1]) swap(x[i], x[i+1]);
    st (i %% 2 != 0 && i + 1 < N && x[i] > x[i+1]) swap(x[i], x[i+1]);
}
|}
    n

(* ---- section 4: digit-count histogram (processor optimization) ---- *)

let digit_count ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1}, J:j = {0..9};
int samples[N];
int count[10];

void main() {
  par (I) samples[i] = rand() %% 10;
  par (J)
    count[j] = $+(I st (samples[i] == j) 1);
}
|}
    n

(* The same histogram over a deterministic sample stream, so a host
   oracle can predict every count: samples[i] = (i*7 + 3) mod 10.  7 is
   coprime to 10, so the stream cycles through all ten digits and the
   expected histogram is computable without running any engine. *)
let digit_count_det ~n =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1}, J:j = {0..9};
int samples[N];
int count[10];

void main() {
  par (I) samples[i] = (i * 7 + 3) %% 10;
  par (J)
    count[j] = $+(I st (samples[i] == j) 1);
}
|}
    n

(* the host-side oracle for [digit_count_det]: expected samples and
   counts, for differential and CI gates *)
let digit_count_oracle ~n =
  let samples = Array.init n (fun i -> ((i * 7) + 3) mod 10) in
  let count = Array.make 10 0 in
  Array.iter (fun d -> count.(d) <- count.(d) + 1) samples;
  (samples, count)

(* ---- figure 11 / figure 8: grid shortest path with an obstacle ---- *)

let obstacle_grid ~n =
  Printf.sprintf
    {|
#define N %d
#define WALL (0 - 1)
#define MIN4 min(min((i > 0 && d[i-1][j] != WALL) ? d[i-1][j] : INF, (i < N-1 && d[i+1][j] != WALL) ? d[i+1][j] : INF), min((j > 0 && d[i][j-1] != WALL) ? d[i][j-1] : INF, (j < N-1 && d[i][j+1] != WALL) ? d[i][j+1] : INF))
index-set I:i = {0..N-1}, J:j = I;
int d[N][N];

void main() {
  par (I, J)
    st (i + j == N - 1 && abs(i - N/2) <= N/4) d[i][j] = WALL;
    others d[i][j] = 0;
  *par (I, J)
    st (d[i][j] != WALL && !(i == 0 && j == 0) && d[i][j] != MIN4 + 1)
      d[i][j] = MIN4 + 1;
}
|}
    n

(* ---- section 4: stencil used for the mapping ablation ---- *)

let stencil ?(mapped = false) ~n ~steps () =
  Printf.sprintf
    {|
#define N %d
#define STEPS %d
index-set I:i = {0..N-2}, IB:ib = {0..N-1};
int a[N], b[N];
%s
void main() {
  int t;
  par (IB) {
    a[ib] = ib;
    b[ib] = 2 * ib + 1;
  }
  for (t = 0; t < STEPS; t = t + 1)
    par (I) a[i] = a[i] + b[i+1];
}
|}
    n steps
    (if mapped then "map (I) { permute (I) b[i+1] :- a[i]; }" else "")

(* ---- a small quickstart used by the examples ---- *)

let quickstart =
  {|
#define N 10
index-set I:i = {0..N-1};
int a[N], total, biggest;

void main() {
  par (I) a[i] = i * i;
  total = $+(I; a[i]);
  biggest = $>(I; a[i]);
  print("sum of squares 0..9 = ", total);
  print("largest square = ", biggest);
}
|}

(* ---- fold mapping: co-access of a[i] and a[i + N/2] (section 4) ---- *)

let folded_pairs ?(folded = false) ~n () =
  Printf.sprintf
    {|
#define N %d
index-set I:i = {0..N-1};
int a[N], b[N];
%s
void main() {
  par (I) a[i] = i * 3 + 1;
  par (I) b[i] = a[i] + a[(i + N/2) %% N];
  a[3] = 99;
}
|}
    n
    (if folded then "map (I) { fold a by 2; }" else "")

(* ---- copy mapping: replication cuts broadcast congestion ---- *)

let copied_broadcast ?(copied = false) ?(steps = 2) ~n ~copies () =
  Printf.sprintf
    {|
#define N %d
#define STEPS %d
index-set I:i = {0..N-1};
int a[N], b[N];
%s
void main() {
  int t;
  par (I) a[i] = i + 10;
  a[2] = 55;
  for (t = 0; t < STEPS; t = t + 1)
    par (I) b[i] = b[i] + a[i %% 4] + t;
}
|}
    n steps
    (if copied then Printf.sprintf "map (I) { copy a along %d; }" copies else "")

(* ---- numerical workload: Jacobi heat diffusion (the paper reports
   CFD / numerical experiments in progress, section 5) ---- *)

let heat ?(steps = 10) ~n () =
  Printf.sprintf
    {|
#define N %d
#define STEPS %d
index-set X:x = {0..N-1}, Y:y = X;
index-set I:i = {1..N-2}, J:j = I;
float u[N][N], unew[N][N];

void main() {
  int t;
  par (X, Y)
    st (x == 0 || y == 0 || x == N-1 || y == N-1) u[x][y] = tofloat(x + y);
    others u[x][y] = 0.0;
  par (X, Y) unew[x][y] = u[x][y];
  for (t = 0; t < STEPS; t = t + 1) {
    par (I, J)
      unew[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]);
    par (X, Y) u[x][y] = unew[x][y];
  }
}
|}
    n steps

(* ---- everything, for whole-corpus tests ---- *)

let all_named : (string * string) list =
  [
    ("reductions", reductions ~n:10);
    ("abs_sum", abs_sum ~n:8);
    ("matmul", matmul ~n:6);
    ("reciprocal", reciprocal ~n:8);
    ("odd_even_flags", odd_even_flags ~n:9);
    ("ranksort", ranksort ~n:16);
    ("prefix_sums", prefix_sums ~n:16);
    ("partial_sums_seq", partial_sums_seq ~n:16);
    ("shortest_path_n2", shortest_path_n2 ~n:6 ());
    ("shortest_path_n3", shortest_path_n3 ~n:6 ());
    ("shortest_path_solve", shortest_path_solve ~n:5 ());
    ("wavefront", wavefront ~n:7);
    ("odd_even_sort", odd_even_sort ~n:12);
    ("digit_count", digit_count ~n:24);
    ("digit_count_det", digit_count_det ~n:24);
    ("obstacle_grid", obstacle_grid ~n:10);
    ("stencil", stencil ~n:16 ~steps:4 ());
    ("stencil_mapped", stencil ~mapped:true ~n:16 ~steps:4 ());
    ("folded_pairs", folded_pairs ~n:16 ());
    ("folded_pairs_mapped", folded_pairs ~folded:true ~n:16 ());
    ("copied_broadcast", copied_broadcast ~n:16 ~copies:4 ());
    ("copied_broadcast_mapped", copied_broadcast ~copied:true ~n:16 ~copies:4 ());
    ("heat", heat ~n:12 ());
    ("quickstart", quickstart);
  ]
