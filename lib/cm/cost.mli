(** Cost model for the simulated Connection Machine.

    The simulator charges time per Paris macro-instruction rather than per
    hardware cycle.  Every parallel instruction pays a fixed front-end
    dispatch overhead ([issue_ns]) plus a class-specific cost scaled by the
    virtual-processor ratio (VPs per physical processor, rounded up).  This
    mirrors the CM-2 execution model where the front end broadcasts
    macro-instructions to the sequencer and the per-instruction time grows
    with the VP ratio. *)

type params = {
  physical_procs : int;  (** number of physical processors (16K in the paper) *)
  issue_ns : float;      (** front-end dispatch overhead per parallel instruction *)
  fe_op_ns : float;      (** one front-end scalar operation *)
  pe_op_ns : float;      (** one elementwise ALU operation, per VP-ratio unit *)
  context_ns : float;    (** context push/pop/and *)
  news_ns : float;       (** NEWS-grid shift, per VP-ratio unit *)
  router_ns : float;     (** general-router get/send, per VP-ratio unit *)
  scan_ns : float;       (** scan / reduction network, per VP-ratio unit *)
  fe_cm_ns : float;      (** single-element front-end <-> CM transfer *)
}

(** Parameters loosely calibrated to a 16K CM-2 driven from a SUN-4 front
    end, tuned so that the benchmark figures land in the same ranges as the
    paper. *)
val cm2_16k : params

(** Aggregate statistics and simulated elapsed time. *)
type meter = {
  params : params;
  mutable elapsed_ns : float;
  mutable fe_ops : int;
  mutable pe_ops : int;        (** parallel ALU / move instructions *)
  mutable context_ops : int;
  mutable news_ops : int;
  mutable router_ops : int;    (** collective router operations *)
  mutable router_messages : int;  (** individual messages delivered *)
  mutable router_collisions : int;
      (** serialization steps beyond the first delivery at the hottest
          destination, summed over router ops ([max_fanin - 1] each) *)
  mutable router_max_fanin : int;  (** worst fan-in seen by any router op *)
  mutable reductions : int;
  mutable scans : int;
  mutable fe_cm_transfers : int;
  mutable ns_fe : float;  (** simulated ns attributed to each class,
                              issue overhead included; the eight [ns_*]
                              fields sum to [elapsed_ns] *)
  mutable ns_pe : float;
  mutable ns_context : float;
  mutable ns_news : float;
  mutable ns_router : float;
  mutable ns_reduce : float;
  mutable ns_scan : float;
  mutable ns_fe_cm : float;
}

val meter : params -> meter

(** [vp_ratio p n] is the number of VPs multiplexed on each physical
    processor for a VP set of [n] elements: [max 1 (ceil (n / physical))]. *)
val vp_ratio : params -> int -> int

(** Charging functions; [size] is the VP-set size of the instruction. *)

val charge_fe : meter -> unit
val charge_pe : meter -> size:int -> unit
val charge_context : meter -> size:int -> unit
val charge_news : meter -> size:int -> unit

(** [charge_router m ~size ~messages ~max_fanin] charges one collective
    router operation.  Congestion is modelled by multiplying the base cost
    by [1 + log2 max_fanin]. *)
val charge_router : meter -> size:int -> messages:int -> max_fanin:int -> unit

val charge_reduce : meter -> size:int -> unit
val charge_scan : meter -> size:int -> unit
val charge_fe_cm : meter -> unit

(** Simulated elapsed time in seconds. *)
val elapsed_seconds : meter -> float

(** The canonical flat metrics view: every counter and per-class ns
    accumulator as [(name, value)] in a fixed order.  Deterministic and
    engine-identical; the single source for the batch report [metrics]
    column, [Machine.publish] and bench rows. *)
val metrics : meter -> (string * float) list

val pp_meter : Format.formatter -> meter -> unit
