(* SPMD sharding support for the machine's `Sharded engine: a chunk
   layout over VP-set element ranges plus a reusable team of worker
   domains that execute one ranged task per chunk.

   The contract that keeps the engine bit-identical to `Fast at every
   shard count: the LOGICAL chunk layout (how [0, n) is partitioned)
   depends only on the requested shard count, while the PHYSICAL worker
   count only decides which domain runs which chunk.  Chunk tasks write
   disjoint destination ranges, so the final arrays are independent of
   scheduling; anything order-sensitive (partial combines) is finished
   on the calling domain in ascending chunk order. *)

(* ---- chunk layout ---- *)

let layout ~shards n =
  let shards = max 1 shards in
  let k = min shards (max n 1) in
  let base = n / k and extra = n mod k in
  Array.init k (fun i ->
      let lo = (i * base) + min i extra in
      let hi = lo + base + if i < extra then 1 else 0 in
      (lo, hi))

(* ---- domain team ---- *)

(* Each published job is one immutable record behind a single atomic, so
   a worker never observes the closure of one epoch with the task count
   of another.  Workers track the last generation they executed.  Chunks
   are CLAIMED from a shared counter rather than statically assigned:
   which participant runs a chunk never affects the bytes written (the
   layout alone decides that), and claiming means a descheduled or
   parked worker can never stall the barrier — the caller just claims
   the remaining chunks itself.  On a single-core host that degenerates
   to the caller running everything inline at full speed instead of
   paying a scheduling round-trip per kernel. *)
type job = {
  gen : int;
  f : int -> unit;
  ntasks : int;
  next : int Atomic.t;  (* next unclaimed chunk *)
  pending : int Atomic.t;  (* chunks not yet finished *)
  failed : (int * exn) option Atomic.t;  (* lowest-chunk failure wins *)
}

type team = {
  size : int;  (* worker domains, excluding the caller *)
  cur : job Atomic.t;
  stop : bool Atomic.t;
  lock : Mutex.t;
  wake : Condition.t;
  mutable parked : int;  (* under [lock] *)
  mutable workers : unit Domain.t list;
}

let no_job = { gen = 0; f = ignore; ntasks = 0; next = Atomic.make 0;
               pending = Atomic.make 0; failed = Atomic.make None }

let record_failure job c exn =
  let rec cas () =
    let prev = Atomic.get job.failed in
    let keep = match prev with None -> true | Some (c0, _) -> c < c0 in
    if keep && not (Atomic.compare_and_set job.failed prev (Some (c, exn)))
    then cas ()
  in
  cas ()

let run_chunks job =
  let rec claim () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < job.ntasks then begin
      (try job.f c with exn -> record_failure job c exn);
      ignore (Atomic.fetch_and_add job.pending (-1));
      claim ()
    end
  in
  claim ()

let spin_budget = 2000

let worker t () =
  let last = ref (Atomic.get t.cur).gen in
  let rec await spins =
    if Atomic.get t.stop then None
    else
      let job = Atomic.get t.cur in
      if job.gen <> !last then Some job
      else if spins < spin_budget then begin
        Domain.cpu_relax ();
        await (spins + 1)
      end
      else begin
        (* park: re-check under the lock so a publish between the check
           and the wait cannot be missed (the publisher broadcasts under
           the same lock whenever anyone is parked) *)
        Mutex.lock t.lock;
        t.parked <- t.parked + 1;
        while
          (Atomic.get t.cur).gen = !last && not (Atomic.get t.stop)
        do
          Condition.wait t.wake t.lock
        done;
        t.parked <- t.parked - 1;
        Mutex.unlock t.lock;
        await 0
      end
  in
  let rec loop () =
    match await 0 with
    | None -> ()
    | Some job ->
        run_chunks job;
        last := job.gen;
        loop ()
  in
  loop ()

let create ~workers =
  let t =
    {
      size = max 0 workers;
      cur = Atomic.make no_job;
      stop = Atomic.make false;
      lock = Mutex.create ();
      wake = Condition.create ();
      parked = 0;
      workers = [];
    }
  in
  t.workers <- List.init t.size (fun _ -> Domain.spawn (worker t));
  t

let size t = t.size

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Mutex.lock t.lock;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(* [run team n f] executes [f c] for every chunk [c] in [0, n), fanning
   out across the team's workers plus the calling domain, and returns
   once every chunk has finished.  [None] (no team) or a single chunk
   runs inline.  A chunk exception is re-raised on the caller after the
   join, keeping the machine's fail-stop contract. *)
let run team n f =
  match team with
  | None -> for c = 0 to n - 1 do f c done
  | Some t when t.size = 0 || n <= 1 -> for c = 0 to n - 1 do f c done
  | Some t ->
      let prev = Atomic.get t.cur in
      let job =
        {
          gen = prev.gen + 1;
          f;
          ntasks = n;
          next = Atomic.make 0;
          pending = Atomic.make n;
          failed = Atomic.make None;
        }
      in
      Atomic.set t.cur job;
      Mutex.lock t.lock;
      if t.parked > 0 then Condition.broadcast t.wake;
      Mutex.unlock t.lock;
      run_chunks job;
      (* every chunk is claimed by now; this waits only for chunks a
         worker claimed and is still running, never for a worker to be
         scheduled in the first place *)
      while Atomic.get job.pending > 0 do
        Domain.cpu_relax ()
      done;
      (match Atomic.get job.failed with
      | Some (_, exn) -> raise exn
      | None -> ())

(* ---- global worker budget ---- *)

(* Teams are borrowed around a run and parked between runs, so a serve
   daemon executing many sharded jobs at once reuses a small set of
   domain teams instead of spawning per machine.  [set_limit] caps the
   total workers alive across all teams: with a job pool of [J] domains
   the guard is [recommended - J], so jobs x shards never oversubscribes
   the host.  A borrow that cannot be served within the budget returns
   [None] and the machine runs its chunks inline - same results, just
   unaccelerated. *)
module Pool = struct
  type stats = {
    borrows : int;  (* successful borrows, reuse or spawn *)
    spawns : int;  (* teams created *)
    capped : int;  (* team size clipped by the remaining budget *)
    denied : int;  (* borrows refused outright: budget exhausted *)
    workers : int;  (* workers alive across all teams, now *)
    limit : int;  (* current budget *)
  }

  let lock = Mutex.create ()

  (* all under [lock] *)
  let idle : team list ref = ref []
  let live_workers = ref 0
  let limit = ref (max 0 (Domain.recommended_domain_count () - 1))
  let borrows = ref 0
  let spawns = ref 0
  let capped = ref 0
  let denied = ref 0
  let exit_hooked = ref false

  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let set_limit n = locked (fun () -> limit := max 0 n)

  let shutdown_idle () =
    let teams =
      locked (fun () ->
          let ts = !idle in
          idle := [];
          live_workers :=
            List.fold_left (fun acc t -> acc - t.size) !live_workers ts;
          ts)
    in
    List.iter shutdown teams

  let borrow ~want () =
    let want = max 0 want in
    if want = 0 then None
    else
      let decision =
        locked (fun () ->
            match !idle with
            | t :: rest ->
                (* reuse any parked team: worker count never affects
                   results, only how chunks spread across domains *)
                idle := rest;
                incr borrows;
                `Team t
            | [] ->
                let room = !limit - !live_workers in
                if room <= 0 then begin
                  incr denied;
                  `Denied
                end
                else begin
                  let size = min want room in
                  if size < want then incr capped;
                  live_workers := !live_workers + size;
                  incr borrows;
                  incr spawns;
                  if not !exit_hooked then begin
                    exit_hooked := true;
                    at_exit shutdown_idle
                  end;
                  `Spawn size
                end)
      in
      match decision with
      | `Team t -> Some t
      | `Denied -> None
      | `Spawn size -> Some (create ~workers:size)

  let release = function
    | None -> ()
    | Some t -> locked (fun () -> idle := t :: !idle)

  let stats () =
    locked (fun () ->
        {
          borrows = !borrows;
          spawns = !spawns;
          capped = !capped;
          denied = !denied;
          workers = !live_workers;
          limit = !limit;
        })
end
