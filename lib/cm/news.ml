let check g ~axis src dst =
  let total = Geometry.size g in
  if Array.length src <> total || Array.length dst <> total then
    invalid_arg "News.shift: field size mismatch";
  if axis < 0 || axis >= Geometry.rank g then
    invalid_arg "News.shift: axis out of range"

(* In row-major order the positions whose [axis] coordinate lies in
   [lo_c, hi_c] form, within each block of [stride * extent] elements,
   one contiguous segment of [nrows * stride] elements starting at
   [lo_c * stride].  Both shift variants walk those segments in
   ascending position order, exactly like the original per-element
   [p / stride mod extent] loop but without the divisions. *)
let bounds ~delta ~extent =
  (max 0 (-delta), min (extent - 1) (extent - 1 - delta))

let shift g ~axis ~delta src dst =
  check g ~axis src dst;
  let stride = (Geometry.strides g).(axis) in
  let extent = Geometry.dim g axis in
  let total = Geometry.size g in
  let lo_c, hi_c = bounds ~delta ~extent in
  if lo_c > hi_c then 0
  else begin
    let block = stride * extent in
    let off = delta * stride in
    let seg = (hi_c - lo_c + 1) * stride in
    let nblocks = total / block in
    if src != dst || delta >= 0 then
      (* Array.blit has copy (memmove) semantics; the ascending
         reference loop shares them whenever it never reads a position
         it already overwrote, i.e. for distinct arrays or a
         non-negative delta. *)
      for b = 0 to nblocks - 1 do
        let start = (b * block) + (lo_c * stride) in
        Array.blit src (start + off) dst start seg
      done
    else
      (* src == dst with delta < 0: the reference loop reads positions
         it has already written; keep its exact ascending order. *)
      for b = 0 to nblocks - 1 do
        let start = (b * block) + (lo_c * stride) in
        for p = start to start + seg - 1 do
          dst.(p) <- src.(p + off)
        done
      done;
    nblocks * seg
  end

let shift_masked g ~axis ~delta ~mask src dst =
  if Array.length mask <> Geometry.size g then
    invalid_arg "News.shift_masked: mask size mismatch";
  check g ~axis src dst;
  let stride = (Geometry.strides g).(axis) in
  let extent = Geometry.dim g axis in
  let total = Geometry.size g in
  let lo_c, hi_c = bounds ~delta ~extent in
  if lo_c > hi_c then 0
  else begin
    let block = stride * extent in
    let off = delta * stride in
    let seg = (hi_c - lo_c + 1) * stride in
    let updated = ref 0 in
    for b = 0 to (total / block) - 1 do
      let start = (b * block) + (lo_c * stride) in
      for p = start to start + seg - 1 do
        if mask.(p) then begin
          dst.(p) <- src.(p + off);
          incr updated
        end
      done
    done;
    !updated
  end

(* Range-restricted variants for the sharded engine: write only the
   destination positions in [lo, hi).  The caller guarantees [src] and
   [dst] are distinct arrays (the in-place descending case stays on the
   serial path), so per-chunk writes are disjoint and blit copy
   semantics are safe at any delta. *)

let shift_sub g ~axis ~delta ~lo ~hi src dst =
  check g ~axis src dst;
  let stride = (Geometry.strides g).(axis) in
  let extent = Geometry.dim g axis in
  let lo_c, hi_c = bounds ~delta ~extent in
  if lo_c <= hi_c && lo < hi then begin
    let block = stride * extent in
    let off = delta * stride in
    let seg = (hi_c - lo_c + 1) * stride in
    for b = lo / block to (hi - 1) / block do
      let start = (b * block) + (lo_c * stride) in
      let s = max start lo and e = min (start + seg) hi in
      if s < e then Array.blit src (s + off) dst s (e - s)
    done
  end

let shift_masked_sub g ~axis ~delta ~mask ~lo ~hi src dst =
  if Array.length mask <> Geometry.size g then
    invalid_arg "News.shift_masked: mask size mismatch";
  check g ~axis src dst;
  let stride = (Geometry.strides g).(axis) in
  let extent = Geometry.dim g axis in
  let lo_c, hi_c = bounds ~delta ~extent in
  if lo_c <= hi_c && lo < hi then begin
    let block = stride * extent in
    let off = delta * stride in
    let seg = (hi_c - lo_c + 1) * stride in
    for b = lo / block to (hi - 1) / block do
      let start = (b * block) + (lo_c * stride) in
      let s = max start lo and e = min (start + seg) hi in
      for p = s to e - 1 do
        if mask.(p) then dst.(p) <- src.(p + off)
      done
    done
  end
