open Paris

exception Error of string
exception Fault = Fault.Fault

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type fdata = FInt of int array | FFloat of float array

type engine = [ `Fast | `Reference | `Sharded of int | `Native ]

(* Outcome of the one native-compilation attempt a machine makes: the
   Dynlink'd entry point, or the typed reason we fell back to the fast
   kernels (reported as [engine_effective] upstream). *)
type native_code =
  | NUnknown
  | NReady of Codegen.entry
  | NFallback of string

(* Live state of a fault plan: a cursor into the serial-sorted event
   array plus per-kind FIFO queues of armed transient faults (an armed
   router fault fires at the first router instruction at or after its
   serial, and so on). *)
type fstate = {
  f_events : (int * Fault.event) array;
  f_origin : string;  (* Fault.canonical of the plan *)
  mutable f_cursor : int;
  mutable f_router : int list;
  mutable f_news : int list;
  mutable f_chip : int list;
}

type t = {
  prog : program;
  meter : Cost.meter;
  regs : scalar array;
  fields : fdata array;
  contexts : Context.t array;
  labels : int array;  (* label id -> code index *)
  engine : engine;
  scratch : Router.scratch;  (* shared fan-in counters, both engines *)
  mutable cur : int;   (* current VP set, -1 before the first Cwith *)
  mutable rand_state : int;
  mutable fuel : int;
  mutable output : string list;  (* reversed *)
  mutable pc : int;
  (* Simulated time is attributed to the current region by accumulating
     into the region's own ref; a [Region] marker just swaps which ref
     [region_acc] points at, so the steady state never touches the
     hashtable. *)
  mutable region_acc : float ref;
  mutable region_name : string;  (* name region_acc accumulates into *)
  regions : (string, float ref) Hashtbl.t;  (* region -> elapsed ns *)
  mutable kernels : (unit -> unit) array option;  (* fast engine, lazy *)
  mutable skernels : (unit -> unit) array option;  (* sharded engine, lazy *)
  mutable native : native_code;  (* native engine, lazy *)
  mutable steam : Shard.team option;  (* borrowed for the current exec *)
  mutable icount : int;  (* executed instruction serial, both engines *)
  fstate : fstate option;
  mutable fault_log : string list;  (* reversed, like output *)
  (* Telemetry scope (Obs.null by default).  Strictly an observer: the
     machine only ever writes into it — region transitions, fault and
     checkpoint events, and the aggregate publish below — so a scope
     never changes program results (enforced by test/test_obs.ml). *)
  obs : Obs.t;
}

let fstate_of_plan ~from plan =
  let events = Fault.events plan in
  let n = Array.length events in
  let cursor = ref 0 in
  while !cursor < n && fst events.(!cursor) < from do incr cursor done;
  {
    f_events = events;
    f_origin = Fault.canonical plan;
    f_cursor = !cursor;
    f_router = [];
    f_news = [];
    f_chip = [];
  }

let resolve_labels prog =
  let labels = Array.make (max prog.nlabels 1) (-1) in
  Array.iteri
    (fun i instr ->
      match instr with
      | Label l ->
          if l < 0 || l >= prog.nlabels then error "undeclared label L%d" l;
          labels.(l) <- i
      | _ -> ())
    prog.code;
  labels

let check_engine = function
  | `Sharded s when s < 1 ->
      invalid_arg "Machine: shard count must be at least 1"
  | _ -> ()

let create ?(cost = Cost.cm2_16k) ?(seed = 12345) ?(fuel = 50_000_000)
    ?(engine = `Fast) ?faults ?(obs = Obs.null) prog =
  check_engine engine;
  let fields =
    Array.map
      (fun (vp, kind) ->
        let n = Geometry.size prog.geoms.(vp) in
        match kind with
        | KInt -> FInt (Array.make n 0)
        | KFloat -> FFloat (Array.make n 0.0))
      prog.fields
  in
  let contexts =
    Array.map (fun g -> Context.create (Geometry.size g)) prog.geoms
  in
  let regions = Hashtbl.create 16 in
  let region_acc = ref 0.0 in
  Hashtbl.add regions "(startup)" region_acc;
  {
    prog;
    meter = Cost.meter cost;
    regs = Array.make (max prog.nregs 1) (SInt 0);
    fields;
    contexts;
    labels = resolve_labels prog;
    engine;
    scratch = Router.scratch ();
    cur = -1;
    rand_state = seed land 0x3FFFFFFF;
    fuel;
    output = [];
    pc = 0;
    region_acc;
    region_name = "(startup)";
    regions;
    kernels = None;
    skernels = None;
    native = NUnknown;
    steam = None;
    icount = 0;
    fstate = Option.map (fstate_of_plan ~from:0) faults;
    fault_log = [];
    obs;
  }

let engine m = m.engine
let output m = List.rev m.output
let fault_log m = List.rev m.fault_log
let icount m = m.icount

let set_region m name =
  m.region_name <- name;
  (if Obs.enabled m.obs then
     Obs.point m.obs "cm.region"
       ~attrs:[ ("name", Obs.Json.Str name); ("icount", Obs.Json.Int m.icount) ]);
  match Hashtbl.find_opt m.regions name with
  | Some acc -> m.region_acc <- acc
  | None ->
      let acc = ref 0.0 in
      Hashtbl.add m.regions name acc;
      m.region_acc <- acc

let regions m =
  Hashtbl.fold
    (fun name ns acc ->
      if !ns <> 0.0 then (name, !ns /. 1.0e9) :: acc else acc)
    m.regions []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let program m = m.prog
let meter m = m.meter
let elapsed_seconds m = Cost.elapsed_seconds m.meter

(* ---- scalar helpers ---- *)

let to_int = function
  | SInt i -> i
  | SFloat _ -> error "expected an int scalar, got a float"

let to_float = function SInt i -> float_of_int i | SFloat f -> f
let truthy = function SInt i -> i <> 0 | SFloat f -> f <> 0.0

let lcg m =
  m.rand_state <- ((m.rand_state * 1103515245) + 12345) land 0x3FFFFFFF;
  m.rand_state

let rand_mod m modulus =
  if modulus <= 0 then error "rand: non-positive modulus %d" modulus;
  lcg m mod modulus

(* ---- operator tables ---- *)

(* OCaml leaves [lsl]/[asr] unspecified for shift amounts outside
   [0, Sys.int_size - 1]; make those a proper machine fault. *)
let checked_shl a b =
  if b < 0 || b >= Sys.int_size then
    error "shift amount %d is out of range (0..%d)" b (Sys.int_size - 1)
  else a lsl b

let checked_shr a b =
  if b < 0 || b >= Sys.int_size then
    error "shift amount %d is out of range (0..%d)" b (Sys.int_size - 1)
  else a asr b

let int_binop = function
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Div -> fun a b -> if b = 0 then error "division by zero" else a / b
  | Mod -> fun a b -> if b = 0 then error "modulo by zero" else a mod b
  | Min -> min
  | Max -> max
  | Land -> fun a b -> if a <> 0 && b <> 0 then 1 else 0
  | Lor -> fun a b -> if a <> 0 || b <> 0 then 1 else 0
  | Band -> ( land )
  | Bor -> ( lor )
  | Bxor -> ( lxor )
  | Shl -> checked_shl
  | Shr -> checked_shr
  | Eq -> fun a b -> if a = b then 1 else 0
  | Ne -> fun a b -> if a <> b then 1 else 0
  | Lt -> fun a b -> if a < b then 1 else 0
  | Le -> fun a b -> if a <= b then 1 else 0
  | Gt -> fun a b -> if a > b then 1 else 0
  | Ge -> fun a b -> if a >= b then 1 else 0
  | Any -> error "'any' is only valid in reductions"

let float_binop = function
  | Add -> ( +. )
  | Sub -> ( -. )
  | Mul -> ( *. )
  | Div -> ( /. )
  | Mod -> Float.rem
  | Min -> Float.min
  | Max -> Float.max
  | op -> error "operator %s is not valid on floats" (Paris.binop_name op)

let is_cmp = function Eq | Ne | Lt | Le | Gt | Ge -> true | _ -> false

let float_cmp = function
  | Eq -> ( = )
  | Ne -> ( <> )
  | Lt -> ( < )
  | Le -> ( <= )
  | Gt -> ( > )
  | Ge -> ( >= )
  | _ -> assert false

(* ---- front-end evaluation ---- *)

let fe_val m = function
  | Reg r -> m.regs.(r)
  | Imm s -> s
  | Fld f -> error "field f%d used as a front-end operand" f

let fe_bin op a b =
  if is_cmp op then SInt (if float_cmp op (to_float a) (to_float b) then 1 else 0)
  else
    match op with
    | Land -> SInt (if truthy a && truthy b then 1 else 0)
    | Lor -> SInt (if truthy a || truthy b then 1 else 0)
    | Band | Bor | Bxor | Shl | Shr -> SInt (int_binop op (to_int a) (to_int b))
    | Add | Sub | Mul | Div | Mod | Min | Max -> (
        match a, b with
        | SInt x, SInt y -> SInt (int_binop op x y)
        | _ -> SFloat (float_binop op (to_float a) (to_float b)))
    | Any -> error "'any' is only valid in reductions"
    | Eq | Ne | Lt | Le | Gt | Ge -> assert false

let fe_unop op a =
  match op with
  | Neg -> (match a with SInt i -> SInt (-i) | SFloat f -> SFloat (-.f))
  | Lnot -> SInt (if truthy a then 0 else 1)
  | Bnot -> SInt (lnot (to_int a))
  | ToFloat -> SFloat (to_float a)
  | ToInt -> (match a with SInt i -> SInt i | SFloat f -> SInt (int_of_float f))
  | Abs -> (
      match a with SInt i -> SInt (abs i) | SFloat f -> SFloat (Float.abs f))

(* ---- field access ---- *)

let field_data m f =
  if f < 0 || f >= Array.length m.fields then error "unknown field f%d" f;
  m.fields.(f)

let field_vpset m f = fst m.prog.fields.(f)

let field_ints m f =
  match field_data m f with
  | FInt a -> Array.copy a
  | FFloat _ -> error "field f%d is a float field" f

let field_floats m f =
  match field_data m f with
  | FFloat a -> Array.copy a
  | FInt _ -> error "field f%d is an int field" f

let set_field_ints m f data =
  match field_data m f with
  | FInt a ->
      if Array.length data <> Array.length a then
        error "set_field_ints: length mismatch on f%d" f;
      Array.blit data 0 a 0 (Array.length a)
  | FFloat _ -> error "field f%d is a float field" f

let set_field_floats m f data =
  match field_data m f with
  | FFloat a ->
      if Array.length data <> Array.length a then
        error "set_field_floats: length mismatch on f%d" f;
      Array.blit data 0 a 0 (Array.length a)
  | FInt _ -> error "field f%d is an int field" f

let reg m r = m.regs.(r)
let reg_int m r = to_int m.regs.(r)
let reg_float m r = to_float m.regs.(r)

(* ---- parallel evaluation helpers ---- *)

let cur_vp m = if m.cur < 0 then error "no VP set selected (missing Cwith)" else m.cur
let cur_geom m = m.prog.geoms.(cur_vp m)
let cur_size m = Geometry.size (cur_geom m)
let cur_ctx m = m.contexts.(cur_vp m)

let check_on_current m f what =
  if field_vpset m f <> cur_vp m then
    error "%s: field f%d is not on the current VP set vp%d" what f (cur_vp m)

(* Elementwise int getter for a parallel operand on the current VP set. *)
let geti m op : int -> int =
  match op with
  | Reg r ->
      let v = to_int m.regs.(r) in
      fun _ -> v
  | Imm (SInt v) -> fun _ -> v
  | Imm (SFloat _) -> error "float immediate in int parallel context"
  | Fld f -> (
      check_on_current m f "operand";
      match field_data m f with
      | FInt a -> Array.get a
      | FFloat _ -> error "float field f%d in int parallel context" f)

(* Elementwise float getter (ints are coerced). *)
let getf m op : int -> float =
  match op with
  | Reg r ->
      let v = to_float m.regs.(r) in
      fun _ -> v
  | Imm s ->
      let v = to_float s in
      fun _ -> v
  | Fld f -> (
      check_on_current m f "operand";
      match field_data m f with
      | FInt a -> fun p -> float_of_int a.(p)
      | FFloat a -> Array.get a)

(* Whether an operand is float-kinded (fields by declaration, scalars by
   their runtime value). *)
let operand_is_float m = function
  | Reg r -> ( match m.regs.(r) with SFloat _ -> true | SInt _ -> false)
  | Imm (SFloat _) -> true
  | Imm (SInt _) -> false
  | Fld f -> ( match field_data m f with FFloat _ -> true | FInt _ -> false)

(* ---- reference engine: per-instruction tree walking ---- *)

let exec_pmov m dst a =
  check_on_current m dst "pmov";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out ->
      let g = geti m a in
      Array.iteri (fun p act -> if act then out.(p) <- g p) mask
  | FFloat out ->
      let g = getf m a in
      Array.iteri (fun p act -> if act then out.(p) <- g p) mask

let exec_pbin m op dst a b =
  check_on_current m dst "pbin";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out ->
      if is_cmp op && (operand_is_float m a || operand_is_float m b) then begin
        let fa = getf m a and fb = getf m b in
        let cmp = float_cmp op in
        Array.iteri
          (fun p act -> if act then out.(p) <- (if cmp (fa p) (fb p) then 1 else 0))
          mask
      end
      else begin
        let f = int_binop op in
        let ia = geti m a and ib = geti m b in
        Array.iteri (fun p act -> if act then out.(p) <- f (ia p) (ib p)) mask
      end
  | FFloat out ->
      let f = float_binop op in
      let fa = getf m a and fb = getf m b in
      Array.iteri (fun p act -> if act then out.(p) <- f (fa p) (fb p)) mask

let exec_punop m op dst a =
  check_on_current m dst "punop";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst, op with
  | FInt out, ToInt ->
      let fa = getf m a in
      Array.iteri
        (fun p act -> if act then out.(p) <- int_of_float (fa p))
        mask
  | FInt out, _ ->
      let ia = geti m a in
      let f =
        match op with
        | Neg -> fun x -> -x
        | Lnot -> fun x -> if x = 0 then 1 else 0
        | Bnot -> lnot
        | Abs -> abs
        | ToInt -> assert false
        | ToFloat -> error "tofloat into an int field"
      in
      Array.iteri (fun p act -> if act then out.(p) <- f (ia p)) mask
  | FFloat out, _ ->
      let fa = getf m a in
      let f =
        match op with
        | Neg -> ( ~-. )
        | Abs -> Float.abs
        | ToFloat -> fun x -> x
        | Lnot | Bnot | ToInt -> error "integer unop into a float field"
      in
      Array.iteri (fun p act -> if act then out.(p) <- f (fa p)) mask

let exec_pcoord m dst axis =
  check_on_current m dst "pcoord";
  let g = cur_geom m in
  if axis < 0 || axis >= Geometry.rank g then error "pcoord: bad axis %d" axis;
  let stride = (Geometry.strides g).(axis) in
  let extent = Geometry.dim g axis in
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out ->
      Array.iteri
        (fun p act -> if act then out.(p) <- p / stride mod extent)
        mask
  | FFloat _ -> error "pcoord into a float field"

let exec_ptable m dst table =
  (* compile-time constant data: loaded with the program, charged as one
     elementwise move; written regardless of context *)
  check_on_current m dst "ptable";
  if Array.length table <> cur_size m then
    error "ptable: table length does not match the VP set";
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out -> Array.blit table 0 out 0 (Array.length out)
  | FFloat _ -> error "ptable into a float field"

let exec_prand m dst modulus =
  check_on_current m dst "prand";
  let modv = to_int (fe_val m modulus) in
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  match field_data m dst with
  | FInt out ->
      Array.iteri (fun p act -> if act then out.(p) <- rand_mod m modv) mask
  | FFloat _ -> error "prand into a float field"

let exec_psel m dst c a b =
  check_on_current m dst "psel";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_pe m.meter ~size:(cur_size m);
  let fc = getf m c in
  match field_data m dst with
  | FInt out ->
      let ia = geti m a and ib = geti m b in
      Array.iteri
        (fun p act -> if act then out.(p) <- (if fc p <> 0.0 then ia p else ib p))
        mask
  | FFloat out ->
      let fa = getf m a and fb = getf m b in
      Array.iteri
        (fun p act -> if act then out.(p) <- (if fc p <> 0.0 then fa p else fb p))
        mask

let addr_array m f =
  check_on_current m f "address";
  match field_data m f with
  | FInt a -> a
  | FFloat _ -> error "address field f%d must be an int field" f

let exec_pget m dst src addr =
  check_on_current m dst "pget";
  let mask = Context.active (cur_ctx m) in
  let addr = addr_array m addr in
  let stats =
    try
      match field_data m dst, field_data m src with
      | FInt d, FInt s ->
          Router.get ~scratch:m.scratch ~mask ~addr ~src:s ~dst:d ()
      | FFloat d, FFloat s ->
          Router.get ~scratch:m.scratch ~mask ~addr ~src:s ~dst:d ()
      | _ -> error "pget: kind mismatch between f%d and f%d" dst src
    with Invalid_argument msg -> error "pget: %s" msg
  in
  Cost.charge_router m.meter ~size:(cur_size m) ~messages:stats.messages
    ~max_fanin:stats.max_fanin

let int_combine = function
  | Ccheck -> Router.Overwrite_check ( = )
  | Cover -> Router.Combine (fun a _ -> a)
  | Cadd -> Router.Combine ( + )
  | Cmin -> Router.Combine min
  | Cmax -> Router.Combine max
  | Cor -> Router.Combine ( lor )
  | Cand -> Router.Combine ( land )
  | Cxor -> Router.Combine ( lxor )

let float_combine = function
  | Ccheck -> Router.Overwrite_check ( = )
  | Cover -> Router.Combine (fun a _ -> a)
  | Cadd -> Router.Combine ( +. )
  | Cmin -> Router.Combine Float.min
  | Cmax -> Router.Combine Float.max
  | Cor | Cand | Cxor -> error "bitwise combine on a float field"

let exec_psend m dst src addr combine =
  check_on_current m src "psend";
  let mask = Context.active (cur_ctx m) in
  let addr = addr_array m addr in
  let stats =
    try
      match field_data m dst, field_data m src with
      | FInt d, FInt s ->
          Router.send ~scratch:m.scratch ~mask ~addr ~src:s ~dst:d
            ~combine:(int_combine combine) ()
      | FFloat d, FFloat s ->
          Router.send ~scratch:m.scratch ~mask ~addr ~src:s ~dst:d
            ~combine:(float_combine combine) ()
      | _ -> error "psend: kind mismatch between f%d and f%d" dst src
    with
    | Invalid_argument msg -> error "psend: %s" msg
    | Router.Conflict a ->
        error
          "parallel assignment conflict: multiple distinct values sent to \
           element %d of field f%d"
          a dst
  in
  (* combining sends merge in the network, so they do not pay the
     destination fan-in serialisation that plain sends do *)
  let fanin = match combine with Ccheck -> stats.max_fanin | _ -> 1 in
  Cost.charge_router m.meter ~size:(cur_size m) ~messages:stats.messages
    ~max_fanin:fanin

let exec_pnews m dst src axis delta =
  check_on_current m dst "pnews";
  check_on_current m src "pnews";
  let g = cur_geom m in
  let mask = Context.active (cur_ctx m) in
  (try
     match field_data m dst, field_data m src with
     | FInt d, FInt s -> ignore (News.shift_masked g ~axis ~delta ~mask s d)
     | FFloat d, FFloat s -> ignore (News.shift_masked g ~axis ~delta ~mask s d)
     | _ -> error "pnews: kind mismatch between f%d and f%d" dst src
   with Invalid_argument msg -> error "pnews: %s" msg);
  Cost.charge_news m.meter ~size:(cur_size m)

let reduce_any mask get_first n identity =
  let rec go p = if p >= n then identity else if mask.(p) then get_first p else go (p + 1) in
  go 0

let exec_preduce m op r fld =
  check_on_current m fld "preduce";
  let mask = Context.active (cur_ctx m) in
  Cost.charge_reduce m.meter ~size:(cur_size m);
  let result =
    match field_data m fld with
    | FInt a ->
        if op = Any then
          SInt (reduce_any mask (Array.get a) (Array.length a) Paris.inf_int)
        else
          SInt
            (Scan.masked_reduce (int_binop op)
               (to_int (identity op KInt))
               mask a)
    | FFloat a ->
        if op = Any then
          SFloat (reduce_any mask (Array.get a) (Array.length a) infinity)
        else
          SFloat
            (Scan.masked_reduce (float_binop op)
               (to_float (identity op KFloat))
               mask a)
  in
  m.regs.(r) <- result

let exec_pcount m r =
  Cost.charge_reduce m.meter ~size:(cur_size m);
  m.regs.(r) <- SInt (Context.count_active (cur_ctx m))

let exec_preduce_axis m op dst src =
  check_on_current m src "preduce-axis";
  let dst_vp = field_vpset m dst in
  let outer = m.prog.geoms.(dst_vp) in
  let whole = cur_geom m in
  if not (Geometry.is_prefix_of outer whole) then
    error "preduce-axis: geometry of f%d is not a prefix of the current set" dst;
  let mask = Context.active (cur_ctx m) in
  Cost.charge_reduce m.meter ~size:(cur_size m);
  let outer_size = Geometry.size outer in
  (try
     match field_data m dst, field_data m src with
     | FInt d, FInt s ->
         let r =
           Scan.reduce_trailing_axes whole ~outer_size (int_binop op)
             (to_int (identity op KInt))
             mask s
         in
         Array.blit r 0 d 0 outer_size
     | FFloat d, FFloat s ->
         let r =
           Scan.reduce_trailing_axes whole ~outer_size (float_binop op)
             (to_float (identity op KFloat))
             mask s
         in
         Array.blit r 0 d 0 outer_size
     | _ -> error "preduce-axis: kind mismatch between f%d and f%d" dst src
   with Invalid_argument msg -> error "preduce-axis: %s" msg)

let exec_pscan m op dst src axis =
  check_on_current m dst "pscan";
  check_on_current m src "pscan";
  let g = cur_geom m in
  Cost.charge_scan m.meter ~size:(cur_size m);
  try
    match field_data m dst, field_data m src with
    | FInt d, FInt s ->
        let r = Scan.scan_axis g axis (int_binop op) s in
        Array.blit r 0 d 0 (Array.length d)
    | FFloat d, FFloat s ->
        let r = Scan.scan_axis g axis (float_binop op) s in
        Array.blit r 0 d 0 (Array.length d)
    | _ -> error "pscan: kind mismatch between f%d and f%d" dst src
  with Invalid_argument msg -> error "pscan: %s" msg

let exec_cand m fld =
  check_on_current m fld "cand";
  Cost.charge_context m.meter ~size:(cur_size m);
  let mask =
    match field_data m fld with
    | FInt a -> Array.map (fun v -> v <> 0) a
    | FFloat a -> Array.map (fun v -> v <> 0.0) a
  in
  Context.land_mask (cur_ctx m) mask

(* ---- fault injection ---- *)

(* Both engines call [inject] at the same point — after the fuel check,
   before any state of the instruction is touched — so a plan perturbs
   them bit-identically, and a raised [Fault] leaves the machine exactly
   at the pre-instruction state (resumable from an earlier checkpoint). *)

(* Short mnemonic for fault messages (deterministic, engine-independent). *)
let mnemonic = function
  | Pmov _ -> "pmov"
  | Pbin _ -> "pbin"
  | Punop _ -> "punop"
  | Pcoord _ -> "pcoord"
  | Ptable _ -> "ptable"
  | Prand _ -> "prand"
  | Psel _ -> "psel"
  | Pget _ -> "pget"
  | Psend _ -> "psend"
  | Pnews _ -> "pnews"
  | Preduce _ -> "preduce"
  | Pcount _ -> "pcount"
  | Preduce_axis _ -> "preduce-axis"
  | Pscan _ -> "pscan"
  | Cpush -> "cpush"
  | Cand _ -> "cand"
  | Cpop -> "cpop"
  | Creset -> "creset"
  | Cread _ -> "cread"
  | _ -> "fe"

(* Which hardware an instruction exercises: the general router, the NEWS
   wires, or (for every other processor-array sweep) some VP chip.
   Front-end-only instructions exercise none of them. *)
type iclass = CRouter | CNews | CChip | CFront

let instr_class = function
  | Pget _ | Psend _ -> CRouter
  | Pnews _ -> CNews
  | Pmov _ | Pbin _ | Punop _ | Pcoord _ | Ptable _ | Prand _ | Psel _
  | Preduce _ | Pcount _ | Preduce_axis _ | Pscan _ | Cpush | Cand _ | Cpop
  | Creset | Cread _ ->
      CChip
  | _ -> CFront

(* Memory bit flips resolve raw plan coordinates modulo the actual
   field/element/bit counts, so any integers address something real. *)
let apply_flip m ~field ~element ~bit =
  let nf = Array.length m.fields in
  if nf > 0 then begin
    let f = ((field mod nf) + nf) mod nf in
    let log kind e b =
      m.fault_log <-
        Printf.sprintf "bit flip at instruction %d: f%d[%d] bit %d (%s)"
          m.icount f e b kind
        :: m.fault_log;
      if Obs.enabled m.obs then begin
        Obs.count m.obs "cm.faults.flips" 1;
        Obs.point m.obs "cm.fault.flip"
          ~attrs:
            [
              ("icount", Obs.Json.Int m.icount);
              ("field", Obs.Json.Int f);
              ("element", Obs.Json.Int e);
              ("bit", Obs.Json.Int b);
              ("kind", Obs.Json.Str kind);
            ]
      end
    in
    match m.fields.(f) with
    | FInt a ->
        let len = Array.length a in
        if len > 0 then begin
          let e = ((element mod len) + len) mod len in
          let b = ((bit mod 32) + 32) mod 32 in
          a.(e) <- a.(e) lxor (1 lsl b);
          log "int" e b
        end
    | FFloat a ->
        let len = Array.length a in
        if len > 0 then begin
          let e = ((element mod len) + len) mod len in
          let b = ((bit mod 64) + 64) mod 64 in
          a.(e) <-
            Int64.float_of_bits
              (Int64.logxor (Int64.bits_of_float a.(e)) (Int64.shift_left 1L b));
          log "float" e b
        end
  end

let fire m instr kind sched =
  let msg =
    Printf.sprintf "transient %s fault at instruction %d (%s, armed at %d)"
      (Fault.kind_name kind) m.icount (mnemonic instr) sched
  in
  m.fault_log <- msg :: m.fault_log;
  if Obs.enabled m.obs then begin
    Obs.count m.obs "cm.faults.transients" 1;
    Obs.point m.obs "cm.fault.transient"
      ~attrs:
        [
          ("icount", Obs.Json.Int m.icount);
          ("kind", Obs.Json.Str (Fault.kind_name kind));
          ("armed_at", Obs.Json.Int sched);
          ("instr", Obs.Json.Str (mnemonic instr));
        ]
  end;
  raise (Fault.Fault msg)

let inject m instr =
  match m.fstate with
  | None -> ()
  | Some fs ->
      let s = m.icount in
      let n = Array.length fs.f_events in
      (* absorb every event scheduled at or before this serial: flips
         apply immediately, transients arm on their kind's queue *)
      while fs.f_cursor < n && fst fs.f_events.(fs.f_cursor) <= s do
        let sched, ev = fs.f_events.(fs.f_cursor) in
        fs.f_cursor <- fs.f_cursor + 1;
        match ev with
        | Fault.Flip { field; element; bit } -> apply_flip m ~field ~element ~bit
        | Fault.Transient Fault.Router -> fs.f_router <- fs.f_router @ [ sched ]
        | Fault.Transient Fault.News -> fs.f_news <- fs.f_news @ [ sched ]
        | Fault.Transient Fault.Chip -> fs.f_chip <- fs.f_chip @ [ sched ]
      done;
      if fs.f_router <> [] || fs.f_news <> [] || fs.f_chip <> [] then begin
        (* an armed fault fires at the first instruction that exercises
           its hardware; a chip fault can fire on any processor sweep *)
        let fire_chip () =
          match fs.f_chip with
          | sched :: rest ->
              fs.f_chip <- rest;
              fire m instr Fault.Chip sched
          | [] -> ()
        in
        match instr_class instr with
        | CRouter -> (
            match fs.f_router with
            | sched :: rest ->
                fs.f_router <- rest;
                fire m instr Fault.Router sched
            | [] -> fire_chip ())
        | CNews -> (
            match fs.f_news with
            | sched :: rest ->
                fs.f_news <- rest;
                fire m instr Fault.News sched
            | [] -> fire_chip ())
        | CChip -> fire_chip ()
        | CFront -> ()
      end

let run_reference ?steps m =
  let code = m.prog.code in
  let n = Array.length code in
  let budget = ref (match steps with None -> max_int | Some s -> s) in
  let jump l =
    let target = m.labels.(l) in
    if target < 0 then error "jump to unplaced label L%d" l;
    m.pc <- target
  in
  while m.pc < n && !budget > 0 do
    if m.fuel <= 0 then error "fuel exhausted (non-terminating program?)";
    let i = m.pc in
    inject m code.(i);
    m.fuel <- m.fuel - 1;
    m.icount <- m.icount + 1;
    m.pc <- m.pc + 1;
    decr budget;
    let t0 = m.meter.Cost.elapsed_ns in
    (match code.(i) with
    | Label _ | Comment _ -> ()
    | Region r -> set_region m r
    | Fprint (s, a) ->
        let line =
          match a with
          | None -> s
          | Some op -> (
              match fe_val m op with
              | SInt i -> Printf.sprintf "%s%d" s i
              | SFloat f -> Printf.sprintf "%s%g" s f)
        in
        m.output <- line :: m.output
    | Halt -> m.pc <- n
    | Fmov (r, a) ->
        Cost.charge_fe m.meter;
        m.regs.(r) <- fe_val m a
    | Fbin (op, r, a, b) ->
        Cost.charge_fe m.meter;
        m.regs.(r) <- fe_bin op (fe_val m a) (fe_val m b)
    | Funop (op, r, a) ->
        Cost.charge_fe m.meter;
        m.regs.(r) <- fe_unop op (fe_val m a)
    | Frand (r, a) ->
        Cost.charge_fe m.meter;
        m.regs.(r) <- SInt (rand_mod m (to_int (fe_val m a)))
    | Fread (r, fld, a) ->
        Cost.charge_fe_cm m.meter;
        let addr = to_int (fe_val m a) in
        (match field_data m fld with
        | FInt arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fread: address %d out of range on f%d" addr fld;
            m.regs.(r) <- SInt arr.(addr)
        | FFloat arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fread: address %d out of range on f%d" addr fld;
            m.regs.(r) <- SFloat arr.(addr))
    | Fwrite (fld, a, v) ->
        Cost.charge_fe_cm m.meter;
        let addr = to_int (fe_val m a) in
        let value = fe_val m v in
        (match field_data m fld with
        | FInt arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fwrite: address %d out of range on f%d" addr fld;
            arr.(addr) <- to_int value
        | FFloat arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fwrite: address %d out of range on f%d" addr fld;
            arr.(addr) <- to_float value)
    | Jmp l ->
        Cost.charge_fe m.meter;
        jump l
    | Jz (a, l) ->
        Cost.charge_fe m.meter;
        if not (truthy (fe_val m a)) then jump l
    | Jnz (a, l) ->
        Cost.charge_fe m.meter;
        if truthy (fe_val m a) then jump l
    | Pmov (dst, a) -> exec_pmov m dst a
    | Pbin (op, dst, a, b) -> exec_pbin m op dst a b
    | Punop (op, dst, a) -> exec_punop m op dst a
    | Pcoord (dst, axis) -> exec_pcoord m dst axis
    | Ptable (dst, table) -> exec_ptable m dst table
    | Prand (dst, modulus) -> exec_prand m dst modulus
    | Psel (dst, c, a, b) -> exec_psel m dst c a b
    | Pget (dst, src, addr) -> exec_pget m dst src addr
    | Psend (dst, src, addr, combine) -> exec_psend m dst src addr combine
    | Pnews (dst, src, axis, delta) -> exec_pnews m dst src axis delta
    | Preduce (op, r, fld) -> exec_preduce m op r fld
    | Pcount r -> exec_pcount m r
    | Preduce_axis (op, dst, src) -> exec_preduce_axis m op dst src
    | Pscan (op, dst, src, axis) -> exec_pscan m op dst src axis
    | Cwith vp ->
        if vp < 0 || vp >= Array.length m.prog.geoms then
          error "cwith: unknown VP set vp%d" vp;
        Cost.charge_fe m.meter;
        m.cur <- vp
    | Cpush ->
        Cost.charge_context m.meter ~size:(cur_size m);
        Context.push (cur_ctx m)
    | Cand fld -> exec_cand m fld
    | Cpop ->
        Cost.charge_context m.meter ~size:(cur_size m);
        (try Context.pop (cur_ctx m)
         with Failure _ -> error "cpop: context stack underflow")
    | Creset ->
        Cost.charge_context m.meter ~size:(cur_size m);
        Context.reset (cur_ctx m)
    | Cread fld ->
        check_on_current m fld "cread";
        Cost.charge_context m.meter ~size:(cur_size m);
        (match field_data m fld with
        | FInt out ->
            let mask = Context.active (cur_ctx m) in
            Array.iteri (fun p act -> out.(p) <- (if act then 1 else 0)) mask
        | FFloat _ -> error "cread into a float field"));
    let dt = m.meter.Cost.elapsed_ns -. t0 in
    if dt > 0.0 then m.region_acc := !(m.region_acc) +. dt
  done

(* ---- fast engine: pre-decoded instruction kernels ---- *)

(* [compile] translates the program once into an array of closures, one
   per instruction, with operand shapes, field kinds, VP-set ids, label
   targets and geometry constants resolved at decode time.  The run loop
   is then [kernels.(pc) ()] over monomorphic int/float array loops.

   The invariant (enforced by test/test_engine.ml) is bit-identical
   observable behaviour with [run_reference]: same register, field and
   output contents, same statistics and simulated nanoseconds, same
   error messages, same LCG stream, including the exact order of
   per-element effects (router deliveries, rand draws, partial writes
   before a mid-loop fault).  Errors the reference discovers while
   executing (bad operator for a kind, operand kind mismatch, ...) are
   deferred here into lazy values forced at the same point of the
   kernel, after the same checks and charges. *)

(* A parallel operand resolves once per execution (registers are read at
   execution time) to one of these shapes; the loops specialize on them. *)
type ires = IArr of int array | IVal of int
type fres = FArr of float array | FIArr of int array | FVal of float

let iget r p = match r with IArr a -> Array.unsafe_get a p | IVal v -> v

let fget r p =
  match r with
  | FArr a -> Array.unsafe_get a p
  | FIArr a -> float_of_int (Array.unsafe_get a p)
  | FVal v -> v

(* Index safety: every loop below runs p over [lo, hi) with 0 <= lo <=
   hi <= nv where nv is the VP-set size, and decode only admits field
   arrays of exactly that length, so the unsafe accesses are in bounds
   by construction.  The fast engine passes the whole range [0, nv);
   the sharded engine passes one chunk per call, with disjoint chunks
   covering [0, nv), so the union of the writes is identical. *)

let mov_int ctx lo hi (out : int array) r =
  if Context.all_active ctx then
    match r with
    | IArr a -> Array.blit a lo out lo (hi - lo)
    | IVal v -> Array.fill out lo (hi - lo) v
  else
    let mask = Context.active ctx in
    match r with
    | IArr a ->
        for p = lo to hi - 1 do
          if Array.unsafe_get mask p then
            Array.unsafe_set out p (Array.unsafe_get a p)
        done
    | IVal v ->
        for p = lo to hi - 1 do
          if Array.unsafe_get mask p then Array.unsafe_set out p v
        done

let mov_float ctx lo hi (out : float array) r =
  if Context.all_active ctx then
    match r with
    | FArr a -> Array.blit a lo out lo (hi - lo)
    | FVal v -> Array.fill out lo (hi - lo) v
    | FIArr a ->
        for p = lo to hi - 1 do
          Array.unsafe_set out p (float_of_int (Array.unsafe_get a p))
        done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then Array.unsafe_set out p (fget r p)
    done

let bin_int ctx lo hi (out : int array) (f : int -> int -> int) ra rb =
  if Context.all_active ctx then
    match ra, rb with
    | IArr a, IArr b ->
        for p = lo to hi - 1 do
          Array.unsafe_set out p
            (f (Array.unsafe_get a p) (Array.unsafe_get b p))
        done
    | IArr a, IVal k ->
        for p = lo to hi - 1 do
          Array.unsafe_set out p (f (Array.unsafe_get a p) k)
        done
    | IVal k, IArr b ->
        for p = lo to hi - 1 do
          Array.unsafe_set out p (f k (Array.unsafe_get b p))
        done
    | IVal x, IVal y ->
        for p = lo to hi - 1 do Array.unsafe_set out p (f x y) done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then
        Array.unsafe_set out p (f (iget ra p) (iget rb p))
    done

let bin_float ctx lo hi (out : float array) (f : float -> float -> float) ra rb
    =
  if Context.all_active ctx then
    match ra, rb with
    | FArr a, FArr b ->
        for p = lo to hi - 1 do
          Array.unsafe_set out p
            (f (Array.unsafe_get a p) (Array.unsafe_get b p))
        done
    | _ ->
        for p = lo to hi - 1 do
          Array.unsafe_set out p (f (fget ra p) (fget rb p))
        done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then
        Array.unsafe_set out p (f (fget ra p) (fget rb p))
    done

let cmp_float ctx lo hi (out : int array) (cmp : float -> float -> bool) ra rb
    =
  if Context.all_active ctx then
    for p = lo to hi - 1 do
      Array.unsafe_set out p (if cmp (fget ra p) (fget rb p) then 1 else 0)
    done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then
        Array.unsafe_set out p (if cmp (fget ra p) (fget rb p) then 1 else 0)
    done

let un_int ctx lo hi (out : int array) (f : int -> int) r =
  if Context.all_active ctx then
    match r with
    | IArr a ->
        for p = lo to hi - 1 do
          Array.unsafe_set out p (f (Array.unsafe_get a p))
        done
    | IVal v -> for p = lo to hi - 1 do Array.unsafe_set out p (f v) done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then Array.unsafe_set out p (f (iget r p))
    done

let un_float ctx lo hi (out : float array) (f : float -> float) r =
  if Context.all_active ctx then
    for p = lo to hi - 1 do Array.unsafe_set out p (f (fget r p)) done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then Array.unsafe_set out p (f (fget r p))
    done

let toint_loop ctx lo hi (out : int array) r =
  if Context.all_active ctx then
    for p = lo to hi - 1 do
      Array.unsafe_set out p (int_of_float (fget r p))
    done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then
        Array.unsafe_set out p (int_of_float (fget r p))
    done

let sel_test rc p =
  match rc with
  | FArr c -> Array.unsafe_get c p <> 0.0
  | FIArr c -> Array.unsafe_get c p <> 0
  | FVal v -> v <> 0.0

let sel_int ctx lo hi (out : int array) rc ra rb =
  if Context.all_active ctx then
    for p = lo to hi - 1 do
      Array.unsafe_set out p (if sel_test rc p then iget ra p else iget rb p)
    done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then
        Array.unsafe_set out p (if sel_test rc p then iget ra p else iget rb p)
    done

let sel_float ctx lo hi (out : float array) rc ra rb =
  if Context.all_active ctx then
    for p = lo to hi - 1 do
      Array.unsafe_set out p (if sel_test rc p then fget ra p else fget rb p)
    done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then
        Array.unsafe_set out p (if sel_test rc p then fget ra p else fget rb p)
    done

(* Ranged coordinate fill (Pcoord's loop body, shared with the sharded
   engine). *)
let coord_loop ctx lo hi (out : int array) ~stride ~extent =
  if Context.all_active ctx then
    for p = lo to hi - 1 do
      Array.unsafe_set out p (p / stride mod extent)
    done
  else
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      if Array.unsafe_get mask p then
        Array.unsafe_set out p (p / stride mod extent)
    done

(* Ranged context read (Cread's loop body). *)
let cread_loop ctx lo hi (out : int array) =
  if Context.all_active ctx then Array.fill out lo (hi - lo) 1
  else begin
    let mask = Context.active ctx in
    for p = lo to hi - 1 do
      Array.unsafe_set out p (if Array.unsafe_get mask p then 1 else 0)
    done
  end

(* Resolvers for parallel operands.  Decode-time facts (field identity,
   kind, VP set) are burned in; register contents are read per execution.
   Errors keep the reference's message and are raised when the resolver
   runs, i.e. at the same point of the instruction the reference raises
   from [geti]/[getf]. *)

let dec_int m vp op : unit -> ires =
  match op with
  | Reg r -> fun () -> IVal (to_int m.regs.(r))
  | Imm (SInt v) ->
      let r = IVal v in
      fun () -> r
  | Imm (SFloat _) -> fun () -> error "float immediate in int parallel context"
  | Fld f -> (
      if field_vpset m f <> vp then
        fun () -> error "operand: field f%d is not on the current VP set vp%d" f vp
      else
        match field_data m f with
        | FInt a ->
            let r = IArr a in
            fun () -> r
        | FFloat _ ->
            fun () -> error "float field f%d in int parallel context" f)

let dec_float m vp op : unit -> fres =
  match op with
  | Reg r -> fun () -> FVal (to_float m.regs.(r))
  | Imm s ->
      let r = FVal (to_float s) in
      fun () -> r
  | Fld f -> (
      if field_vpset m f <> vp then
        fun () -> error "operand: field f%d is not on the current VP set vp%d" f vp
      else
        match field_data m f with
        | FInt a ->
            let r = FIArr a in
            fun () -> r
        | FFloat a ->
            let r = FArr a in
            fun () -> r)

(* Float-ness of an operand when it is decidable at decode time (fields
   and immediates); [None] means a register whose kind is dynamic. *)
let static_is_float m = function
  | Imm (SFloat _) -> Some true
  | Imm (SInt _) -> Some false
  | Fld f -> (
      match field_data m f with FFloat _ -> Some true | FInt _ -> Some false)
  | Reg _ -> None

(* Replicates [check_on_current] for a statically known field/VP pair. *)
let kcheck_cur m vp what f =
  if m.cur <> vp then
    if m.cur < 0 then error "no VP set selected (missing Cwith)"
    else error "%s: field f%d is not on the current VP set vp%d" what f m.cur

(* Static facts about a parallel destination/source field. *)
let kpfield m f =
  let vp = field_vpset m f in
  (vp, Geometry.size m.prog.geoms.(vp), m.contexts.(vp), field_data m f)

let decode m code_len instr : unit -> unit =
  let meter = m.meter in
  let check_cur vp what f = kcheck_cur m vp what f in
  let pfield f = kpfield m f in
  let dec_fe op =
    match op with
    | Reg r -> fun () -> m.regs.(r)
    | Imm s -> fun () -> s
    | Fld f -> fun () -> error "field f%d used as a front-end operand" f
  in
  (* Resolve the address field of a router op against the executing VP
     set, with [addr_array]'s error order: on-current first, then kind. *)
  let dec_addr vp f =
    if field_vpset m f <> vp then
      fun () ->
        (error "address: field f%d is not on the current VP set vp%d" f vp
          : int array)
    else
      match field_data m f with
      | FInt a -> fun () -> a
      | FFloat _ -> fun () -> error "address field f%d must be an int field" f
  in
  match instr with
  | Label _ | Comment _ -> fun () -> ()
  | Region r -> fun () -> set_region m r
  | Fprint (s, None) -> fun () -> m.output <- s :: m.output
  | Fprint (s, Some op) ->
      let g = dec_fe op in
      fun () ->
        let line =
          match g () with
          | SInt i -> Printf.sprintf "%s%d" s i
          | SFloat f -> Printf.sprintf "%s%g" s f
        in
        m.output <- line :: m.output
  | Halt -> fun () -> m.pc <- code_len
  | Fmov (r, a) ->
      let g = dec_fe a in
      fun () ->
        Cost.charge_fe meter;
        m.regs.(r) <- g ()
  | Fbin (op, r, a, b) ->
      let ga = dec_fe a and gb = dec_fe b in
      fun () ->
        Cost.charge_fe meter;
        (* the reference evaluates [fe_bin op (fe_val a) (fe_val b)];
           OCaml applies arguments right to left, so b's faults win *)
        let vb = gb () in
        let va = ga () in
        m.regs.(r) <- fe_bin op va vb
  | Funop (op, r, a) ->
      let g = dec_fe a in
      fun () ->
        Cost.charge_fe meter;
        m.regs.(r) <- fe_unop op (g ())
  | Frand (r, a) ->
      let g = dec_fe a in
      fun () ->
        Cost.charge_fe meter;
        m.regs.(r) <- SInt (rand_mod m (to_int (g ())))
  | Fread (r, fld, a) ->
      let fd = field_data m fld in
      let g = dec_fe a in
      fun () ->
        Cost.charge_fe_cm meter;
        let addr = to_int (g ()) in
        (match fd with
        | FInt arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fread: address %d out of range on f%d" addr fld;
            m.regs.(r) <- SInt arr.(addr)
        | FFloat arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fread: address %d out of range on f%d" addr fld;
            m.regs.(r) <- SFloat arr.(addr))
  | Fwrite (fld, a, v) ->
      let fd = field_data m fld in
      let ga = dec_fe a and gv = dec_fe v in
      fun () ->
        Cost.charge_fe_cm meter;
        let addr = to_int (ga ()) in
        let value = gv () in
        (match fd with
        | FInt arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fwrite: address %d out of range on f%d" addr fld;
            arr.(addr) <- to_int value
        | FFloat arr ->
            if addr < 0 || addr >= Array.length arr then
              error "fwrite: address %d out of range on f%d" addr fld;
            arr.(addr) <- to_float value)
  | Jmp l ->
      fun () ->
        Cost.charge_fe meter;
        let target = m.labels.(l) in
        if target < 0 then error "jump to unplaced label L%d" l;
        m.pc <- target
  | Jz (a, l) ->
      let g = dec_fe a in
      fun () ->
        Cost.charge_fe meter;
        if not (truthy (g ())) then begin
          let target = m.labels.(l) in
          if target < 0 then error "jump to unplaced label L%d" l;
          m.pc <- target
        end
  | Jnz (a, l) ->
      let g = dec_fe a in
      fun () ->
        Cost.charge_fe meter;
        if truthy (g ()) then begin
          let target = m.labels.(l) in
          if target < 0 then error "jump to unplaced label L%d" l;
          m.pc <- target
        end
  | Pmov (dst, a) -> (
      let vp, nv, ctx, fd = pfield dst in
      match fd with
      | FInt out ->
          let ga = dec_int m vp a in
          fun () ->
            check_cur vp "pmov" dst;
            Cost.charge_pe meter ~size:nv;
            mov_int ctx 0 nv out (ga ())
      | FFloat out ->
          let ga = dec_float m vp a in
          fun () ->
            check_cur vp "pmov" dst;
            Cost.charge_pe meter ~size:nv;
            mov_float ctx 0 nv out (ga ()))
  | Pbin (op, dst, a, b) -> (
      let vp, nv, ctx, fd = pfield dst in
      match fd with
      | FFloat out ->
          let lop = lazy (float_binop op) in
          let ga = dec_float m vp a and gb = dec_float m vp b in
          fun () ->
            check_cur vp "pbin" dst;
            Cost.charge_pe meter ~size:nv;
            let f = Lazy.force lop in
            let ra = ga () in
            let rb = gb () in
            bin_float ctx 0 nv out f ra rb
      | FInt out ->
          if is_cmp op then begin
            (* float compare if either operand is float-kinded; decided
               statically unless a register is involved *)
            let cmp = float_cmp op in
            let iop = int_binop op in
            let fa = dec_float m vp a and fb = dec_float m vp b in
            let ia = dec_int m vp a and ib = dec_int m vp b in
            let floatness =
              match static_is_float m a, static_is_float m b with
              | Some true, _ | _, Some true -> fun () -> true
              | Some false, Some false -> fun () -> false
              | _ -> fun () -> operand_is_float m a || operand_is_float m b
            in
            fun () ->
              check_cur vp "pbin" dst;
              Cost.charge_pe meter ~size:nv;
              if floatness () then begin
                let ra = fa () in
                let rb = fb () in
                cmp_float ctx 0 nv out cmp ra rb
              end
              else begin
                let ra = ia () in
                let rb = ib () in
                bin_int ctx 0 nv out iop ra rb
              end
          end
          else
            let lop = lazy (int_binop op) in
            let ia = dec_int m vp a and ib = dec_int m vp b in
            fun () ->
              check_cur vp "pbin" dst;
              Cost.charge_pe meter ~size:nv;
              let f = Lazy.force lop in
              let ra = ia () in
              let rb = ib () in
              bin_int ctx 0 nv out f ra rb)
  | Punop (op, dst, a) -> (
      let vp, nv, ctx, fd = pfield dst in
      match fd, op with
      | FInt out, ToInt ->
          let ga = dec_float m vp a in
          fun () ->
            check_cur vp "punop" dst;
            Cost.charge_pe meter ~size:nv;
            toint_loop ctx 0 nv out (ga ())
      | FInt out, _ ->
          let ga = dec_int m vp a in
          let lop =
            lazy
              (match op with
              | Neg -> fun x -> -x
              | Lnot -> fun x -> if x = 0 then 1 else 0
              | Bnot -> lnot
              | Abs -> abs
              | ToInt -> assert false
              | ToFloat -> error "tofloat into an int field")
          in
          fun () ->
            check_cur vp "punop" dst;
            Cost.charge_pe meter ~size:nv;
            (* reference order: operand first, then the operator check *)
            let ra = ga () in
            let f = Lazy.force lop in
            un_int ctx 0 nv out f ra
      | FFloat out, _ ->
          let ga = dec_float m vp a in
          let lop =
            lazy
              (match op with
              | Neg -> ( ~-. )
              | Abs -> Float.abs
              | ToFloat -> fun x -> x
              | Lnot | Bnot | ToInt -> error "integer unop into a float field")
          in
          fun () ->
            check_cur vp "punop" dst;
            Cost.charge_pe meter ~size:nv;
            let ra = ga () in
            let f = Lazy.force lop in
            un_float ctx 0 nv out f ra)
  | Pcoord (dst, axis) -> (
      let vp, nv, ctx, fd = pfield dst in
      let g = m.prog.geoms.(vp) in
      let axis_ok = axis >= 0 && axis < Geometry.rank g in
      let stride = if axis_ok then (Geometry.strides g).(axis) else 1 in
      let extent = if axis_ok then Geometry.dim g axis else 1 in
      match fd with
      | FInt out ->
          fun () ->
            check_cur vp "pcoord" dst;
            if not axis_ok then error "pcoord: bad axis %d" axis;
            Cost.charge_pe meter ~size:nv;
            coord_loop ctx 0 nv out ~stride ~extent
      | FFloat _ ->
          fun () ->
            check_cur vp "pcoord" dst;
            if not axis_ok then error "pcoord: bad axis %d" axis;
            Cost.charge_pe meter ~size:nv;
            error "pcoord into a float field")
  | Ptable (dst, table) -> (
      let vp, nv, _, fd = pfield dst in
      let len_ok = Array.length table = nv in
      match fd with
      | FInt out ->
          fun () ->
            check_cur vp "ptable" dst;
            if not len_ok then
              error "ptable: table length does not match the VP set";
            Cost.charge_pe meter ~size:nv;
            Array.blit table 0 out 0 nv
      | FFloat _ ->
          fun () ->
            check_cur vp "ptable" dst;
            if not len_ok then
              error "ptable: table length does not match the VP set";
            Cost.charge_pe meter ~size:nv;
            error "ptable into a float field")
  | Prand (dst, modulus) -> (
      let vp, nv, ctx, fd = pfield dst in
      let gm = dec_fe modulus in
      match fd with
      | FInt out ->
          fun () ->
            check_cur vp "prand" dst;
            let modv = to_int (gm ()) in
            Cost.charge_pe meter ~size:nv;
            if Context.all_active ctx then
              for p = 0 to nv - 1 do
                Array.unsafe_set out p (rand_mod m modv)
              done
            else
              let mask = Context.active ctx in
              for p = 0 to nv - 1 do
                if Array.unsafe_get mask p then
                  Array.unsafe_set out p (rand_mod m modv)
              done
      | FFloat _ ->
          fun () ->
            check_cur vp "prand" dst;
            let _ = to_int (gm ()) in
            Cost.charge_pe meter ~size:nv;
            error "prand into a float field")
  | Psel (dst, c, a, b) -> (
      let vp, nv, ctx, fd = pfield dst in
      let gc = dec_float m vp c in
      match fd with
      | FInt out ->
          let ga = dec_int m vp a and gb = dec_int m vp b in
          fun () ->
            check_cur vp "psel" dst;
            Cost.charge_pe meter ~size:nv;
            let rc = gc () in
            let ra = ga () in
            let rb = gb () in
            sel_int ctx 0 nv out rc ra rb
      | FFloat out ->
          let ga = dec_float m vp a and gb = dec_float m vp b in
          fun () ->
            check_cur vp "psel" dst;
            Cost.charge_pe meter ~size:nv;
            let rc = gc () in
            let ra = ga () in
            let rb = gb () in
            sel_float ctx 0 nv out rc ra rb)
  | Pget (dst, src, addr) ->
      let vp, nv, ctx, fd_dst = pfield dst in
      let fd_src = field_data m src in
      let gaddr = dec_addr vp addr in
      fun () ->
        check_cur vp "pget" dst;
        let mask = Context.active ctx in
        let addr = gaddr () in
        let stats =
          try
            match fd_dst, fd_src with
            | FInt d, FInt s ->
                Router.get ~scratch:m.scratch ~mask ~addr ~src:s ~dst:d ()
            | FFloat d, FFloat s ->
                Router.get ~scratch:m.scratch ~mask ~addr ~src:s ~dst:d ()
            | _ -> error "pget: kind mismatch between f%d and f%d" dst src
          with Invalid_argument msg -> error "pget: %s" msg
        in
        Cost.charge_router meter ~size:nv ~messages:stats.messages
          ~max_fanin:stats.max_fanin
  | Psend (dst, src, addr, combine) ->
      let vp, nv, ctx, fd_src = pfield src in
      let fd_dst = field_data m dst in
      let gaddr = dec_addr vp addr in
      let lcomb_i = lazy (int_combine combine) in
      let lcomb_f = lazy (float_combine combine) in
      let checking = combine = Ccheck in
      fun () ->
        check_cur vp "psend" src;
        let mask = Context.active ctx in
        let addr = gaddr () in
        let stats =
          try
            match fd_dst, fd_src with
            | FInt d, FInt s ->
                Router.send ~scratch:m.scratch ~mask ~addr ~src:s ~dst:d
                  ~combine:(Lazy.force lcomb_i) ()
            | FFloat d, FFloat s ->
                Router.send ~scratch:m.scratch ~mask ~addr ~src:s ~dst:d
                  ~combine:(Lazy.force lcomb_f) ()
            | _ -> error "psend: kind mismatch between f%d and f%d" dst src
          with
          | Invalid_argument msg -> error "psend: %s" msg
          | Router.Conflict a ->
              error
                "parallel assignment conflict: multiple distinct values sent \
                 to element %d of field f%d"
                a dst
        in
        let fanin = if checking then stats.max_fanin else 1 in
        Cost.charge_router meter ~size:nv ~messages:stats.messages
          ~max_fanin:fanin
  | Pnews (dst, src, axis, delta) ->
      let vp, nv, ctx, fd_dst = pfield dst in
      let vp_src = field_vpset m src in
      let fd_src = field_data m src in
      let g = m.prog.geoms.(vp) in
      fun () ->
        check_cur vp "pnews" dst;
        check_cur vp_src "pnews" src;
        (try
           match fd_dst, fd_src with
           | FInt d, FInt s ->
               if Context.all_active ctx then
                 ignore (News.shift g ~axis ~delta s d)
               else
                 ignore
                   (News.shift_masked g ~axis ~delta
                      ~mask:(Context.active ctx) s d)
           | FFloat d, FFloat s ->
               if Context.all_active ctx then
                 ignore (News.shift g ~axis ~delta s d)
               else
                 ignore
                   (News.shift_masked g ~axis ~delta
                      ~mask:(Context.active ctx) s d)
           | _ -> error "pnews: kind mismatch between f%d and f%d" dst src
         with Invalid_argument msg -> error "pnews: %s" msg);
        Cost.charge_news meter ~size:nv
  | Preduce (op, r, fld) -> (
      let vp, nv, ctx, fd = pfield fld in
      match fd with
      | FInt a ->
          if op = Any then
            fun () ->
              begin
                check_cur vp "preduce" fld;
                Cost.charge_reduce meter ~size:nv;
                let v =
                  if Context.all_active ctx && nv > 0 then a.(0)
                  else reduce_any (Context.active ctx) (Array.get a) nv Paris.inf_int
                in
                m.regs.(r) <- SInt v
              end
          else
            (* the reference evaluates the identity before the operator
               (right-to-left application), so keep that fault order *)
            let lident = lazy (to_int (identity op KInt)) in
            let lop = lazy (int_binop op) in
            fun () ->
              check_cur vp "preduce" fld;
              Cost.charge_reduce meter ~size:nv;
              let ident = Lazy.force lident in
              let f = Lazy.force lop in
              let v =
                if Context.all_active ctx then begin
                  let acc = ref ident in
                  for p = 0 to nv - 1 do
                    acc := f !acc (Array.unsafe_get a p)
                  done;
                  !acc
                end
                else Scan.masked_reduce f ident (Context.active ctx) a
              in
              m.regs.(r) <- SInt v
      | FFloat a ->
          if op = Any then
            fun () ->
              begin
                check_cur vp "preduce" fld;
                Cost.charge_reduce meter ~size:nv;
                let v =
                  if Context.all_active ctx && nv > 0 then a.(0)
                  else reduce_any (Context.active ctx) (Array.get a) nv infinity
                in
                m.regs.(r) <- SFloat v
              end
          else
            let lident = lazy (to_float (identity op KFloat)) in
            let lop = lazy (float_binop op) in
            fun () ->
              check_cur vp "preduce" fld;
              Cost.charge_reduce meter ~size:nv;
              let ident = Lazy.force lident in
              let f = Lazy.force lop in
              let v =
                if Context.all_active ctx then begin
                  let acc = ref ident in
                  for p = 0 to nv - 1 do
                    acc := f !acc (Array.unsafe_get a p)
                  done;
                  !acc
                end
                else Scan.masked_reduce f ident (Context.active ctx) a
              in
              m.regs.(r) <- SFloat v)
  | Pcount r ->
      fun () ->
        Cost.charge_reduce meter ~size:(cur_size m);
        m.regs.(r) <- SInt (Context.count_active (cur_ctx m))
  | Preduce_axis (op, dst, src) ->
      let vp, nv, ctx, fd_src = pfield src in
      let dst_vp = field_vpset m dst in
      let fd_dst = field_data m dst in
      let outer = m.prog.geoms.(dst_vp) in
      let whole = m.prog.geoms.(vp) in
      let prefix_ok = Geometry.is_prefix_of outer whole in
      let outer_size = Geometry.size outer in
      let lident_i = lazy (to_int (identity op KInt)) in
      let lident_f = lazy (to_float (identity op KFloat)) in
      fun () ->
        check_cur vp "preduce-axis" src;
        if not prefix_ok then
          error "preduce-axis: geometry of f%d is not a prefix of the current set"
            dst;
        let mask = Context.active ctx in
        Cost.charge_reduce meter ~size:nv;
        (try
           match fd_dst, fd_src with
           | FInt d, FInt s ->
               let ident = Lazy.force lident_i in
               let r =
                 Scan.reduce_trailing_axes whole ~outer_size (int_binop op)
                   ident mask s
               in
               Array.blit r 0 d 0 outer_size
           | FFloat d, FFloat s ->
               let ident = Lazy.force lident_f in
               let r =
                 Scan.reduce_trailing_axes whole ~outer_size (float_binop op)
                   ident mask s
               in
               Array.blit r 0 d 0 outer_size
           | _ -> error "preduce-axis: kind mismatch between f%d and f%d" dst src
         with Invalid_argument msg -> error "preduce-axis: %s" msg)
  | Pscan (op, dst, src, axis) ->
      let vp, nv, _, fd_dst = pfield dst in
      let vp_src = field_vpset m src in
      let fd_src = field_data m src in
      let g = m.prog.geoms.(vp) in
      fun () ->
        check_cur vp "pscan" dst;
        check_cur vp_src "pscan" src;
        Cost.charge_scan meter ~size:nv;
        (try
           match fd_dst, fd_src with
           | FInt d, FInt s ->
               let r = Scan.scan_axis g axis (int_binop op) s in
               Array.blit r 0 d 0 (Array.length d)
           | FFloat d, FFloat s ->
               let r = Scan.scan_axis g axis (float_binop op) s in
               Array.blit r 0 d 0 (Array.length d)
           | _ -> error "pscan: kind mismatch between f%d and f%d" dst src
         with Invalid_argument msg -> error "pscan: %s" msg)
  | Cwith vp ->
      let ok = vp >= 0 && vp < Array.length m.prog.geoms in
      fun () ->
        if not ok then error "cwith: unknown VP set vp%d" vp;
        Cost.charge_fe meter;
        m.cur <- vp
  | Cpush ->
      fun () ->
        Cost.charge_context meter ~size:(cur_size m);
        Context.push (cur_ctx m)
  | Cand fld -> (
      let vp, nv, ctx, fd = pfield fld in
      match fd with
      | FInt a ->
          fun () ->
            check_cur vp "cand" fld;
            Cost.charge_context meter ~size:nv;
            Context.land_ints ctx a
      | FFloat a ->
          fun () ->
            check_cur vp "cand" fld;
            Cost.charge_context meter ~size:nv;
            Context.land_floats ctx a)
  | Cpop ->
      fun () ->
        Cost.charge_context meter ~size:(cur_size m);
        (try Context.pop (cur_ctx m)
         with Failure _ -> error "cpop: context stack underflow")
  | Creset ->
      fun () ->
        Cost.charge_context meter ~size:(cur_size m);
        Context.reset (cur_ctx m)
  | Cread fld -> (
      let vp, nv, ctx, fd = pfield fld in
      match fd with
      | FInt out ->
          fun () ->
            check_cur vp "cread" fld;
            Cost.charge_context meter ~size:nv;
            cread_loop ctx 0 nv out
      | FFloat _ ->
          fun () ->
            check_cur vp "cread" fld;
            Cost.charge_context meter ~size:nv;
            error "cread into a float field")

let compile m =
  match m.kernels with
  | Some _ -> ()
  | None ->
      Obs.with_span m.obs "cm.decode" (fun () ->
          let code = m.prog.code in
          let n = Array.length code in
          m.kernels <-
            Some
              (Array.init n (fun i ->
                   (* a decode-time fault (e.g. an out-of-range field id in a
                      malformed program) becomes a kernel that re-raises it
                      when that instruction is reached *)
                   try decode m n code.(i)
                   with e -> fun () -> raise e)))

let run_fast ?steps m =
  compile m;
  let kernels = match m.kernels with Some k -> k | None -> assert false in
  let n = Array.length kernels in
  let meter = m.meter in
  let code = m.prog.code in
  let budget = ref (match steps with None -> max_int | Some s -> s) in
  while m.pc < n && !budget > 0 do
    if m.fuel <= 0 then error "fuel exhausted (non-terminating program?)";
    let i = m.pc in
    inject m (Array.unsafe_get code i);
    m.fuel <- m.fuel - 1;
    m.icount <- m.icount + 1;
    m.pc <- m.pc + 1;
    decr budget;
    let t0 = meter.Cost.elapsed_ns in
    (Array.unsafe_get kernels i) ();
    let dt = meter.Cost.elapsed_ns -. t0 in
    if dt > 0.0 then m.region_acc := !(m.region_acc) +. dt
  done

(* ---- sharded engine: SPMD execution of the pre-decoded stream ---- *)

(* VP sets at least this large fan their chunks out to the worker team;
   smaller sets run the same chunks inline on the main domain.  Either
   way the chunk layout alone determines the results (see Shard), so the
   threshold is a pure scheduling knob. *)
let shard_fanout_threshold = 2048

(* Whether an int Pbin can fault mid-loop.  The reference semantics
   leave the partial writes of every element before the faulting one in
   place, which only a serial ascending sweep reproduces — so division,
   modulo and shifts stay serial unless the right operand is an
   immediate that provably never faults. *)
let int_op_total op b =
  match op with
  | Add | Sub | Mul | Min | Max | Land | Lor | Band | Bor | Bxor | Eq | Ne
  | Lt | Le | Gt | Ge ->
      true
  | Div | Mod -> ( match b with Imm (SInt k) -> k <> 0 | _ -> false)
  | Shl | Shr -> (
      match b with
      | Imm (SInt k) -> k >= 0 && k < Sys.int_size
      | _ -> false)
  | Any -> false

(* Int reductions whose (operator, identity) pair is an exact monoid on
   OCaml ints: per-chunk partial folds combined in ascending chunk order
   reproduce the serial left fold bit-for-bit (63-bit wraparound
   arithmetic is exactly associative; min/max are idempotent, so the
   extra per-chunk identity seeds are absorbed; land/lor collapse to the
   same all/any-nonzero answer under any bracketing).  Floats are NOT
   here: float addition is not associative, so float reductions stay
   serial. *)
let int_reduce_exact = function
  | Add | Mul | Min | Max | Band | Bor | Bxor | Land | Lor -> true
  | _ -> false

(* Decode one instruction for the sharded engine.  Local (elementwise)
   kernels resolve operands and take their checks, charges and faults on
   the main domain in exactly the fast engine's order, then fan the
   write loop out over the VP set's chunks; edge kernels (NEWS) fan out
   per-chunk destination segments; everything order-sensitive falls back
   to the fast engine's serial kernel ([decode]), executed wholly on the
   main domain between fan-outs — the barrier the CM's global ops imply. *)
let decode_sharded m layouts code_len instr : unit -> unit =
  let meter = m.meter in
  let serial () = decode m code_len instr in
  let chunked vp nv =
    let layout = layouts.(vp) in
    let nch = Array.length layout in
    let fan_out = nv >= shard_fanout_threshold in
    let run body =
      if fan_out then Shard.run m.steam nch body
      else for c = 0 to nch - 1 do body c done
    in
    (layout, nch, run)
  in
  match instr with
  | Pmov (dst, a) -> (
      let vp, nv, ctx, fd = kpfield m dst in
      let layout, _, run = chunked vp nv in
      match fd with
      | FInt out ->
          let ga = dec_int m vp a in
          fun () ->
            kcheck_cur m vp "pmov" dst;
            Cost.charge_pe meter ~size:nv;
            let r = ga () in
            run (fun c ->
                let lo, hi = layout.(c) in
                mov_int ctx lo hi out r)
      | FFloat out ->
          let ga = dec_float m vp a in
          fun () ->
            kcheck_cur m vp "pmov" dst;
            Cost.charge_pe meter ~size:nv;
            let r = ga () in
            run (fun c ->
                let lo, hi = layout.(c) in
                mov_float ctx lo hi out r))
  | Pbin (op, dst, a, b) -> (
      let vp, nv, ctx, fd = kpfield m dst in
      let layout, _, run = chunked vp nv in
      match fd with
      | FFloat out ->
          let lop = lazy (float_binop op) in
          let ga = dec_float m vp a and gb = dec_float m vp b in
          fun () ->
            kcheck_cur m vp "pbin" dst;
            Cost.charge_pe meter ~size:nv;
            let f = Lazy.force lop in
            let ra = ga () in
            let rb = gb () in
            run (fun c ->
                let lo, hi = layout.(c) in
                bin_float ctx lo hi out f ra rb)
      | FInt out ->
          if is_cmp op then begin
            let cmp = float_cmp op in
            let iop = int_binop op in
            let fa = dec_float m vp a and fb = dec_float m vp b in
            let ia = dec_int m vp a and ib = dec_int m vp b in
            let floatness =
              match static_is_float m a, static_is_float m b with
              | Some true, _ | _, Some true -> fun () -> true
              | Some false, Some false -> fun () -> false
              | _ -> fun () -> operand_is_float m a || operand_is_float m b
            in
            fun () ->
              kcheck_cur m vp "pbin" dst;
              Cost.charge_pe meter ~size:nv;
              if floatness () then begin
                let ra = fa () in
                let rb = fb () in
                run (fun c ->
                    let lo, hi = layout.(c) in
                    cmp_float ctx lo hi out cmp ra rb)
              end
              else begin
                let ra = ia () in
                let rb = ib () in
                run (fun c ->
                    let lo, hi = layout.(c) in
                    bin_int ctx lo hi out iop ra rb)
              end
          end
          else if int_op_total op b then
            let lop = lazy (int_binop op) in
            let ia = dec_int m vp a and ib = dec_int m vp b in
            fun () ->
              kcheck_cur m vp "pbin" dst;
              Cost.charge_pe meter ~size:nv;
              let f = Lazy.force lop in
              let ra = ia () in
              let rb = ib () in
              run (fun c ->
                  let lo, hi = layout.(c) in
                  bin_int ctx lo hi out f ra rb)
          else serial ())
  | Punop (op, dst, a) -> (
      let vp, nv, ctx, fd = kpfield m dst in
      let layout, _, run = chunked vp nv in
      match fd, op with
      | FInt out, ToInt ->
          let ga = dec_float m vp a in
          fun () ->
            kcheck_cur m vp "punop" dst;
            Cost.charge_pe meter ~size:nv;
            let r = ga () in
            run (fun c ->
                let lo, hi = layout.(c) in
                toint_loop ctx lo hi out r)
      | FInt out, _ ->
          let ga = dec_int m vp a in
          let lop =
            lazy
              (match op with
              | Neg -> fun x -> -x
              | Lnot -> fun x -> if x = 0 then 1 else 0
              | Bnot -> lnot
              | Abs -> abs
              | ToInt -> assert false
              | ToFloat -> error "tofloat into an int field")
          in
          fun () ->
            kcheck_cur m vp "punop" dst;
            Cost.charge_pe meter ~size:nv;
            let ra = ga () in
            let f = Lazy.force lop in
            run (fun c ->
                let lo, hi = layout.(c) in
                un_int ctx lo hi out f ra)
      | FFloat out, _ ->
          let ga = dec_float m vp a in
          let lop =
            lazy
              (match op with
              | Neg -> ( ~-. )
              | Abs -> Float.abs
              | ToFloat -> fun x -> x
              | Lnot | Bnot | ToInt -> error "integer unop into a float field")
          in
          fun () ->
            kcheck_cur m vp "punop" dst;
            Cost.charge_pe meter ~size:nv;
            let ra = ga () in
            let f = Lazy.force lop in
            run (fun c ->
                let lo, hi = layout.(c) in
                un_float ctx lo hi out f ra))
  | Pcoord (dst, axis) -> (
      let vp, nv, ctx, fd = kpfield m dst in
      let g = m.prog.geoms.(vp) in
      let axis_ok = axis >= 0 && axis < Geometry.rank g in
      let stride = if axis_ok then (Geometry.strides g).(axis) else 1 in
      let extent = if axis_ok then Geometry.dim g axis else 1 in
      let layout, _, run = chunked vp nv in
      match fd with
      | FInt out ->
          fun () ->
            kcheck_cur m vp "pcoord" dst;
            if not axis_ok then error "pcoord: bad axis %d" axis;
            Cost.charge_pe meter ~size:nv;
            run (fun c ->
                let lo, hi = layout.(c) in
                coord_loop ctx lo hi out ~stride ~extent)
      | FFloat _ -> serial ())
  | Psel (dst, cnd, a, b) -> (
      let vp, nv, ctx, fd = kpfield m dst in
      let layout, _, run = chunked vp nv in
      let gc = dec_float m vp cnd in
      match fd with
      | FInt out ->
          let ga = dec_int m vp a and gb = dec_int m vp b in
          fun () ->
            kcheck_cur m vp "psel" dst;
            Cost.charge_pe meter ~size:nv;
            let rc = gc () in
            let ra = ga () in
            let rb = gb () in
            run (fun c ->
                let lo, hi = layout.(c) in
                sel_int ctx lo hi out rc ra rb)
      | FFloat out ->
          let ga = dec_float m vp a and gb = dec_float m vp b in
          fun () ->
            kcheck_cur m vp "psel" dst;
            Cost.charge_pe meter ~size:nv;
            let rc = gc () in
            let ra = ga () in
            let rb = gb () in
            run (fun c ->
                let lo, hi = layout.(c) in
                sel_float ctx lo hi out rc ra rb))
  | Pnews (dst, src, axis, delta) when dst <> src -> (
      let vp, nv, ctx, fd_dst = kpfield m dst in
      let vp_src = field_vpset m src in
      let fd_src = field_data m src in
      let g = m.prog.geoms.(vp) in
      let axis_ok = axis >= 0 && axis < Geometry.rank g in
      let layout, _, run = chunked vp nv in
      let kinds_ok =
        match fd_dst, fd_src with
        | FInt _, FInt _ | FFloat _, FFloat _ -> true
        | _ -> false
      in
      if vp_src = vp && axis_ok && kinds_ok then
        fun () ->
          kcheck_cur m vp "pnews" dst;
          kcheck_cur m vp "pnews" src;
          (* distinct field ids are distinct arrays, so per-chunk
             destination writes never race with the shared reads *)
          (if Context.all_active ctx then
             run (fun c ->
                 let lo, hi = layout.(c) in
                 match fd_dst, fd_src with
                 | FInt d, FInt s -> News.shift_sub g ~axis ~delta ~lo ~hi s d
                 | FFloat d, FFloat s ->
                     News.shift_sub g ~axis ~delta ~lo ~hi s d
                 | _ -> assert false)
           else
             let mask = Context.active ctx in
             run (fun c ->
                 let lo, hi = layout.(c) in
                 match fd_dst, fd_src with
                 | FInt d, FInt s ->
                     News.shift_masked_sub g ~axis ~delta ~mask ~lo ~hi s d
                 | FFloat d, FFloat s ->
                     News.shift_masked_sub g ~axis ~delta ~mask ~lo ~hi s d
                 | _ -> assert false));
          Cost.charge_news meter ~size:nv
      else serial ())
  | Preduce (op, r, fld) when int_reduce_exact op -> (
      let vp, nv, ctx, fd = kpfield m fld in
      match fd with
      | FInt a ->
          let layout, nch, run = chunked vp nv in
          let lident = lazy (to_int (identity op KInt)) in
          let lop = lazy (int_binop op) in
          (* reused across executions; the join edge orders the worker
             writes before the main-domain combine *)
          let partials = Array.make nch 0 in
          fun () ->
            kcheck_cur m vp "preduce" fld;
            Cost.charge_reduce meter ~size:nv;
            let ident = Lazy.force lident in
            let f = Lazy.force lop in
            (if Context.all_active ctx then
               run (fun c ->
                   let lo, hi = layout.(c) in
                   let acc = ref ident in
                   for p = lo to hi - 1 do
                     acc := f !acc (Array.unsafe_get a p)
                   done;
                   Array.unsafe_set partials c !acc)
             else
               let mask = Context.active ctx in
               run (fun c ->
                   let lo, hi = layout.(c) in
                   let acc = ref ident in
                   for p = lo to hi - 1 do
                     if Array.unsafe_get mask p then
                       acc := f !acc (Array.unsafe_get a p)
                   done;
                   Array.unsafe_set partials c !acc));
            let acc = ref ident in
            for c = 0 to nch - 1 do
              acc := f !acc (Array.unsafe_get partials c)
            done;
            m.regs.(r) <- SInt !acc
      | FFloat _ -> serial ())
  | Cread fld -> (
      let vp, nv, ctx, fd = kpfield m fld in
      let layout, _, run = chunked vp nv in
      match fd with
      | FInt out ->
          fun () ->
            kcheck_cur m vp "cread" fld;
            Cost.charge_context meter ~size:nv;
            run (fun c ->
                let lo, hi = layout.(c) in
                cread_loop ctx lo hi out)
      | FFloat _ -> serial ())
  | _ -> serial ()

let compile_sharded m shards =
  match m.skernels with
  | Some _ -> ()
  | None ->
      Obs.with_span m.obs "cm.decode" (fun () ->
          let code = m.prog.code in
          let n = Array.length code in
          let layouts =
            Array.map
              (fun g -> Shard.layout ~shards (Geometry.size g))
              m.prog.geoms
          in
          m.skernels <-
            Some
              (Array.init n (fun i ->
                   try decode_sharded m layouts n code.(i)
                   with e -> fun () -> raise e)))

let run_sharded ?steps m =
  let kernels = match m.skernels with Some k -> k | None -> assert false in
  let n = Array.length kernels in
  let meter = m.meter in
  let code = m.prog.code in
  let budget = ref (match steps with None -> max_int | Some s -> s) in
  while m.pc < n && !budget > 0 do
    if m.fuel <= 0 then error "fuel exhausted (non-terminating program?)";
    let i = m.pc in
    inject m (Array.unsafe_get code i);
    m.fuel <- m.fuel - 1;
    m.icount <- m.icount + 1;
    m.pc <- m.pc + 1;
    decr budget;
    let t0 = meter.Cost.elapsed_ns in
    (Array.unsafe_get kernels i) ();
    let dt = meter.Cost.elapsed_ns -. t0 in
    if dt > 0.0 then m.region_acc := !(m.region_acc) +. dt
  done

(* ---- native engine: Dynlink'd code generated by Codegen ---- *)

(* Warn at most once per process: batch sweeps and the serve daemon run
   thousands of jobs, and a degraded host should say so exactly once. *)
let native_warned = ref false

let native_warn why =
  if not !native_warned then begin
    native_warned := true;
    Printf.eprintf
      "cm: native engine unavailable (%s); falling back to fast kernels\n%!" why
  end

let compile_native m =
  match m.native with
  | NReady _ -> Ok ()
  | NFallback why -> Error why
  | NUnknown -> (
      match m.fstate with
      | Some _ ->
          (* fault injection hooks the fast engine's dispatch loop; run
             there quietly — this is policy, not a degraded host *)
          let why = "fault injection runs on the fast kernels" in
          m.native <- NFallback why;
          Error why
      | None -> (
          match Codegen.entry_for ~obs:m.obs m.prog with
          | e ->
              m.native <- NReady e;
              Ok ()
          | exception Codegen.Unavailable r ->
              let why = Codegen.describe r in
              m.native <- NFallback why;
              native_warn why;
              Error why))

(* The engine that will actually execute: [`Native] resolves to itself
   or to [`Fast] depending on the compile outcome. *)
let effective_engine m =
  match m.engine with
  | `Native -> (
      match compile_native m with Ok () -> `Native | Error _ -> `Fast)
  | e -> e

let run_native ?steps m entry =
  (* the fast kernels back every instruction the generated code does not
     open-code, and bottle up decode-time errors exactly like run_fast *)
  compile m;
  let kernels = match m.kernels with Some k -> k | None -> assert false in
  let ctx =
    {
      Codegen.c_regs = m.regs;
      c_ints =
        Array.map (function FInt a -> a | FFloat _ -> [||]) m.fields;
      c_floats =
        Array.map (function FFloat a -> a | FInt _ -> [||]) m.fields;
      c_ctxs = m.contexts;
      c_sizes = Array.map Geometry.size m.prog.geoms;
      c_meter = m.meter;
      c_pc = m.pc;
      c_fuel = m.fuel;
      c_icount = m.icount;
      c_rand = m.rand_state;
      c_cur = m.cur;
      c_racc = m.region_acc;
      c_fail = (fun s -> Error s);
      c_not_cur =
        (fun what f curv ->
          if curv < 0 then Error "no VP set selected (missing Cwith)"
          else
            Error
              (Printf.sprintf "%s: field f%d is not on the current VP set vp%d"
                 what f curv));
      c_emit = (fun line -> m.output <- line :: m.output);
      c_region =
        (fun name ic ->
          m.icount <- ic;
          set_region m name;
          m.region_acc);
      c_kernel =
        (fun i curv ->
          m.cur <- curv;
          (Array.unsafe_get kernels i) ());
      c_fe_bin = fe_bin;
      c_fe_unop = fe_unop;
      c_to_int = to_int;
      c_to_float = to_float;
      c_truthy = truthy;
    }
  in
  let sync () =
    m.pc <- ctx.Codegen.c_pc;
    m.fuel <- ctx.Codegen.c_fuel;
    m.icount <- ctx.Codegen.c_icount;
    m.rand_state <- ctx.Codegen.c_rand;
    m.cur <- ctx.Codegen.c_cur;
    m.region_acc <- ctx.Codegen.c_racc
  in
  let budget = match steps with None -> max_int | Some s -> s in
  (try entry ctx budget
   with e ->
     sync ();
     raise e);
  sync ()

let exec ?steps m =
  match m.engine with
  | `Reference -> run_reference ?steps m
  | `Fast -> run_fast ?steps m
  | `Native -> (
      match compile_native m with
      | Ok () -> (
          match m.native with
          | NReady e -> run_native ?steps m e
          | NUnknown | NFallback _ -> assert false)
      | Error _ -> run_fast ?steps m)
  | `Sharded shards ->
      compile_sharded m shards;
      m.steam <- Shard.Pool.borrow ~want:(shards - 1) ();
      Fun.protect
        ~finally:(fun () ->
          Shard.Pool.release m.steam;
          m.steam <- None)
        (fun () -> run_sharded ?steps m)

let run m = exec m

let finished m = m.pc >= Array.length m.prog.code

let run_slice m ~fuel_slice =
  if fuel_slice <= 0 then invalid_arg "Machine.run_slice: non-positive fuel_slice";
  exec ~steps:fuel_slice m;
  if finished m then `Done else `More

(* ---- checkpoint / restore ---- *)

(* Format: a magic string naming the version, then a Marshal'd plain
   record of the whole observable state.  The program itself is not
   serialized; a digest of it is, and [restore] refuses a checkpoint
   taken from a different program.  Bump the magic when the record
   changes shape. *)

let ckpt_magic = "ucm-ckpt-v2\n"

type ckpt = {
  ck_prog : string;  (* program digest *)
  ck_params : Cost.params;
  ck_elapsed_ns : float;
  ck_counters : int array;  (* the 11 meter counters, fixed order *)
  ck_class_ns : float array;  (* the 8 per-class ns accumulators *)
  ck_regs : scalar array;
  ck_fields : fdata array;
  ck_stacks : bool array list array;  (* per context, top first *)
  ck_cur : int;
  ck_rand : int;
  ck_fuel : int;
  ck_output : string list;
  ck_pc : int;
  ck_icount : int;
  ck_regions : (string * float) list;
  ck_region : string;
  (* fault plan identity, cursor and armed queues (router, news, chip) *)
  ck_fault : (string * int * int list * int list * int list) option;
  ck_log : string list;
}

let prog_digest prog =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (prog.geoms, prog.fields, prog.nregs, prog.nlabels, prog.code)
          []))

let copy_fdata = function
  | FInt a -> FInt (Array.copy a)
  | FFloat a -> FFloat (Array.copy a)

let checkpoint m =
  let mt = m.meter in
  let ck =
    {
      ck_prog = prog_digest m.prog;
      ck_params = mt.Cost.params;
      ck_elapsed_ns = mt.Cost.elapsed_ns;
      ck_counters =
        [|
          mt.Cost.fe_ops;
          mt.Cost.pe_ops;
          mt.Cost.context_ops;
          mt.Cost.news_ops;
          mt.Cost.router_ops;
          mt.Cost.router_messages;
          mt.Cost.reductions;
          mt.Cost.scans;
          mt.Cost.fe_cm_transfers;
          mt.Cost.router_collisions;
          mt.Cost.router_max_fanin;
        |];
      ck_class_ns =
        [|
          mt.Cost.ns_fe;
          mt.Cost.ns_pe;
          mt.Cost.ns_context;
          mt.Cost.ns_news;
          mt.Cost.ns_router;
          mt.Cost.ns_reduce;
          mt.Cost.ns_scan;
          mt.Cost.ns_fe_cm;
        |];
      ck_regs = Array.copy m.regs;
      ck_fields = Array.map copy_fdata m.fields;
      ck_stacks = Array.map Context.frames m.contexts;
      ck_cur = m.cur;
      ck_rand = m.rand_state;
      ck_fuel = m.fuel;
      ck_output = m.output;
      ck_pc = m.pc;
      ck_icount = m.icount;
      ck_regions =
        Hashtbl.fold (fun k v acc -> (k, !v) :: acc) m.regions []
        |> List.sort compare;
      ck_region = m.region_name;
      ck_fault =
        (match m.fstate with
        | None -> None
        | Some fs ->
            Some (fs.f_origin, fs.f_cursor, fs.f_router, fs.f_news, fs.f_chip));
      ck_log = m.fault_log;
    }
  in
  ckpt_magic ^ Marshal.to_string ck []

let restore ?(engine = `Fast) ?faults ?(obs = Obs.null) prog data =
  check_engine engine;
  let mlen = String.length ckpt_magic in
  if String.length data < mlen || String.sub data 0 mlen <> ckpt_magic then
    error "checkpoint: bad magic or unsupported version";
  let ck =
    try (Marshal.from_string data mlen : ckpt)
    with _ -> error "checkpoint: truncated or corrupt data"
  in
  if ck.ck_prog <> prog_digest prog then
    error "checkpoint: program mismatch (checkpoint is from a different program)";
  let mt = Cost.meter ck.ck_params in
  mt.Cost.elapsed_ns <- ck.ck_elapsed_ns;
  mt.Cost.fe_ops <- ck.ck_counters.(0);
  mt.Cost.pe_ops <- ck.ck_counters.(1);
  mt.Cost.context_ops <- ck.ck_counters.(2);
  mt.Cost.news_ops <- ck.ck_counters.(3);
  mt.Cost.router_ops <- ck.ck_counters.(4);
  mt.Cost.router_messages <- ck.ck_counters.(5);
  mt.Cost.reductions <- ck.ck_counters.(6);
  mt.Cost.scans <- ck.ck_counters.(7);
  mt.Cost.fe_cm_transfers <- ck.ck_counters.(8);
  mt.Cost.router_collisions <- ck.ck_counters.(9);
  mt.Cost.router_max_fanin <- ck.ck_counters.(10);
  mt.Cost.ns_fe <- ck.ck_class_ns.(0);
  mt.Cost.ns_pe <- ck.ck_class_ns.(1);
  mt.Cost.ns_context <- ck.ck_class_ns.(2);
  mt.Cost.ns_news <- ck.ck_class_ns.(3);
  mt.Cost.ns_router <- ck.ck_class_ns.(4);
  mt.Cost.ns_reduce <- ck.ck_class_ns.(5);
  mt.Cost.ns_scan <- ck.ck_class_ns.(6);
  mt.Cost.ns_fe_cm <- ck.ck_class_ns.(7);
  let regions = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.add regions k (ref v)) ck.ck_regions;
  let region_acc =
    match Hashtbl.find_opt regions ck.ck_region with
    | Some acc -> acc
    | None ->
        let acc = ref 0.0 in
        Hashtbl.add regions ck.ck_region acc;
        acc
  in
  let fstate =
    match faults with
    | None -> None
    | Some plan -> (
        match ck.ck_fault with
        | Some (origin, cursor, fr, fn, fc)
          when origin = Fault.canonical plan ->
            (* same concrete plan: resume its cursor and armed queues *)
            Some
              {
                f_events = Fault.events plan;
                f_origin = origin;
                f_cursor = cursor;
                f_router = fr;
                f_news = fn;
                f_chip = fc;
              }
        | _ ->
            (* a different plan (e.g. the next retry attempt's): events
               already behind the checkpoint are considered survived *)
            Some (fstate_of_plan ~from:ck.ck_icount plan))
  in
  {
    prog;
    meter = mt;
    regs = ck.ck_regs;
    fields = ck.ck_fields;
    contexts = Array.map Context.of_frames ck.ck_stacks;
    labels = resolve_labels prog;
    engine;
    scratch = Router.scratch ();
    cur = ck.ck_cur;
    rand_state = ck.ck_rand;
    fuel = ck.ck_fuel;
    output = ck.ck_output;
    pc = ck.ck_pc;
    region_acc;
    region_name = ck.ck_region;
    regions;
    kernels = None;
    skernels = None;
    native = NUnknown;
    steam = None;
    icount = ck.ck_icount;
    fstate;
    fault_log = ck.ck_log;
    obs;
  }

(* checkpoint/restore lifecycle events, emitted by the wrappers below so
   the core functions above stay purely functional over machine state *)
let checkpoint m =
  let data = checkpoint m in
  (if Obs.enabled m.obs then begin
     Obs.count m.obs "cm.checkpoints" 1;
     Obs.point m.obs "cm.checkpoint"
       ~attrs:
         [
           ("icount", Obs.Json.Int m.icount);
           ("bytes", Obs.Json.Int (String.length data));
         ]
   end);
  data

let restore ?engine ?faults ?(obs = Obs.null) prog data =
  let m = restore ?engine ?faults ~obs prog data in
  (if Obs.enabled obs then begin
     Obs.count obs "cm.restores" 1;
     Obs.point obs "cm.restore" ~attrs:[ ("icount", Obs.Json.Int m.icount) ]
   end);
  m

(* Mirror the aggregate, deterministic statistics (meter counters,
   per-class ns, per-region simulated seconds, fault tallies) into the
   machine's scope.  Call once, after a run; counters are monotonic, so
   publishing twice would double them. *)
let publish m =
  if Obs.enabled m.obs then begin
    List.iter
      (fun (k, v) ->
        if String.length k >= 3 && String.sub k 0 3 = "ns_" then
          Obs.sample m.obs ("cm." ^ k) v
        else Obs.count m.obs ("cm." ^ k) (int_of_float v))
      (Cost.metrics m.meter);
    Obs.sample m.obs "cm.elapsed_ns" m.meter.Cost.elapsed_ns;
    List.iter
      (fun (name, secs) -> Obs.sample m.obs ("cm.region." ^ name) secs)
      (regions m);
    Obs.count m.obs "cm.faults.logged" (List.length m.fault_log)
  end
