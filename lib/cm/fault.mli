(** Deterministic fault injection for the simulated machine.

    The CM-2 this simulator models was real hardware: the general
    router, the NEWS wires and individual processor chips failed
    transiently, and memory took bit flips.  A {e fault plan} is a
    seeded, content-digestable description of such faults, keyed by the
    machine's instruction serial number (the count of executed
    instructions, which both execution engines advance in lockstep).
    Both engines consult the plan at the same observation point — just
    before an instruction executes — so a plan perturbs them
    bit-identically (enforced by [test/test_engine.ml]).

    Two layers:
    - a {!spec} is what the user writes ([--faults PLAN]): explicit
      events pinned to instruction serials, plus counts of random events
      drawn from a seeded generator.  Its {!spec_string} is canonical
      and participates in job digests (faults change observable
      results, so they are content).
    - a {!plan} is one concrete instantiation of a spec for a given
      retry attempt.  Random events are re-drawn per attempt (they are
      transient: a retry may survive them); explicit events without an
      attempt qualifier re-fire on every attempt (a "hard" fault that
      retries cannot outrun).

    Spec grammar — tokens separated by [';'] or [',']:
    - [seed=N], [horizon=N]: generator seed and the serial range
      [[0, horizon)] random events are drawn from;
    - [router=N], [news=N], [chip=N], [flip=N]: counts of random events;
    - [router@S], [news@S], [chip@S]: an explicit transient fault armed
      at serial [S], firing at the first matching instruction at or
      after [S] (router: [Pget]/[Psend]; news: [Pnews]; chip: any
      parallel instruction);
    - [flip@S:F.E.B]: flip bit [B] of element [E] of field [F] at
      serial [S] (values are reduced modulo the machine's actual
      field/element/bit counts, so any ints are valid);
    - any explicit event may carry [#A] to fire only on attempt [A]
      (e.g. [router@50#0]: attempt 0 faults, the retry runs clean). *)

(** Raised by the machine when an injected transient fault fires.
    Distinguishable from [Machine.Error] (a program bug): a [Fault] is
    retryable, an [Error] is not. *)
exception Fault of string

type kind = Router | News | Chip

type event =
  | Transient of kind
  | Flip of { field : int; element : int; bit : int }

type spec
type plan

(** Parse a spec string.  [Error msg] on bad tokens. *)
val parse : string -> (spec, string) result

(** Canonical rendering: fixed token order, independent of the order the
    user wrote them in.  [parse (spec_string s)] reproduces [s], so this
    string is the digest input for fault-bearing jobs. *)
val spec_string : spec -> string

(** A spec with no events at all. *)
val empty : spec

val is_empty : spec -> bool

(** Concrete event schedule for one retry attempt.  Deterministic:
    the same (spec, attempt) always yields the same plan. *)
val instantiate : spec -> attempt:int -> plan

(** Events sorted by serial (ties in canonical order). *)
val events : plan -> (int * event) array

(** Identity of a concrete plan (spec canonical + attempt); used to
    decide whether a checkpoint's fault cursor is resumable. *)
val canonical : plan -> string

val kind_name : kind -> string
