(** SPMD sharding for the {{!Machine}machine}'s [`Sharded] engine.

    [layout] partitions a VP set's element range into contiguous chunks;
    [run] executes one task per chunk across a reusable team of worker
    domains plus the calling domain.  Results are a function of the
    logical chunk layout only — the physical worker count (including
    zero, when no team is available) never changes what is computed,
    which is what keeps the sharded engine bit-identical to the fast
    engine at every shard count. *)

(** [layout ~shards n] splits [0, n) into [min shards (max n 1)]
    contiguous [(lo, hi)] chunks, the first [n mod k] one element
    larger.  Chunks are non-empty unless [n = 0]. *)
val layout : shards:int -> int -> (int * int) array

type team

(** [create ~workers] spawns a team of [workers] domains, parked until
    {!run} publishes work. *)
val create : workers:int -> team

val size : team -> int

(** [run team n f] executes [f c] for every [c] in [0, n) and returns
    when all have finished.  With [None], a team of zero workers, or a
    single chunk, the tasks run inline on the caller.  Tasks must write
    disjoint state.  An exception raised by a task is re-raised on the
    caller after the join (the one from the lowest-numbered chunk wins). *)
val run : team option -> int -> (int -> unit) -> unit

(** Stops and joins the team's workers.  Idempotent. *)
val shutdown : team -> unit

(** A process-wide budget of shard workers, so machines borrow parked
    teams instead of spawning per run, and so a job pool running many
    sharded machines at once can cap jobs x shards oversubscription. *)
module Pool : sig
  type stats = {
    borrows : int;  (** successful borrows (reuse or spawn) *)
    spawns : int;  (** teams created *)
    capped : int;  (** borrows whose team was clipped by the budget *)
    denied : int;  (** borrows refused: budget exhausted *)
    workers : int;  (** workers currently alive across all teams *)
    limit : int;  (** current worker budget *)
  }

  (** Cap on total workers across all teams.  Defaults to
      [Domain.recommended_domain_count () - 1].  Lowering it does not
      shrink already-spawned teams; it only gates new spawns. *)
  val set_limit : int -> unit

  (** [borrow ~want ()] returns a parked team, or spawns one with at
      most [want] workers within the remaining budget, or [None] when
      [want = 0] or the budget is exhausted (callers then run inline). *)
  val borrow : want:int -> unit -> team option

  (** Return a borrowed team to the idle list ([None] is a no-op). *)
  val release : team option -> unit

  val stats : unit -> stats

  (** Shut down every parked team (also installed as an [at_exit] hook
      the first time a team is spawned). *)
  val shutdown_idle : unit -> unit
end
