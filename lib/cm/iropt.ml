(* Dataflow optimizer for the Paris IR.  See iropt.mli for the semantic
   contract.  Every rewrite below is justified against the execution
   semantics in machine.ml: a transformed program must produce the same
   output log, the same final contents of live-out storage, the same LCG
   stream and the same error on faulting programs, on both engines, and
   its simulated elapsed time must never be higher.  The ground rules
   that keep this sound:

   - A machine fault aborts the run, so dataflow facts are conditioned
     on "every instruction so far succeeded" — which holds for every
     instruction that actually executes after it.
   - A rewrite that changes an instruction's mnemonic (Pbin -> Pmov,
     Pget -> Pmov, ...) must prove the original could not fault, because
     fault messages embed the mnemonic.  Operand substitutions keep the
     resolution behavior (including the fault message) identical.
   - Deleting an instruction requires proving it could not fault and
     that its only effect was a dead definition.  Frand/Prand advance
     the shared LCG and are never deleted; Fprint/Region are observable
     and never deleted.
   - Charges: operand shape does not affect an instruction's charge, so
     substitutions are charge-neutral; Pbin -> Pmov and Fbin -> Fmov are
     charge-equal; deletions and router/news -> PE downgrades strictly
     reduce simulated ns.  Hence elapsed time is monotonically
     non-increasing. *)

open Paris

type config = {
  constprop : bool;
  dce : bool;
  peephole : bool;
  get_to_send : bool;
  max_rounds : int;
}

let default =
  { constprop = true; dce = true; peephole = true; get_to_send = true;
    max_rounds = 8 }

let off =
  { constprop = false; dce = false; peephole = false; get_to_send = false;
    max_rounds = 0 }

let enabled c =
  c.max_rounds > 0 && (c.constprop || c.dce || c.peephole || c.get_to_send)

let config_summary c =
  if not (enabled c) then "off"
  else
    String.concat ","
      (List.filter_map
         (fun (b, n) -> if b then Some n else None)
         [ (c.constprop, "constprop"); (c.dce, "dce");
           (c.get_to_send, "getsend"); (c.peephole, "peephole") ])

let config_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "on" | "all" | "default" -> Ok default
  | "off" | "none" -> Ok off
  | s ->
      let parts =
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun t -> t <> "")
      in
      if parts = [] then Error "empty ir-opt pass list"
      else
        List.fold_left
          (fun acc tok ->
            match acc with
            | Error _ -> acc
            | Ok c -> (
                match tok with
                | "constprop" -> Ok { c with constprop = true }
                | "dce" -> Ok { c with dce = true }
                | "peephole" -> Ok { c with peephole = true }
                | "getsend" -> Ok { c with get_to_send = true }
                | t ->
                    Error
                      (Printf.sprintf
                         "unknown ir-opt pass %S (expected \
                          constprop|dce|peephole|getsend)"
                         t)))
          (Ok { off with max_rounds = 8 })
          parts

type pass_stats = { pass : string; rewritten : int; removed : int }

type stats = {
  input_instrs : int;
  output_instrs : int;
  rounds : int;
  passes : pass_stats list;
}

let pp_stats fmt s =
  Format.fprintf fmt "@[<v>ir-opt: %d -> %d instructions in %d round%s@,"
    s.input_instrs s.output_instrs s.rounds (if s.rounds = 1 then "" else "s");
  List.iter
    (fun p ->
      Format.fprintf fmt "  %-9s %4d rewritten  %4d removed@," p.pass
        p.rewritten p.removed)
    s.passes;
  Format.fprintf fmt "@]"

(* ---- pure mirrors of the machine's scalar semantics ----

   Identical arithmetic, but faulting cases raise [Would_fault] so a
   fold can be abandoned (keeping the faulting instruction in place)
   instead of mis-evaluating. *)

exception Would_fault

let to_int2 = function SInt i -> i | SFloat _ -> raise Would_fault
let to_float2 = function SInt i -> float_of_int i | SFloat f -> f
let truthy2 = function SInt i -> i <> 0 | SFloat f -> f <> 0.0
let is_float_s = function SFloat _ -> true | SInt _ -> false
let is_cmp = function Eq | Ne | Lt | Le | Gt | Ge -> true | _ -> false

let float_cmp op a b =
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | _ -> raise Would_fault

let int_binop2 op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise Would_fault else a / b
  | Mod -> if b = 0 then raise Would_fault else a mod b
  | Min -> min a b
  | Max -> max a b
  | Land -> if a <> 0 && b <> 0 then 1 else 0
  | Lor -> if a <> 0 || b <> 0 then 1 else 0
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Shl -> if b < 0 || b >= Sys.int_size then raise Would_fault else a lsl b
  | Shr -> if b < 0 || b >= Sys.int_size then raise Would_fault else a asr b
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Any -> raise Would_fault

let float_binop_valid = function
  | Add | Sub | Mul | Div | Mod | Min | Max -> true
  | _ -> false

let float_binop2 op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Mod -> Float.rem a b
  | Min -> Float.min a b
  | Max -> Float.max a b
  | _ -> raise Would_fault

let fe_bin2 op a b =
  if is_cmp op then
    SInt (if float_cmp op (to_float2 a) (to_float2 b) then 1 else 0)
  else
    match op with
    | Land -> SInt (if truthy2 a && truthy2 b then 1 else 0)
    | Lor -> SInt (if truthy2 a || truthy2 b then 1 else 0)
    | Band | Bor | Bxor | Shl | Shr ->
        SInt (int_binop2 op (to_int2 a) (to_int2 b))
    | Add | Sub | Mul | Div | Mod | Min | Max -> (
        match (a, b) with
        | SInt x, SInt y -> SInt (int_binop2 op x y)
        | _ -> SFloat (float_binop2 op (to_float2 a) (to_float2 b)))
    | _ -> raise Would_fault

let fe_unop2 op a =
  match op with
  | Neg -> ( match a with SInt i -> SInt (-i) | SFloat f -> SFloat (-.f))
  | Lnot -> SInt (if truthy2 a then 0 else 1)
  | Bnot -> SInt (lnot (to_int2 a))
  | ToFloat -> SFloat (to_float2 a)
  | ToInt -> (
      match a with SInt i -> SInt i | SFloat f -> SInt (int_of_float f))
  | Abs -> (
      match a with SInt i -> SInt (abs i) | SFloat f -> SFloat (Float.abs f))

(* Machine result of [Pbin (op, d, Imm a, Imm b)] given the dst kind. *)
let pbin_fold op dk a b =
  match dk with
  | KInt ->
      if is_cmp op && (is_float_s a || is_float_s b) then
        SInt (if float_cmp op (to_float2 a) (to_float2 b) then 1 else 0)
      else (
        match (a, b) with
        | SInt x, SInt y -> SInt (int_binop2 op x y)
        | _ -> raise Would_fault (* float immediate in int parallel context *))
  | KFloat -> SFloat (float_binop2 op (to_float2 a) (to_float2 b))

(* Machine result of [Punop (op, d, Imm a)] given the dst kind. *)
let punop_fold op dk a =
  match dk with
  | KInt -> (
      match op with
      | ToInt -> SInt (int_of_float (to_float2 a))
      | Neg -> SInt (-to_int2 a)
      | Lnot -> SInt (if to_int2 a = 0 then 1 else 0)
      | Bnot -> SInt (lnot (to_int2 a))
      | Abs -> SInt (abs (to_int2 a))
      | ToFloat -> raise Would_fault)
  | KFloat -> (
      match op with
      | Neg -> SFloat (-.to_float2 a)
      | Abs -> SFloat (Float.abs (to_float2 a))
      | ToFloat -> SFloat (to_float2 a)
      | Lnot | Bnot | ToInt -> raise Would_fault)

(* Bit-exact scalar equality: the differential tests compare state
   bit-exactly, so -0.0 <> 0.0 and NaNs compare by payload. *)
let scalar_eq a b =
  match (a, b) with
  | SInt x, SInt y -> x = y
  | SFloat x, SFloat y -> Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> false

(* Can a reduction-family instruction with this operator fault while
   folding elements?  (Div/Mod fault on a zero element, shifts on an
   out-of-range amount; [identity] raises on non-reducible ops.) *)
let reduce_op_safe op kind =
  match op with
  | Div | Mod | Shl | Shr -> false
  | _ -> (
      match Paris.identity op kind with
      | exception Invalid_argument _ -> false
      | _ -> ( match kind with KInt -> true | KFloat -> float_binop_valid op))

let scan_op_safe op kind =
  match op with
  | Any | Div | Mod | Shl | Shr -> false
  | _ -> ( match kind with KInt -> true | KFloat -> float_binop_valid op)

(* ---- static facts about a program ---- *)

type facts = {
  n : int;
  nregs : int;
  nflds : int;
  nsets : int;
  fvp : int array;
  fkind : kind array;
  gsize : int array;
  grank : int array;
  gstrides : int array array;
  label_pos : int array; (* label -> index of its Label instr *)
}

(* Validate every register / field / label reference in the code; the
   optimizer refuses to touch a program it cannot fully reason about
   (out-of-range indices would crash the analysis arrays where the
   machine reports a lazy error or crashes on its own terms). *)
let build_facts (p : program) : facts option =
  let n = Array.length p.code in
  let nregs = p.nregs and nflds = Array.length p.fields in
  let nsets = Array.length p.geoms in
  let ok = ref (n > 0) in
  let chk_reg r = if r < 0 || r >= nregs then ok := false in
  let chk_fld f = if f < 0 || f >= nflds then ok := false in
  let chk_op = function
    | Reg r -> chk_reg r
    | Fld f -> chk_fld f
    | Imm _ -> ()
  in
  let label_pos = Array.make (max 1 p.nlabels) (-1) in
  let chk_lbl l = if l < 0 || l >= p.nlabels then ok := false in
  Array.iteri
    (fun i ins ->
      match ins with
      | Fmov (r, a) -> chk_reg r; chk_op a
      | Fbin (_, r, a, b) -> chk_reg r; chk_op a; chk_op b
      | Funop (_, r, a) -> chk_reg r; chk_op a
      | Frand (r, a) -> chk_reg r; chk_op a
      | Fread (r, f, a) -> chk_reg r; chk_fld f; chk_op a
      | Fwrite (f, a, v) -> chk_fld f; chk_op a; chk_op v
      | Jmp l -> chk_lbl l
      | Jz (a, l) | Jnz (a, l) -> chk_op a; chk_lbl l
      | Label l ->
          chk_lbl l;
          if !ok then
            if label_pos.(l) >= 0 then ok := false else label_pos.(l) <- i
      | Halt | Comment _ | Region _ -> ()
      | Fprint (_, a) -> Option.iter chk_op a
      | Pmov (d, a) -> chk_fld d; chk_op a
      | Pbin (_, d, a, b) -> chk_fld d; chk_op a; chk_op b
      | Punop (_, d, a) -> chk_fld d; chk_op a
      | Pcoord (d, _) -> chk_fld d
      | Ptable (d, _) -> chk_fld d
      | Prand (d, a) -> chk_fld d; chk_op a
      | Psel (d, c, a, b) -> chk_fld d; chk_op c; chk_op a; chk_op b
      | Pget (d, s, a) -> chk_fld d; chk_fld s; chk_fld a
      | Psend (d, s, a, _) -> chk_fld d; chk_fld s; chk_fld a
      | Pnews (d, s, _, _) -> chk_fld d; chk_fld s
      | Preduce (_, r, f) -> chk_reg r; chk_fld f
      | Pcount r -> chk_reg r
      | Preduce_axis (_, d, s) -> chk_fld d; chk_fld s
      | Pscan (_, d, s, _) -> chk_fld d; chk_fld s
      | Cwith _ -> () (* the machine validates and we track validity *)
      | Cpush | Cpop | Creset -> ()
      | Cand f -> chk_fld f
      | Cread f -> chk_fld f)
    p.code;
  (* every referenced label must be placed exactly once *)
  Array.iter
    (fun ins ->
      match ins with
      | Jmp l | Jz (_, l) | Jnz (_, l) ->
          if l >= 0 && l < p.nlabels && label_pos.(l) < 0 then ok := false
      | _ -> ())
    p.code;
  Array.iter
    (fun (vp, _) -> if vp < 0 || vp >= nsets then ok := false)
    p.fields;
  if not !ok then None
  else
    Some
      {
        n;
        nregs;
        nflds;
        nsets;
        fvp = Array.map fst p.fields;
        fkind = Array.map snd p.fields;
        gsize = Array.map Geometry.size p.geoms;
        grank = Array.map Geometry.rank p.geoms;
        gstrides = Array.map Geometry.strides p.geoms;
        label_pos;
      }

(* ---- control-flow graph ---- *)

type cfg = {
  nblocks : int;
  bstart : int array;
  bend : int array; (* exclusive *)
  succs : int list array;
}

let build_cfg facts (code : instr array) =
  let n = facts.n in
  let is_start = Array.make n false in
  is_start.(0) <- true;
  Array.iteri
    (fun i ins ->
      match ins with
      | Label _ -> is_start.(i) <- true
      | Jmp _ | Jz _ | Jnz _ | Halt ->
          if i + 1 < n then is_start.(i + 1) <- true
      | _ -> ())
    code;
  let nblocks = Array.fold_left (fun a s -> if s then a + 1 else a) 0 is_start in
  let bstart = Array.make nblocks 0 and bend = Array.make nblocks 0 in
  let block_of = Array.make n 0 in
  let b = ref (-1) in
  for i = 0 to n - 1 do
    if is_start.(i) then begin
      incr b;
      bstart.(!b) <- i
    end;
    block_of.(i) <- !b;
    bend.(!b) <- i + 1
  done;
  let succs =
    Array.init nblocks (fun b ->
        let last = code.(bend.(b) - 1) in
        let fall = if bend.(b) < n then [ block_of.(bend.(b)) ] else [] in
        match last with
        | Jmp l -> [ block_of.(facts.label_pos.(l)) ]
        | Jz (_, l) | Jnz (_, l) ->
            fall @ [ block_of.(facts.label_pos.(l)) ]
        | Halt -> []
        | _ -> fall)
  in
  { nblocks; bstart; bend; succs }

(* ---- forward dataflow state ---- *)

type rval = RTop | RConst of scalar | RCopy of int
type fval = FTop | FConst of scalar | FAffine of int * int array | FCopy of int
type ctxv = CtxTop | CtxStack of bool list
(* CtxStack frames, innermost first; [true] = provably fully active. *)

type st = {
  mutable vp : int; (* -2 = none selected yet, -1 = unknown, >= 0 known *)
  regs : rval array;
  flds : fval array;
  ctxs : ctxv array;
}

let entry_state facts =
  {
    vp = -2;
    regs = Array.make facts.nregs (RConst (SInt 0));
    flds =
      Array.map
        (function KInt -> FConst (SInt 0) | KFloat -> FConst (SFloat 0.0))
        facts.fkind;
    ctxs = Array.make facts.nsets (CtxStack [ true ]);
  }

let copy_st st =
  {
    vp = st.vp;
    regs = Array.copy st.regs;
    flds = Array.copy st.flds;
    ctxs = Array.copy st.ctxs;
  }

let rval_eq a b =
  match (a, b) with
  | RTop, RTop -> true
  | RConst x, RConst y -> scalar_eq x y
  | RCopy x, RCopy y -> x = y
  | _ -> false

let fval_eq a b =
  match (a, b) with
  | FTop, FTop -> true
  | FConst x, FConst y -> scalar_eq x y
  | FCopy x, FCopy y -> x = y
  | FAffine (c, k), FAffine (c', k') -> c = c' && k = k'
  | _ -> false

let ctx_eq a b =
  match (a, b) with
  | CtxTop, CtxTop -> true
  | CtxStack x, CtxStack y -> x = y
  | _ -> false

let ctx_join a b =
  match (a, b) with
  | CtxTop, _ | _, CtxTop -> CtxTop
  | CtxStack x, CtxStack y ->
      if List.length x = List.length y then CtxStack (List.map2 ( && ) x y)
      else CtxTop

(* dst := dst ⊔ src; returns whether dst changed *)
let join_into dst src =
  let changed = ref false in
  if dst.vp <> src.vp && dst.vp <> -1 then begin
    dst.vp <- -1;
    changed := true
  end;
  Array.iteri
    (fun i v ->
      if (not (rval_eq dst.regs.(i) v)) && dst.regs.(i) <> RTop then begin
        dst.regs.(i) <- RTop;
        changed := true
      end)
    src.regs;
  Array.iteri
    (fun i v ->
      if (not (fval_eq dst.flds.(i) v)) && dst.flds.(i) <> FTop then begin
        dst.flds.(i) <- FTop;
        changed := true
      end)
    src.flds;
  Array.iteri
    (fun i v ->
      let j = ctx_join dst.ctxs.(i) v in
      if not (ctx_eq j dst.ctxs.(i)) then begin
        dst.ctxs.(i) <- j;
        changed := true
      end)
    src.ctxs;
  !changed

(* ---- state queries and updates ---- *)

let cur_full st =
  st.vp >= 0
  && match st.ctxs.(st.vp) with CtxStack (true :: _) -> true | _ -> false

let reg_const st r = match st.regs.(r) with RConst s -> Some s | _ -> None
let reg_root st r = match st.regs.(r) with RCopy x -> x | _ -> r
let fld_root st f = match st.flds.(f) with FCopy x -> x | _ -> f

(* Scalar value of a front-end operand, if known. *)
let opval st = function
  | Imm s -> Some s
  | Reg r -> reg_const st r
  | Fld _ -> None

let rwrite st r v =
  Array.iteri
    (fun j x ->
      match x with
      | RCopy root when root = r && j <> r -> st.regs.(j) <- RTop
      | _ -> ())
    st.regs;
  st.regs.(r) <- v

let fwrite st f v ~total =
  Array.iteri
    (fun g x ->
      match x with
      | FCopy root when root = f && g <> f -> st.flds.(g) <- FTop
      | _ -> ())
    st.flds;
  st.flds.(f) <- (if total then v else if fval_eq st.flds.(f) v then v else FTop)

(* Per-VP constant of a parallel operand resolved through the machine's
   getter for the given dst kind; None when unknown or faulting. *)
let pconst facts st dk op =
  let coerce s =
    match (dk, s) with
    | KInt, SInt _ -> Some s
    | KInt, SFloat _ -> None (* geti faults *)
    | KFloat, s -> Some (SFloat (to_float2 s))
  in
  match op with
  | Imm s -> coerce s
  | Reg r -> ( match reg_const st r with Some s -> coerce s | None -> None)
  | Fld f ->
      if st.vp >= 0 && facts.fvp.(f) = st.vp then
        match st.flds.(f) with FConst s -> coerce s | _ -> None
      else None

(* Value written by [Pmov (d, op)]. *)
let pmov_val facts st d op =
  let dk = facts.fkind.(d) in
  match op with
  | Imm _ | Reg _ -> (
      match pconst facts st dk op with Some s -> FConst s | None -> FTop)
  | Fld s ->
      if s = d then FTop (* callers special-case the self-move *)
      else if st.vp >= 0 && facts.fvp.(s) = st.vp && facts.fvp.(d) = st.vp
      then
        let sk = facts.fkind.(s) in
        match st.flds.(s) with
        | FConst c -> (
            match (dk, sk) with
            | KInt, KInt | KFloat, KFloat -> FConst c
            | KFloat, KInt -> FConst (SFloat (to_float2 c))
            | KInt, KFloat -> FTop (* geti on a float field faults *))
        | FAffine (c0, co) when dk = KInt && sk = KInt -> FAffine (c0, co)
        | FCopy root when sk = dk -> FCopy root
        | FTop when sk = dk -> FCopy s
        | _ -> FTop
      else FTop

(* Affine view (c0 + sum coeff_i * coord_i) of an int parallel operand. *)
let affine_of facts st rank op =
  match op with
  | Imm (SInt c) -> Some (c, Array.make rank 0)
  | Imm (SFloat _) -> None
  | Reg r -> (
      match reg_const st r with
      | Some (SInt c) -> Some (c, Array.make rank 0)
      | _ -> None)
  | Fld f ->
      if st.vp >= 0 && facts.fvp.(f) = st.vp then
        match st.flds.(f) with
        | FAffine (c, k) when Array.length k = rank -> Some (c, k)
        | FConst (SInt c) -> Some (c, Array.make rank 0)
        | _ -> None
      else None

let pbin_affine facts st op d a b =
  if facts.fkind.(d) <> KInt || st.vp < 0 || is_cmp op then None
  else
    let rank = facts.grank.(st.vp) in
    match (affine_of facts st rank a, affine_of facts st rank b) with
    | Some (c1, k1), Some (c2, k2) -> (
        let all0 k = Array.for_all (fun x -> x = 0) k in
        match op with
        | Add -> Some (c1 + c2, Array.map2 ( + ) k1 k2)
        | Sub -> Some (c1 - c2, Array.map2 ( - ) k1 k2)
        | Mul when all0 k1 -> Some (c1 * c2, Array.map (fun x -> c1 * x) k2)
        | Mul when all0 k2 -> Some (c1 * c2, Array.map (fun x -> c2 * x) k1)
        | _ -> None)
    | _ -> None

(* Does this int field provably hold each VP's own linear address? *)
let is_identity_addr facts st addr =
  st.vp >= 0
  && facts.fvp.(addr) = st.vp
  && facts.fkind.(addr) = KInt
  &&
  match st.flds.(addr) with
  | FAffine (0, k) -> k = facts.gstrides.(st.vp)
  | FConst (SInt 0) -> facts.gsize.(st.vp) = 1
  | _ -> false

(* ---- transfer function ----

   Mutates [st] across one (possibly rewritten) instruction, assuming
   the instruction executes without faulting (anything downstream of a
   fault never runs, so over-optimistic facts after a faulting
   instruction are harmless). *)

let transfer facts st ins =
  let wr_total = cur_full st in
  match ins with
  | Label _ | Comment _ | Region _ | Fprint _ | Halt | Jmp _ | Jz _ | Jnz _ ->
      ()
  | Fmov (r, a) -> (
      match a with
      | Imm s -> rwrite st r (RConst s)
      | Reg x ->
          if x <> r then
            rwrite st r
              (match st.regs.(x) with
              | RConst s -> RConst s
              | RCopy root -> RCopy root
              | RTop -> RCopy x)
      | Fld _ -> rwrite st r RTop (* faults *))
  | Fbin (op, r, a, b) ->
      rwrite st r
        (match (opval st a, opval st b) with
        | Some x, Some y -> (
            try RConst (fe_bin2 op x y) with Would_fault -> RTop)
        | _ -> RTop)
  | Funop (op, r, a) ->
      rwrite st r
        (match opval st a with
        | Some x -> ( try RConst (fe_unop2 op x) with Would_fault -> RTop)
        | None -> RTop)
  | Frand (r, _) -> rwrite st r RTop
  | Fread (r, fld, _) ->
      rwrite st r
        (match st.flds.(fld) with FConst c -> RConst c | _ -> RTop)
  | Fwrite (f, _, _) -> fwrite st f FTop ~total:false
  | Pmov (d, a) ->
      if a <> Fld d then fwrite st d (pmov_val facts st d a) ~total:wr_total
  | Pbin (op, d, a, b) ->
      let dk = facts.fkind.(d) in
      let v =
        match (pconst facts st dk a, pconst facts st dk b) with
        | Some x, Some y -> (
            try FConst (pbin_fold op dk x y) with Would_fault -> FTop)
        | _ -> (
            match pbin_affine facts st op d a b with
            | Some (c, k) -> FAffine (c, k)
            | None -> FTop)
      in
      fwrite st d v ~total:wr_total
  | Punop (op, d, a) ->
      let dk = facts.fkind.(d) in
      let v =
        match pconst facts st dk a with
        | Some x -> ( try FConst (punop_fold op dk x) with Would_fault -> FTop)
        | None -> FTop
      in
      fwrite st d v ~total:wr_total
  | Pcoord (d, axis) ->
      let v =
        if
          st.vp >= 0
          && facts.fvp.(d) = st.vp
          && facts.fkind.(d) = KInt
          && axis >= 0
          && axis < facts.grank.(st.vp)
        then begin
          let k = Array.make facts.grank.(st.vp) 0 in
          k.(axis) <- 1;
          FAffine (0, k)
        end
        else FTop
      in
      fwrite st d v ~total:wr_total
  | Ptable (d, tbl) ->
      let v =
        if
          Array.length tbl > 0
          && Array.for_all (fun x -> x = tbl.(0)) tbl
          && facts.fkind.(d) = KInt
        then FConst (SInt tbl.(0))
        else FTop
      in
      fwrite st d v ~total:true
  | Prand (d, _) -> fwrite st d FTop ~total:false
  | Psel (d, c, a, b) ->
      let dk = facts.fkind.(d) in
      let v =
        match opval st c with
        | Some s -> (
            let chosen = if to_float2 s <> 0.0 then a else b in
            match pconst facts st dk chosen with
            | Some x -> FConst x
            | None -> FTop)
        | None -> (
            (* Fld cond: known only if the cond field is const *)
            match c with
            | Fld f when st.vp >= 0 && facts.fvp.(f) = st.vp -> (
                match st.flds.(f) with
                | FConst s -> (
                    let chosen = if to_float2 s <> 0.0 then a else b in
                    match pconst facts st dk chosen with
                    | Some x -> FConst x
                    | None -> FTop)
                | _ -> FTop)
            | _ -> FTop)
      in
      fwrite st d v ~total:wr_total
  | Pget (d, _, _) -> fwrite st d FTop ~total:false
  | Psend (d, _, _, _) -> fwrite st d FTop ~total:false
  | Pnews (d, _, _, _) -> fwrite st d FTop ~total:false
  | Preduce (_, r, _) -> rwrite st r RTop
  | Pcount r ->
      rwrite st r
        (if cur_full st then RConst (SInt facts.gsize.(st.vp)) else RTop)
  | Preduce_axis (_, d, _) -> fwrite st d FTop ~total:true
  | Pscan (_, d, _, _) -> fwrite st d FTop ~total:true
  | Cwith v -> st.vp <- (if v >= 0 && v < facts.nsets then v else -1)
  | Cpush ->
      if st.vp >= 0 then
        st.ctxs.(st.vp) <-
          (match st.ctxs.(st.vp) with
          | CtxStack (h :: t) -> CtxStack (h :: h :: t)
          | c -> c)
      else if st.vp = -1 then
        Array.iteri (fun i _ -> st.ctxs.(i) <- CtxTop) st.ctxs
  | Cand _ ->
      if st.vp >= 0 then
        st.ctxs.(st.vp) <-
          (match st.ctxs.(st.vp) with
          | CtxStack (_ :: t) -> CtxStack (false :: t)
          | c -> c)
      else if st.vp = -1 then
        Array.iteri (fun i _ -> st.ctxs.(i) <- CtxTop) st.ctxs
  | Cpop ->
      if st.vp >= 0 then
        st.ctxs.(st.vp) <-
          (match st.ctxs.(st.vp) with
          | CtxStack (_ :: (_ :: _ as t)) -> CtxStack t
          | _ -> CtxTop)
      else if st.vp = -1 then
        Array.iteri (fun i _ -> st.ctxs.(i) <- CtxTop) st.ctxs
  | Creset ->
      if st.vp >= 0 then st.ctxs.(st.vp) <- CtxStack [ true ]
      else if st.vp = -1 then
        Array.iteri (fun i _ -> st.ctxs.(i) <- CtxTop) st.ctxs
  | Cread f ->
      fwrite st f
        (if cur_full st && facts.fkind.(f) = KInt then FConst (SInt 1)
         else FTop)
        ~total:true

(* ---- whole-program forward analysis: in-state per basic block ---- *)

let analyze facts cfg code =
  let ins = Array.init cfg.nblocks (fun _ -> None) in
  ins.(0) <- Some (entry_state facts);
  let work = Queue.create () in
  Queue.add 0 work;
  let pending = Array.make cfg.nblocks false in
  pending.(0) <- true;
  while not (Queue.is_empty work) do
    let b = Queue.take work in
    pending.(b) <- false;
    match ins.(b) with
    | None -> ()
    | Some s0 ->
        let st = copy_st s0 in
        for i = cfg.bstart.(b) to cfg.bend.(b) - 1 do
          transfer facts st code.(i)
        done;
        List.iter
          (fun s ->
            let changed =
              match ins.(s) with
              | None ->
                  ins.(s) <- Some (copy_st st);
                  true
              | Some dst -> join_into dst st
            in
            if changed && not pending.(s) then begin
              pending.(s) <- true;
              Queue.add s work
            end)
          cfg.succs.(b)
  done;
  ins

(* ---- constant/copy propagation + algebraic simplification + the
   get->send conversion (one forward pass over each block) ----

   Substitution safety: an operand substitution must leave the
   instruction's value AND its fault behavior (including the message
   text, which embeds operand field numbers) unchanged.  Hence:
   - FE positions (fe_val): Reg -> Imm of the same scalar is exact.
   - geti positions: Reg -> Imm only for int scalars (a float register
     and a float immediate fault with different messages); field ids
     only when provably on the current set and int-kinded.
   - getf positions: any known scalar; float-ness is preserved so the
     cmp float/int dispatch in Pbin is unchanged.
   - field-id positions: replaced by the copy root only when every
     fault path that would name the id is provably not taken. *)

let subst_fe st op =
  match op with
  | Reg r -> (
      match reg_const st r with
      | Some s -> Imm s
      | None ->
          let root = reg_root st r in
          if root <> r then Reg root else op)
  | _ -> op

let subst_pi facts st op =
  match op with
  | Reg r -> (
      match reg_const st r with
      | Some (SInt _ as s) -> Imm s
      | _ ->
          let root = reg_root st r in
          if root <> r then Reg root else op)
  | Fld f when st.vp >= 0 && facts.fvp.(f) = st.vp && facts.fkind.(f) = KInt
    -> (
      match st.flds.(f) with
      | FConst (SInt _ as s) -> Imm s
      | FCopy root -> Fld root
      | _ -> op)
  | _ -> op

let subst_pf facts st op =
  match op with
  | Reg r -> (
      match reg_const st r with
      | Some s -> Imm s
      | None ->
          let root = reg_root st r in
          if root <> r then Reg root else op)
  | Fld f when st.vp >= 0 && facts.fvp.(f) = st.vp -> (
      match st.flds.(f) with
      | FConst s -> Imm s
      | FCopy root -> Fld root
      | _ -> op)
  | _ -> op

(* Copy-root substitution for a bare field-id position.  [need_cur]
   demands a provable on-current check (positions the machine checks
   with a message naming the id); [kind_eq] demands a kind match with
   the instruction's other field (kind-mismatch messages name both). *)
let froot_if facts st f ~need_cur ~kind_eq =
  let root = fld_root st f in
  if root = f then f
  else if
    ((not need_cur) || (st.vp >= 0 && facts.fvp.(f) = st.vp))
    && match kind_eq with None -> true | Some k -> facts.fkind.(f) = k
  then root
  else f

let geti_safe facts st = function
  | Imm (SInt _) -> true
  | Fld f -> st.vp >= 0 && facts.fvp.(f) = st.vp && facts.fkind.(f) = KInt
  | _ -> false

let getf_safe facts st = function
  | Imm _ | Reg _ -> true
  | Fld f -> st.vp >= 0 && facts.fvp.(f) = st.vp

let resolve_safe facts st dk op =
  match dk with KInt -> geti_safe facts st op | KFloat -> getf_safe facts st op

let combine_ok_for dk cb =
  match dk with
  | KInt -> true
  | KFloat -> (
      match cb with
      | Ccheck | Cover | Cadd | Cmin | Cmax -> true
      | Cor | Cand | Cxor -> false)

(* Rewrite one instruction given the dataflow state before it. *)
let rw_instr (config : config) facts st ~getsend ins =
  let cp = config.constprop in
  let sfe op = if cp then subst_fe st op else op in
  let spi op = if cp then subst_pi facts st op else op in
  let spf op = if cp then subst_pf facts st op else op in
  let on_cur d = st.vp >= 0 && facts.fvp.(d) = st.vp in
  (* Communication instructions (pget/psend/pnews) read their source
     and address fields while writing the destination in place, so the
     destination's cells can be observed mid-update and aliasing is
     semantically significant.  A copy-root substitution must neither
     introduce an alias with the destination (the codegen stages an
     explicit copy exactly to break that hazard — `pmov f', f;
     psend f[addr], f'` for a permuted parallel assignment — and
     propagating the copy away would let the send read cells it has
     already overwritten) nor remove one the program already has (an
     aliased operand reads the in-place partial update; its copy root
     would read the pristine values). *)
  let froot_noalias d f ~need_cur ~kind_eq =
    if f = d then f
    else
      let root = froot_if facts st f ~need_cur ~kind_eq in
      if root = d then f else root
  in
  match ins with
  | Fmov (r, a) -> (
      let a = sfe a in
      match a with Reg x when x = r -> Comment "iropt" | _ -> Fmov (r, a))
  | Fbin (op, r, a, b) -> (
      let a = sfe a and b = sfe b in
      match (a, b) with
      | Imm x, Imm y when cp -> (
          try Fmov (r, Imm (fe_bin2 op x y))
          with Would_fault -> Fbin (op, r, a, b))
      | _ -> Fbin (op, r, a, b))
  | Funop (op, r, a) -> (
      let a = sfe a in
      match a with
      | Imm x when cp -> (
          try Fmov (r, Imm (fe_unop2 op x))
          with Would_fault -> Funop (op, r, a))
      | _ -> Funop (op, r, a))
  | Frand (r, a) -> Frand (r, sfe a)
  | Fread (r, fld, a) -> (
      let a = sfe a in
      match (st.flds.(fld), a) with
      | FConst c, Imm (SInt ad)
        when cp && ad >= 0 && ad < facts.gsize.(facts.fvp.(fld)) ->
          Fmov (r, Imm c)
      | _ -> Fread (r, fld, a))
  | Fwrite (f, a, v) -> Fwrite (f, sfe a, sfe v)
  | Jz (a, l) -> (
      let a = sfe a in
      match a with
      | Imm s when cp -> if truthy2 s then Comment "iropt" else Jmp l
      | _ -> Jz (a, l))
  | Jnz (a, l) -> (
      let a = sfe a in
      match a with
      | Imm s when cp -> if truthy2 s then Jmp l else Comment "iropt"
      | _ -> Jnz (a, l))
  | Fprint (s, Some a) -> Fprint (s, Some (sfe a))
  | Pmov (d, a) ->
      let a =
        match facts.fkind.(d) with KInt -> spi a | KFloat -> spf a
      in
      if config.peephole && a = Fld d && on_cur d then Comment "iropt"
      else Pmov (d, a)
  | Pbin (op, d, a, b) -> (
      let dk = facts.fkind.(d) in
      let a, b =
        match dk with
        | KFloat -> (spf a, spf b)
        | KInt -> if is_cmp op then (spf a, spf b) else (spi a, spi b)
      in
      let keep = Pbin (op, d, a, b) in
      if not (cp && on_cur d) then keep
      else
        match (a, b) with
        | Imm x, Imm y -> (
            try Pmov (d, Imm (pbin_fold op dk x y)) with Would_fault -> keep)
        | _ -> (
            if dk <> KInt || is_cmp op then keep
            else
              (* algebraic identities; the dropped operand is an Imm
                 SInt, which can never fault in a geti position, so the
                 fault behavior of the survivor is unchanged *)
              match (op, a, b) with
              | Add, x, Imm (SInt 0)
              | Add, Imm (SInt 0), x
              | Sub, x, Imm (SInt 0)
              | Mul, x, Imm (SInt 1)
              | Mul, Imm (SInt 1), x
              | Div, x, Imm (SInt 1)
              | Shl, x, Imm (SInt 0)
              | Shr, x, Imm (SInt 0)
              | Bor, x, Imm (SInt 0)
              | Bor, Imm (SInt 0), x
              | Bxor, x, Imm (SInt 0)
              | Bxor, Imm (SInt 0), x ->
                  Pmov (d, x)
              | Mul, x, Imm (SInt 0) when geti_safe facts st x ->
                  Pmov (d, Imm (SInt 0))
              | Mul, Imm (SInt 0), x when geti_safe facts st x ->
                  Pmov (d, Imm (SInt 0))
              | _ -> keep))
  | Punop (op, d, a) -> (
      let dk = facts.fkind.(d) in
      let a =
        match (dk, op) with
        | KInt, ToInt -> spf a
        | KInt, _ -> spi a
        | KFloat, _ -> spf a
      in
      match a with
      | Imm x when cp && on_cur d -> (
          try Pmov (d, Imm (punop_fold op dk x))
          with Would_fault -> Punop (op, d, a))
      | _ -> Punop (op, d, a))
  | Psel (d, c, a, b) -> (
      let dk = facts.fkind.(d) in
      let c = spf c in
      let sub = match dk with KInt -> spi | KFloat -> spf in
      let a = sub a and b = sub b in
      match c with
      | Imm s when cp && on_cur d ->
          let chosen, other = if to_float2 s <> 0.0 then (a, b) else (b, a) in
          if resolve_safe facts st dk other then Pmov (d, chosen)
          else Psel (d, c, a, b)
      | _ -> Psel (d, c, a, b))
  | Pget (d, s, addr) ->
      let dk = facts.fkind.(d) in
      let s =
        if cp then froot_noalias d s ~need_cur:false ~kind_eq:(Some dk)
        else s
      in
      let addr =
        if cp then froot_noalias d addr ~need_cur:true ~kind_eq:(Some KInt)
        else addr
      in
      if
        config.get_to_send && on_cur d
        && facts.fvp.(s) = st.vp
        && facts.fkind.(s) = dk
        && is_identity_addr facts st addr
      then begin
        incr getsend;
        Pmov (d, Fld s)
      end
      else Pget (d, s, addr)
  | Psend (d, s, addr, cb) ->
      let dk = facts.fkind.(d) in
      let s =
        if cp then froot_noalias d s ~need_cur:true ~kind_eq:(Some dk)
        else s
      in
      let addr =
        if cp then froot_noalias d addr ~need_cur:true ~kind_eq:(Some KInt)
        else addr
      in
      if
        config.get_to_send && on_cur d
        && facts.fvp.(s) = st.vp
        && facts.fkind.(s) = dk
        && combine_ok_for dk cb
        && is_identity_addr facts st addr
      then begin
        (* identity addresses give fan-in exactly 1: the send degrades
           to a local elementwise move under the same activity mask *)
        incr getsend;
        Pmov (d, Fld s)
      end
      else Psend (d, s, addr, cb)
  | Pnews (d, s, axis, delta) ->
      let dk = facts.fkind.(d) in
      let s =
        if cp then froot_noalias d s ~need_cur:true ~kind_eq:(Some dk)
        else s
      in
      if
        config.peephole && delta = 0 && on_cur d
        && facts.fvp.(s) = st.vp
        && facts.fkind.(s) = dk
        && axis >= 0
        && axis < facts.grank.(st.vp)
      then Pmov (d, Fld s)
      else Pnews (d, s, axis, delta)
  | Prand (d, a) -> Prand (d, sfe a)
  | Preduce (op, r, f) ->
      Preduce
        (op, r, if cp then froot_if facts st f ~need_cur:true ~kind_eq:None
                else f)
  | Pcount r ->
      if cp && cur_full st then Fmov (r, Imm (SInt facts.gsize.(st.vp)))
      else Pcount r
  | Preduce_axis (op, d, s) ->
      Preduce_axis
        ( op,
          d,
          if cp then
            froot_if facts st s ~need_cur:true
              ~kind_eq:(Some facts.fkind.(d))
          else s )
  | Pscan (op, d, s, axis) ->
      Pscan
        ( op,
          d,
          (if cp then
             froot_if facts st s ~need_cur:true
               ~kind_eq:(Some facts.fkind.(d))
           else s),
          axis )
  | Cand f ->
      Cand (if cp then froot_if facts st f ~need_cur:true ~kind_eq:None else f)
  | Cwith v ->
      if config.peephole && st.vp = v then Comment "iropt" else Cwith v
  | Jmp _ | Label _ | Halt | Comment _ | Region _ | Fprint (_, None)
  | Pcoord _ | Ptable _ | Cpush | Cpop | Creset | Cread _ ->
      ins

let constprop_pass config facts prog =
  let code = Array.copy prog.code in
  let cfg = build_cfg facts code in
  let instates = analyze facts cfg code in
  let rewritten = ref 0 and getsend = ref 0 in
  for b = 0 to cfg.nblocks - 1 do
    match instates.(b) with
    | None -> () (* unreachable: the peephole pass deletes it *)
    | Some s0 ->
        let st = copy_st s0 in
        for i = cfg.bstart.(b) to cfg.bend.(b) - 1 do
          let before = !getsend in
          let ins' = rw_instr config facts st ~getsend code.(i) in
          if compare ins' code.(i) <> 0 then begin
            code.(i) <- ins';
            if !getsend = before then incr rewritten
          end;
          transfer facts st code.(i)
        done
  done;
  ({ prog with code }, !rewritten, !getsend)

(* ---- peephole: jump threading, unreachable code, jump/branch to
   fallthrough, context push/pop cancellation, comment and dead-label
   compaction ---- *)

let peephole_pass facts prog =
  let code = Array.copy prog.code in
  let n = facts.n in
  (* vp known before each instruction, for the context rewrites *)
  let vp_at = Array.make n (-2) in
  (let cfg = build_cfg facts code in
   let instates = analyze facts cfg code in
   for b = 0 to cfg.nblocks - 1 do
     match instates.(b) with
     | None -> ()
     | Some s0 ->
         let st = copy_st s0 in
         for i = cfg.bstart.(b) to cfg.bend.(b) - 1 do
           vp_at.(i) <- st.vp;
           transfer facts st code.(i)
         done
   done);
  let rewritten = ref 0 in
  (* jump threading: a target that leads (through free Label/Comment
     runs) to an unconditional Jmp is retargeted at its destination;
     the skipped instructions are free but cost fe dispatches + fuel *)
  let final_target l0 =
    let seen = Hashtbl.create 8 in
    let rec follow l =
      if Hashtbl.mem seen l then l
      else begin
        Hashtbl.add seen l ();
        let rec skip i =
          if i >= n then None
          else
            match code.(i) with
            | Label _ | Comment _ -> skip (i + 1)
            | Jmp l2 -> Some l2
            | _ -> None
        in
        match skip facts.label_pos.(l) with
        | Some l2 when l2 <> l -> follow l2
        | _ -> l
      end
    in
    follow l0
  in
  Array.iteri
    (fun i ins ->
      match ins with
      | Jmp l ->
          let l' = final_target l in
          if l' <> l then begin
            code.(i) <- Jmp l';
            incr rewritten
          end
      | Jz (a, l) ->
          let l' = final_target l in
          if l' <> l then begin
            code.(i) <- Jz (a, l');
            incr rewritten
          end
      | Jnz (a, l) ->
          let l' = final_target l in
          if l' <> l then begin
            code.(i) <- Jnz (a, l');
            incr rewritten
          end
      | _ -> ())
    code;
  (* reachability from instruction 0 *)
  let reach = Array.make n false in
  let stack = Stack.create () in
  Stack.push 0 stack;
  while not (Stack.is_empty stack) do
    let i = Stack.pop stack in
    if i < n && not reach.(i) then begin
      reach.(i) <- true;
      match code.(i) with
      | Jmp l -> Stack.push facts.label_pos.(l) stack
      | Jz (_, l) | Jnz (_, l) ->
          Stack.push (i + 1) stack;
          Stack.push facts.label_pos.(l) stack
      | Halt -> ()
      | _ -> Stack.push (i + 1) stack
    end
  done;
  let dead = Array.make n false in
  for i = 0 to n - 1 do
    if not reach.(i) then dead.(i) <- true
  done;
  (* jump/branch to fallthrough: only free instructions in between.
     A branch condition may be deleted only when its evaluation cannot
     fault (Reg/Imm: fe_val and truthy are total; Fld always faults). *)
  let only_free_to_label i l =
    let t = facts.label_pos.(l) in
    if t <= i then false
    else begin
      let ok = ref true in
      for j = i + 1 to t do
        (match code.(j) with
        | Label _ | Comment _ -> ()
        | _ -> if not dead.(j) then ok := false)
      done;
      !ok
    end
  in
  for i = 0 to n - 1 do
    if not dead.(i) then
      match code.(i) with
      | Jmp l when only_free_to_label i l -> dead.(i) <- true
      | Jz ((Reg _ | Imm _), l) when only_free_to_label i l ->
          dead.(i) <- true
      | Jnz ((Reg _ | Imm _), l) when only_free_to_label i l ->
          dead.(i) <- true
      | _ -> ()
  done;
  (* cancel a Cpush ... Cpop pair when everything between is front-end
     work (context-independent) plus Cands on the known current set:
     after the Cpop the context is exactly what it was before the
     Cpush, and nothing in between observed it *)
  for i = 0 to n - 1 do
    if (not dead.(i)) && code.(i) = Cpush && vp_at.(i) >= 0 then begin
      let vp = vp_at.(i) in
      let rec scan j cands =
        if j >= n then None
        else if dead.(j) then scan (j + 1) cands
        else
          match code.(j) with
          | Cpop -> Some (j, cands)
          | Cand f when facts.fvp.(f) = vp -> scan (j + 1) (j :: cands)
          | Fmov _ | Fbin _ | Funop _ | Frand _ | Fread _ | Fwrite _
          | Fprint _ | Comment _ | Region _ ->
              scan (j + 1) cands
          | _ -> None
      in
      match scan (i + 1) [] with
      | Some (jpop, cands) ->
          dead.(i) <- true;
          dead.(jpop) <- true;
          List.iter (fun c -> dead.(c) <- true) cands
      | None -> ()
    end
  done;
  (* drop comments, then labels no surviving jump references *)
  Array.iteri
    (fun i ins -> match ins with Comment _ -> dead.(i) <- true | _ -> ())
    code;
  let referenced = Array.make (Array.length facts.label_pos) false in
  Array.iteri
    (fun i ins ->
      if not dead.(i) then
        match ins with
        | Jmp l | Jz (_, l) | Jnz (_, l) -> referenced.(l) <- true
        | _ -> ())
    code;
  Array.iteri
    (fun i ins ->
      match ins with
      | Label l when not referenced.(l) -> dead.(i) <- true
      | _ -> ())
    code;
  let removed = Array.fold_left (fun a d -> if d then a + 1 else a) 0 dead in
  if removed = 0 then ({ prog with code }, !rewritten, 0)
  else begin
    let out = ref [] in
    for i = n - 1 downto 0 do
      if not dead.(i) then out := code.(i) :: !out
    done;
    ({ prog with code = Array.of_list !out }, !rewritten, removed)
  end

(* ---- liveness-based dead-code elimination over registers and
   fields ---- *)

(* Combined variable space: register r -> r, field f -> nregs + f. *)

let op_gen live nregs = function
  | Reg r -> live.(r) <- true
  | Fld f -> live.(nregs + f) <- true
  | Imm _ -> ()

(* live := (live \ kills) ∪ gens across one kept instruction, walking
   backward.  Field kills happen only for provably total writes; a
   masked parallel write is total when the context is provably fully
   active on the known current set. *)
let bw_transfer facts vp_at full_at live i ins =
  let nregs = facts.nregs in
  let genop = op_gen live nregs in
  let genf f = live.(nregs + f) <- true in
  let killr r = live.(r) <- false in
  let killf_masked d =
    if vp_at.(i) >= 0 && facts.fvp.(d) = vp_at.(i) && full_at.(i) then
      live.(nregs + d) <- false
  in
  let killf_total d = live.(nregs + d) <- false in
  match ins with
  | Fmov (r, a) -> killr r; genop a
  | Fbin (_, r, a, b) -> killr r; genop a; genop b
  | Funop (_, r, a) -> killr r; genop a
  | Frand (r, a) -> killr r; genop a
  | Fread (r, f, a) -> killr r; genf f; genop a
  | Fwrite (f, a, v) -> genop a; genop v; ignore f (* partial *)
  | Jmp _ | Label _ | Halt | Comment _ | Region _ -> ()
  | Jz (a, _) | Jnz (a, _) -> genop a
  | Fprint (_, a) -> Option.iter genop a
  | Pmov (d, a) -> killf_masked d; genop a
  | Pbin (_, d, a, b) -> killf_masked d; genop a; genop b
  | Punop (_, d, a) -> killf_masked d; genop a
  | Pcoord (d, _) -> killf_masked d
  | Ptable (d, _) -> killf_total d
  | Prand (d, a) -> killf_masked d; genop a
  | Psel (d, c, a, b) -> killf_masked d; genop c; genop a; genop b
  | Pget (d, s, a) -> killf_masked d; genf s; genf a
  | Psend (_, s, a, _) -> genf s; genf a (* dst write is partial *)
  | Pnews (_, s, _, _) -> genf s (* border elements keep old values *)
  | Preduce (_, r, f) -> killr r; genf f
  | Pcount r -> killr r
  | Preduce_axis (_, d, s) -> killf_total d; genf s
  | Pscan (_, d, s, _) -> killf_total d; genf s
  | Cwith _ | Cpush | Cpop | Creset -> ()
  | Cand f -> genf f
  | Cread f -> killf_total f

(* May this instruction be deleted outright, given its only definition
   is dead?  Requires proving it cannot fault (fault identity is
   observable) and has no effect beyond the definition (LCG, output,
   context and control flow are always observable). *)
let removable facts geoms vp_at full_at live i ins =
  let nregs = facts.nregs in
  let vp = vp_at.(i) in
  let on_cur f = vp >= 0 && facts.fvp.(f) = vp in
  let rdead r = not live.(r) in
  let fdead f = not live.(nregs + f) in
  let fe_ok = function Imm _ | Reg _ -> true | Fld _ -> false in
  let imm_int = function Imm (SInt _) -> true | _ -> false in
  let geti_ok = function
    | Imm (SInt _) -> true
    | Fld f -> on_cur f && facts.fkind.(f) = KInt
    | Reg _ | Imm (SFloat _) -> false
  in
  let getf_ok = function Imm _ | Reg _ -> true | Fld f -> on_cur f in
  match ins with
  | Fmov (r, a) -> rdead r && fe_ok a
  | Fbin (op, r, a, b) -> (
      rdead r && fe_ok a && fe_ok b
      &&
      match op with
      | Add | Sub | Mul | Min | Max | Land | Lor | Eq | Ne | Lt | Le | Gt
      | Ge ->
          true
      | Div | Mod -> (
          match b with
          | Imm (SInt x) -> x <> 0
          | Imm (SFloat _) -> true (* float path: total *)
          | _ -> false)
      | Band | Bor | Bxor -> imm_int a && imm_int b
      | Shl | Shr -> (
          imm_int a
          &&
          match b with
          | Imm (SInt x) -> x >= 0 && x < Sys.int_size
          | _ -> false)
      | Any -> false)
  | Funop (op, r, a) -> (
      rdead r && fe_ok a
      &&
      match op with
      | Neg | Lnot | ToFloat | ToInt | Abs -> true
      | Bnot -> imm_int a)
  | Frand _ | Prand _ -> false (* advance the LCG stream *)
  | Fread (r, f, a) -> (
      rdead r
      &&
      match a with
      | Imm (SInt x) -> x >= 0 && x < facts.gsize.(facts.fvp.(f))
      | _ -> false)
  | Fwrite (f, a, v) ->
      fdead f
      && (match a with
         | Imm (SInt x) -> x >= 0 && x < facts.gsize.(facts.fvp.(f))
         | _ -> false)
      && (match facts.fkind.(f) with
         | KInt -> imm_int v
         | KFloat -> ( match v with Imm _ | Reg _ -> true | Fld _ -> false))
  | Jmp _ | Jz _ | Jnz _ | Label _ | Halt -> false
  | Comment _ | Region _ | Fprint _ -> false
  | Pmov (d, a) ->
      fdead d && on_cur d
      && (match facts.fkind.(d) with KInt -> geti_ok a | KFloat -> getf_ok a)
  | Pbin (op, d, a, b) -> (
      fdead d && on_cur d
      &&
      match facts.fkind.(d) with
      | KInt ->
          if is_cmp op then
            (* both dispatch paths are total for Reg/Imm and on-current
               fields of either kind *)
            getf_ok a && getf_ok b
          else
            geti_ok a && geti_ok b
            && (match op with
               | Add | Sub | Mul | Min | Max | Land | Lor | Band | Bor
               | Bxor ->
                   true
               | Div | Mod -> (
                   match b with Imm (SInt x) -> x <> 0 | _ -> false)
               | Shl | Shr -> (
                   match b with
                   | Imm (SInt x) -> x >= 0 && x < Sys.int_size
                   | _ -> false)
               | _ -> false)
      | KFloat -> float_binop_valid op && getf_ok a && getf_ok b)
  | Punop (op, d, a) -> (
      fdead d && on_cur d
      &&
      match (facts.fkind.(d), op) with
      | KInt, ToInt -> getf_ok a
      | KInt, (Neg | Lnot | Bnot | Abs) -> geti_ok a
      | KInt, ToFloat -> false
      | KFloat, (Neg | Abs | ToFloat) -> getf_ok a
      | KFloat, (Lnot | Bnot | ToInt) -> false)
  | Pcoord (d, axis) ->
      fdead d && on_cur d
      && facts.fkind.(d) = KInt
      && axis >= 0
      && axis < facts.grank.(vp)
  | Ptable (d, tbl) ->
      fdead d && on_cur d
      && facts.fkind.(d) = KInt
      && Array.length tbl = facts.gsize.(vp)
  | Psel (d, c, a, b) ->
      fdead d && on_cur d && getf_ok c
      &&
      let ok =
        match facts.fkind.(d) with KInt -> geti_ok | KFloat -> getf_ok
      in
      ok a && ok b
  | Pget _ | Psend _ -> false (* address contents can fault the router *)
  | Pnews (d, s, axis, _) ->
      fdead d && on_cur d && on_cur s
      && facts.fkind.(d) = facts.fkind.(s)
      && axis >= 0
      && axis < facts.grank.(vp)
  | Preduce (op, r, f) ->
      rdead r && on_cur f
      && (op = Any (* Any is special-cased with an inf identity *)
         || reduce_op_safe op facts.fkind.(f))
  | Pcount r -> rdead r && vp >= 0
  | Preduce_axis (op, d, s) ->
      fdead d && on_cur s
      && facts.fkind.(d) = facts.fkind.(s)
      && Geometry.is_prefix_of geoms.(facts.fvp.(d)) geoms.(vp)
      && reduce_op_safe op facts.fkind.(s)
  | Pscan (op, d, s, axis) ->
      fdead d && on_cur d && on_cur s
      && facts.fkind.(d) = facts.fkind.(s)
      && axis >= 0
      && axis < facts.grank.(vp)
      && scan_op_safe op facts.fkind.(s)
  | Cwith _ | Cpush | Cand _ | Cpop | Creset -> false
  | Cread f -> fdead f && on_cur f && facts.fkind.(f) = KInt

let dce_pass facts prog ~live_regs ~live_flds =
  let code = Array.copy prog.code in
  let n = facts.n in
  let cfg = build_cfg facts code in
  let instates = analyze facts cfg code in
  let vp_at = Array.make n (-2) and full_at = Array.make n false in
  for b = 0 to cfg.nblocks - 1 do
    match instates.(b) with
    | None -> ()
    | Some s0 ->
        let st = copy_st s0 in
        for i = cfg.bstart.(b) to cfg.bend.(b) - 1 do
          vp_at.(i) <- st.vp;
          full_at.(i) <- cur_full st;
          transfer facts st code.(i)
        done
  done;
  let nv = facts.nregs + facts.nflds in
  let exit_live = Array.make nv false in
  Array.iteri (fun r b -> if b then exit_live.(r) <- true) live_regs;
  Array.iteri
    (fun f b -> if b then exit_live.(facts.nregs + f) <- true)
    live_flds;
  let is_exit b =
    match code.(cfg.bend.(b) - 1) with
    | Halt -> true
    | Jmp _ -> false
    | _ -> cfg.bend.(b) = n
  in
  let live_out b livein =
    let out = Array.make nv false in
    if is_exit b then Array.blit exit_live 0 out 0 nv;
    List.iter
      (fun s ->
        let li = livein.(s) in
        for v = 0 to nv - 1 do
          if li.(v) then out.(v) <- true
        done)
      cfg.succs.(b);
    out
  in
  (* conservative block-level liveness fixpoint (every instr kept) *)
  let livein = Array.init cfg.nblocks (fun _ -> Array.make nv false) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = cfg.nblocks - 1 downto 0 do
      let live = live_out b livein in
      for i = cfg.bend.(b) - 1 downto cfg.bstart.(b) do
        bw_transfer facts vp_at full_at live i code.(i)
      done;
      if live <> livein.(b) then begin
        livein.(b) <- live;
        changed := true
      end
    done
  done;
  (* removal sweep: walk each block backward making deletion decisions
     against the (sound, conservative) fixpoint live sets *)
  let dead = Array.make n false in
  let removed = ref 0 in
  for b = 0 to cfg.nblocks - 1 do
    let live = live_out b livein in
    for i = cfg.bend.(b) - 1 downto cfg.bstart.(b) do
      if removable facts prog.geoms vp_at full_at live i code.(i) then begin
        dead.(i) <- true;
        incr removed
      end
      else bw_transfer facts vp_at full_at live i code.(i)
    done
  done;
  if !removed = 0 then ({ prog with code }, 0)
  else begin
    let out = ref [] in
    for i = n - 1 downto 0 do
      if not dead.(i) then out := code.(i) :: !out
    done;
    ({ prog with code = Array.of_list !out }, !removed)
  end

(* ---- the fixed-point driver ---- *)

let run_impl ~config ?live_out_fields ?live_out_regs ~obs prog =
  let input_instrs = Array.length prog.code in
  let mkstats rounds passes =
    {
      input_instrs;
      output_instrs = Array.length prog.code;
      rounds;
      passes;
    }
  in
  if not (enabled config) then (prog, mkstats 0 [])
  else begin
    let live_regs =
      match live_out_regs with
      | None -> Array.make prog.nregs true
      | Some l ->
          let a = Array.make prog.nregs false in
          List.iter (fun r -> if r >= 0 && r < prog.nregs then a.(r) <- true) l;
          a
    in
    let live_flds =
      match live_out_fields with
      | None -> Array.make (Array.length prog.fields) true
      | Some l ->
          let a = Array.make (Array.length prog.fields) false in
          List.iter
            (fun f -> if f >= 0 && f < Array.length a then a.(f) <- true)
            l;
          a
    in
    let cp_rw = ref 0 and gs_rw = ref 0 in
    let ph_rw = ref 0 and ph_rm = ref 0 in
    let dce_rm = ref 0 in
    let rounds = ref 0 in
    let cur = ref prog in
    let go = ref true in
    while !go && !rounds < config.max_rounds do
      let changed = ref false in
      (match build_facts !cur with
      | None -> go := false
      | Some facts ->
          incr rounds;
          if Obs.enabled obs then
            Obs.point obs "iropt.round"
              ~attrs:
                [
                  ("round", Obs.Json.Int !rounds);
                  ("instrs", Obs.Json.Int (Array.length !cur.code));
                ];
          if config.constprop || config.get_to_send || config.peephole then begin
            let p, rw, gs = constprop_pass config facts !cur in
            if rw > 0 || gs > 0 then changed := true;
            cp_rw := !cp_rw + rw;
            gs_rw := !gs_rw + gs;
            cur := p
          end;
          if config.peephole then (
            match build_facts !cur with
            | None -> ()
            | Some facts ->
                let p, rw, rm = peephole_pass facts !cur in
                if rw > 0 || rm > 0 then changed := true;
                ph_rw := !ph_rw + rw;
                ph_rm := !ph_rm + rm;
                cur := p);
          if config.dce then (
            match build_facts !cur with
            | None -> ()
            | Some facts ->
                let p, rm = dce_pass facts !cur ~live_regs ~live_flds in
                if rm > 0 then changed := true;
                dce_rm := !dce_rm + rm;
                cur := p));
      if not !changed then go := false
    done;
    let passes =
      [
        { pass = "constprop"; rewritten = !cp_rw; removed = 0 };
        { pass = "getsend"; rewritten = !gs_rw; removed = 0 };
        { pass = "peephole"; rewritten = !ph_rw; removed = !ph_rm };
        { pass = "dce"; rewritten = 0; removed = !dce_rm };
      ]
    in
    ( !cur,
      {
        input_instrs;
        output_instrs = Array.length !cur.code;
        rounds = !rounds;
        passes;
      } )
  end

(* Mirror one run's statistics into the scope as "iropt."-prefixed
   counters — the single stats surface `ucc --ir-opt-stats` now reads. *)
let publish_stats obs (s : stats) =
  if Obs.enabled obs then begin
    Obs.count obs "iropt.runs" 1;
    Obs.count obs "iropt.rounds" s.rounds;
    Obs.count obs "iropt.instrs_in" s.input_instrs;
    Obs.count obs "iropt.instrs_out" s.output_instrs;
    List.iter
      (fun p ->
        Obs.count obs ("iropt." ^ p.pass ^ ".rewritten") p.rewritten;
        Obs.count obs ("iropt." ^ p.pass ^ ".removed") p.removed)
      s.passes
  end

let run ?(config = default) ?live_out_fields ?live_out_regs ?(obs = Obs.null)
    prog =
  let ((_, stats) as result) =
    Obs.with_span obs "iropt.fixpoint"
      ~attrs:[ ("config", Obs.Json.Str (config_summary config)) ]
      (fun () -> run_impl ~config ?live_out_fields ?live_out_regs ~obs prog)
  in
  publish_stats obs stats;
  result

(* ---- static census and cost estimate for dump footers ---- *)

let class_counts (p : program) =
  let fe = ref 0
  and pe = ref 0
  and ctx = ref 0
  and news = ref 0
  and router = ref 0
  and red = ref 0
  and scan = ref 0
  and fecm = ref 0
  and free = ref 0 in
  Array.iter
    (fun ins ->
      match ins with
      | Fmov _ | Fbin _ | Funop _ | Frand _ | Jmp _ | Jz _ | Jnz _ | Cwith _
        ->
          incr fe
      | Fread _ | Fwrite _ -> incr fecm
      | Label _ | Comment _ | Region _ | Fprint _ | Halt -> incr free
      | Cpush | Cand _ | Cpop | Creset | Cread _ -> incr ctx
      | Pmov _ | Pbin _ | Punop _ | Pcoord _ | Ptable _ | Prand _ | Psel _ ->
          incr pe
      | Pnews _ -> incr news
      | Pget _ | Psend _ -> incr router
      | Preduce _ | Pcount _ | Preduce_axis _ -> incr red
      | Pscan _ -> incr scan)
    p.code;
  [
    ("fe", !fe);
    ("pe", !pe);
    ("context", !ctx);
    ("news", !news);
    ("router", !router);
    ("reduce", !red);
    ("scan", !scan);
    ("fe-cm", !fecm);
    ("free", !free);
  ]

let static_cost_ns ?(params = Cost.cm2_16k) (p : program) =
  let open Cost in
  let ratio_f f =
    float_of_int
      (vp_ratio params (Geometry.size p.geoms.(fst p.fields.(f))))
  in
  let total = ref 0.0 in
  let add x = total := !total +. x in
  Array.iter
    (fun ins ->
      match ins with
      | Fmov _ | Fbin _ | Funop _ | Frand _ | Jmp _ | Jz _ | Jnz _ | Cwith _
        ->
          add params.fe_op_ns
      | Fread _ | Fwrite _ -> add params.fe_cm_ns
      | Label _ | Comment _ | Region _ | Fprint _ | Halt -> ()
      | Cpush | Cpop | Creset ->
          (* current set unknown statically: unit vp ratio *)
          add (params.issue_ns +. params.context_ns)
      | Cand f | Cread f ->
          add (params.issue_ns +. (params.context_ns *. ratio_f f))
      | Pmov (d, _)
      | Pbin (_, d, _, _)
      | Punop (_, d, _)
      | Pcoord (d, _)
      | Ptable (d, _)
      | Prand (d, _)
      | Psel (d, _, _, _) ->
          add (params.issue_ns +. (params.pe_op_ns *. ratio_f d))
      | Pnews (d, _, _, _) ->
          add (params.issue_ns +. (params.news_ns *. ratio_f d))
      | Pget (d, _, _) | Psend (d, _, _, _) ->
          add (params.issue_ns +. (params.router_ns *. ratio_f d))
      | Preduce (_, _, f) | Preduce_axis (_, _, f) ->
          add (params.issue_ns +. (params.scan_ns *. ratio_f f))
      | Pcount _ -> add (params.issue_ns +. params.scan_ns)
      | Pscan (_, _, s, _) ->
          add (params.issue_ns +. (params.scan_ns *. ratio_f s)))
    p.code;
  !total

let pp_static_summary ?(params = Cost.cm2_16k) fmt p =
  Format.fprintf fmt "@[<v>static summary: %d instructions@,"
    (Array.length p.code);
  List.iter
    (fun (c, n) -> if n > 0 then Format.fprintf fmt "  %-7s %5d@," c n)
    (class_counts p);
  Format.fprintf fmt "  est. straight-line cost: %.3f ms@]"
    (static_cost_ns ~params p /. 1.0e6)
