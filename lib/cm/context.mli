(** Per-VP-set activity context.

    On the CM every processor carries a context flag; parallel instructions
    only take effect on active processors.  UC's nested [st] predicates map
    to a stack of flag vectors: entering a guarded construct pushes a copy
    of the current flags and ANDs the predicate in, leaving pops.

    Each frame caches its active count, so {!count_active}, {!depth} and
    {!all_active} are O(1): execution engines use [all_active] to select
    branch-free loops over fully-active VP sets. *)

type t

(** [create n] makes a context of [n] VPs, all active, stack depth 1. *)
val create : int -> t

val size : t -> int

(** Current activity vector (not a copy; callers must not mutate). *)
val active : t -> bool array

(** [is_active c p] tests VP [p] under the current context. *)
val is_active : t -> int -> bool

(** Number of currently active VPs.  O(1): maintained incrementally. *)
val count_active : t -> int

(** [all_active c] is [count_active c = size c].  O(1). *)
val all_active : t -> bool

(** Push a copy of the current flags. *)
val push : t -> unit

(** [land_mask c m] ANDs [m] into the current flags.
    @raise Invalid_argument on size mismatch. *)
val land_mask : t -> bool array -> unit

(** [land_ints c a] ANDs the truth of an int field ([a.(i) <> 0]) into the
    current flags without allocating an intermediate mask.
    @raise Invalid_argument on size mismatch. *)
val land_ints : t -> int array -> unit

(** [land_floats c a] ANDs the truth of a float field ([a.(i) <> 0.0])
    into the current flags without allocating an intermediate mask.
    @raise Invalid_argument on size mismatch. *)
val land_floats : t -> float array -> unit

(** Pop the top flags, restoring the previous context.
    @raise Failure if only the base context remains. *)
val pop : t -> unit

(** Depth of the stack (>= 1).  O(1). *)
val depth : t -> int

(** Snapshot of the whole stack, top first, as copies of the flag
    vectors — the serializable form used by [Machine.checkpoint]. *)
val frames : t -> bool array list

(** Rebuild a context from a {!frames} snapshot (active counts are
    recomputed).
    @raise Invalid_argument on an empty stack or mismatched sizes. *)
val of_frames : bool array list -> t

(** Reset to a single all-active context. *)
val reset : t -> unit
