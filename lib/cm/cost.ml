type params = {
  physical_procs : int;
  issue_ns : float;
  fe_op_ns : float;
  pe_op_ns : float;
  context_ns : float;
  news_ns : float;
  router_ns : float;
  scan_ns : float;
  fe_cm_ns : float;
}

let cm2_16k =
  {
    physical_procs = 16384;
    issue_ns = 1.0e5;     (* 0.1 ms front-end dispatch per macro-instruction *)
    fe_op_ns = 1.0e3;     (* 1 us scalar op on the SUN-4 front end *)
    pe_op_ns = 5.0e4;     (* 50 us bit-serial 32-bit ALU sweep *)
    context_ns = 2.0e4;
    news_ns = 1.5e5;      (* 0.15 ms NEWS shift *)
    router_ns = 1.2e6;    (* 1.2 ms general-router collective op *)
    scan_ns = 8.0e5;      (* 0.8 ms scan / global reduce *)
    fe_cm_ns = 1.0e5;     (* 0.1 ms single-element transfer *)
  }

type meter = {
  params : params;
  mutable elapsed_ns : float;
  mutable fe_ops : int;
  mutable pe_ops : int;
  mutable context_ops : int;
  mutable news_ops : int;
  mutable router_ops : int;
  mutable router_messages : int;
  mutable router_collisions : int;
  mutable router_max_fanin : int;
  mutable reductions : int;
  mutable scans : int;
  mutable fe_cm_transfers : int;
  (* simulated ns attributed per instruction class (issue overhead
     included), so "where does the time go" is answerable without
     replaying the run; sums to elapsed_ns *)
  mutable ns_fe : float;
  mutable ns_pe : float;
  mutable ns_context : float;
  mutable ns_news : float;
  mutable ns_router : float;
  mutable ns_reduce : float;
  mutable ns_scan : float;
  mutable ns_fe_cm : float;
}

let meter params =
  {
    params;
    elapsed_ns = 0.0;
    fe_ops = 0;
    pe_ops = 0;
    context_ops = 0;
    news_ops = 0;
    router_ops = 0;
    router_messages = 0;
    router_collisions = 0;
    router_max_fanin = 0;
    reductions = 0;
    scans = 0;
    fe_cm_transfers = 0;
    ns_fe = 0.0;
    ns_pe = 0.0;
    ns_context = 0.0;
    ns_news = 0.0;
    ns_router = 0.0;
    ns_reduce = 0.0;
    ns_scan = 0.0;
    ns_fe_cm = 0.0;
  }

let vp_ratio p n =
  if n <= 0 then 1 else max 1 ((n + p.physical_procs - 1) / p.physical_procs)

let ratio m size = float_of_int (vp_ratio m.params size)

let charge_fe m =
  m.fe_ops <- m.fe_ops + 1;
  m.elapsed_ns <- m.elapsed_ns +. m.params.fe_op_ns;
  m.ns_fe <- m.ns_fe +. m.params.fe_op_ns

let charge_pe m ~size =
  m.pe_ops <- m.pe_ops + 1;
  let dt = m.params.issue_ns +. (m.params.pe_op_ns *. ratio m size) in
  m.elapsed_ns <- m.elapsed_ns +. dt;
  m.ns_pe <- m.ns_pe +. dt

let charge_context m ~size =
  m.context_ops <- m.context_ops + 1;
  let dt = m.params.issue_ns +. (m.params.context_ns *. ratio m size) in
  m.elapsed_ns <- m.elapsed_ns +. dt;
  m.ns_context <- m.ns_context +. dt

let charge_news m ~size =
  m.news_ops <- m.news_ops + 1;
  let dt = m.params.issue_ns +. (m.params.news_ns *. ratio m size) in
  m.elapsed_ns <- m.elapsed_ns +. dt;
  m.ns_news <- m.ns_news +. dt

let log2f x = if x <= 1 then 0.0 else log (float_of_int x) /. log 2.0

let charge_router m ~size ~messages ~max_fanin =
  m.router_ops <- m.router_ops + 1;
  m.router_messages <- m.router_messages + messages;
  (* collisions = serialization steps beyond the first delivery at the
     hottest destination, the quantity the congestion term prices *)
  if max_fanin > 1 then
    m.router_collisions <- m.router_collisions + (max_fanin - 1);
  if max_fanin > m.router_max_fanin then m.router_max_fanin <- max_fanin;
  let congestion = 1.0 +. log2f max_fanin in
  let dt =
    m.params.issue_ns +. (m.params.router_ns *. ratio m size *. congestion)
  in
  m.elapsed_ns <- m.elapsed_ns +. dt;
  m.ns_router <- m.ns_router +. dt

let charge_reduce m ~size =
  m.reductions <- m.reductions + 1;
  let dt = m.params.issue_ns +. (m.params.scan_ns *. ratio m size) in
  m.elapsed_ns <- m.elapsed_ns +. dt;
  m.ns_reduce <- m.ns_reduce +. dt

let charge_scan m ~size =
  m.scans <- m.scans + 1;
  let dt = m.params.issue_ns +. (m.params.scan_ns *. ratio m size) in
  m.elapsed_ns <- m.elapsed_ns +. dt;
  m.ns_scan <- m.ns_scan +. dt

let charge_fe_cm m =
  m.fe_cm_transfers <- m.fe_cm_transfers + 1;
  m.elapsed_ns <- m.elapsed_ns +. m.params.fe_cm_ns;
  m.ns_fe_cm <- m.ns_fe_cm +. m.params.fe_cm_ns

let elapsed_seconds m = m.elapsed_ns /. 1.0e9

(* The canonical flat metrics view: deterministic, engine-identical,
   fixed order.  Every consumer of "machine stats" (Report metrics
   column, Machine.publish, bench rows) goes through this one list so
   names never drift between surfaces. *)
let metrics m =
  [
    ("fe_ops", float_of_int m.fe_ops);
    ("pe_ops", float_of_int m.pe_ops);
    ("context_ops", float_of_int m.context_ops);
    ("news_ops", float_of_int m.news_ops);
    ("router_ops", float_of_int m.router_ops);
    ("router_messages", float_of_int m.router_messages);
    ("router_collisions", float_of_int m.router_collisions);
    ("router_max_fanin", float_of_int m.router_max_fanin);
    ("reductions", float_of_int m.reductions);
    ("scans", float_of_int m.scans);
    ("fe_cm_transfers", float_of_int m.fe_cm_transfers);
    ("ns_fe", m.ns_fe);
    ("ns_pe", m.ns_pe);
    ("ns_context", m.ns_context);
    ("ns_news", m.ns_news);
    ("ns_router", m.ns_router);
    ("ns_reduce", m.ns_reduce);
    ("ns_scan", m.ns_scan);
    ("ns_fe_cm", m.ns_fe_cm);
  ]

let pp_meter fmt m =
  Format.fprintf fmt
    "@[<v>elapsed: %.6f s@ fe ops: %d (%.6f s)@ pe ops: %d (%.6f s)@ \
     context ops: %d (%.6f s)@ news ops: %d (%.6f s)@ router ops: %d \
     (messages: %d, collisions: %d, max fan-in: %d; %.6f s)@ reductions: \
     %d (%.6f s)@ scans: %d (%.6f s)@ fe<->cm transfers: %d (%.6f s)@]"
    (elapsed_seconds m) m.fe_ops (m.ns_fe /. 1e9) m.pe_ops (m.ns_pe /. 1e9)
    m.context_ops (m.ns_context /. 1e9) m.news_ops (m.ns_news /. 1e9)
    m.router_ops m.router_messages m.router_collisions m.router_max_fanin
    (m.ns_router /. 1e9) m.reductions (m.ns_reduce /. 1e9) m.scans
    (m.ns_scan /. 1e9) m.fe_cm_transfers (m.ns_fe_cm /. 1e9)
