(* Deterministic fault plans.  See fault.mli for the grammar. *)

exception Fault of string

type kind = Router | News | Chip

type event =
  | Transient of kind
  | Flip of { field : int; element : int; bit : int }

(* One explicit entry of a spec: an event pinned to an instruction
   serial, optionally firing on a single retry attempt only. *)
type entry = { serial : int; event : event; only : int option }

type spec = {
  seed : int;
  horizon : int;
  n_router : int;
  n_news : int;
  n_chip : int;
  n_flip : int;
  explicit : entry list; (* canonically sorted *)
}

type plan = { origin : string; events : (int * event) array }

let kind_name = function Router -> "router" | News -> "news" | Chip -> "chip"

let empty =
  {
    seed = 1;
    horizon = 10_000;
    n_router = 0;
    n_news = 0;
    n_chip = 0;
    n_flip = 0;
    explicit = [];
  }

let is_empty s =
  s.n_router = 0 && s.n_news = 0 && s.n_chip = 0 && s.n_flip = 0
  && s.explicit = []

let entry_string e =
  let suffix = match e.only with None -> "" | Some a -> Printf.sprintf "#%d" a in
  match e.event with
  | Transient k -> Printf.sprintf "%s@%d%s" (kind_name k) e.serial suffix
  | Flip { field; element; bit } ->
      Printf.sprintf "flip@%d:%d.%d.%d%s" e.serial field element bit suffix

(* Canonical order: serial, then rendering (deterministic tie-break). *)
let sort_entries es =
  List.stable_sort
    (fun a b ->
      match compare a.serial b.serial with
      | 0 -> compare (entry_string a) (entry_string b)
      | c -> c)
    es

let spec_string s =
  let random = s.n_router + s.n_news + s.n_chip + s.n_flip > 0 in
  let parts = ref [] in
  let add p = parts := p :: !parts in
  if random then begin
    add (Printf.sprintf "seed=%d" s.seed);
    add (Printf.sprintf "horizon=%d" s.horizon)
  end;
  if s.n_router > 0 then add (Printf.sprintf "router=%d" s.n_router);
  if s.n_news > 0 then add (Printf.sprintf "news=%d" s.n_news);
  if s.n_chip > 0 then add (Printf.sprintf "chip=%d" s.n_chip);
  if s.n_flip > 0 then add (Printf.sprintf "flip=%d" s.n_flip);
  List.iter (fun e -> add (entry_string e)) (sort_entries s.explicit);
  String.concat ";" (List.rev !parts)

let int_of token what v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> failwith (Printf.sprintf "bad fault token %S: %s is not an integer" token what)

let parse_exn text =
  let spec = ref empty in
  let explicit = ref [] in
  let token tok =
    (* strip an optional #A attempt qualifier first *)
    let body, only =
      match String.index_opt tok '#' with
      | None -> (tok, None)
      | Some i ->
          let a = int_of tok "attempt" (String.sub tok (i + 1) (String.length tok - i - 1)) in
          if a < 0 then failwith (Printf.sprintf "bad fault token %S: negative attempt" tok);
          (String.sub tok 0 i, Some a)
    in
    let explicit_event serial event =
      if serial < 0 then failwith (Printf.sprintf "bad fault token %S: negative serial" tok);
      explicit := { serial; event; only } :: !explicit
    in
    let reject_only () =
      if only <> None then
        failwith (Printf.sprintf "bad fault token %S: #attempt only applies to explicit events" tok)
    in
    match String.index_opt body '=' with
    | Some i ->
        reject_only ();
        let key = String.sub body 0 i in
        let v = int_of tok "value" (String.sub body (i + 1) (String.length body - i - 1)) in
        let count what n = if n < 0 then failwith (Printf.sprintf "bad fault token %S: negative %s count" tok what); n in
        (match key with
        | "seed" -> spec := { !spec with seed = v land 0x3FFFFFFF }
        | "horizon" ->
            if v < 1 then failwith (Printf.sprintf "bad fault token %S: horizon must be >= 1" tok);
            spec := { !spec with horizon = v }
        | "router" -> spec := { !spec with n_router = count "router" v }
        | "news" -> spec := { !spec with n_news = count "news" v }
        | "chip" -> spec := { !spec with n_chip = count "chip" v }
        | "flip" -> spec := { !spec with n_flip = count "flip" v }
        | _ -> failwith (Printf.sprintf "bad fault token %S: unknown key %S" tok key))
    | None -> (
        match String.index_opt body '@' with
        | None -> failwith (Printf.sprintf "bad fault token %S" tok)
        | Some i -> (
            let key = String.sub body 0 i in
            let rest = String.sub body (i + 1) (String.length body - i - 1) in
            match key with
            | "router" -> explicit_event (int_of tok "serial" rest) (Transient Router)
            | "news" -> explicit_event (int_of tok "serial" rest) (Transient News)
            | "chip" -> explicit_event (int_of tok "serial" rest) (Transient Chip)
            | "flip" -> (
                (* flip@S:F.E.B *)
                match String.index_opt rest ':' with
                | None -> failwith (Printf.sprintf "bad fault token %S: expected flip@S:F.E.B" tok)
                | Some j ->
                    let serial = int_of tok "serial" (String.sub rest 0 j) in
                    let coords = String.sub rest (j + 1) (String.length rest - j - 1) in
                    (match String.split_on_char '.' coords with
                    | [ f; e; b ] ->
                        explicit_event serial
                          (Flip
                             {
                               field = int_of tok "field" f;
                               element = int_of tok "element" e;
                               bit = int_of tok "bit" b;
                             })
                    | _ -> failwith (Printf.sprintf "bad fault token %S: expected flip@S:F.E.B" tok)))
            | _ -> failwith (Printf.sprintf "bad fault token %S: unknown event %S" tok key)))
  in
  String.split_on_char ';' text
  |> List.iter (fun part ->
         String.split_on_char ',' part
         |> List.iter (fun tok ->
                let tok = String.trim tok in
                if tok <> "" then token tok));
  { !spec with explicit = sort_entries (List.rev !explicit) }

let parse text = try Ok (parse_exn text) with Failure msg -> Error msg

(* The machine's own LCG recurrence, so fault schedules are as
   deterministic as everything else in the simulator. *)
let lcg state = (state * 1103515245 + 12345) land 0x3FFFFFFF

(* List.init's evaluation order is unspecified; build in index order. *)
let tabulate n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let instantiate spec ~attempt =
  if attempt < 0 then invalid_arg "Fault.instantiate: negative attempt";
  (* Random events are re-drawn per attempt: transient faults do not
     recur identically across retries. *)
  let state = ref (lcg ((spec.seed + (attempt * 48271) + 1) land 0x3FFFFFFF)) in
  let draw () =
    state := lcg !state;
    !state
  in
  let transients kind n =
    tabulate n (fun _ ->
        { serial = draw () mod spec.horizon; event = Transient kind; only = None })
  in
  let flips n =
    tabulate n (fun _ ->
        let serial = draw () mod spec.horizon in
        let field = draw () in
        let element = draw () in
        let bit = draw () in
        { serial; event = Flip { field; element; bit }; only = None })
  in
  let explicit =
    List.filter
      (fun e -> match e.only with None -> true | Some a -> a = attempt)
      spec.explicit
  in
  let all =
    explicit @ transients Router spec.n_router @ transients News spec.n_news
    @ transients Chip spec.n_chip @ flips spec.n_flip
  in
  let sorted = sort_entries all in
  {
    origin = Printf.sprintf "%s@attempt=%d" (spec_string spec) attempt;
    events = Array.of_list (List.map (fun e -> (e.serial, e.event)) sorted);
  }

let events p = p.events
let canonical p = p.origin
