(** Dataflow optimizer for the Paris IR.

    Runs between lowering and {!Machine.compile}, shared by every
    producer of {!Paris.program} values (the UC compiler, the C* EDSL,
    hand-written harnesses).  The pipeline iterates four pass families to
    a fixed point:

    - {b constprop}: front-end constant/copy propagation ([Fmov]/[Fbin]/
      [Funop] chains fold to immediates), field-level constant, copy and
      affine-address propagation, and algebraic simplification of
      parallel instructions.  Immediates are pushed into parallel
      operands so the pre-decoded engine selects its broadcast fast
      paths.
    - {b dce}: liveness-based dead-code elimination over registers and
      fields, rooted at the observable state ([live_out_fields] /
      [live_out_regs], the output log and the LCG stream).
    - {b peephole}: copy-chain collapsing, cancelling [Cpush]/[Cpop]
      pairs with no parallel instruction between them, jump threading,
      unreachable-code removal and dead-label/[Comment] compaction.
    - {b get_to_send} (the paper's remote-read-to-remote-write
      conversion): a [Pget] or [Psend] whose address field provably
      holds each VP's own linear index degrades to a local [Pmov]; with
      copy propagation and DCE this turns a get-then-forward pair into a
      single [Psend], halving the router traffic of the pair.

    Every rewrite is semantics-preserving on both execution engines: a
    transformed program produces the same output log, the same final
    contents of every live-out register and field, the same LCG stream
    and the same error message on faulting programs, and its simulated
    elapsed time is never higher (instruction removal and router-to-PE
    downgrades only ever remove cost; operand substitutions are
    charge-neutral).  Instruction counts ([icount], fuel) do shrink, so
    fault-injection plans and fuel slicing address the optimized stream
    — which is why the optimizer configuration participates in job
    digests and the checkpoint program-digest guard. *)

type config = {
  constprop : bool;
  dce : bool;
  peephole : bool;
  get_to_send : bool;
  max_rounds : int;  (** fixed-point bound; 0 disables the pipeline *)
}

(** All passes on, [max_rounds = 8]. *)
val default : config

(** All passes off: {!run} returns the program unchanged. *)
val off : config

(** [true] when the configuration performs any work at all. *)
val enabled : config -> bool

(** Canonical one-token rendering (["constprop,dce,getsend,peephole"],
    or ["off"]), stable for content digests and reports. *)
val config_summary : config -> string

(** Parse a flag argument: ["on"]/["all"]/["default"], ["off"]/["none"],
    or a comma-separated subset of
    [constprop|dce|peephole|getsend]. *)
val config_of_string : string -> (config, string) result

type pass_stats = {
  pass : string;
  rewritten : int;  (** instructions replaced in place *)
  removed : int;  (** instructions deleted *)
}

type stats = {
  input_instrs : int;
  output_instrs : int;
  rounds : int;  (** rounds actually executed before the fixed point *)
  passes : pass_stats list;  (** aggregated over rounds, pipeline order *)
}

val pp_stats : Format.formatter -> stats -> unit

(** [run prog] optimizes [prog].  [live_out_fields]/[live_out_regs]
    list the storage that is observable after the program halts (named
    UC arrays and scalars, a C* result member, ...); both default to
    {e everything}, under which dead-code elimination only deletes
    stores that are provably overwritten before any read.

    [obs] (default {!Obs.null}) receives an ["iropt.fixpoint"] span, an
    ["iropt.round"] point per fixed-point round, and the run's
    statistics as ["iropt."]-prefixed counters ([iropt.runs], [.rounds],
    [.instrs_in], [.instrs_out], and per pass [.<pass>.rewritten] /
    [.<pass>.removed]).  Telemetry never changes the optimized
    program. *)
val run :
  ?config:config ->
  ?live_out_fields:int list ->
  ?live_out_regs:int list ->
  ?obs:Obs.t ->
  Paris.program ->
  Paris.program * stats

(** Static instruction census by hardware class, for dump footers:
    [("fe", _); ("pe", _); ("context", _); ("news", _); ("router", _);
    ("reduce", _); ("scan", _); ("fe-cm", _); ("free", _)]. *)
val class_counts : Paris.program -> (string * int) list

(** Straight-line cost estimate in nanoseconds: every instruction
    charged once with its {!Cost} formula (unit congestion, full
    activity).  Loops are not unrolled, so this prices the static
    stream, not a run — useful to compare two dumps of the same
    program. *)
val static_cost_ns : ?params:Cost.params -> Paris.program -> float

(** Dump footer: {!class_counts} and {!static_cost_ns} in one block. *)
val pp_static_summary :
  ?params:Cost.params -> Format.formatter -> Paris.program -> unit
