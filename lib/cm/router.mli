(** General-router communication with combining.

    Models the CM-2 hypercube router: every active VP may read from
    ([get]) or write to ([send]) an arbitrary linear address of a target
    field.  Sends to a common destination are combined; UC's parallel
    assignment uses the checking combiner, which requires all values
    delivered to one destination to be identical (paper section 3.4:
    "each variable in a par statement may be assigned at most one value;
    if multiple values are assigned, they must be identical"). *)

(** Delivery statistics, used by the cost model for congestion. *)
type stats = { messages : int; max_fanin : int }

(** Raised by a checking send when two distinct values reach the same
    destination address. *)
exception Conflict of int

(** How concurrent writes to one destination are merged. *)
type 'a combine =
  | Overwrite_check of ('a -> 'a -> bool)
      (** all values must satisfy the given equality; raises {!Conflict} *)
  | Combine of ('a -> 'a -> 'a)  (** associative-commutative combining *)

(** Reusable fan-in counting state.  Per-address counters are tagged
    with an epoch that is bumped on every routing call, so a scratch can
    be shared by all [get]/[send] operations of one machine and makes
    them allocation-free in steady state (the counter arrays grow to the
    largest field ever routed and are then reused).  Not thread-safe:
    one scratch per machine. *)
type scratch

val scratch : unit -> scratch

(** [get ~mask ~addr ~src ~dst ()] performs [dst.(p) <- src.(addr.(p))]
    for every [p] with [mask.(p)].  [?scratch] supplies reusable fan-in
    counters; omitted, a fresh one is allocated for the call.
    @raise Invalid_argument if an address is outside [src]. *)
val get :
  ?scratch:scratch ->
  mask:bool array ->
  addr:int array ->
  src:'a array ->
  dst:'a array ->
  unit ->
  stats

(** [send ~mask ~addr ~src ~dst ~combine ()] delivers [src.(p)] to
    [dst.(addr.(p))] for every active [p], merging per-destination values
    with [combine].
    @raise Invalid_argument if an address is outside [dst]. *)
val send :
  ?scratch:scratch ->
  mask:bool array ->
  addr:int array ->
  src:'a array ->
  dst:'a array ->
  combine:'a combine ->
  unit ->
  stats
