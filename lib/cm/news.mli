(** NEWS-grid nearest-neighbour communication.

    The CM-2 NEWS grid lets every processor fetch from a fixed-offset
    neighbour along one axis far more cheaply than through the general
    router.  [shift] models a grid shift: every destination whose source
    coordinate falls inside the geometry receives the source value;
    destinations whose source would fall off the edge keep their previous
    value (the code generator only emits NEWS ops under a context that
    masks such border positions). *)

(** [shift g ~axis ~delta src dst] writes [dst.(p) <- src.(p with
    coordinate[axis] incremented by delta)] for every in-range position.
    Returns the number of positions updated.
    @raise Invalid_argument on size/axis errors. *)
val shift :
  Geometry.t -> axis:int -> delta:int -> 'a array -> 'a array -> int

(** [shift_masked] is {!shift} restricted to positions where the
    destination mask is true. *)
val shift_masked :
  Geometry.t ->
  axis:int ->
  delta:int ->
  mask:bool array ->
  'a array ->
  'a array ->
  int

(** [shift_sub] is {!shift} restricted to destination positions in
    [\[lo, hi)], for the sharded engine's per-chunk execution.  [src]
    and [dst] must be distinct arrays. *)
val shift_sub :
  Geometry.t ->
  axis:int ->
  delta:int ->
  lo:int ->
  hi:int ->
  'a array ->
  'a array ->
  unit

(** [shift_masked_sub] is {!shift_masked} restricted to destination
    positions in [\[lo, hi)].  [src] and [dst] must be distinct. *)
val shift_masked_sub :
  Geometry.t ->
  axis:int ->
  delta:int ->
  mask:bool array ->
  lo:int ->
  hi:int ->
  'a array ->
  'a array ->
  unit
