(** Native compilation backend: Paris IR -> OCaml source -> [.cmxs].

    {!source} walks a {!Paris.program} and emits a self-contained OCaml
    module: monomorphic [for]-loops directly over the machine's int/float
    field arrays, VP-set activity checks specialized per instruction
    (branch-free bodies when the context is fully active), labels compiled
    to a tail-call state machine over a dense [match] on the program
    counter, and geometry constants, operand shapes and immediates baked in
    as literals.  {!entry_for} builds that module with
    [ocamlfind ocamlopt -shared], [Dynlink]s the resulting [.cmxs] and
    returns the entry point, which the generated code hands back through
    the {!register} hook — so [lib/cm] never depends on generated code.

    Soundness contract (enforced differentially by [test/test_engine.ml]
    and [make ci-native]): a native run is bit-identical to the fast and
    reference engines on registers, fields, output, statistics, simulated
    nanoseconds, regions, the random stream and error messages.  To keep
    that bar cheap, can-fault and order-sensitive instructions — router
    traffic ([Pget]/[Psend]), NEWS shifts, scans, axis reductions, tables,
    and integer [Pbin]s whose divisor/shift operand could fault mid-loop —
    are compiled to calls back into the fast engine's pre-decoded kernels
    ([c_kernel]) instead of being open-coded.

    Compiled entries are memoized per process (a [Dynlink]ed module cannot
    be unloaded) and content-addressed on disk through the {!store} hook
    Ucd.Cache installs: the key is the IR digest + {!version} + the
    compiler version, so a rebuilt repo or a codegen change never reuses a
    stale artifact. *)

(** Why native compilation is not available; {!entry_for} raises
    {!Unavailable} carrying one of these, and the machine falls back to
    the fast engine with a one-line warning, never an error. *)
type reason =
  | Bytecode_only  (** the running program is not native code, so
                       [Dynlink] cannot load [.cmxs] plugins *)
  | No_toolchain of string  (** [ocamlfind]/[ocamlopt] not on PATH, or the
                                compiled [cm] library artifacts were not
                                found next to the executable *)
  | Build_failed of string  (** [ocamlopt -shared] exited nonzero *)
  | Dynlink_failed of string  (** the built/cached [.cmxs] did not load *)
  | Disabled of string  (** turned off by {!force_unavailable} *)

val describe : reason -> string

exception Unavailable of reason

(** The ABI between the machine and a generated module.  The machine
    builds one per execution slice from its own state; the generated
    entry mutates the [c_*] state fields and the shared arrays in place.
    Cold paths stay in [lib/cm] as closures so exception identity
    ([Machine.Error]) and output/region bookkeeping are shared, not
    duplicated. *)
type ctx = {
  c_regs : Paris.scalar array;
  c_ints : int array array;  (** per-field int data; [[||]] for floats *)
  c_floats : float array array;  (** per-field float data; [[||]] for ints *)
  c_ctxs : Context.t array;  (** per-VP-set activity contexts *)
  c_sizes : int array;  (** per-VP-set element counts *)
  c_meter : Cost.meter;
  mutable c_pc : int;
  mutable c_fuel : int;
  mutable c_icount : int;
  mutable c_rand : int;
  mutable c_cur : int;
  mutable c_racc : float ref;  (** current region's ns accumulator *)
  c_fail : string -> exn;  (** builds a [Machine.Error] *)
  c_not_cur : string -> int -> int -> exn;
      (** [c_not_cur what field cur]: the [check_on_current] error for a
          field not on the current VP set (or no set selected) *)
  c_emit : string -> unit;  (** append one [Fprint] output line *)
  c_region : string -> int -> float ref;
      (** [c_region name icount] switches the machine's region and
          returns the new accumulator *)
  c_kernel : int -> int -> unit;
      (** [c_kernel pc cur] syncs [cur] and runs the fast engine's
          pre-decoded kernel for instruction [pc] *)
  c_fe_bin : Paris.binop -> Paris.scalar -> Paris.scalar -> Paris.scalar;
  c_fe_unop : Paris.unop -> Paris.scalar -> Paris.scalar;
  c_to_int : Paris.scalar -> int;
  c_to_float : Paris.scalar -> float;
  c_truthy : Paris.scalar -> bool;
}

(** [entry ctx steps] executes at most [steps] instructions (use
    [max_int] for "to completion"), mutating [ctx] and its arrays. *)
type entry = ctx -> int -> unit

(** Called exactly once, at load time, by each generated module. *)
val register : entry -> unit

(** Bumped whenever emitted code could change shape; part of the cache
    key, so stale [.cmxs] artifacts are never reused. *)
val version : int

(** Content address of a program's native code: MD5 of the marshalled IR,
    {!version} and [Sys.ocaml_version]. *)
val key : Paris.program -> string

(** The generated OCaml source.  A pure function of the program: the same
    IR yields byte-identical source (unit-tested), which is what makes
    {!key} a sound cache address. *)
val source : Paris.program -> string

(** Persistent [.cmxs] store hook, installed by [Ucd.Cache] so compiled
    artifacts are shared across processes; [st_record] reports codegen and
    build wall-clock milliseconds for the cache's telemetry counters. *)
type store = {
  st_load : string -> string option;  (** key -> raw [.cmxs] bytes *)
  st_save : string -> string -> unit;
  st_record : codegen_ms:float -> build_ms:float -> unit;
}

val set_store : store option -> unit

(** One-time toolchain probe: [Ok ()] when native compilation can work
    here ([Dynlink.is_native], a compiler on PATH, the compiled [cm]
    library locatable), [Error message] otherwise.  Memoized. *)
val available : unit -> (unit, string) result

(** [entry_for prog] returns the compiled entry for [prog]: from the
    per-process memo, else the {!store} hook, else by emitting, building
    and loading it (in an [Obs] span ["cm.codegen"] when tracing).
    Thread-safe.
    @raise Unavailable with a typed {!reason} on any failure. *)
val entry_for : ?obs:Obs.t -> Paris.program -> entry

(** Which instructions compile natively vs call back into the fast
    kernels: [(native, fallback)] as mnemonic -> count, each sorted by
    mnemonic.  Purely static — the [paris] CLI footer uses it so codegen
    coverage is observable without running. *)
val coverage : Paris.program -> (string * int) list * (string * int) list

(** Cumulative process-wide counters (all codegen activity, any store). *)
type stats = {
  mem_hits : int;  (** entries served from the per-process memo *)
  disk_hits : int;  (** entries loaded from the {!store} hook *)
  builds : int;  (** entries emitted and compiled here *)
  codegen_ms : float;  (** total source-emission wall-clock ms *)
  build_ms : float;  (** total [ocamlopt]+[Dynlink] wall-clock ms *)
}

val stats : unit -> stats

(** Test hook: [force_unavailable (Some why)] makes every subsequent
    {!entry_for} raise [Unavailable (Disabled why)] — simulating a host
    without a toolchain; [force_unavailable None] restores reality. *)
val force_unavailable : string option -> unit
