(* Each stack frame caches its active count so [count_active], [depth]
   and the [all_active] fast-path test are O(1); the count is maintained
   for free inside the O(n) mask updates, which already touch every
   flag. *)

type frame = { flags : bool array; mutable count : int }

type t = { n : int; mutable stack : frame list; mutable depth : int }

let base_frame n = { flags = Array.make n true; count = n }

let create n =
  if n < 0 then invalid_arg "Context.create: negative size";
  { n; stack = [ base_frame n ]; depth = 1 }

let size c = c.n

let top c =
  match c.stack with
  | [] -> assert false
  | frame :: _ -> frame

let active c = (top c).flags
let is_active c p = (top c).flags.(p)
let count_active c = (top c).count
let all_active c = (top c).count = c.n

let push c =
  let f = top c in
  c.stack <- { flags = Array.copy f.flags; count = f.count } :: c.stack;
  c.depth <- c.depth + 1

let land_mask c m =
  if Array.length m <> c.n then invalid_arg "Context.land_mask: size mismatch";
  let f = top c in
  let flags = f.flags in
  let count = ref 0 in
  for i = 0 to c.n - 1 do
    let v = flags.(i) && m.(i) in
    flags.(i) <- v;
    if v then incr count
  done;
  f.count <- !count

let land_ints c a =
  if Array.length a <> c.n then invalid_arg "Context.land_ints: size mismatch";
  let f = top c in
  let flags = f.flags in
  let count = ref 0 in
  for i = 0 to c.n - 1 do
    let v = flags.(i) && a.(i) <> 0 in
    flags.(i) <- v;
    if v then incr count
  done;
  f.count <- !count

let land_floats c a =
  if Array.length a <> c.n then invalid_arg "Context.land_floats: size mismatch";
  let f = top c in
  let flags = f.flags in
  let count = ref 0 in
  for i = 0 to c.n - 1 do
    let v = flags.(i) && a.(i) <> 0.0 in
    flags.(i) <- v;
    if v then incr count
  done;
  f.count <- !count

let pop c =
  match c.stack with
  | [] | [ _ ] -> failwith "Context.pop: base context"
  | _ :: rest ->
      c.stack <- rest;
      c.depth <- c.depth - 1

let depth c = c.depth

let frames c =
  List.map (fun f -> Array.copy f.flags) c.stack

let of_frames flags_list =
  match flags_list with
  | [] -> invalid_arg "Context.of_frames: empty stack"
  | first :: _ ->
      let n = Array.length first in
      let frame flags =
        if Array.length flags <> n then
          invalid_arg "Context.of_frames: frame size mismatch";
        let count = ref 0 in
        Array.iter (fun v -> if v then incr count) flags;
        { flags = Array.copy flags; count = !count }
      in
      let stack = List.map frame flags_list in
      { n; stack; depth = List.length stack }

let reset c =
  c.stack <- [ base_frame c.n ];
  c.depth <- 1
