type stats = { messages : int; max_fanin : int }

exception Conflict of int

type 'a combine =
  | Overwrite_check of ('a -> 'a -> bool)
  | Combine of ('a -> 'a -> 'a)

(* Fan-in counting scratch.  [count.(a)] is valid only when
   [stamp.(a) = epoch]; bumping the epoch invalidates every slot at
   once, so repeated routing operations are allocation-free once the
   arrays have grown to the largest field routed through them. *)
type scratch = {
  mutable stamp : int array;
  mutable count : int array;
  mutable epoch : int;
}

let scratch () = { stamp = [||]; count = [||]; epoch = 0 }

let prepare sc n =
  if Array.length sc.stamp < n then begin
    sc.stamp <- Array.make n 0;
    sc.count <- Array.make n 0;
    sc.epoch <- 0
  end;
  sc.epoch <- sc.epoch + 1;
  sc.epoch

(* [bump sc e a] counts one more delivery to address [a] in the routing
   operation stamped [e] and returns the fan-in so far. *)
let bump sc e a =
  let f = (if sc.stamp.(a) = e then sc.count.(a) else 0) + 1 in
  sc.stamp.(a) <- e;
  sc.count.(a) <- f;
  f

let check_lengths name mask addr src_or_dst_len =
  ignore src_or_dst_len;
  if Array.length mask <> Array.length addr then
    invalid_arg (name ^ ": mask/addr length mismatch")

let get ?scratch:sc ~mask ~addr ~src ~dst () =
  check_lengths "Router.get" mask addr (Array.length src);
  if Array.length dst <> Array.length addr then
    invalid_arg "Router.get: dst/addr length mismatch";
  let sc = match sc with Some sc -> sc | None -> scratch () in
  let e = prepare sc (Array.length src) in
  let messages = ref 0 in
  let max_fanin = ref 0 in
  Array.iteri
    (fun p m ->
      if m then begin
        let a = addr.(p) in
        if a < 0 || a >= Array.length src then
          invalid_arg "Router.get: address out of range";
        dst.(p) <- src.(a);
        incr messages;
        let f = bump sc e a in
        if f > !max_fanin then max_fanin := f
      end)
    mask;
  { messages = !messages; max_fanin = max !max_fanin 1 }

let send ?scratch:sc ~mask ~addr ~src ~dst ~combine () =
  check_lengths "Router.send" mask addr (Array.length dst);
  if Array.length src <> Array.length addr then
    invalid_arg "Router.send: src/addr length mismatch";
  let sc = match sc with Some sc -> sc | None -> scratch () in
  let e = prepare sc (Array.length dst) in
  let messages = ref 0 in
  let max_fanin = ref 0 in
  Array.iteri
    (fun p m ->
      if m then begin
        let a = addr.(p) in
        if a < 0 || a >= Array.length dst then
          invalid_arg "Router.send: address out of range";
        let v = src.(p) in
        incr messages;
        let f = bump sc e a in
        if f > !max_fanin then max_fanin := f;
        (match combine with
        | Overwrite_check eq ->
            if f = 1 then dst.(a) <- v
            else if not (eq dst.(a) v) then raise (Conflict a)
        | Combine merge -> if f = 1 then dst.(a) <- v else dst.(a) <- merge dst.(a) v)
      end)
    mask;
  { messages = !messages; max_fanin = max !max_fanin 1 }
