(** Execution engine for {!Paris} programs.

    A machine instance owns the storage for one program: front-end
    registers, per-VP fields, per-VP-set activity contexts, a deterministic
    random-number generator and a {!Cost.meter}.  Inputs may be loaded into
    fields before {!run}; results are read back from fields or registers
    afterwards.

    Four engines execute the same program:

    - [`Fast] (the default) pre-decodes the program once ({!compile})
      into an array of specialized instruction kernels — operand shapes,
      field kinds, VP-set checks, label targets and geometry constants
      resolved at decode time — and runs monomorphic int/float array
      loops, with branch-free fast paths when the activity context is
      fully active.
    - [`Sharded n] partitions each VP set's element range into [n]
      contiguous chunks and executes the fast engine's kernels SPMD
      across a team of worker domains (see {!Shard}): elementwise
      kernels fan out with zero synchronization, NEWS shifts exchange
      only per-chunk destination segments, and everything
      order-sensitive (router traffic, scans, float reductions, the
      random stream, faults) runs serially on the main domain between
      fan-outs.  Results depend only on the logical chunk count, never
      on how many worker domains happen to be available.
    - [`Native] compiles the program further: {!Codegen} emits a
      self-contained OCaml module from the IR — monomorphic loops over
      the field arrays, activity checks specialized per instruction,
      labels a tail-call state machine, constants baked in — builds it
      with [ocamlfind ocamlopt -shared] and [Dynlink]s the [.cmxs]
      (content-addressed-cached, see {!Codegen.key}).  Can-fault and
      order-sensitive instructions call back into the fast engine's
      kernels.  If native compilation is unavailable for any reason
      (bytecode host, no toolchain, build or Dynlink failure, fault
      injection requested), the machine warns once on stderr and runs
      the fast engine instead — never an error; {!effective_engine}
      reports which engine actually executed.
    - [`Reference] is the original per-instruction tree-walking
      interpreter, kept as the semantic baseline.

    All engines are observably identical bit for bit — at every shard
    count: registers, fields, output, statistics, simulated nanoseconds,
    error messages and the random stream all agree (enforced
    differentially by [test/test_engine.ml]).  The fast, sharded and
    native engines are wall-clock optimizations only. *)

(** Raised on any dynamic error: kind mismatch, address out of range,
    conflicting parallel assignment, missing [Cwith], division by zero,
    shift amount out of range, or fuel exhaustion.  An [Error] is a
    program bug: retrying cannot help. *)
exception Error of string

(** Raised when an injected transient fault (see {!Fault}) fires.
    Distinguishable from {!Error}: a [Fault] is transient, so a caller
    may retry the run (possibly from a {!checkpoint}).  This is the same
    exception as [Fault.Fault]. *)
exception Fault of string

type t

type engine = [ `Fast | `Reference | `Sharded of int | `Native ]

(** [create ?cost ?seed ?fuel ?engine ?faults program] allocates storage
    for [program].  [fuel] bounds the number of executed instructions
    (default 50M); [seed] initializes the deterministic LCG used by
    [rand]; [engine] selects the execution engine (default [`Fast]);
    [faults] installs a concrete fault plan consulted before every
    instruction — both engines consult it at the same point, so a plan
    perturbs them bit-identically.  [obs] attaches a telemetry scope
    (default {!Obs.null}); the machine only ever writes into it, so
    telemetry on or off never changes program results.
    @raise Invalid_argument if [engine] is [`Sharded n] with [n < 1]. *)
val create :
  ?cost:Cost.params ->
  ?seed:int ->
  ?fuel:int ->
  ?engine:engine ->
  ?faults:Fault.plan ->
  ?obs:Obs.t ->
  Paris.program ->
  t

val program : t -> Paris.program
val engine : t -> engine

(** Pre-decode the program into instruction kernels (a no-op if already
    compiled, or for the reference engine — [`Fast] {!run} compiles on
    first use; calling [compile] beforehand just front-loads the work). *)
val compile : t -> unit

(** Attempt native compilation for this machine (a no-op unless it is
    the first attempt): [Ok ()] when a Dynlink'd entry is ready,
    [Error why] when the machine will fall back to the fast kernels.
    The outcome is sticky for the machine's lifetime.  [`Native] {!run}
    calls this on first use; calling it beforehand just front-loads the
    codegen/build.  Never raises; the first fallback in the process
    warns once on stderr (quietly for the fault-injection policy
    fallback). *)
val compile_native : t -> (unit, string) result

(** The engine that will actually execute: [`Native] resolves to
    [`Native] or [`Fast] depending on {!compile_native}'s outcome (the
    attempt is made if it has not been yet); every other engine is
    itself.  Batch/serve report rows record this as
    [engine_effective]. *)
val effective_engine : t -> engine

(** Execute from the current [pc] to [Halt] (or the end of code).
    A fresh machine starts at the first instruction; after {!run_slice}
    returned [`More], [run] continues where the slice stopped.
    @raise Error on any dynamic fault.
    @raise Fault when an injected transient fault fires; the machine is
    left exactly at the pre-instruction state. *)
val run : t -> unit

(** [run_slice m ~fuel_slice] executes at most [fuel_slice] instructions
    and reports whether the program completed.  Interleaving slices with
    {!checkpoint}/{!restore} is bit-identical to an uninterrupted {!run}
    (a property test in [test/test_engine.ml] enforces this).
    @raise Invalid_argument if [fuel_slice <= 0]. *)
val run_slice : t -> fuel_slice:int -> [ `Done | `More ]

(** Whether execution has reached the end of the program. *)
val finished : t -> bool

(** Count of instructions executed so far (the fault-plan serial). *)
val icount : t -> int

(** Serialize the full machine state — registers, fields, context
    stacks, meter, random stream, output, regions, pc, fault-plan
    cursor — into a versioned, self-describing string.  The program is
    identified by digest, not serialized. *)
val checkpoint : t -> string

(** [restore ?engine ?faults program data] rebuilds a machine from a
    {!checkpoint}.  [program] must be the very program the checkpoint
    was taken from (checked by digest).  The engine is free to differ
    from the checkpointing machine's: observables are engine-identical.
    If [faults] is the same concrete plan, its cursor resumes; if it
    differs (a retry attempt's new plan), events scheduled before the
    checkpoint are considered survived.
    @raise Error on a bad magic/version, corrupt data, or a program
    mismatch. *)
val restore :
  ?engine:engine -> ?faults:Fault.plan -> ?obs:Obs.t -> Paris.program -> string -> t

(** Fault-injection history, in order: bit flips applied and transient
    faults fired.  Engine-identical, so part of the differential
    snapshot. *)
val fault_log : t -> string list

val reg : t -> int -> Paris.scalar
val reg_int : t -> int -> int
val reg_float : t -> int -> float

(** Copy a field's contents out of the machine. *)
val field_ints : t -> int -> int array
val field_floats : t -> int -> float array

(** Load data into a field (length must match the VP-set size). *)
val set_field_ints : t -> int -> int array -> unit
val set_field_floats : t -> int -> float array -> unit

val meter : t -> Cost.meter

(** Lines appended by [Fprint] instructions, in program order. *)
val output : t -> string list

(** Simulated seconds attributed to each [Region] marker, largest first.
    Cost incurred before the first marker lands in ["(startup)"]. *)
val regions : t -> (string * float) list

(** Simulated elapsed seconds so far. *)
val elapsed_seconds : t -> float

(** Mirror the machine's aggregate statistics into its telemetry scope:
    every {!Cost.metrics} entry as a ["cm."]-prefixed counter (or
    ["cm.ns_*"] sample), ["cm.elapsed_ns"], per-region simulated seconds
    as ["cm.region.<name>"] samples, and the fault-log length.  Call
    once after a run; counters are monotonic, so publishing twice would
    double them.  A no-op on a disabled scope. *)
val publish : t -> unit
