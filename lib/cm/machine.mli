(** Execution engine for {!Paris} programs.

    A machine instance owns the storage for one program: front-end
    registers, per-VP fields, per-VP-set activity contexts, a deterministic
    random-number generator and a {!Cost.meter}.  Inputs may be loaded into
    fields before {!run}; results are read back from fields or registers
    afterwards.

    Two engines execute the same program:

    - [`Fast] (the default) pre-decodes the program once ({!compile})
      into an array of specialized instruction kernels — operand shapes,
      field kinds, VP-set checks, label targets and geometry constants
      resolved at decode time — and runs monomorphic int/float array
      loops, with branch-free fast paths when the activity context is
      fully active.
    - [`Reference] is the original per-instruction tree-walking
      interpreter, kept as the semantic baseline.

    Both engines are observably identical bit for bit: registers, fields,
    output, statistics, simulated nanoseconds, error messages and the
    random stream all agree (enforced differentially by
    [test/test_engine.ml]).  The fast engine is a wall-clock optimization
    only. *)

(** Raised on any dynamic error: kind mismatch, address out of range,
    conflicting parallel assignment, missing [Cwith], division by zero,
    shift amount out of range, or fuel exhaustion. *)
exception Error of string

type t

type engine = [ `Fast | `Reference ]

(** [create ?cost ?seed ?fuel ?engine program] allocates storage for
    [program].  [fuel] bounds the number of executed instructions
    (default 50M); [seed] initializes the deterministic LCG used by
    [rand]; [engine] selects the execution engine (default [`Fast]). *)
val create :
  ?cost:Cost.params ->
  ?seed:int ->
  ?fuel:int ->
  ?engine:engine ->
  Paris.program ->
  t

val program : t -> Paris.program
val engine : t -> engine

(** Pre-decode the program into instruction kernels (a no-op if already
    compiled, or for the reference engine — [`Fast] {!run} compiles on
    first use; calling [compile] beforehand just front-loads the work). *)
val compile : t -> unit

(** Execute from the first instruction to [Halt] (or the end of code).
    @raise Error on any dynamic fault. *)
val run : t -> unit

val reg : t -> int -> Paris.scalar
val reg_int : t -> int -> int
val reg_float : t -> int -> float

(** Copy a field's contents out of the machine. *)
val field_ints : t -> int -> int array
val field_floats : t -> int -> float array

(** Load data into a field (length must match the VP-set size). *)
val set_field_ints : t -> int -> int array -> unit
val set_field_floats : t -> int -> float array -> unit

val meter : t -> Cost.meter

(** Lines appended by [Fprint] instructions, in program order. *)
val output : t -> string list

(** Simulated seconds attributed to each [Region] marker, largest first.
    Cost incurred before the first marker lands in ["(startup)"]. *)
val regions : t -> (string * float) list

(** Simulated elapsed seconds so far. *)
val elapsed_seconds : t -> float
