(* Native compilation backend: Paris IR -> OCaml source -> .cmxs.

   The contract and the shape of the generated module are documented in
   codegen.mli.  Everything here divides into two halves:

   - the *emitter* ([source]): a pure function from a Paris program to
     OCaml source text.  Each instruction becomes one arm of a dense
     [match] over the program counter inside a tail-recursive step
     function; operand shapes, field kinds, VP-set sizes, label targets
     and geometry constants are baked in as literals.  The emitter
     mirrors the fast engine's kernel templates in machine.ml *exactly*
     — same check/charge/resolve order, same error strings, same
     dense-vs-masked specialization — because the soundness bar is
     bit-identical behaviour, not merely equal answers.  Anything
     order-sensitive or can-fault-mid-loop (router ops, NEWS, scans,
     axis reductions, tables, non-total integer Pbins) compiles to a
     call back into the fast engine's pre-decoded kernel instead.

   - the *builder* ([entry_for]): per-process memo -> content-addressed
     store hook -> emit + [ocamlfind ocamlopt -shared] + Dynlink.  All
     failures raise [Unavailable] with a typed reason; the machine turns
     that into a warn-once fallback to the fast engine. *)

open Paris

type reason =
  | Bytecode_only
  | No_toolchain of string
  | Build_failed of string
  | Dynlink_failed of string
  | Disabled of string

let describe = function
  | Bytecode_only -> "host program is bytecode; Dynlink cannot load .cmxs plugins"
  | No_toolchain msg -> "no native toolchain: " ^ msg
  | Build_failed msg -> "native build failed: " ^ msg
  | Dynlink_failed msg -> "dynlink failed: " ^ msg
  | Disabled msg -> "disabled: " ^ msg

exception Unavailable of reason

type ctx = {
  c_regs : Paris.scalar array;
  c_ints : int array array;
  c_floats : float array array;
  c_ctxs : Context.t array;
  c_sizes : int array;
  c_meter : Cost.meter;
  mutable c_pc : int;
  mutable c_fuel : int;
  mutable c_icount : int;
  mutable c_rand : int;
  mutable c_cur : int;
  mutable c_racc : float ref;
  c_fail : string -> exn;
  c_not_cur : string -> int -> int -> exn;
  c_emit : string -> unit;
  c_region : string -> int -> float ref;
  c_kernel : int -> int -> unit;
  c_fe_bin : Paris.binop -> Paris.scalar -> Paris.scalar -> Paris.scalar;
  c_fe_unop : Paris.unop -> Paris.scalar -> Paris.scalar;
  c_to_int : Paris.scalar -> int;
  c_to_float : Paris.scalar -> float;
  c_truthy : Paris.scalar -> bool;
}

type entry = ctx -> int -> unit

(* The registration hole a generated module drops its entry into at
   Dynlink time.  Guarded by [lock] below: cleared before each load,
   read right after. *)
let pending : entry option ref = ref None
let register e = pending := Some e

let version = 1

let key prog =
  let ir =
    Marshal.to_string
      (prog.geoms, prog.fields, prog.nregs, prog.nlabels, prog.code)
      []
  in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|codegen-v%d|%s" ir version Sys.ocaml_version))

(* ---- emitter ---- *)

let spf = Printf.sprintf

(* Exact float literal: round-trips the IEEE bits, so the generated
   constant is the same double the interpreter holds. *)
let float_lit f = spf "(Int64.float_of_bits 0x%LxL)" (Int64.bits_of_float f)
let int_lit i = spf "(%d)" i

(* Local copies of the fast engine's static operator predicates.
   Machine depends on this module, so they cannot be imported; the
   differential fuzzer keeps them honest. *)
let is_cmp = function Eq | Ne | Lt | Le | Gt | Ge -> true | _ -> false

(* Whether an int Pbin can never fault mid-loop (mirrors
   [Machine.int_op_total]): division, modulo and shifts are total only
   when the right operand is an immediate that provably never faults. *)
let int_op_total op b =
  match op with
  | Add | Sub | Mul | Min | Max | Land | Lor | Band | Bor | Bxor | Eq | Ne
  | Lt | Le | Gt | Ge ->
      true
  | Div | Mod -> ( match b with Imm (SInt k) -> k <> 0 | _ -> false)
  | Shl | Shr -> (
      match b with
      | Imm (SInt k) -> k >= 0 && k < Sys.int_size
      | _ -> false)
  | Any -> false

let binop_ctor = function
  | Add -> "Add" | Sub -> "Sub" | Mul -> "Mul" | Div -> "Div" | Mod -> "Mod"
  | Min -> "Min" | Max -> "Max"
  | Eq -> "Eq" | Ne -> "Ne" | Lt -> "Lt" | Le -> "Le" | Gt -> "Gt" | Ge -> "Ge"
  | Land -> "Land" | Lor -> "Lor"
  | Band -> "Band" | Bor -> "Bor" | Bxor -> "Bxor" | Shl -> "Shl" | Shr -> "Shr"
  | Any -> "Any"

let unop_ctor = function
  | Neg -> "Neg" | Lnot -> "Lnot" | Bnot -> "Bnot"
  | ToFloat -> "ToFloat" | ToInt -> "ToInt" | Abs -> "Abs"

let mnemonic = function
  | Fmov _ -> "fmov" | Fbin _ -> "fbin" | Funop _ -> "funop"
  | Frand _ -> "frand" | Fread _ -> "fread" | Fwrite _ -> "fwrite"
  | Jmp _ -> "jmp" | Jz _ -> "jz" | Jnz _ -> "jnz"
  | Label _ -> "label" | Halt -> "halt" | Comment _ -> "comment"
  | Region _ -> "region" | Fprint _ -> "fprint"
  | Pmov _ -> "pmov" | Pbin _ -> "pbin" | Punop _ -> "punop"
  | Pcoord _ -> "pcoord" | Ptable _ -> "ptable" | Prand _ -> "prand"
  | Psel _ -> "psel" | Pget _ -> "pget" | Psend _ -> "psend"
  | Pnews _ -> "pnews" | Preduce _ -> "preduce" | Pcount _ -> "pcount"
  | Preduce_axis _ -> "preduce-axis" | Pscan _ -> "pscan"
  | Cwith _ -> "cwith" | Cpush -> "cpush" | Cand _ -> "cand"
  | Cpop -> "cpop" | Creset -> "creset" | Cread _ -> "cread"

(* Integer operator as an expression over two *pure, single-use* operand
   expressions.  Only emitted in contexts where the operator is total
   (int_op_total-checked Pbins, monoid reductions), so Div/Mod/Shl/Shr
   need no guards here. *)
let int_expr op ea eb =
  match op with
  | Add -> spf "(%s + %s)" ea eb
  | Sub -> spf "(%s - %s)" ea eb
  | Mul -> spf "(%s * %s)" ea eb
  | Div -> spf "(%s / %s)" ea eb
  | Mod -> spf "(%s mod %s)" ea eb
  | Min -> spf "(let a = %s and b = %s in if a > b then b else a)" ea eb
  | Max -> spf "(let a = %s and b = %s in if a < b then b else a)" ea eb
  | Land -> spf "(if %s <> 0 && %s <> 0 then 1 else 0)" ea eb
  | Lor -> spf "(if %s <> 0 || %s <> 0 then 1 else 0)" ea eb
  | Band -> spf "(%s land %s)" ea eb
  | Bor -> spf "(%s lor %s)" ea eb
  | Bxor -> spf "(%s lxor %s)" ea eb
  | Shl -> spf "(%s lsl %s)" ea eb
  | Shr -> spf "(%s asr %s)" ea eb
  | Eq -> spf "(if %s = %s then 1 else 0)" ea eb
  | Ne -> spf "(if %s <> %s then 1 else 0)" ea eb
  | Lt -> spf "(if %s < %s then 1 else 0)" ea eb
  | Le -> spf "(if %s <= %s then 1 else 0)" ea eb
  | Gt -> spf "(if %s > %s then 1 else 0)" ea eb
  | Ge -> spf "(if %s >= %s then 1 else 0)" ea eb
  | Any -> assert false

let float_expr op =
  match op with
  | Add -> Ok (fun ea eb -> spf "(%s +. %s)" ea eb)
  | Sub -> Ok (fun ea eb -> spf "(%s -. %s)" ea eb)
  | Mul -> Ok (fun ea eb -> spf "(%s *. %s)" ea eb)
  | Div -> Ok (fun ea eb -> spf "(%s /. %s)" ea eb)
  | Mod -> Ok (fun ea eb -> spf "(Float.rem %s %s)" ea eb)
  | Min -> Ok (fun ea eb -> spf "(Float.min %s %s)" ea eb)
  | Max -> Ok (fun ea eb -> spf "(Float.max %s %s)" ea eb)
  | op -> Error (spf "operator %s is not valid on floats" (Paris.binop_name op))

let cmp_sym = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | _ -> assert false

let int_un_expr op e =
  match op with
  | Neg -> spf "(- %s)" e
  | Lnot -> spf "(if %s = 0 then 1 else 0)" e
  | Bnot -> spf "(lnot %s)" e
  | Abs -> spf "(abs %s)" e
  | ToInt | ToFloat -> assert false

let float_un_expr op e =
  match op with
  | Neg -> spf "(-. %s)" e
  | Abs -> spf "(Float.abs %s)" e
  | ToFloat -> e
  | Lnot | Bnot | ToInt -> assert false

(* Static program facts.  Any out-of-range id means the fast engine hit
   a decode-time exception and bottled it into the kernel; falling back
   to [kern i] reproduces that verbatim, so the emitter just bails. *)

exception Fallback

type env = { e_prog : program; e_lab : int array; e_ncode : int }

let labels_of prog =
  let lab = Array.make (max prog.nlabels 1) (-1) in
  Array.iteri
    (fun i ins ->
      match ins with
      | Label l when l >= 0 && l < prog.nlabels -> lab.(l) <- i
      | _ -> ())
    prog.code;
  lab

let make_env prog = { e_prog = prog; e_lab = labels_of prog; e_ncode = Array.length prog.code }

let fvp env f =
  if f < 0 || f >= Array.length env.e_prog.fields then raise Fallback
  else fst env.e_prog.fields.(f)

let fkind env f =
  if f < 0 || f >= Array.length env.e_prog.fields then raise Fallback
  else snd env.e_prog.fields.(f)

let geomv env vp =
  if vp < 0 || vp >= Array.length env.e_prog.geoms then raise Fallback
  else env.e_prog.geoms.(vp)

(* (vp, size, kind) of a field, mirroring [Machine.kpfield]. *)
let pfield env f =
  let vp = fvp env f in
  let g = geomv env vp in
  (vp, Geometry.size g, fkind env f)

let label_target env l =
  if l < 0 || l >= Array.length env.e_lab then raise Fallback else env.e_lab.(l)

let fld f = spf "f%d" f
let xctx vp = spf "x%d" vp

(* Front-end operand as an expression (the dec_fe shapes). *)
let fe_expr = function
  | Reg r -> spf "(Array.get regs %d)" r
  | Imm (SInt v) -> spf "(SInt %s)" (int_lit v)
  | Imm (SFloat f) -> spf "(SFloat %s)" (float_lit f)
  | Fld f -> spf "(raise (fail %S))" (spf "field f%d used as a front-end operand" f)

(* Parallel operand shapes after resolution (the ires/fres split of the
   fast engine, as source fragments). *)
type shape =
  | Ai of string   (* int array variable *)
  | Vi of string   (* int value expression *)
  | Af of string   (* float array variable *)
  | Afi of string  (* int array read as float *)
  | Vf of string   (* float value expression *)

type rsv = { pre : string list; shape : (shape, string) result }

let rint env vp tmp op =
  match op with
  | Reg r ->
      { pre = [ spf "let %s = to_int (Array.get regs %d) in" tmp r ];
        shape = Ok (Vi tmp) }
  | Imm (SInt v) -> { pre = []; shape = Ok (Vi (int_lit v)) }
  | Imm (SFloat _) ->
      { pre = []; shape = Error "float immediate in int parallel context" }
  | Fld f ->
      if fvp env f <> vp then
        { pre = [];
          shape = Error (spf "operand: field f%d is not on the current VP set vp%d" f vp) }
      else (
        match fkind env f with
        | KInt -> { pre = []; shape = Ok (Ai (fld f)) }
        | KFloat ->
            { pre = []; shape = Error (spf "float field f%d in int parallel context" f) })

let rfloat env vp tmp op =
  match op with
  | Reg r ->
      { pre = [ spf "let %s = to_float (Array.get regs %d) in" tmp r ];
        shape = Ok (Vf tmp) }
  | Imm s ->
      let v = match s with SInt i -> float_of_int i | SFloat f -> f in
      { pre = []; shape = Ok (Vf (float_lit v)) }
  | Fld f ->
      if fvp env f <> vp then
        { pre = [];
          shape = Error (spf "operand: field f%d is not on the current VP set vp%d" f vp) }
      else (
        match fkind env f with
        | KInt -> { pre = []; shape = Ok (Afi (fld f)) }
        | KFloat -> { pre = []; shape = Ok (Af (fld f)) })

let ig = function
  | Ai v -> spf "(Array.unsafe_get %s p)" v
  | Vi e -> e
  | Af _ | Afi _ | Vf _ -> assert false

let fg = function
  | Af v -> spf "(Array.unsafe_get %s p)" v
  | Afi v -> spf "(float_of_int (Array.unsafe_get %s p))" v
  | Vf e -> e
  | Ai _ | Vi _ -> assert false

let selt = function
  | Af v -> spf "Array.unsafe_get %s p <> 0.0" v
  | Afi v -> spf "Array.unsafe_get %s p <> 0" v
  | Vf e -> spf "%s <> 0.0" e
  | Ai _ | Vi _ -> assert false

(* Bind resolvers in the fast engine's resolution order.  At the first
   failing one, the emitted code raises right there (after the earlier
   resolvers' register reads, which may themselves fault first) and the
   rest of the arm is dropped. *)
let rec bind_ops rs k =
  match rs with
  | [] -> k []
  | { pre; shape = Error msg } :: _ -> pre @ [ spf "raise (fail %S);" msg ]
  | { pre; shape = Ok s } :: rest -> pre @ bind_ops rest (fun ss -> k (s :: ss))

let indent = List.map (fun s -> "  " ^ s)

(* Dense/masked split on the destination's context, mirroring the
   [Context.all_active] specialization of every fast kernel. *)
let dm x dense masked =
  [ spf "(if Cm.Context.all_active %s then begin" x ]
  @ indent dense
  @ [ "end"; "else begin"; spf "  let mask = Cm.Context.active %s in" x ]
  @ indent masked
  @ [ "end);" ]

let loop out nv rhs =
  [ spf "for p = 0 to %d do Array.unsafe_set %s p %s done;" (nv - 1) out rhs ]

let loop_m out nv rhs =
  [ spf "for p = 0 to %d do if Array.unsafe_get mask p then Array.unsafe_set %s p %s done;"
      (nv - 1) out rhs ]

let elem_loops x out nv rhs = dm x (loop out nv rhs) (loop_m out nv rhs)

let chk vp what f = spf "if !cur <> %d then raise (not_cur %S %d !cur);" vp what f
let charge_pe nv = spf "Cm.Cost.charge_pe meter ~size:%d;" nv
let charge_ctx nv = spf "Cm.Cost.charge_context meter ~size:%d;" nv
let charge_red nv = spf "Cm.Cost.charge_reduce meter ~size:%d;" nv

let sif env = function
  | Imm (SFloat _) -> Some true
  | Imm (SInt _) -> Some false
  | Fld f -> Some (fkind env f = KFloat)
  | Reg _ -> None

let isf_expr env = function
  | Reg r -> spf "(match Array.get regs %d with SFloat _ -> true | SInt _ -> false)" r
  | Imm (SFloat _) -> "true"
  | Imm (SInt _) -> "false"
  | Fld f -> ( match fkind env f with KFloat -> "true" | KInt -> "false")

(* One instruction -> the body of its match arm (a ';'-terminated
   statement list), or [None] for "call the fast kernel".  The body
   runs *after* the step loop has already advanced pc/fuel/icount and
   started the region timer, exactly like a fast kernel does. *)
let arm env instr : string list option =
  let seq lines = Some lines in
  try
    match instr with
    | Label _ | Comment _ -> seq [ "();" ]
    | Region r -> seq [ spf "racc := region %S !icount;" r ]
    | Fprint (s, None) -> seq [ spf "out_line %S;" s ]
    | Fprint (s, Some (Imm (SInt v))) ->
        seq [ spf "out_line %S;" (Printf.sprintf "%s%d" s v) ]
    | Fprint (s, Some (Imm (SFloat f))) ->
        seq [ spf "out_line %S;" (Printf.sprintf "%s%g" s f) ]
    | Fprint (_, Some (Fld f)) ->
        seq [ spf "raise (fail %S);" (spf "field f%d used as a front-end operand" f) ]
    | Fprint (s, Some (Reg r)) ->
        seq
          [ spf "(match Array.get regs %d with" r;
            spf " | SInt iv -> out_line (Printf.sprintf \"%%s%%d\" %S iv)" s;
            spf " | SFloat fv -> out_line (Printf.sprintf \"%%s%%g\" %S fv));" s ]
    | Halt -> seq [ spf "pc := %d;" env.e_ncode ]
    | Fmov (r, a) ->
        seq [ "Cm.Cost.charge_fe meter;"; spf "Array.set regs %d %s;" r (fe_expr a) ]
    | Fbin (op, r, a, b) ->
        (* the reference applies right to left, so b's faults win *)
        seq
          [ "Cm.Cost.charge_fe meter;";
            spf "let vb = %s in" (fe_expr b);
            spf "let va = %s in" (fe_expr a);
            spf "Array.set regs %d (fe_bin %s va vb);" r (binop_ctor op) ]
    | Funop (op, r, a) ->
        seq
          [ "Cm.Cost.charge_fe meter;";
            spf "Array.set regs %d (fe_unop %s %s);" r (unop_ctor op) (fe_expr a) ]
    | Frand (r, a) ->
        seq
          [ "Cm.Cost.charge_fe meter;";
            spf "Array.set regs %d (SInt (rand_mod (to_int %s)));" r (fe_expr a) ]
    | Fread (r, flid, a) ->
        let _, nv, kind = pfield env flid in
        let get =
          match kind with
          | KInt -> spf "SInt (Array.unsafe_get %s addr)" (fld flid)
          | KFloat -> spf "SFloat (Array.unsafe_get %s addr)" (fld flid)
        in
        seq
          [ "Cm.Cost.charge_fe_cm meter;";
            spf "let addr = to_int %s in" (fe_expr a);
            spf
              "if addr < 0 || addr >= %d then raise (fail (Printf.sprintf \"fread: address %%d out of range on f%d\" addr));"
              nv flid;
            spf "Array.set regs %d (%s);" r get ]
    | Fwrite (flid, a, v) ->
        let _, nv, kind = pfield env flid in
        let set =
          match kind with
          | KInt -> spf "Array.unsafe_set %s addr (to_int va);" (fld flid)
          | KFloat -> spf "Array.unsafe_set %s addr (to_float va);" (fld flid)
        in
        seq
          [ "Cm.Cost.charge_fe_cm meter;";
            spf "let addr = to_int %s in" (fe_expr a);
            spf "let va = %s in" (fe_expr v);
            spf
              "if addr < 0 || addr >= %d then raise (fail (Printf.sprintf \"fwrite: address %%d out of range on f%d\" addr));"
              nv flid;
            set ]
    | Jmp l ->
        let t = label_target env l in
        if t < 0 then
          seq
            [ "Cm.Cost.charge_fe meter;";
              spf "raise (fail %S);" (spf "jump to unplaced label L%d" l) ]
        else seq [ "Cm.Cost.charge_fe meter;"; spf "pc := %d;" t ]
    | Jz (a, l) ->
        let t = label_target env l in
        let go =
          if t < 0 then spf "raise (fail %S)" (spf "jump to unplaced label L%d" l)
          else spf "pc := %d" t
        in
        seq
          [ "Cm.Cost.charge_fe meter;";
            spf "if not (truthy %s) then %s;" (fe_expr a) go ]
    | Jnz (a, l) ->
        let t = label_target env l in
        let go =
          if t < 0 then spf "raise (fail %S)" (spf "jump to unplaced label L%d" l)
          else spf "pc := %d" t
        in
        seq
          [ "Cm.Cost.charge_fe meter;"; spf "if truthy %s then %s;" (fe_expr a) go ]
    | Cwith vp ->
        if vp < 0 || vp >= Array.length env.e_prog.geoms then
          seq [ spf "raise (fail %S);" (spf "cwith: unknown VP set vp%d" vp) ]
        else seq [ "Cm.Cost.charge_fe meter;"; spf "cur := %d;" vp ]
    | Cpush ->
        seq
          [ "let sz = cur_size () in";
            "Cm.Cost.charge_context meter ~size:sz;";
            "Cm.Context.push (Array.get ctxs !cur);" ]
    | Cpop ->
        seq
          [ "let sz = cur_size () in";
            "Cm.Cost.charge_context meter ~size:sz;";
            "(try Cm.Context.pop (Array.get ctxs !cur) with Failure _ -> raise (fail \"cpop: context stack underflow\"));" ]
    | Creset ->
        seq
          [ "let sz = cur_size () in";
            "Cm.Cost.charge_context meter ~size:sz;";
            "Cm.Context.reset (Array.get ctxs !cur);" ]
    | Cand f ->
        let vp, nv, kind = pfield env f in
        let opn = match kind with KInt -> "land_ints" | KFloat -> "land_floats" in
        seq
          [ chk vp "cand" f; charge_ctx nv;
            spf "Cm.Context.%s %s %s;" opn (xctx vp) (fld f) ]
    | Cread f -> (
        let vp, nv, kind = pfield env f in
        match kind with
        | KFloat ->
            seq [ chk vp "cread" f; charge_ctx nv;
                  "raise (fail \"cread into a float field\");" ]
        | KInt ->
            seq
              ([ chk vp "cread" f; charge_ctx nv ]
              @ dm (xctx vp)
                  [ spf "Array.fill %s 0 %d 1;" (fld f) nv ]
                  [ spf
                      "for p = 0 to %d do Array.unsafe_set %s p (if Array.unsafe_get mask p then 1 else 0) done;"
                      (nv - 1) (fld f) ]))
    | Pmov (dst, a) -> (
        let vp, nv, kind = pfield env dst in
        let x = xctx vp and out = fld dst in
        let pre = [ chk vp "pmov" dst; charge_pe nv ] in
        match kind with
        | KInt ->
            let r = rint env vp "va" a in
            seq
              (pre
              @ bind_ops [ r ] (fun ss ->
                    match ss with
                    | [ s ] ->
                        dm x
                          (match s with
                          | Ai v -> [ spf "Array.blit %s 0 %s 0 %d;" v out nv ]
                          | Vi e -> [ spf "Array.fill %s 0 %d %s;" out nv e ]
                          | _ -> assert false)
                          (loop_m out nv (ig s))
                    | _ -> assert false))
        | KFloat ->
            let r = rfloat env vp "va" a in
            seq
              (pre
              @ bind_ops [ r ] (fun ss ->
                    match ss with
                    | [ s ] ->
                        dm x
                          (match s with
                          | Af v -> [ spf "Array.blit %s 0 %s 0 %d;" v out nv ]
                          | Vf e -> [ spf "Array.fill %s 0 %d %s;" out nv e ]
                          | Afi _ -> loop out nv (fg s)
                          | _ -> assert false)
                          (loop_m out nv (fg s))
                    | _ -> assert false)))
    | Pbin (op, dst, a, b) -> (
        let vp, nv, kind = pfield env dst in
        let x = xctx vp and out = fld dst in
        let pre = [ chk vp "pbin" dst; charge_pe nv ] in
        match kind with
        | KFloat -> (
            match float_expr op with
            | Error msg -> seq (pre @ [ spf "raise (fail %S);" msg ])
            | Ok fexp ->
                let ra = rfloat env vp "va" a and rb = rfloat env vp "vb" b in
                seq
                  (pre
                  @ bind_ops [ ra; rb ] (fun ss ->
                        match ss with
                        | [ sa; sb ] -> elem_loops x out nv (fexp (fg sa) (fg sb))
                        | _ -> assert false)))
        | KInt ->
            if is_cmp op then begin
              let sym = cmp_sym op in
              let fpath () =
                let ra = rfloat env vp "vaf" a and rb = rfloat env vp "vbf" b in
                bind_ops [ ra; rb ] (fun ss ->
                    match ss with
                    | [ sa; sb ] ->
                        elem_loops x out nv
                          (spf "(if %s %s %s then 1 else 0)" (fg sa) sym (fg sb))
                    | _ -> assert false)
              in
              let ipath () =
                let ra = rint env vp "vai" a and rb = rint env vp "vbi" b in
                bind_ops [ ra; rb ] (fun ss ->
                    match ss with
                    | [ sa; sb ] ->
                        elem_loops x out nv
                          (spf "(if %s %s %s then 1 else 0)" (ig sa) sym (ig sb))
                    | _ -> assert false)
              in
              match (sif env a, sif env b) with
              | Some true, _ | _, Some true -> seq (pre @ fpath ())
              | Some false, Some false -> seq (pre @ ipath ())
              | _ ->
                  seq
                    (pre
                    @ [ spf "let isf = %s || %s in" (isf_expr env a) (isf_expr env b);
                        "(if isf then begin" ]
                    @ indent (fpath ())
                    @ [ "end"; "else begin" ]
                    @ indent (ipath ())
                    @ [ "end);" ])
            end
            else if op = Any then
              seq (pre @ [ "raise (fail \"'any' is only valid in reductions\");" ])
            else if int_op_total op b then
              let ra = rint env vp "va" a and rb = rint env vp "vb" b in
              seq
                (pre
                @ bind_ops [ ra; rb ] (fun ss ->
                      match ss with
                      | [ sa; sb ] -> elem_loops x out nv (int_expr op (ig sa) (ig sb))
                      | _ -> assert false))
            else None (* can fault mid-loop: keep the serial kernel *))
    | Punop (op, dst, a) -> (
        let vp, nv, kind = pfield env dst in
        let x = xctx vp and out = fld dst in
        let pre = [ chk vp "punop" dst; charge_pe nv ] in
        match (kind, op) with
        | KInt, ToInt ->
            let r = rfloat env vp "va" a in
            seq
              (pre
              @ bind_ops [ r ] (fun ss ->
                    match ss with
                    | [ s ] -> elem_loops x out nv (spf "(int_of_float %s)" (fg s))
                    | _ -> assert false))
        | KInt, _ ->
            let r = rint env vp "va" a in
            seq
              (pre
              @ bind_ops [ r ] (fun ss ->
                    match ss with
                    | [ s ] -> (
                        (* reference order: operand first, then the operator check *)
                        match op with
                        | ToFloat -> [ "raise (fail \"tofloat into an int field\");" ]
                        | _ -> elem_loops x out nv (int_un_expr op (ig s)))
                    | _ -> assert false))
        | KFloat, _ ->
            let r = rfloat env vp "va" a in
            seq
              (pre
              @ bind_ops [ r ] (fun ss ->
                    match ss with
                    | [ s ] -> (
                        match op with
                        | Lnot | Bnot | ToInt ->
                            [ "raise (fail \"integer unop into a float field\");" ]
                        | _ -> elem_loops x out nv (float_un_expr op (fg s)))
                    | _ -> assert false)))
    | Pcoord (dst, axis) -> (
        let vp, nv, kind = pfield env dst in
        let g = geomv env vp in
        let axis_ok = axis >= 0 && axis < Geometry.rank g in
        if not axis_ok then
          seq
            [ chk vp "pcoord" dst;
              spf "raise (fail %S);" (spf "pcoord: bad axis %d" axis) ]
        else
          let stride = (Geometry.strides g).(axis) in
          let extent = Geometry.dim g axis in
          match kind with
          | KInt ->
              seq
                ([ chk vp "pcoord" dst; charge_pe nv ]
                @ elem_loops (xctx vp) (fld dst) nv (spf "(p / %d mod %d)" stride extent))
          | KFloat ->
              seq
                [ chk vp "pcoord" dst; charge_pe nv;
                  "raise (fail \"pcoord into a float field\");" ])
    | Prand (dst, modulus) -> (
        let vp, nv, kind = pfield env dst in
        let x = xctx vp and out = fld dst in
        match kind with
        | KInt ->
            seq
              ([ chk vp "prand" dst;
                 spf "let vm = to_int %s in" (fe_expr modulus);
                 charge_pe nv ]
              @ dm x
                  [ spf "for p = 0 to %d do Array.unsafe_set %s p (rand_mod vm) done;"
                      (nv - 1) out ]
                  [ spf
                      "for p = 0 to %d do if Array.unsafe_get mask p then Array.unsafe_set %s p (rand_mod vm) done;"
                      (nv - 1) out ])
        | KFloat ->
            seq
              [ chk vp "prand" dst;
                spf "let _ = to_int %s in" (fe_expr modulus);
                charge_pe nv;
                "raise (fail \"prand into a float field\");" ])
    | Psel (dst, cnd, a, b) -> (
        let vp, nv, kind = pfield env dst in
        let x = xctx vp and out = fld dst in
        let rc = rfloat env vp "vc" cnd in
        let pre = [ chk vp "psel" dst; charge_pe nv ] in
        match kind with
        | KInt ->
            let ra = rint env vp "va" a and rb = rint env vp "vb" b in
            seq
              (pre
              @ bind_ops [ rc; ra; rb ] (fun ss ->
                    match ss with
                    | [ sc; sa; sb ] ->
                        elem_loops x out nv
                          (spf "(if %s then %s else %s)" (selt sc) (ig sa) (ig sb))
                    | _ -> assert false))
        | KFloat ->
            let ra = rfloat env vp "va" a and rb = rfloat env vp "vb" b in
            seq
              (pre
              @ bind_ops [ rc; ra; rb ] (fun ss ->
                    match ss with
                    | [ sc; sa; sb ] ->
                        elem_loops x out nv
                          (spf "(if %s then %s else %s)" (selt sc) (fg sa) (fg sb))
                    | _ -> assert false)))
    | Preduce (op, r, f) -> (
        let vp, nv, kind = pfield env f in
        let x = xctx vp and src = fld f in
        let pre = [ chk vp "preduce" f; charge_red nv ] in
        match kind with
        | KInt when op = Any ->
            seq
              (pre
              @ [ spf "let v = if Cm.Context.all_active %s && %d > 0 then Array.get %s 0" x nv src;
                  spf "  else begin let mask = Cm.Context.active %s in" x;
                  spf
                    "    let rec go p = if p >= %d then Cm.Paris.inf_int else if Array.get mask p then Array.get %s p else go (p + 1) in go 0 end in"
                    nv src;
                  spf "Array.set regs %d (SInt v);" r ])
        | KFloat when op = Any ->
            seq
              (pre
              @ [ spf "let v = if Cm.Context.all_active %s && %d > 0 then Array.get %s 0" x nv src;
                  spf "  else begin let mask = Cm.Context.active %s in" x;
                  spf
                    "    let rec go p = if p >= %d then infinity else if Array.get mask p then Array.get %s p else go (p + 1) in go 0 end in"
                    nv src;
                  spf "Array.set regs %d (SFloat v);" r ])
        | KInt -> (
            (* the reference evaluates the identity before the operator *)
            match (try Ok (identity op KInt) with Invalid_argument msg -> Error msg) with
            | Error msg -> seq (pre @ [ spf "raise (Invalid_argument %S);" msg ])
            | Ok (SFloat _) ->
                seq (pre @ [ "raise (fail \"expected an int scalar, got a float\");" ])
            | Ok (SInt iv) ->
                let ident = int_lit iv in
                seq
                  (pre
                  @ [ spf "let v = if Cm.Context.all_active %s then begin" x;
                      spf "    let acc = ref %s in" ident;
                      spf "    for p = 0 to %d do acc := %s done;" (nv - 1)
                        (int_expr op "!acc" (spf "(Array.unsafe_get %s p)" src));
                      "    !acc end";
                      spf "  else Cm.Scan.masked_reduce (fun a b -> %s) %s (Cm.Context.active %s) %s in"
                        (int_expr op "a" "b") ident x src;
                      spf "Array.set regs %d (SInt v);" r ]))
        | KFloat -> (
            match (try Ok (identity op KFloat) with Invalid_argument msg -> Error msg) with
            | Error msg -> seq (pre @ [ spf "raise (Invalid_argument %S);" msg ])
            | Ok s -> (
                let fv = match s with SInt iv -> float_of_int iv | SFloat f -> f in
                match float_expr op with
                | Error msg -> seq (pre @ [ spf "raise (fail %S);" msg ])
                | Ok fexp ->
                    let ident = float_lit fv in
                    seq
                      (pre
                      @ [ spf "let v = if Cm.Context.all_active %s then begin" x;
                          spf "    let acc = ref %s in" ident;
                          spf "    for p = 0 to %d do acc := %s done;" (nv - 1)
                            (fexp "!acc" (spf "(Array.unsafe_get %s p)" src));
                          "    !acc end";
                          spf
                            "  else Cm.Scan.masked_reduce (fun a b -> %s) %s (Cm.Context.active %s) %s in"
                            (fexp "a" "b") ident x src;
                          spf "Array.set regs %d (SFloat v);" r ]))))
    | Pcount r ->
        seq
          [ "let sz = cur_size () in";
            "Cm.Cost.charge_reduce meter ~size:sz;";
            spf "Array.set regs %d (SInt (Cm.Context.count_active (Array.get ctxs !cur)));" r ]
    | Pget _ | Psend _ | Pnews _ | Ptable _ | Preduce_axis _ | Pscan _ ->
        (* order-sensitive / can-fault: keep interpreter semantics *)
        None
  with Fallback -> None

let source prog =
  let env = make_env prog in
  let b = Buffer.create 65536 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  add "(* ucc native code, generated by Cm.Codegen v%d for ir %s." version (key prog);
  add "   Mirrors the fast engine's kernels instruction for instruction; do not edit. *)";
  add "[@@@warning \"-a\"]";
  add "";
  add "let () =";
  add "  Cm.Codegen.register (fun c budget0 ->";
  add "    let open Cm.Codegen in";
  add "    let open Cm.Paris in";
  add "    let regs = c.c_regs in";
  add "    let meter = c.c_meter in";
  add "    let sizes = c.c_sizes in";
  add "    let ctxs = c.c_ctxs in";
  add "    let fail = c.c_fail in";
  add "    let not_cur = c.c_not_cur in";
  add "    let out_line = c.c_emit in";
  add "    let region = c.c_region in";
  add "    let kernel = c.c_kernel in";
  add "    let fe_bin = c.c_fe_bin in";
  add "    let fe_unop = c.c_fe_unop in";
  add "    let to_int = c.c_to_int in";
  add "    let to_float = c.c_to_float in";
  add "    let truthy = c.c_truthy in";
  Array.iteri
    (fun f (_, kind) ->
      match kind with
      | KInt -> add "    let f%d = Array.get c.c_ints %d in" f f
      | KFloat -> add "    let f%d = Array.get c.c_floats %d in" f f)
    prog.fields;
  Array.iteri (fun v _ -> add "    let x%d = Array.get c.c_ctxs %d in" v v) prog.geoms;
  add "    let pc = ref c.c_pc in";
  add "    let fuel = ref c.c_fuel in";
  add "    let icount = ref c.c_icount in";
  add "    let rand = ref c.c_rand in";
  add "    let cur = ref c.c_cur in";
  add "    let racc = ref c.c_racc in";
  add "    let budget = ref budget0 in";
  add "    let finish () =";
  add "      c.c_pc <- !pc; c.c_fuel <- !fuel; c.c_icount <- !icount;";
  add "      c.c_rand <- !rand; c.c_cur <- !cur; c.c_racc <- !racc in";
  add "    let kern i = kernel i !cur in";
  add "    let cur_size () =";
  add "      if !cur < 0 then raise (fail \"no VP set selected (missing Cwith)\")";
  add "      else Array.get sizes !cur in";
  add "    let rand_mod modv =";
  add "      if modv <= 0 then raise (fail (Printf.sprintf \"rand: non-positive modulus %%d\" modv));";
  add "      rand := ((!rand * 1103515245) + 12345) land 0x3FFFFFFF;";
  add "      !rand mod modv in";
  add "    let rec step () =";
  add "      if !pc < %d && !budget > 0 then begin" env.e_ncode;
  add "        if !fuel <= 0 then raise (fail \"fuel exhausted (non-terminating program?)\");";
  add "        let i = !pc in";
  add "        fuel := !fuel - 1;";
  add "        icount := !icount + 1;";
  add "        pc := i + 1;";
  add "        budget := !budget - 1;";
  add "        let t0 = meter.Cm.Cost.elapsed_ns in";
  add "        (match i with";
  Array.iteri
    (fun i ins ->
      match arm env ins with
      | None -> add "        | %d -> kern %d" i i
      | Some [ "();" ] -> () (* Label/Comment: the default arm *)
      | Some body ->
          add "        | %d -> (* %s *)" i (mnemonic ins);
          List.iter (fun l -> add "          %s" l) body;
          add "          ()")
    prog.code;
  add "        | _ -> ());";
  add "        let dt = meter.Cm.Cost.elapsed_ns -. t0 in";
  add "        if dt > 0.0 then begin let acc = !racc in acc := !acc +. dt end;";
  add "        step ()";
  add "      end in";
  add "    (try step () with e -> finish (); raise e);";
  add "    finish ())";
  Buffer.contents b

let coverage prog =
  let env = make_env prog in
  let native = Hashtbl.create 8 and fb = Hashtbl.create 8 in
  Array.iter
    (fun ins ->
      let tbl = match arm env ins with Some _ -> native | None -> fb in
      let mn = mnemonic ins in
      Hashtbl.replace tbl mn (1 + Option.value ~default:0 (Hashtbl.find_opt tbl mn)))
    prog.code;
  let dump t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort compare in
  (dump native, dump fb)

(* ---- store hook, toolchain probe, build and load ---- *)

type store = {
  st_load : string -> string option;
  st_save : string -> string -> unit;
  st_record : codegen_ms:float -> build_ms:float -> unit;
}

let store_hook : store option ref = ref None
let set_store s = store_hook := s

let forced : string option ref = ref None
let force_unavailable r = forced := r

type stats = {
  mem_hits : int;
  disk_hits : int;
  builds : int;
  codegen_ms : float;
  build_ms : float;
}

let g_mem_hits = ref 0
let g_disk_hits = ref 0
let g_builds = ref 0
let g_codegen_ms = ref 0.0
let g_build_ms = ref 0.0

let stats () =
  { mem_hits = !g_mem_hits; disk_hits = !g_disk_hits; builds = !g_builds;
    codegen_ms = !g_codegen_ms; build_ms = !g_build_ms }

type tc = { cc : string; incs : string list }

(* The generated module is compiled against this build's own .cmi/.cmx
   artifacts, found by walking up from the running executable to the
   dune build root (works for bin/ucc.exe, test and bench binaries
   alike). *)
let find_build_root () =
  let marker = "lib/cm/.cm.objs/byte/cm.cmi" in
  let rec up d n =
    if n > 8 then None
    else if Sys.file_exists (Filename.concat d marker) then Some d
    else
      let parent = Filename.dirname d in
      if parent = d then None else up parent (n + 1)
  in
  up (Filename.dirname Sys.executable_name) 0

let toolchain =
  lazy
    (if not Dynlink.is_native then Error Bytecode_only
     else
       let probe cmd = Sys.command (cmd ^ " -version >/dev/null 2>&1") = 0 in
       let cc =
         if probe "ocamlfind ocamlopt" then Some "ocamlfind ocamlopt"
         else if probe "ocamlopt" then Some "ocamlopt"
         else None
       in
       match cc with
       | None -> Error (No_toolchain "ocamlfind/ocamlopt not on PATH")
       | Some cc -> (
           match find_build_root () with
           | None ->
               Error
                 (No_toolchain
                    "compiled cm library artifacts not found near the executable")
           | Some root ->
               let incs =
                 List.filter Sys.file_exists
                   [ Filename.concat root "lib/cm/.cm.objs/byte";
                     Filename.concat root "lib/cm/.cm.objs/native";
                     Filename.concat root "lib/obs/.obs.objs/byte";
                     Filename.concat root "lib/obs/.obs.objs/native" ]
               in
               Ok { cc; incs }))

let available () =
  match !forced with
  | Some why -> Error (describe (Disabled why))
  | None -> (
      match Lazy.force toolchain with Ok _ -> Ok () | Error r -> Error (describe r))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let fresh_dir () =
  let f = Filename.temp_file "ucc_native" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rm_rf dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Sys.rmdir dir with Sys_error _ -> ()

let flatten s = String.map (fun ch -> if ch = '\n' then ' ' else ch) s

let tail_of_log path =
  match (try Some (read_file path) with Sys_error _ -> None) with
  | None -> "no build log"
  | Some s ->
      let s = String.trim s in
      let n = 400 in
      if String.length s <= n then flatten s
      else "..." ^ flatten (String.sub s (String.length s - n) n)

let dynload path =
  pending := None;
  try Dynlink.loadfile_private path with
  | Dynlink.Error e -> raise (Unavailable (Dynlink_failed (Dynlink.error_message e)))
  | Unavailable _ as e -> raise e
  | e -> raise (Unavailable (Dynlink_failed (Printexc.to_string e)))

let take_pending what =
  match !pending with
  | Some e ->
      pending := None;
      e
  | None -> raise (Unavailable (Dynlink_failed (what ^ " did not register an entry")))

let base_name k = "ucc_native_" ^ String.sub k 0 12

(* Load a cached .cmxs blob: materialize it in a scratch dir (Dynlink
   reads the whole file at load time, so the dir can go right away). *)
let load_blob k bytes =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir (base_name k ^ ".cmxs") in
  write_file path bytes;
  dynload path;
  take_pending "cached artifact"

(* Emit, compile and load; returns the entry plus the raw .cmxs bytes
   for the store.  Timings are wall-clock: the build cost is dominated
   by the child compiler, which process CPU time doesn't see. *)
let build_entry tc k prog =
  let t0 = Unix.gettimeofday () in
  let src = source prog in
  let t1 = Unix.gettimeofday () in
  let dir = fresh_dir () in
  let entry, bytes =
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let base = base_name k in
    let ml = Filename.concat dir (base ^ ".ml") in
    let cmxs = Filename.concat dir (base ^ ".cmxs") in
    let log = Filename.concat dir "build.log" in
    write_file ml src;
    let cmd =
      spf "%s -w -a -shared %s -o %s %s > %s 2>&1" tc.cc
        (String.concat " " (List.map (fun d -> "-I " ^ Filename.quote d) tc.incs))
        (Filename.quote cmxs) (Filename.quote ml) (Filename.quote log)
    in
    if Sys.command cmd <> 0 then raise (Unavailable (Build_failed (tail_of_log log)));
    let bytes = read_file cmxs in
    dynload cmxs;
    (take_pending "built artifact", bytes)
  in
  let t2 = Unix.gettimeofday () in
  (entry, bytes, (t1 -. t0) *. 1000., (t2 -. t1) *. 1000.)

let lock = Mutex.create ()
let memo : (string, entry) Hashtbl.t = Hashtbl.create 16

let entry_for ?(obs = Obs.null) prog =
  (match !forced with
  | Some why -> raise (Unavailable (Disabled why))
  | None -> ());
  let k = key prog in
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt memo k with
      | Some e ->
          incr g_mem_hits;
          e
      | None ->
          if not Dynlink.is_native then raise (Unavailable Bytecode_only);
          let from_store =
            match !store_hook with
            | None -> None
            | Some st -> (
                match st.st_load k with
                | None -> None
                | Some bytes -> (
                    (* a stale or corrupt artifact is not fatal: fall
                       through and rebuild over it *)
                    try
                      let e = load_blob k bytes in
                      incr g_disk_hits;
                      Some e
                    with Unavailable _ -> None))
          in
          let e =
            match from_store with
            | Some e -> e
            | None ->
                let tc =
                  match Lazy.force toolchain with
                  | Ok tc -> tc
                  | Error r -> raise (Unavailable r)
                in
                Obs.with_span obs "cm.codegen" (fun () ->
                    let e, bytes, codegen_ms, build_ms = build_entry tc k prog in
                    incr g_builds;
                    g_codegen_ms := !g_codegen_ms +. codegen_ms;
                    g_build_ms := !g_build_ms +. build_ms;
                    (match !store_hook with
                    | Some st ->
                        (try st.st_save k bytes with Sys_error _ -> ());
                        st.st_record ~codegen_ms ~build_ms
                    | None -> ());
                    e)
          in
          Hashtbl.replace memo k e;
          e)
