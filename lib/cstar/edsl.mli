(** A miniature C* (Rose & Steele 1987) as an embedded DSL.

    C* is the baseline the paper measures UC against: the appendix
    programs declare a [domain] (a record type with one instance per data
    processor), activate all instances with [\[domain D\].{...}] and use
    combining assignments like [<?=] (min into a possibly remote
    location).  This module reproduces those constructs as OCaml
    combinators that emit {!Cm.Paris} code directly — the moral
    equivalent of the hand-written C* the paper's authors compiled with
    Thinking Machines' compiler.  Because it is hand-scheduled, the
    generated code carries none of the UC compiler's bookkeeping
    (activity expansion, element-value materialisation, checking sends),
    which is exactly the gap figures 6 and 7 quantify. *)

type t
(** An open program under construction. *)

type domain
(** A domain: a named shape with per-instance member fields. *)

type field
(** A member field of a domain. *)

type pexp
(** A parallel expression, evaluated per active instance. *)

(** [create name] starts a program. *)
val create : string -> t

(** [domain t ~name ~dims] declares a domain of instances arranged in
    [dims]. *)
val domain : t -> name:string -> dims:int list -> domain

(** [member t d name kind] adds a member field to [d]. *)
val member : t -> domain -> string -> Cm.Paris.kind -> field

(** [activate t d f] compiles [f ()] with all instances of [d] active
    (the C* [\[domain D\].{...}] block). *)
val activate : t -> domain -> (unit -> unit) -> unit

(** [finish t] closes the program.  [ir_opt] (default {!Cm.Iropt.off})
    runs the Paris-IR pass pipeline on the emitted code; [observable]
    lists the member fields read back after execution (the liveness
    roots — everything else is dead past [Halt]). *)
val finish :
  ?ir_opt:Cm.Iropt.config ->
  ?observable:int list ->
  t ->
  Cm.Paris.program

(* ---- parallel expressions (within activate) ---- *)

val int_ : int -> pexp
val inf : pexp

(** Value of a member of this instance. *)
val fld : t -> field -> pexp

(** [coord t d axis] is this instance's coordinate. *)
val coord : t -> domain -> int -> pexp

(** [rand t ~modulus] draws from the machine's LCG per active instance. *)
val rand : t -> modulus:int -> pexp

val ( +% ) : pexp -> pexp -> pexp
val ( -% ) : pexp -> pexp -> pexp
val ( *% ) : pexp -> pexp -> pexp
val ( /% ) : pexp -> pexp -> pexp
val ( %% ) : pexp -> pexp -> pexp
val ( ==% ) : pexp -> pexp -> pexp
val ( <% ) : pexp -> pexp -> pexp

(** [get t fld indices] reads [fld] of the instance at [indices] through
    the router (C* left-indexing: [path\[i\]\[k\].len]). *)
val get : t -> field -> pexp list -> pexp

(* ---- statements ---- *)

(** [assign t fld e] sets this instance's member. *)
val assign : t -> field -> pexp -> unit

(** [min_assign t fld e] is C* [fld <?= e] on this instance. *)
val min_assign : t -> field -> pexp -> unit

(** [send_min t fld indices e] is C* [D\[i\]\[j\].fld <?= e]: a combining
    minimum send to a remote instance. *)
val send_min : t -> field -> pexp list -> pexp -> unit

(** [where t cond f] narrows the context to instances where [cond] is
    non-zero (the C* [where] statement). *)
val where : t -> pexp -> (unit -> unit) -> unit

(** [for_ t lo hi f] emits a front-end loop; [f] receives the counter
    operand (usable via {!reg}). *)
val for_ : t -> int -> int -> (pexp -> unit) -> unit

(** Read back a member field after execution (instance order). *)
val field_id : field -> int
