open Edsl

(* 0 on the diagonal; deterministic or random small weights elsewhere,
   matching the UC corpus programs so results are comparable. *)
let init_path t path_dom len n ~deterministic =
  activate t path_dom (fun () ->
      let i = coord t path_dom 0 in
      let j = coord t path_dom 1 in
      let offdiag = int_ 1 -% (i ==% j) in
      where t offdiag (fun () ->
          if deterministic then
            assign t len
              ((((i *% int_ 7) +% (j *% int_ 13)) %% int_ n) +% int_ 1)
          else assign t len (rand t ~modulus:n +% int_ 1));
      where t (i ==% j) (fun () -> assign t len (int_ 0)))

let path_n2 ?(deterministic = true) ?(ir_opt = Cm.Iropt.default) ~n () =
  let t = create "cstar-path-n2" in
  let path = domain t ~name:"PATH" ~dims:[ n; n ] in
  let len = member t path "len" Cm.Paris.KInt in
  init_path t path len n ~deterministic;
  activate t path (fun () ->
      for_ t 0 n (fun k ->
          let i = coord t path 0 in
          let j = coord t path 1 in
          let via_k = get t len [ i; k ] +% get t len [ k; j ] in
          min_assign t len via_k));
  (finish ~ir_opt ~observable:[ field_id len ] t, field_id len)

let path_n3 ?(deterministic = true) ?(ir_opt = Cm.Iropt.default) ?iters ~n ()
    =
  let iters = match iters with Some k -> k | None -> n in
  let t = create "cstar-path-n3" in
  let path = domain t ~name:"PATH" ~dims:[ n; n ] in
  let len = member t path "len" Cm.Paris.KInt in
  let xmed = domain t ~name:"XMED" ~dims:[ n; n; n ] in
  init_path t path len n ~deterministic;
  activate t xmed (fun () ->
      for_ t 0 iters (fun _cnt ->
          let i = coord t xmed 0 in
          let j = coord t xmed 1 in
          let k = coord t xmed 2 in
          let via_k = get t len [ i; k ] +% get t len [ k; j ] in
          send_min t len [ i; j ] via_k));
  (finish ~ir_opt ~observable:[ field_id len ] t, field_id len)
