(** The paper's appendix C* programs (figures 9 and 10), built with the
    {!Edsl}.

    Both return the finished Paris program and the field id of the
    distance member [len], to be read back after {!Cm.Machine.run}.  The
    initialisation follows the paper's UC programs (0 on the diagonal,
    small random weights elsewhere) so that, given the same machine seed,
    the C* baseline computes exactly the same distance matrix as the
    compiled UC program — the comparison in figures 6 and 7 is then
    work-for-work. *)

(** Figure 9: O(N^2)-parallelism shortest path.  The front end loops k
    from 0 to N-1; each (i,j) instance fetches [path[i][k].len] and
    [path[k][j].len] and min-assigns. *)
val path_n2 :
  ?deterministic:bool ->
  ?ir_opt:Cm.Iropt.config ->
  n:int ->
  unit ->
  Cm.Paris.program * int

(** Figure 10: O(N^3)-parallelism shortest path.  An XMED domain holds
    one instance per (i,j,k); each iteration sends
    [path[i][k].len + path[k][j].len] to [path[i][j].len] with the
    min-combining router.  [iters] defaults to [n] as in the appendix
    (the paper's C* code iterates N times; UC's log-squaring needs only
    ceil(log2 N)). *)
val path_n3 :
  ?deterministic:bool ->
  ?ir_opt:Cm.Iropt.config ->
  ?iters:int ->
  n:int ->
  unit ->
  Cm.Paris.program * int
