module P = Cm.Paris

type domain = { dvp : int; ddims : int list }
type field = { fid : int; fdom : domain }

type t = {
  b : P.Builder.t;
  mutable cur : domain option;
  mutable cur_with : int;
}

(* a parallel expression emits code on demand and yields an operand *)
type pexp = t -> P.operand

let create name = { b = P.Builder.create name; cur = None; cur_with = -1 }

let domain t ~name ~dims =
  ignore name;
  let dvp = P.Builder.vpset t.b (Cm.Geometry.create dims) in
  { dvp; ddims = dims }

let member t d _name kind = { fid = P.Builder.field t.b ~vpset:d.dvp kind; fdom = d }

let emit t i = P.Builder.emit t.b i

let ensure_with t vp =
  if t.cur_with <> vp then begin
    emit t (P.Cwith vp);
    t.cur_with <- vp
  end

let cur t =
  match t.cur with
  | Some d -> d
  | None -> failwith "Cstar: parallel code outside an activate block"

let temp ?(kind = P.KInt) t = P.Builder.field t.b ~vpset:(cur t).dvp kind

let activate t d f =
  let saved = t.cur in
  t.cur <- Some d;
  ensure_with t d.dvp;
  emit t P.Creset;
  f ();
  t.cur <- saved;
  match saved with Some d' -> ensure_with t d'.dvp | None -> ()

let finish ?(ir_opt = Cm.Iropt.off) ?(observable = []) t =
  emit t P.Halt;
  let prog = P.Builder.finish t.b in
  if Cm.Iropt.enabled ir_opt then
    fst
      (Cm.Iropt.run ~config:ir_opt ~live_out_fields:observable
         ~live_out_regs:[] prog)
  else prog

(* ---- expressions ---- *)

let int_ i _t = P.Imm (P.SInt i)
let inf _t = P.Imm (P.SInt P.inf_int)
let fld _t f t = ignore _t; P.Fld f.fid

let coord _t d axis t =
  ignore _t;
  if d.dvp <> (cur t).dvp then failwith "Cstar.coord: wrong domain";
  let f = temp t in
  emit t (P.Pcoord (f, axis));
  P.Fld f

let rand _t ~modulus t =
  ignore _t;
  let f = temp t in
  emit t (P.Prand (f, P.Imm (P.SInt modulus)));
  P.Fld f

let binop op (a : pexp) (b : pexp) : pexp =
 fun t ->
  let va = a t in
  let vb = b t in
  let f = temp t in
  emit t (P.Pbin (op, f, va, vb));
  P.Fld f

let ( +% ) = binop P.Add
let ( -% ) = binop P.Sub
let ( *% ) = binop P.Mul
let ( /% ) = binop P.Div
let ( %% ) = binop P.Mod
let ( ==% ) = binop P.Eq
let ( <% ) = binop P.Lt

let address t (fdom : domain) (indices : pexp list) : int =
  let addr = temp t in
  emit t (P.Pmov (addr, P.Imm (P.SInt 0)));
  List.iter2
    (fun d ix ->
      let v = ix t in
      emit t (P.Pbin (P.Mul, addr, P.Fld addr, P.Imm (P.SInt d)));
      emit t (P.Pbin (P.Add, addr, P.Fld addr, v)))
    fdom.ddims indices;
  addr

let get _t f indices t =
  ignore _t;
  let addr = address t f.fdom indices in
  let dst = temp t ~kind:(snd (P.Builder.field_info t.b f.fid)) in
  emit t (P.Pget (dst, f.fid, addr));
  P.Fld dst

(* ---- statements ---- *)

let assign t f e =
  let v = e t in
  emit t (P.Pmov (f.fid, v))

let min_assign t f e =
  let v = e t in
  emit t (P.Pbin (P.Min, f.fid, P.Fld f.fid, v))

let send_min t f indices e =
  let v = e t in
  let src = temp t ~kind:(snd (P.Builder.field_info t.b f.fid)) in
  emit t (P.Pmov (src, v));
  let addr = address t f.fdom indices in
  emit t (P.Psend (f.fid, src, addr, P.Cmin))

let where t cond f =
  let v = cond t in
  let mask =
    match v with
    | P.Fld fl -> fl
    | _ ->
        let m = temp t in
        emit t (P.Pmov (m, v));
        m
  in
  emit t P.Cpush;
  emit t (P.Cand mask);
  f ();
  emit t P.Cpop

let for_ t lo hi f =
  let r = P.Builder.reg t.b in
  emit t (P.Fmov (r, P.Imm (P.SInt lo)));
  let top = P.Builder.label t.b in
  let out = P.Builder.label t.b in
  P.Builder.place t.b top;
  let c = P.Builder.reg t.b in
  emit t (P.Fbin (P.Ge, c, P.Reg r, P.Imm (P.SInt hi)));
  emit t (P.Jnz (P.Reg c, out));
  f (fun _ -> P.Reg r);
  emit t (P.Fbin (P.Add, r, P.Reg r, P.Imm (P.SInt 1)));
  emit t (P.Jmp top);
  P.Builder.place t.b out

let field_id f = f.fid
