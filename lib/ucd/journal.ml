type entry =
  | Accepted of {
      digest : string;
      name : string;
      tenant : string;
      submit : Jsonu.t;
    }
  | Started of { digest : string }
  | Checkpointed of { digest : string; ckpt : string }
  | Done_ of { digest : string; status : string }
  | Faulted of { digest : string }

type pending = {
  p_digest : string;
  p_name : string;
  p_tenant : string;
  p_submit : Jsonu.t;
  p_ckpt : string option;
  p_started : bool;
}

type replay = {
  pending : pending list;
  finished : (string * string) list;
  replayed : int;
  corrupt : int;
}

type stats = {
  appended : int;
  synced : int;
  bytes : int;
  write_failures : int;
  s_replayed : int;
  s_corrupt : int;
  s_requeued : int;
}

type t = {
  lock : Mutex.t;
  fsync : bool;
  mutable fd : Unix.file_descr option;
  mutable appended : int;
  mutable synced : int;
  mutable written : int;
  mutable unsynced : int;  (* records since the last fsync *)
  mutable failures : int;
  mutable warned : bool;
  replayed : int;
  corrupted : int;
  requeued : int;
}

let path ~dir = Filename.concat dir "journal.jsonl"

(* ---- record <-> json ---- *)

let entry_json = function
  | Accepted { digest; name; tenant; submit } ->
      Jsonu.Obj
        [
          ("t", Jsonu.Str "accepted");
          ("digest", Jsonu.Str digest);
          ("name", Jsonu.Str name);
          ("tenant", Jsonu.Str tenant);
          ("submit", submit);
        ]
  | Started { digest } ->
      Jsonu.Obj [ ("t", Jsonu.Str "started"); ("digest", Jsonu.Str digest) ]
  | Checkpointed { digest; ckpt } ->
      Jsonu.Obj
        [
          ("t", Jsonu.Str "checkpointed");
          ("digest", Jsonu.Str digest);
          (* checkpoint blobs are binary; Jsonu strings are
             byte-transparent, so the blob survives verbatim *)
          ("ckpt", Jsonu.Str ckpt);
        ]
  | Done_ { digest; status } ->
      Jsonu.Obj
        [
          ("t", Jsonu.Str "done");
          ("digest", Jsonu.Str digest);
          ("status", Jsonu.Str status);
        ]
  | Faulted { digest } ->
      Jsonu.Obj [ ("t", Jsonu.Str "faulted"); ("digest", Jsonu.Str digest) ]

let str_field obj k =
  match obj with
  | Jsonu.Obj fields -> (
      match List.assoc_opt k fields with
      | Some (Jsonu.Str s) -> Some s
      | _ -> None)
  | _ -> None

let entry_of_json j =
  let need k =
    match str_field j k with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or non-string field %S" k)
  in
  let ( let* ) = Result.bind in
  let* t = need "t" in
  let* digest = need "digest" in
  match t with
  | "accepted" ->
      let* name = need "name" in
      let* tenant = need "tenant" in
      let submit =
        match j with
        | Jsonu.Obj fields -> List.assoc_opt "submit" fields
        | _ -> None
      in
      let* submit =
        match submit with
        | Some (Jsonu.Obj _ as o) -> Ok o
        | _ -> Error "missing submit object"
      in
      Ok (Accepted { digest; name; tenant; submit })
  | "started" -> Ok (Started { digest })
  | "checkpointed" ->
      let* ckpt = need "ckpt" in
      Ok (Checkpointed { digest; ckpt })
  | "done" ->
      let* status = need "status" in
      Ok (Done_ { digest; status })
  | "faulted" -> Ok (Faulted { digest })
  | other -> Error (Printf.sprintf "unknown record type %S" other)

(* One journal line: the rendered record wrapped with its own MD5, so a
   torn tail or a flipped bit is detected on replay rather than
   trusted. *)
let line_of_entry e =
  let rec_str = Jsonu.to_string (entry_json e) in
  Printf.sprintf "{\"sum\":%s,\"rec\":%s}\n"
    (Jsonu.to_string (Jsonu.Str (Digest.to_hex (Digest.string rec_str))))
    rec_str

let entry_of_line line =
  match Jsonu.of_string line with
  | Error e -> Error ("unparsable line: " ^ e)
  | Ok (Jsonu.Obj fields) -> (
      match
        (List.assoc_opt "sum" fields, List.assoc_opt "rec" fields)
      with
      | Some (Jsonu.Str sum), Some rec_ ->
          let rendered = Jsonu.to_string rec_ in
          if Digest.to_hex (Digest.string rendered) <> sum then
            Error "checksum mismatch"
          else entry_of_json rec_
      | _ -> Error "missing sum/rec fields")
  | Ok _ -> Error "line is not an object"

(* ---- replay ---- *)

type fold_state = {
  mutable fs_order : string list;  (* digests, reverse accept order *)
  accepted : (string, pending) Hashtbl.t;
  terminal : (string, string) Hashtbl.t;
}

let fold_entry st = function
  | Accepted { digest; name; tenant; submit } ->
      if not (Hashtbl.mem st.accepted digest) then begin
        st.fs_order <- digest :: st.fs_order;
        Hashtbl.replace st.accepted digest
          {
            p_digest = digest;
            p_name = name;
            p_tenant = tenant;
            p_submit = submit;
            p_ckpt = None;
            p_started = false;
          }
      end
  | Started { digest } -> (
      match Hashtbl.find_opt st.accepted digest with
      | Some p -> Hashtbl.replace st.accepted digest { p with p_started = true }
      | None -> ())
  | Checkpointed { digest; ckpt } -> (
      match Hashtbl.find_opt st.accepted digest with
      | Some p ->
          Hashtbl.replace st.accepted digest { p with p_ckpt = Some ckpt }
      | None -> ())
  | Done_ { digest; status } -> Hashtbl.replace st.terminal digest status
  | Faulted { digest } -> Hashtbl.replace st.terminal digest "faulted"

(* Append damaged lines to <file>.corrupt (evidence preserved, journal
   slot reclaimed by the compaction that follows) and keep going: a
   torn tail after SIGKILL is the expected case, not an error. *)
let quarantine_line file line reason warned =
  (try
     let oc =
       open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644
         (file ^ ".corrupt")
     in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc (line ^ "\n"))
   with _ -> ());
  if not !warned then begin
    warned := true;
    Printf.eprintf
      "ucd: warning: quarantined damaged journal line(s) to %s.corrupt (%s); \
       replay continues\n\
       %!"
      file reason
  end

let read_lines file =
  match open_in_bin file with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])

let replay_file ?(keep = fun ~digest:_ ~status:_ -> false) file =
  let st =
    {
      fs_order = [];
      accepted = Hashtbl.create 64;
      terminal = Hashtbl.create 64;
    }
  in
  let replayed = ref 0 and corrupt = ref 0 in
  let warned = ref false in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match entry_of_line line with
        | Ok e ->
            incr replayed;
            fold_entry st e
        | Error reason ->
            incr corrupt;
            quarantine_line file line reason warned)
    (read_lines file);
  let order = List.rev st.fs_order in
  let pending =
    List.filter_map
      (fun d ->
        match Hashtbl.find_opt st.terminal d with
        | None -> Hashtbl.find_opt st.accepted d
        | Some status -> (
            (* a terminal record normally retires the entry, but the
               caller may resurrect it — e.g. a [done] job whose cached
               report has since vanished must be recomputed *)
            match Hashtbl.find_opt st.accepted d with
            | Some p when keep ~digest:d ~status ->
                Hashtbl.remove st.terminal d;
                Some p
            | _ -> None))
      order
  in
  let finished =
    List.filter_map
      (fun d ->
        match Hashtbl.find_opt st.terminal d with
        | Some s -> Some (d, s)
        | None -> None)
      order
  in
  (* terminal records whose accepted line was itself lost still count *)
  let finished =
    let seen = List.map fst finished in
    Hashtbl.fold
      (fun d s acc -> if List.mem d seen then acc else (d, s) :: acc)
      st.terminal finished
  in
  { pending; finished; replayed = !replayed; corrupt = !corrupt }

(* ---- appending ---- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let append t e =
  let line = line_of_entry e in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.fd with
      | None -> ()
      | Some fd -> (
          try
            write_all fd line;
            t.appended <- t.appended + 1;
            t.written <- t.written + String.length line;
            if t.fsync then begin
              Unix.fsync fd;
              t.synced <- t.synced + 1;
              t.unsynced <- 0
            end
            else t.unsynced <- t.unsynced + 1
          with _ ->
            t.failures <- t.failures + 1;
            if not t.warned then begin
              t.warned <- true;
              Printf.eprintf
                "ucd: warning: journal append failed (disk full or \
                 unwritable?); continuing without durability\n\
                 %!"
            end))

(* ---- recovery: replay, compact, reopen ---- *)

let recover ?(fsync = false) ?keep ~dir () =
  let file = path ~dir in
  try
    if not (Sys.file_exists dir) then
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let rp = replay_file ?keep file in
    (* Compact: rewrite only what is still pending (accepted + latest
       checkpoint), atomically, so the journal never grows without
       bound and a crash mid-compaction keeps the old file intact. *)
    let tmp = file ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun p ->
            output_string oc
              (line_of_entry
                 (Accepted
                    {
                      digest = p.p_digest;
                      name = p.p_name;
                      tenant = p.p_tenant;
                      submit = p.p_submit;
                    }));
            if p.p_started then
              output_string oc (line_of_entry (Started { digest = p.p_digest }));
            match p.p_ckpt with
            | Some ckpt ->
                output_string oc
                  (line_of_entry (Checkpointed { digest = p.p_digest; ckpt }))
            | None -> ())
          rp.pending;
        flush oc);
    Sys.rename tmp file;
    let fd =
      Unix.openfile file [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
    in
    Ok
      ( {
          lock = Mutex.create ();
          fsync;
          fd = Some fd;
          appended = 0;
          synced = 0;
          written = 0;
          unsynced = 0;
          failures = 0;
          warned = false;
          replayed = rp.replayed;
          corrupted = rp.corrupt;
          requeued = List.length rp.pending;
        },
        rp )
  with e ->
    Error
      (Printf.sprintf "cannot open journal under %s: %s" dir
         (Printexc.to_string e))

let stats t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      {
        appended = t.appended;
        synced = t.synced;
        bytes = t.written;
        write_failures = t.failures;
        s_replayed = t.replayed;
        s_corrupt = t.corrupted;
        s_requeued = t.requeued;
      })

let lag t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> t.unsynced)

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.fd with
      | None -> ()
      | Some fd ->
          t.fd <- None;
          (try if t.fsync then Unix.fsync fd with _ -> ());
          try Unix.close fd with _ -> ())

let publish t obs =
  if Obs.enabled obs then begin
    let s = stats t in
    List.iter
      (fun (name, v) -> Obs.count obs ("ucd.journal." ^ name) v)
      [
        ("appended", s.appended);
        ("synced", s.synced);
        ("bytes", s.bytes);
        ("write_failures", s.write_failures);
        ("replayed", s.s_replayed);
        ("corrupt", s.s_corrupt);
        ("requeued", s.s_requeued);
      ]
  end
