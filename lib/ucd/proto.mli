(** The `ucc serve` wire protocol: versioned JSON-lines messages plus a
    bounded frame reader.

    {b Framing.}  One frame = one JSON object on one LF-terminated
    line, at most [max_frame] bytes.  Strings are byte-transparent (see
    {!Jsonu}), so UC sources and report rows cross the wire unmodified.

    {b Versioning.}  The first client frame must be [hello] carrying
    {!version}; the server answers [welcome] on an exact match, or a
    [version_mismatch] error and closes.  Within a version, unknown
    {e fields} are ignored (additive evolution); an unknown message
    {e type} is a [protocol] error. *)

val version : int

val default_max_frame : int
(** 1 MiB. *)

(** Typed failure vocabulary, used both in [rejected] (per-submission)
    and [error] (connection-level) frames. *)
type error_code =
  | Protocol  (** malformed frame: not JSON, no "type", unknown type *)
  | Oversized  (** frame exceeded the size bound *)
  | Version_mismatch
  | Bad_request  (** well-formed but unusable (bad fault plan, unknown corpus name …) *)
  | Overloaded  (** admission control: the pool queue is at its bound *)
  | Quota  (** the tenant's in-flight quota is exhausted *)
  | Shutting_down  (** the server is draining; no new work *)
  | Unknown_job
  | Denied
      (** operator-only operation ([drain]) refused on this connection
          (TCP clients may not shut the daemon down) *)

val code_string : error_code -> string
val code_of_string : string -> error_code option

type priority = Low | Normal | High

val priority_string : priority -> string
val priority_of_string : string -> priority option

type source = Inline of string | Corpus of string

(** The full [Job] option surface, flags spelled like the batch
    manifest; the server resolves them against its compile-option
    defaults. *)
type submit = {
  client_ref : string option;  (** echoed back in accepted/rejected *)
  name : string;
  source : source;
  seed : int option;
  fuel : int option;
  deadline : float option;
  faults : string option;  (** fault-plan text; parsed server-side *)
  retries : int option;
  no_news : bool;
  no_procopt : bool;
  no_mappings : bool;
  no_cse : bool;
  ir_opt : string option;  (** pass subset, e.g. ["constprop,dce"]; ["off"] disables *)
  tune : bool;  (** auto-tune the data layout before lowering *)
}

val submit_defaults : name:string -> source:source -> submit

val submit_of_json : Jsonu.t -> (submit, string) result
(** Decode a stored {!submit_obj} rendering (the journal keeps accepted
    jobs in wire form); same field rules as the live decoder. *)

type client_msg =
  | Hello of { version : int; tenant : string; priority : priority }
  | Submit of submit
  | Status of int  (** server-assigned job id *)
  | Status_digest of string
      (** status by content digest — stable across a daemon restart,
          unlike job ids; answered with [Digest_reply] *)
  | Cancel of int
  | Trace of bool  (** subscribe/unsubscribe to this session's trace stream *)
  | Stats
  | Server_status
      (** read-only operational snapshot (uptime, queue depth, journal
          lag, per-tenant usage); allowed on TCP *)
  | Drain  (** ask the server to stop accepting, drain and exit *)
  | Bye

type server_msg =
  | Welcome of { version : int; session : int; server : string }
  | Accepted of { client_ref : string option; job : int; digest : string }
  | Resumed of { client_ref : string option; job : int; digest : string }
      (** the digest was already in flight (submitted on another
          connection, or requeued from the journal after a restart);
          the caller is attached as a watcher and will receive the
          existing job's [Report] — exactly-once semantics for
          idempotent resubmission *)
  | Rejected of { client_ref : string option; code : error_code; msg : string }
  | Report of { job : int; row : Jsonu.t }
      (** the full [Report.json_line] object for the finished job *)
  | Status_reply of { job : int; state : string; row : Jsonu.t option }
      (** state is ["queued"], ["running"], ["done"] (with [row]) or
          ["cancelled"] *)
  | Digest_reply of { digest : string; state : string; row : Jsonu.t option }
      (** state is ["queued"], ["running"], ["done"]/["faulted"] (with
          [row] when the report is still cached) or ["unknown"] *)
  | Cancel_reply of { job : int; ok : bool }
      (** [ok = false]: the job was already running, done or unknown *)
  | Trace_reply of bool
  | Trace_event of { job : int; event : Jsonu.t }  (** one {!Obs.event} *)
  | Stats_reply of Jsonu.t
  | Server_status_reply of Jsonu.t
  | Draining of { in_flight : int }
  | Shutdown of { msg : string }  (** server-initiated goodbye *)
  | Error of { code : error_code; msg : string }

val submit_obj : submit -> Jsonu.t
(** The wire rendering of a submit (what {!client_json} emits for
    [Submit]); the journal stores accepted jobs in this form. *)

val client_json : client_msg -> Jsonu.t
val server_json : server_msg -> Jsonu.t

val client_line : client_msg -> string
(** One frame, no newline. *)

val server_line : server_msg -> string

val client_of_line : string -> (client_msg, error_code * string) result
(** Decode one frame from a client.  The error carries the typed code
    the server should answer with ([Protocol] for malformed frames,
    [Bad_request] for missing/mistyped required fields). *)

val server_of_line : string -> (server_msg, string) result

(** {1 Framing} *)

type reader

val reader : ?max_frame:int -> Unix.file_descr -> reader

val read_frame : reader -> [ `Frame of string | `Oversized | `Eof ]
(** Blocking.  [`Oversized] is returned once per offending frame (its
    bytes are discarded as they stream in), so the caller can reply
    with a typed error and close without buffering an unbounded line.
    A reset/closed peer reads as [`Eof]. *)
